package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
)

// The .itc ("ipusim trace columns") binary format: a delta-encoded
// struct-of-arrays serialisation of a Trace, built once by `tracegen
// -compile` and replayed many times. Compared to re-parsing MSR CSV on
// every replay, opening an .itc file is one streaming decode pass over the
// (memory-mapped, on linux) file into exactly-sized columns — a handful of
// allocations per open and zero per record, at typically 4-6x smaller
// files than the CSV.
//
// Layout (all integers little-endian or varint as noted):
//
//	magic   "ITC1"
//	u32     name length
//	u64     record count
//	u64     max end offset (MaxOffset memo)
//	bytes   name
//	4 column sections, each: u8 column ID, u64 payload length, payload
//	  0 time:   uvarint first absolute, then uvarint deltas (times are
//	            non-decreasing, so deltas are unsigned — and monotonicity
//	            is a format guarantee, not just a convention)
//	  1 op:     bitpacked, bit i of byte i/8 set = OpWrite
//	  2 offset: zigzag-varint first absolute, then zigzag-varint deltas
//	  3 size:   uvarint per record
//	u64     FNV-1a of everything before it (torn/truncated-file detection)
//
// The format is strict: decoders verify the checksum, the column IDs and
// lengths, per-record invariants (positive sizes, non-negative offsets)
// and the MaxOffset memo, and reject trailing bytes.

const (
	itcMagic      = "ITC1"
	itcColTime    = 0
	itcColOp      = 1
	itcColOffset  = 2
	itcColSize    = 3
	itcHeaderSize = 4 + 4 + 8 + 8
)

// zigzag maps signed deltas onto unsigned varint space.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendITC appends the .itc encoding of t to dst and returns the result.
// The trace must be well-formed (Validate); encoding fails otherwise, so
// every .itc file in existence holds a valid trace.
func AppendITC(dst []byte, t *Trace) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	start := len(dst)
	var u [binary.MaxVarintLen64]byte
	n := t.Len()

	dst = append(dst, itcMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Name)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(n))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.maxEnd))
	dst = append(dst, t.Name...)

	col := func(id byte, payload func([]byte) []byte) {
		dst = append(dst, id)
		lenAt := len(dst)
		dst = binary.LittleEndian.AppendUint64(dst, 0)
		body := len(dst)
		dst = payload(dst)
		binary.LittleEndian.PutUint64(dst[lenAt:], uint64(len(dst)-body))
	}

	col(itcColTime, func(b []byte) []byte {
		prev := int64(0)
		for i := 0; i < n; i++ {
			v := t.time[i]
			b = append(b, u[:binary.PutUvarint(u[:], uint64(v-prev))]...)
			prev = v
		}
		return b
	})
	col(itcColOp, func(b []byte) []byte {
		var acc byte
		for i := 0; i < n; i++ {
			if t.op[i] == OpWrite {
				acc |= 1 << (i % 8)
			}
			if i%8 == 7 {
				b = append(b, acc)
				acc = 0
			}
		}
		if n%8 != 0 {
			b = append(b, acc)
		}
		return b
	})
	col(itcColOffset, func(b []byte) []byte {
		prev := int64(0)
		for i := 0; i < n; i++ {
			v := t.off[i]
			b = append(b, u[:binary.PutUvarint(u[:], zigzag(v-prev))]...)
			prev = v
		}
		return b
	})
	col(itcColSize, func(b []byte) []byte {
		for i := 0; i < n; i++ {
			b = append(b, u[:binary.PutUvarint(u[:], uint64(t.size[i]))]...)
		}
		return b
	})

	h := fnv.New64a()
	h.Write(dst[start:])
	dst = binary.LittleEndian.AppendUint64(dst, h.Sum64())
	return dst, nil
}

// WriteITC writes the .itc encoding of t.
func WriteITC(w io.Writer, t *Trace) error {
	b, err := AppendITC(nil, t)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// itcError wraps a decode failure with the file/trace name.
func itcError(name, format string, args ...any) error {
	return fmt.Errorf("itc %s: %s", name, fmt.Sprintf(format, args...))
}

// DecodeITC decodes one .itc file image into a Trace. name is used for
// error reporting only; the trace name comes from the file. The decode is
// a single pass with exactly-sized column allocations, and it rejects
// corrupt, torn or truncated input with an error — never a panic.
func DecodeITC(name string, data []byte) (*Trace, error) {
	if len(data) < itcHeaderSize+8 {
		return nil, itcError(name, "truncated: %d bytes", len(data))
	}
	if string(data[:4]) != itcMagic {
		return nil, itcError(name, "bad magic %q", data[:4])
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, itcError(name, "checksum mismatch (torn or corrupt file)")
	}

	nameLen := binary.LittleEndian.Uint32(data[4:])
	count := binary.LittleEndian.Uint64(data[8:])
	maxEnd := int64(binary.LittleEndian.Uint64(data[16:]))
	// The time column alone spends at least one byte per record, so a
	// count beyond the file size can only be corruption; checking it here
	// keeps a hostile header from forcing huge allocations.
	if count > uint64(len(data)) {
		return nil, itcError(name, "implausible record count %d for %d-byte file", count, len(data))
	}
	if maxEnd < 0 {
		return nil, itcError(name, "negative max offset")
	}
	rest := body[itcHeaderSize:]
	if uint64(len(rest)) < uint64(nameLen) {
		return nil, itcError(name, "truncated name")
	}
	t := &Trace{Name: string(rest[:nameLen])}
	rest = rest[nameLen:]
	n := int(count)

	column := func(id byte) ([]byte, error) {
		if len(rest) < 9 {
			return nil, itcError(name, "truncated column header")
		}
		if rest[0] != id {
			return nil, itcError(name, "column %d out of order (got %d)", id, rest[0])
		}
		size := binary.LittleEndian.Uint64(rest[1:])
		rest = rest[9:]
		if uint64(len(rest)) < size {
			return nil, itcError(name, "column %d truncated", id)
		}
		payload := rest[:size]
		rest = rest[size:]
		return payload, nil
	}
	varints := func(payload []byte, id byte, fn func(i int, v uint64) error) error {
		for i := 0; i < n; i++ {
			v, w := binary.Uvarint(payload)
			if w <= 0 {
				return itcError(name, "column %d: bad varint at record %d", id, i)
			}
			payload = payload[w:]
			if err := fn(i, v); err != nil {
				return err
			}
		}
		if len(payload) != 0 {
			return itcError(name, "column %d: %d trailing bytes", id, len(payload))
		}
		return nil
	}

	payload, err := column(itcColTime)
	if err != nil {
		return nil, err
	}
	t.time = make([]int64, n)
	prev := int64(0)
	err = varints(payload, itcColTime, func(i int, v uint64) error {
		if v > math.MaxInt64 || prev > math.MaxInt64-int64(v) {
			return itcError(name, "time overflow at record %d", i)
		}
		prev += int64(v)
		t.time[i] = prev
		return nil
	})
	if err != nil {
		return nil, err
	}

	payload, err = column(itcColOp)
	if err != nil {
		return nil, err
	}
	if len(payload) != (n+7)/8 {
		return nil, itcError(name, "op column is %d bytes, want %d", len(payload), (n+7)/8)
	}
	t.op = make([]OpType, n)
	for i := 0; i < n; i++ {
		if payload[i/8]&(1<<(i%8)) != 0 {
			t.op[i] = OpWrite
		}
	}

	payload, err = column(itcColOffset)
	if err != nil {
		return nil, err
	}
	t.off = make([]int64, n)
	prev = 0
	err = varints(payload, itcColOffset, func(i int, v uint64) error {
		prev += unzigzag(v)
		if prev < 0 {
			return itcError(name, "negative offset at record %d", i)
		}
		t.off[i] = prev
		return nil
	})
	if err != nil {
		return nil, err
	}

	payload, err = column(itcColSize)
	if err != nil {
		return nil, err
	}
	t.size = make([]int32, n)
	var gotMax int64
	err = varints(payload, itcColSize, func(i int, v uint64) error {
		if v == 0 || v > math.MaxInt32 {
			return itcError(name, "bad size %d at record %d", v, i)
		}
		t.size[i] = int32(v)
		if e := t.off[i] + int64(v); e > gotMax {
			gotMax = e
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, itcError(name, "%d trailing bytes after columns", len(rest))
	}
	if gotMax != maxEnd {
		return nil, itcError(name, "max offset memo %d does not match records (%d)", maxEnd, gotMax)
	}
	t.maxEnd = maxEnd
	return t, nil
}

// readFileFallback is mapFile's portable path: the whole file in memory.
func readFileFallback(path string) ([]byte, func(), error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, func() {}, nil
}

// OpenITC opens an .itc file and decodes it into a Trace. On linux the
// file is memory-mapped for the duration of the (single-pass) decode, so
// multi-gigabyte traces stream through the page cache instead of being
// read into a transient buffer first; elsewhere it falls back to reading
// the file.
func OpenITC(path string) (*Trace, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	defer unmap()
	return DecodeITC(path, data)
}

// Open opens a trace file of either supported format, sniffing the .itc
// magic: compiled .itc traces decode from the mapped file, anything else
// parses as MSR-Cambridge CSV.
func Open(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	k, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	if k == 4 && string(magic[:]) == itcMagic {
		return OpenITC(path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ParseMSR(path, f)
}
