//go:build !linux

package trace

// mapFile returns the file's bytes and a release function. On non-linux
// platforms it simply reads the file; the decoder does not care where the
// bytes live.
func mapFile(path string) (data []byte, unmap func(), err error) {
	return readFileFallback(path)
}
