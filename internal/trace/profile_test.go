package trace

import (
	"math"
	"testing"

	"ipusim/internal/workload"
)

func TestProfilesAreComplete(t *testing.T) {
	want := []string{"ts0", "wdev0", "lun1", "usr0", "lun2", "ads"}
	for _, name := range want {
		p, ok := Profiles[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
		if p.Source == "" {
			t.Errorf("profile %s lacks a source citation", name)
		}
	}
	if len(Profiles) != len(want) {
		t.Errorf("have %d profiles, want %d", len(Profiles), len(want))
	}
}

func TestProfileNamesOrderedByWriteRatio(t *testing.T) {
	names := ProfileNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if Profiles[names[i-1]].WriteRatio < Profiles[names[i]].WriteRatio {
			t.Fatalf("names not ordered by write ratio: %v", names)
		}
	}
	if names[0] != "ts0" || names[5] != "ads" {
		t.Errorf("expected ts0 first and ads last (Table 3 order), got %v", names)
	}
}

func TestProfileTable3Constants(t *testing.T) {
	// Spot-check the numbers transcribed from Table 3.
	cases := []struct {
		name     string
		requests int
		writeR   float64
		sizeKB   float64
		hot      float64
	}{
		{"ts0", 1801734, 0.824, 8.0, 0.505},
		{"wdev0", 1143261, 0.799, 8.2, 0.582},
		{"lun1", 1073405, 0.731, 7.6, 0.100},
		{"usr0", 2237889, 0.596, 10.3, 0.365},
		{"lun2", 1758887, 0.193, 9.7, 0.085},
		{"ads", 1532120, 0.095, 7.0, 0.183},
	}
	for _, c := range cases {
		p := Profiles[c.name]
		if p.Requests != c.requests || p.WriteRatio != c.writeR ||
			p.AvgWriteKB != c.sizeKB || p.HotWriteRatio != c.hot {
			t.Errorf("%s profile does not match Table 3: %+v", c.name, p)
		}
	}
}

func TestGenerateRejections(t *testing.T) {
	p := Profiles["ts0"]
	if _, err := Generate(p, 1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := Generate(p, 1, 1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
	p.WriteRatio = 2
	if _, err := Generate(p, 1, 0.1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Profiles["ts0"], 7, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Profiles["ts0"], 7, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatal("same seed must reproduce the same trace")
		}
	}
	c, err := Generate(Profiles["ts0"], 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if i < c.Len() && a.At(i) != c.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateWellFormed(t *testing.T) {
	tr, err := Generate(Profiles["usr0"], 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		if r.Offset%4096 != 0 || r.Size%4096 != 0 {
			t.Fatalf("record %d not 4K aligned: %+v", i, r)
		}
	}
}

// TestGenerateMatchesTable3 is the Table 3 fidelity check: the synthetic
// traces must reproduce the published request mix.
func TestGenerateMatchesTable3(t *testing.T) {
	for name, p := range Profiles {
		tr, err := Generate(p, 42, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := Analyze(tr)
		if math.Abs(s.WriteRatio-p.WriteRatio) > 0.02 {
			t.Errorf("%s: write ratio %.3f, want %.3f", name, s.WriteRatio, p.WriteRatio)
		}
		if rel := math.Abs(s.AvgWriteKB-p.AvgWriteKB) / p.AvgWriteKB; rel > 0.15 {
			t.Errorf("%s: avg write size %.2f KB, want %.2f (+-15%%)", name, s.AvgWriteKB, p.AvgWriteKB)
		}
		if math.Abs(s.HotWriteRatio-p.HotWriteRatio) > 0.06 {
			t.Errorf("%s: hot write ratio %.3f, want %.3f", name, s.HotWriteRatio, p.HotWriteRatio)
		}
	}
}

// TestGenerateMatchesTable1 validates the update-size distribution.
func TestGenerateMatchesTable1(t *testing.T) {
	for name, p := range Profiles {
		tr, err := Generate(p, 17, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := Analyze(tr)
		if s.UpdatedWrites == 0 {
			t.Fatalf("%s: no updated writes generated", name)
		}
		d := s.UpdateSizeDist
		want := p.UpdateSizeDist
		if math.Abs(d.Small-want.Small) > 0.08 ||
			math.Abs(d.Medium-want.Medium) > 0.08 ||
			math.Abs(d.Large-want.Large) > 0.08 {
			t.Errorf("%s: update size dist {%.3f %.3f %.3f}, want {%.3f %.3f %.3f}",
				name, d.Small, d.Medium, d.Large, want.Small, want.Medium, want.Large)
		}
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	s := Analyze(&Trace{Name: "empty"})
	if s.Requests != 0 || s.Writes != 0 || s.WriteRatio != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestAnalyzeHandCraftedTrace(t *testing.T) {
	// Address 0 written 4 times (hot, 3 updates); address 8192 written
	// once (cold); one read.
	tr := New("hand",
		Record{Time: 0, Op: OpWrite, Offset: 0, Size: 4096},
		Record{Time: 1, Op: OpWrite, Offset: 0, Size: 4096},
		Record{Time: 2, Op: OpWrite, Offset: 0, Size: 8192},
		Record{Time: 3, Op: OpWrite, Offset: 0, Size: 16384},
		Record{Time: 4, Op: OpWrite, Offset: 8192, Size: 4096},
		Record{Time: 5, Op: OpRead, Offset: 0, Size: 4096},
	)
	s := Analyze(tr)
	if s.Requests != 6 || s.Writes != 5 {
		t.Fatalf("counts: %+v", s)
	}
	if s.UpdatedWrites != 3 {
		t.Errorf("UpdatedWrites = %d, want 3", s.UpdatedWrites)
	}
	// The updates are 4K, 8K, 16K: one per bucket.
	want := workload.SizeDist{Small: 1.0 / 3, Medium: 1.0 / 3, Large: 1.0 / 3}
	if math.Abs(s.UpdateSizeDist.Small-want.Small) > 1e-9 ||
		math.Abs(s.UpdateSizeDist.Medium-want.Medium) > 1e-9 ||
		math.Abs(s.UpdateSizeDist.Large-want.Large) > 1e-9 {
		t.Errorf("update dist: %+v", s.UpdateSizeDist)
	}
	// Address 0 is requested 5 times (>= 4): the 4 writes to it are hot.
	if math.Abs(s.HotWriteRatio-0.8) > 1e-9 {
		t.Errorf("HotWriteRatio = %.3f, want 0.8", s.HotWriteRatio)
	}
	wantAvg := (4.0 + 4 + 8 + 16 + 4) / 5
	if math.Abs(s.AvgWriteKB-wantAvg) > 1e-9 {
		t.Errorf("AvgWriteKB = %.3f, want %.3f", s.AvgWriteKB, wantAvg)
	}
	if s.DurationNS != 5 {
		t.Errorf("DurationNS = %d", s.DurationNS)
	}
}

func TestGenerateIsBursty(t *testing.T) {
	tr, err := Generate(Profiles["ts0"], 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(tr)
	if s.InterarrivalCV < 1.5 {
		t.Errorf("inter-arrival CV = %.2f; synthetic traces must be bursty (>1.5)", s.InterarrivalCV)
	}
	if s.MeanInterarrivalNS <= 0 {
		t.Error("mean inter-arrival not computed")
	}
}
