// Package trace models block I/O traces: the record format, a parser and
// writer for the MSR-Cambridge CSV format, synthetic generators that
// reproduce the statistical shape of the paper's six evaluation traces
// (Tables 1 and 3), and a statistics analyser that recomputes those tables
// from any trace.
package trace

import (
	"fmt"
	"sort"
)

// OpType is the I/O direction of a request.
type OpType uint8

const (
	// OpRead is a read request.
	OpRead OpType = iota
	// OpWrite is a write request.
	OpWrite
)

func (o OpType) String() string {
	if o == OpRead {
		return "Read"
	}
	return "Write"
}

// Record is one block I/O request: the value type traces are built from
// and iterated as. Storage inside a Trace is columnar (struct-of-arrays),
// so Record itself is only materialised at the At call sites.
type Record struct {
	// Time is the arrival timestamp in nanoseconds from trace start.
	Time int64
	// Op is the request direction.
	Op OpType
	// Offset is the starting byte address.
	Offset int64
	// Size is the request length in bytes.
	Size int
}

// End returns the first byte after the request's range.
func (r Record) End() int64 { return r.Offset + int64(r.Size) }

// Trace is a named, time-ordered request sequence. Records are stored as
// four parallel columns (time, op, offset, size) instead of a []Record:
// 21 bytes per request instead of 32, which is what lets Scale-1.0
// full-length traces stay resident during sweeps. Build with New/Append,
// read with Len/At.
type Trace struct {
	Name string

	time []int64
	op   []OpType
	off  []int64
	size []int32

	// maxEnd memoises MaxOffset: it is maintained incrementally by Append
	// (appending can only grow the maximum), so replay set-up never
	// rescans the columns.
	maxEnd int64
}

// New builds a trace from the given records.
func New(name string, recs ...Record) *Trace {
	t := &Trace{Name: name}
	t.Reserve(len(recs))
	for _, r := range recs {
		t.Append(r)
	}
	return t
}

// Reserve grows the column capacity to hold at least n more records
// without reallocating.
func (t *Trace) Reserve(n int) {
	if n <= 0 {
		return
	}
	want := len(t.time) + n
	if cap(t.time) >= want {
		return
	}
	grow := func() {
		tt := make([]int64, len(t.time), want)
		copy(tt, t.time)
		t.time = tt
		op := make([]OpType, len(t.op), want)
		copy(op, t.op)
		t.op = op
		off := make([]int64, len(t.off), want)
		copy(off, t.off)
		t.off = off
		size := make([]int32, len(t.size), want)
		copy(size, t.size)
		t.size = size
	}
	grow()
}

// Append adds one record at the end of the trace.
func (t *Trace) Append(r Record) {
	t.time = append(t.time, r.Time)
	t.op = append(t.op, r.Op)
	t.off = append(t.off, r.Offset)
	t.size = append(t.size, int32(r.Size))
	if e := r.End(); e > t.maxEnd {
		t.maxEnd = e
	}
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.time) }

// At returns record i. The hot replay loops read the columns through this
// accessor; the compiler inlines it to four loads.
func (t *Trace) At(i int) Record {
	return Record{Time: t.time[i], Op: t.op[i], Offset: t.off[i], Size: int(t.size[i])}
}

// Validate checks the trace is well-formed: ordered timestamps, positive
// sizes, non-negative offsets.
func (t *Trace) Validate() error {
	prev := int64(-1)
	for i := range t.time {
		if t.time[i] < prev {
			return fmt.Errorf("trace %s: record %d out of order (%d < %d)", t.Name, i, t.time[i], prev)
		}
		if t.size[i] <= 0 {
			return fmt.Errorf("trace %s: record %d has size %d", t.Name, i, t.size[i])
		}
		if t.off[i] < 0 {
			return fmt.Errorf("trace %s: record %d has negative offset", t.Name, i)
		}
		prev = t.time[i]
	}
	return nil
}

// MaxOffset returns the highest byte address any record touches, or zero
// for an empty trace. The value is maintained at build time, so the call
// is O(1).
func (t *Trace) MaxOffset() int64 { return t.maxEnd }

// Sort orders records by timestamp, breaking ties by original order.
func (t *Trace) Sort() {
	sort.Stable((*byTime)(t))
}

// byTime sorts the four columns together by the time column.
type byTime Trace

func (s *byTime) Len() int           { return len(s.time) }
func (s *byTime) Less(i, j int) bool { return s.time[i] < s.time[j] }
func (s *byTime) Swap(i, j int) {
	s.time[i], s.time[j] = s.time[j], s.time[i]
	s.op[i], s.op[j] = s.op[j], s.op[i]
	s.off[i], s.off[j] = s.off[j], s.off[i]
	s.size[i], s.size[j] = s.size[j], s.size[i]
}
