// Package trace models block I/O traces: the record format, a parser and
// writer for the MSR-Cambridge CSV format, synthetic generators that
// reproduce the statistical shape of the paper's six evaluation traces
// (Tables 1 and 3), and a statistics analyser that recomputes those tables
// from any trace.
package trace

import (
	"fmt"
	"sort"
)

// OpType is the I/O direction of a request.
type OpType uint8

const (
	// OpRead is a read request.
	OpRead OpType = iota
	// OpWrite is a write request.
	OpWrite
)

func (o OpType) String() string {
	if o == OpRead {
		return "Read"
	}
	return "Write"
}

// Record is one block I/O request.
type Record struct {
	// Time is the arrival timestamp in nanoseconds from trace start.
	Time int64
	// Op is the request direction.
	Op OpType
	// Offset is the starting byte address.
	Offset int64
	// Size is the request length in bytes.
	Size int
}

// End returns the first byte after the request's range.
func (r Record) End() int64 { return r.Offset + int64(r.Size) }

// Trace is a named, time-ordered request sequence.
type Trace struct {
	Name    string
	Records []Record
}

// Validate checks the trace is well-formed: ordered timestamps, positive
// sizes, non-negative offsets.
func (t *Trace) Validate() error {
	prev := int64(-1)
	for i, r := range t.Records {
		if r.Time < prev {
			return fmt.Errorf("trace %s: record %d out of order (%d < %d)", t.Name, i, r.Time, prev)
		}
		if r.Size <= 0 {
			return fmt.Errorf("trace %s: record %d has size %d", t.Name, i, r.Size)
		}
		if r.Offset < 0 {
			return fmt.Errorf("trace %s: record %d has negative offset", t.Name, i)
		}
		prev = r.Time
	}
	return nil
}

// MaxOffset returns the highest byte address any record touches, or zero
// for an empty trace.
func (t *Trace) MaxOffset() int64 {
	var m int64
	for _, r := range t.Records {
		if e := r.End(); e > m {
			m = e
		}
	}
	return m
}

// Sort orders records by timestamp, breaking ties by original order.
func (t *Trace) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Time < t.Records[j].Time
	})
}
