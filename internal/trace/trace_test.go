package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceValidate(t *testing.T) {
	good := New("g",
		Record{Time: 0, Op: OpWrite, Offset: 0, Size: 4096},
		Record{Time: 10, Op: OpRead, Offset: 4096, Size: 4096},
	)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Trace{
		New("order", Record{Time: 10, Size: 1}, Record{Time: 5, Size: 1}),
		New("size", Record{Time: 0, Size: 0}),
		New("offset", Record{Time: 0, Offset: -1, Size: 1}),
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("trace %s accepted", tr.Name)
		}
	}
}

func TestRecordEndAndMaxOffset(t *testing.T) {
	r := Record{Offset: 100, Size: 50}
	if r.End() != 150 {
		t.Errorf("End = %d", r.End())
	}
	tr := New("",
		Record{Offset: 0, Size: 10},
		Record{Offset: 500, Size: 100},
		Record{Offset: 300, Size: 10},
	)
	if tr.MaxOffset() != 600 {
		t.Errorf("MaxOffset = %d", tr.MaxOffset())
	}
	if (&Trace{}).MaxOffset() != 0 {
		t.Error("empty trace MaxOffset != 0")
	}
}

func TestMaxOffsetMemoisedByAppend(t *testing.T) {
	tr := New("")
	tr.Append(Record{Offset: 100, Size: 10})
	if tr.MaxOffset() != 110 {
		t.Errorf("MaxOffset = %d after first append", tr.MaxOffset())
	}
	tr.Append(Record{Offset: 0, Size: 10})
	if tr.MaxOffset() != 110 {
		t.Error("smaller append must not shrink MaxOffset")
	}
	tr.Append(Record{Offset: 1000, Size: 24})
	if tr.MaxOffset() != 1024 {
		t.Errorf("MaxOffset = %d after growth", tr.MaxOffset())
	}
}

func TestTraceLenAt(t *testing.T) {
	recs := []Record{
		{Time: 1, Op: OpWrite, Offset: 10, Size: 20},
		{Time: 2, Op: OpRead, Offset: 30, Size: 40},
	}
	tr := New("la", recs...)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, want := range recs {
		if got := tr.At(i); got != want {
			t.Errorf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
}

func TestTraceSortStable(t *testing.T) {
	tr := New("",
		Record{Time: 5, Offset: 1, Size: 1},
		Record{Time: 2, Offset: 2, Size: 1},
		Record{Time: 5, Offset: 3, Size: 1},
	)
	tr.Sort()
	if tr.At(0).Offset != 2 || tr.At(1).Offset != 1 || tr.At(2).Offset != 3 {
		t.Errorf("sort order wrong: %+v %+v %+v", tr.At(0), tr.At(1), tr.At(2))
	}
}

func TestOpTypeString(t *testing.T) {
	if OpRead.String() != "Read" || OpWrite.String() != "Write" {
		t.Error("OpType strings wrong")
	}
}

func TestMSRRoundTrip(t *testing.T) {
	orig := New("rt",
		Record{Time: 0, Op: OpWrite, Offset: 8192, Size: 4096},
		Record{Time: 150 * 100, Op: OpRead, Offset: 0, Size: 16384},
		Record{Time: 400 * 100, Op: OpWrite, Offset: 123456512, Size: 8192},
	)
	var buf bytes.Buffer
	if err := WriteMSR(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMSR("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("record count %d, want %d", got.Len(), orig.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.At(i) != orig.At(i) {
			t.Errorf("record %d: got %+v want %+v", i, got.At(i), orig.At(i))
		}
	}
}

func TestParseMSRRebasesTimestamps(t *testing.T) {
	in := "128166372003061629,host,0,Write,4096,4096,100\n" +
		"128166372003061729,host,0,Read,0,512,50\n"
	tr, err := ParseMSR("m", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0).Time != 0 {
		t.Errorf("first timestamp %d, want 0", tr.At(0).Time)
	}
	if tr.At(1).Time != 100*filetimeTick {
		t.Errorf("second timestamp %d, want %d", tr.At(1).Time, 100*filetimeTick)
	}
}

func TestParseMSRSkipsCommentsAndBlank(t *testing.T) {
	in := "# header comment\n\n1000,h,0,Read,0,4096,0\n"
	tr, err := ParseMSR("c", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("records = %d, want 1", tr.Len())
	}
}

func TestParseMSRAcceptsShortOps(t *testing.T) {
	in := "0,h,0,R,0,4096,0\n1,h,0,W,4096,4096,0\n"
	tr, err := ParseMSR("s", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0).Op != OpRead || tr.At(1).Op != OpWrite {
		t.Error("short op codes misparsed")
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"1,h,0,Read,0\n",         // too few fields
		"x,h,0,Read,0,4096,0\n",  // bad timestamp
		"1,h,0,Erase,0,4096,0\n", // bad op
		"1,h,0,Read,zz,4096,0\n", // bad offset
		"1,h,0,Read,0,zz,0\n",    // bad size
		"1,h,0,Read,0,0,0\n",     // zero size
	}
	for _, in := range cases {
		if _, err := ParseMSR("bad", strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestParseMSRSortsOutOfOrder(t *testing.T) {
	in := "200,h,0,Read,0,512,0\n100,h,0,Write,512,512,0\n"
	tr, err := ParseMSR("o", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("parsed trace invalid: %v", err)
	}
	if tr.At(0).Op != OpWrite {
		t.Error("records not sorted by time")
	}
}
