package trace

import (
	"os"
	"strings"
	"testing"
)

// BenchmarkGenerate measures synthetic trace synthesis throughput.
func BenchmarkGenerate(b *testing.B) {
	p := Profiles["ts0"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Generate(p, int64(i), 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkAnalyze measures the Table 1/3 statistics pass.
func BenchmarkAnalyze(b *testing.B) {
	tr, err := Generate(Profiles["usr0"], 1, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Analyze(tr)
		if s.Requests == 0 {
			b.Fatal("no stats")
		}
	}
}

// BenchmarkTraceScan measures the record-iteration hot path over the
// struct-of-arrays storage: one full At() pass plus the memoised
// MaxOffset per iteration, the same access pattern Simulator.Run and
// Analyze perform.
func BenchmarkTraceScan(b *testing.B) {
	tr, err := Generate(Profiles["ts0"], 1, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		for j := 0; j < tr.Len(); j++ {
			r := tr.At(j)
			sink += r.Time + r.Offset + int64(r.Size) + int64(r.Op)
		}
		sink += tr.MaxOffset()
	}
	if sink == 0 {
		b.Fatal("empty scan")
	}
}

// BenchmarkParseMSR measures CSV parsing throughput. Allocations are
// asserted per parse (see also TestParseMSRAllocsBound): the index-based
// field scanner must not allocate per line, so a whole parse costs only
// the column growth, the scanner buffer and the trace itself.
func BenchmarkParseMSR(b *testing.B) {
	tr, err := Generate(Profiles["lun2"], 1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMSR(&sb, tr); err != nil {
		b.Fatal(err)
	}
	in := sb.String()
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMSR("bench", strings.NewReader(in)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The allocs/op assertion: parsing must cost O(columns), not O(lines).
	// The bound is generous (growth doublings + scanner + sort) but far
	// below one allocation per line.
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ParseMSR("bench", strings.NewReader(in)); err != nil {
			b.Fatal(err)
		}
	})
	if maxAllocs := float64(tr.Len() / 10); allocs > maxAllocs {
		b.Fatalf("ParseMSR of %d lines costs %.0f allocs (> %.0f): per-line allocation crept back in",
			tr.Len(), allocs, maxAllocs)
	}
}

// BenchmarkTraceOpenITC measures opening a compiled .itc trace: map (or
// read), verify, and a single streaming decode pass into exactly-sized
// columns. allocs/op is the gated metric — a constant handful per open,
// zero per record.
func BenchmarkTraceOpenITC(b *testing.B) {
	tr, err := Generate(Profiles["lun2"], 1, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/bench.itc"
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteITC(f, tr); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := OpenITC(path)
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != tr.Len() {
			b.Fatalf("decoded %d records, want %d", got.Len(), tr.Len())
		}
	}
}

// TestParseMSRAllocsBound is the satellite allocs/op assertion in test
// form, so `go test` (not only -bench) enforces it.
func TestParseMSRAllocsBound(t *testing.T) {
	tr, err := Generate(Profiles["lun2"], 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMSR(&sb, tr); err != nil {
		t.Fatal(err)
	}
	in := sb.String()
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ParseMSR("bench", strings.NewReader(in)); err != nil {
			t.Fatal(err)
		}
	})
	if maxAllocs := float64(tr.Len() / 10); allocs > maxAllocs {
		t.Fatalf("ParseMSR of %d lines costs %.0f allocs (> %.0f)", tr.Len(), allocs, maxAllocs)
	}
}
