package trace

import (
	"strings"
	"testing"
)

// BenchmarkGenerate measures synthetic trace synthesis throughput.
func BenchmarkGenerate(b *testing.B) {
	p := Profiles["ts0"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Generate(p, int64(i), 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkAnalyze measures the Table 1/3 statistics pass.
func BenchmarkAnalyze(b *testing.B) {
	tr, err := Generate(Profiles["usr0"], 1, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Analyze(tr)
		if s.Requests == 0 {
			b.Fatal("no stats")
		}
	}
}

// BenchmarkTraceScan measures the record-iteration hot path over the
// struct-of-arrays storage: one full At() pass plus the memoised
// MaxOffset per iteration, the same access pattern Simulator.Run and
// Analyze perform.
func BenchmarkTraceScan(b *testing.B) {
	tr, err := Generate(Profiles["ts0"], 1, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		for j := 0; j < tr.Len(); j++ {
			r := tr.At(j)
			sink += r.Time + r.Offset + int64(r.Size) + int64(r.Op)
		}
		sink += tr.MaxOffset()
	}
	if sink == 0 {
		b.Fatal("empty scan")
	}
}

// BenchmarkParseMSR measures CSV parsing throughput.
func BenchmarkParseMSR(b *testing.B) {
	tr, err := Generate(Profiles["lun2"], 1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMSR(&sb, tr); err != nil {
		b.Fatal(err)
	}
	in := sb.String()
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMSR("bench", strings.NewReader(in)); err != nil {
			b.Fatal(err)
		}
	}
}
