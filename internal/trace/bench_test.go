package trace

import (
	"strings"
	"testing"
)

// BenchmarkGenerate measures synthetic trace synthesis throughput.
func BenchmarkGenerate(b *testing.B) {
	p := Profiles["ts0"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Generate(p, int64(i), 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Records) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkAnalyze measures the Table 1/3 statistics pass.
func BenchmarkAnalyze(b *testing.B) {
	tr, err := Generate(Profiles["usr0"], 1, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := Analyze(tr)
		if s.Requests == 0 {
			b.Fatal("no stats")
		}
	}
}

// BenchmarkParseMSR measures CSV parsing throughput.
func BenchmarkParseMSR(b *testing.B) {
	tr, err := Generate(Profiles["lun2"], 1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMSR(&sb, tr); err != nil {
		b.Fatal(err)
	}
	in := sb.String()
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMSR("bench", strings.NewReader(in)); err != nil {
			b.Fatal(err)
		}
	}
}
