package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ipusim/internal/workload"
)

// Profile describes the statistical shape of one evaluation trace, using
// exactly the quantities the paper publishes in Tables 1 and 3.
type Profile struct {
	// Name is the paper's trace label.
	Name string
	// Requests is the paper's request count (Table 3).
	Requests int
	// WriteRatio is the fraction of write requests (Table 3).
	WriteRatio float64
	// AvgWriteKB is the mean write request size in KB (Table 3).
	AvgWriteKB float64
	// HotWriteRatio is the fraction of writes aimed at hot addresses —
	// addresses requested at least four times (Table 3).
	HotWriteRatio float64
	// UpdateSizeDist is the Table 1 size bucket distribution of updated
	// (rewritten) requests; the generator applies it to all writes so the
	// update subset inherits it.
	UpdateSizeDist workload.SizeDist
	// MeanInterarrival is the long-run average request inter-arrival time.
	MeanInterarrival time.Duration
	// BurstLen is the mean number of requests per burst (>= 1; 1 means a
	// plain Poisson process). Enterprise traces are strongly bursty, and
	// burst absorption is where SLC-cache capacity differences show.
	BurstLen float64
	// BurstSpacing is the inter-arrival time inside a burst.
	BurstSpacing time.Duration
	// Source documents where the original trace came from.
	Source string
}

// Validate reports inconsistent profile parameters.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile without name")
	case p.Requests <= 0:
		return fmt.Errorf("trace %s: Requests must be positive", p.Name)
	case p.WriteRatio < 0 || p.WriteRatio > 1:
		return fmt.Errorf("trace %s: WriteRatio %.3f out of [0,1]", p.Name, p.WriteRatio)
	case p.AvgWriteKB <= 0:
		return fmt.Errorf("trace %s: AvgWriteKB must be positive", p.Name)
	case p.HotWriteRatio < 0 || p.HotWriteRatio > 1:
		return fmt.Errorf("trace %s: HotWriteRatio %.3f out of [0,1]", p.Name, p.HotWriteRatio)
	case p.MeanInterarrival <= 0:
		return fmt.Errorf("trace %s: MeanInterarrival must be positive", p.Name)
	case p.BurstLen < 1:
		return fmt.Errorf("trace %s: BurstLen %.2f must be >= 1", p.Name, p.BurstLen)
	case p.BurstSpacing < 0 || p.BurstSpacing >= p.MeanInterarrival:
		return fmt.Errorf("trace %s: BurstSpacing %v out of [0, MeanInterarrival)", p.Name, p.BurstSpacing)
	}
	return p.UpdateSizeDist.Validate()
}

// Profiles holds the six traces of the paper's evaluation, keyed by name,
// with every number taken from Tables 1 and 3.
var Profiles = map[string]Profile{
	"ts0": {
		Name: "ts0", Requests: 1801734, WriteRatio: 0.824, AvgWriteKB: 8.0,
		HotWriteRatio:    0.505,
		UpdateSizeDist:   workload.SizeDist{Small: 0.698, Medium: 0.179, Large: 0.123},
		MeanInterarrival: 200 * time.Microsecond,
		BurstLen:         128, BurstSpacing: 50 * time.Microsecond,
		Source: "MSR Cambridge block I/O traces (Narayanan et al.)",
	},
	"wdev0": {
		Name: "wdev0", Requests: 1143261, WriteRatio: 0.799, AvgWriteKB: 8.2,
		HotWriteRatio:    0.582,
		UpdateSizeDist:   workload.SizeDist{Small: 0.732, Medium: 0.068, Large: 0.201},
		MeanInterarrival: 200 * time.Microsecond,
		BurstLen:         128, BurstSpacing: 50 * time.Microsecond,
		Source: "MSR Cambridge block I/O traces (Narayanan et al.)",
	},
	"lun1": {
		Name: "lun1", Requests: 1073405, WriteRatio: 0.731, AvgWriteKB: 7.6,
		HotWriteRatio:    0.100,
		UpdateSizeDist:   workload.SizeDist{Small: 0.852, Medium: 0.073, Large: 0.075},
		MeanInterarrival: 200 * time.Microsecond,
		BurstLen:         128, BurstSpacing: 50 * time.Microsecond,
		Source: "enterprise VDI traces, additional-01-2016021615-LUN0 (Lee et al.)",
	},
	"usr0": {
		Name: "usr0", Requests: 2237889, WriteRatio: 0.596, AvgWriteKB: 10.3,
		HotWriteRatio:    0.365,
		UpdateSizeDist:   workload.SizeDist{Small: 0.663, Medium: 0.121, Large: 0.216},
		MeanInterarrival: 200 * time.Microsecond,
		BurstLen:         128, BurstSpacing: 50 * time.Microsecond,
		Source: "MSR Cambridge block I/O traces (Narayanan et al.)",
	},
	"lun2": {
		Name: "lun2", Requests: 1758887, WriteRatio: 0.193, AvgWriteKB: 9.7,
		HotWriteRatio:    0.085,
		UpdateSizeDist:   workload.SizeDist{Small: 0.926, Medium: 0.025, Large: 0.049},
		MeanInterarrival: 200 * time.Microsecond,
		BurstLen:         128, BurstSpacing: 50 * time.Microsecond,
		Source: "enterprise VDI traces, additional-03-2016021719-LUN2 (Lee et al.)",
	},
	"ads": {
		Name: "ads", Requests: 1532120, WriteRatio: 0.095, AvgWriteKB: 7.0,
		HotWriteRatio:    0.183,
		UpdateSizeDist:   workload.SizeDist{Small: 0.745, Medium: 0.141, Large: 0.114},
		MeanInterarrival: 200 * time.Microsecond,
		BurstLen:         128, BurstSpacing: 50 * time.Microsecond,
		Source: "Microsoft Production Server traces (SNIA IOTTA #158)",
	},
}

// ProfileNames returns the trace names in the paper's presentation order
// (Table 3: descending write ratio).
func ProfileNames() []string {
	names := make([]string, 0, len(Profiles))
	for n := range Profiles {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return Profiles[names[i]].WriteRatio > Profiles[names[j]].WriteRatio
	})
	return names
}

// Generate synthesises a trace with the profile's statistics. scale in
// (0, 1] shrinks the request count (and the hot pool proportionally) for
// fast runs; scale 1 reproduces the paper's request counts.
//
// Mechanics: a pool of hot extents (fixed address + size, Zipf popularity)
// receives HotWriteRatio of the writes, so hot extents are rewritten many
// times — these form the "updated requests" of Table 1 and the hot
// addresses of Table 3. Cold writes walk fresh addresses. Reads mirror the
// same hot/cold split so hot data is also read back.
func Generate(p Profile, seed int64, scale float64) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("trace %s: scale %.3f out of (0,1]", p.Name, scale)
	}
	n := int(float64(p.Requests) * scale)
	if n < 100 {
		n = 100
	}
	rng := rand.New(rand.NewSource(seed))
	sizes, err := workload.NewSizeSampler(p.UpdateSizeDist, p.AvgWriteKB)
	if err != nil {
		return nil, err
	}

	// Hot pool sizing: each hot extent must be hit >= 4 times on average
	// so the Table 3 "requested at least 4 times" criterion holds. Aim for
	// ~16 accesses per extent.
	hotWrites := float64(n) * p.WriteRatio * p.HotWriteRatio
	hotExtents := int(hotWrites / 24)
	if hotExtents < 16 {
		hotExtents = 16
	}
	hot, err := workload.NewExtentPool(rng, hotExtents, 0, sizes, 1.25)
	if err != nil {
		return nil, err
	}

	// Cold space: fresh addresses appended after the hot pool. Walking
	// mostly-sequentially with random strides keeps repeats rare.
	coldCursor := hot.End()

	arrivals, err := workload.NewBurstyArrivals(rng, p.MeanInterarrival, p.BurstLen, p.BurstSpacing)
	if err != nil {
		return nil, err
	}

	tr := &Trace{Name: p.Name}
	tr.Reserve(n)
	// coldQueue holds recently written cold extents awaiting one read-back.
	// Reading each at most once keeps cold addresses below the "4 or more
	// requests" hotness threshold of Table 3.
	var coldQueue []workload.Extent
	scanCursor := coldCursor
	for i := 0; i < n; i++ {
		now := arrivals.Next()
		isWrite := rng.Float64() < p.WriteRatio
		isHot := rng.Float64() < p.HotWriteRatio
		var rec Record
		switch {
		case isWrite && isHot:
			e := hot.Pick()
			rec = Record{Time: now, Op: OpWrite, Offset: e.Offset, Size: e.Size}
		case isWrite:
			size := sizes.Sample(rng)
			rec = Record{Time: now, Op: OpWrite, Offset: coldCursor, Size: size}
			coldCursor += int64(size)
			if len(coldQueue) < 1024 {
				coldQueue = append(coldQueue, workload.Extent{Offset: rec.Offset, Size: rec.Size})
			}
		case isHot:
			e := hot.Pick()
			rec = Record{Time: now, Op: OpRead, Offset: e.Offset, Size: e.Size}
		default:
			if len(coldQueue) > 0 && rng.Float64() < 0.5 {
				e := coldQueue[0]
				coldQueue = coldQueue[1:]
				rec = Record{Time: now, Op: OpRead, Offset: e.Offset, Size: e.Size}
			} else {
				// A sequential scan over data that predates the trace.
				size := sizes.Sample(rng)
				rec = Record{Time: now, Op: OpRead, Offset: scanCursor, Size: size}
				scanCursor += int64(size)
			}
		}
		tr.Append(rec)
	}
	return tr, nil
}
