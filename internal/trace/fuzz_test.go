package trace

import (
	"strings"
	"testing"
)

// FuzzParseMSR checks the parser never panics and that anything it accepts
// is a well-formed trace that round-trips through the writer.
func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,host,0,Write,4096,4096,100\n")
	f.Add("0,h,0,R,0,512,0\n1,h,0,W,512,512,0\n")
	f.Add("# comment\n\n5,x,2,read,8192,16384,7\n")
	f.Add("garbage")
	f.Add("1,h,0,Write,-5,100,0\n")
	f.Add("9223372036854775807,h,0,Write,1,1,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseMSR("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var sb strings.Builder
		if err := WriteMSR(&sb, tr); err != nil {
			t.Fatalf("writer failed on accepted trace: %v", err)
		}
		again, err := ParseMSR("fuzz2", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip lost records: %d -> %d", tr.Len(), again.Len())
		}
	})
}
