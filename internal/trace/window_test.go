package trace

import "testing"

func windowFixture() *Trace {
	return New("w",
		Record{Time: 0, Op: OpWrite, Offset: 0, Size: 4096},
		Record{Time: 100, Op: OpRead, Offset: 4096, Size: 4096},
		Record{Time: 200, Op: OpWrite, Offset: 8192, Size: 4096},
		Record{Time: 300, Op: OpRead, Offset: 0, Size: 4096},
	)
}

func TestClip(t *testing.T) {
	tr := windowFixture()
	got := tr.Clip(100, 300)
	if got.Len() != 2 {
		t.Fatalf("records = %d", got.Len())
	}
	if got.At(0).Time != 0 || got.At(1).Time != 100 {
		t.Errorf("timestamps not rebased: %+v %+v", got.At(0), got.At(1))
	}
	if got.At(0).Op != OpRead || got.At(1).Op != OpWrite {
		t.Error("wrong records kept")
	}
	if tr.Len() != 4 {
		t.Error("Clip mutated the source")
	}
	if empty := tr.Clip(900, 1000); empty.Len() != 0 {
		t.Error("out-of-range clip not empty")
	}
}

func TestFilterOp(t *testing.T) {
	tr := windowFixture()
	reads := tr.FilterOp(OpRead)
	writes := tr.FilterOp(OpWrite)
	if reads.Len() != 2 || writes.Len() != 2 {
		t.Fatalf("split %d/%d", reads.Len(), writes.Len())
	}
	for i := 0; i < reads.Len(); i++ {
		if reads.At(i).Op != OpRead {
			t.Error("write leaked into read filter")
		}
	}
	if reads.At(0).Time != 100 {
		t.Error("timestamps must be preserved")
	}
}

func TestHead(t *testing.T) {
	tr := windowFixture()
	if got := tr.Head(2); got.Len() != 2 || got.At(1).Time != 100 {
		t.Errorf("Head(2): len %d", got.Len())
	}
	if got := tr.Head(99); got.Len() != 4 {
		t.Error("Head beyond length must clamp")
	}
	if got := tr.Head(-1); got.Len() != 0 {
		t.Error("negative Head must be empty")
	}
	h := tr.Head(4)
	h.off[0] = 999
	if tr.At(0).Offset == 999 {
		t.Error("Head must copy records")
	}
}

func TestScale(t *testing.T) {
	tr := windowFixture()
	fast := tr.Scale(0.5)
	if fast.At(3).Time != 150 {
		t.Errorf("compressed time = %d", fast.At(3).Time)
	}
	slow := tr.Scale(2)
	if slow.At(3).Time != 600 {
		t.Errorf("stretched time = %d", slow.At(3).Time)
	}
	if tr.At(3).Time != 300 {
		t.Error("Scale mutated the source")
	}
	if slow.MaxOffset() != tr.MaxOffset() {
		t.Error("Scale must preserve MaxOffset")
	}
	if err := fast.Validate(); err != nil {
		t.Errorf("scaled trace invalid: %v", err)
	}
}
