package trace

import "testing"

func windowFixture() *Trace {
	return &Trace{Name: "w", Records: []Record{
		{Time: 0, Op: OpWrite, Offset: 0, Size: 4096},
		{Time: 100, Op: OpRead, Offset: 4096, Size: 4096},
		{Time: 200, Op: OpWrite, Offset: 8192, Size: 4096},
		{Time: 300, Op: OpRead, Offset: 0, Size: 4096},
	}}
}

func TestClip(t *testing.T) {
	tr := windowFixture()
	got := tr.Clip(100, 300)
	if len(got.Records) != 2 {
		t.Fatalf("records = %d", len(got.Records))
	}
	if got.Records[0].Time != 0 || got.Records[1].Time != 100 {
		t.Errorf("timestamps not rebased: %+v", got.Records)
	}
	if got.Records[0].Op != OpRead || got.Records[1].Op != OpWrite {
		t.Error("wrong records kept")
	}
	if len(tr.Records) != 4 {
		t.Error("Clip mutated the source")
	}
	if empty := tr.Clip(900, 1000); len(empty.Records) != 0 {
		t.Error("out-of-range clip not empty")
	}
}

func TestFilterOp(t *testing.T) {
	tr := windowFixture()
	reads := tr.FilterOp(OpRead)
	writes := tr.FilterOp(OpWrite)
	if len(reads.Records) != 2 || len(writes.Records) != 2 {
		t.Fatalf("split %d/%d", len(reads.Records), len(writes.Records))
	}
	for _, r := range reads.Records {
		if r.Op != OpRead {
			t.Error("write leaked into read filter")
		}
	}
	if reads.Records[0].Time != 100 {
		t.Error("timestamps must be preserved")
	}
}

func TestHead(t *testing.T) {
	tr := windowFixture()
	if got := tr.Head(2); len(got.Records) != 2 || got.Records[1].Time != 100 {
		t.Errorf("Head(2): %+v", got.Records)
	}
	if got := tr.Head(99); len(got.Records) != 4 {
		t.Error("Head beyond length must clamp")
	}
	if got := tr.Head(-1); len(got.Records) != 0 {
		t.Error("negative Head must be empty")
	}
	h := tr.Head(4)
	h.Records[0].Offset = 999
	if tr.Records[0].Offset == 999 {
		t.Error("Head must copy records")
	}
}

func TestScale(t *testing.T) {
	tr := windowFixture()
	fast := tr.Scale(0.5)
	if fast.Records[3].Time != 150 {
		t.Errorf("compressed time = %d", fast.Records[3].Time)
	}
	slow := tr.Scale(2)
	if slow.Records[3].Time != 600 {
		t.Errorf("stretched time = %d", slow.Records[3].Time)
	}
	if tr.Records[3].Time != 300 {
		t.Error("Scale mutated the source")
	}
	if err := fast.Validate(); err != nil {
		t.Errorf("scaled trace invalid: %v", err)
	}
}
