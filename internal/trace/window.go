package trace

// Clip returns a new trace containing the records with Time in [from, to),
// rebased so the first kept record starts at zero. Use it to replay a
// window of a long real trace.
func (t *Trace) Clip(from, to int64) *Trace {
	out := &Trace{Name: t.Name}
	var base int64
	haveBase := false
	for _, r := range t.Records {
		if r.Time < from || r.Time >= to {
			continue
		}
		if !haveBase {
			base = r.Time
			haveBase = true
		}
		r.Time -= base
		out.Records = append(out.Records, r)
	}
	return out
}

// FilterOp returns a new trace containing only records of the given
// operation type, preserving timestamps.
func (t *Trace) FilterOp(op OpType) *Trace {
	out := &Trace{Name: t.Name}
	for _, r := range t.Records {
		if r.Op == op {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Head returns a new trace with at most n leading records.
func (t *Trace) Head(n int) *Trace {
	if n > len(t.Records) {
		n = len(t.Records)
	}
	if n < 0 {
		n = 0
	}
	out := &Trace{Name: t.Name, Records: make([]Record, n)}
	copy(out.Records, t.Records[:n])
	return out
}

// Scale returns a new trace with all timestamps multiplied by factor,
// compressing (factor < 1) or stretching (factor > 1) the arrival process
// to change the load intensity without altering the access pattern.
func (t *Trace) Scale(factor float64) *Trace {
	out := &Trace{Name: t.Name, Records: make([]Record, len(t.Records))}
	copy(out.Records, t.Records)
	for i := range out.Records {
		out.Records[i].Time = int64(float64(out.Records[i].Time) * factor)
	}
	return out
}
