package trace

// Clip returns a new trace containing the records with Time in [from, to),
// rebased so the first kept record starts at zero. Use it to replay a
// window of a long real trace.
func (t *Trace) Clip(from, to int64) *Trace {
	out := &Trace{Name: t.Name}
	var base int64
	haveBase := false
	for i := 0; i < t.Len(); i++ {
		r := t.At(i)
		if r.Time < from || r.Time >= to {
			continue
		}
		if !haveBase {
			base = r.Time
			haveBase = true
		}
		r.Time -= base
		out.Append(r)
	}
	return out
}

// FilterOp returns a new trace containing only records of the given
// operation type, preserving timestamps.
func (t *Trace) FilterOp(op OpType) *Trace {
	out := &Trace{Name: t.Name}
	for i := 0; i < t.Len(); i++ {
		if t.op[i] == op {
			out.Append(t.At(i))
		}
	}
	return out
}

// Head returns a new trace with at most n leading records.
func (t *Trace) Head(n int) *Trace {
	if n > t.Len() {
		n = t.Len()
	}
	if n < 0 {
		n = 0
	}
	out := &Trace{Name: t.Name}
	out.Reserve(n)
	for i := 0; i < n; i++ {
		out.Append(t.At(i))
	}
	return out
}

// Scale returns a new trace with all timestamps multiplied by factor,
// compressing (factor < 1) or stretching (factor > 1) the arrival process
// to change the load intensity without altering the access pattern.
func (t *Trace) Scale(factor float64) *Trace {
	n := t.Len()
	out := &Trace{
		Name:   t.Name,
		time:   make([]int64, n),
		op:     make([]OpType, n),
		off:    make([]int64, n),
		size:   make([]int32, n),
		maxEnd: t.maxEnd,
	}
	copy(out.op, t.op)
	copy(out.off, t.off)
	copy(out.size, t.size)
	for i, ts := range t.time {
		out.time[i] = int64(float64(ts) * factor)
	}
	return out
}
