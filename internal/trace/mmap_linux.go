//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mapFile returns a read-only view of the file's bytes, memory-mapped so
// large compiled traces decode straight out of the page cache, plus a
// release function. Empty files map to an empty (non-mmap) slice.
func mapFile(path string) (data []byte, unmap func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if int64(int(size)) != size {
		return readFileFallback(path)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems (or sandboxes) refuse mmap; fall back to a read.
		return readFileFallback(path)
	}
	return b, func() { _ = syscall.Munmap(b) }, nil
}
