package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The MSR-Cambridge block I/O trace format is CSV with the fields
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp and ResponseTime are Windows FILETIME values (100 ns
// ticks) and Type is "Read" or "Write".

const filetimeTick = 100 // nanoseconds per FILETIME tick

// ParseMSR reads a trace in MSR-Cambridge CSV format. Timestamps are
// rebased so the first record is at time zero. Lines that are empty or
// start with '#' are skipped.
func ParseMSR(name string, r io.Reader) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var base int64
	haveBase := false
	lineNo := 0
	// Records are parsed with absolute tick timestamps first, then rebased
	// to the minimum so an out-of-order head cannot produce negative times.
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 6 {
			return nil, fmt.Errorf("trace %s line %d: %d fields, want at least 6", name, lineNo, len(fields))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace %s line %d: bad timestamp: %v", name, lineNo, err)
		}
		var op OpType
		switch strings.ToLower(strings.TrimSpace(fields[3])) {
		case "read", "r":
			op = OpRead
		case "write", "w":
			op = OpWrite
		default:
			return nil, fmt.Errorf("trace %s line %d: unknown op %q", name, lineNo, fields[3])
		}
		off, err := strconv.ParseInt(strings.TrimSpace(fields[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace %s line %d: bad offset: %v", name, lineNo, err)
		}
		if off < 0 {
			return nil, fmt.Errorf("trace %s line %d: negative offset %d", name, lineNo, off)
		}
		size, err := strconv.Atoi(strings.TrimSpace(fields[5]))
		if err != nil {
			return nil, fmt.Errorf("trace %s line %d: bad size: %v", name, lineNo, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("trace %s line %d: non-positive size %d", name, lineNo, size)
		}
		if !haveBase || ts < base {
			base = ts
			haveBase = true
		}
		t.Append(Record{
			Time:   ts, // absolute ticks; rebased below
			Op:     op,
			Offset: off,
			Size:   size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s: %v", name, err)
	}
	for i := range t.time {
		t.time[i] = (t.time[i] - base) * filetimeTick
	}
	t.Sort()
	return t, nil
}

// WriteMSR writes a trace in MSR-Cambridge CSV format. The trace name is
// used as the hostname field; disk number and response time are zero.
func WriteMSR(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < t.Len(); i++ {
		r := t.At(i)
		if _, err := fmt.Fprintf(bw, "%d,%s,0,%s,%d,%d,0\n",
			r.Time/filetimeTick, t.Name, r.Op, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
