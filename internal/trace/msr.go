package trace

import (
	"bufio"
	"fmt"
	"io"
)

// The MSR-Cambridge block I/O trace format is CSV with the fields
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp and ResponseTime are Windows FILETIME values (100 ns
// ticks) and Type is "Read" or "Write".

const filetimeTick = 100 // nanoseconds per FILETIME tick

// msrFields is the minimum CSV field count of a record line.
const msrFields = 6

// trimBytes returns b without leading/trailing ASCII whitespace, in place.
func trimBytes(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// parseDecimal parses a non-negative base-10 integer from a trimmed byte
// field without allocating. It rejects empty fields, non-digits and
// int64 overflow.
func parseDecimal(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	const cutoff = (1<<63 - 1) / 10
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > cutoff {
			return 0, false
		}
		n *= 10
		d := int64(c - '0')
		if n > (1<<63-1)-d {
			return 0, false
		}
		n += d
	}
	return n, true
}

// eqFold reports whether b equals the lower-case ASCII string s,
// case-insensitively, without allocating.
func eqFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// ParseMSR reads a trace in MSR-Cambridge CSV format. Timestamps are
// rebased so the first record is at time zero. Lines that are empty or
// start with '#' are skipped.
//
// The parser is allocation-lean: lines are scanned as byte slices and
// fields located by index, so steady-state parsing allocates only for
// column growth (and error paths). That matters because CSV parsing is the
// cold-start cost of every -file replay; compiled .itc traces (see
// OpenITC) avoid even this.
func ParseMSR(name string, r io.Reader) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var base int64
	haveBase := false
	lineNo := 0
	// Records are parsed with absolute tick timestamps first, then rebased
	// to the minimum so an out-of-order head cannot produce negative times.
	for sc.Scan() {
		lineNo++
		line := trimBytes(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		// Locate the first msrFields comma-separated fields by index;
		// anything beyond them is ignored, like the old strings.Split
		// parser did.
		var fields [msrFields][]byte
		nf := 0
		start := 0
		for i := 0; i <= len(line) && nf < msrFields; i++ {
			if i == len(line) || line[i] == ',' {
				fields[nf] = trimBytes(line[start:i])
				nf++
				start = i + 1
			}
		}
		if nf < msrFields {
			return nil, fmt.Errorf("trace %s line %d: %d fields, want at least %d", name, lineNo, nf, msrFields)
		}
		ts, ok := parseDecimal(fields[0])
		if !ok {
			return nil, fmt.Errorf("trace %s line %d: bad timestamp %q", name, lineNo, fields[0])
		}
		var op OpType
		switch {
		case eqFold(fields[3], "read") || eqFold(fields[3], "r"):
			op = OpRead
		case eqFold(fields[3], "write") || eqFold(fields[3], "w"):
			op = OpWrite
		default:
			return nil, fmt.Errorf("trace %s line %d: unknown op %q", name, lineNo, fields[3])
		}
		off, ok := parseDecimal(fields[4])
		if !ok {
			return nil, fmt.Errorf("trace %s line %d: bad offset %q", name, lineNo, fields[4])
		}
		size, ok := parseDecimal(fields[5])
		if !ok || size > 1<<31-1 {
			return nil, fmt.Errorf("trace %s line %d: bad size %q", name, lineNo, fields[5])
		}
		if size <= 0 {
			return nil, fmt.Errorf("trace %s line %d: non-positive size %d", name, lineNo, size)
		}
		if !haveBase || ts < base {
			base = ts
			haveBase = true
		}
		t.Append(Record{
			Time:   ts, // absolute ticks; rebased below
			Op:     op,
			Offset: off,
			Size:   int(size),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s: %v", name, err)
	}
	for i := range t.time {
		t.time[i] = (t.time[i] - base) * filetimeTick
	}
	t.Sort()
	return t, nil
}

// WriteMSR writes a trace in MSR-Cambridge CSV format. The trace name is
// used as the hostname field; disk number and response time are zero.
func WriteMSR(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < t.Len(); i++ {
		r := t.At(i)
		if _, err := fmt.Fprintf(bw, "%d,%s,0,%s,%d,%d,0\n",
			r.Time/filetimeTick, t.Name, r.Op, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
