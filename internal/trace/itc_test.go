package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// itcSample builds a representative trace: mixed ops, clustered offsets,
// duplicate timestamps, a large time jump.
func itcSample(t *testing.T, n int) *Trace {
	t.Helper()
	tr, err := Generate(Profiles["lun2"], 7, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < n {
		t.Fatalf("sample trace has %d records, want at least %d", tr.Len(), n)
	}
	return tr
}

func TestITCRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{
		New("empty"),
		New("one", Record{Time: 5, Op: OpWrite, Offset: 4096, Size: 4096}),
		itcSample(t, 1000),
	} {
		b, err := AppendITC(nil, tr)
		if err != nil {
			t.Fatalf("%s: encode: %v", tr.Name, err)
		}
		got, err := DecodeITC(tr.Name, b)
		if err != nil {
			t.Fatalf("%s: decode: %v", tr.Name, err)
		}
		assertTraceEqual(t, tr, got)
	}
}

func assertTraceEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("name %q, want %q", got.Name, want.Name)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d records, want %d", want.Name, got.Len(), want.Len())
	}
	if got.MaxOffset() != want.MaxOffset() {
		t.Fatalf("%s: MaxOffset %d, want %d", want.Name, got.MaxOffset(), want.MaxOffset())
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("%s: record %d = %+v, want %+v", want.Name, i, got.At(i), want.At(i))
		}
	}
}

func TestITCOpenFile(t *testing.T) {
	tr := itcSample(t, 100)
	path := filepath.Join(t.TempDir(), "sample.itc")
	var buf bytes.Buffer
	if err := WriteITC(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := OpenITC(path)
	if err != nil {
		t.Fatal(err)
	}
	assertTraceEqual(t, tr, got)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}

	// Open sniffs the format: the same file through Open, and a CSV
	// through Open, both land on the right parser.
	got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	assertTraceEqual(t, tr, got)

	csvPath := filepath.Join(t.TempDir(), "sample.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMSR(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	parsed, err := Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != tr.Len() {
		t.Fatalf("CSV via Open: %d records, want %d", parsed.Len(), tr.Len())
	}
}

// TestITCRejectsTornFiles truncates and corrupts an encoding at every
// region and asserts the decoder returns an error instead of panicking or
// silently accepting.
func TestITCRejectsTornFiles(t *testing.T) {
	tr := itcSample(t, 200)
	b, err := AppendITC(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at a spread of prefixes, including mid-header and
	// mid-column.
	for _, cut := range []int{0, 1, 3, 4, 8, itcHeaderSize, itcHeaderSize + 3, len(b) / 2, len(b) - 9, len(b) - 1} {
		if cut >= len(b) {
			continue
		}
		if _, err := DecodeITC("torn", b[:cut]); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(b))
		}
	}
	// Single-byte corruption anywhere must trip the checksum (or a
	// structural check).
	for _, pos := range []int{0, 5, 9, 17, itcHeaderSize + 1, len(b)/2 + 1, len(b) - 4} {
		mut := append([]byte(nil), b...)
		mut[pos] ^= 0x40
		if _, err := DecodeITC("corrupt", mut); err == nil {
			t.Errorf("corruption at byte %d accepted", pos)
		}
	}
	// Trailing garbage is rejected even when the prefix is intact.
	if _, err := DecodeITC("trailing", append(append([]byte(nil), b...), 0xAA)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestITCEncodeRejectsInvalid ensures no .itc file of an ill-formed trace
// can come into existence.
func TestITCEncodeRejectsInvalid(t *testing.T) {
	bad := New("bad",
		Record{Time: 10, Op: OpRead, Offset: 0, Size: 4096},
		Record{Time: 5, Op: OpRead, Offset: 0, Size: 4096}, // out of order
	)
	if _, err := AppendITC(nil, bad); err == nil {
		t.Fatal("out-of-order trace encoded")
	}
}

// TestOpenITCAllocs pins the open path's allocation behaviour: one open
// costs a constant handful of allocations (the four columns plus
// bookkeeping) regardless of record count — zero per parsed record.
func TestOpenITCAllocs(t *testing.T) {
	tr := itcSample(t, 2000)
	b, err := AppendITC(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := DecodeITC("allocs", b); err != nil {
			panic(err)
		}
	})
	// 4 columns + trace struct + name + checksum hasher state.
	if allocs > 16 {
		t.Errorf("DecodeITC of %d records costs %.0f allocs; want a record-count-independent handful", tr.Len(), allocs)
	}
}

// FuzzDecodeITC feeds the decoder arbitrary bytes: it must either decode
// to a trace that passes Validate and re-encodes byte-identically, or
// reject with an error — never panic.
func FuzzDecodeITC(f *testing.F) {
	tr := New("seed",
		Record{Time: 0, Op: OpRead, Offset: 0, Size: 512},
		Record{Time: 0, Op: OpWrite, Offset: 1 << 40, Size: 1 << 20},
		Record{Time: 123456789, Op: OpWrite, Offset: 4096, Size: 4096},
	)
	if b, err := AppendITC(nil, tr); err == nil {
		f.Add(b)
		f.Add(b[:len(b)/2])
		mut := append([]byte(nil), b...)
		mut[9] ^= 0xFF
		f.Add(mut)
	}
	if b, err := AppendITC(nil, New("empty")); err == nil {
		f.Add(b)
	}
	f.Add([]byte(itcMagic))
	f.Add([]byte("ITC1\x00\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeITC("fuzz", data)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded trace fails Validate: %v", err)
		}
		again, err := AppendITC(nil, tr)
		if err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("decode/encode is not the identity on accepted input")
		}
	})
}
