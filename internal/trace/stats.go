package trace

import (
	"math"

	"ipusim/internal/workload"
)

// Stats summarises a trace with exactly the quantities of the paper's
// Tables 1 and 3, so synthetic traces can be validated against their
// profiles and real traces can be characterised.
type Stats struct {
	// Requests is the total request count (Table 3 "# of Req.").
	Requests int
	// Writes is the number of write requests.
	Writes int
	// WriteRatio is Writes/Requests (Table 3 "Write R").
	WriteRatio float64
	// AvgWriteKB is the mean write request size in KB (Table 3 "Write SZ").
	AvgWriteKB float64
	// HotWriteRatio is the fraction of write requests whose start address
	// is requested at least HotThreshold times in the trace (Table 3
	// "Hot write").
	HotWriteRatio float64
	// UpdatedWrites counts write requests whose start address was written
	// before (the "updated requests" of Table 1).
	UpdatedWrites int
	// UpdateSizeDist is the size bucket distribution over updated write
	// requests (Table 1).
	UpdateSizeDist workload.SizeDist
	// DurationNS is the trace span in nanoseconds.
	DurationNS int64
	// MeanInterarrivalNS is the average request inter-arrival time.
	MeanInterarrivalNS float64
	// InterarrivalCV is the coefficient of variation (stddev over mean) of
	// inter-arrival times: ~1 for a Poisson process, well above 1 for the
	// bursty arrival patterns of enterprise traces.
	InterarrivalCV float64
}

// HotThreshold is the paper's hotness criterion: an address is hot when it
// is requested at least this many times (Table 3 caption).
const HotThreshold = 4

// Analyze computes trace statistics in two passes: one to count accesses
// per start address, one to classify each write.
func Analyze(t *Trace) Stats {
	var s Stats
	s.Requests = t.Len()
	if s.Requests == 0 {
		return s
	}
	s.DurationNS = t.time[t.Len()-1] - t.time[0]
	if n := t.Len() - 1; n > 0 {
		mean := float64(s.DurationNS) / float64(n)
		var varSum float64
		for i := 1; i < t.Len(); i++ {
			d := float64(t.time[i]-t.time[i-1]) - mean
			varSum += d * d
		}
		s.MeanInterarrivalNS = mean
		if mean > 0 {
			s.InterarrivalCV = math.Sqrt(varSum/float64(n)) / mean
		}
	}

	access := make(map[int64]int, s.Requests)
	for _, off := range t.off {
		access[off]++
	}

	writtenBefore := make(map[int64]bool, s.Requests)
	var writeBytes int64
	var hotWrites int
	var small, medium, large int
	for i := 0; i < t.Len(); i++ {
		r := t.At(i)
		if r.Op != OpWrite {
			continue
		}
		s.Writes++
		writeBytes += int64(r.Size)
		if access[r.Offset] >= HotThreshold {
			hotWrites++
		}
		if writtenBefore[r.Offset] {
			s.UpdatedWrites++
			switch {
			case r.Size <= 4*workload.KB:
				small++
			case r.Size <= 8*workload.KB:
				medium++
			default:
				large++
			}
		}
		writtenBefore[r.Offset] = true
	}
	s.WriteRatio = float64(s.Writes) / float64(s.Requests)
	if s.Writes > 0 {
		s.AvgWriteKB = float64(writeBytes) / float64(s.Writes) / workload.KB
		s.HotWriteRatio = float64(hotWrites) / float64(s.Writes)
	}
	if s.UpdatedWrites > 0 {
		u := float64(s.UpdatedWrites)
		s.UpdateSizeDist = workload.SizeDist{
			Small:  float64(small) / u,
			Medium: float64(medium) / u,
			Large:  float64(large) / u,
		}
	}
	return s
}
