package flash

import (
	"testing"
	"testing/quick"
)

func TestPPARoundTrip(t *testing.T) {
	f := func(block uint32, page uint16, slot uint8) bool {
		b := int(block % (ppaBlockMask + 1))
		p := int(page % (ppaPageMask + 1))
		s := int(slot % (ppaSlotMask + 1))
		ppa := NewPPA(b, p, s)
		return ppa.Block() == b && ppa.Page() == p && ppa.Slot() == s && ppa.Mapped()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPPAOutOfRangePanics(t *testing.T) {
	cases := []struct{ b, p, s int }{
		{ppaBlockMask + 1, 0, 0},
		{0, ppaPageMask + 1, 0},
		{0, 0, ppaSlotMask + 1},
		{-1, 0, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPPA(%d,%d,%d) did not panic", c.b, c.p, c.s)
				}
			}()
			NewPPA(c.b, c.p, c.s)
		}()
	}
}

func TestUnmappedPPA(t *testing.T) {
	if UnmappedPPA.Mapped() {
		t.Error("UnmappedPPA reports mapped")
	}
	if UnmappedPPA.String() != "PPA(unmapped)" {
		t.Errorf("unexpected string %q", UnmappedPPA.String())
	}
	if NewPPA(0, 0, 0).Mapped() == false {
		t.Error("zero PPA must be a valid mapped address")
	}
}

func TestPPAPageAddr(t *testing.T) {
	a := NewPPA(7, 13, 2)
	b := NewPPA(7, 13, 3)
	c := NewPPA(7, 14, 2)
	if a.PageAddr() != b.PageAddr() {
		t.Error("same page, different slots must share PageAddr")
	}
	if a.PageAddr() == c.PageAddr() {
		t.Error("different pages must not share PageAddr")
	}
	if a.PageAddr().Slot() != 0 {
		t.Error("PageAddr must clear the slot bits")
	}
}

func TestLSNFrame(t *testing.T) {
	cases := []struct {
		lsn   LSN
		slots int
		want  int32
	}{
		{0, 4, 0}, {3, 4, 0}, {4, 4, 1}, {7, 4, 1}, {8, 4, 2}, {100, 4, 25},
	}
	for _, c := range cases {
		if got := c.lsn.Frame(c.slots); got != c.want {
			t.Errorf("LSN(%d).Frame(%d) = %d, want %d", c.lsn, c.slots, got, c.want)
		}
	}
}

func TestPPAString(t *testing.T) {
	got := NewPPA(3, 5, 1).String()
	if got != "PPA(b3 p5 s1)" {
		t.Errorf("String = %q", got)
	}
}
