package flash

import (
	"fmt"
	"math/bits"
)

// SlotWrite names one subpage slot to program and the logical data to place
// in it.
type SlotWrite struct {
	Slot int
	LSN  LSN
}

// Array is the physical flash array: every block of the device plus the
// geometry needed to address it. All mutation goes through Array methods so
// the cached per-block counters stay consistent.
type Array struct {
	cfg    *Config
	blocks []Block

	// pages and subs are the device-wide backing stores every Block.Pages
	// and Page.Slots slice points into. Keeping them flat makes Clone two
	// bulk copies plus slice-header rebinding instead of a per-block
	// allocation walk.
	pages []Page
	subs  []Subpage

	// slcIDs and mlcIDs partition block IDs by mode. SLC blocks occupy the
	// low IDs, which keeps them striped across all chips.
	slcIDs []int
	mlcIDs []int

	// Device-wide counters.

	// SLCErases / MLCErases count erase operations per region (Fig. 10).
	SLCErases, MLCErases int64
	// SLCPrograms / MLCPrograms count page program operations per region
	// (Fig. 6 distinguishes writes completed in SLC vs MLC blocks).
	SLCPrograms, MLCPrograms int64
	// PartialPrograms counts partial (second or later) program operations.
	PartialPrograms int64

	// SLCJCount / SLCJSumWT aggregate every SLC block's J set (Eq. 2)
	// array-wide, so ISR victim selection derives the cache-wide mean age T
	// in O(1) instead of re-walking every block per GC trigger. Maintained
	// alongside the per-block JCount/JSumWT in ProgramPage, Invalidate and
	// Erase.
	SLCJCount int64
	SLCJSumWT int64

	// slcUsed is a bitset over the SLC block IDs (which occupy [0,
	// SLCBlocks)): a bit is set while its block has been programmed since
	// the last erase. This is the candidate set GC victim selection
	// iterates, replacing full scans over SLCBlockIDs.
	slcUsed []uint64

	// dirtyBlocks and dirtyPages track what has been mutated since the
	// last Restore: dirtyBlocks is a bitset over block IDs whose Block
	// struct changed, dirtyPages a bitset over flat page-store indices
	// whose Page struct or subpages changed. Every mutator marks what it
	// touches, so Restore from the same unmutated template only has to
	// re-copy the dirty pieces instead of the whole device — a short
	// replay's scattered invalidates touch a few pages in many blocks,
	// and the full-store memmove dominated recycled-clone start-up cost.
	dirtyBlocks []uint64
	dirtyPages  []uint64
	// gen increments on every mutation and every Restore, so (pointer,
	// gen) uniquely identifies one content state of this array for as
	// long as it lives — gen never repeats or rewinds.
	gen uint64
	// restoredFrom / restoredGen record the template (and its gen) this
	// array was last restored from. A later Restore takes the dirty-only
	// fast path only when both still match.
	restoredFrom *Array
	restoredGen  uint64
}

// NewArray builds the array described by cfg. cfg must validate.
func NewArray(cfg *Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg, blocks: make([]Block, cfg.Blocks)}
	slots := cfg.SlotsPerPage()
	nSLC := cfg.SLCBlocks()
	a.slcUsed = make([]uint64, (nSLC+63)/64)
	a.dirtyBlocks = make([]uint64, (cfg.Blocks+63)/64)
	totalPages := nSLC*cfg.SLCPagesPerBlock + (cfg.Blocks-nSLC)*cfg.MLCPagesPerBlock
	a.dirtyPages = make([]uint64, (totalPages+63)/64)
	a.pages = make([]Page, totalPages)
	a.subs = make([]Subpage, totalPages*slots)
	for i := range a.subs {
		a.subs[i].LSN = InvalidLSN
	}
	pageOff := 0
	for id := range a.blocks {
		b := &a.blocks[id]
		b.ID = id
		pages := cfg.MLCPagesPerBlock
		b.Mode = ModeMLC
		b.Level = LevelHighDensity
		if id < nSLC {
			pages = cfg.SLCPagesPerBlock
			b.Mode = ModeSLC
			b.Level = LevelWork
			a.slcIDs = append(a.slcIDs, id)
		} else {
			a.mlcIDs = append(a.mlcIDs, id)
		}
		b.Pages = a.pages[pageOff : pageOff+pages : pageOff+pages]
		pageOff += pages
	}
	a.bindSlots()
	return a, nil
}

// bindSlots points every page's Slots header at its run of the flat
// subpage store. The layout is positional, so rebinding after a bulk copy
// reproduces the exact structure of the source array.
func (a *Array) bindSlots() {
	slots := a.cfg.SlotsPerPage()
	for i := range a.pages {
		a.pages[i].Slots = a.subs[i*slots : (i+1)*slots : (i+1)*slots]
	}
}

// markDirty records that block id's struct diverged from whatever template
// this array was last restored from. Every mutator calls it (every
// mutation moves a per-block counter); Restore consumes and clears the
// set. Slot- and page-level changes are tracked separately by
// markPageDirty / markPageRangeDirty on the flat page index.
func (a *Array) markDirty(id int) {
	a.dirtyBlocks[id>>6] |= 1 << (id & 63)
	a.gen++
}

// markPageDirty records that the page at flat index i (its Page struct or
// any of its subpages) has been mutated.
func (a *Array) markPageDirty(i int) {
	a.dirtyPages[i>>6] |= 1 << (i & 63)
}

// markPageRangeDirty marks the n pages starting at flat index po dirty.
func (a *Array) markPageRangeDirty(po, n int) {
	for i := po; i < po+n; i++ {
		a.dirtyPages[i>>6] |= 1 << (i & 63)
	}
}

// MarkBlockDirty flags a whole block as externally mutated. Code that
// writes a block's fields through the Block pointer instead of an Array
// mutator must call it, or a later dirty-only Restore will miss the
// change.
func (a *Array) MarkBlockDirty(id int) {
	a.markDirty(id)
	a.markPageRangeDirty(a.pageOffset(id), len(a.blocks[id].Pages))
}

// pageOffset returns block id's first index in the flat page store. SLC
// blocks occupy the low IDs, so the offset is a two-term product.
func (a *Array) pageOffset(id int) int {
	if nSLC := a.cfg.SLCBlocks(); id >= nSLC {
		return nSLC*a.cfg.SLCPagesPerBlock + (id-nSLC)*a.cfg.MLCPagesPerBlock
	}
	return id * a.cfg.SLCPagesPerBlock
}

// Clone returns a deep copy of the array sharing only the immutable config
// and block-ID index slices. The copy is two bulk memmoves of the flat
// page/subpage stores plus header rebinding, independent of how much of
// the device has been programmed — the heart of the precondition-snapshot
// layer.
func (a *Array) Clone() *Array {
	c := &Array{
		blocks:      make([]Block, len(a.blocks)),
		pages:       make([]Page, len(a.pages)),
		subs:        make([]Subpage, len(a.subs)),
		slcUsed:     make([]uint64, len(a.slcUsed)),
		dirtyBlocks: make([]uint64, len(a.dirtyBlocks)),
		dirtyPages:  make([]uint64, len(a.dirtyPages)),
	}
	c.Restore(a)
	return c
}

// Restore overwrites a with a deep copy of t, reusing a's backing stores
// instead of allocating fresh ones — the recycled-clone start-up path. The
// two arrays must come from the same geometry.
//
// When a was already restored from this exact template and t has not been
// mutated since (checked by pointer and generation), only the blocks and
// pages a dirtied in between are re-copied and rebound; everything else
// is known to still equal t. A short replay touches a small fraction of
// the device, so this turns the dominant full-store memmove into a few
// per-block struct copies and per-page slot copies.
func (a *Array) Restore(t *Array) {
	blocks, pages, subs, used := a.blocks, a.pages, a.subs, a.slcUsed
	dirtyB, dirtyP := a.dirtyBlocks, a.dirtyPages
	gen := a.gen
	fast := a.restoredFrom == t && a.restoredGen == t.gen
	if fast {
		slots := t.cfg.SlotsPerPage()
		for w := range dirtyB {
			word := dirtyB[w]
			if word == 0 {
				continue
			}
			dirtyB[w] = 0
			for word != 0 {
				id := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				po := t.pageOffset(id)
				n := len(t.blocks[id].Pages)
				blocks[id] = t.blocks[id]
				blocks[id].Pages = pages[po : po+n : po+n]
			}
		}
		for w := range dirtyP {
			word := dirtyP[w]
			if word == 0 {
				continue
			}
			dirtyP[w] = 0
			for word != 0 {
				i := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				pages[i] = t.pages[i]
				pages[i].Slots = subs[i*slots : (i+1)*slots : (i+1)*slots]
				copy(subs[i*slots:(i+1)*slots], t.subs[i*slots:(i+1)*slots])
			}
		}
	} else {
		copy(blocks, t.blocks)
		copy(pages, t.pages)
		copy(subs, t.subs)
		for i := range dirtyB {
			dirtyB[i] = 0
		}
		for i := range dirtyP {
			dirtyP[i] = 0
		}
	}
	copy(used, t.slcUsed)
	*a = *t
	a.blocks, a.pages, a.subs, a.slcUsed = blocks, pages, subs, used
	a.dirtyBlocks, a.dirtyPages = dirtyB, dirtyP
	// a's content changed: advance its own generation so any array that
	// recorded (a, oldGen) as its template falls back to a full copy.
	a.gen = gen + 1
	a.restoredFrom, a.restoredGen = t, t.gen
	if fast {
		return
	}
	pageOff := 0
	for id := range a.blocks {
		n := len(a.blocks[id].Pages)
		a.blocks[id].Pages = a.pages[pageOff : pageOff+n : pageOff+n]
		pageOff += n
	}
	a.bindSlots()
}

// Config returns the geometry the array was built with.
func (a *Array) Config() *Config { return a.cfg }

// Block returns the block with the given ID.
func (a *Array) Block(id int) *Block { return &a.blocks[id] }

// NumBlocks returns the total block count.
func (a *Array) NumBlocks() int { return len(a.blocks) }

// SLCBlockIDs returns the IDs of the SLC-mode cache blocks.
func (a *Array) SLCBlockIDs() []int { return a.slcIDs }

// MLCBlockIDs returns the IDs of the native high-density blocks.
func (a *Array) MLCBlockIDs() []int { return a.mlcIDs }

// ChipOf returns the parallel unit (plane) a block is attached to. Blocks
// are striped round-robin so consecutive block IDs land on different units.
func (a *Array) ChipOf(blockID int) int { return a.cfg.UnitOf(blockID) }

// ChannelOf returns the channel a block's unit is attached to.
func (a *Array) ChannelOf(blockID int) int { return a.cfg.ChannelOfUnit(a.ChipOf(blockID)) }

// Subpage returns the slot at a physical address.
func (a *Array) Subpage(p PPA) *Subpage {
	return &a.blocks[p.Block()].Pages[p.Page()].Slots[p.Slot()]
}

// PageOf returns the page at a physical address.
func (a *Array) PageOf(p PPA) *Page {
	return &a.blocks[p.Block()].Pages[p.Page()]
}

// ProgramPage programs the named slots of one physical page at simulation
// time now. The operation is conventional when it is the first program of
// the page since erase, and partial otherwise. Partial operations disturb
// the valid slots of the same page (in-page disturb) and of the physically
// adjacent pages (neighbouring-page disturb), exactly the two effects of
// Fig. 1 of the paper.
//
// ProgramPage returns whether the operation was partial so callers can
// account latency and error statistics. It rejects programs that violate
// the flash constraints: writing a non-free slot, exceeding the per-page
// program budget of an SLC page, or re-programming an MLC page.
func (a *Array) ProgramPage(blockID, pageIdx int, writes []SlotWrite, now int64) (partial bool, err error) {
	if len(writes) == 0 {
		return false, fmt.Errorf("flash: empty program of block %d page %d", blockID, pageIdx)
	}
	b := &a.blocks[blockID]
	if pageIdx < 0 || pageIdx >= len(b.Pages) {
		return false, fmt.Errorf("flash: page %d out of range in block %d", pageIdx, blockID)
	}
	pg := &b.Pages[pageIdx]
	partial = pg.ProgramCount > 0
	if partial {
		if b.Mode != ModeSLC {
			return false, fmt.Errorf("flash: partial program of MLC block %d", blockID)
		}
		if int(pg.ProgramCount) >= a.cfg.MaxProgramsPerSLCPage {
			return false, fmt.Errorf("flash: block %d page %d exceeded program budget (%d)",
				blockID, pageIdx, a.cfg.MaxProgramsPerSLCPage)
		}
	}
	a.markDirty(blockID)
	a.markPageDirty(a.pageOffset(blockID) + pageIdx)
	written := 0
	for _, w := range writes {
		if w.Slot < 0 || w.Slot >= len(pg.Slots) {
			return false, fmt.Errorf("flash: slot %d out of range", w.Slot)
		}
		s := &pg.Slots[w.Slot]
		if s.State != SubFree {
			return false, fmt.Errorf("flash: programming %s slot b%d p%d s%d", s.State, blockID, pageIdx, w.Slot)
		}
		*s = Subpage{LSN: w.LSN, WriteTime: now, State: SubValid, Partial: partial}
		written++
	}
	// Maintain the Eq. 2 aggregates: a first program adds its subpages to
	// J; the first partial program marks the page updated, removing its
	// previously written valid subpages (the new versions of updated data
	// are hot, not members of J).
	switch pg.ProgramCount {
	case 0:
		b.JCount += written
		b.JSumWT += now * int64(written)
		if b.Mode == ModeSLC {
			a.SLCJCount += int64(written)
			a.SLCJSumWT += now * int64(written)
		}
	case 1:
		justWritten := 0
		for _, w := range writes {
			justWritten |= 1 << w.Slot
		}
		for i := range pg.Slots {
			if justWritten&(1<<i) == 0 && pg.Slots[i].State == SubValid {
				b.JCount--
				b.JSumWT -= pg.Slots[i].WriteTime
				if b.Mode == ModeSLC {
					a.SLCJCount--
					a.SLCJSumWT -= pg.Slots[i].WriteTime
				}
			}
		}
	}
	pg.ProgramCount++
	b.ProgramOps++
	if b.Mode == ModeSLC && b.ProgramOps == 1 {
		a.slcUsed[blockID>>6] |= 1 << (blockID & 63)
	}
	b.ValidSub += written
	if b.Mode == ModeSLC {
		a.SLCPrograms++
	} else {
		a.MLCPrograms++
	}
	if partial {
		b.PartialOps++
		a.PartialPrograms++
		a.applyDisturb(b, pageIdx, writes)
	}
	// Keep the sequential append pointer ahead of any programmed page.
	if pageIdx >= b.NextFreePage {
		b.NextFreePage = pageIdx + 1
	}
	return partial, nil
}

// applyDisturb records the program disturb of one partial operation: valid
// slots sharing the page (that were not just written) and valid slots of the
// adjacent word lines.
func (a *Array) applyDisturb(b *Block, pageIdx int, writes []SlotWrite) {
	justWritten := 0
	for _, w := range writes {
		justWritten |= 1 << w.Slot
	}
	pg := &b.Pages[pageIdx]
	for i := range pg.Slots {
		if justWritten&(1<<i) == 0 && pg.Slots[i].State == SubValid {
			pg.Slots[i].InPageDisturb++
		}
	}
	for _, n := range [2]int{pageIdx - 1, pageIdx + 1} {
		if n < 0 || n >= len(b.Pages) {
			continue
		}
		a.markPageDirty(a.pageOffset(b.ID) + n)
		np := &b.Pages[n].Slots
		for i := range *np {
			if (*np)[i].State == SubValid {
				(*np)[i].NeighborDisturb++
			}
		}
	}
}

// MarkDead declares the named free slots of a page unusable until the next
// erase: the fragmentation loss of a whole-page program that carries less
// than a page of data.
func (a *Array) MarkDead(blockID, pageIdx int, slots ...int) error {
	b := &a.blocks[blockID]
	pg := &b.Pages[pageIdx]
	a.markDirty(blockID)
	a.markPageDirty(a.pageOffset(blockID) + pageIdx)
	for _, s := range slots {
		if pg.Slots[s].State != SubFree {
			return fmt.Errorf("flash: MarkDead on %s slot b%d p%d s%d", pg.Slots[s].State, blockID, pageIdx, s)
		}
		pg.Slots[s].State = SubDead
		b.DeadSub++
	}
	return nil
}

// Invalidate marks the subpage at ppa obsolete. Invalidating an already
// invalid slot is a bookkeeping bug and returns an error.
func (a *Array) Invalidate(ppa PPA) error {
	b := &a.blocks[ppa.Block()]
	pg := &b.Pages[ppa.Page()]
	s := &pg.Slots[ppa.Slot()]
	if s.State != SubValid {
		return fmt.Errorf("flash: invalidating %s slot %v", s.State, ppa)
	}
	a.markDirty(ppa.Block())
	a.markPageDirty(a.pageOffset(ppa.Block()) + ppa.Page())
	s.State = SubInvalid
	b.ValidSub--
	b.InvalidSub++
	if pg.ProgramCount <= 1 {
		b.JCount--
		b.JSumWT -= s.WriteTime
		if b.Mode == ModeSLC {
			a.SLCJCount--
			a.SLCJSumWT -= s.WriteTime
		}
	}
	return nil
}

// Erase wipes a block, increments its wear, and resets every slot to free.
// Erasing a block that still holds valid data is a policy bug.
func (a *Array) Erase(blockID int) error {
	b := &a.blocks[blockID]
	if b.ValidSub != 0 {
		return fmt.Errorf("flash: erasing block %d with %d valid subpages", blockID, b.ValidSub)
	}
	a.markDirty(blockID)
	a.markPageRangeDirty(a.pageOffset(blockID), len(b.Pages))
	for p := range b.Pages {
		pg := &b.Pages[p]
		pg.ProgramCount = 0
		for i := range pg.Slots {
			pg.Slots[i] = Subpage{LSN: InvalidLSN}
		}
	}
	b.EraseCount++
	b.NextFreePage = 0
	b.InvalidSub = 0
	b.DeadSub = 0
	b.ProgramOps = 0
	b.PartialOps = 0
	if b.Mode == ModeSLC {
		a.SLCJCount -= int64(b.JCount)
		a.SLCJSumWT -= b.JSumWT
		a.slcUsed[blockID>>6] &^= 1 << (blockID & 63)
		a.SLCErases++
	} else {
		a.MLCErases++
	}
	b.JCount = 0
	b.JSumWT = 0
	return nil
}

// SwitchToMLC reprograms an SLC cache block into MLC mode in place — the
// In-place Switch operation. Valid data stays where it is (the mapping is
// untouched) but every cell is re-shifted to high-density voltage levels
// without an erase, so:
//
//   - valid slots accumulate one ReprogramStress pass each;
//   - obsolete (invalid) slots are physically overwritten by the
//     reprogramming pass — no stale version of any logical subpage can
//     survive a switch, so they become dead with no LSN;
//   - free slots are sealed dead: an MLC page cannot be partially
//     programmed, so nothing can land in them before the next erase.
//
// The block leaves the SLC cache: its J aggregates are removed from the
// array-wide Eq. 2 sums and its used bit is cleared so GC victim scans
// skip it. It rejoins the cache only through SwitchToSLC after an erase.
func (a *Array) SwitchToMLC(blockID int) error {
	if blockID >= a.cfg.SLCBlocks() {
		return fmt.Errorf("flash: switching non-SLC-home block %d", blockID)
	}
	b := &a.blocks[blockID]
	if b.Mode != ModeSLC {
		return fmt.Errorf("flash: switching block %d already in MLC mode", blockID)
	}
	a.markDirty(blockID)
	a.markPageRangeDirty(a.pageOffset(blockID), len(b.Pages))
	for p := range b.Pages {
		pg := &b.Pages[p]
		for i := range pg.Slots {
			s := &pg.Slots[i]
			switch s.State {
			case SubValid:
				s.ReprogramStress++
			case SubInvalid:
				*s = Subpage{LSN: InvalidLSN, State: SubDead}
				b.InvalidSub--
				b.DeadSub++
			case SubFree:
				s.State = SubDead
				b.DeadSub++
			}
		}
	}
	a.SLCJCount -= int64(b.JCount)
	a.SLCJSumWT -= b.JSumWT
	a.slcUsed[blockID>>6] &^= 1 << (blockID & 63)
	b.NextFreePage = len(b.Pages)
	b.Mode = ModeMLC
	b.Level = LevelHighDensity
	b.Switched = true
	return nil
}

// SwitchToSLC returns an erased switched block to the SLC cache, undoing
// SwitchToMLC. The block must be erased first: switch-back is a voltage
// re-calibration of empty cells, not a data transformation.
func (a *Array) SwitchToSLC(blockID int) error {
	if blockID >= a.cfg.SLCBlocks() {
		return fmt.Errorf("flash: switch-back of non-SLC-home block %d", blockID)
	}
	b := &a.blocks[blockID]
	if !b.Switched || b.Mode != ModeMLC {
		return fmt.Errorf("flash: switch-back of non-switched block %d", blockID)
	}
	if !b.Erased() {
		return fmt.Errorf("flash: switch-back of non-erased block %d", blockID)
	}
	a.markDirty(blockID)
	b.Mode = ModeSLC
	b.Level = LevelWork
	b.Switched = false
	return nil
}

// UsedSLCWords exposes the used-block bitset for victim-selection scans:
// bit i of word w is set while SLC block w*64+i holds programmed data.
// Callers must treat the slice as read-only.
func (a *Array) UsedSLCWords() []uint64 { return a.slcUsed }

// CheckInvariants walks the array verifying that cached counters match slot
// states. It is O(device size) and intended for tests.
func (a *Array) CheckInvariants() error {
	var slcJCount, slcJSum int64
	for id := range a.blocks {
		b := &a.blocks[id]
		var valid, invalid, dead int
		var jCount int
		var jSum int64
		for p := range b.Pages {
			if pg := &b.Pages[p]; pg.ProgramCount <= 1 {
				for i := range pg.Slots {
					if pg.Slots[i].State == SubValid {
						jCount++
						jSum += pg.Slots[i].WriteTime
					}
				}
			}
		}
		if jCount != b.JCount || jSum != b.JSumWT {
			return fmt.Errorf("block %d J aggregates: have (%d,%d) want (%d,%d)",
				id, b.JCount, b.JSumWT, jCount, jSum)
		}
		if b.Mode == ModeSLC {
			slcJCount += int64(jCount)
			slcJSum += jSum
			used := a.slcUsed[id>>6]&(1<<(id&63)) != 0
			if used != (b.ProgramOps > 0) {
				return fmt.Errorf("block %d used bit %v but ProgramOps=%d", id, used, b.ProgramOps)
			}
		}
		for p := range b.Pages {
			pg := &b.Pages[p]
			anyUsed := false
			for i := range pg.Slots {
				switch pg.Slots[i].State {
				case SubValid:
					valid++
					anyUsed = true
				case SubInvalid:
					invalid++
					anyUsed = true
				case SubDead:
					dead++
					anyUsed = true
				case SubFree:
					if pg.Slots[i].LSN != InvalidLSN {
						return fmt.Errorf("block %d page %d slot %d: free slot with LSN %d", id, p, i, pg.Slots[i].LSN)
					}
				}
			}
			if anyUsed && p >= b.NextFreePage {
				return fmt.Errorf("block %d page %d used but NextFreePage=%d", id, p, b.NextFreePage)
			}
			if anyUsed && pg.ProgramCount == 0 && pg.Slots[0].State != SubDead {
				// A page can be all-dead without programs only if every slot
				// was skipped, which MarkDead permits.
				allDead := true
				for i := range pg.Slots {
					if pg.Slots[i].State != SubDead {
						allDead = false
						break
					}
				}
				if !allDead {
					return fmt.Errorf("block %d page %d has data but ProgramCount=0", id, p)
				}
			}
		}
		if valid != b.ValidSub || invalid != b.InvalidSub || dead != b.DeadSub {
			return fmt.Errorf("block %d counters: have (v%d,i%d,d%d) want (v%d,i%d,d%d)",
				id, b.ValidSub, b.InvalidSub, b.DeadSub, valid, invalid, dead)
		}
	}
	if slcJCount != a.SLCJCount || slcJSum != a.SLCJSumWT {
		return fmt.Errorf("array SLC J aggregates: have (%d,%d) want (%d,%d)",
			a.SLCJCount, a.SLCJSumWT, slcJCount, slcJSum)
	}
	return nil
}
