package flash

import (
	"math/rand"
	"reflect"
	"testing"
)

// requireEqualArrays fails unless got and want hold identical flash state:
// every block's scalar fields, every subpage, the device-wide counters and
// the used-block bitset. Slice headers are compared by shape, not address,
// so a restored clone and a fresh clone compare equal.
func requireEqualArrays(t *testing.T, got, want *Array) {
	t.Helper()
	if len(got.blocks) != len(want.blocks) {
		t.Fatalf("block count %d != %d", len(got.blocks), len(want.blocks))
	}
	for id := range got.blocks {
		g, w := got.blocks[id], want.blocks[id]
		if len(g.Pages) != len(w.Pages) {
			t.Fatalf("block %d page count %d != %d", id, len(g.Pages), len(w.Pages))
		}
		for p := range g.Pages {
			gp, wp := &g.Pages[p], &w.Pages[p]
			if gp.ProgramCount != wp.ProgramCount {
				t.Fatalf("block %d page %d ProgramCount %d != %d", id, p, gp.ProgramCount, wp.ProgramCount)
			}
			if len(gp.Slots) != len(wp.Slots) {
				t.Fatalf("block %d page %d slot count mismatch", id, p)
			}
			for s := range gp.Slots {
				if gp.Slots[s] != wp.Slots[s] {
					t.Fatalf("block %d page %d slot %d: %+v != %+v", id, p, s, gp.Slots[s], wp.Slots[s])
				}
			}
		}
		g.Pages, w.Pages = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("block %d: %+v != %+v", id, g, w)
		}
	}
	if len(got.slcUsed) != len(want.slcUsed) {
		t.Fatalf("slcUsed length mismatch")
	}
	for i := range got.slcUsed {
		if got.slcUsed[i] != want.slcUsed[i] {
			t.Fatalf("slcUsed[%d] = %#x != %#x", i, got.slcUsed[i], want.slcUsed[i])
		}
	}
	gc, wc := *got, *want
	gc.blocks, wc.blocks = nil, nil
	gc.pages, wc.pages = nil, nil
	gc.subs, wc.subs = nil, nil
	gc.slcUsed, wc.slcUsed = nil, nil
	gc.slcIDs, wc.slcIDs = nil, nil
	gc.mlcIDs, wc.mlcIDs = nil, nil
	gc.dirtyBlocks, wc.dirtyBlocks = nil, nil
	gc.dirtyPages, wc.dirtyPages = nil, nil
	gc.gen, wc.gen = 0, 0
	gc.restoredFrom, wc.restoredFrom = nil, nil
	gc.restoredGen, wc.restoredGen = 0, 0
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("array-wide counters differ: %+v != %+v", gc, wc)
	}
}

// requireSelfContained fails unless every slice header in a points into
// a's own backing stores — a restored array must never alias its template.
func requireSelfContained(t *testing.T, a *Array) {
	t.Helper()
	pageOff := 0
	slots := a.cfg.SlotsPerPage()
	for id := range a.blocks {
		n := len(a.blocks[id].Pages)
		if n > 0 && &a.blocks[id].Pages[0] != &a.pages[pageOff] {
			t.Fatalf("block %d Pages header does not point into own store", id)
		}
		pageOff += n
	}
	for i := range a.pages {
		if len(a.pages[i].Slots) > 0 && &a.pages[i].Slots[0] != &a.subs[i*slots] {
			t.Fatalf("page %d Slots header does not point into own store", i)
		}
	}
}

// mutationStorm drives the array through steps random mutations using every
// Array mutator: programs (conventional and partial, SLC and MLC),
// invalidates, dead-marking, erases and in-place mode switches.
func mutationStorm(a *Array, rng *rand.Rand, steps int, next *LSN) {
	var valid []PPA
	allIDs := make([]int, a.NumBlocks())
	for i := range allIDs {
		allIDs[i] = i
	}
	for step := 0; step < steps; step++ {
		switch rng.Intn(8) {
		case 0, 1, 2, 3: // program a random free slot
			blk := allIDs[rng.Intn(len(allIDs))]
			b := a.Block(blk)
			page := rng.Intn(len(b.Pages))
			pg := &b.Pages[page]
			if b.Mode == ModeSLC {
				if int(pg.ProgramCount) >= a.Config().MaxProgramsPerSLCPage {
					continue
				}
			} else if pg.ProgramCount > 0 {
				continue
			}
			slot := -1
			for i := range pg.Slots {
				if pg.Slots[i].State == SubFree {
					slot = i
					break
				}
			}
			if slot < 0 {
				continue
			}
			if _, err := a.ProgramPage(blk, page, []SlotWrite{{slot, *next}}, int64(step)); err != nil {
				panic(err)
			}
			valid = append(valid, NewPPA(blk, page, slot))
			*next++
		case 4: // invalidate a random valid slot
			if len(valid) == 0 {
				continue
			}
			i := rng.Intn(len(valid))
			if err := a.Invalidate(valid[i]); err != nil {
				panic(err)
			}
			valid[i] = valid[len(valid)-1]
			valid = valid[:len(valid)-1]
		case 5: // kill the free slots of a random programmed page
			blk := allIDs[rng.Intn(len(allIDs))]
			b := a.Block(blk)
			page := rng.Intn(len(b.Pages))
			pg := &b.Pages[page]
			if pg.ProgramCount == 0 {
				continue
			}
			for i := range pg.Slots {
				if pg.Slots[i].State == SubFree {
					if err := a.MarkDead(blk, page, i); err != nil {
						panic(err)
					}
					break
				}
			}
		case 6: // erase a block with no valid data
			blk := allIDs[rng.Intn(len(allIDs))]
			if a.Block(blk).ValidSub != 0 {
				continue
			}
			if err := a.Erase(blk); err != nil {
				panic(err)
			}
		case 7: // switch an SLC block to MLC, or an erased switched one back
			blk := rng.Intn(a.cfg.SLCBlocks())
			b := a.Block(blk)
			if b.Mode == ModeSLC {
				// Switching invalidates nothing, but the slots it seals
				// dead must not be in the valid list; only data-free
				// switches keep this driver simple.
				if b.ValidSub != 0 {
					continue
				}
				if err := a.SwitchToMLC(blk); err != nil {
					panic(err)
				}
			} else if b.Switched && b.Erased() {
				if err := a.SwitchToSLC(blk); err != nil {
					panic(err)
				}
			}
		}
	}
}

// TestRestoreDirtyFastPathMatchesFullCopy is the safety net for the
// dirty-block Restore fast path: a recycled clone that mutated, restored,
// mutated again (repeatedly) must stay bit-identical to a fresh full-copy
// clone of the template after every restore.
func TestRestoreDirtyFastPathMatchesFullCopy(t *testing.T) {
	a := newTestArray(t)
	rng := rand.New(rand.NewSource(7))
	next := LSN(0)
	// Season the template so restores copy non-trivial state.
	mutationStorm(a, rng, 1500, &next)
	template := a.Clone()

	recycled := template.Clone()
	for round := 0; round < 5; round++ {
		mutationStorm(recycled, rng, 800, &next)
		recycled.Restore(template) // dirty-only fast path after round 0
		requireEqualArrays(t, recycled, template.Clone())
		requireSelfContained(t, recycled)
		if err := recycled.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestRestoreFallsBackWhenTemplateMutates: once the template itself moves
// on, a recycled clone's next Restore must not trust its stale dirty set.
func TestRestoreFallsBackWhenTemplateMutates(t *testing.T) {
	a := newTestArray(t)
	rng := rand.New(rand.NewSource(11))
	next := LSN(0)
	mutationStorm(a, rng, 1000, &next)
	template := a.Clone()

	recycled := template.Clone()
	mutationStorm(recycled, rng, 500, &next)
	recycled.Restore(template)

	// The template mutates after the restore relationship was established.
	mutationStorm(template, rng, 500, &next)
	mutationStorm(recycled, rng, 200, &next)
	recycled.Restore(template)
	requireEqualArrays(t, recycled, template.Clone())
	requireSelfContained(t, recycled)
}

// TestRestoreFromDifferentTemplate: restoring from a template other than
// the one the dirty set was tracked against must take the full-copy path.
func TestRestoreFromDifferentTemplate(t *testing.T) {
	a := newTestArray(t)
	rng := rand.New(rand.NewSource(13))
	next := LSN(0)
	mutationStorm(a, rng, 800, &next)
	t1 := a.Clone()
	mutationStorm(a, rng, 800, &next)
	t2 := a.Clone()

	recycled := t1.Clone()
	mutationStorm(recycled, rng, 300, &next)
	recycled.Restore(t1)
	mutationStorm(recycled, rng, 300, &next)
	recycled.Restore(t2)
	requireEqualArrays(t, recycled, t2.Clone())
	requireSelfContained(t, recycled)

	// And back again: t1's gen is unchanged but recycled's tracking now
	// belongs to t2, so this must full-copy too.
	recycled.Restore(t1)
	requireEqualArrays(t, recycled, t1.Clone())
	requireSelfContained(t, recycled)
}
