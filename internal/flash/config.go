// Package flash models the NAND flash substrate of a hybrid SLC/MLC SSD:
// geometry, block/page/subpage state, partial-programming bookkeeping, and
// the timing parameters of Table 2 of the paper.
//
// The package is deliberately free of policy: allocation, garbage collection
// and mapping decisions live in higher layers (internal/scheme, internal/ftl).
// Everything here is deterministic state manipulation.
package flash

import (
	"errors"
	"fmt"
	"time"
)

// Mode distinguishes how a block's cells are programmed.
type Mode uint8

const (
	// ModeSLC stores one bit per cell: fast, durable, half the pages.
	ModeSLC Mode = iota
	// ModeMLC stores two bits per cell: slow, fragile, full density.
	ModeMLC
)

func (m Mode) String() string {
	switch m {
	case ModeSLC:
		return "SLC"
	case ModeMLC:
		return "MLC"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// BlockLevel is the hot/cold level of a block in the IPU hierarchy.
// The paper's Algorithm 1 encodes levels 0..3 as
// (High-density, Work, Monitor, Hot).
type BlockLevel int8

const (
	// LevelHighDensity is the native MLC region (level 0).
	LevelHighDensity BlockLevel = iota
	// LevelWork receives brand-new write data (level 1).
	LevelWork
	// LevelMonitor receives data updated once beyond its page (level 2).
	LevelMonitor
	// LevelHot receives the most frequently updated data (level 3).
	LevelHot

	// NumSLCLevels counts the SLC-mode levels (Work, Monitor, Hot).
	NumSLCLevels = 3
)

func (l BlockLevel) String() string {
	switch l {
	case LevelHighDensity:
		return "HighDensity"
	case LevelWork:
		return "Work"
	case LevelMonitor:
		return "Monitor"
	case LevelHot:
		return "Hot"
	default:
		return fmt.Sprintf("BlockLevel(%d)", int8(l))
	}
}

// Timing holds the latency parameters of the simulated device
// (Table 2 of the paper plus a bus-transfer cost).
type Timing struct {
	SLCRead    time.Duration // SLC-mode page sensing time
	MLCRead    time.Duration // MLC page sensing time
	SLCProgram time.Duration // SLC-mode page program time
	MLCProgram time.Duration // MLC page program time
	Erase      time.Duration // block erase time (both modes)

	// ECCMin/ECCMax bound the BCH decode latency: a clean codeword costs
	// ECCMin, a codeword at the correction limit costs ECCMax.
	ECCMin time.Duration
	ECCMax time.Duration

	// TransferPerSubpage is the channel-bus cost of moving one subpage
	// between controller and chip.
	TransferPerSubpage time.Duration
}

// PaperTiming returns the latencies from Table 2 of the paper.
func PaperTiming() Timing {
	return Timing{
		SLCRead:            25 * time.Microsecond,
		MLCRead:            50 * time.Microsecond,
		SLCProgram:         300 * time.Microsecond,
		MLCProgram:         900 * time.Microsecond,
		Erase:              10 * time.Millisecond,
		ECCMin:             500 * time.Nanosecond,
		ECCMax:             96800 * time.Nanosecond,
		TransferPerSubpage: 5 * time.Microsecond,
	}
}

// Config describes the geometry and fixed parameters of a simulated SSD.
type Config struct {
	// Channels is the number of independent flash channels.
	Channels int
	// ChipsPerChannel is the number of flash chips attached to each channel.
	ChipsPerChannel int
	// DiesPerChip and PlanesPerDie extend the parallelism hierarchy below
	// the chip (SSDsim's multilevel parallelism): cell operations occupy a
	// plane, bus transfers a channel. Zero means 1.
	DiesPerChip  int
	PlanesPerDie int
	// Blocks is the total number of physical blocks in the device.
	// Blocks are striped across the parallel units (planes) round-robin.
	Blocks int
	// SLCRatio is the fraction of blocks operated in SLC mode as cache
	// (Table 2: 5%).
	SLCRatio float64

	// SLCPagesPerBlock / MLCPagesPerBlock give the page count of a block in
	// each mode (Table 2: 64 / 128).
	SLCPagesPerBlock int
	MLCPagesPerBlock int

	// PageSizeBytes is the physical page size (Table 2: 16 KiB).
	PageSizeBytes int
	// SubpageSizeBytes is the partial-programming granularity (4 KiB).
	SubpageSizeBytes int

	// MaxProgramsPerSLCPage caps partial programming per SLC page.
	// Manufacturers suggest 4 (paper §1).
	MaxProgramsPerSLCPage int

	// GCThresholdFraction triggers SLC-cache garbage collection when the
	// fraction of free SLC pages drops below it (Table 2: 5%).
	GCThresholdFraction float64
	// MLCGCThresholdFraction triggers GC in the MLC region when its free
	// block fraction drops below it.
	MLCGCThresholdFraction float64

	// GCBacklogCap bounds the deferred background garbage-collection work
	// per chip: GC operations run host-subordinate (drained in idle gaps,
	// with program/erase suspension) until a chip's backlog exceeds this
	// cap, after which the excess stalls host operations — the saturation
	// behaviour of a real FTL whose GC cannot keep up.
	GCBacklogCap time.Duration

	// PEBaseline is the assumed pre-existing Program/Erase wear of every
	// block, reflecting the device's use stage (Table 2 default: 4000).
	// The effective P/E count of a block is PEBaseline plus the erases the
	// simulation itself performs.
	PEBaseline int

	// LogicalSubpages is the size of the exported logical space in 4 KiB
	// logical subpages. It must fit comfortably inside the MLC region.
	LogicalSubpages int

	// PreFillMLC preconditions the device before replay: the whole logical
	// space is laid out sequentially in the MLC region, as on a device that
	// has been in service (the Table 2 P/E baseline of 4000 cycles implies
	// exactly that). Reads of data the trace never wrote then hit real
	// pages, overwrites invalidate MLC copies, and the MLC region operates
	// under capacity pressure so its garbage collector participates.
	PreFillMLC bool

	Timing Timing
}

// SlotsPerPage returns the number of subpage slots in one physical page.
func (c *Config) SlotsPerPage() int { return c.PageSizeBytes / c.SubpageSizeBytes }

// SLCBlocks returns the number of blocks designated as SLC-mode cache.
func (c *Config) SLCBlocks() int { return int(float64(c.Blocks) * c.SLCRatio) }

// MLCBlocks returns the number of native high-density blocks.
func (c *Config) MLCBlocks() int { return c.Blocks - c.SLCBlocks() }

// Chips returns the total chip count.
func (c *Config) Chips() int { return c.Channels * c.ChipsPerChannel }

// dies and planes return the per-chip hierarchy, defaulting to 1.
func (c *Config) dies() int {
	if c.DiesPerChip <= 0 {
		return 1
	}
	return c.DiesPerChip
}

func (c *Config) planes() int {
	if c.PlanesPerDie <= 0 {
		return 1
	}
	return c.PlanesPerDie
}

// ParallelUnits returns the number of independently operating planes —
// the resource granularity of cell operations.
func (c *Config) ParallelUnits() int { return c.Chips() * c.dies() * c.planes() }

// UnitOf returns the plane a block lives on (blocks stripe round-robin).
func (c *Config) UnitOf(blockID int) int { return blockID % c.ParallelUnits() }

// ChannelOfUnit returns the channel a plane's chip is attached to.
func (c *Config) ChannelOfUnit(unit int) int { return (unit % c.Chips()) % c.Channels }

// SLCSubpages returns the total number of subpage slots in the SLC cache.
func (c *Config) SLCSubpages() int {
	return c.SLCBlocks() * c.SLCPagesPerBlock * c.SlotsPerPage()
}

// MLCSubpages returns the total number of subpage slots in the MLC region.
func (c *Config) MLCSubpages() int {
	return c.MLCBlocks() * c.MLCPagesPerBlock * c.SlotsPerPage()
}

// LogicalBytes returns the size of the logical space in bytes.
func (c *Config) LogicalBytes() int64 {
	return int64(c.LogicalSubpages) * int64(c.SubpageSizeBytes)
}

// Validate reports a descriptive error for an inconsistent configuration.
func (c *Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return errors.New("flash: Channels must be positive")
	case c.ChipsPerChannel <= 0:
		return errors.New("flash: ChipsPerChannel must be positive")
	case c.DiesPerChip < 0 || c.PlanesPerDie < 0:
		return errors.New("flash: DiesPerChip and PlanesPerDie must be non-negative")
	case c.Blocks <= 0:
		return errors.New("flash: Blocks must be positive")
	case c.Blocks%c.ParallelUnits() != 0:
		return fmt.Errorf("flash: Blocks (%d) must be a multiple of the parallel units (%d)", c.Blocks, c.ParallelUnits())
	case c.SLCRatio <= 0 || c.SLCRatio >= 1:
		return fmt.Errorf("flash: SLCRatio %.3f out of (0,1)", c.SLCRatio)
	case c.SLCBlocks() < 4:
		return fmt.Errorf("flash: only %d SLC blocks; need at least 4", c.SLCBlocks())
	case c.SLCPagesPerBlock <= 0 || c.MLCPagesPerBlock <= 0:
		return errors.New("flash: pages per block must be positive")
	case c.PageSizeBytes <= 0 || c.SubpageSizeBytes <= 0:
		return errors.New("flash: page and subpage sizes must be positive")
	case c.PageSizeBytes%c.SubpageSizeBytes != 0:
		return fmt.Errorf("flash: page size %d not a multiple of subpage size %d", c.PageSizeBytes, c.SubpageSizeBytes)
	case c.SlotsPerPage() > 8:
		return fmt.Errorf("flash: %d slots per page exceeds supported maximum of 8", c.SlotsPerPage())
	case c.MaxProgramsPerSLCPage <= 0:
		return errors.New("flash: MaxProgramsPerSLCPage must be positive")
	case c.GCThresholdFraction <= 0 || c.GCThresholdFraction >= 1:
		return fmt.Errorf("flash: GCThresholdFraction %.3f out of (0,1)", c.GCThresholdFraction)
	case c.MLCGCThresholdFraction <= 0 || c.MLCGCThresholdFraction >= 1:
		return fmt.Errorf("flash: MLCGCThresholdFraction %.3f out of (0,1)", c.MLCGCThresholdFraction)
	case c.GCBacklogCap < 0:
		return errors.New("flash: GCBacklogCap must be non-negative")
	case c.PEBaseline < 0:
		return errors.New("flash: PEBaseline must be non-negative")
	case c.LogicalSubpages <= 0:
		return errors.New("flash: LogicalSubpages must be positive")
	}
	if got, capacity := c.LogicalSubpages, c.MLCSubpages(); got > capacity*9/10 {
		return fmt.Errorf("flash: logical space (%d subpages) exceeds 90%% of MLC capacity (%d subpages)", got, capacity)
	}
	if c.Timing.SLCRead <= 0 || c.Timing.MLCRead <= 0 || c.Timing.SLCProgram <= 0 ||
		c.Timing.MLCProgram <= 0 || c.Timing.Erase <= 0 {
		return errors.New("flash: all flash operation latencies must be positive")
	}
	if c.Timing.ECCMin < 0 || c.Timing.ECCMax < c.Timing.ECCMin {
		return errors.New("flash: need 0 <= ECCMin <= ECCMax")
	}
	return nil
}

// DefaultConfig returns a scaled-down geometry (1/64 of Table 2) that keeps
// every behaviour of the full device — SLC ratio, page/subpage shape, GC
// thresholds, latencies — while fitting comfortably in test memory. The
// smaller cache also reaches realistic pressure with proportionally scaled
// traces, so GC dynamics resemble the paper's full-length runs.
func DefaultConfig() Config {
	c := Config{
		Channels:               8,
		ChipsPerChannel:        4,
		Blocks:                 1024,
		SLCRatio:               0.05,
		SLCPagesPerBlock:       64,
		MLCPagesPerBlock:       128,
		PageSizeBytes:          16 * 1024,
		SubpageSizeBytes:       4 * 1024,
		MaxProgramsPerSLCPage:  4,
		GCThresholdFraction:    0.05,
		MLCGCThresholdFraction: 0.02,
		GCBacklogCap:           20 * time.Millisecond,
		PEBaseline:             4000,
		Timing:                 PaperTiming(),
	}
	// Logical space: 75% of the MLC region, leaving over-provisioning for GC.
	c.LogicalSubpages = c.MLCSubpages() * 3 / 4
	return c
}

// PaperConfig returns the full Table 2 geometry (65536 blocks, 128 GiB MLC).
// Note the subpage bookkeeping of the full device needs several GiB of
// simulation memory; tests use DefaultConfig.
func PaperConfig() Config {
	c := DefaultConfig()
	c.Blocks = 65536
	c.LogicalSubpages = c.MLCSubpages() * 3 / 4
	return c
}
