package flash

import "fmt"

// LSN is a logical subpage number: the 4 KiB-granular logical address space
// exported by the device. InvalidLSN marks an unused slot.
type LSN int32

// InvalidLSN marks a slot that holds no logical data.
const InvalidLSN LSN = -1

// Frame returns the 16 KiB logical page frame an LSN belongs to, given the
// number of subpage slots per page.
func (l LSN) Frame(slotsPerPage int) int32 { return int32(l) / int32(slotsPerPage) }

// PPA is a packed physical subpage address: block, page within block, and
// slot within page. The zero value of the packed form is a valid address,
// so the "unmapped" sentinel is an explicit bit pattern.
type PPA uint32

const (
	ppaSlotBits  = 3
	ppaPageBits  = 9
	ppaBlockBits = 20

	ppaSlotMask  = 1<<ppaSlotBits - 1
	ppaPageMask  = 1<<ppaPageBits - 1
	ppaBlockMask = 1<<ppaBlockBits - 1

	// UnmappedPPA marks an LSN with no physical location.
	UnmappedPPA PPA = 1<<32 - 1
)

// NewPPA packs a physical subpage address. It panics if a component is out
// of range, which indicates a geometry bug rather than a runtime condition.
func NewPPA(block, page, slot int) PPA {
	if uint(block) > ppaBlockMask || uint(page) > ppaPageMask || uint(slot) > ppaSlotMask {
		panic(fmt.Sprintf("flash: PPA out of range: block=%d page=%d slot=%d", block, page, slot))
	}
	return PPA(block)<<(ppaPageBits+ppaSlotBits) | PPA(page)<<ppaSlotBits | PPA(slot)
}

// Block returns the block component.
func (p PPA) Block() int { return int(p>>(ppaPageBits+ppaSlotBits)) & ppaBlockMask }

// Page returns the page-within-block component.
func (p PPA) Page() int { return int(p>>ppaSlotBits) & ppaPageMask }

// Slot returns the slot-within-page component.
func (p PPA) Slot() int { return int(p) & ppaSlotMask }

// Mapped reports whether the address points at a physical location.
func (p PPA) Mapped() bool { return p != UnmappedPPA }

// PageAddr returns the address with the slot bits cleared, identifying the
// physical page. Useful as a map key for "same page" checks.
func (p PPA) PageAddr() PPA { return p &^ ppaSlotMask }

func (p PPA) String() string {
	if !p.Mapped() {
		return "PPA(unmapped)"
	}
	return fmt.Sprintf("PPA(b%d p%d s%d)", p.Block(), p.Page(), p.Slot())
}
