package flash

import "testing"

// The JCount/JSumWT aggregates feed the ISR GC policy (Eq. 2); these tests
// pin their maintenance rules.

func TestJAggregatesFirstProgram(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 1}, {1, 2}}, 100)
	b := a.Block(blk)
	if b.JCount != 2 || b.JSumWT != 200 {
		t.Errorf("after first program: J=(%d,%d), want (2,200)", b.JCount, b.JSumWT)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJAggregatesPartialProgramRemovesPage(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 1}, {1, 2}}, 100)
	// Partial program: the page becomes "updated"; its old valid subpages
	// leave J, and the newly written subpage never joins.
	mustProgram(t, a, blk, 0, []SlotWrite{{2, 3}}, 200)
	b := a.Block(blk)
	if b.JCount != 0 || b.JSumWT != 0 {
		t.Errorf("after partial program: J=(%d,%d), want (0,0)", b.JCount, b.JSumWT)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJAggregatesInvalidate(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 1}, {1, 2}}, 100)
	if err := a.Invalidate(NewPPA(blk, 0, 0)); err != nil {
		t.Fatal(err)
	}
	b := a.Block(blk)
	if b.JCount != 1 || b.JSumWT != 100 {
		t.Errorf("after invalidate: J=(%d,%d), want (1,100)", b.JCount, b.JSumWT)
	}
	// Invalidating inside an updated page must not touch J.
	mustProgram(t, a, blk, 1, []SlotWrite{{0, 5}}, 300)
	mustProgram(t, a, blk, 1, []SlotWrite{{1, 6}}, 400) // page updated; J unchanged by page 1
	if b.JCount != 1 {
		t.Fatalf("updated page leaked into J: %d", b.JCount)
	}
	if err := a.Invalidate(NewPPA(blk, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if b.JCount != 1 || b.JSumWT != 100 {
		t.Errorf("invalidate in updated page changed J: (%d,%d)", b.JCount, b.JSumWT)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJAggregatesErase(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 1}}, 100)
	if err := a.Invalidate(NewPPA(blk, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Erase(blk); err != nil {
		t.Fatal(err)
	}
	b := a.Block(blk)
	if b.JCount != 0 || b.JSumWT != 0 {
		t.Errorf("after erase: J=(%d,%d)", b.JCount, b.JSumWT)
	}
}
