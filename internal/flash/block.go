package flash

import "fmt"

// SubpageState is the lifecycle state of a 4 KiB subpage slot.
type SubpageState uint8

const (
	// SubFree has never been programmed since the last erase.
	SubFree SubpageState = iota
	// SubValid holds the current version of some logical subpage.
	SubValid
	// SubInvalid holds an obsolete version.
	SubInvalid
	// SubDead can never be programmed before the next erase: the slot was
	// skipped by a whole-page program (Baseline fragmentation) or the page
	// exhausted its partial-programming budget.
	SubDead
)

func (s SubpageState) String() string {
	switch s {
	case SubFree:
		return "free"
	case SubValid:
		return "valid"
	case SubInvalid:
		return "invalid"
	case SubDead:
		return "dead"
	default:
		return fmt.Sprintf("SubpageState(%d)", uint8(s))
	}
}

// Subpage is the unit of partial programming and of mapping bookkeeping.
type Subpage struct {
	// LSN is the logical subpage stored here, or InvalidLSN.
	LSN LSN
	// WriteTime is the simulation time (ns) at which the slot was
	// programmed. Used by the ISR garbage-collection metric (Eq. 2).
	WriteTime int64
	// State is the slot lifecycle state.
	State SubpageState
	// Partial records that the slot was written by a partial-programming
	// operation (any program after the first on its page), which carries a
	// higher raw bit error rate (Fig. 2).
	Partial bool
	// InPageDisturb counts partial-programming operations applied to other
	// slots of the same page while this slot held valid data.
	InPageDisturb uint16
	// NeighborDisturb counts partial-programming operations applied to
	// physically adjacent pages while this slot held valid data.
	NeighborDisturb uint16
	// ReprogramStress counts in-place reprogramming passes (SLC-to-MLC
	// switches) the slot survived while holding valid data. Reprogramming
	// re-shifts the cell's threshold voltage without an erase, which
	// raises its bit error rate; the error model charges a penalty per
	// accumulated pass. Reset by erase.
	ReprogramStress uint16
}

// Page is a physical 16 KiB page: a run of subpage slots plus a program
// counter that enforces the partial-programming limit.
type Page struct {
	// ProgramCount is the number of program operations applied since the
	// last erase. Operations beyond the first are partial programs.
	ProgramCount uint8
	// Slots holds SlotsPerPage subpages.
	Slots []Subpage
}

// FreeSlots returns the number of still-programmable slots.
func (p *Page) FreeSlots() int {
	n := 0
	for i := range p.Slots {
		if p.Slots[i].State == SubFree {
			n++
		}
	}
	return n
}

// Block is a physical erase block with cached validity counters.
type Block struct {
	// ID is the global block index.
	ID int
	// Mode is assigned at array construction — SLC cache blocks occupy the
	// low IDs — and changes only through Array.SwitchToMLC/SwitchToSLC:
	// the In-place Switch scheme reprograms an SLC cache block into MLC
	// mode without moving its data.
	Mode Mode
	// Switched marks an SLC-home block currently operating in MLC mode
	// after an in-place switch. It stays set across the block's erase and
	// clears only when SwitchToSLC returns the block to the cache.
	Switched bool
	// Level is the IPU hot/cold level. MLC blocks stay at LevelHighDensity;
	// SLC blocks are assigned Work/Monitor/Hot by the scheme.
	Level BlockLevel
	// EraseCount counts erases performed by this simulation. Effective
	// wear is Config.PEBaseline + EraseCount.
	EraseCount int
	// NextFreePage is the append pointer for sequential page allocation.
	// Pages below it have been programmed at least once.
	NextFreePage int
	// Pages holds the physical pages.
	Pages []Page

	// Cached counters, maintained by Array mutators.

	// ValidSub / InvalidSub / DeadSub count slots in each non-free state.
	ValidSub, InvalidSub, DeadSub int
	// ProgramOps counts program operations since the last erase.
	ProgramOps int
	// PartialOps counts partial (second and later) program operations
	// since the last erase.
	PartialOps int

	// JCount and JSumWT aggregate the valid subpages of never-updated
	// pages (program count <= 1) — the index set J of the paper's Eq. 2.
	// JCount is their number and JSumWT the sum of their write times, so
	// GC victim selection computes the coldness weight IS' from per-block
	// aggregates in O(1) instead of rescanning every subpage. Maintained
	// by Array.ProgramPage, Array.Invalidate and Array.Erase.
	JCount int
	JSumWT int64
}

// TotalSlots returns the number of subpage slots in the block.
func (b *Block) TotalSlots() int {
	if len(b.Pages) == 0 {
		return 0
	}
	return len(b.Pages) * len(b.Pages[0].Slots)
}

// UsedSlots returns the number of slots ever programmed since the last
// erase (valid + invalid). Dead slots were skipped, not programmed.
func (b *Block) UsedSlots() int { return b.ValidSub + b.InvalidSub }

// FreePages returns the number of never-programmed pages remaining.
func (b *Block) FreePages() int { return len(b.Pages) - b.NextFreePage }

// Full reports whether sequential allocation has consumed every page.
func (b *Block) Full() bool { return b.NextFreePage >= len(b.Pages) }

// Erased reports whether the block is entirely free.
func (b *Block) Erased() bool {
	return b.NextFreePage == 0 && b.ValidSub == 0 && b.InvalidSub == 0 && b.DeadSub == 0
}

// PE returns the effective program/erase wear of the block given the
// device-wide baseline.
func (b *Block) PE(baseline int) int { return baseline + b.EraseCount }
