package flash

import (
	"testing"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestPaperConfigValid(t *testing.T) {
	c := PaperConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
	if c.Blocks != 65536 {
		t.Errorf("PaperConfig.Blocks = %d, want 65536 (Table 2)", c.Blocks)
	}
}

func TestPaperTimingMatchesTable2(t *testing.T) {
	tm := PaperTiming()
	cases := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"SLCRead", tm.SLCRead, 25 * time.Microsecond},
		{"MLCRead", tm.MLCRead, 50 * time.Microsecond},
		{"SLCProgram", tm.SLCProgram, 300 * time.Microsecond},
		{"MLCProgram", tm.MLCProgram, 900 * time.Microsecond},
		{"Erase", tm.Erase, 10 * time.Millisecond},
		{"ECCMin", tm.ECCMin, 500 * time.Nanosecond},
		{"ECCMax", tm.ECCMax, 96800 * time.Nanosecond},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	c := DefaultConfig()
	if got := c.SlotsPerPage(); got != 4 {
		t.Errorf("SlotsPerPage = %d, want 4 (16KiB/4KiB)", got)
	}
	if got := c.SLCBlocks(); got != 51 {
		t.Errorf("SLCBlocks = %d, want 51 (5%% of 1024)", got)
	}
	if got := c.MLCBlocks(); got != 1024-51 {
		t.Errorf("MLCBlocks = %d, want %d", got, 1024-51)
	}
	if got := c.Chips(); got != 32 {
		t.Errorf("Chips = %d, want 32", got)
	}
	if got := c.SLCSubpages(); got != 51*64*4 {
		t.Errorf("SLCSubpages = %d, want %d", got, 51*64*4)
	}
	if got := c.MLCSubpages(); got != (1024-51)*128*4 {
		t.Errorf("MLCSubpages = %d, want %d", got, (1024-51)*128*4)
	}
	if got, want := c.LogicalBytes(), int64(c.LogicalSubpages)*4096; got != want {
		t.Errorf("LogicalBytes = %d, want %d", got, want)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero channels", func(c *Config) { c.Channels = 0 }},
		{"zero chips", func(c *Config) { c.ChipsPerChannel = 0 }},
		{"zero blocks", func(c *Config) { c.Blocks = 0 }},
		{"blocks not multiple of chips", func(c *Config) { c.Blocks = 4097 }},
		{"slc ratio zero", func(c *Config) { c.SLCRatio = 0 }},
		{"slc ratio one", func(c *Config) { c.SLCRatio = 1 }},
		{"too few slc blocks", func(c *Config) { c.SLCRatio = 0.0001 }},
		{"zero slc pages", func(c *Config) { c.SLCPagesPerBlock = 0 }},
		{"zero mlc pages", func(c *Config) { c.MLCPagesPerBlock = 0 }},
		{"zero page size", func(c *Config) { c.PageSizeBytes = 0 }},
		{"page not multiple of subpage", func(c *Config) { c.SubpageSizeBytes = 3000 }},
		{"too many slots", func(c *Config) { c.SubpageSizeBytes = 1024 }},
		{"zero program budget", func(c *Config) { c.MaxProgramsPerSLCPage = 0 }},
		{"gc threshold zero", func(c *Config) { c.GCThresholdFraction = 0 }},
		{"gc threshold one", func(c *Config) { c.GCThresholdFraction = 1 }},
		{"mlc gc threshold zero", func(c *Config) { c.MLCGCThresholdFraction = 0 }},
		{"negative pe", func(c *Config) { c.PEBaseline = -1 }},
		{"zero logical space", func(c *Config) { c.LogicalSubpages = 0 }},
		{"oversized logical space", func(c *Config) { c.LogicalSubpages = c.MLCSubpages() }},
		{"zero read latency", func(c *Config) { c.Timing.SLCRead = 0 }},
		{"ecc max below min", func(c *Config) { c.Timing.ECCMax = c.Timing.ECCMin - 1 }},
	}
	for _, m := range mutations {
		c := DefaultConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", m.name)
		}
	}
}

func TestModeAndLevelStrings(t *testing.T) {
	if ModeSLC.String() != "SLC" || ModeMLC.String() != "MLC" {
		t.Error("Mode.String mismatch")
	}
	if Mode(9).String() == "" {
		t.Error("unknown Mode should stringify")
	}
	wantLevels := map[BlockLevel]string{
		LevelHighDensity: "HighDensity",
		LevelWork:        "Work",
		LevelMonitor:     "Monitor",
		LevelHot:         "Hot",
	}
	for l, want := range wantLevels {
		if got := l.String(); got != want {
			t.Errorf("Level %d String = %q, want %q", l, got, want)
		}
	}
	if BlockLevel(42).String() == "" {
		t.Error("unknown BlockLevel should stringify")
	}
}
