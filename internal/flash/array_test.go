package flash

import (
	"math/rand"
	"testing"
)

// tinyConfig returns a minimal but valid geometry for fast unit tests.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.Blocks = 64
	c.SLCRatio = 0.125 // 8 SLC blocks
	c.SLCPagesPerBlock = 8
	c.MLCPagesPerBlock = 16
	c.LogicalSubpages = c.MLCSubpages() / 2
	return c
}

func newTestArray(t *testing.T) *Array {
	t.Helper()
	cfg := tinyConfig()
	a, err := NewArray(&cfg)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return a
}

func TestNewArrayPartition(t *testing.T) {
	a := newTestArray(t)
	if got := len(a.SLCBlockIDs()); got != 8 {
		t.Fatalf("SLC blocks = %d, want 8", got)
	}
	if got := len(a.MLCBlockIDs()); got != 56 {
		t.Fatalf("MLC blocks = %d, want 56", got)
	}
	for _, id := range a.SLCBlockIDs() {
		b := a.Block(id)
		if b.Mode != ModeSLC || b.Level != LevelWork || len(b.Pages) != 8 {
			t.Fatalf("SLC block %d malformed: mode=%v level=%v pages=%d", id, b.Mode, b.Level, len(b.Pages))
		}
	}
	for _, id := range a.MLCBlockIDs() {
		b := a.Block(id)
		if b.Mode != ModeMLC || b.Level != LevelHighDensity || len(b.Pages) != 16 {
			t.Fatalf("MLC block %d malformed", id)
		}
	}
}

func TestNewArrayRejectsInvalidConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.Blocks = 0
	if _, err := NewArray(&cfg); err == nil {
		t.Fatal("NewArray accepted invalid config")
	}
}

func TestChipStriping(t *testing.T) {
	a := newTestArray(t)
	chips := a.Config().Chips()
	seen := make(map[int]int)
	for id := 0; id < a.NumBlocks(); id++ {
		chip := a.ChipOf(id)
		if chip < 0 || chip >= chips {
			t.Fatalf("chip %d out of range", chip)
		}
		seen[chip]++
		if ch := a.ChannelOf(id); ch != chip%a.Config().Channels {
			t.Fatalf("channel mapping inconsistent for block %d", id)
		}
	}
	for chip, n := range seen {
		if n != a.NumBlocks()/chips {
			t.Errorf("chip %d has %d blocks, want %d", chip, n, a.NumBlocks()/chips)
		}
	}
}

func TestProgramConventionalThenPartial(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	partial, err := a.ProgramPage(blk, 0, []SlotWrite{{0, 10}, {1, 11}}, 100)
	if err != nil {
		t.Fatalf("first program: %v", err)
	}
	if partial {
		t.Error("first program of a page must be conventional")
	}
	partial, err = a.ProgramPage(blk, 0, []SlotWrite{{2, 12}}, 200)
	if err != nil {
		t.Fatalf("second program: %v", err)
	}
	if !partial {
		t.Error("second program of a page must be partial")
	}
	b := a.Block(blk)
	if b.ValidSub != 3 || b.ProgramOps != 2 || b.PartialOps != 1 {
		t.Errorf("counters: valid=%d ops=%d partial=%d", b.ValidSub, b.ProgramOps, b.PartialOps)
	}
	s := a.Subpage(NewPPA(blk, 0, 2))
	if !s.Partial || s.LSN != 12 || s.WriteTime != 200 || s.State != SubValid {
		t.Errorf("partial slot state: %+v", *s)
	}
	s0 := a.Subpage(NewPPA(blk, 0, 0))
	if s0.Partial {
		t.Error("conventionally programmed slot marked partial")
	}
	if a.SLCPrograms != 2 || a.PartialPrograms != 1 {
		t.Errorf("device counters: slc=%d partial=%d", a.SLCPrograms, a.PartialPrograms)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInPageDisturbHitsOnlyValidCoResidents(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 10}, {1, 11}}, 0)
	// Invalidate slot 1, then partially program slot 2: only slot 0 is
	// valid and should take in-page disturb. Slot 2 itself takes none.
	if err := a.Invalidate(NewPPA(blk, 0, 1)); err != nil {
		t.Fatal(err)
	}
	mustProgram(t, a, blk, 0, []SlotWrite{{2, 12}}, 1)
	if got := a.Subpage(NewPPA(blk, 0, 0)).InPageDisturb; got != 1 {
		t.Errorf("valid co-resident disturb = %d, want 1", got)
	}
	if got := a.Subpage(NewPPA(blk, 0, 1)).InPageDisturb; got != 0 {
		t.Errorf("invalid slot disturbed: %d", got)
	}
	if got := a.Subpage(NewPPA(blk, 0, 2)).InPageDisturb; got != 0 {
		t.Errorf("freshly written slot disturbed: %d", got)
	}
}

func TestNeighborDisturb(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 10}}, 0)
	mustProgram(t, a, blk, 1, []SlotWrite{{0, 20}}, 1)
	mustProgram(t, a, blk, 2, []SlotWrite{{0, 30}}, 2)
	// Conventional programs cause no tracked disturb.
	for p := 0; p < 3; p++ {
		if got := a.Subpage(NewPPA(blk, p, 0)).NeighborDisturb; got != 0 {
			t.Fatalf("page %d disturbed by conventional program: %d", p, got)
		}
	}
	// A partial program on page 1 disturbs pages 0 and 2 but not page 1's
	// own valid slot count... page 1 slot 0 is in-page, not neighbour.
	mustProgram(t, a, blk, 1, []SlotWrite{{1, 21}}, 3)
	if got := a.Subpage(NewPPA(blk, 0, 0)).NeighborDisturb; got != 1 {
		t.Errorf("page 0 neighbour disturb = %d, want 1", got)
	}
	if got := a.Subpage(NewPPA(blk, 2, 0)).NeighborDisturb; got != 1 {
		t.Errorf("page 2 neighbour disturb = %d, want 1", got)
	}
	if got := a.Subpage(NewPPA(blk, 1, 0)).NeighborDisturb; got != 0 {
		t.Errorf("own page counted as neighbour: %d", got)
	}
	if got := a.Subpage(NewPPA(blk, 1, 0)).InPageDisturb; got != 1 {
		t.Errorf("own page in-page disturb = %d, want 1", got)
	}
}

func TestNeighborDisturbAtBlockEdges(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	last := len(a.Block(blk).Pages) - 1
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 1}}, 0)
	mustProgram(t, a, blk, 0, []SlotWrite{{1, 2}}, 1) // partial at page 0: neighbour only page 1
	mustProgram(t, a, blk, last, []SlotWrite{{0, 3}}, 2)
	mustProgram(t, a, blk, last, []SlotWrite{{1, 4}}, 3) // partial at last page
	// No panic is the main assertion; also page boundaries respected.
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramBudgetEnforced(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	for i := 0; i < a.Config().MaxProgramsPerSLCPage; i++ {
		mustProgram(t, a, blk, 0, []SlotWrite{{i, LSN(i)}}, int64(i))
	}
	if _, err := a.ProgramPage(blk, 0, []SlotWrite{{0, 99}}, 10); err == nil {
		t.Fatal("program beyond budget accepted")
	}
}

func TestMLCPartialProgramRejected(t *testing.T) {
	a := newTestArray(t)
	blk := a.MLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 10}}, 0)
	if _, err := a.ProgramPage(blk, 0, []SlotWrite{{1, 11}}, 1); err == nil {
		t.Fatal("partial program of MLC page accepted")
	}
	if a.MLCPrograms != 1 {
		t.Errorf("MLCPrograms = %d, want 1", a.MLCPrograms)
	}
}

func TestProgramRejectsBadSlots(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	if _, err := a.ProgramPage(blk, 0, nil, 0); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := a.ProgramPage(blk, 0, []SlotWrite{{9, 1}}, 0); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := a.ProgramPage(blk, 99, []SlotWrite{{0, 1}}, 0); err == nil {
		t.Error("out-of-range page accepted")
	}
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 1}}, 0)
	if _, err := a.ProgramPage(blk, 0, []SlotWrite{{0, 2}}, 1); err == nil {
		t.Error("double program of a slot accepted")
	}
}

func TestMarkDeadAndInvalidate(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 10}, {1, 11}}, 0)
	if err := a.MarkDead(blk, 0, 2, 3); err != nil {
		t.Fatal(err)
	}
	b := a.Block(blk)
	if b.DeadSub != 2 {
		t.Errorf("DeadSub = %d, want 2", b.DeadSub)
	}
	if err := a.MarkDead(blk, 0, 2); err == nil {
		t.Error("MarkDead of dead slot accepted")
	}
	if err := a.Invalidate(NewPPA(blk, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if b.ValidSub != 1 || b.InvalidSub != 1 {
		t.Errorf("valid=%d invalid=%d", b.ValidSub, b.InvalidSub)
	}
	if err := a.Invalidate(NewPPA(blk, 0, 0)); err == nil {
		t.Error("double invalidate accepted")
	}
	if err := a.Invalidate(NewPPA(blk, 0, 2)); err == nil {
		t.Error("invalidate of dead slot accepted")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[1]
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 10}}, 0)
	mustProgram(t, a, blk, 0, []SlotWrite{{1, 11}}, 1)
	if err := a.Erase(blk); err == nil {
		t.Fatal("erase with valid data accepted")
	}
	if err := a.Invalidate(NewPPA(blk, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Invalidate(NewPPA(blk, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Erase(blk); err != nil {
		t.Fatal(err)
	}
	b := a.Block(blk)
	if !b.Erased() || b.EraseCount != 1 || a.SLCErases != 1 {
		t.Errorf("erase bookkeeping: erased=%v count=%d slcErases=%d", b.Erased(), b.EraseCount, a.SLCErases)
	}
	if b.PE(4000) != 4001 {
		t.Errorf("PE = %d, want 4001", b.PE(4000))
	}
	// The page must be fully programmable again.
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 12}}, 5)
	if a.Subpage(NewPPA(blk, 0, 0)).LSN != 12 {
		t.Error("post-erase program did not take effect")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAccessors(t *testing.T) {
	a := newTestArray(t)
	b := a.Block(a.SLCBlockIDs()[0])
	if b.TotalSlots() != 8*4 {
		t.Errorf("TotalSlots = %d, want 32", b.TotalSlots())
	}
	if b.FreePages() != 8 || b.Full() {
		t.Error("fresh block should have all pages free")
	}
	mustProgram(t, a, b.ID, 0, []SlotWrite{{0, 1}}, 0)
	if b.FreePages() != 7 {
		t.Errorf("FreePages = %d, want 7", b.FreePages())
	}
	if b.UsedSlots() != 1 {
		t.Errorf("UsedSlots = %d, want 1", b.UsedSlots())
	}
	for p := 1; p < 8; p++ {
		mustProgram(t, a, b.ID, p, []SlotWrite{{0, LSN(p)}}, int64(p))
	}
	if !b.Full() {
		t.Error("block should be full")
	}
}

// TestRandomizedInvariants drives a random but legal operation sequence and
// checks the cached counters after every step.
func TestRandomizedInvariants(t *testing.T) {
	a := newTestArray(t)
	rng := rand.New(rand.NewSource(42))
	slcIDs := a.SLCBlockIDs()
	var valid []PPA
	next := LSN(0)
	for step := 0; step < 2000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // program a random free slot somewhere legal
			blk := slcIDs[rng.Intn(len(slcIDs))]
			b := a.Block(blk)
			page := rng.Intn(len(b.Pages))
			pg := &b.Pages[page]
			if int(pg.ProgramCount) >= a.Config().MaxProgramsPerSLCPage {
				continue
			}
			slot := -1
			for i := range pg.Slots {
				if pg.Slots[i].State == SubFree {
					slot = i
					break
				}
			}
			if slot < 0 {
				continue
			}
			mustProgram(t, a, blk, page, []SlotWrite{{slot, next}}, int64(step))
			valid = append(valid, NewPPA(blk, page, slot))
			next++
		case 2: // invalidate a random valid slot
			if len(valid) == 0 {
				continue
			}
			i := rng.Intn(len(valid))
			if err := a.Invalidate(valid[i]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			valid[i] = valid[len(valid)-1]
			valid = valid[:len(valid)-1]
		case 3: // erase a block with no valid data
			blk := slcIDs[rng.Intn(len(slcIDs))]
			if a.Block(blk).ValidSub != 0 && a.Block(blk).UsedSlots() > 0 {
				continue
			}
			if a.Block(blk).ValidSub == 0 {
				if err := a.Erase(blk); err != nil {
					t.Fatalf("step %d erase: %v", step, err)
				}
			}
		}
		if step%200 == 0 {
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func mustProgram(t *testing.T, a *Array, blk, page int, writes []SlotWrite, now int64) {
	t.Helper()
	if _, err := a.ProgramPage(blk, page, writes, now); err != nil {
		t.Fatalf("ProgramPage(b%d,p%d): %v", blk, page, err)
	}
}

func TestPageFreeSlots(t *testing.T) {
	a := newTestArray(t)
	blk := a.SLCBlockIDs()[0]
	pg := &a.Block(blk).Pages[0]
	if pg.FreeSlots() != 4 {
		t.Fatalf("fresh page FreeSlots = %d", pg.FreeSlots())
	}
	mustProgram(t, a, blk, 0, []SlotWrite{{0, 1}, {1, 2}}, 0)
	if pg.FreeSlots() != 2 {
		t.Errorf("FreeSlots = %d, want 2", pg.FreeSlots())
	}
	if err := a.MarkDead(blk, 0, 2); err != nil {
		t.Fatal(err)
	}
	if pg.FreeSlots() != 1 {
		t.Errorf("FreeSlots = %d, want 1", pg.FreeSlots())
	}
}
