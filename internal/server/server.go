// Package server implements ipusimd's experiment service: a bounded job
// queue and worker pool that execute simulation jobs (single runs, sweep
// cells, matrices, sensitivity sweeps) on the context-aware core API,
// with job lifecycle endpoints — submit, status, cancel, result — and a
// live progress stream.
//
// The service exploits the simulator's determinism guarantee — identical
// (seed, scale, config) produce bit-identical output — three ways.
// Completed results are memoised in a content-addressed result cache
// (bounded LRU over a persistent store), so a repeat submission returns
// the cached bytes at memory speed without touching the sim. With a data
// directory, the job table survives restarts: completed results are
// served from disk and interrupted work is re-enqueued, re-running to
// bit-identical output. And in coordinator mode the daemon shards
// matrix/sensitivity sweeps into per-cell sub-jobs placed on worker
// daemons by consistent hashing, aggregating streamed rows into the same
// response a single daemon produces — with failed workers dropped from
// the ring and their cells re-placed or run locally.
//
// Robustness is first-class: the queue applies backpressure (HTTP 429)
// when full, every job runs under a per-job timeout with panic recovery,
// cancellation stops a replay within one request boundary, and shutdown
// drains in-flight jobs or cancels them when the drain deadline passes.
// Completed jobs release their devices back to core's precondition-
// snapshot cache, so a busy daemon reaches steady state with no per-job
// device construction cost.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ipusim/internal/core"
)

// Options configures a Server. The zero value is usable: every field has a
// production default.
type Options struct {
	// Workers bounds concurrently running jobs; 0 means GOMAXPROCS.
	Workers int
	// QueueCap bounds jobs waiting to run; a full queue rejects
	// submissions with 429. 0 means 64.
	QueueCap int
	// JobTimeout caps each job's wall-clock run time unless the request
	// overrides it; 0 means 10 minutes. Negative means no timeout.
	JobTimeout time.Duration
	// DefaultScale is the trace scale used when a request omits it;
	// 0 means 0.05.
	DefaultScale float64
	// MaxJobs bounds retained job records (terminal jobs beyond the cap
	// are evicted oldest-first); 0 means 1024.
	MaxJobs int
	// CacheCap bounds the in-memory result cache in entries; 0 means 256.
	CacheCap int
	// DataDir, when non-empty, makes the server durable: job records and
	// results persist under it (atomic write-then-rename), and Open
	// reloads completed results and re-enqueues interrupted work.
	DataDir string
	// WorkerURLs, when non-empty, puts the server in coordinator mode:
	// matrix and sensitivity jobs are sharded into per-cell sub-jobs
	// placed on these worker daemons by consistent hashing.
	WorkerURLs []string
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.DefaultScale <= 0 {
		o.DefaultScale = 0.05
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 256
	}
}

// Stats are the service-level counters exposed at /v1/stats. Counters
// are per-process: a restarted durable server starts them at zero.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// Executed counts jobs that actually invoked the simulator; CacheHits
	// counts submissions served from the result cache without running.
	Executed  uint64 `json:"executed"`
	CacheHits uint64 `json:"cacheHits"`
	// RemoteCells counts sweep cells this coordinator placed on workers;
	// FallbackCells counts cells run in-process after placement failed.
	RemoteCells   uint64 `json:"remoteCells"`
	FallbackCells uint64 `json:"fallbackCells"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	Workers       int    `json:"workers"`
	QueueCap      int    `json:"queueCap"`
}

// Server owns the job table, the bounded queue and the worker pool.
type Server struct {
	opts Options

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // job IDs in submission order
	nextID  uint64
	closed  bool // no further submissions
	queued  int
	running int
	stats   Stats

	queue chan *Job
	wg    sync.WaitGroup // workers

	// cache memoises completed result bytes by job key; store (nil unless
	// DataDir is set) persists job records and results; coord (nil unless
	// WorkerURLs is set) shards sweeps across the fleet.
	cache *resultCache
	store *Store
	coord *coordinator

	// baseCtx parents every job context; baseCancel is the shutdown hard
	// stop.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// testHookRunning, if set, is called by a worker right after a job
	// enters StateRunning. Tests use it to block or observe workers.
	testHookRunning func(*Job)
}

// New builds a Server and starts its worker pool. It is Open for callers
// without a data directory; it panics when Open fails, which only an
// unusable Options.DataDir can cause.
func New(opts Options) *Server {
	s, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("server.New: %v", err))
	}
	return s
}

// Open builds a Server, recovers persisted state when opts.DataDir is
// set — completed results are served again, interrupted jobs re-enqueue
// and re-run to bit-identical output — and starts the worker pool.
func Open(opts Options) (*Server, error) {
	opts.normalize()
	var store *Store
	var recovered []jobRecord
	if opts.DataDir != "" {
		var err error
		store, err = OpenStore(opts.DataDir)
		if err != nil {
			return nil, err
		}
		recovered, err = store.LoadJobs()
		if err != nil {
			return nil, err
		}
	}
	// The queue must hold every re-enqueued job before workers start.
	queueCap := opts.QueueCap
	if n := countPending(recovered); n > queueCap {
		queueCap = n
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		jobs:       map[string]*Job{},
		queue:      make(chan *Job, queueCap),
		store:      store,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.cache = newResultCache(opts.CacheCap, store)
	if len(opts.WorkerURLs) > 0 {
		s.coord = newCoordinator(s, opts.WorkerURLs)
	}
	s.stats.Workers = opts.Workers
	s.stats.QueueCap = opts.QueueCap
	for _, rec := range recovered {
		s.recoverLocked(rec)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// countPending counts recovered records that need re-running.
func countPending(recs []jobRecord) int {
	n := 0
	for _, rec := range recs {
		if rec.State == StateQueued || rec.State == StateRunning {
			n++
		}
	}
	return n
}

// recoverLocked restores one persisted job record into the table: done
// jobs reattach their stored result bytes, failed/cancelled jobs keep
// their terminal record, and queued/running jobs — interrupted by the
// previous process — are re-enqueued. Runs before workers start, so no
// locking is needed yet.
func (s *Server) recoverLocked(rec jobRecord) {
	var n uint64
	if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
	j := &Job{
		ID:        rec.ID,
		Key:       rec.Key,
		Kind:      rec.Kind,
		Request:   rec.Request,
		State:     rec.State,
		Submitted: rec.Submitted,
		Finished:  rec.Finished,
		Error:     rec.Error,
		watch:     make(chan struct{}),
	}
	switch rec.State {
	case StateDone:
		b, ok := s.cache.Get(rec.Key)
		if !ok {
			// The record says done but the result bytes are gone: re-run.
			s.requeueRecovered(j)
			return
		}
		j.resultJSON = b
		j.Cached = true
	case StateFailed, StateCancelled:
		// Terminal; nothing to re-run.
	default:
		s.requeueRecovered(j)
		return
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
}

// requeueRecovered re-enqueues an interrupted job for a fresh run.
func (s *Server) requeueRecovered(j *Job) {
	run, err := s.compileFor(j.Request)
	if err != nil {
		// The request no longer compiles (e.g. a scheme was unregistered):
		// surface a terminal failure instead of refusing to start.
		j.State = StateFailed
		j.Error = fmt.Sprintf("recovery: %v", err)
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		return
	}
	j.State = StateQueued
	j.Error = ""
	j.run = run
	j.timeout = jobTimeout(j.Request, s.opts.JobTimeout)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queued++
	s.queue <- j
}

// compileFor builds the executable jobFunc for a request: sweeps are
// sharded by the coordinator when one is configured, everything else
// compiles to a local run.
func (s *Server) compileFor(req JobRequest) (jobFunc, error) {
	if s.coord != nil && (req.Kind == "matrix" || req.Kind == "sensitivity" || req.Kind == "contention") {
		return s.coord.compile(req, s.opts.DefaultScale)
	}
	return compile(req, s.opts.DefaultScale)
}

// jobTimeout resolves a request's timeout against the server default.
// Validation happened at submit time; a malformed persisted value falls
// back to the default.
func jobTimeout(req JobRequest, def time.Duration) time.Duration {
	if req.Timeout != "" {
		if d, err := time.ParseDuration(req.Timeout); err == nil && d > 0 {
			return d
		}
	}
	return def
}

// Submit validates req, assigns the next deterministic job ID
// (job-000001, job-000002, ...) and either serves it from the result
// cache — a completed job with the same content address returns its
// bytes without running — or enqueues it. It returns ErrQueueFull when
// the bounded queue has no room and ErrClosed after Shutdown began.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	run, err := s.compileFor(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	timeout := s.opts.JobTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("%w: bad timeout %q", ErrBadRequest, req.Timeout)
		}
		timeout = d
	}
	key := jobKey(req, s.opts.DefaultScale)
	cached, hit := s.cache.Get(key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Key:       key,
		Kind:      req.Kind,
		Request:   req,
		State:     StateQueued,
		Submitted: time.Now(),
		run:       run,
		timeout:   timeout,
		watch:     make(chan struct{}),
	}
	if hit {
		// Served from the result cache: byte-identical to the first run,
		// completed without touching the simulator.
		now := time.Now()
		j.State = StateDone
		j.Started = now
		j.Finished = now
		j.Cached = true
		j.resultJSON = cached
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.stats.Submitted++
		s.stats.CacheHits++
		s.stats.Done++
		s.evictLocked()
		s.persistJob(j)
		return j, nil
	}
	select {
	case s.queue <- j:
	default:
		s.nextID-- // the ID was never exposed; keep the sequence dense
		s.stats.Rejected++
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queued++
	s.stats.Submitted++
	s.evictLocked()
	s.persistJob(j)
	return j, nil
}

// persistJob writes the job's current lifecycle record to the store, if
// any. Callers hold mu (records are tiny; the write is atomic).
func (s *Server) persistJob(j *Job) {
	if s.store == nil {
		return
	}
	s.store.PutJob(jobRecord{
		ID:        j.ID,
		Key:       j.Key,
		Kind:      j.Kind,
		Request:   j.Request,
		State:     j.State,
		Submitted: j.Submitted,
		Finished:  j.Finished,
		Error:     j.Error,
	})
}

// evictLocked drops the oldest terminal job records beyond MaxJobs.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.opts.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.State.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns the job with the given ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel stops the job: a queued job is marked cancelled immediately (the
// worker skips it when popped), a running one has its context cancelled
// and stops within one request boundary. Cancelling a terminal job is a
// no-op; Cancel reports whether the job exists.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	var cancel context.CancelFunc
	switch j.State {
	case StateQueued:
		s.queued--
		s.stats.Cancelled++
		j.State = StateCancelled
		j.Finished = time.Now()
		s.notifyLocked(j)
		s.persistJob(j)
	case StateRunning:
		cancel = j.cancel
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Jobs lists every retained job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.viewLocked())
		}
	}
	return out
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queued
	st.Running = s.running
	if s.coord != nil {
		st.RemoteCells = s.coord.remoteCells.Load()
		st.FallbackCells = s.coord.fallbackCells.Load()
	}
	return st
}

// notifyLocked wakes every watcher of j. Callers hold mu.
func (s *Server) notifyLocked(j *Job) {
	close(j.watch)
	j.watch = make(chan struct{})
}

// watch returns the job's current wake channel and view.
func (s *Server) watch(j *Job) (<-chan struct{}, JobView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.watch, j.viewLocked()
}

// worker pops queued jobs and executes them until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through its lifecycle with timeout and panic
// recovery.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.State != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, j.timeout)
	}
	j.State = StateRunning
	j.Started = time.Now()
	j.cancel = cancel
	s.queued--
	s.running++
	s.stats.Executed++
	s.notifyLocked(j)
	hook := s.testHookRunning
	s.mu.Unlock()
	defer cancel()
	if hook != nil {
		hook(j)
	}

	report := func(p core.Progress) {
		s.mu.Lock()
		j.Progress = p
		s.notifyLocked(j)
		s.mu.Unlock()
	}

	result, err := s.runRecovered(ctx, j, report)

	// Marshal and memoise outside mu: the bytes are the result's canonical
	// form, shared by the cache, the store and every later cache hit.
	var resJSON []byte
	if err == nil {
		resJSON, err = json.Marshal(result)
		if err == nil {
			s.cache.Put(j.Key, resJSON)
		}
	}

	s.mu.Lock()
	s.running--
	j.Finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.State = StateDone
		j.resultJSON = resJSON
		s.stats.Done++
	case ctx.Err() != nil:
		// Cancelled by request, timeout or shutdown.
		j.State = StateCancelled
		j.Error = ctx.Err().Error()
		s.stats.Cancelled++
	default:
		j.State = StateFailed
		j.Error = err.Error()
		s.stats.Failed++
	}
	s.notifyLocked(j)
	// A job cancelled by shutdown (not by the user or its own timeout) was
	// interrupted, not abandoned: persist it as queued so a restarted
	// daemon re-enqueues and re-runs it.
	if j.State == StateCancelled && s.baseCtx.Err() != nil {
		s.persistInterrupted(j)
	} else {
		s.persistJob(j)
	}
	s.mu.Unlock()
}

// persistInterrupted records a shutdown-interrupted job as queued on
// disk, keeping its in-memory state cancelled. Callers hold mu.
func (s *Server) persistInterrupted(j *Job) {
	if s.store == nil {
		return
	}
	s.store.PutJob(jobRecord{
		ID:        j.ID,
		Key:       j.Key,
		Kind:      j.Kind,
		Request:   j.Request,
		State:     StateQueued,
		Submitted: j.Submitted,
	})
}

// runRecovered executes the job body, converting a panic into an error so
// one bad job cannot take the daemon down.
func (s *Server) runRecovered(ctx context.Context, j *Job, report core.ProgressFunc) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return j.run(ctx, report)
}

// Shutdown stops the service gracefully: no further submissions are
// accepted, queued and running jobs drain to completion, and when ctx
// expires before the drain finishes every in-flight job is cancelled (a
// replay stops within one request boundary; on a durable server the
// interrupted jobs are persisted as queued so a restart resumes them).
// Shutdown returns once all workers have exited; the returned error is
// ctx's error when the drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Submissions stop once closed is set, so closing the queue is safe:
	// Submit's send happens under mu.
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // hard-cancel in-flight jobs
		<-done
	}
	s.baseCancel()
	if s.coord != nil {
		s.coord.client.CloseIdleConnections()
	}
	return err
}
