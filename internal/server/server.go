// Package server implements ipusimd's experiment service: a bounded job
// queue and worker pool that execute simulation jobs (single runs,
// matrices, sensitivity sweeps) on the context-aware core API, with job
// lifecycle endpoints — submit, status, cancel, result — and a live
// progress stream.
//
// Robustness is first-class: the queue applies backpressure (HTTP 429)
// when full, every job runs under a per-job timeout with panic recovery,
// cancellation stops a replay within one request boundary, and shutdown
// drains in-flight jobs or cancels them when the drain deadline passes.
// Completed jobs release their devices back to core's precondition-
// snapshot cache, so a busy daemon reaches steady state with no per-job
// device construction cost.
package server

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ipusim/internal/core"
)

// Options configures a Server. The zero value is usable: every field has a
// production default.
type Options struct {
	// Workers bounds concurrently running jobs; 0 means GOMAXPROCS.
	Workers int
	// QueueCap bounds jobs waiting to run; a full queue rejects
	// submissions with 429. 0 means 64.
	QueueCap int
	// JobTimeout caps each job's wall-clock run time unless the request
	// overrides it; 0 means 10 minutes. Negative means no timeout.
	JobTimeout time.Duration
	// DefaultScale is the trace scale used when a request omits it;
	// 0 means 0.05.
	DefaultScale float64
	// MaxJobs bounds retained job records (terminal jobs beyond the cap
	// are evicted oldest-first); 0 means 1024.
	MaxJobs int
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.DefaultScale <= 0 {
		o.DefaultScale = 0.05
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
}

// Stats are the service-level counters exposed at /v1/stats.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Workers   int    `json:"workers"`
	QueueCap  int    `json:"queueCap"`
}

// Server owns the job table, the bounded queue and the worker pool.
type Server struct {
	opts Options

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // job IDs in submission order
	nextID  uint64
	closed  bool // no further submissions
	queued  int
	running int
	stats   Stats

	queue chan *Job
	wg    sync.WaitGroup // workers

	// baseCtx parents every job context; baseCancel is the shutdown hard
	// stop.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// testHookRunning, if set, is called by a worker right after a job
	// enters StateRunning. Tests use it to block or observe workers.
	testHookRunning func(*Job)
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		jobs:       map[string]*Job{},
		queue:      make(chan *Job, opts.QueueCap),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.stats.Workers = opts.Workers
	s.stats.QueueCap = opts.QueueCap
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates req, assigns the next deterministic job ID
// (job-000001, job-000002, ...) and enqueues the job. It returns
// ErrQueueFull when the bounded queue has no room and ErrClosed after
// Shutdown began.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	run, err := compile(req, s.opts.DefaultScale)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	timeout := s.opts.JobTimeout
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("%w: bad timeout %q", ErrBadRequest, req.Timeout)
		}
		timeout = d
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Kind:      req.Kind,
		Request:   req,
		State:     StateQueued,
		Submitted: time.Now(),
		run:       run,
		timeout:   timeout,
		watch:     make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.nextID-- // the ID was never exposed; keep the sequence dense
		s.stats.Rejected++
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queued++
	s.stats.Submitted++
	s.evictLocked()
	return j, nil
}

// evictLocked drops the oldest terminal job records beyond MaxJobs.
func (s *Server) evictLocked() {
	if len(s.jobs) <= s.opts.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.opts.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.State.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns the job with the given ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel stops the job: a queued job is marked cancelled immediately (the
// worker skips it when popped), a running one has its context cancelled
// and stops within one request boundary. Cancelling a terminal job is a
// no-op; Cancel reports whether the job exists.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	var cancel context.CancelFunc
	switch j.State {
	case StateQueued:
		s.queued--
		s.stats.Cancelled++
		j.State = StateCancelled
		j.Finished = time.Now()
		s.notifyLocked(j)
	case StateRunning:
		cancel = j.cancel
	}
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Jobs lists every retained job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.viewLocked())
		}
	}
	return out
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queued
	st.Running = s.running
	return st
}

// notifyLocked wakes every watcher of j. Callers hold mu.
func (s *Server) notifyLocked(j *Job) {
	close(j.watch)
	j.watch = make(chan struct{})
}

// watch returns the job's current wake channel and view.
func (s *Server) watch(j *Job) (<-chan struct{}, JobView) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.watch, j.viewLocked()
}

// worker pops queued jobs and executes them until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through its lifecycle with timeout and panic
// recovery.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.State != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, j.timeout)
	}
	j.State = StateRunning
	j.Started = time.Now()
	j.cancel = cancel
	s.queued--
	s.running++
	s.notifyLocked(j)
	hook := s.testHookRunning
	s.mu.Unlock()
	defer cancel()
	if hook != nil {
		hook(j)
	}

	report := func(p core.Progress) {
		s.mu.Lock()
		j.Progress = p
		s.notifyLocked(j)
		s.mu.Unlock()
	}

	result, err := s.runRecovered(ctx, j, report)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	j.Finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.State = StateDone
		j.result = result
		s.stats.Done++
	case ctx.Err() != nil:
		// Cancelled by request, timeout or shutdown.
		j.State = StateCancelled
		j.Error = ctx.Err().Error()
		s.stats.Cancelled++
	default:
		j.State = StateFailed
		j.Error = err.Error()
		s.stats.Failed++
	}
	s.notifyLocked(j)
}

// runRecovered executes the job body, converting a panic into an error so
// one bad job cannot take the daemon down.
func (s *Server) runRecovered(ctx context.Context, j *Job, report core.ProgressFunc) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return j.run(ctx, report)
}

// Shutdown stops the service gracefully: no further submissions are
// accepted, queued and running jobs drain to completion, and when ctx
// expires before the drain finishes every in-flight job is cancelled (a
// replay stops within one request boundary). Shutdown returns once all
// workers have exited; the returned error is ctx's error when the drain
// was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Submissions stop once closed is set, so closing the queue is safe:
	// Submit's send happens under mu.
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // hard-cancel in-flight jobs
		<-done
	}
	s.baseCancel()
	return err
}
