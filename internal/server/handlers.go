package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ipusim/internal/core"
)

// Sentinel errors mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull rejects a submission when the bounded queue has no
	// room (HTTP 429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrClosed rejects a submission after shutdown began (HTTP 503).
	ErrClosed = errors.New("server: shutting down")
	// ErrBadRequest rejects an invalid submission (HTTP 400).
	ErrBadRequest = errors.New("server: bad request")
)

// maxBodyBytes bounds submission bodies; experiment specs are tiny.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	GET  /healthz               liveness probe
//	GET  /v1/schemes            registered scheme names
//	GET  /v1/stats              service counters
//	GET  /v1/cluster            coordinator fleet view
//	GET  /v1/jobs               list jobs (submission order)
//	POST /v1/jobs               submit a job (JobRequest body)
//	GET  /v1/jobs/{id}          job status
//	POST /v1/jobs/{id}/cancel   cancel a job
//	GET  /v1/jobs/{id}/result   terminal job's result
//	GET  /v1/jobs/{id}/stream   live progress (server-sent events)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/schemes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"schemes": core.Schemes()})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		if s.coord == nil {
			writeJSON(w, http.StatusOK, ClusterView{Coordinator: false})
			return
		}
		writeJSON(w, http.StatusOK, s.coord.view())
	})
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.mu.Lock()
	v := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.Cancel(j.ID)
	s.mu.Lock()
	v := j.viewLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	v := j.viewLocked()
	result := j.resultJSON
	s.mu.Unlock()
	switch v.State {
	case StateDone:
		// Serve the stored bytes verbatim (as a raw message through the
		// shared encoder), so first, cached, restored and coordinator-
		// aggregated responses are byte-identical.
		writeJSON(w, http.StatusOK, map[string]any{"job": v, "result": json.RawMessage(result)})
	case StateFailed, StateCancelled:
		writeJSON(w, http.StatusConflict, map[string]any{"job": v})
	default:
		// Not finished yet: point the client at the stream.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, map[string]any{"job": v})
	}
}

// handleStream serves the job's live progress as server-sent events: one
// `data:` line per update (the JobView JSON), ending after the terminal
// state is sent.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		wake, v := s.watch(j)
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", b)
		flusher.Flush()
		if v.State.Terminal() {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}
