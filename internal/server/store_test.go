package server

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestStoreRoundTrip persists job records and result bytes, reopens the
// directory cold, and requires everything back intact and in submission
// order.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []jobRecord{
		{
			ID:        "job-000002",
			Key:       "feedbeef",
			Kind:      "run",
			Request:   JobRequest{Kind: "run", Scheme: "IPU", Trace: "ts0", Scale: 0.01, Seed: 7},
			State:     StateQueued,
			Submitted: time.Date(2026, 8, 7, 12, 0, 1, 0, time.UTC),
		},
		{
			ID:        "job-000001",
			Key:       "deadbeef",
			Kind:      "run",
			Request:   JobRequest{Kind: "run", Scheme: "Baseline", Trace: "ads", Scale: 0.02, Seed: 3},
			State:     StateDone,
			Submitted: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
			Finished:  time.Date(2026, 8, 7, 12, 0, 2, 0, time.UTC),
		},
	}
	for _, rec := range recs {
		if err := st.PutJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	result := []byte(`{"Scheme":"Baseline","ReadHits":17}`)
	if err := st.PutResult("deadbeef", result); err != nil {
		t.Fatal(err)
	}

	// Reopen cold, as a restarted daemon would.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	want := []jobRecord{recs[1], recs[0]} // sorted by ID
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LoadJobs = %+v\nwant %+v", got, want)
	}
	b, ok := st2.GetResult("deadbeef")
	if !ok || !bytes.Equal(b, result) {
		t.Fatalf("GetResult = %q, %v; want original bytes", b, ok)
	}
	if _, ok := st2.GetResult("feedbeef"); ok {
		t.Fatal("GetResult returned bytes for a key never stored")
	}
}

// TestStoreUpdateReplacesRecord asserts PutJob on an existing ID is an
// atomic replace — the lifecycle record a restart sees is the last state
// written.
func TestStoreUpdateReplacesRecord(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := jobRecord{ID: "job-000001", Key: "k", Kind: "run", State: StateQueued}
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	rec.State = StateDone
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].State != StateDone {
		t.Fatalf("LoadJobs = %+v, want one done record", got)
	}
}

// TestStoreSkipsTornFiles plants torn, foreign and stray-tmp files in the
// data directory and requires recovery to restore the good records and
// skip the rest — a crashed daemon must restart on whatever survived.
func TestStoreSkipsTornFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := jobRecord{ID: "job-000001", Key: "k", Kind: "run", State: StateDone}
	if err := st.PutJob(good); err != nil {
		t.Fatal(err)
	}
	jobs := filepath.Join(dir, "jobs")
	for name, body := range map[string]string{
		"job-000002.json":     `{"id":"job-000002","state":"qu`, // torn mid-write
		"job-000003.json":     `{"state":"queued"}`,             // no ID
		"notes.txt":           "not a record",
		"job-000004.json.tmp": `{"id":"job-000004"}`, // tmp never renamed
	} {
		if err := os.WriteFile(filepath.Join(jobs, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], good) {
		t.Fatalf("LoadJobs = %+v, want only the good record", got)
	}
}
