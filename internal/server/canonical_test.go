package server

import (
	"encoding/json"
	"testing"

	"ipusim/internal/cache"
	"ipusim/internal/workload"
)

// The result cache, the persistent job store and the coordinator's
// placement ring all key on jobKey, so the content address of every
// pre-v3 request shape is part of the server's compatibility surface:
// changing one would orphan every stored result. The hex keys below were
// computed from the v2 code base (before the tenants/writeCache fields
// existed) at the evaluation default scale; the v3 schema must reproduce
// them byte for byte.
const canonicalTestScale = 0.05

func TestV2JobKeysPreserved(t *testing.T) {
	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"run-defaults", JobRequest{Kind: "run"},
			"66aab234094cc3fd1cb74c26cfd5c795"},
		{"run-closed-loop", JobRequest{Kind: "run", Scheme: "IPS", Trace: "wdev0", QueueDepth: 8},
			"f38225a0a84da165123a13d2a9fbd36c"},
		{"cell", JobRequest{Kind: "cell", PEBaseline: 3000},
			"477ea182252a2ea4a49ef9e59ad55756"},
		{"matrix-explicit-defaults", JobRequest{
			Kind:        "matrix",
			Traces:      []string{"ts0", "wdev0", "lun1", "usr0", "lun2", "ads"},
			Schemes:     []string{"Baseline", "MGA", "IPU", "IPS", "IPU-PGC"},
			PEBaselines: []int{0},
			Scale:       0.05,
			Seed:        42,
		}, "87dee0291a3fbb069a42704788b51400"},
		{"sensitivity", JobRequest{Kind: "sensitivity", Param: "slcratio"},
			"87553b1339407b00b75042f9cfc2b0eb"},
	}
	for _, tc := range cases {
		if got := jobKey(tc.req, canonicalTestScale); got != tc.want {
			t.Errorf("%s: key %s, want the v2 key %s", tc.name, got, tc.want)
		}
	}
}

// TestV2CanonicalJSONOmitsV3Fields pins the mechanism behind key
// preservation: a request without tenants/writeCache must canonicalise to
// JSON that does not mention them at all — omitempty, not empty values.
func TestV2CanonicalJSONOmitsV3Fields(t *testing.T) {
	b, err := json.Marshal(canonicalRequest(JobRequest{Kind: "run", QueueDepth: 4}, canonicalTestScale))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"tenants", "writeCache"} {
		if containsField(b, field) {
			t.Errorf("canonical v2 JSON mentions %q: %s", field, b)
		}
	}
}

func containsField(b []byte, field string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[field]
	return ok
}

// TestV3TenantCanonicalisation checks the v3 fields canonicalise the way
// compileRun and the core engine normalise them: defaults spelled out,
// equivalent submissions sharing one address, distinct ones split.
func TestV3TenantCanonicalisation(t *testing.T) {
	implicit := jobKey(JobRequest{
		Kind: "run", QueueDepth: 16,
		Tenants: []workload.TenantSpec{{}, {Name: "vip", Weight: 3}},
	}, canonicalTestScale)
	explicit := jobKey(JobRequest{
		Kind: "run", Scheme: "IPU", QueueDepth: 16, Seed: 42, Scale: 0.05,
		Tenants: []workload.TenantSpec{
			{Name: "t0", Trace: "ts0", Seed: 42 + 1_000_003, Scale: 0.05, Weight: 1},
			{Name: "vip", Trace: "ts0", Seed: 42 + 2*1_000_003, Scale: 0.05, Weight: 3},
		},
	}, canonicalTestScale)
	if implicit != explicit {
		t.Errorf("defaulted and spelled-out tenant submissions split: %s vs %s", implicit, explicit)
	}

	// The single-stream trace field is dead weight on a multi-tenant run
	// and must not split the address.
	strayTrace := jobKey(JobRequest{
		Kind: "run", Trace: "ts0", QueueDepth: 16,
		Tenants: []workload.TenantSpec{{}, {Name: "vip", Weight: 3}},
	}, canonicalTestScale)
	if strayTrace != implicit {
		t.Errorf("stray trace field split the multi-tenant address")
	}

	// Different tenant mixes are different experiments.
	other := jobKey(JobRequest{
		Kind: "run", QueueDepth: 16,
		Tenants: []workload.TenantSpec{{}, {Name: "vip", Weight: 4}},
	}, canonicalTestScale)
	if other == implicit {
		t.Error("different tenant weights share one address")
	}

	// And a multi-tenant run is never the single-stream run.
	single := jobKey(JobRequest{Kind: "run", QueueDepth: 16}, canonicalTestScale)
	if single == implicit {
		t.Error("multi-tenant run shares the single-stream address")
	}
}

func TestV3WriteCacheCanonicalisation(t *testing.T) {
	off := jobKey(JobRequest{Kind: "run", QueueDepth: 8}, canonicalTestScale)

	// Zero capacity means no buffer: identical to omitting the field.
	zeroCap := jobKey(JobRequest{
		Kind: "run", QueueDepth: 8, WriteCache: &cache.Config{},
	}, canonicalTestScale)
	if zeroCap != off {
		t.Errorf("zero-capacity writeCache split the address: %s vs %s", zeroCap, off)
	}

	// Defaulted and spelled-out buffer parameters share one address.
	implicit := jobKey(JobRequest{
		Kind: "run", QueueDepth: 8,
		WriteCache: &cache.Config{CapacityBytes: 1 << 20},
	}, canonicalTestScale)
	explicit := jobKey(JobRequest{
		Kind: "run", QueueDepth: 8,
		WriteCache: &cache.Config{
			CapacityBytes: 1 << 20,
			LineBytes:     cache.DefaultLineBytes,
			HitNS:         cache.DefaultHitNS,
		},
	}, canonicalTestScale)
	if implicit != explicit {
		t.Errorf("defaulted and spelled-out writeCache split: %s vs %s", implicit, explicit)
	}
	if implicit == off {
		t.Error("buffered and unbuffered runs share one address")
	}
}
