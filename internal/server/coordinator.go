package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/core"
)

// coordinator shards matrix, sensitivity and contention jobs across a
// fleet of worker daemons. A sweep is decomposed into its cells
// (core.Cells, or core.ContentionCells for contention studies); each
// cell becomes a "cell" (or multi-tenant "run") sub-job placed on a
// worker by consistent hashing on the sub-job's content-addressed key,
// so the same cell always lands on the same worker and its local result
// cache stays hot.
// Per-cell rows stream back as workers finish and are aggregated into
// the same response shape a single daemon produces. A worker that fails
// is removed from the ring (remapping only ~1/N of the keyspace); its
// cells retry on the new owner and, when no worker can serve them, fall
// back to in-process execution — a sweep completes even with the whole
// fleet down.
type coordinator struct {
	srv    *Server
	client *http.Client

	mu    sync.Mutex
	ring  *ring
	fleet []string // configured workers, for /v1/cluster
	alive map[string]bool

	remoteCells   atomic.Uint64
	fallbackCells atomic.Uint64
}

func newCoordinator(s *Server, urls []string) *coordinator {
	c := &coordinator{
		srv:    s,
		client: &http.Client{},
		ring:   newRing(0, urls...),
		fleet:  append([]string(nil), urls...),
		alive:  map[string]bool{},
	}
	for _, u := range urls {
		c.alive[u] = true
	}
	return c
}

// pick returns the ring owner of a key, or "" when no worker is alive.
func (c *coordinator) pick(key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.lookup(key)
}

// markDead drops a failed worker from the ring: future cells reroute to
// the survivors, and only the dead worker's share of keys remaps.
func (c *coordinator) markDead(node string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.alive[node] {
		c.alive[node] = false
		c.ring.remove(node)
	}
}

// ClusterView is the GET /v1/cluster payload.
type ClusterView struct {
	Coordinator   bool            `json:"coordinator"`
	Workers       []string        `json:"workers,omitempty"`
	Alive         map[string]bool `json:"alive,omitempty"`
	RemoteCells   uint64          `json:"remoteCells"`
	FallbackCells uint64          `json:"fallbackCells"`
}

func (c *coordinator) view() ClusterView {
	c.mu.Lock()
	alive := make(map[string]bool, len(c.alive))
	for k, v := range c.alive {
		alive[k] = v
	}
	c.mu.Unlock()
	return ClusterView{
		Coordinator:   true,
		Workers:       append([]string(nil), c.fleet...),
		Alive:         alive,
		RemoteCells:   c.remoteCells.Load(),
		FallbackCells: c.fallbackCells.Load(),
	}
}

// compile builds the sharded jobFunc for a matrix or sensitivity
// request. Validation matches the local compile path, and the request is
// canonicalised first so the sub-jobs carry fully explicit parameters.
func (c *coordinator) compile(req JobRequest, defaultScale float64) (jobFunc, error) {
	req = canonicalRequest(req, defaultScale)
	if req.Scale <= 0 || req.Scale > 1 {
		return nil, fmt.Errorf("scale %v out of (0, 1]", req.Scale)
	}
	if err := validateSchemes(req.Schemes); err != nil {
		return nil, err
	}
	if err := validateTraces(req.Traces); err != nil {
		return nil, err
	}
	switch req.Kind {
	case "matrix":
		return func(ctx context.Context, report core.ProgressFunc) (any, error) {
			return c.runMatrix(ctx, req, report)
		}, nil
	case "sensitivity":
		if _, ok := core.SensitivityParams[req.Param]; !ok {
			return nil, fmt.Errorf("unknown sensitivity param %q", req.Param)
		}
		return func(ctx context.Context, report core.ProgressFunc) (any, error) {
			return c.runSensitivity(ctx, req, report)
		}, nil
	case "contention":
		if err := validateMixes(req.Mixes, req.Seed, req.Scale); err != nil {
			return nil, err
		}
		return func(ctx context.Context, report core.ProgressFunc) (any, error) {
			return c.runContention(ctx, req, report)
		}, nil
	default:
		return nil, fmt.Errorf("kind %q is not shardable", req.Kind)
	}
}

// runContention shards the multi-tenant contention study: every (mix,
// buffer arm, scheme) cell travels as an ordinary v3 closed-loop "run"
// sub-job — multi-tenant, optionally write-cached — which every worker
// already executes, so contention studies scale over a fleet without a
// worker-side upgrade. Rows reassemble in the study's deterministic
// enumeration order, bit-identical to core.RunTenantContentionContext.
func (c *coordinator) runContention(ctx context.Context, req JobRequest, report core.ProgressFunc) (any, error) {
	spec := core.TenantContentionSpec{
		Mixes:      req.Mixes,
		Schemes:    req.Schemes,
		Depth:      req.QueueDepth,
		CacheBytes: req.CacheBytes,
		Seed:       req.Seed,
		Scale:      req.Scale,
	}
	cells, err := core.ContentionCells(spec)
	if err != nil {
		return nil, err
	}
	var done atomic.Int64
	rows := make([]core.ContentionRow, len(cells))
	errs := make([]error, len(cells))
	workers := runtime.GOMAXPROCS(0)
	c.mu.Lock()
	if n := 2 * c.ring.size(); n > workers {
		workers = n
	}
	c.mu.Unlock()
	if workers > len(cells) {
		workers = len(cells)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rows[i], errs[i] = c.runContentionCell(ctx, spec, cells[i])
				if errs[i] == nil && report != nil {
					report(core.Progress{Replayed: int(done.Add(1)), Total: len(cells)})
				}
			}
		}()
	}
dispatch:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// runContentionCell executes one contention cell: place its "run"
// sub-job on the ring, retry once on the post-failure owner, then fall
// back to in-process execution.
func (c *coordinator) runContentionCell(ctx context.Context, spec core.TenantContentionSpec, cell core.ContentionCell) (core.ContentionRow, error) {
	sub := JobRequest{
		Kind:       "run",
		Scheme:     cell.Scheme,
		QueueDepth: spec.Depth,
		Scale:      spec.Scale,
		Seed:       spec.Seed,
		Tenants:    cell.Mix.Tenants,
	}
	if cell.Buffered {
		sub.WriteCache = &cache.Config{CapacityBytes: spec.CacheBytes}
	}
	// Placement hashes the sub-job's content address — the same key the
	// worker's own result cache uses — so repeated studies hit warm caches.
	key := jobKey(sub, spec.Scale)
	for attempt := 0; attempt < 2; attempt++ {
		node := c.pick(key)
		if node == "" {
			break
		}
		res, err := c.dispatch(ctx, node, sub)
		if err == nil {
			c.remoteCells.Add(1)
			return core.ContentionRow{
				Mix: cell.Mix.Name, Scheme: cell.Scheme, Buffered: cell.Buffered, Result: res,
			}, nil
		}
		if ctx.Err() != nil {
			return core.ContentionRow{}, ctx.Err()
		}
		c.markDead(node)
	}
	// No worker could serve the cell: run it here so the study completes.
	c.fallbackCells.Add(1)
	return core.RunContentionCellContext(ctx, spec, cell)
}

// runMatrix shards one matrix sweep and reassembles the results in cell
// order — the exact slice core.RunMatrixContext would return.
func (c *coordinator) runMatrix(ctx context.Context, req JobRequest, report core.ProgressFunc) (any, error) {
	spec := core.MatrixSpec{
		Traces:      req.Traces,
		Schemes:     req.Schemes,
		PEBaselines: req.PEBaselines,
		Scale:       req.Scale,
		Seed:        req.Seed,
	}
	cells := core.Cells(spec)
	var done atomic.Int64
	onDone := func() {
		n := done.Add(1)
		if report != nil {
			report(core.Progress{Replayed: int(n), Total: len(cells)})
		}
	}
	return c.runCells(ctx, spec, cells, "", 0, onDone)
}

// runSensitivity shards one sensitivity sweep point by point and renders
// the same table a single daemon produces.
func (c *coordinator) runSensitivity(ctx context.Context, req JobRequest, report core.ProgressFunc) (any, error) {
	values := core.SensitivityParams[req.Param]
	base := core.MatrixSpec{
		Traces:  req.Traces,
		Schemes: req.Schemes,
		Scale:   req.Scale,
		Seed:    req.Seed,
	}
	pointSpecs := make([]core.MatrixSpec, len(values))
	pointCells := make([][]core.MatrixCell, len(values))
	total := 0
	for i, v := range values {
		ps, err := core.SensitivityPointSpec(base, req.Param, v)
		if err != nil {
			return nil, err
		}
		pointSpecs[i] = ps
		pointCells[i] = core.Cells(ps)
		total += len(pointCells[i])
	}
	var done atomic.Int64
	onDone := func() {
		n := done.Add(1)
		if report != nil {
			report(core.Progress{Replayed: int(n), Total: total})
		}
	}
	perPoint := make([][]*core.Result, len(values))
	for i := range values {
		rs, err := c.runCells(ctx, pointSpecs[i], pointCells[i], req.Param, values[i], onDone)
		if err != nil {
			return nil, err
		}
		perPoint[i] = rs
	}
	return core.SensitivityTable(req.Param, values, perPoint), nil
}

// runCells fans the cells out over a bounded worker pool, streaming each
// completed row into its slot; onDone fires per completed cell.
func (c *coordinator) runCells(ctx context.Context, spec core.MatrixSpec, cells []core.MatrixCell, param string, value float64, onDone func()) ([]*core.Result, error) {
	results := make([]*core.Result, len(cells))
	errs := make([]error, len(cells))
	workers := runtime.GOMAXPROCS(0)
	c.mu.Lock()
	if n := 2 * c.ring.size(); n > workers {
		workers = n
	}
	c.mu.Unlock()
	if workers > len(cells) {
		workers = len(cells)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = c.runCell(ctx, spec, cells[i], param, value)
				if errs[i] == nil && onDone != nil {
					onDone()
				}
			}
		}()
	}
dispatch:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runCell executes one cell: place on the ring, retry once on the
// post-failure owner, then fall back to in-process execution.
func (c *coordinator) runCell(ctx context.Context, spec core.MatrixSpec, cell core.MatrixCell, param string, value float64) (*core.Result, error) {
	req := JobRequest{
		Kind:       "cell",
		Trace:      cell.Trace,
		Scheme:     cell.Scheme,
		PEBaseline: cell.PE,
		Scale:      spec.Scale,
		Seed:       spec.Seed,
		Param:      param,
		ParamValue: value,
	}
	// Placement hashes the sub-job's content address — the same key the
	// worker's own result cache uses — so repeated sweeps hit warm caches.
	key := jobKey(req, spec.Scale)
	for attempt := 0; attempt < 2; attempt++ {
		node := c.pick(key)
		if node == "" {
			break
		}
		res, err := c.dispatch(ctx, node, req)
		if err == nil {
			c.remoteCells.Add(1)
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		c.markDead(node)
	}
	// No worker could serve the cell: run it here so the sweep completes.
	c.fallbackCells.Add(1)
	return core.RunCellContext(ctx, spec, cell)
}

// dispatch submits a cell sub-job to one worker and polls its result.
// A 429 (worker queue full) backs off and resubmits; any transport or
// server error is returned to the caller for rerouting.
func (c *coordinator) dispatch(ctx context.Context, node string, req JobRequest) (*core.Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var view JobView
	for {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(httpReq)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Alive but saturated: back off and resubmit.
			drain(resp)
			if err := sleepCtx(ctx, 25*time.Millisecond); err != nil {
				return nil, err
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			drain(resp)
			return nil, fmt.Errorf("worker %s: submit HTTP %d", node, resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		drain(resp)
		if err != nil {
			return nil, err
		}
		break
	}
	for {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/jobs/"+view.ID+"/result", nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.client.Do(httpReq)
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var out struct {
				Result *core.Result `json:"result"`
			}
			err := json.NewDecoder(resp.Body).Decode(&out)
			drain(resp)
			if err != nil {
				return nil, err
			}
			if out.Result == nil {
				return nil, fmt.Errorf("worker %s: job %s returned no result", node, view.ID)
			}
			return out.Result, nil
		case http.StatusAccepted:
			// Still queued or running on the worker.
			drain(resp)
			if err := sleepCtx(ctx, 5*time.Millisecond); err != nil {
				return nil, err
			}
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			drain(resp)
			return nil, fmt.Errorf("worker %s: job %s: HTTP %d: %s",
				node, view.ID, resp.StatusCode, bytes.TrimSpace(msg))
		}
	}
}

// drain consumes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
