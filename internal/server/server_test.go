package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestService starts a Server plus an httptest front end and tears both
// down with the test.
func newTestService(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobView) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if err := json.NewDecoder(io2(&buf, resp)).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v (body %q)", path, err, buf.String())
	}
	return resp.StatusCode
}

// io2 tees the response body for error reporting.
func io2(buf *bytes.Buffer, resp *http.Response) *teeReader {
	return &teeReader{r: resp, buf: buf}
}

type teeReader struct {
	r   *http.Response
	buf *bytes.Buffer
}

func (t *teeReader) Read(p []byte) (int, error) {
	n, err := t.r.Body.Read(p)
	t.buf.Write(p[:n])
	return n, err
}

// waitState polls the job's status endpoint until the wanted terminal
// condition holds or the deadline passes.
func waitState(t *testing.T, ts *httptest.Server, id string, ok func(JobView) bool, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		if code := getJSON(t, ts, "/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if ok(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not reach wanted state in %v (last: %+v)", id, timeout, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 2})
	resp, v := postJob(t, ts, `{"kind":"run","scheme":"IPU","trace":"ts0","scale":0.02,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if v.ID != "job-000001" {
		t.Fatalf("first job ID = %q, want deterministic job-000001", v.ID)
	}
	done := waitState(t, ts, v.ID, func(v JobView) bool { return v.State.Terminal() }, 30*time.Second)
	if done.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", done.State, done.Error)
	}
	if done.Progress.Replayed == 0 || done.Progress.Replayed != done.Progress.Total {
		t.Fatalf("final progress %+v not complete", done.Progress)
	}

	var out struct {
		Job    JobView `json:"job"`
		Result struct {
			Scheme   string
			Trace    string
			Requests int
		} `json:"result"`
	}
	if code := getJSON(t, ts, "/v1/jobs/"+v.ID+"/result", &out); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if out.Result.Scheme != "IPU" || out.Result.Trace == "" || out.Result.Requests == 0 {
		t.Fatalf("result payload incomplete: %+v", out.Result)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"unknown kind":   `{"kind":"explode"}`,
		"unknown scheme": `{"kind":"run","scheme":"NOPE"}`,
		"unknown trace":  `{"kind":"run","trace":"nope"}`,
		"bad scale":      `{"kind":"run","scale":7}`,
		"bad timeout":    `{"kind":"run","timeout":"yesterday"}`,
		"unknown field":  `{"kind":"run","shceme":"IPU"}`,
		"matrix scheme":  `{"kind":"matrix","schemes":["IPU","NOPE"]}`,
		"bad param":      `{"kind":"sensitivity","param":"warp"}`,
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	// Nothing should have been enqueued.
	if st := mustStats(t, ts); st.Submitted != 0 {
		t.Fatalf("stats.Submitted = %d after rejected submissions", st.Submitted)
	}
}

func mustStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	var st Stats
	if code := getJSON(t, ts, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	return st
}

// TestBackpressure fills the bounded queue behind a blocked worker and
// asserts the next submission is rejected with 429.
func TestBackpressure(t *testing.T) {
	svc := New(Options{Workers: 1, QueueCap: 1})
	running := make(chan string, 8)
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	svc.testHookRunning = func(j *Job) {
		running <- j.ID
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		releaseAll()
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})

	body := `{"kind":"run","scale":0.002}`
	resp, j1 := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", resp.StatusCode)
	}
	// Wait until the worker holds job 1, so job 2 occupies the only
	// queue slot.
	select {
	case id := <-running:
		if id != j1.ID {
			t.Fatalf("running %s, want %s", id, j1.ID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never started")
	}
	if resp, _ := postJob(t, ts, body); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: HTTP %d", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3 on full queue: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if st := mustStats(t, ts); st.Rejected != 1 {
		t.Errorf("stats.Rejected = %d, want 1", st.Rejected)
	}
	// IDs stay dense across the rejection: unblock the worker, drain, and
	// the next accepted job takes the sequence number the rejected
	// submission never consumed.
	releaseAll()
	resp2, j3 := postJob(t, ts, `{"kind":"run","scale":0.002}`)
	if resp2.StatusCode == http.StatusAccepted && j3.ID != "job-000003" {
		t.Errorf("rejected submission consumed a job ID: next = %s, want job-000003", j3.ID)
	}
}

// TestCancelQueued cancels a job that never left the queue.
func TestCancelQueued(t *testing.T) {
	svc := New(Options{Workers: 1, QueueCap: 4})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	svc.testHookRunning = func(j *Job) {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		close(release)
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})

	postJob(t, ts, `{"kind":"run","scale":0.002}`)
	<-started
	_, queued := postJob(t, ts, `{"kind":"run","scale":0.002}`)

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	v := waitState(t, ts, queued.ID, func(v JobView) bool { return v.State.Terminal() }, 5*time.Second)
	if v.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	if v.Progress.Replayed != 0 {
		t.Fatalf("queued job replayed %d requests", v.Progress.Replayed)
	}
}

// TestCancelRunning cancels a job mid-replay and asserts it stops quickly
// with partial progress: the replay loop honours cancellation between
// requests.
func TestCancelRunning(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	// Big enough to still be replaying when the cancel lands.
	_, j := postJob(t, ts, `{"kind":"run","trace":"ts0","scale":0.5,"seed":3}`)
	v := waitState(t, ts, j.ID, func(v JobView) bool {
		return v.State == StateRunning && v.Progress.Replayed > 0
	}, 30*time.Second)

	cancelAt := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+j.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	v = waitState(t, ts, j.ID, func(v JobView) bool { return v.State.Terminal() }, 10*time.Second)
	if v.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	if elapsed := time.Since(cancelAt); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if v.Progress.Replayed == 0 || v.Progress.Replayed >= v.Progress.Total {
		t.Fatalf("cancelled job progress %+v, want partial", v.Progress)
	}
}

// TestStream reads the SSE progress stream until the terminal event.
func TestStream(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	_, j := postJob(t, ts, `{"kind":"run","trace":"ts0","scale":0.05,"seed":5}`)

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + j.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []JobView
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var v JobView
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
			t.Fatalf("bad stream event %q: %v", line, err)
		}
		events = append(events, v)
		if v.State.Terminal() {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("only %d stream events", len(events))
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("final stream state %s (error %q)", last.State, last.Error)
	}
	sawProgress := false
	for _, e := range events {
		if e.State == StateRunning && e.Progress.Replayed > 0 && e.Progress.Replayed < e.Progress.Total {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Error("stream never showed mid-replay progress")
	}
}

// TestJobTimeout runs a job under a tiny per-job timeout.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	_, j := postJob(t, ts, `{"kind":"run","trace":"ts0","scale":0.5,"timeout":"30ms"}`)
	v := waitState(t, ts, j.ID, func(v JobView) bool { return v.State.Terminal() }, 30*time.Second)
	if v.State != StateCancelled {
		t.Fatalf("state = %s (error %q), want cancelled by timeout", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", v.Error)
	}
}

// TestShutdownDrains submits short jobs and asserts a generous Shutdown
// lets every one of them finish.
func TestShutdownDrains(t *testing.T) {
	svc := New(Options{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		_, j := postJob(t, ts, fmt.Sprintf(`{"kind":"run","scale":0.01,"seed":%d}`, i+1))
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	for _, id := range ids {
		j, ok := svc.Job(id)
		if !ok {
			t.Fatalf("job %s gone", id)
		}
		if j.State != StateDone {
			t.Fatalf("job %s = %s after drain, want done", id, j.State)
		}
	}
	// The daemon no longer accepts work.
	if _, err := svc.Submit(JobRequest{Kind: "run"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown: %v, want ErrClosed", err)
	}
	resp, _ := postJob(t, ts, `{"kind":"run"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP submit after shutdown: %d, want 503", resp.StatusCode)
	}
}

// TestShutdownDeadlineCancels asserts an expired drain budget hard-cancels
// in-flight jobs instead of hanging.
func TestShutdownDeadlineCancels(t *testing.T) {
	svc := New(Options{Workers: 1})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	_, j := postJob(t, ts, `{"kind":"run","trace":"ts0","scale":0.5}`)
	waitState(t, ts, j.ID, func(v JobView) bool {
		return v.State == StateRunning && v.Progress.Replayed > 0
	}, 30*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	jj, _ := svc.Job(j.ID)
	if jj.State != StateCancelled {
		t.Fatalf("in-flight job state = %s after hard shutdown, want cancelled", jj.State)
	}
}

// TestMatrixJob runs a small sweep through the daemon and checks the
// aggregated result rows.
func TestMatrixJob(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 2})
	_, j := postJob(t, ts, `{"kind":"matrix","traces":["ts0"],"schemes":["Baseline","IPU"],"scale":0.01,"seed":9}`)
	v := waitState(t, ts, j.ID, func(v JobView) bool { return v.State.Terminal() }, 60*time.Second)
	if v.State != StateDone {
		t.Fatalf("state = %s (error %q)", v.State, v.Error)
	}
	var out struct {
		Result []struct {
			Scheme string
			Trace  string
		} `json:"result"`
	}
	if code := getJSON(t, ts, "/v1/jobs/"+j.ID+"/result", &out); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if len(out.Result) != 2 {
		t.Fatalf("matrix rows = %d, want 2", len(out.Result))
	}
	if out.Result[0].Scheme != "Baseline" || out.Result[1].Scheme != "IPU" {
		t.Fatalf("row order %+v not deterministic", out.Result)
	}
}

// TestMultiTenantJobEndToEnd submits a schema-v3 run — two tenants plus a
// write cache — through the HTTP API and asserts the result carries the
// per-tenant percentiles, the fairness index and the cache counters.
func TestMultiTenantJobEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	_, j := postJob(t, ts, `{"kind":"run","queueDepth":16,"scale":0.003,"seed":5,
		"tenants":[{"name":"web","trace":"ts0","weight":3},{"name":"batch","trace":"wdev0"}],
		"writeCache":{"capacityBytes":4194304}}`)
	v := waitState(t, ts, j.ID, func(v JobView) bool { return v.State.Terminal() }, 60*time.Second)
	if v.State != StateDone {
		t.Fatalf("state = %s (error %q)", v.State, v.Error)
	}
	var out struct {
		Result struct {
			Requests int
			Tenants  []struct {
				Name            string
				Requests        int
				P999ReadLatency int64
				ThroughputRPS   float64
			}
			FairnessIndex float64
			WriteCache    *struct {
				WriteHits      int64
				CoalescedBytes int64
			}
		} `json:"result"`
	}
	if code := getJSON(t, ts, "/v1/jobs/"+j.ID+"/result", &out); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	r := out.Result
	if len(r.Tenants) != 2 || r.Tenants[0].Name != "web" || r.Tenants[1].Name != "batch" {
		t.Fatalf("tenants %+v", r.Tenants)
	}
	if r.Tenants[0].Requests+r.Tenants[1].Requests != r.Requests {
		t.Fatalf("tenant requests %d+%d != total %d", r.Tenants[0].Requests, r.Tenants[1].Requests, r.Requests)
	}
	if r.FairnessIndex <= 0 || r.FairnessIndex > 1 {
		t.Fatalf("fairness index %v", r.FairnessIndex)
	}
	if r.WriteCache == nil || r.WriteCache.WriteHits == 0 {
		t.Fatalf("write-cache counters missing: %+v", r.WriteCache)
	}
	for _, tn := range r.Tenants {
		if tn.ThroughputRPS <= 0 {
			t.Fatalf("tenant %s throughput %v", tn.Name, tn.ThroughputRPS)
		}
	}
}

// TestV3FieldValidation asserts the schema-v3 fields are rejected where
// they make no sense.
func TestV3FieldValidation(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"tenants open-loop":    `{"kind":"run","tenants":[{"name":"a"}]}`,
		"cache open-loop":      `{"kind":"run","writeCache":{"capacityBytes":1048576}}`,
		"tenants on matrix":    `{"kind":"matrix","tenants":[{"name":"a"}]}`,
		"cache on sensitivity": `{"kind":"sensitivity","param":"slcratio","writeCache":{"capacityBytes":1048576}}`,
		"tenant bad trace":     `{"kind":"run","queueDepth":8,"tenants":[{"trace":"nope"}]}`,
		"tenant bad weight":    `{"kind":"run","queueDepth":8,"tenants":[{"weight":-2}]}`,
		"trace plus tenants":   `{"kind":"run","queueDepth":8,"trace":"ts0","tenants":[{"name":"a"}]}`,
		"bad cache line":       `{"kind":"run","queueDepth":8,"writeCache":{"capacityBytes":1024,"lineBytes":4096}}`,
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestSchemesEndpoint asserts the daemon exposes the scheme registry.
func TestSchemesEndpoint(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1})
	var out struct {
		Schemes []string `json:"schemes"`
	}
	if code := getJSON(t, ts, "/v1/schemes", &out); code != http.StatusOK {
		t.Fatalf("schemes: HTTP %d", code)
	}
	got := strings.Join(out.Schemes, ",")
	for _, want := range []string{"Baseline", "MGA", "IPU", "IPU-AC"} {
		if !strings.Contains(got, want) {
			t.Fatalf("schemes %q missing %q", got, want)
		}
	}
}
