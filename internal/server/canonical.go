package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"ipusim/internal/core"
	"ipusim/internal/trace"
	"ipusim/internal/workload"
)

// Content-addressed job identity. The simulator guarantees identical
// (seed, scale, config) ⇒ bit-identical output, so a submission's
// canonical form is a durable address for its result: the result cache,
// the persistent store and the coordinator's placement ring all key on
// jobKey. Canonicalisation makes every output-affecting default explicit
// and drops lifecycle-only fields, so submissions that differ merely in
// JSON key order, formatting, or spelled-out defaults cannot miss the
// cache.

// canonicalRequest returns req in canonical form: defaults applied
// exactly as compile/core normalisation would, fields irrelevant to the
// requested kind zeroed, and lifecycle-only fields (Timeout) cleared.
func canonicalRequest(req JobRequest, defaultScale float64) JobRequest {
	req.Timeout = ""
	// Parallelism changes how fast a result is computed, never the result
	// itself (bit-identical by the scheme's in-order commit), so serial and
	// parallel submissions of the same experiment share one address.
	req.Parallelism = 0
	if req.Scale == 0 {
		req.Scale = defaultScale
	}
	if req.Seed == 0 {
		req.Seed = 42
	}
	switch req.Kind {
	case "run":
		if req.Scheme == "" {
			req.Scheme = "IPU"
		}
		// Schema v3: tenants and the write cache are canonicalised with
		// every default made explicit — exactly mirroring compileRun and
		// the core engine — so spelled-out and defaulted submissions share
		// an address. A v2 request leaves both fields absent, marshals
		// without them (omitempty), and keeps its v2 key byte for byte.
		if len(req.Tenants) > 0 {
			// A multi-tenant run never replays the single-stream trace;
			// zeroing it keeps `{"tenants":[...]}` and a stray
			// `{"trace":"ts0","tenants":[...]}` from splitting the cache.
			req.Trace = ""
			req.Tenants = workload.NormalizeTenants(req.Tenants, core.DefaultTenantTrace, req.Seed, req.Scale)
		} else if req.Trace == "" {
			req.Trace = "ts0"
		}
		if req.WriteCache != nil {
			if req.WriteCache.CapacityBytes <= 0 {
				// Non-positive capacity means "no buffer": identical to
				// omitting the field.
				req.WriteCache = nil
			} else {
				wc := req.WriteCache.Normalize()
				req.WriteCache = &wc
			}
		}
		req.Traces, req.Schemes, req.PEBaselines = nil, nil, nil
		req.Param, req.ParamValue = "", 0
		req.Mixes, req.CacheBytes = nil, 0
	case "cell":
		if req.Scheme == "" {
			req.Scheme = "IPU"
		}
		if req.Trace == "" {
			req.Trace = "ts0"
		}
		req.Traces, req.Schemes, req.PEBaselines = nil, nil, nil
		req.QueueDepth = 0
		req.Tenants, req.WriteCache = nil, nil
		req.Mixes, req.CacheBytes = nil, 0
		if req.Param == "" {
			req.ParamValue = 0
		}
	case "matrix":
		if len(req.Traces) == 0 {
			req.Traces = trace.ProfileNames()
		}
		if len(req.Schemes) == 0 {
			req.Schemes = append([]string(nil), core.SchemeNames...)
		}
		if len(req.PEBaselines) == 0 {
			req.PEBaselines = []int{0}
		}
		req.Scheme, req.Trace = "", ""
		req.QueueDepth, req.PEBaseline = 0, 0
		req.Tenants, req.WriteCache = nil, nil
		req.Mixes, req.CacheBytes = nil, 0
		req.Param, req.ParamValue = "", 0
	case "sensitivity":
		if len(req.Traces) == 0 {
			req.Traces = trace.ProfileNames()
		}
		if len(req.Schemes) == 0 {
			req.Schemes = []string{"Baseline", "IPU"}
		}
		req.Scheme, req.Trace = "", ""
		req.QueueDepth, req.PEBaseline = 0, 0
		req.PEBaselines = nil
		req.Tenants, req.WriteCache = nil, nil
		req.Mixes, req.CacheBytes = nil, 0
		req.ParamValue = 0
	case "contention":
		// Schema v4: the contention study canonicalises with every default
		// made explicit — mirroring TenantContentionSpec.normalize and the
		// per-mix tenant normalisation — so defaulted and spelled-out
		// studies share an address. Existing kinds never carry Mixes or
		// CacheBytes (omitempty), so their v2/v3 keys are untouched.
		if len(req.Mixes) == 0 {
			req.Mixes = core.DefaultTenantMixes()
		}
		if len(req.Schemes) == 0 {
			req.Schemes = append([]string(nil), core.SchemeNames...)
		}
		if req.QueueDepth == 0 {
			req.QueueDepth = 16
		}
		if req.CacheBytes == 0 {
			req.CacheBytes = 4 << 20
		}
		mixes := make([]core.TenantMix, len(req.Mixes))
		for i, mix := range req.Mixes {
			mixes[i] = core.TenantMix{
				Name:    mix.Name,
				Tenants: workload.NormalizeTenants(mix.Tenants, core.DefaultTenantTrace, req.Seed, req.Scale),
			}
		}
		req.Mixes = mixes
		req.Scheme, req.Trace = "", ""
		req.Traces, req.PEBaselines = nil, nil
		req.PEBaseline = 0
		req.Tenants, req.WriteCache = nil, nil
		req.Param, req.ParamValue = "", 0
	}
	return req
}

// jobKey returns the deterministic content address of a submission: the
// hex SHA-256 of the canonical request's JSON. Marshalling the struct
// (not the client's raw body) normalises JSON key order, so two
// semantically identical submissions always share a key.
func jobKey(req JobRequest, defaultScale float64) string {
	b, err := json.Marshal(canonicalRequest(req, defaultScale))
	if err != nil {
		// JobRequest holds only plain data; marshalling cannot fail.
		panic("server: marshalling canonical job request: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}
