package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ipusim/internal/core"
)

// TestSoakConcurrentCancelDrain is the daemon's acceptance soak, run under
// -race by `make serve-test`:
//
//   - 32 jobs submitted concurrently over HTTP,
//   - half cancelled mid-replay,
//   - graceful shutdown drains the rest,
//   - zero goroutines leak, and
//   - the snapshot cache stays uncorrupted: a device recycled from the
//     soak's free pool replays bit-for-bit like a freshly built one.
func TestSoakConcurrentCancelDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	svc := New(Options{Workers: 8, QueueCap: 64})
	ts := httptest.NewServer(svc.Handler())

	const jobs = 32
	ids := make([]string, jobs)
	schemes := []string{"IPU", "Baseline", "MGA", "IPU-AC"}
	traces := []string{"ts0", "wdev0"}
	errCh := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		go func(i int) {
			// Jobs destined for cancellation replay a long trace so the
			// cancel reliably lands mid-run; the rest stay short.
			scale := 0.01
			if i%2 == 0 {
				scale = 0.5
			}
			body := fmt.Sprintf(`{"kind":"run","scheme":%q,"trace":%q,"scale":%v,"seed":%d}`,
				schemes[i%len(schemes)], traces[i%len(traces)], scale, 100+i)
			resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
				strings.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errCh <- fmt.Errorf("job %d: HTTP %d", i, resp.StatusCode)
				return
			}
			var v JobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				errCh <- err
				return
			}
			ids[i] = v.ID
			errCh <- nil
		}(i)
	}
	for i := 0; i < jobs; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	// Job fields are guarded by svc.mu; the HTTP status handler is not used
	// here because t.Fatal must not fire from poller goroutines.
	viewOf := func(id string) (JobView, bool) {
		svc.mu.Lock()
		defer svc.mu.Unlock()
		j, ok := svc.jobs[id]
		if !ok {
			return JobView{}, false
		}
		return j.viewLocked(), true
	}

	// Cancel every even-indexed (long) job as soon as it is observed
	// mid-replay — running with at least one progress report — while the
	// other workers keep completing short jobs.
	var cwg sync.WaitGroup
	for i := 0; i < jobs; i += 2 {
		cwg.Add(1)
		go func(id string) {
			defer cwg.Done()
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				v, ok := viewOf(id)
				if !ok || v.State.Terminal() ||
					(v.State == StateRunning && v.Progress.Replayed > 0) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			svc.Cancel(id)
		}(ids[i])
	}
	cwg.Wait()

	// Graceful shutdown drains the remaining jobs to completion.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	ts.Close()

	views := map[string]JobView{}
	for _, v := range svc.Jobs() {
		views[v.ID] = v
	}
	var done, can, failed int
	for i, id := range ids {
		v, ok := views[id]
		if !ok {
			t.Fatalf("job %s evicted during soak", id)
		}
		switch v.State {
		case StateDone:
			done++
		case StateCancelled:
			can++
			if v.Progress.Replayed == 0 || v.Progress.Replayed >= v.Progress.Total {
				t.Errorf("job %d (%s) cancelled at %d/%d requests, want mid-replay",
					i, id, v.Progress.Replayed, v.Progress.Total)
			}
		case StateFailed:
			t.Errorf("job %d (%s) failed: %s", i, id, v.Error)
			failed++
		default:
			t.Errorf("job %d (%s) not terminal after drain: %s", i, id, v.State)
		}
	}
	if can != jobs/2 {
		t.Errorf("cancelled jobs = %d, want %d", can, jobs/2)
	}
	if done != jobs-can-failed {
		t.Errorf("done = %d, cancelled = %d, failed = %d out of %d", done, can, failed, jobs)
	}
	t.Logf("soak: %d done, %d cancelled", done, can)

	// Zero goroutine leaks: everything the daemon started has exited.
	// HTTP client/server teardown is asynchronous, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// No snapshot-cache corruption: after dozens of cancelled and completed
	// jobs were recycled through the free pools, a pooled device must still
	// replay bit-for-bit like a freshly built one.
	tr, err := core.SyntheticTrace("ts0", 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"IPU", "Baseline", "MGA"} {
		cfg := core.DefaultConfig()
		cfg.Scheme = name
		fresh, err := core.NewFresh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		recycled, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recycled.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recycled device diverged from fresh after soak:\n got %+v\nwant %+v", name, got, want)
		}
	}
}
