package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ipusim/internal/core"
)

// One mix, two schemes, both buffer arms: 4 cells — small enough for a
// per-commit test, large enough to exercise sharding and row order.
const contentionTestBody = `{"kind":"contention",` +
	`"mixes":[{"name":"mix0","tenants":[` +
	`{"name":"a","trace":"ts0","weight":3},` +
	`{"name":"b","trace":"wdev0","weight":1}]}],` +
	`"schemes":["Baseline","IPU"],` +
	`"queueDepth":8,"cacheBytes":262144,"scale":0.01,"seed":9}`

// TestContentionJobEndToEnd runs a contention study through a plain
// daemon and checks the rows come back in the deterministic
// mix/buffer/scheme enumeration order with per-tenant results attached.
func TestContentionJobEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 2, DefaultScale: 0.01})
	_, raw := runToResult(t, ts, contentionTestBody, 120*time.Second)

	var rows []core.ContentionRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("decoding contention rows: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (1 mix x 2 arms x 2 schemes)", len(rows))
	}
	want := []struct {
		scheme   string
		buffered bool
	}{
		{"Baseline", false}, {"IPU", false},
		{"Baseline", true}, {"IPU", true},
	}
	for i, row := range rows {
		if row.Mix != "mix0" || row.Scheme != want[i].scheme || row.Buffered != want[i].buffered {
			t.Fatalf("row %d = {%s %s %v}, want {mix0 %s %v}",
				i, row.Mix, row.Scheme, row.Buffered, want[i].scheme, want[i].buffered)
		}
		if row.Result == nil || len(row.Result.Tenants) != 2 {
			t.Fatalf("row %d: missing per-tenant results", i)
		}
		if want[i].buffered && row.Result.WriteCache == nil {
			t.Fatalf("row %d: buffered arm has no write-cache stats", i)
		}
	}
}

// TestContentionCoordinatorMatchesLocal shards the same study over an
// in-process worker fleet: the aggregated response must be byte-identical
// to a single plain daemon's, with cells demonstrably placed remotely.
func TestContentionCoordinatorMatchesLocal(t *testing.T) {
	pool := Options{Workers: 4, DefaultScale: 0.01}
	_, tsw := newTestService(t, pool)

	copts := pool
	copts.WorkerURLs = []string{tsw.URL}
	coordSvc, tsc := newTestService(t, copts)
	_, got := runToResult(t, tsc, contentionTestBody, 120*time.Second)

	st := mustStatsOf(coordSvc)
	if st.RemoteCells == 0 {
		t.Fatal("coordinator placed no contention cells remotely")
	}

	_, tsr := newTestService(t, pool)
	_, want := runToResult(t, tsr, contentionTestBody, 120*time.Second)
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded contention result differs from single daemon:\n%s\nvs\n%s", got, want)
	}
}

// TestContentionCoordinatorFallback starves the coordinator of workers:
// every cell must fall back in-process and the study still completes with
// the single-daemon bytes.
func TestContentionCoordinatorFallback(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	copts := Options{Workers: 2, WorkerURLs: []string{deadURL}, DefaultScale: 0.01}
	coordSvc, tsc := newTestService(t, copts)
	_, got := runToResult(t, tsc, contentionTestBody, 120*time.Second)

	st := mustStatsOf(coordSvc)
	if st.RemoteCells != 0 || st.FallbackCells != 4 {
		t.Fatalf("remote %d fallback %d, want all 4 cells local", st.RemoteCells, st.FallbackCells)
	}

	_, tsr := newTestService(t, Options{Workers: 2, DefaultScale: 0.01})
	_, want := runToResult(t, tsr, contentionTestBody, 120*time.Second)
	if !bytes.Equal(got, want) {
		t.Fatalf("fallback contention result differs from single daemon")
	}
}

// TestV4ContentionCanonicalisation pins the schema-v4 content address:
// defaulted and spelled-out studies share a key, distinct studies split,
// and pre-v4 kinds never mention the new fields — so every pinned v2/v3
// key survives (TestV2JobKeysPreserved covers the digests themselves).
func TestV4ContentionCanonicalisation(t *testing.T) {
	implicit := jobKey(JobRequest{Kind: "contention"}, canonicalTestScale)
	explicit := jobKey(JobRequest{
		Kind:       "contention",
		Mixes:      core.DefaultTenantMixes(),
		Schemes:    append([]string(nil), core.SchemeNames...),
		QueueDepth: 16,
		CacheBytes: 4 << 20,
		Seed:       42,
		Scale:      0.05,
	}, canonicalTestScale)
	if implicit != explicit {
		t.Errorf("defaulted and spelled-out contention studies split: %s vs %s", implicit, explicit)
	}

	// A stray single-run field is irrelevant to the study and must not
	// split the address.
	stray := jobKey(JobRequest{Kind: "contention", Trace: "ts0", Scheme: "IPU"}, canonicalTestScale)
	if stray != implicit {
		t.Error("stray run fields split the contention address")
	}

	// Different cache sizes are different experiments.
	other := jobKey(JobRequest{Kind: "contention", CacheBytes: 1 << 20}, canonicalTestScale)
	if other == implicit {
		t.Error("different cacheBytes share one address")
	}

	// Pre-v4 kinds canonicalise to JSON without the v4 fields.
	for _, kind := range []string{"run", "cell", "matrix", "sensitivity"} {
		b, err := json.Marshal(canonicalRequest(JobRequest{Kind: kind}, canonicalTestScale))
		if err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"mixes", "cacheBytes"} {
			if containsField(b, field) {
				t.Errorf("canonical %s JSON mentions %q: %s", kind, field, b)
			}
		}
	}
}

// TestContentionValidation rejects malformed studies and v4 fields on
// other kinds.
func TestContentionValidation(t *testing.T) {
	_, ts := newTestService(t, Options{Workers: 1, DefaultScale: 0.01})
	bad := []string{
		`{"kind":"run","mixes":[{"name":"m","tenants":[{"trace":"ts0"}]}]}`,
		`{"kind":"run","cacheBytes":1024}`,
		`{"kind":"contention","mixes":[{"name":"empty","tenants":[]}]}`,
		`{"kind":"contention","schemes":["NoSuchScheme"]}`,
		`{"kind":"contention","mixes":[{"name":"m","tenants":[{"trace":"nope"}]}]}`,
		`{"kind":"contention","queueDepth":-1}`,
		`{"kind":"contention","cacheBytes":-1}`,
	}
	for _, body := range bad {
		if resp, _ := postJob(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}
