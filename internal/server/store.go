package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store persists the job table under a data directory so a restarted
// daemon serves completed results without re-running them and re-enqueues
// work that was interrupted mid-flight:
//
//	<dir>/jobs/<id>.json      one lifecycle record per job
//	<dir>/results/<key>.json  result bytes, content-addressed by job key
//
// Every write is atomic — the file is written to a .tmp sibling and
// renamed into place — so a crash mid-write leaves either the previous
// record or the new one, never a torn file. Results are content-addressed
// by the canonical job key: concurrent jobs with the same key write
// identical bytes, so the last rename winning is harmless.
type Store struct {
	dir string
	// mu serialises writes; records are small, and one writer at a time
	// keeps tmp-file names from colliding.
	mu sync.Mutex
}

// OpenStore opens (creating if needed) a data directory.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"jobs", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("server: opening store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// jobRecord is the on-disk form of one job's lifecycle state. Result
// bytes live separately under results/, shared by every job with the
// same key.
type jobRecord struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	Kind      string     `json:"kind"`
	Request   JobRequest `json:"request"`
	State     JobState   `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Finished  time.Time  `json:"finished"`
	Error     string     `json:"error,omitempty"`
}

// writeAtomic writes b to path via a tmp sibling and rename.
func (st *Store) writeAtomic(path string, b []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PutJob persists one job lifecycle record.
func (st *Store) PutJob(rec jobRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return st.writeAtomic(filepath.Join(st.dir, "jobs", rec.ID+".json"), b)
}

// LoadJobs returns every persisted job record, sorted by ID (submission
// order — IDs are zero-padded sequence numbers). Torn or foreign files
// are skipped: recovery restores what it can rather than refusing to
// start.
func (st *Store) LoadJobs() ([]jobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var recs []jobRecord
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(st.dir, "jobs", e.Name()))
		if err != nil {
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(b, &rec); err != nil || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}

// PutResult persists result bytes under their content address.
func (st *Store) PutResult(key string, b []byte) error {
	return st.writeAtomic(filepath.Join(st.dir, "results", key+".json"), b)
}

// GetResult returns the persisted result bytes for a key.
func (st *Store) GetResult(key string) ([]byte, bool) {
	b, err := os.ReadFile(filepath.Join(st.dir, "results", key+".json"))
	if err != nil || len(b) == 0 {
		return nil, false
	}
	return b, true
}
