package server

import "sync"

// resultCache memoises completed job results by their content-addressed
// job key: a bounded in-memory LRU over the marshalled result bytes,
// layered over the persistent store when the server is durable. A memory
// hit serves the cached bytes at memory speed without touching the
// simulator; a memory miss falls through to the store and promotes the
// bytes back into memory. Entries are immutable — the simulator's
// determinism guarantee means a key's bytes never change — so there is
// no invalidation, only LRU eviction of the in-memory layer.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	clock   uint64
	entries map[string]*resultEntry
	store   *Store // nil for a memory-only server
}

type resultEntry struct {
	b       []byte
	lastUse uint64
}

func newResultCache(cap int, store *Store) *resultCache {
	return &resultCache{
		cap:     cap,
		entries: map[string]*resultEntry{},
		store:   store,
	}
}

// Get returns the cached result bytes for a key. Callers must not
// mutate the returned slice.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.lastUse = c.clock
		c.mu.Unlock()
		return e.b, true
	}
	c.mu.Unlock()
	if c.store == nil {
		return nil, false
	}
	b, ok := c.store.GetResult(key)
	if !ok {
		return nil, false
	}
	c.put(key, b, false) // promote; already persisted
	return b, true
}

// Put caches result bytes in memory and, for a durable server, persists
// them under their content address.
func (c *resultCache) Put(key string, b []byte) {
	c.put(key, b, true)
}

func (c *resultCache) put(key string, b []byte, persist bool) {
	if persist && c.store != nil {
		// Best-effort: a failed persist degrades durability, not
		// correctness — the in-memory layer still serves the key.
		c.store.PutResult(key, b)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.lastUse = c.clock
		return
	}
	c.entries[key] = &resultEntry{b: b, lastUse: c.clock}
	for len(c.entries) > c.cap {
		var victim string
		var oldest uint64
		first := true
		for k, e := range c.entries {
			if first || e.lastUse < oldest {
				victim, oldest, first = k, e.lastUse, false
			}
		}
		delete(c.entries, victim)
	}
}

// Len reports the in-memory entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
