package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"ipusim/internal/core"
	"ipusim/internal/trace"
)

// fetchResult GETs a finished job's result and returns its view plus the
// raw result bytes exactly as the handler rendered them — the unit of the
// byte-identity assertions.
func fetchResult(t *testing.T, ts *httptest.Server, id string) (JobView, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	var out struct {
		Job    JobView         `json:"job"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Job, out.Result
}

// runToResult submits a job over HTTP, waits for it to finish and returns
// its raw result bytes.
func runToResult(t *testing.T, ts *httptest.Server, body string, timeout time.Duration) (JobView, []byte) {
	t.Helper()
	resp, v := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	done := waitState(t, ts, v.ID, func(v JobView) bool { return v.State.Terminal() }, timeout)
	if done.State != StateDone {
		t.Fatalf("job %s: state %s (error %q), want done", v.ID, done.State, done.Error)
	}
	return done, fetchResultBytes(t, ts, v.ID)
}

func fetchResultBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	_, b := fetchResult(t, ts, id)
	return b
}

// mustStatsOf snapshots a server's counters.
func mustStatsOf(svc *Server) Stats { return svc.Stats() }

// TestCacheHitEndToEnd submits the same job twice: the first runs the
// simulator, the second must come back from the result cache — already
// done at submit time, marked cached, byte-identical result — without the
// run counter moving.
func TestCacheHitEndToEnd(t *testing.T) {
	svc, ts := newTestService(t, Options{Workers: 2})
	body := `{"kind":"run","scheme":"IPU","trace":"ts0","scale":0.02,"seed":7}`

	first, firstBytes := runToResult(t, ts, body, 30*time.Second)
	if first.Cached {
		t.Fatal("first submission marked cached")
	}
	if first.Key == "" {
		t.Fatal("job has no content-addressed key")
	}

	resp, second := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", resp.StatusCode)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("resubmission state %s cached %v, want done from cache", second.State, second.Cached)
	}
	if second.Key != first.Key {
		t.Fatalf("identical submissions got keys %s and %s", first.Key, second.Key)
	}
	secondBytes := fetchResultBytes(t, ts, second.ID)
	if !bytes.Equal(secondBytes, firstBytes) {
		t.Fatalf("cached result differs from original:\n%s\nvs\n%s", secondBytes, firstBytes)
	}

	st := mustStatsOf(svc)
	if st.Executed != 1 {
		t.Fatalf("executed = %d after a cache hit, want 1 (sim must not re-run)", st.Executed)
	}
	if st.CacheHits != 1 || st.Submitted != 2 || st.Done != 2 {
		t.Fatalf("stats = %+v, want 2 submitted, 2 done, 1 cache hit", st)
	}
}

// TestCanonicalKeyHitsCache asserts the canonical-ID fix: submissions that
// differ only in JSON key order, spelled-out defaults, or lifecycle fields
// (timeout) share a content address and therefore hit the cache.
func TestCanonicalKeyHitsCache(t *testing.T) {
	svc, ts := newTestService(t, Options{Workers: 2, DefaultScale: 0.02})

	explicit := `{"kind":"run","scheme":"IPU","trace":"ts0","scale":0.02,"seed":42,"timeout":"2m"}`
	first, firstBytes := runToResult(t, ts, explicit, 30*time.Second)

	// Same experiment, keys reordered, every default left implicit.
	implicit := `{"seed":42,"kind":"run"}`
	resp, second := postJob(t, ts, implicit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: HTTP %d", resp.StatusCode)
	}
	if second.Key != first.Key {
		t.Fatalf("semantically identical submissions got keys %s and %s", first.Key, second.Key)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("resubmission state %s cached %v, want a cache hit", second.State, second.Cached)
	}
	if got := fetchResultBytes(t, ts, second.ID); !bytes.Equal(got, firstBytes) {
		t.Fatalf("cached result differs from original")
	}
	if st := mustStatsOf(svc); st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 executed, 1 cache hit", st)
	}
}

// TestJobKeyCanonicalisation pins the key function itself: defaults
// explicit or implicit hash the same, and every output-affecting field
// separates keys.
func TestJobKeyCanonicalisation(t *testing.T) {
	const scale = 0.05
	implicit := jobKey(JobRequest{Kind: "matrix"}, scale)
	explicit := jobKey(JobRequest{
		Kind:        "matrix",
		Traces:      trace.ProfileNames(),
		Schemes:     append([]string(nil), core.SchemeNames...),
		PEBaselines: []int{0},
		Scale:       scale,
		Seed:        42,
		Timeout:     "3m", // lifecycle-only; must not affect the key
		Parallelism: 8,    // speed-only; results are bit-identical to serial
	}, scale)
	if implicit != explicit {
		t.Fatalf("defaulted matrix keys differ: %s vs %s", implicit, explicit)
	}
	distinct := []JobRequest{
		{Kind: "matrix", Seed: 43},
		{Kind: "matrix", Scale: 0.1},
		{Kind: "matrix", Schemes: []string{"IPU"}},
		{Kind: "run"},
		{Kind: "cell"},
		{Kind: "cell", PEBaseline: 3000},
		{Kind: "cell", Param: "cacheSlots", ParamValue: 2},
	}
	seen := map[string]int{implicit: -1}
	for i, req := range distinct {
		k := jobKey(req, scale)
		if prev, dup := seen[k]; dup {
			t.Errorf("requests %d and %d collide on key %s", i, prev, k)
		}
		seen[k] = i
	}
}

// TestRestartRecovery drives the durable-store loop end to end: a daemon
// completes one job and is stopped with more jobs mid-queue; a fresh
// daemon on the same data directory must serve the completed result
// byte-for-byte without re-running it and re-run the interrupted jobs to
// bit-identical output.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 1, QueueCap: 16, DataDir: dir, DefaultScale: 0.01}

	snapshot := func(svc *Server, id string) (JobView, []byte) {
		svc.mu.Lock()
		defer svc.mu.Unlock()
		j, ok := svc.jobs[id]
		if !ok {
			return JobView{}, nil
		}
		return j.viewLocked(), j.resultJSON
	}
	waitDone := func(svc *Server, id string) []byte {
		deadline := time.Now().Add(60 * time.Second)
		for {
			v, b := snapshot(svc, id)
			if v.State == StateDone {
				return b
			}
			if v.State.Terminal() {
				t.Fatalf("job %s: state %s (error %q), want done", id, v.State, v.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished (last %+v)", id, v)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	svc1 := New(opts)
	fast := JobRequest{Kind: "run", Scheme: "IPU", Trace: "ts0", Scale: 0.01, Seed: 5}
	jA, err := svc1.Submit(fast)
	if err != nil {
		t.Fatal(err)
	}
	bytesA := waitDone(svc1, jA.ID)

	// One slow job plus two queued behind it on the single worker.
	slow := JobRequest{Kind: "run", Scheme: "Baseline", Trace: "ts0", Scale: 0.2, Seed: 9}
	jB, err := svc1.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	var queuedIDs []string
	for seed := int64(21); seed <= 22; seed++ {
		j, err := svc1.Submit(JobRequest{Kind: "run", Scheme: "IPU", Trace: "wdev0", Scale: 0.01, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		queuedIDs = append(queuedIDs, j.ID)
	}
	// Stop once the slow job is demonstrably mid-replay.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, _ := snapshot(svc1, jB.ID)
		if v.State == StateRunning && v.Progress.Replayed > 0 {
			break
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("slow job not observed mid-replay (last %+v)", v)
		}
		time.Sleep(time.Millisecond)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	svc1.Shutdown(shutCtx) // drain cut short: in-flight work interrupted
	cancel()

	// A fresh daemon on the same directory recovers the table.
	svc2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc2.Shutdown(ctx)
	}()
	vA, bA := snapshot(svc2, jA.ID)
	if vA.State != StateDone || !vA.Cached {
		t.Fatalf("recovered job %s: state %s cached %v, want done from store", jA.ID, vA.State, vA.Cached)
	}
	if !bytes.Equal(bA, bytesA) {
		t.Fatalf("restored result differs from the original run")
	}

	// The interrupted jobs re-ran; the slow one must match a fresh
	// reference daemon bit for bit.
	reRun := waitDone(svc2, jB.ID)
	for _, id := range queuedIDs {
		waitDone(svc2, id)
	}
	if st := svc2.Stats(); st.Executed != 3 {
		t.Fatalf("restarted daemon executed %d jobs, want only the 3 interrupted ones", st.Executed)
	}

	ref := New(Options{Workers: 1, DefaultScale: 0.01})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		ref.Shutdown(ctx)
	}()
	jRef, err := ref.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(ref, jRef.ID)
	if !bytes.Equal(reRun, want) {
		t.Fatalf("re-run after restart diverged from a fresh daemon:\n%s\nvs\n%s", reRun, want)
	}

	// Resubmitting the completed job hits the store-backed cache.
	jA2, err := svc2.Submit(fast)
	if err != nil {
		t.Fatal(err)
	}
	vA2, bA2 := snapshot(svc2, jA2.ID)
	if vA2.State != StateDone || !vA2.Cached || !bytes.Equal(bA2, bytesA) {
		t.Fatalf("resubmission after restart not served from store (state %s cached %v)", vA2.State, vA2.Cached)
	}
	if st := svc2.Stats(); st.Executed != 3 || st.CacheHits != 1 {
		t.Fatalf("stats after resubmit = %+v, want executed 3, cacheHits 1", st)
	}
}

// TestCoordinatorSoakWorkerFailure extends the acceptance soak to the
// cluster, run under -race by `make serve-cluster-test`: a coordinator
// shards four concurrent matrix sweeps — 32 cell sub-jobs — over two
// in-process workers, one worker is killed mid-sweep, and every
// aggregated response must still match a single daemon byte for byte,
// with no goroutine leaks.
func TestCoordinatorSoakWorkerFailure(t *testing.T) {
	baseline := runtime.NumGoroutine()

	pool := Options{Workers: 4, QueueCap: 64, DefaultScale: 0.01}
	w1 := New(pool)
	ts1 := httptest.NewServer(w1.Handler())
	w2 := New(pool)
	ts2 := httptest.NewServer(w2.Handler())

	copts := pool
	copts.WorkerURLs = []string{ts1.URL, ts2.URL}
	coord := New(copts)
	tsc := httptest.NewServer(coord.Handler())

	// Four matrix sweeps over 2 traces x 4 schemes = 32 cells in flight.
	const sweeps = 4
	bodies := make([]string, sweeps)
	ids := make([]string, sweeps)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(
			`{"kind":"matrix","traces":["ts0","wdev0"],"schemes":["Baseline","MGA","IPU","IPU-AC"],"scale":0.02,"seed":%d}`,
			50+i)
		resp, v := postJob(t, tsc, bodies[i])
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("sweep %d: HTTP %d", i, resp.StatusCode)
		}
		ids[i] = v.ID
	}

	// Kill worker 2 once it has demonstrably executed sub-jobs.
	deadline := time.Now().Add(30 * time.Second)
	for w2.Stats().Executed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker 2 never received a cell")
		}
		time.Sleep(time.Millisecond)
	}
	ts2.Close()
	{
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		w2.Shutdown(ctx)
		cancel()
	}

	for _, id := range ids {
		v := waitState(t, tsc, id, func(v JobView) bool { return v.State.Terminal() }, 120*time.Second)
		if v.State != StateDone {
			t.Fatalf("sweep %s: state %s (error %q) after worker kill, want done", id, v.State, v.Error)
		}
	}

	var view ClusterView
	if code := getJSON(t, tsc, "/v1/cluster", &view); code != http.StatusOK {
		t.Fatalf("cluster view: HTTP %d", code)
	}
	if !view.Coordinator || view.Alive[ts2.URL] {
		t.Fatalf("cluster view = %+v, want dead worker 2", view)
	}
	if view.RemoteCells == 0 {
		t.Fatal("coordinator placed no cells remotely")
	}
	t.Logf("soak: %d cells remote, %d local fallback", view.RemoteCells, view.FallbackCells)

	// Bit-for-bit: every aggregated response equals a single plain daemon's.
	ref := New(pool)
	tsr := httptest.NewServer(ref.Handler())
	for i, id := range ids {
		got := fetchResultBytes(t, tsc, id)
		_, want := runToResult(t, tsr, bodies[i], 120*time.Second)
		if !bytes.Equal(got, want) {
			t.Fatalf("sweep %d: coordinator result differs from single daemon", i)
		}
	}

	// Tear down the whole cluster, then require every goroutine gone.
	tsr.Close()
	tsc.Close()
	ts1.Close()
	for _, svc := range []*Server{ref, coord, w1} {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		cancel()
	}
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCoordinatorFallbackAllWorkersDown starves the coordinator of every
// worker: the fleet is one already-dead URL, so each cell must fall back
// to in-process execution and the sweep still completes with the exact
// single-daemon bytes.
func TestCoordinatorFallbackAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	copts := Options{Workers: 2, WorkerURLs: []string{deadURL}, DefaultScale: 0.01}
	coordSvc, tsc := newTestService(t, copts)
	body := `{"kind":"matrix","traces":["ts0"],"schemes":["Baseline","IPU"],"scale":0.02,"seed":3}`
	_, got := runToResult(t, tsc, body, 60*time.Second)

	st := mustStatsOf(coordSvc)
	if st.RemoteCells != 0 || st.FallbackCells != 2 {
		t.Fatalf("remote %d fallback %d, want all 2 cells local", st.RemoteCells, st.FallbackCells)
	}

	_, tsr := newTestService(t, Options{Workers: 2, DefaultScale: 0.01})
	_, want := runToResult(t, tsr, body, 60*time.Second)
	if !bytes.Equal(got, want) {
		t.Fatalf("fallback result differs from single daemon:\n%s\nvs\n%s", got, want)
	}
}
