package server

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ring places keys on worker nodes by consistent hashing. Each node
// projects `replicas` virtual points onto a 64-bit circle; a key belongs
// to the node owning the first point clockwise of the key's hash.
// Placement is stable under membership change: adding or removing one
// node remaps only the keys adjacent to that node's points (~1/N of the
// keyspace) while every other key keeps its owner — which is what keeps
// worker-local result caches hot as the fleet changes.
//
// ring is not safe for concurrent use; the coordinator guards it.
type ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// defaultRingReplicas is the virtual-point count per node. 128 points
// keeps placement within a few percent of ideal for small fleets.
const defaultRingReplicas = 128

// newRing builds a ring over the given nodes.
func newRing(replicas int, nodes ...string) *ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	r := &ring{replicas: replicas, nodes: map[string]bool{}}
	for _, n := range nodes {
		r.add(n)
	}
	return r
}

// ringHash maps a string to its position on the circle.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// add inserts a node's virtual points. Adding a present node is a no-op.
func (r *ring) add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	buf := make([]byte, 0, len(node)+4)
	for i := 0; i < r.replicas; i++ {
		buf = append(buf[:0], node...)
		buf = append(buf, '#', byte(i), byte(i>>8), byte(i>>16))
		r.points = append(r.points, ringPoint{hash: ringHash(string(buf)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *ring) remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// lookup returns the node owning the key, or "" on an empty ring.
func (r *ring) lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].node
}

// size reports the live node count.
func (r *ring) size() int { return len(r.nodes) }
