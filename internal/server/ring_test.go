package server

import (
	"fmt"
	"testing"
)

// ringKeys returns n distinct synthetic job keys.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

// owners maps each key to its current ring owner.
func owners(r *ring, keys []string) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		m[k] = r.lookup(k)
	}
	return m
}

// TestRingBalance places 10k keys on a 4-worker ring and requires every
// worker's share to land within ±25% of the ideal 1/4 — the bound that
// keeps a sharded sweep from bottlenecking on one worker.
func TestRingBalance(t *testing.T) {
	workers := []string{"http://w0", "http://w1", "http://w2", "http://w3"}
	r := newRing(0, workers...)
	keys := ringKeys(10000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.lookup(k)]++
	}
	ideal := float64(len(keys)) / float64(len(workers))
	for _, w := range workers {
		n := counts[w]
		if f := float64(n); f < 0.75*ideal || f > 1.25*ideal {
			t.Errorf("worker %s owns %d keys, outside ±25%% of ideal %.0f", w, n, ideal)
		}
	}
	t.Logf("balance over %d keys: %v (ideal %.0f)", len(keys), counts, ideal)
}

// TestRingMembershipRemap asserts the consistent-hashing contract that
// keeps worker caches hot across membership changes: removing a worker
// remaps exactly the keys it owned (~1/N of the keyspace) and nothing
// else; adding it back restores the original placement; and a brand-new
// worker steals only ~1/(N+1) of the keys, all of them for itself.
func TestRingMembershipRemap(t *testing.T) {
	workers := []string{"http://w0", "http://w1", "http://w2", "http://w3"}
	r := newRing(0, workers...)
	keys := ringKeys(10000)
	before := owners(r, keys)

	// Remove one worker: its keys — and only its keys — remap.
	const victim = "http://w2"
	victimShare := 0
	for _, o := range before {
		if o == victim {
			victimShare++
		}
	}
	r.remove(victim)
	after := owners(r, keys)
	moved := 0
	for _, k := range keys {
		switch {
		case before[k] != victim:
			if after[k] != before[k] {
				t.Fatalf("key %s moved %s -> %s though %s was removed",
					k, before[k], after[k], victim)
			}
		default:
			if after[k] == victim {
				t.Fatalf("key %s still owned by removed worker", k)
			}
			moved++
		}
	}
	if moved != victimShare {
		t.Fatalf("remapped %d keys, want exactly the victim's %d", moved, victimShare)
	}
	ideal := float64(len(keys)) / float64(len(workers))
	if f := float64(moved); f < 0.75*ideal || f > 1.25*ideal {
		t.Errorf("removal remapped %d keys, outside ±25%% of 1/N = %.0f", moved, ideal)
	}

	// Re-adding the worker restores the exact original placement.
	r.add(victim)
	for k, o := range owners(r, keys) {
		if o != before[k] {
			t.Fatalf("key %s owned by %s after re-add, originally %s", k, o, before[k])
		}
	}

	// A new fifth worker takes ~1/(N+1) of the keys, all for itself.
	const fresh = "http://w4"
	r.add(fresh)
	stolen := 0
	for k, o := range owners(r, keys) {
		if o == before[k] {
			continue
		}
		if o != fresh {
			t.Fatalf("key %s moved %s -> %s when only %s joined", k, before[k], o, fresh)
		}
		stolen++
	}
	ideal = float64(len(keys)) / 5
	if f := float64(stolen); f < 0.75*ideal || f > 1.25*ideal {
		t.Errorf("join remapped %d keys, outside ±25%% of 1/(N+1) = %.0f", stolen, ideal)
	}
}

// TestRingEdgeCases pins the empty-ring and idempotent-membership
// behaviour the coordinator relies on when the whole fleet dies.
func TestRingEdgeCases(t *testing.T) {
	r := newRing(0)
	if got := r.lookup("anything"); got != "" {
		t.Fatalf("empty ring lookup = %q, want \"\"", got)
	}
	r.add("http://w0")
	r.add("http://w0") // duplicate add is a no-op
	if r.size() != 1 || len(r.points) != defaultRingReplicas {
		t.Fatalf("size %d points %d after duplicate add", r.size(), len(r.points))
	}
	if got := r.lookup("anything"); got != "http://w0" {
		t.Fatalf("single-node lookup = %q", got)
	}
	r.remove("http://missing") // absent remove is a no-op
	r.remove("http://w0")
	if r.size() != 0 || r.lookup("anything") != "" {
		t.Fatalf("ring not empty after removing last node")
	}
}
