package server

import (
	"context"
	"fmt"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/core"
	"ipusim/internal/flash"
	"ipusim/internal/trace"
	"ipusim/internal/workload"
)

// JobState is one point of the job lifecycle. Transitions are strictly
// queued -> running -> {done, failed, cancelled}, except that a queued job
// may move straight to cancelled.
type JobState string

const (
	// StateQueued means the job is waiting in the bounded queue.
	StateQueued JobState = "queued"
	// StateRunning means a worker is replaying the job.
	StateRunning JobState = "running"
	// StateDone means the job finished and its result is available.
	StateDone JobState = "done"
	// StateFailed means the job stopped on an error (or panic).
	StateFailed JobState = "failed"
	// StateCancelled means the job was cancelled — by request, by its
	// timeout, or by shutdown — before completing.
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobRequest is the POST /v1/jobs submission body. Kind selects the
// experiment; the remaining fields parameterise it, with zero values
// falling back to the evaluation defaults.
type JobRequest struct {
	// Kind is "run" (one trace through one scheme), "matrix" (a
	// traces x schemes x P/E sweep), "sensitivity" (a device-parameter
	// sweep) or "contention" (the multi-tenant contention study).
	Kind string `json:"kind"`

	// Run parameters.
	Scheme string `json:"scheme,omitempty"`
	Trace  string `json:"trace,omitempty"`
	// QueueDepth > 0 replays closed-loop at that depth instead of
	// open-loop at trace timestamps.
	QueueDepth int `json:"queueDepth,omitempty"`
	PEBaseline int `json:"peBaseline,omitempty"`

	// Matrix / sensitivity parameters.
	Traces      []string `json:"traces,omitempty"`
	Schemes     []string `json:"schemes,omitempty"`
	PEBaselines []int    `json:"peBaselines,omitempty"`
	// Param names the swept device parameter (core.SensitivityParams key).
	Param string `json:"param,omitempty"`
	// ParamValue is the swept value of Param for "cell" jobs: one
	// sensitivity-point cell fixes the parameter at this value.
	ParamValue float64 `json:"paramValue,omitempty"`

	// Shared trace-synthesis parameters.
	Scale float64 `json:"scale,omitempty"`
	Seed  int64   `json:"seed,omitempty"`

	// Multi-tenant closed-loop parameters (request schema v3). Tenants
	// replays K tenant streams interleaved onto one device instead of the
	// single Trace; WriteCache puts a DRAM write buffer in front of the
	// device. Both require kind "run" with queueDepth > 0, and both carry
	// omitempty so v2 submissions (which cannot set them) canonicalise —
	// and therefore content-address — exactly as before.
	Tenants    []workload.TenantSpec `json:"tenants,omitempty"`
	WriteCache *cache.Config         `json:"writeCache,omitempty"`

	// Contention-study parameters (request schema v4). Kind "contention"
	// replays every (mix, buffer arm, scheme) cell of the multi-tenant
	// contention study: Mixes lists the tenant compositions (empty means
	// the default evaluation mixes), Schemes the FTLs to rank, QueueDepth
	// the shared closed-loop depth, and CacheBytes the buffered arm's
	// write-cache capacity. Both fields carry omitempty, so v2/v3
	// submissions canonicalise — and content-address — exactly as before.
	Mixes      []core.TenantMix `json:"mixes,omitempty"`
	CacheBytes int64            `json:"cacheBytes,omitempty"`

	// Parallelism sets per-run read-path evaluation workers (0/1 =
	// serial). It never changes results — metrics are bit-identical either
	// way — so it is excluded from the job's content address.
	Parallelism int `json:"parallelism,omitempty"`

	// Timeout caps the job's wall-clock run time (Go duration string,
	// e.g. "2m"). Empty means the server default.
	Timeout string `json:"timeout,omitempty"`
}

// jobFunc executes one validated job under ctx, reporting progress through
// report, and returns the JSON-marshallable result.
type jobFunc func(ctx context.Context, report core.ProgressFunc) (any, error)

// Job is one submitted experiment and its lifecycle state. All mutable
// fields are guarded by the owning Server's mu.
type Job struct {
	ID string
	// Key is the job's content address: the hash of the canonicalised
	// request. Identical submissions share a key, which is what the result
	// cache, the persistent store and the coordinator's ring key on.
	Key string
	// Cached marks a job whose result was served from the result cache (or
	// reloaded from the store by a restarted daemon) without running the
	// simulator.
	Cached    bool
	Kind      string
	Request   JobRequest
	State     JobState
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Progress  core.Progress
	Error     string

	// resultJSON is the marshalled result — the bytes the cache and store
	// hold, served verbatim so repeat submissions are byte-identical.
	resultJSON []byte
	run        jobFunc
	timeout    time.Duration
	cancel     context.CancelFunc
	// watch is closed and replaced on every state/progress update, waking
	// stream subscribers.
	watch chan struct{}
}

// JobView is the JSON shape of a job's status.
type JobView struct {
	ID        string        `json:"id"`
	Key       string        `json:"key,omitempty"`
	Kind      string        `json:"kind"`
	State     JobState      `json:"state"`
	Cached    bool          `json:"cached,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Progress  core.Progress `json:"progress"`
	Frac      float64       `json:"frac"`
	Error     string        `json:"error,omitempty"`
}

// viewLocked snapshots the job for JSON rendering. Callers hold the
// server's mu.
func (j *Job) viewLocked() JobView {
	v := JobView{
		ID:        j.ID,
		Key:       j.Key,
		Kind:      j.Kind,
		State:     j.State,
		Cached:    j.Cached,
		Submitted: j.Submitted,
		Progress:  j.Progress,
		Frac:      j.Progress.Frac(),
		Error:     j.Error,
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	return v
}

// compile validates the request and builds its executable jobFunc.
// Validation happens at submit time so a bad request fails with 400
// instead of occupying a queue slot and failing later.
func compile(req JobRequest, defaultScale float64) (jobFunc, error) {
	if req.Scale == 0 {
		req.Scale = defaultScale
	}
	if req.Scale <= 0 || req.Scale > 1 {
		return nil, fmt.Errorf("scale %v out of (0, 1]", req.Scale)
	}
	if req.Seed == 0 {
		req.Seed = 42
	}
	if req.Parallelism < 0 {
		return nil, fmt.Errorf("parallelism %d must be >= 0", req.Parallelism)
	}
	if req.Kind != "run" && (len(req.Tenants) > 0 || req.WriteCache != nil) {
		return nil, fmt.Errorf("tenants and writeCache apply only to run jobs, not %q", req.Kind)
	}
	if req.Kind != "contention" && (len(req.Mixes) > 0 || req.CacheBytes != 0) {
		return nil, fmt.Errorf("mixes and cacheBytes apply only to contention jobs, not %q", req.Kind)
	}
	switch req.Kind {
	case "run":
		return compileRun(req)
	case "cell":
		return compileCell(req)
	case "matrix":
		return compileMatrix(req)
	case "sensitivity":
		return compileSensitivity(req)
	case "contention":
		return compileContention(req)
	default:
		return nil, fmt.Errorf("unknown kind %q (want run, cell, matrix, sensitivity or contention)", req.Kind)
	}
}

// knownScheme reports whether name is in the scheme registry.
func knownScheme(name string) bool {
	for _, s := range core.Schemes() {
		if s == name {
			return true
		}
	}
	return false
}

func validateSchemes(names []string) error {
	for _, s := range names {
		if !knownScheme(s) {
			return fmt.Errorf("unknown scheme %q (registered: %v)", s, core.Schemes())
		}
	}
	return nil
}

func validateTraces(names []string) error {
	for _, tr := range names {
		if _, ok := trace.Profiles[tr]; !ok {
			return fmt.Errorf("unknown trace %q (have %v)", tr, trace.ProfileNames())
		}
	}
	return nil
}

func compileRun(req JobRequest) (jobFunc, error) {
	if req.Scheme == "" {
		req.Scheme = "IPU"
	}
	multiTenant := len(req.Tenants) > 0
	if multiTenant {
		if req.Trace != "" {
			return nil, fmt.Errorf("trace and tenants are mutually exclusive (per-tenant traces go in tenants[].trace)")
		}
	} else if req.Trace == "" {
		req.Trace = "ts0"
	}
	if err := validateSchemes([]string{req.Scheme}); err != nil {
		return nil, err
	}
	if req.QueueDepth < 0 {
		return nil, fmt.Errorf("queueDepth %d must be >= 0", req.QueueDepth)
	}
	// The v3 extensions ride on the closed-loop engine only: an open-loop
	// replay has no issue gate for the buffer's backpressure or the
	// tenants' QoS shares to act on.
	if (multiTenant || req.WriteCache != nil) && req.QueueDepth <= 0 {
		return nil, fmt.Errorf("tenants and writeCache require a closed-loop run (queueDepth > 0)")
	}
	if multiTenant {
		tenants := workload.NormalizeTenants(req.Tenants, core.DefaultTenantTrace, req.Seed, req.Scale)
		if err := workload.ValidateTenants(tenants); err != nil {
			return nil, err
		}
		for _, t := range tenants {
			if err := validateTraces([]string{t.Trace}); err != nil {
				return nil, err
			}
		}
	} else if err := validateTraces([]string{req.Trace}); err != nil {
		return nil, err
	}
	if req.WriteCache != nil && req.WriteCache.CapacityBytes > 0 {
		if err := req.WriteCache.Validate(); err != nil {
			return nil, err
		}
	}
	return func(ctx context.Context, report core.ProgressFunc) (any, error) {
		cfg := core.DefaultConfig()
		cfg.Scheme = req.Scheme
		cfg.Parallelism = req.Parallelism
		if req.PEBaseline > 0 {
			cfg.Flash.PEBaseline = req.PEBaseline
		}
		sim, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		sim.OnProgress(0, report)
		var res *core.Result
		if req.QueueDepth > 0 {
			spec := core.ClosedLoopSpec{
				Depth:      req.QueueDepth,
				Tenants:    req.Tenants,
				WriteCache: req.WriteCache,
				Seed:       req.Seed,
				Scale:      req.Scale,
			}
			if !multiTenant {
				// The bounded trace cache shares one immutable instance
				// across concurrent jobs replaying the same workload.
				spec.Trace, err = core.SyntheticTrace(req.Trace, req.Seed, req.Scale)
				if err != nil {
					return nil, err
				}
			}
			res, err = sim.RunClosedLoopSpec(ctx, spec)
		} else {
			var tr *trace.Trace
			tr, err = core.SyntheticTrace(req.Trace, req.Seed, req.Scale)
			if err != nil {
				return nil, err
			}
			res, err = sim.RunContext(ctx, tr)
		}
		if err != nil {
			// A cancelled replay stopped between requests, so the device
			// is consistent and can rejoin the snapshot cache's free pool.
			if ctx.Err() != nil {
				sim.Release()
			}
			return nil, err
		}
		sim.Release()
		return res, nil
	}, nil
}

// compileCell builds one sweep cell: a single (trace, scheme, P/E) run,
// optionally at a sensitivity point (param fixed at a value). Cells are
// the sub-jobs a coordinator places on workers; their results are
// bit-identical to the corresponding element of the full sweep.
func compileCell(req JobRequest) (jobFunc, error) {
	if req.Scheme == "" {
		req.Scheme = "IPU"
	}
	if req.Trace == "" {
		req.Trace = "ts0"
	}
	if err := validateSchemes([]string{req.Scheme}); err != nil {
		return nil, err
	}
	if err := validateTraces([]string{req.Trace}); err != nil {
		return nil, err
	}
	if req.QueueDepth != 0 {
		return nil, fmt.Errorf("cell jobs are open-loop (queueDepth %d not supported)", req.QueueDepth)
	}
	if req.PEBaseline < 0 {
		return nil, fmt.Errorf("peBaseline %d must be >= 0", req.PEBaseline)
	}
	var fc *flash.Config
	if req.Param != "" {
		// Reconstruct the sensitivity point's flash configuration from
		// (param, value) — exactly what the coordinator's sweep point uses.
		cfg, err := core.SensitivityCellConfig(req.Param, req.ParamValue)
		if err != nil {
			return nil, err
		}
		fc = &cfg
	}
	return func(ctx context.Context, report core.ProgressFunc) (any, error) {
		spec := core.MatrixSpec{
			Traces:      []string{req.Trace},
			Schemes:     []string{req.Scheme},
			Scale:       req.Scale,
			Seed:        req.Seed,
			Flash:       fc,
			Parallelism: req.Parallelism,
			OnProgress:  report,
		}
		cell := core.MatrixCell{Trace: req.Trace, Scheme: req.Scheme, PE: req.PEBaseline}
		return core.RunCellContext(ctx, spec, cell)
	}, nil
}

func compileMatrix(req JobRequest) (jobFunc, error) {
	if err := validateSchemes(req.Schemes); err != nil {
		return nil, err
	}
	if err := validateTraces(req.Traces); err != nil {
		return nil, err
	}
	return func(ctx context.Context, report core.ProgressFunc) (any, error) {
		spec := core.MatrixSpec{
			Traces:      req.Traces,
			Schemes:     req.Schemes,
			PEBaselines: req.PEBaselines,
			Scale:       req.Scale,
			Seed:        req.Seed,
			Parallelism: req.Parallelism,
			OnProgress:  report,
		}
		return core.RunMatrixContext(ctx, spec)
	}, nil
}

// validateMixes checks every contention mix: non-empty, valid tenant
// specs, known per-tenant traces.
func validateMixes(mixes []core.TenantMix, seed int64, scale float64) error {
	for _, mix := range mixes {
		if len(mix.Tenants) == 0 {
			return fmt.Errorf("contention mix %q is empty", mix.Name)
		}
		tenants := workload.NormalizeTenants(mix.Tenants, core.DefaultTenantTrace, seed, scale)
		if err := workload.ValidateTenants(tenants); err != nil {
			return err
		}
		for _, t := range tenants {
			if err := validateTraces([]string{t.Trace}); err != nil {
				return err
			}
		}
	}
	return nil
}

// compileContention builds the multi-tenant contention study: every
// (mix, buffer arm, scheme) cell replayed closed-loop, rows in the
// study's deterministic enumeration order.
func compileContention(req JobRequest) (jobFunc, error) {
	if err := validateSchemes(req.Schemes); err != nil {
		return nil, err
	}
	if err := validateMixes(req.Mixes, req.Seed, req.Scale); err != nil {
		return nil, err
	}
	if req.QueueDepth < 0 {
		return nil, fmt.Errorf("queueDepth %d must be >= 0", req.QueueDepth)
	}
	if req.CacheBytes < 0 {
		return nil, fmt.Errorf("cacheBytes %d must be >= 0", req.CacheBytes)
	}
	return func(ctx context.Context, report core.ProgressFunc) (any, error) {
		spec := core.TenantContentionSpec{
			Mixes:       req.Mixes,
			Schemes:     req.Schemes,
			Depth:       req.QueueDepth,
			CacheBytes:  req.CacheBytes,
			Seed:        req.Seed,
			Scale:       req.Scale,
			Parallelism: req.Parallelism,
			OnProgress:  report,
		}
		return core.RunTenantContentionContext(ctx, spec)
	}, nil
}

func compileSensitivity(req JobRequest) (jobFunc, error) {
	if _, ok := core.SensitivityParams[req.Param]; !ok {
		params := make([]string, 0, len(core.SensitivityParams))
		for p := range core.SensitivityParams {
			params = append(params, p)
		}
		return nil, fmt.Errorf("unknown sensitivity param %q (have %v)", req.Param, params)
	}
	if err := validateSchemes(req.Schemes); err != nil {
		return nil, err
	}
	if err := validateTraces(req.Traces); err != nil {
		return nil, err
	}
	return func(ctx context.Context, report core.ProgressFunc) (any, error) {
		spec := core.MatrixSpec{
			Traces:      req.Traces,
			Schemes:     req.Schemes,
			Scale:       req.Scale,
			Seed:        req.Seed,
			Parallelism: req.Parallelism,
			OnProgress:  report,
		}
		return core.RunSensitivityContext(ctx, req.Param, spec)
	}, nil
}
