package workload

import (
	"reflect"
	"testing"
)

// fakeSource is a deterministic RecordSource for schedule tests.
type fakeSource struct {
	times []int64
	write []bool
	offs  []int64
	sizes []int
}

func (f *fakeSource) Len() int { return len(f.times) }
func (f *fakeSource) Record(i int) (int64, bool, int64, int) {
	return f.times[i], f.write[i], f.offs[i], f.sizes[i]
}

func seqSource(n int, stepNS int64, size int) *fakeSource {
	f := &fakeSource{}
	for i := 0; i < n; i++ {
		f.times = append(f.times, int64(i)*stepNS)
		f.write = append(f.write, true)
		f.offs = append(f.offs, int64(i)*int64(size))
		f.sizes = append(f.sizes, size)
	}
	return f
}

func TestNormalizeTenants(t *testing.T) {
	specs := NormalizeTenants([]TenantSpec{
		{},
		{Name: "vip", Trace: "wdev0", Seed: 7, Scale: 0.5, Weight: 3},
	}, "ts0", 42, 0.05)
	want := []TenantSpec{
		{Name: "t0", Trace: "ts0", Seed: 42 + tenantSeedStride, Scale: 0.05, Weight: 1},
		{Name: "vip", Trace: "wdev0", Seed: 7, Scale: 0.5, Weight: 3},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Errorf("normalised:\n got %+v\nwant %+v", specs, want)
	}
	// Normalisation is idempotent: canonical forms must be stable.
	again := NormalizeTenants(specs, "ts0", 42, 0.05)
	if !reflect.DeepEqual(again, specs) {
		t.Errorf("not idempotent:\n got %+v\nwant %+v", again, specs)
	}
	if err := ValidateTenants(specs); err != nil {
		t.Errorf("normalised specs invalid: %v", err)
	}
}

func TestValidateTenantsRejects(t *testing.T) {
	bad := []TenantSpec{
		{Scale: 2, Weight: 1},
		{Scale: 0.5, Weight: -1},
		{Scale: 0.5, Weight: 1, DiurnalAmplitude: 1.5, DiurnalPeriodNS: 100},
		{Scale: 0.5, Weight: 1, DiurnalAmplitude: 0.5}, // amplitude without period
		{Scale: 0.5, Weight: 1, BurstLen: 0.5},
		{Scale: 0.5, Weight: 1, BurstSpacingNS: -3},
	}
	for i, s := range bad {
		if err := ValidateTenants([]TenantSpec{s}); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestBuildScheduleInterleavesAndPartitions(t *testing.T) {
	specs := NormalizeTenants([]TenantSpec{{}, {}}, "ts0", 1, 1)
	a := seqSource(50, 1000, 4096)
	b := seqSource(70, 700, 4096)
	const logical = 1 << 20
	sch, err := BuildSchedule(specs, []RecordSource{a, b}, logical)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Len() != 120 {
		t.Fatalf("scheduled %d requests, want 120", sch.Len())
	}
	if sch.Tenants[0].Requests != 50 || sch.Tenants[1].Requests != 70 {
		t.Fatalf("tenant request counts %+v", sch.Tenants)
	}

	// Arrival order is non-decreasing and both tenants appear.
	span := int64(logical/2) / (16 * 1024) * (16 * 1024)
	seen := map[int32]int{}
	var prev int64 = -1
	for i := 0; i < sch.Len(); i++ {
		r := sch.At(i)
		if r.Time < prev {
			t.Fatalf("request %d out of order: %d < %d", i, r.Time, prev)
		}
		prev = r.Time
		seen[r.Tenant]++
		base := int64(r.Tenant) * span
		if r.Offset < base || r.Offset+int64(r.Size) > base+span {
			t.Fatalf("request %d of tenant %d escapes its partition: off=%d size=%d span=[%d,%d)",
				i, r.Tenant, r.Offset, r.Size, base, base+span)
		}
	}
	if seen[0] != 50 || seen[1] != 70 {
		t.Fatalf("per-tenant counts %v", seen)
	}

	// Determinism: building the same schedule twice is DeepEqual.
	sch2, err := BuildSchedule(specs, []RecordSource{seqSource(50, 1000, 4096), seqSource(70, 700, 4096)}, logical)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sch, sch2) {
		t.Fatal("schedule not deterministic")
	}
}

func TestBuildScheduleRejects(t *testing.T) {
	specs := NormalizeTenants([]TenantSpec{{}}, "ts0", 1, 1)
	if _, err := BuildSchedule(nil, nil, 1<<20); err == nil {
		t.Error("empty tenant list accepted")
	}
	if _, err := BuildSchedule(specs, nil, 1<<20); err == nil {
		t.Error("spec/source length mismatch accepted")
	}
	if _, err := BuildSchedule(specs, []RecordSource{seqSource(1, 1, 4096)}, 1024); err == nil {
		t.Error("logical space smaller than one frame accepted")
	}
}

func TestBurstRetimingPreservesCountAndOrder(t *testing.T) {
	specs := NormalizeTenants([]TenantSpec{{BurstLen: 16, BurstSpacingNS: 1000}}, "ts0", 9, 1)
	src := seqSource(500, 100_000, 4096)
	sch, err := BuildSchedule(specs, []RecordSource{src}, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Len() != 500 {
		t.Fatalf("len = %d", sch.Len())
	}
	var prev int64 = -1
	short := 0
	for i := 0; i < sch.Len(); i++ {
		r := sch.At(i)
		if r.Time < prev {
			t.Fatalf("retimed request %d out of order", i)
		}
		if i > 0 && r.Time-prev <= 1000 {
			short++
		}
		prev = r.Time
	}
	// A bursty stream has many near-spacing gaps; the original uniform
	// stream (100us apart) has none.
	if short < 100 {
		t.Errorf("only %d intra-burst gaps in 500 requests; retiming had no effect", short)
	}
}

func TestDiurnalWarpMonotoneAndPhased(t *testing.T) {
	const period = int64(1_000_000_000)
	var prevA, prevB int64 = -1, -1
	diverged := false
	for ts := int64(0); ts < 3*period; ts += period / 64 {
		a := diurnalWarp(ts, period, 0.8, 0)
		b := diurnalWarp(ts, period, 0.8, period/2)
		if a < prevA || b < prevB {
			t.Fatalf("warp not monotone at t=%d: a=%d (prev %d) b=%d (prev %d)", ts, a, prevA, b, prevB)
		}
		prevA, prevB = a, b
		if a != b {
			diverged = true
		}
	}
	if !diverged {
		t.Error("phase offset had no effect on the warp")
	}
	if diurnalWarp(12345, 0, 0.5, 0) != 12345 {
		t.Error("zero period must be the identity")
	}
	if diurnalWarp(12345, period, 0, 0) != 12345 {
		t.Error("zero amplitude must be the identity")
	}
}

func TestDepthShares(t *testing.T) {
	cases := []struct {
		depth   int
		weights []float64
		want    []int
	}{
		{32, []float64{1, 1}, []int{16, 16}},
		{32, []float64{3, 1}, []int{24, 8}},
		{8, []float64{1, 1, 1, 1}, []int{2, 2, 2, 2}},
		// Everyone gets at least one slot, even past the depth.
		{2, []float64{1, 1, 1}, []int{1, 1, 1}},
		{10, []float64{9, 1}, []int{9, 1}},
	}
	for _, tc := range cases {
		if got := DepthShares(tc.depth, tc.weights); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("DepthShares(%d, %v) = %v, want %v", tc.depth, tc.weights, got, tc.want)
		}
	}
}

func TestWeightedThroughputs(t *testing.T) {
	// 100 and 300 requests in 1 simulated second with weights 1 and 3:
	// weighted throughputs are equal — perfectly fair.
	xs := WeightedThroughputs([]int{100, 300}, []float64{1, 3}, 1_000_000_000)
	if xs[0] != xs[1] {
		t.Errorf("weighted throughputs %v, want equal", xs)
	}
	if xs[0] != 100 {
		t.Errorf("throughput %v, want 100 rps", xs[0])
	}
	// Zero makespan must not divide by zero.
	if out := WeightedThroughputs([]int{5}, []float64{1}, 0); out[0] <= 0 {
		t.Errorf("zero-makespan throughput %v", out)
	}
}
