// Package workload provides the deterministic stochastic building blocks of
// the synthetic trace generators: request-size sampling with the paper's
// Table 1 bucket distribution, hot-extent pools with Zipf popularity, and
// Poisson arrival processes.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// KB is one kibibyte in bytes.
const KB = 1024

// SizeDist is the paper's Table 1 request-size bucket distribution:
// fractions of requests in (0,4K], (4K,8K] and (8K, inf).
type SizeDist struct {
	Small, Medium, Large float64
}

// Validate checks the distribution sums to one. A tolerance of half a
// percent absorbs published tables whose rounded percentages do not sum to
// exactly 100 (the paper's wdev0 row sums to 100.1%).
func (d SizeDist) Validate() error {
	sum := d.Small + d.Medium + d.Large
	if d.Small < 0 || d.Medium < 0 || d.Large < 0 {
		return errors.New("workload: negative bucket fraction")
	}
	if sum < 0.995 || sum > 1.005 {
		return fmt.Errorf("workload: bucket fractions sum to %.4f, want 1", sum)
	}
	return nil
}

// SizeSampler draws request sizes (bytes, multiples of 4 KiB) following a
// SizeDist, with the large bucket shaped so the overall mean matches a
// target average request size.
type SizeSampler struct {
	dist      SizeDist
	largeMean float64 // mean of the large bucket in KB
}

// largeBucketMin/Max bound large-bucket samples (in KB).
const (
	largeBucketMin = 12
	largeBucketMax = 256
)

// NewSizeSampler builds a sampler whose expected size is avgKB.
// The small bucket is 4 KiB, the medium bucket 8 KiB, and the large bucket
// is an exponential with mean chosen to hit avgKB overall.
func NewSizeSampler(dist SizeDist, avgKB float64) (*SizeSampler, error) {
	if err := dist.Validate(); err != nil {
		return nil, err
	}
	if avgKB <= 0 {
		return nil, fmt.Errorf("workload: avgKB %.2f must be positive", avgKB)
	}
	s := &SizeSampler{dist: dist}
	if dist.Large > 0 {
		s.largeMean = (avgKB - 4*dist.Small - 8*dist.Medium) / dist.Large
		if s.largeMean < largeBucketMin {
			s.largeMean = largeBucketMin
		}
		if s.largeMean > largeBucketMax {
			s.largeMean = largeBucketMax
		}
	}
	return s, nil
}

// LargeMeanKB returns the fitted mean of the large bucket in KB.
func (s *SizeSampler) LargeMeanKB() float64 { return s.largeMean }

// Sample draws one request size in bytes (a positive multiple of 4 KiB).
func (s *SizeSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < s.dist.Small:
		return 4 * KB
	case u < s.dist.Small+s.dist.Medium:
		return 8 * KB
	default:
		// Exponential above the bucket floor, quantised to 4 KiB.
		kb := float64(largeBucketMin) + rng.ExpFloat64()*(s.largeMean-largeBucketMin)
		if kb > largeBucketMax {
			kb = largeBucketMax
		}
		q := (int(kb) + 3) / 4 * 4
		if q < largeBucketMin {
			q = largeBucketMin
		}
		return q * KB
	}
}

// Extent is a fixed address range repeatedly rewritten by hot traffic.
type Extent struct {
	Offset int64 // bytes
	Size   int   // bytes
}

// ExtentPool is a set of hot extents with Zipf-skewed popularity: a few
// extents absorb most of the hot traffic, as real update workloads do.
type ExtentPool struct {
	extents []Extent
	zipf    *rand.Zipf
}

// zipfShift flattens the head of the popularity distribution: with
// P(k) proportional to (zipfShift+k)^-s, the most popular extent takes a
// few percent of the traffic rather than dominating it, which keeps the
// request-weighted size distribution close to the extent-weighted one.
const zipfShift = 16

// NewExtentPool lays out n non-overlapping extents starting at base,
// sampling each extent's size once from sizes. The Zipf skew parameter
// s > 1 shapes popularity (s near 1 = mild skew).
func NewExtentPool(rng *rand.Rand, n int, base int64, sizes *SizeSampler, s float64) (*ExtentPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: pool size %d must be positive", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf s=%.2f must exceed 1", s)
	}
	p := &ExtentPool{extents: make([]Extent, n)}
	off := base
	for i := range p.extents {
		size := sizes.Sample(rng)
		p.extents[i] = Extent{Offset: off, Size: size}
		off += int64(size)
	}
	p.zipf = rand.NewZipf(rng, s, zipfShift, uint64(n-1))
	if p.zipf == nil {
		return nil, errors.New("workload: zipf construction failed")
	}
	return p, nil
}

// Pick draws one extent with Zipf popularity.
func (p *ExtentPool) Pick() Extent { return p.extents[p.zipf.Uint64()] }

// Len returns the number of extents.
func (p *ExtentPool) Len() int { return len(p.extents) }

// End returns the first byte after the pool's address range.
func (p *ExtentPool) End() int64 {
	last := p.extents[len(p.extents)-1]
	return last.Offset + int64(last.Size)
}

// Arrivals generates request arrival timestamps. With BurstLen <= 1 it is
// a Poisson process: exponential inter-arrival times with a fixed mean.
// With BurstLen > 1 it is an on/off burst process — geometrically sized
// bursts of closely spaced requests separated by idle gaps — preserving
// the configured mean rate. Enterprise block traces (MSR, VDI) are highly
// bursty, and burstiness is what makes SLC-cache capacity matter: bursts
// must be absorbed faster than garbage collection can replenish space.
type Arrivals struct {
	rng     *rand.Rand
	mean    float64 // nanoseconds, long-run average inter-arrival
	burstP  float64 // per-request probability of ending the burst
	spacing int64   // intra-burst inter-arrival, nanoseconds
	gapMean float64 // mean idle gap between bursts, nanoseconds
	now     int64
}

// NewArrivals creates a Poisson process starting at time zero.
func NewArrivals(rng *rand.Rand, mean time.Duration) (*Arrivals, error) {
	return NewBurstyArrivals(rng, mean, 1, 0)
}

// NewBurstyArrivals creates an on/off process: bursts of geometrically
// distributed length (mean burstLen) with spacing between requests inside
// a burst, and exponential idle gaps sized so the long-run mean
// inter-arrival equals mean. burstLen <= 1 degenerates to Poisson.
func NewBurstyArrivals(rng *rand.Rand, mean time.Duration, burstLen float64, spacing time.Duration) (*Arrivals, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("workload: mean inter-arrival %v must be positive", mean)
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("workload: burst length %.2f must be >= 1", burstLen)
	}
	if spacing < 0 || float64(spacing) >= float64(mean) {
		return nil, fmt.Errorf("workload: burst spacing %v must be in [0, mean)", spacing)
	}
	a := &Arrivals{rng: rng, mean: float64(mean)}
	if burstLen > 1 {
		a.burstP = 1 / burstLen
		a.spacing = int64(spacing)
		// Each burst contributes (burstLen-1) spacings and one gap; the
		// gap absorbs the rest of the burst's time budget.
		a.gapMean = burstLen*float64(mean) - (burstLen-1)*float64(spacing)
	}
	return a, nil
}

// Next returns the next arrival timestamp in nanoseconds.
func (a *Arrivals) Next() int64 {
	switch {
	case a.burstP == 0:
		a.now += int64(a.rng.ExpFloat64() * a.mean)
	case a.rng.Float64() < a.burstP:
		a.now += int64(a.rng.ExpFloat64() * a.gapMean)
	default:
		a.now += a.spacing
	}
	return a.now
}
