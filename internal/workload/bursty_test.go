package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestBurstyArrivalsMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, err := NewBurstyArrivals(rng, 200*time.Microsecond, 128, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var last int64
	for i := 0; i < n; i++ {
		last = a.Next()
	}
	meanUS := float64(last) / n / 1000
	if math.Abs(meanUS-200) > 20 {
		t.Errorf("long-run mean inter-arrival = %.1f us, want ~200", meanUS)
	}
}

func TestBurstyArrivalsAreBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, err := NewBurstyArrivals(rng, 200*time.Microsecond, 64, 20*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	spacing := int64(20 * time.Microsecond)
	short, long := 0, 0
	prev := int64(0)
	for i := 0; i < 100000; i++ {
		now := a.Next()
		if now-prev == spacing {
			short++
		} else {
			long++
		}
		prev = now
	}
	// With mean burst length 64, ~63/64 of gaps are intra-burst.
	frac := float64(short) / float64(short+long)
	if frac < 0.95 || frac >= 1.0 {
		t.Errorf("intra-burst fraction = %.3f, want ~0.984", frac)
	}
	// Idle gaps must dwarf the spacing on average.
	meanGap := float64(prev) / float64(long)
	if meanGap < 10*float64(spacing) {
		t.Errorf("idle gaps too small: %.0f ns per cycle", meanGap)
	}
}

func TestBurstyDegeneratesToPoissonAtLenOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, err := NewBurstyArrivals(rng, 100*time.Microsecond, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	spacingHits := 0
	prev := int64(0)
	for i := 0; i < 10000; i++ {
		now := a.Next()
		if now == prev {
			spacingHits++
		}
		prev = now
	}
	if spacingHits > 100 {
		t.Errorf("degenerate process produced %d zero gaps", spacingHits)
	}
}

func TestBurstyArrivalsRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if _, err := NewBurstyArrivals(rng, 0, 4, 0); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := NewBurstyArrivals(rng, time.Millisecond, 0.5, 0); err == nil {
		t.Error("burst length < 1 accepted")
	}
	if _, err := NewBurstyArrivals(rng, time.Millisecond, 4, time.Millisecond); err == nil {
		t.Error("spacing >= mean accepted")
	}
	if _, err := NewBurstyArrivals(rng, time.Millisecond, 4, -time.Microsecond); err == nil {
		t.Error("negative spacing accepted")
	}
}

func TestBurstyArrivalsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, _ := NewBurstyArrivals(rng, 200*time.Microsecond, 32, 10*time.Microsecond)
	prev := int64(-1)
	for i := 0; i < 50000; i++ {
		now := a.Next()
		if now < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = now
	}
}
