package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSizeDistValidate(t *testing.T) {
	good := SizeDist{0.7, 0.2, 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SizeDist{
		{0.5, 0.2, 0.1},  // sums to 0.8
		{0.9, 0.2, 0.1},  // sums to 1.2
		{-0.1, 0.6, 0.5}, // negative
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("accepted %+v", d)
		}
	}
}

func TestNewSizeSamplerRejections(t *testing.T) {
	if _, err := NewSizeSampler(SizeDist{0.5, 0.2, 0.1}, 8); err == nil {
		t.Error("invalid dist accepted")
	}
	if _, err := NewSizeSampler(SizeDist{0.7, 0.2, 0.1}, 0); err == nil {
		t.Error("zero average accepted")
	}
}

func TestSizeSamplerBuckets(t *testing.T) {
	// ts0's Table 1 row: 69.8% / 17.9% / 12.3%, average 8.0 KB.
	s, err := NewSizeSampler(SizeDist{0.698, 0.179, 0.123}, 8.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	var small, medium, large, total int
	for i := 0; i < n; i++ {
		sz := s.Sample(rng)
		if sz <= 0 || sz%(4*KB) != 0 {
			t.Fatalf("bad size %d", sz)
		}
		switch {
		case sz <= 4*KB:
			small++
		case sz <= 8*KB:
			medium++
		default:
			large++
		}
		total += sz
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.01 {
			t.Errorf("%s fraction = %.3f, want %.3f", name, frac, want)
		}
	}
	check("small", small, 0.698)
	check("medium", medium, 0.179)
	check("large", large, 0.123)
	avgKB := float64(total) / n / KB
	if math.Abs(avgKB-8.0) > 0.8 {
		t.Errorf("average size = %.2f KB, want ~8.0", avgKB)
	}
}

func TestSizeSamplerHeavyTail(t *testing.T) {
	// lun2: 92.6/2.5/4.9 with 9.7 KB average forces a very heavy large
	// bucket; the fitted mean must clamp inside the supported range.
	s, err := NewSizeSampler(SizeDist{0.926, 0.025, 0.049}, 9.7)
	if err != nil {
		t.Fatal(err)
	}
	if s.LargeMeanKB() < largeBucketMin || s.LargeMeanKB() > largeBucketMax {
		t.Errorf("large mean %.1f KB out of range", s.LargeMeanKB())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		if sz := s.Sample(rng); sz > largeBucketMax*KB {
			t.Fatalf("sample %d exceeds clamp", sz)
		}
	}
}

func TestSizeSamplerNoLargeBucket(t *testing.T) {
	s, err := NewSizeSampler(SizeDist{0.8, 0.2, 0}, 4.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if sz := s.Sample(rng); sz > 8*KB {
			t.Fatalf("large sample %d from empty large bucket", sz)
		}
	}
}

func TestExtentPoolLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sizes, _ := NewSizeSampler(SizeDist{0.7, 0.2, 0.1}, 8)
	p, err := NewExtentPool(rng, 100, 4096, sizes, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 100 {
		t.Fatalf("Len = %d", p.Len())
	}
	// Extents must be disjoint and within [base, End).
	off := int64(4096)
	for i := 0; i < 100; i++ {
		e := p.extents[i]
		if e.Offset != off {
			t.Fatalf("extent %d at %d, want %d", i, e.Offset, off)
		}
		off += int64(e.Size)
	}
	if p.End() != off {
		t.Errorf("End = %d, want %d", p.End(), off)
	}
}

func TestExtentPoolSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes, _ := NewSizeSampler(SizeDist{1, 0, 0}, 4)
	p, err := NewExtentPool(rng, 50, 0, sizes, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		counts[p.Pick().Offset]++
	}
	// The most popular extent must draw well above the uniform share.
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if best < 20000/50*2 {
		t.Errorf("top extent drew %d of 20000; Zipf skew missing", best)
	}
}

func TestExtentPoolRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sizes, _ := NewSizeSampler(SizeDist{1, 0, 0}, 4)
	if _, err := NewExtentPool(rng, 0, 0, sizes, 1.2); err == nil {
		t.Error("zero-size pool accepted")
	}
	if _, err := NewExtentPool(rng, 10, 0, sizes, 1.0); err == nil {
		t.Error("zipf s=1 accepted")
	}
}

func TestArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, err := NewArrivals(rng, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	var sum int64
	const n = 100000
	for i := 0; i < n; i++ {
		now := a.Next()
		if now < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		sum += now - prev
		prev = now
	}
	meanUS := float64(sum) / n / 1000
	if math.Abs(meanUS-200) > 5 {
		t.Errorf("mean inter-arrival = %.1f us, want ~200", meanUS)
	}
}

func TestArrivalsRejectsBadMean(t *testing.T) {
	if _, err := NewArrivals(rand.New(rand.NewSource(1)), 0); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestDeterminism(t *testing.T) {
	gen := func() []int {
		rng := rand.New(rand.NewSource(99))
		s, _ := NewSizeSampler(SizeDist{0.7, 0.2, 0.1}, 8)
		out := make([]int, 100)
		for i := range out {
			out[i] = s.Sample(rng)
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same samples")
		}
	}
}
