package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Multi-tenant workload model: K tenants, each with its own trace (or
// synthetic mix), arrival-burst shaping, diurnal phase offset and QoS
// share, interleaved deterministically into one request schedule for the
// closed-loop engine. This is the "millions of users on one device"
// traffic shape of the roadmap: tenants contend for the same SLC cache
// and stress GC in ways a single-stream replay never does.

// TenantSpec describes one tenant of a multi-tenant closed-loop run. The
// zero value of every field means "use the driver default"; Normalize
// makes the defaults explicit so a spec has exactly one canonical form.
type TenantSpec struct {
	// Name labels the tenant in reports. Empty means "t<i>".
	Name string `json:"name,omitempty"`
	// Trace names the tenant's synthetic workload profile
	// (trace.Profiles key). Empty means the driver's default trace.
	Trace string `json:"trace,omitempty"`
	// Seed drives the tenant's trace synthesis and burst re-timing. Zero
	// derives a distinct per-tenant seed from the run seed, so tenants
	// sharing a profile still issue distinct streams.
	Seed int64 `json:"seed,omitempty"`
	// Scale shrinks the tenant's request count, (0, 1]. Zero inherits the
	// run scale.
	Scale float64 `json:"scale,omitempty"`
	// Weight is the tenant's QoS share: the fraction of the closed-loop
	// queue depth reserved for it is Weight over the sum of all weights.
	// Zero means 1 (equal shares).
	Weight float64 `json:"weight,omitempty"`
	// PhaseNS offsets the tenant's diurnal rate modulation: tenants with
	// phases spread across the period peak at different times, the way
	// user populations in different time zones do.
	PhaseNS int64 `json:"phaseNS,omitempty"`
	// DiurnalPeriodNS is the period of the sinusoidal arrival-rate
	// modulation. Zero disables modulation.
	DiurnalPeriodNS int64 `json:"diurnalPeriodNS,omitempty"`
	// DiurnalAmplitude is the modulation depth in [0, 1): 0.5 means the
	// arrival rate swings between 0.5x and 1.5x the mean. Ignored when
	// DiurnalPeriodNS is zero.
	DiurnalAmplitude float64 `json:"diurnalAmplitude,omitempty"`
	// BurstLen > 1 re-times the tenant's arrivals into on/off bursts of
	// this mean length (geometrically distributed), preserving the
	// stream's mean rate. 0 and 1 keep the trace's own timestamps.
	BurstLen float64 `json:"burstLen,omitempty"`
	// BurstSpacingNS is the intra-burst inter-arrival time used when
	// BurstLen > 1.
	BurstSpacingNS int64 `json:"burstSpacingNS,omitempty"`
}

// tenantSeedStride separates derived per-tenant seeds; a large odd prime
// keeps derived seeds from colliding across runs with nearby base seeds.
const tenantSeedStride = 1_000_003

// NormalizeTenants returns the specs with every default made explicit:
// names filled, zero seeds derived from baseSeed by index, zero scales
// replaced by baseScale, zero weights by 1, and zero traces by
// defaultTrace. Both the closed-loop engine and the daemon's canonical
// job keys use it, so "defaults implied" and "defaults spelled out"
// describe the same run.
func NormalizeTenants(specs []TenantSpec, defaultTrace string, baseSeed int64, baseScale float64) []TenantSpec {
	out := make([]TenantSpec, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			s.Name = fmt.Sprintf("t%d", i)
		}
		if s.Trace == "" {
			s.Trace = defaultTrace
		}
		if s.Seed == 0 {
			s.Seed = baseSeed + int64(i+1)*tenantSeedStride
		}
		if s.Scale == 0 {
			s.Scale = baseScale
		}
		if s.Weight == 0 {
			s.Weight = 1
		}
		if s.BurstLen == 1 {
			s.BurstLen = 0 // 0 and 1 both mean "keep trace timestamps"
		}
		out[i] = s
	}
	return out
}

// ValidateTenants rejects unusable tenant parameters. It assumes
// normalised specs.
func ValidateTenants(specs []TenantSpec) error {
	for i, s := range specs {
		switch {
		case s.Scale <= 0 || s.Scale > 1:
			return fmt.Errorf("workload: tenant %d scale %.3f out of (0,1]", i, s.Scale)
		case s.Weight <= 0:
			return fmt.Errorf("workload: tenant %d weight %.3f must be positive", i, s.Weight)
		case s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1:
			return fmt.Errorf("workload: tenant %d diurnal amplitude %.3f out of [0,1)", i, s.DiurnalAmplitude)
		case s.DiurnalPeriodNS < 0:
			return fmt.Errorf("workload: tenant %d diurnal period %d must be >= 0", i, s.DiurnalPeriodNS)
		case s.DiurnalAmplitude > 0 && s.DiurnalPeriodNS == 0:
			return fmt.Errorf("workload: tenant %d diurnal amplitude without a period", i)
		case s.BurstLen != 0 && s.BurstLen < 1:
			return fmt.Errorf("workload: tenant %d burst length %.2f must be >= 1", i, s.BurstLen)
		case s.BurstSpacingNS < 0:
			return fmt.Errorf("workload: tenant %d burst spacing %d must be >= 0", i, s.BurstSpacingNS)
		}
	}
	return nil
}

// RecordSource is one tenant's raw request stream — an already-synthesised
// trace. It decouples this package from the trace package (which imports
// workload for its samplers): core adapts *trace.Trace to it.
type RecordSource interface {
	// Len returns the request count.
	Len() int
	// Record returns request i: arrival time (ns), direction, byte
	// offset and byte length. Requests are time-ordered.
	Record(i int) (time int64, write bool, offset int64, size int)
}

// Request is one scheduled request of the merged multi-tenant stream.
type Request struct {
	// Time is the shaped arrival time in nanoseconds.
	Time int64
	// Offset is the byte address, already remapped into the tenant's
	// partition of the logical space.
	Offset int64
	// Tenant indexes Schedule.Tenants.
	Tenant int32
	// Size is the request length in bytes.
	Size int32
	// Write is the request direction.
	Write bool
}

// TenantInfo summarises one tenant of a built schedule.
type TenantInfo struct {
	// Name is the tenant's label.
	Name string
	// Trace is the tenant's workload profile name.
	Trace string
	// Weight is the tenant's normalised QoS share.
	Weight float64
	// Requests counts the tenant's scheduled requests.
	Requests int
}

// Schedule is the deterministic interleaving of all tenants' shaped
// streams, ordered by arrival time with ties broken by (tenant, sequence).
type Schedule struct {
	// Tenants describes the participating tenants in spec order.
	Tenants []TenantInfo
	reqs    []Request
}

// Len returns the total scheduled request count.
func (s *Schedule) Len() int { return len(s.reqs) }

// At returns scheduled request i.
func (s *Schedule) At(i int) Request { return s.reqs[i] }

// Name returns a compact label for the schedule, e.g. "mt2[ts0+wdev0]".
func (s *Schedule) Name() string {
	label := fmt.Sprintf("mt%d[", len(s.Tenants))
	for i, t := range s.Tenants {
		if i > 0 {
			label += "+"
		}
		label += t.Trace
	}
	return label + "]"
}

// BuildSchedule shapes each tenant's source stream — burst re-timing,
// diurnal rate modulation with per-tenant phase, offset remapping into an
// equal partition of the logical byte space — and merges the K streams
// into one arrival-ordered schedule. specs must be normalised and
// validated; sources[i] is tenant i's raw stream. The result is fully
// deterministic: same specs and sources, same schedule.
func BuildSchedule(specs []TenantSpec, sources []RecordSource, logicalBytes int64) (*Schedule, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: schedule needs at least one tenant")
	}
	if len(specs) != len(sources) {
		return nil, fmt.Errorf("workload: %d specs but %d sources", len(specs), len(sources))
	}
	if err := ValidateTenants(specs); err != nil {
		return nil, err
	}
	if logicalBytes <= 0 {
		return nil, fmt.Errorf("workload: logical space %d bytes must be positive", logicalBytes)
	}
	// Equal address partitions, aligned down to 16 KiB page frames so
	// tenants never share a logical frame (cross-tenant frame sharing
	// would let one tenant's update invalidate another's subpages, which
	// is isolation no real host would give up).
	const frameAlign = 16 * 1024
	span := logicalBytes / int64(len(specs))
	span -= span % frameAlign
	if span < frameAlign {
		return nil, fmt.Errorf("workload: logical space %d too small for %d tenants", logicalBytes, len(specs))
	}

	sch := &Schedule{Tenants: make([]TenantInfo, len(specs))}
	total := 0
	for _, src := range sources {
		total += src.Len()
	}
	sch.reqs = make([]Request, 0, total)

	streams := make([][]Request, len(specs))
	for ti, spec := range specs {
		src := sources[ti]
		n := src.Len()
		sch.Tenants[ti] = TenantInfo{Name: spec.Name, Trace: spec.Trace, Weight: spec.Weight, Requests: n}
		reqs := make([]Request, n)

		// Burst re-timing: replace the stream's timestamps with an on/off
		// burst process of the same long-run mean rate, seeded per tenant.
		var arrivals *Arrivals
		if spec.BurstLen > 1 && n > 1 {
			last, _, _, _ := src.Record(n - 1)
			mean := time.Duration(last / int64(n-1))
			if mean <= 0 {
				mean = time.Microsecond
			}
			spacing := time.Duration(spec.BurstSpacingNS)
			if spacing >= mean {
				spacing = mean / 2
			}
			var err error
			arrivals, err = NewBurstyArrivals(rand.New(rand.NewSource(spec.Seed)), mean, spec.BurstLen, spacing)
			if err != nil {
				return nil, fmt.Errorf("workload: tenant %d: %w", ti, err)
			}
		}

		base := int64(ti) * span
		for i := 0; i < n; i++ {
			t, isWrite, off, size := src.Record(i)
			if arrivals != nil {
				t = arrivals.Next()
			}
			t = diurnalWarp(t, spec.DiurnalPeriodNS, spec.DiurnalAmplitude, spec.PhaseNS)
			// Remap into the tenant's partition; requests wrap within it.
			if int64(size) > span {
				size = int(span)
			}
			off %= span
			if off+int64(size) > span {
				off = 0
			}
			reqs[i] = Request{
				Time:   t,
				Offset: base + off,
				Tenant: int32(ti),
				Size:   int32(size),
				Write:  isWrite,
			}
		}
		streams[ti] = reqs
	}

	// K-way merge by shaped time; ties broken by tenant index (cursor
	// order is per-tenant sequence order, so the merge is stable).
	cursors := make([]int, len(streams))
	for {
		best := -1
		var bestT int64
		for ti, c := range cursors {
			if c >= len(streams[ti]) {
				continue
			}
			if t := streams[ti][c].Time; best < 0 || t < bestT {
				best, bestT = ti, t
			}
		}
		if best < 0 {
			break
		}
		sch.reqs = append(sch.reqs, streams[best][cursors[best]])
		cursors[best]++
	}
	return sch, nil
}

// diurnalWarp applies a monotone sinusoidal time warp modelling a diurnal
// arrival-rate swing: instantaneous rate r(t) = 1 + a*cos(2pi*(t+phase)/P)
// integrates to
//
//	W(t) = t + a*(P/2pi) * (sin(2pi*(t+phase)/P) - sin(2pi*phase/P))
//
// W is strictly increasing for a < 1 (so request order is preserved) and
// W(0) = 0 (tenants still start together; only their rate peaks shift).
func diurnalWarp(t, periodNS int64, amplitude float64, phaseNS int64) int64 {
	if periodNS <= 0 || amplitude == 0 {
		return t
	}
	p := float64(periodNS)
	omega := 2 * math.Pi / p
	phase := float64(phaseNS)
	w := float64(t) + amplitude/omega*(math.Sin(omega*(float64(t)+phase))-math.Sin(omega*phase))
	if w < 0 {
		w = 0
	}
	return int64(w)
}

// DepthShares splits a closed-loop queue depth among tenants by QoS
// weight: tenant i receives max(1, floor(depth * w_i / sum(w))) slots.
// Every tenant gets at least one slot so starvation is impossible, which
// means the sum can exceed depth when depth < len(weights).
func DepthShares(depth int, weights []float64) []int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	out := make([]int, len(weights))
	for i, w := range weights {
		share := int(float64(depth) * w / sum)
		if share < 1 {
			share = 1
		}
		out[i] = share
	}
	return out
}

// WeightedThroughputs returns each tenant's completed requests per second
// of simulated makespan, divided by its QoS weight — the allocation
// vector Jain's fairness index is computed over. A weighted-fair device
// yields equal entries.
func WeightedThroughputs(requests []int, weights []float64, makespanNS int64) []float64 {
	if makespanNS <= 0 {
		makespanNS = 1
	}
	out := make([]float64, len(requests))
	for i, r := range requests {
		w := 1.0
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		out[i] = float64(r) / (float64(makespanNS) / 1e9) / w
	}
	return out
}
