package metrics

import (
	"testing"
	"time"
)

func TestDistributionEmpty(t *testing.T) {
	var s LatencySummary
	if got := s.Distribution(); got != nil {
		t.Errorf("empty distribution = %v", got)
	}
}

func TestDistributionBucketsAndCDF(t *testing.T) {
	var s LatencySummary
	// Three observations in [64,128) ns (bit length 7) and one in
	// [1024,2048) ns (bit length 11).
	s.Record(100)
	s.Record(70)
	s.Record(127)
	s.Record(1500)
	d := s.Distribution()
	if len(d) != 2 {
		t.Fatalf("buckets = %d, want 2: %+v", len(d), d)
	}
	if d[0].Lo != 64 || d[0].Hi != 128 || d[0].Count != 3 {
		t.Errorf("bucket 0: %+v", d[0])
	}
	if d[1].Lo != 1024 || d[1].Hi != 2048 || d[1].Count != 1 {
		t.Errorf("bucket 1: %+v", d[1])
	}
	if d[0].CumFrac != 0.75 || d[1].CumFrac != 1.0 {
		t.Errorf("CDF: %.3f, %.3f", d[0].CumFrac, d[1].CumFrac)
	}
}

func TestDistributionAscendingAndComplete(t *testing.T) {
	var s LatencySummary
	for i := int64(1); i < 1_000_000; i *= 3 {
		s.Record(i)
	}
	d := s.Distribution()
	var total int64
	prevHi := time.Duration(0)
	prevCum := 0.0
	for _, b := range d {
		if b.Lo >= b.Hi {
			t.Errorf("degenerate bucket %+v", b)
		}
		if b.Hi <= prevHi {
			t.Error("buckets not ascending")
		}
		if b.CumFrac < prevCum {
			t.Error("CDF not monotone")
		}
		prevHi = b.Hi
		prevCum = b.CumFrac
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("distribution covers %d of %d observations", total, s.Count)
	}
	if prevCum != 1.0 {
		t.Errorf("final CDF = %f", prevCum)
	}
}

func TestDistributionZeroBucket(t *testing.T) {
	var s LatencySummary
	s.Record(0)
	d := s.Distribution()
	if len(d) != 1 || d[0].Lo != 0 || d[0].Hi != 1 {
		t.Errorf("zero observation distribution: %+v", d)
	}
}
