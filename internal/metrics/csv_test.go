package metrics

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	tab := NewTable("Fig 5: I/O response time", "trace", "latency")
	tab.AddRow("ts0", "1.5us")
	tab.AddRow("with,comma", `with"quote`)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "trace,latency" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma"`) {
		t.Errorf("comma not quoted: %q", lines[2])
	}
}

func TestCSVName(t *testing.T) {
	cases := []struct{ title, want string }{
		{"Fig 5: I/O response time", "fig-5-i-o-response-time.csv"},
		{"Table 1: size distribution of updated requests", "table-1-size-distribution-of-updated-requests.csv"},
		{"", "table.csv"},
		{"---", "table.csv"},
		{"ABC def", "abc-def.csv"},
	}
	for _, c := range cases {
		tab := NewTable(c.title)
		if got := tab.CSVName(); got != c.want {
			t.Errorf("CSVName(%q) = %q, want %q", c.title, got, c.want)
		}
	}
}
