package metrics

// FairnessIndex returns Jain's fairness index over the given allocations
// (per-tenant throughputs, optionally normalised by QoS weight):
//
//	J = (Σx)² / (n · Σx²)
//
// J is 1 when every tenant receives an equal share and approaches 1/n as
// one tenant monopolises the resource. Negative allocations are treated
// as zero (an allocation cannot be negative; a scheduling bug upstream
// must not produce an index outside [0, 1]). An empty or all-zero input
// returns 0, since no resource was allocated to be fair about.
func FairnessIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
