package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestLatencySummaryBasics(t *testing.T) {
	var s LatencySummary
	if s.Mean() != 0 || s.Percentile(0.5) != 0 {
		t.Error("empty summary must report zeros")
	}
	s.Record(1000)
	s.Record(3000)
	s.Record(2000)
	if s.Count != 3 || s.Sum != 6000 || s.Max != 3000 {
		t.Errorf("summary: %+v", s)
	}
	if s.Mean() != 2000 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestLatencySummaryNegativeClamp(t *testing.T) {
	var s LatencySummary
	s.Record(-5)
	if s.Count != 1 || s.Sum != 0 {
		t.Errorf("negative record mishandled: %+v", s)
	}
}

func TestPercentileApproximation(t *testing.T) {
	var s LatencySummary
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		// Uniform in [0, 1ms).
		s.Record(rng.Int63n(int64(time.Millisecond)))
	}
	p50 := float64(s.Percentile(0.5))
	// The histogram is power-of-two bucketed, so allow 2x slack.
	if p50 < float64(time.Millisecond)/8 || p50 > float64(time.Millisecond) {
		t.Errorf("p50 = %v implausible for uniform [0,1ms)", time.Duration(int64(p50)))
	}
	if s.Percentile(0) > s.Percentile(1) {
		t.Error("percentiles must be monotone")
	}
	if s.Percentile(-1) != s.Percentile(0) || s.Percentile(2) != s.Percentile(1) {
		t.Error("out-of-range percentiles must clamp")
	}
}

func TestPercentileOrdering(t *testing.T) {
	var s LatencySummary
	for i := 0; i < 1000; i++ {
		s.Record(int64(i) * 1000)
	}
	p10, p90 := s.Percentile(0.1), s.Percentile(0.9)
	if p10 >= p90 {
		t.Errorf("p10 (%v) >= p90 (%v)", p10, p90)
	}
}

func TestLatencySummaryMerge(t *testing.T) {
	var a, b LatencySummary
	a.Record(100)
	b.Record(300)
	b.Record(500)
	a.Merge(&b)
	if a.Count != 3 || a.Sum != 900 || a.Max != 500 {
		t.Errorf("merged: %+v", a)
	}
}

func TestMeanAccumulator(t *testing.T) {
	var m MeanAccumulator
	if m.Mean() != 0 {
		t.Error("empty mean must be zero")
	}
	m.Add(1)
	m.Add(2)
	m.Add(3)
	if m.Mean() != 2 {
		t.Errorf("mean = %v", m.Mean())
	}
	var o MeanAccumulator
	o.Add(10)
	m.Merge(&o)
	if m.Count != 4 || m.Mean() != 4 {
		t.Errorf("merged mean = %v", m.Mean())
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "trace", "latency")
	tab.AddRow("ts0", "123.45us")
	tab.AddRow("a-longer-name") // short row: padded
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Demo ==", "trace", "latency", "ts0", "123.45us", "a-longer-name"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatDuration(1500 * time.Nanosecond); got != "1.50us" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatSci(0.00028); got != "2.800e-04" {
		t.Errorf("FormatSci = %q", got)
	}
	if got := FormatPct(0.527); got != "52.7%" {
		t.Errorf("FormatPct = %q", got)
	}
}
