// Package metrics provides the statistics containers the simulator reports
// from: latency summaries with percentile estimation, mean accumulators,
// and a plain-text table renderer for the experiment harness.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/bits"
	"strings"
	"time"
)

// latencyBuckets is the number of power-of-two histogram buckets; bucket i
// covers [2^i, 2^(i+1)) nanoseconds, which spans 1 ns to ~9 s.
const latencyBuckets = 34

// LatencySummary accumulates a latency distribution with O(1) recording
// and logarithmic-resolution percentiles.
type LatencySummary struct {
	Count   int64
	Sum     int64 // nanoseconds
	Max     int64
	buckets [latencyBuckets]int64
}

// Record adds one latency observation in nanoseconds. Negative values are
// clamped to zero (they indicate a scheduling bug upstream, but must not
// corrupt the histogram).
func (s *LatencySummary) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s.Count++
	s.Sum += ns
	if ns > s.Max {
		s.Max = ns
	}
	b := bits.Len64(uint64(ns))
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	s.buckets[b]++
}

// Mean returns the average latency, or zero with no observations.
func (s *LatencySummary) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Percentile estimates the p-quantile (p in [0,1]) from the histogram;
// the result is exact to within its power-of-two bucket. When the rank
// lands on the last observation — p = 1, or any p high enough that
// ceil(p*Count) == Count, which is where p999 sits for samples smaller
// than 1000 — the recorded maximum is returned exactly rather than a
// bucket midpoint, so small-sample tail percentiles are not inflated past
// the worst latency actually observed.
func (s *LatencySummary) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank >= s.Count {
		return time.Duration(s.Max)
	}
	var seen int64
	for b := 0; b < latencyBuckets; b++ {
		seen += s.buckets[b]
		if seen >= rank {
			// Midpoint of bucket [2^(b-1), 2^b).
			if b == 0 {
				return 0
			}
			lo := int64(1) << (b - 1)
			hi := int64(1) << b
			return time.Duration((lo + hi) / 2)
		}
	}
	return time.Duration(s.Max)
}

// Bucket is one power-of-two histogram cell of a latency distribution.
type Bucket struct {
	// Lo and Hi bound the cell: observations in [Lo, Hi).
	Lo, Hi time.Duration
	// Count is the number of observations in the cell.
	Count int64
	// CumFrac is the cumulative fraction of observations at or below Hi.
	CumFrac float64
}

// Distribution returns the non-empty histogram cells in ascending order —
// the response-time distribution of the paper's Fig. 5.
func (s *LatencySummary) Distribution() []Bucket {
	if s.Count == 0 {
		return nil
	}
	var out []Bucket
	var cum int64
	for b := 0; b < latencyBuckets; b++ {
		cum += s.buckets[b]
		if s.buckets[b] == 0 {
			continue
		}
		lo := time.Duration(0)
		if b > 0 {
			lo = time.Duration(int64(1) << (b - 1))
		}
		out = append(out, Bucket{
			Lo:      lo,
			Hi:      time.Duration(int64(1) << b),
			Count:   s.buckets[b],
			CumFrac: float64(cum) / float64(s.Count),
		})
	}
	return out
}

// Merge adds another summary's observations into s.
func (s *LatencySummary) Merge(o *LatencySummary) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.buckets {
		s.buckets[i] += o.buckets[i]
	}
}

// MeanAccumulator tracks the mean of a float series (e.g. per-read BER).
type MeanAccumulator struct {
	Count int64
	Sum   float64
}

// Add records one observation.
func (m *MeanAccumulator) Add(v float64) {
	m.Count++
	m.Sum += v
}

// Mean returns the running mean, or zero with no observations.
func (m *MeanAccumulator) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Merge folds another accumulator into m.
func (m *MeanAccumulator) Merge(o *MeanAccumulator) {
	m.Count += o.Count
	m.Sum += o.Sum
}

// Table is a plain-text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (header row plus data rows), for
// plotting the regenerated figures outside the harness.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVName derives a filesystem-friendly file name from the table title,
// e.g. "Fig 5: I/O response time" -> "fig-5-i-o-response-time.csv".
func (t *Table) CSVName() string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(t.Title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		case !lastDash:
			b.WriteByte('-')
			lastDash = true
		}
	}
	name := strings.TrimSuffix(b.String(), "-")
	if name == "" {
		name = "table"
	}
	return name + ".csv"
}

// FormatDuration renders a duration in microseconds with two decimals, the
// unit the paper's latency figures use.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.2fus", float64(d)/float64(time.Microsecond))
}

// FormatSci renders a float in scientific notation (for error rates).
func FormatSci(v float64) string { return fmt.Sprintf("%.3e", v) }

// FormatPct renders a fraction as a percentage with one decimal.
func FormatPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
