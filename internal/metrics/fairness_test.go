package metrics

import (
	"math"
	"testing"
	"time"
)

func TestFairnessIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"single", []float64{42}, 1},
		{"equal-pair", []float64{5, 5}, 1},
		{"equal-many", []float64{3, 3, 3, 3}, 1},
		// One tenant monopolises: J -> 1/n.
		{"monopoly-2", []float64{10, 0}, 0.5},
		{"monopoly-4", []float64{8, 0, 0, 0}, 0.25},
		// (1+2)^2 / (2 * (1+4)) = 9/10.
		{"two-to-one", []float64{1, 2}, 0.9},
		// (1+1+2)^2 / (3 * (1+1+4)) = 16/18.
		{"skewed-trio", []float64{1, 1, 2}, 16.0 / 18.0},
		// Scale invariance: multiplying every share by a constant must not
		// move the index.
		{"two-to-one-scaled", []float64{1000, 2000}, 0.9},
		// Negative allocations clamp to zero rather than inflating J.
		{"negative-clamped", []float64{-3, 6}, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := FairnessIndex(tc.xs)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("FairnessIndex(%v) = %v, want %v", tc.xs, got, tc.want)
			}
			if got < 0 || got > 1+1e-12 {
				t.Errorf("FairnessIndex(%v) = %v outside [0, 1]", tc.xs, got)
			}
		})
	}
}

// TestPercentileTail pins the p999 (and general last-rank) math: whenever
// ceil(p*Count) lands on the final observation the summary must report the
// recorded maximum exactly, not a power-of-two bucket midpoint. With fewer
// than 1000 samples p999 always ranks last, so small multi-tenant runs
// would otherwise report tail latencies that never happened.
func TestPercentileTail(t *testing.T) {
	record := func(vals ...int64) *LatencySummary {
		var s LatencySummary
		for _, v := range vals {
			s.Record(v)
		}
		return &s
	}
	cases := []struct {
		name string
		s    *LatencySummary
		p    float64
		want time.Duration
	}{
		{"empty", &LatencySummary{}, 0.999, 0},
		// One sample: every percentile is that sample.
		{"single-p50", record(700), 0.5, 700},
		{"single-p999", record(700), 0.999, 700},
		// ceil(0.999*3) = 3 = Count: the last observation, exactly.
		{"three-p999", record(100, 200, 300_000), 0.999, 300_000},
		// ceil(0.999*999) = 999 = Count: still the last observation.
		{"n999-p999", seqSummary(999), 0.999, 999 * 1000},
		// p = 1 is the maximum by definition, at any size.
		{"p100-exact", record(3, 5, 1025), 1.0, 1025},
		// ceil(0.5*2) = 1 < Count: mid ranks keep the bucket estimate
		// (1000 lives in [512, 1024), midpoint 768).
		{"mid-rank-bucketed", record(1000, 5000), 0.5, 768},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Percentile(tc.p); got != tc.want {
				t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}

	// At 1000 samples ceil(0.999*1000) = 999 < Count: the rank falls back
	// inside the histogram and the estimate is bucketed again, but must
	// never exceed p100's exact maximum... by more than its bucket width.
	s := seqSummary(1000)
	p999, p100 := s.Percentile(0.999), s.Percentile(1)
	if p100 != time.Duration(1000*1000) {
		t.Errorf("p100 = %v, want exact max 1ms", p100)
	}
	if p999 < p100/2 || p999 > 2*p100 {
		t.Errorf("p999 = %v implausible against max %v", p999, p100)
	}
}

// seqSummary records n latencies 1000, 2000, ..., n*1000 ns.
func seqSummary(n int) *LatencySummary {
	var s LatencySummary
	for i := 1; i <= n; i++ {
		s.Record(int64(i) * 1000)
	}
	return &s
}
