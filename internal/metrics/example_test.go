package metrics_test

import (
	"fmt"
	"os"
	"time"

	"ipusim/internal/metrics"
)

func ExampleLatencySummary() {
	var s metrics.LatencySummary
	for _, ns := range []int64{1000, 2000, 3000, 4000} {
		s.Record(ns)
	}
	fmt.Println(s.Count, s.Mean(), s.Max)
	// Output: 4 2.5µs 4000
}

func ExampleTable_Render() {
	t := metrics.NewTable("Demo", "trace", "latency")
	t.AddRow("ts0", metrics.FormatDuration(1500*time.Nanosecond))
	_ = t.Render(os.Stdout)
	// Output:
	// == Demo ==
	// trace  latency
	// ---------------
	// ts0    1.50us
}

func ExampleTable_WriteCSV() {
	t := metrics.NewTable("Fig 5: demo", "trace", "latency")
	t.AddRow("ts0", "1.50us")
	fmt.Println(t.CSVName())
	_ = t.WriteCSV(os.Stdout)
	// Output:
	// fig-5-demo.csv
	// trace,latency
	// ts0,1.50us
}

func ExampleFormatPct() {
	fmt.Println(metrics.FormatPct(0.528))
	// Output: 52.8%
}
