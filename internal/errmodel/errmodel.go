// Package errmodel implements the reliability model of the paper: raw bit
// error rate (BER) as a function of P/E wear for conventional versus partial
// programming (Fig. 2, after Zhang et al., FAST'16), the extra disturb that
// partial programming inflicts on in-page and neighbouring data (Fig. 1),
// and the BCH ECC decode latency that turns raw errors into read time
// (Table 2: ECC min/max time).
package errmodel

import (
	"errors"
	"math"
	"time"

	"ipusim/internal/flash"
)

// Model is a parametric reliability model. The zero value is not usable;
// construct with Default or fill every field and call Validate.
type Model struct {
	// RefPE and RefBER anchor the conventional-programming curve:
	// RawBER(RefPE, conventional) == RefBER. The paper quotes
	// 0.00028 at 4000 P/E cycles.
	RefPE  float64
	RefBER float64
	// Exponent is the power-law growth of BER with P/E wear, fitted to the
	// Fig. 2 trend (error rate roughly triples from 4000 to 8000 cycles).
	Exponent float64
	// PartialFactor is the multiplicative penalty of a subpage written by a
	// partial-programming operation (paper: 0.00038/0.00028 ≈ 1.36 at
	// 4000 P/E).
	PartialFactor float64

	// InPageAlpha is the relative BER increase per partial-programming
	// operation applied to the same page while the subpage held valid data.
	InPageAlpha float64
	// NeighborBeta is the relative BER increase per partial-programming
	// operation applied to an adjacent page.
	NeighborBeta float64
	// ReprogramGamma is the relative BER increase per in-place reprogram
	// pass (SLC-to-MLC switch) the subpage survived while valid.
	// Reprogramming re-shifts the threshold voltage of already-written
	// cells without an erase, widening their voltage distributions.
	ReprogramGamma float64

	// CodewordDataBits is the payload covered by one BCH codeword; the
	// simulator uses one codeword per 4 KiB subpage.
	CodewordDataBits int
	// CorrectableBits is the BCH correction capability t per codeword.
	CorrectableBits int

	// ECCMin/ECCMax bound decode latency (Table 2).
	ECCMin, ECCMax time.Duration
	// DecodeExponent shapes the interpolation between ECCMin and ECCMax:
	// decode time grows as (errors/t)^DecodeExponent, reflecting the
	// iteration count of Berlekamp–Massey/Chien decoding growing with the
	// number of symbol errors.
	DecodeExponent float64
	// MaxRetries bounds read-retry attempts when raw errors exceed the
	// correction capability. Each retry re-senses the page with tuned
	// reference voltages, roughly halving the raw error count.
	MaxRetries int
}

// Default returns the model calibrated to the paper's quoted numbers and
// Table 2's ECC latencies.
func Default() Model {
	return Model{
		RefPE:            4000,
		RefBER:           2.8e-4,
		Exponent:         1.55,
		PartialFactor:    3.8e-4 / 2.8e-4,
		InPageAlpha:      0.045,
		NeighborBeta:     0.01,
		ReprogramGamma:   0.25,
		CodewordDataBits: 4096 * 8,
		CorrectableBits:  40,
		ECCMin:           500 * time.Nanosecond,
		ECCMax:           96800 * time.Nanosecond,
		DecodeExponent:   2,
		MaxRetries:       3,
	}
}

// Validate reports a descriptive error for inconsistent parameters.
func (m *Model) Validate() error {
	switch {
	case m.RefPE <= 0 || m.RefBER <= 0:
		return errors.New("errmodel: reference point must be positive")
	case m.Exponent <= 0:
		return errors.New("errmodel: Exponent must be positive")
	case m.PartialFactor < 1:
		return errors.New("errmodel: PartialFactor must be >= 1")
	case m.InPageAlpha < 0 || m.NeighborBeta < 0:
		return errors.New("errmodel: disturb coefficients must be non-negative")
	case m.ReprogramGamma < 0:
		return errors.New("errmodel: ReprogramGamma must be non-negative")
	case m.CodewordDataBits <= 0 || m.CorrectableBits <= 0:
		return errors.New("errmodel: codeword geometry must be positive")
	case m.ECCMin < 0 || m.ECCMax < m.ECCMin:
		return errors.New("errmodel: need 0 <= ECCMin <= ECCMax")
	case m.DecodeExponent <= 0:
		return errors.New("errmodel: DecodeExponent must be positive")
	case m.MaxRetries < 0:
		return errors.New("errmodel: MaxRetries must be non-negative")
	}
	return nil
}

// RawBER returns the raw bit error rate of a subpage at the given P/E wear,
// distinguishing how the subpage itself was programmed. This is the Fig. 2
// curve.
func (m *Model) RawBER(pe int, partial bool) float64 {
	if pe < 1 {
		pe = 1
	}
	ber := m.RefBER * math.Pow(float64(pe)/m.RefPE, m.Exponent)
	if partial {
		ber *= m.PartialFactor
	}
	return ber
}

// EffectiveBER returns the bit error rate observed when reading a subpage,
// combining the programming-mode base rate with accumulated in-page and
// neighbouring-page disturb and in-place reprogram stress. With zero
// stress counts the result is exactly the base rate.
func (m *Model) EffectiveBER(pe int, sp *flash.Subpage) float64 {
	return m.StressedBER(m.RawBER(pe, sp.Partial), sp.InPageDisturb, sp.NeighborDisturb, sp.ReprogramStress)
}

// StressedBER applies the disturb and reprogram stress terms to an already
// computed base (Fig. 2) rate. It is the second half of EffectiveBER,
// split out so callers that memoise RawBER — and the parallel read
// pipeline, which snapshots the stress counters at dispatch — evaluate the
// exact same expression and stay bit-identical with the direct path.
func (m *Model) StressedBER(base float64, inPage, neighbor, reprogram uint16) float64 {
	return base * (1 +
		m.InPageAlpha*float64(inPage) +
		m.NeighborBeta*float64(neighbor) +
		m.ReprogramGamma*float64(reprogram))
}

// ExpectedErrors converts a BER into the expected raw bit errors of one
// codeword.
func (m *Model) ExpectedErrors(ber float64) float64 {
	return ber * float64(m.CodewordDataBits)
}

// ReadCost is the ECC outcome of reading one subpage.
type ReadCost struct {
	// BER is the effective bit error rate of the subpage.
	BER float64
	// Errors is the expected raw bit errors in the codeword.
	Errors float64
	// DecodeTime is the total ECC decode latency including retries.
	DecodeTime time.Duration
	// Retries is the number of extra sensing operations the read needed
	// because raw errors exceeded the correction capability.
	Retries int
	// Uncorrectable is set when even MaxRetries could not bring the error
	// count within the correction capability.
	Uncorrectable bool
}

// SubpageReadCost evaluates the full read-path reliability cost of one
// subpage at the given P/E wear.
func (m *Model) SubpageReadCost(pe int, sp *flash.Subpage) ReadCost {
	ber := m.EffectiveBER(pe, sp)
	return m.CostFromBER(ber)
}

// CostFromBER computes decode latency and retry count for a given effective
// BER. Exposed separately so synthetic studies (Fig. 2, endurance sweeps)
// can evaluate the ECC path without flash state.
func (m *Model) CostFromBER(ber float64) ReadCost {
	c := ReadCost{BER: ber, Errors: m.ExpectedErrors(ber)}
	e := c.Errors
	t := float64(m.CorrectableBits)
	for e > t {
		if c.Retries >= m.MaxRetries {
			c.Uncorrectable = true
			break
		}
		// A retry re-senses with tuned reference voltages; model the raw
		// error count halving per attempt.
		c.Retries++
		c.DecodeTime += m.ECCMax
		e /= 2
	}
	frac := e / t
	if frac > 1 {
		frac = 1
	}
	c.DecodeTime += m.ECCMin + time.Duration(float64(m.ECCMax-m.ECCMin)*math.Pow(frac, m.DecodeExponent))
	return c
}

// CurvePoint is one (P/E, BER) sample of the Fig. 2 curves.
type CurvePoint struct {
	PE                  int
	Conventional        float64
	Partial             float64
	ConvDecode, PartDec time.Duration
}

// Curve samples the conventional and partial programming BER curves at the
// given P/E cycle counts, reproducing Fig. 2 (and the ECC latency behind
// Figs. 13–14).
func (m *Model) Curve(pes []int) []CurvePoint {
	out := make([]CurvePoint, 0, len(pes))
	for _, pe := range pes {
		conv := m.RawBER(pe, false)
		part := m.RawBER(pe, true)
		out = append(out, CurvePoint{
			PE:           pe,
			Conventional: conv,
			Partial:      part,
			ConvDecode:   m.CostFromBER(conv).DecodeTime,
			PartDec:      m.CostFromBER(part).DecodeTime,
		})
	}
	return out
}
