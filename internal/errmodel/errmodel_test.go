package errmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ipusim/internal/flash"
)

func TestDefaultValidates(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatalf("Default model invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*Model)
	}{
		{"zero ref pe", func(m *Model) { m.RefPE = 0 }},
		{"zero ref ber", func(m *Model) { m.RefBER = 0 }},
		{"zero exponent", func(m *Model) { m.Exponent = 0 }},
		{"partial factor below one", func(m *Model) { m.PartialFactor = 0.9 }},
		{"negative alpha", func(m *Model) { m.InPageAlpha = -0.1 }},
		{"negative beta", func(m *Model) { m.NeighborBeta = -0.1 }},
		{"negative gamma", func(m *Model) { m.ReprogramGamma = -0.1 }},
		{"zero codeword", func(m *Model) { m.CodewordDataBits = 0 }},
		{"zero correctable", func(m *Model) { m.CorrectableBits = 0 }},
		{"ecc max below min", func(m *Model) { m.ECCMax = m.ECCMin - 1 }},
		{"zero decode exponent", func(m *Model) { m.DecodeExponent = 0 }},
		{"negative retries", func(m *Model) { m.MaxRetries = -1 }},
	}
	for _, mu := range muts {
		m := Default()
		mu.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", mu.name)
		}
	}
}

// TestPaperAnchorPoints checks the two numbers the paper quotes from Fig. 2:
// 0.00028 (conventional) and 0.00038 (partial) at 4000 P/E cycles.
func TestPaperAnchorPoints(t *testing.T) {
	m := Default()
	if got := m.RawBER(4000, false); math.Abs(got-2.8e-4) > 1e-9 {
		t.Errorf("conventional BER at 4000 PE = %g, want 2.8e-4", got)
	}
	if got := m.RawBER(4000, true); math.Abs(got-3.8e-4) > 1e-9 {
		t.Errorf("partial BER at 4000 PE = %g, want 3.8e-4", got)
	}
}

func TestBERMonotonicInPE(t *testing.T) {
	m := Default()
	prev := 0.0
	for pe := 500; pe <= 16000; pe += 500 {
		got := m.RawBER(pe, false)
		if got <= prev {
			t.Fatalf("BER not increasing at PE=%d: %g <= %g", pe, got, prev)
		}
		prev = got
	}
}

func TestBERPartialAlwaysWorse(t *testing.T) {
	m := Default()
	f := func(pe uint16) bool {
		p := int(pe)%12000 + 1
		return m.RawBER(p, true) > m.RawBER(p, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBERClampsNonPositivePE(t *testing.T) {
	m := Default()
	if got, want := m.RawBER(0, false), m.RawBER(1, false); got != want {
		t.Errorf("PE=0 should clamp to 1: %g vs %g", got, want)
	}
	if got, want := m.RawBER(-5, false), m.RawBER(1, false); got != want {
		t.Errorf("negative PE should clamp to 1: %g vs %g", got, want)
	}
}

func TestEffectiveBERDisturbScaling(t *testing.T) {
	m := Default()
	clean := flash.Subpage{State: flash.SubValid}
	base := m.EffectiveBER(4000, &clean)
	if math.Abs(base-m.RawBER(4000, false)) > 1e-12 {
		t.Fatalf("undisturbed subpage must see base BER")
	}
	inpage := flash.Subpage{State: flash.SubValid, InPageDisturb: 3}
	if got, want := m.EffectiveBER(4000, &inpage), base*(1+3*m.InPageAlpha); math.Abs(got-want) > 1e-12 {
		t.Errorf("in-page disturbed BER = %g, want %g", got, want)
	}
	neigh := flash.Subpage{State: flash.SubValid, NeighborDisturb: 5}
	if got, want := m.EffectiveBER(4000, &neigh), base*(1+5*m.NeighborBeta); math.Abs(got-want) > 1e-12 {
		t.Errorf("neighbour disturbed BER = %g, want %g", got, want)
	}
	both := flash.Subpage{State: flash.SubValid, Partial: true, InPageDisturb: 2, NeighborDisturb: 2}
	want := m.RawBER(4000, true) * (1 + 2*m.InPageAlpha + 2*m.NeighborBeta)
	if got := m.EffectiveBER(4000, &both); math.Abs(got-want) > 1e-12 {
		t.Errorf("combined BER = %g, want %g", got, want)
	}
}

// TestEffectiveBERReprogramStress pins the in-place reprogram penalty: the
// table anchors the additive term at known stress counts, zero stress must
// reproduce the pre-switch EffectiveBER exactly, and the term composes with
// the partial/disturb factors it shares the multiplier with.
func TestEffectiveBERReprogramStress(t *testing.T) {
	m := Default()
	base := m.RawBER(4000, false)
	cases := []struct {
		name string
		sp   flash.Subpage
		want float64
	}{
		{"zero stress equals base", flash.Subpage{State: flash.SubValid}, base},
		{"one pass", flash.Subpage{State: flash.SubValid, ReprogramStress: 1}, base * (1 + m.ReprogramGamma)},
		{"three passes", flash.Subpage{State: flash.SubValid, ReprogramStress: 3}, base * (1 + 3*m.ReprogramGamma)},
		{"stress with partial", flash.Subpage{State: flash.SubValid, Partial: true, ReprogramStress: 2},
			m.RawBER(4000, true) * (1 + 2*m.ReprogramGamma)},
		{"stress with disturb", flash.Subpage{State: flash.SubValid, InPageDisturb: 2, NeighborDisturb: 1, ReprogramStress: 1},
			base * (1 + 2*m.InPageAlpha + 1*m.NeighborBeta + 1*m.ReprogramGamma)},
	}
	for _, c := range cases {
		if got := m.EffectiveBER(4000, &c.sp); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("%s: EffectiveBER = %g, want %g", c.name, got, c.want)
		}
	}
}

// TestEffectiveBERMonotonicInReprogramStress checks each additional switch
// pass strictly raises the read error rate.
func TestEffectiveBERMonotonicInReprogramStress(t *testing.T) {
	m := Default()
	prev := 0.0
	for stress := uint16(0); stress <= 16; stress++ {
		sp := flash.Subpage{State: flash.SubValid, ReprogramStress: stress}
		got := m.EffectiveBER(4000, &sp)
		if got <= prev {
			t.Fatalf("BER not increasing at stress=%d: %g <= %g", stress, got, prev)
		}
		prev = got
	}
}

func TestInPageDisturbDominatesNeighbor(t *testing.T) {
	// The paper's core claim rests on in-page disturb being the dominant
	// partial-programming penalty; the model must reflect that.
	m := Default()
	if m.InPageAlpha <= m.NeighborBeta {
		t.Fatalf("InPageAlpha (%g) must exceed NeighborBeta (%g)", m.InPageAlpha, m.NeighborBeta)
	}
}

func TestExpectedErrors(t *testing.T) {
	m := Default()
	got := m.ExpectedErrors(2.8e-4)
	want := 2.8e-4 * 4096 * 8
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedErrors = %g, want %g", got, want)
	}
}

func TestDecodeTimeBounds(t *testing.T) {
	m := Default()
	zero := m.CostFromBER(0)
	if zero.DecodeTime != m.ECCMin || zero.Retries != 0 || zero.Uncorrectable {
		t.Errorf("zero-error decode: %+v", zero)
	}
	// Exactly at capability: full ECCMax, no retry.
	atCap := m.CostFromBER(float64(m.CorrectableBits) / float64(m.CodewordDataBits))
	if atCap.DecodeTime != m.ECCMax || atCap.Retries != 0 {
		t.Errorf("at-capability decode: %+v", atCap)
	}
}

func TestDecodeTimeMonotonic(t *testing.T) {
	m := Default()
	prev := time.Duration(-1)
	for e := 0.0; e <= float64(m.CorrectableBits); e += 0.5 {
		got := m.CostFromBER(e / float64(m.CodewordDataBits)).DecodeTime
		if got < prev {
			t.Fatalf("decode time decreased at %g errors: %v < %v", e, got, prev)
		}
		prev = got
	}
}

func TestReadRetryPath(t *testing.T) {
	m := Default()
	// 60 expected errors > 40 correctable: one retry halves to 30.
	ber := 60.0 / float64(m.CodewordDataBits)
	c := m.CostFromBER(ber)
	if c.Retries != 1 || c.Uncorrectable {
		t.Fatalf("60 errors: retries=%d uncorrectable=%v", c.Retries, c.Uncorrectable)
	}
	if c.DecodeTime <= m.ECCMax {
		t.Error("retry path must cost more than a single max decode")
	}
	// Hopeless error count: exhausts retries.
	hopeless := m.CostFromBER(1e6 / float64(m.CodewordDataBits))
	if !hopeless.Uncorrectable || hopeless.Retries != m.MaxRetries {
		t.Errorf("hopeless read: %+v", hopeless)
	}
}

func TestSubpageReadCostUsesDisturb(t *testing.T) {
	m := Default()
	clean := flash.Subpage{State: flash.SubValid}
	dirty := flash.Subpage{State: flash.SubValid, Partial: true, InPageDisturb: 3}
	cc := m.SubpageReadCost(4000, &clean)
	cd := m.SubpageReadCost(4000, &dirty)
	if cd.BER <= cc.BER {
		t.Error("disturbed subpage must have higher BER")
	}
	if cd.DecodeTime < cc.DecodeTime {
		t.Error("disturbed subpage must not decode faster")
	}
}

func TestCurveShape(t *testing.T) {
	m := Default()
	pes := []int{1000, 2000, 4000, 8000}
	pts := m.Curve(pes)
	if len(pts) != len(pes) {
		t.Fatalf("curve length %d", len(pts))
	}
	for i, p := range pts {
		if p.PE != pes[i] {
			t.Errorf("point %d PE = %d", i, p.PE)
		}
		if p.Partial <= p.Conventional {
			t.Errorf("PE %d: partial (%g) must exceed conventional (%g)", p.PE, p.Partial, p.Conventional)
		}
		if p.PartDec < p.ConvDecode {
			t.Errorf("PE %d: partial decode faster than conventional", p.PE)
		}
		if i > 0 && p.Conventional <= pts[i-1].Conventional {
			t.Errorf("curve not increasing at PE %d", p.PE)
		}
	}
	// Fig. 2 shows the absolute gap widening with wear.
	gapFirst := pts[0].Partial - pts[0].Conventional
	gapLast := pts[len(pts)-1].Partial - pts[len(pts)-1].Conventional
	if gapLast <= gapFirst {
		t.Errorf("partial/conventional gap must widen with PE: %g -> %g", gapFirst, gapLast)
	}
}
