// Package cache models a host-side DRAM write buffer in front of the
// simulated flash device, in the style of the FTL-SIM and ScalaCache
// front-ends: small writes are absorbed into fixed-size cache lines,
// repeated sub-page updates to the same line coalesce in DRAM instead of
// each reaching NAND, and dirty lines are written back only on capacity
// pressure (LRU eviction), on an overlapping read, or at the final drain.
//
// The buffer is purely deterministic: given the same request sequence it
// makes the same hit/evict/flush decisions and charges the same simulated
// time, so replays through it are reproducible bit for bit.
package cache

import (
	"fmt"
)

// Backend services the requests the buffer cannot absorb. Both methods
// take the issue time in simulated nanoseconds and return the completion
// time; *scheme.Device's schemes and core's simulator satisfy it.
type Backend interface {
	Write(now int64, offset int64, size int) int64
	Read(now int64, offset int64, size int) int64
}

// Config parameterises one write buffer.
type Config struct {
	// CapacityBytes is the DRAM capacity dedicated to dirty lines. Zero
	// or negative disables the buffer entirely (callers should bypass it).
	CapacityBytes int64 `json:"capacityBytes,omitempty"`
	// LineBytes is the cache-line size. Writes are split into line-aligned
	// segments; a whole line is the write-back unit. Zero means
	// DefaultLineBytes. Must divide evenly into CapacityBytes-many lines.
	LineBytes int `json:"lineBytes,omitempty"`
	// HitNS is the simulated DRAM access time charged for a buffered
	// write or a read served from the buffer. Zero means DefaultHitNS.
	HitNS int64 `json:"hitNS,omitempty"`
}

// DefaultLineBytes is the default cache-line size: 4 KiB, one subpage.
const DefaultLineBytes = 4096

// DefaultHitNS is the default DRAM access latency: 2 us, the order of a
// host-DRAM round trip through an NVMe controller, and ~100x faster than
// an SLC program.
const DefaultHitNS = 2000

// Normalize returns the config with defaults filled in. It is applied by
// New, and also by canonicalisers that must agree with New byte for byte.
func (c Config) Normalize() Config {
	if c.LineBytes <= 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.HitNS <= 0 {
		c.HitNS = DefaultHitNS
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	c = c.Normalize()
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("cache: capacity %d bytes must be positive", c.CapacityBytes)
	}
	if int64(c.LineBytes) > c.CapacityBytes {
		return fmt.Errorf("cache: line size %d exceeds capacity %d", c.LineBytes, c.CapacityBytes)
	}
	return nil
}

// Stats counts the buffer's traffic. All counters are cumulative.
type Stats struct {
	// WriteHits counts line-segments of host writes that landed on a line
	// already resident (coalesced in DRAM); WriteMisses counts segments
	// that allocated a new line.
	WriteHits, WriteMisses int64
	// CoalescedBytes is the dirty bytes overwritten in place — NAND
	// traffic the buffer absorbed entirely.
	CoalescedBytes int64
	// ReadHits counts host reads served wholly from dirty lines;
	// ReadMisses counts reads that went to the device.
	ReadHits, ReadMisses int64
	// Evictions counts lines written back on capacity pressure;
	// ReadFlushes counts lines written back because a device-bound read
	// overlapped them; DrainFlushes counts lines written back by the
	// final Drain.
	Evictions, ReadFlushes, DrainFlushes int64
	// FlushedBytes is the total dirty bytes written back to the device.
	FlushedBytes int64
}

// Flushes returns total lines written back, over every cause.
func (s *Stats) Flushes() int64 { return s.Evictions + s.ReadFlushes + s.DrainFlushes }

// line is one resident dirty cache line. The buffer holds only dirty
// lines (it is a write buffer, not a read cache): clean data has no
// reason to occupy DRAM that exists to defer NAND programs.
type line struct {
	id int64 // offset / LineBytes
	// lo and hi bound the dirty byte range within the line; write-back
	// flushes [lo, hi).
	lo, hi int
	// LRU list links; the list is intrusive to keep eviction
	// allocation-free.
	prev, next *line
}

// WriteBuffer is a write-back DRAM buffer in front of a Backend.
type WriteBuffer struct {
	cfg     Config
	backend Backend
	lines   map[int64]*line
	// head is most recently used, tail least recently used.
	head, tail *line
	// dirtyBytes is the resident dirty total, compared against capacity.
	dirtyBytes int64
	// freeList recycles evicted line structs.
	freeList *line
	stats    Stats
}

// New builds a write buffer over backend. The config is validated and
// normalised.
func New(cfg Config, backend Backend) (*WriteBuffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	return &WriteBuffer{
		cfg:     cfg,
		backend: backend,
		lines:   make(map[int64]*line, cfg.CapacityBytes/int64(cfg.LineBytes)+1),
	}, nil
}

// Stats returns a snapshot of the buffer's counters.
func (w *WriteBuffer) Stats() Stats { return w.stats }

// DirtyBytes returns the bytes currently buffered and not yet on NAND.
func (w *WriteBuffer) DirtyBytes() int64 { return w.dirtyBytes }

// unlink removes l from the LRU list.
func (w *WriteBuffer) unlink(l *line) {
	if l.prev != nil {
		l.prev.next = l.next
	} else {
		w.head = l.next
	}
	if l.next != nil {
		l.next.prev = l.prev
	} else {
		w.tail = l.prev
	}
	l.prev, l.next = nil, nil
}

// touch moves l to the MRU head.
func (w *WriteBuffer) touch(l *line) {
	if w.head == l {
		return
	}
	w.unlink(l)
	l.next = w.head
	if w.head != nil {
		w.head.prev = l
	}
	w.head = l
	if w.tail == nil {
		w.tail = l
	}
}

// insert adds a fresh line at the MRU head.
func (w *WriteBuffer) insert(l *line) {
	l.next = w.head
	if w.head != nil {
		w.head.prev = l
	}
	w.head = l
	if w.tail == nil {
		w.tail = l
	}
	w.lines[l.id] = l
}

// alloc returns a line struct, recycling evicted ones.
func (w *WriteBuffer) alloc() *line {
	if l := w.freeList; l != nil {
		w.freeList = l.next
		*l = line{}
		return l
	}
	return &line{}
}

// drop removes l from the buffer entirely and recycles its storage.
func (w *WriteBuffer) drop(l *line) {
	w.unlink(l)
	delete(w.lines, l.id)
	w.dirtyBytes -= int64(l.hi - l.lo)
	l.next = w.freeList
	w.freeList = l
}

// flushLine writes l's dirty range back to the device at time now and
// drops it. It returns the write's completion time.
func (w *WriteBuffer) flushLine(now int64, l *line) int64 {
	off := l.id*int64(w.cfg.LineBytes) + int64(l.lo)
	n := l.hi - l.lo
	w.stats.FlushedBytes += int64(n)
	w.drop(l)
	return w.backend.Write(now, off, n)
}

// Write services one host write at time now and returns its completion
// time. Line-aligned segments that land on resident lines coalesce in
// DRAM; new lines are allocated, and if the dirty total exceeds capacity
// the least recently used lines are written back synchronously — the
// flush-on-pressure path — so a full buffer exposes NAND latency to the
// host, which is exactly the backpressure a closed-loop driver must see.
func (w *WriteBuffer) Write(now int64, offset int64, size int) int64 {
	end := now + w.cfg.HitNS
	lb := int64(w.cfg.LineBytes)
	for size > 0 {
		id := offset / lb
		lo := int(offset - id*lb)
		n := w.cfg.LineBytes - lo
		if n > size {
			n = size
		}
		hi := lo + n
		if l, ok := w.lines[id]; ok {
			w.stats.WriteHits++
			// Bytes that were already dirty are overwritten in place:
			// pure NAND traffic saved.
			if ov := overlap(l.lo, l.hi, lo, hi); ov > 0 {
				w.stats.CoalescedBytes += int64(ov)
			}
			prev := l.hi - l.lo
			if lo < l.lo {
				l.lo = lo
			}
			if hi > l.hi {
				l.hi = hi
			}
			w.dirtyBytes += int64((l.hi - l.lo) - prev)
			w.touch(l)
		} else {
			w.stats.WriteMisses++
			nl := w.alloc()
			nl.id, nl.lo, nl.hi = id, lo, hi
			w.insert(nl)
			w.dirtyBytes += int64(n)
		}
		offset += int64(n)
		size -= n
	}
	// Flush-on-pressure: evict LRU lines until the dirty total fits. The
	// host write completes no earlier than the last eviction it forced.
	for w.dirtyBytes > w.cfg.CapacityBytes && w.tail != nil {
		w.stats.Evictions++
		if e := w.flushLine(now, w.tail); e > end {
			end = e
		}
	}
	return end
}

// Read services one host read at time now and returns its completion
// time. A read wholly covered by resident dirty bytes is served from
// DRAM. Otherwise the read goes to the device — but any dirty lines it
// overlaps are written back first, so the device always serves current
// data (and their latency is charged to this read).
func (w *WriteBuffer) Read(now int64, offset int64, size int) int64 {
	lb := int64(w.cfg.LineBytes)
	first := offset / lb
	last := (offset + int64(size) - 1) / lb
	covered := true
	anyDirty := false
	for id := first; id <= last; id++ {
		l, ok := w.lines[id]
		if !ok {
			covered = false
			continue
		}
		anyDirty = true
		segLo := 0
		if id == first {
			segLo = int(offset - id*lb)
		}
		segHi := w.cfg.LineBytes
		if id == last {
			segHi = int(offset + int64(size) - id*lb)
		}
		if l.lo > segLo || l.hi < segHi {
			covered = false
		}
	}
	if covered && anyDirty {
		w.stats.ReadHits++
		// Touch in ascending line order (deterministic).
		for id := first; id <= last; id++ {
			w.touch(w.lines[id])
		}
		return now + w.cfg.HitNS
	}
	w.stats.ReadMisses++
	issue := now
	for id := first; id <= last; id++ {
		if l, ok := w.lines[id]; ok {
			w.stats.ReadFlushes++
			if e := w.flushLine(now, l); e > issue {
				issue = e
			}
		}
	}
	return w.backend.Read(issue, offset, size)
}

// Drain writes every resident dirty line back to the device at time now,
// in ascending line-offset LRU order (LRU first, the order pressure would
// have evicted them), and returns the last completion time. Call it at
// end of replay so buffered updates are accounted on NAND and the
// device-side metrics are comparable with an unbuffered run.
func (w *WriteBuffer) Drain(now int64) int64 {
	end := now
	for w.tail != nil {
		w.stats.DrainFlushes++
		if e := w.flushLine(now, w.tail); e > end {
			end = e
		}
	}
	return end
}

// overlap returns the length of the intersection of [alo, ahi) and
// [blo, bhi), or 0 when disjoint.
func overlap(alo, ahi, blo, bhi int) int {
	lo, hi := alo, ahi
	if blo > lo {
		lo = blo
	}
	if bhi < hi {
		hi = bhi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
