// Package cache models a host-side DRAM write buffer in front of the
// simulated flash device, in the style of the FTL-SIM and ScalaCache
// front-ends: small writes are absorbed into fixed-size cache lines,
// repeated sub-page updates to the same line coalesce in DRAM instead of
// each reaching NAND, and dirty lines are written back only on capacity
// pressure (LRU eviction), on an overlapping read, or at the final drain.
//
// The buffer is purely deterministic: given the same request sequence it
// makes the same hit/evict/flush decisions and charges the same simulated
// time, so replays through it are reproducible bit for bit.
//
// Storage is a slab: every resident line lives in one contiguous []line
// array, linked into the LRU list and the free list by int32 slot indices
// rather than pointers, and found by id through an open-addressed hash
// index of int32 slots. Once the slab and index have grown to the
// buffer's working size — capacity plus the largest single write's
// transient overshoot — the steady-state Write/Read/Drain paths allocate
// nothing, which is what keeps the closed-loop serving loop at zero
// allocations per request.
package cache

import (
	"fmt"
)

// Backend services the requests the buffer cannot absorb. Both methods
// take the issue time in simulated nanoseconds and return the completion
// time; *scheme.Device's schemes and core's simulator satisfy it.
type Backend interface {
	Write(now int64, offset int64, size int) int64
	Read(now int64, offset int64, size int) int64
}

// Config parameterises one write buffer.
type Config struct {
	// CapacityBytes is the DRAM capacity dedicated to dirty lines. Zero
	// or negative disables the buffer entirely (callers should bypass it).
	CapacityBytes int64 `json:"capacityBytes,omitempty"`
	// LineBytes is the cache-line size. Writes are split into line-aligned
	// segments; a whole line is the write-back unit. Zero means
	// DefaultLineBytes. Must divide evenly into CapacityBytes-many lines.
	LineBytes int `json:"lineBytes,omitempty"`
	// HitNS is the simulated DRAM access time charged for a buffered
	// write or a read served from the buffer. Zero means DefaultHitNS.
	HitNS int64 `json:"hitNS,omitempty"`
}

// DefaultLineBytes is the default cache-line size: 4 KiB, one subpage.
const DefaultLineBytes = 4096

// DefaultHitNS is the default DRAM access latency: 2 us, the order of a
// host-DRAM round trip through an NVMe controller, and ~100x faster than
// an SLC program.
const DefaultHitNS = 2000

// Normalize returns the config with defaults filled in. It is applied by
// New, and also by canonicalisers that must agree with New byte for byte.
func (c Config) Normalize() Config {
	if c.LineBytes <= 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.HitNS <= 0 {
		c.HitNS = DefaultHitNS
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	c = c.Normalize()
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("cache: capacity %d bytes must be positive", c.CapacityBytes)
	}
	if int64(c.LineBytes) > c.CapacityBytes {
		return fmt.Errorf("cache: line size %d exceeds capacity %d", c.LineBytes, c.CapacityBytes)
	}
	return nil
}

// Stats counts the buffer's traffic. All counters are cumulative.
type Stats struct {
	// WriteHits counts line-segments of host writes that landed on a line
	// already resident (coalesced in DRAM); WriteMisses counts segments
	// that allocated a new line.
	WriteHits, WriteMisses int64
	// CoalescedBytes is the dirty bytes overwritten in place — NAND
	// traffic the buffer absorbed entirely.
	CoalescedBytes int64
	// ReadHits counts host reads served wholly from dirty lines;
	// ReadMisses counts reads that went to the device.
	ReadHits, ReadMisses int64
	// Evictions counts lines written back on capacity pressure;
	// ReadFlushes counts lines written back because a device-bound read
	// overlapped them; DrainFlushes counts lines written back by the
	// final Drain.
	Evictions, ReadFlushes, DrainFlushes int64
	// FlushedBytes is the total dirty bytes written back to the device.
	FlushedBytes int64
}

// Flushes returns total lines written back, over every cause.
func (s *Stats) Flushes() int64 { return s.Evictions + s.ReadFlushes + s.DrainFlushes }

// line is one dirty cache line slot of the slab. The buffer holds only
// dirty lines (it is a write buffer, not a read cache): clean data has no
// reason to occupy DRAM that exists to defer NAND programs.
type line struct {
	id int64 // offset / LineBytes
	// lo and hi bound the dirty byte range within the line; write-back
	// flushes [lo, hi).
	lo, hi int32
	// LRU list links (slab slot indices, nilSlot when absent); the list
	// is intrusive to keep eviction allocation-free. A free slot reuses
	// next as its free-list link.
	prev, next int32
}

// nilSlot terminates the intrusive lists.
const nilSlot = int32(-1)

// WriteBuffer is a write-back DRAM buffer in front of a Backend.
type WriteBuffer struct {
	cfg     Config
	backend Backend
	// slab holds every line ever allocated; resident and free slots are
	// distinguished by which intrusive list they are on. Growing appends
	// (indices stay stable); slots are never returned to the Go heap.
	slab []line
	// free heads the recycled-slot list, linked through next.
	free int32
	// head is most recently used, tail least recently used.
	head, tail int32
	// idx is the open-addressed hash index from line id to slab slot:
	// idx[i] holds slot+1, zero meaning empty. Linear probing with
	// backward-shift deletion; grown at 3/4 load.
	idx  []int32
	mask uint64
	// used counts resident lines (the idx population).
	used int
	// dirtyBytes is the resident dirty total, compared against capacity.
	dirtyBytes int64
	stats      Stats
}

// New builds a write buffer over backend. The config is validated and
// normalised. The slab and index are pre-sized for the full capacity so
// the steady state never grows them.
func New(cfg Config, backend Backend) (*WriteBuffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	capLines := int(cfg.CapacityBytes/int64(cfg.LineBytes)) + 1
	idxSize := 16
	for idxSize < 2*capLines {
		idxSize *= 2
	}
	return &WriteBuffer{
		cfg:     cfg,
		backend: backend,
		slab:    make([]line, 0, capLines),
		free:    nilSlot,
		head:    nilSlot,
		tail:    nilSlot,
		idx:     make([]int32, idxSize),
		mask:    uint64(idxSize - 1),
	}, nil
}

// Stats returns a snapshot of the buffer's counters.
func (w *WriteBuffer) Stats() Stats { return w.stats }

// DirtyBytes returns the bytes currently buffered and not yet on NAND.
func (w *WriteBuffer) DirtyBytes() int64 { return w.dirtyBytes }

// Lines returns the resident dirty-line count.
func (w *WriteBuffer) Lines() int { return w.used }

// lineHash spreads line ids over the index (Fibonacci multiplicative
// hashing with a high-bit fold; ids are sequential per workload region,
// which a plain mask would cluster).
func lineHash(id int64) uint64 {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

// lookup returns the slab slot holding id, or nilSlot.
func (w *WriteBuffer) lookup(id int64) int32 {
	for i := lineHash(id) & w.mask; ; i = (i + 1) & w.mask {
		s := w.idx[i]
		if s == 0 {
			return nilSlot
		}
		if w.slab[s-1].id == id {
			return s - 1
		}
	}
}

// idxInsert places an already-filled slot into the index. The caller has
// ensured capacity (insert grows at 3/4 load before calling).
func (w *WriteBuffer) idxInsert(slot int32) {
	for i := lineHash(w.slab[slot].id) & w.mask; ; i = (i + 1) & w.mask {
		if w.idx[i] == 0 {
			w.idx[i] = slot + 1
			return
		}
	}
}

// idxDelete removes id from the index, backward-shifting the rest of its
// probe cluster so later lookups never cross a stale hole (linear-probing
// deletion without tombstones).
func (w *WriteBuffer) idxDelete(id int64) {
	i := lineHash(id) & w.mask
	for ; ; i = (i + 1) & w.mask {
		s := w.idx[i]
		if s == 0 {
			return
		}
		if w.slab[s-1].id == id {
			break
		}
	}
	j := i
	for {
		j = (j + 1) & w.mask
		s := w.idx[j]
		if s == 0 {
			break
		}
		// The entry at j probes from its home slot k; it may fill the
		// hole at i only if i lies within its probe path [k, j].
		k := lineHash(w.slab[s-1].id) & w.mask
		if (j-k)&w.mask >= (j-i)&w.mask {
			w.idx[i] = s
			i = j
		}
	}
	w.idx[i] = 0
}

// growIdx doubles the index and re-places every resident slot. Only the
// warm-up phase reaches it; a steady-state buffer stays at its grown size.
func (w *WriteBuffer) growIdx() {
	old := w.idx
	w.idx = make([]int32, 2*len(old))
	w.mask = uint64(len(w.idx) - 1)
	for _, s := range old {
		if s != 0 {
			w.idxInsert(s - 1)
		}
	}
}

// unlink removes slot s from the LRU list.
func (w *WriteBuffer) unlink(s int32) {
	l := &w.slab[s]
	if l.prev != nilSlot {
		w.slab[l.prev].next = l.next
	} else {
		w.head = l.next
	}
	if l.next != nilSlot {
		w.slab[l.next].prev = l.prev
	} else {
		w.tail = l.prev
	}
	l.prev, l.next = nilSlot, nilSlot
}

// touch moves slot s to the MRU head.
func (w *WriteBuffer) touch(s int32) {
	if w.head == s {
		return
	}
	w.unlink(s)
	l := &w.slab[s]
	l.next = w.head
	if w.head != nilSlot {
		w.slab[w.head].prev = s
	}
	w.head = s
	if w.tail == nilSlot {
		w.tail = s
	}
}

// insert adds a fresh slot at the MRU head and indexes it.
func (w *WriteBuffer) insert(s int32) {
	l := &w.slab[s]
	l.next = w.head
	if w.head != nilSlot {
		w.slab[w.head].prev = s
	}
	w.head = s
	if w.tail == nilSlot {
		w.tail = s
	}
	if (w.used+1)*4 > len(w.idx)*3 {
		w.growIdx()
	}
	w.idxInsert(s)
	w.used++
}

// alloc returns a free slab slot, recycling dropped ones before growing.
func (w *WriteBuffer) alloc() int32 {
	if s := w.free; s != nilSlot {
		w.free = w.slab[s].next
		w.slab[s] = line{prev: nilSlot, next: nilSlot}
		return s
	}
	w.slab = append(w.slab, line{prev: nilSlot, next: nilSlot})
	return int32(len(w.slab) - 1)
}

// drop removes slot s from the buffer entirely and recycles its storage.
func (w *WriteBuffer) drop(s int32) {
	w.unlink(s)
	l := &w.slab[s]
	w.idxDelete(l.id)
	w.used--
	w.dirtyBytes -= int64(l.hi - l.lo)
	l.next = w.free
	w.free = s
}

// flushLine writes slot s's dirty range back to the device at time now
// and drops it. It returns the write's completion time.
func (w *WriteBuffer) flushLine(now int64, s int32) int64 {
	l := &w.slab[s]
	off := l.id*int64(w.cfg.LineBytes) + int64(l.lo)
	n := int(l.hi - l.lo)
	w.stats.FlushedBytes += int64(n)
	w.drop(s)
	return w.backend.Write(now, off, n)
}

// Write services one host write at time now and returns its completion
// time. Line-aligned segments that land on resident lines coalesce in
// DRAM; new lines are allocated, and if the dirty total exceeds capacity
// the least recently used lines are written back synchronously — the
// flush-on-pressure path — so a full buffer exposes NAND latency to the
// host, which is exactly the backpressure a closed-loop driver must see.
func (w *WriteBuffer) Write(now int64, offset int64, size int) int64 {
	end := now + w.cfg.HitNS
	lb := int64(w.cfg.LineBytes)
	for size > 0 {
		id := offset / lb
		lo := int32(offset - id*lb)
		n := int32(w.cfg.LineBytes) - lo
		if int(n) > size {
			n = int32(size)
		}
		hi := lo + n
		if s := w.lookup(id); s != nilSlot {
			l := &w.slab[s]
			w.stats.WriteHits++
			// Bytes that were already dirty are overwritten in place:
			// pure NAND traffic saved.
			if ov := overlap(l.lo, l.hi, lo, hi); ov > 0 {
				w.stats.CoalescedBytes += int64(ov)
			}
			prev := l.hi - l.lo
			if lo < l.lo {
				l.lo = lo
			}
			if hi > l.hi {
				l.hi = hi
			}
			w.dirtyBytes += int64((l.hi - l.lo) - prev)
			w.touch(s)
		} else {
			w.stats.WriteMisses++
			ns := w.alloc()
			nl := &w.slab[ns]
			nl.id, nl.lo, nl.hi = id, lo, hi
			w.insert(ns)
			w.dirtyBytes += int64(n)
		}
		offset += int64(n)
		size -= int(n)
	}
	// Flush-on-pressure: evict LRU lines until the dirty total fits. The
	// host write completes no earlier than the last eviction it forced.
	for w.dirtyBytes > w.cfg.CapacityBytes && w.tail != nilSlot {
		w.stats.Evictions++
		if e := w.flushLine(now, w.tail); e > end {
			end = e
		}
	}
	return end
}

// Read services one host read at time now and returns its completion
// time. A read wholly covered by resident dirty bytes is served from
// DRAM. Otherwise the read goes to the device — but any dirty lines it
// overlaps are written back first, so the device always serves current
// data (and their latency is charged to this read).
func (w *WriteBuffer) Read(now int64, offset int64, size int) int64 {
	lb := int64(w.cfg.LineBytes)
	first := offset / lb
	last := (offset + int64(size) - 1) / lb
	covered := true
	anyDirty := false
	for id := first; id <= last; id++ {
		s := w.lookup(id)
		if s == nilSlot {
			covered = false
			continue
		}
		anyDirty = true
		segLo := int32(0)
		if id == first {
			segLo = int32(offset - id*lb)
		}
		segHi := int32(w.cfg.LineBytes)
		if id == last {
			segHi = int32(offset + int64(size) - id*lb)
		}
		l := &w.slab[s]
		if l.lo > segLo || l.hi < segHi {
			covered = false
		}
	}
	if covered && anyDirty {
		w.stats.ReadHits++
		// Touch in ascending line order (deterministic).
		for id := first; id <= last; id++ {
			w.touch(w.lookup(id))
		}
		return now + w.cfg.HitNS
	}
	w.stats.ReadMisses++
	issue := now
	for id := first; id <= last; id++ {
		if s := w.lookup(id); s != nilSlot {
			w.stats.ReadFlushes++
			if e := w.flushLine(now, s); e > issue {
				issue = e
			}
		}
	}
	return w.backend.Read(issue, offset, size)
}

// Drain writes every resident dirty line back to the device at time now,
// in LRU order (the order pressure would have evicted them), and returns
// the last completion time. Call it at end of replay so buffered updates
// are accounted on NAND and the device-side metrics are comparable with
// an unbuffered run.
func (w *WriteBuffer) Drain(now int64) int64 {
	end := now
	for w.tail != nilSlot {
		w.stats.DrainFlushes++
		if e := w.flushLine(now, w.tail); e > end {
			end = e
		}
	}
	return end
}

// overlap returns the length of the intersection of [alo, ahi) and
// [blo, bhi), or 0 when disjoint.
func overlap(alo, ahi, blo, bhi int32) int32 {
	lo, hi := alo, ahi
	if blo > lo {
		lo = blo
	}
	if bhi < hi {
		hi = bhi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
