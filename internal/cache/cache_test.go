package cache

import (
	"testing"
)

// recordingBackend logs every request and models a slow device: writes
// take 300us, reads 50us.
type recordingBackend struct {
	writes, reads []request
}

type request struct {
	now    int64
	offset int64
	size   int
}

const (
	devWriteNS = 300_000
	devReadNS  = 50_000
)

func (b *recordingBackend) Write(now int64, offset int64, size int) int64 {
	b.writes = append(b.writes, request{now, offset, size})
	return now + devWriteNS
}

func (b *recordingBackend) Read(now int64, offset int64, size int) int64 {
	b.reads = append(b.reads, request{now, offset, size})
	return now + devReadNS
}

func newBuf(t *testing.T, capacity int64, lineBytes int) (*WriteBuffer, *recordingBackend) {
	t.Helper()
	be := &recordingBackend{}
	w, err := New(Config{CapacityBytes: capacity, LineBytes: lineBytes}, be)
	if err != nil {
		t.Fatal(err)
	}
	return w, be
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{}, &recordingBackend{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{CapacityBytes: 1024, LineBytes: 4096}, &recordingBackend{}); err == nil {
		t.Error("line larger than capacity accepted")
	}
	w, err := New(Config{CapacityBytes: 1 << 20}, &recordingBackend{})
	if err != nil {
		t.Fatal(err)
	}
	if w.cfg.LineBytes != DefaultLineBytes || w.cfg.HitNS != DefaultHitNS {
		t.Errorf("defaults not applied: %+v", w.cfg)
	}
}

func TestWriteCoalescesInDRAM(t *testing.T) {
	w, be := newBuf(t, 1<<20, 4096)
	// Three sub-page updates to the same 4K line: one miss, two hits, no
	// device traffic at all.
	w.Write(0, 0, 512)
	w.Write(1000, 0, 512)
	w.Write(2000, 256, 1024)
	st := w.Stats()
	if len(be.writes) != 0 {
		t.Fatalf("device saw %d writes, want 0 (all buffered)", len(be.writes))
	}
	if st.WriteMisses != 1 || st.WriteHits != 2 {
		t.Errorf("misses=%d hits=%d, want 1/2", st.WriteMisses, st.WriteHits)
	}
	// Second write overwrote all 512 dirty bytes; third overlapped
	// [256,512) of them.
	if st.CoalescedBytes != 512+256 {
		t.Errorf("coalesced %d bytes, want 768", st.CoalescedBytes)
	}
	if w.DirtyBytes() != 1280 { // [0, 1280) dirty
		t.Errorf("dirty = %d, want 1280", w.DirtyBytes())
	}
	// Drain flushes exactly the dirty span once.
	w.Drain(5000)
	if len(be.writes) != 1 || be.writes[0].offset != 0 || be.writes[0].size != 1280 {
		t.Fatalf("drain wrote %+v, want one 1280B write at 0", be.writes)
	}
	if w.Stats().DrainFlushes != 1 || w.DirtyBytes() != 0 {
		t.Errorf("after drain: %+v dirty %d", w.Stats(), w.DirtyBytes())
	}
}

func TestFlushOnPressureEvictsLRU(t *testing.T) {
	// Capacity two lines: writing a third full line must evict the least
	// recently used (the first).
	w, be := newBuf(t, 8192, 4096)
	w.Write(0, 0, 4096)
	w.Write(100, 4096, 4096)
	w.Write(200, 8192, 4096)
	if len(be.writes) != 1 {
		t.Fatalf("device saw %d writes, want 1 eviction", len(be.writes))
	}
	if be.writes[0].offset != 0 || be.writes[0].size != 4096 {
		t.Errorf("evicted %+v, want the LRU line at 0", be.writes[0])
	}
	if st := w.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// Touching line 1 then overflowing must evict line 2 instead.
	w.Write(300, 4096, 512)
	w.Write(400, 12288, 4096)
	if len(be.writes) != 2 || be.writes[1].offset != 8192 {
		t.Fatalf("second eviction %+v, want line at 8192", be.writes)
	}
}

func TestEvictionLatencyBackpressure(t *testing.T) {
	w, _ := newBuf(t, 4096, 4096)
	// First write is absorbed at DRAM speed.
	if end := w.Write(0, 0, 4096); end != DefaultHitNS {
		t.Errorf("buffered write end = %d, want %d", end, DefaultHitNS)
	}
	// Second write overflows: completion waits for the synchronous
	// eviction (device write latency), not DRAM latency.
	if end := w.Write(10, 4096, 4096); end != 10+devWriteNS {
		t.Errorf("evicting write end = %d, want %d", end, 10+devWriteNS)
	}
}

func TestReadHitAndMiss(t *testing.T) {
	w, be := newBuf(t, 1<<20, 4096)
	w.Write(0, 0, 4096)
	w.Write(0, 4096, 2048)

	// Fully covered by dirty bytes: DRAM hit, no device traffic.
	if end := w.Read(1000, 512, 1024); end != 1000+DefaultHitNS {
		t.Errorf("read hit end = %d", end)
	}
	// Spanning both lines but inside dirty ranges: still a hit.
	if end := w.Read(2000, 0, 6144); end != 2000+DefaultHitNS {
		t.Errorf("spanning read hit end = %d", end)
	}
	if st := w.Stats(); st.ReadHits != 2 || st.ReadMisses != 0 || len(be.reads) != 0 {
		t.Fatalf("stats %+v, device reads %d", st, len(be.reads))
	}

	// Read past the dirty range: miss. The overlapping dirty line must be
	// flushed before the device read so NAND serves current data.
	end := w.Read(3000, 4096, 4096)
	if len(be.writes) != 1 || be.writes[0].offset != 4096 || be.writes[0].size != 2048 {
		t.Fatalf("read-miss flush %+v, want the 2048B line at 4096", be.writes)
	}
	if len(be.reads) != 1 {
		t.Fatalf("device reads = %d, want 1", len(be.reads))
	}
	// The read is issued only after the flush completes.
	if want := 3000 + int64(devWriteNS) + devReadNS; end != want {
		t.Errorf("read-miss end = %d, want %d", end, want)
	}
	if st := w.Stats(); st.ReadFlushes != 1 || st.ReadMisses != 1 {
		t.Errorf("stats %+v", st)
	}

	// An untouched range misses without flushing anything.
	if end := w.Read(4000, 1<<20, 4096); end != 4000+devReadNS {
		t.Errorf("cold read end = %d", end)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, []request, []request) {
		w, be := newBuf(t, 64*1024, 4096)
		now := int64(0)
		// A pseudo-workload with a deterministic LCG: mixed reads and
		// writes over a small hot range, forcing hits, misses and
		// evictions.
		x := uint64(12345)
		for i := 0; i < 5000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			off := int64(x>>33) % (256 * 1024)
			size := 512 + int(x%7)*512
			if x%5 == 0 {
				now = w.Read(now, off, size)
			} else {
				now = w.Write(now, off, size)
			}
		}
		w.Drain(now)
		return w.Stats(), be.writes, be.reads
	}
	s1, w1, r1 := run()
	s2, w2, r2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if len(w1) != len(w2) || len(r1) != len(r2) {
		t.Fatalf("traffic diverged: %d/%d writes, %d/%d reads", len(w1), len(w2), len(r1), len(r2))
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("write %d diverged: %+v vs %+v", i, w1[i], w2[i])
		}
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("read %d diverged: %+v vs %+v", i, r1[i], r2[i])
		}
	}
	if s1.Flushes() != s1.Evictions+s1.ReadFlushes+s1.DrainFlushes {
		t.Errorf("Flushes() inconsistent: %+v", s1)
	}
}

func TestDirtyAccountingNeverNegative(t *testing.T) {
	w, _ := newBuf(t, 8192, 4096)
	for i := 0; i < 100; i++ {
		w.Write(int64(i), int64(i%5)*4096, 1024)
		if w.DirtyBytes() < 0 {
			t.Fatalf("dirty bytes went negative at %d", i)
		}
		if w.DirtyBytes() > 8192 {
			t.Fatalf("dirty bytes %d exceed capacity after write %d", w.DirtyBytes(), i)
		}
	}
	w.Drain(1000)
	if w.DirtyBytes() != 0 {
		t.Fatalf("dirty after drain: %d", w.DirtyBytes())
	}
}
