package cache

import (
	"math/rand"
	"testing"
)

// --- map-backed reference implementation -------------------------------
//
// refBuffer is the pre-slab WriteBuffer: a map[int64]*refLine with a
// pointer-linked LRU list. It is kept here, in the test file only, as the
// behavioural oracle for the slab rewrite: the differential tests below
// drive both implementations with identical request streams and require
// identical completion times, stats, and backend traffic.

type refLine struct {
	id         int64
	lo, hi     int
	prev, next *refLine
}

type refBuffer struct {
	cfg        Config
	backend    Backend
	lines      map[int64]*refLine
	head, tail *refLine
	dirtyBytes int64
	stats      Stats
}

func newRef(cfg Config, backend Backend) *refBuffer {
	return &refBuffer{cfg: cfg.Normalize(), backend: backend, lines: make(map[int64]*refLine)}
}

func (w *refBuffer) unlink(l *refLine) {
	if l.prev != nil {
		l.prev.next = l.next
	} else {
		w.head = l.next
	}
	if l.next != nil {
		l.next.prev = l.prev
	} else {
		w.tail = l.prev
	}
	l.prev, l.next = nil, nil
}

func (w *refBuffer) pushHead(l *refLine) {
	l.next = w.head
	if w.head != nil {
		w.head.prev = l
	}
	w.head = l
	if w.tail == nil {
		w.tail = l
	}
}

func (w *refBuffer) touch(l *refLine) {
	if w.head == l {
		return
	}
	w.unlink(l)
	w.pushHead(l)
}

func (w *refBuffer) drop(l *refLine) {
	w.unlink(l)
	delete(w.lines, l.id)
	w.dirtyBytes -= int64(l.hi - l.lo)
}

func (w *refBuffer) flushLine(now int64, l *refLine) int64 {
	off := l.id*int64(w.cfg.LineBytes) + int64(l.lo)
	n := l.hi - l.lo
	w.stats.FlushedBytes += int64(n)
	w.drop(l)
	return w.backend.Write(now, off, n)
}

func (w *refBuffer) Write(now int64, offset int64, size int) int64 {
	end := now + w.cfg.HitNS
	lb := int64(w.cfg.LineBytes)
	for size > 0 {
		id := offset / lb
		lo := int(offset - id*lb)
		n := w.cfg.LineBytes - lo
		if n > size {
			n = size
		}
		hi := lo + n
		if l, ok := w.lines[id]; ok {
			w.stats.WriteHits++
			if ov := overlap(int32(l.lo), int32(l.hi), int32(lo), int32(hi)); ov > 0 {
				w.stats.CoalescedBytes += int64(ov)
			}
			prev := l.hi - l.lo
			if lo < l.lo {
				l.lo = lo
			}
			if hi > l.hi {
				l.hi = hi
			}
			w.dirtyBytes += int64((l.hi - l.lo) - prev)
			w.touch(l)
		} else {
			w.stats.WriteMisses++
			nl := &refLine{id: id, lo: lo, hi: hi}
			w.lines[id] = nl
			w.pushHead(nl)
			w.dirtyBytes += int64(n)
		}
		offset += int64(n)
		size -= n
	}
	for w.dirtyBytes > w.cfg.CapacityBytes && w.tail != nil {
		w.stats.Evictions++
		if e := w.flushLine(now, w.tail); e > end {
			end = e
		}
	}
	return end
}

func (w *refBuffer) Read(now int64, offset int64, size int) int64 {
	lb := int64(w.cfg.LineBytes)
	first := offset / lb
	last := (offset + int64(size) - 1) / lb
	covered := true
	anyDirty := false
	for id := first; id <= last; id++ {
		l, ok := w.lines[id]
		if !ok {
			covered = false
			continue
		}
		anyDirty = true
		segLo := 0
		if id == first {
			segLo = int(offset - id*lb)
		}
		segHi := w.cfg.LineBytes
		if id == last {
			segHi = int(offset + int64(size) - id*lb)
		}
		if l.lo > segLo || l.hi < segHi {
			covered = false
		}
	}
	if covered && anyDirty {
		w.stats.ReadHits++
		for id := first; id <= last; id++ {
			w.touch(w.lines[id])
		}
		return now + w.cfg.HitNS
	}
	w.stats.ReadMisses++
	issue := now
	for id := first; id <= last; id++ {
		if l, ok := w.lines[id]; ok {
			w.stats.ReadFlushes++
			if e := w.flushLine(now, l); e > issue {
				issue = e
			}
		}
	}
	return w.backend.Read(issue, offset, size)
}

func (w *refBuffer) Drain(now int64) int64 {
	end := now
	for w.tail != nil {
		w.stats.DrainFlushes++
		if e := w.flushLine(now, w.tail); e > end {
			end = e
		}
	}
	return end
}

// --- eviction-order table test -----------------------------------------

// TestEvictionOrderSequences drives the slab buffer through scripted
// write/read sequences and asserts the exact order lines reach the
// backend — the LRU discipline the slab's intrusive lists must preserve.
func TestEvictionOrderSequences(t *testing.T) {
	const ln = 4096
	wr := func(id int64) func(*WriteBuffer) { // full-line write
		return func(w *WriteBuffer) { w.Write(0, id*ln, ln) }
	}
	touch := func(id int64) func(*WriteBuffer) { // sub-line rewrite, moves to MRU
		return func(w *WriteBuffer) { w.Write(0, id*ln, 64) }
	}
	rd := func(id int64) func(*WriteBuffer) { // covered read, also moves to MRU
		return func(w *WriteBuffer) { w.Read(0, id*ln, ln) }
	}
	drain := func(w *WriteBuffer) { w.Drain(0) }

	cases := []struct {
		name     string
		capLines int64
		ops      []func(*WriteBuffer)
		want     []int64 // backend write offsets / ln, in order
	}{
		{
			name:     "fifo-when-untouched",
			capLines: 3,
			ops:      []func(*WriteBuffer){wr(0), wr(1), wr(2), wr(3), wr(4)},
			want:     []int64{0, 1},
		},
		{
			name:     "rewrite-moves-to-mru",
			capLines: 3,
			ops:      []func(*WriteBuffer){wr(0), wr(1), wr(2), touch(0), wr(3)},
			want:     []int64{1},
		},
		{
			name:     "covered-read-moves-to-mru",
			capLines: 3,
			ops:      []func(*WriteBuffer){wr(0), wr(1), wr(2), rd(0), rd(1), wr(3)},
			want:     []int64{2},
		},
		{
			name:     "drain-flushes-lru-first",
			capLines: 4,
			ops:      []func(*WriteBuffer){wr(5), wr(2), wr(9), touch(5), drain},
			want:     []int64{2, 9, 5},
		},
		{
			name:     "reinserted-line-is-young-again",
			capLines: 2,
			ops:      []func(*WriteBuffer){wr(0), wr(1), wr(2) /* evicts 0 */, wr(0) /* evicts 1 */, drain},
			want:     []int64{0, 1, 2, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			be := &recordingBackend{}
			w, err := New(Config{CapacityBytes: tc.capLines * ln, LineBytes: ln}, be)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range tc.ops {
				op(w)
			}
			var got []int64
			for _, r := range be.writes {
				got = append(got, r.offset/ln)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("backend saw lines %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("backend saw lines %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// --- randomized differential test --------------------------------------

// TestSlabMatchesMapReference feeds identical pseudo-random request
// streams to the slab buffer and the map-backed reference and requires
// bit-identical completion times, stats, and backend traffic. Several
// capacity/line geometries exercise growth, heavy eviction, and the
// multi-line read paths.
func TestSlabMatchesMapReference(t *testing.T) {
	geoms := []struct {
		name     string
		capacity int64
		line     int
		span     int64 // address range of the workload
		ops      int
	}{
		{"tiny-hot", 4 * 1024, 1024, 16 * 1024, 6000},
		{"mid", 64 * 1024, 4096, 512 * 1024, 8000},
		{"line-512", 32 * 1024, 512, 128 * 1024, 8000},
		{"large-cold", 256 * 1024, 4096, 8 << 20, 6000},
	}
	for _, g := range geoms {
		t.Run(g.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(g.name)) * 7919))
			cfg := Config{CapacityBytes: g.capacity, LineBytes: g.line}
			slabBE, refBE := &recordingBackend{}, &recordingBackend{}
			slab, err := New(cfg, slabBE)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRef(cfg, refBE)
			now := int64(0)
			for i := 0; i < g.ops; i++ {
				off := rng.Int63n(g.span)
				size := 1 + rng.Intn(3*g.line) // spans up to 4 lines
				var se, re int64
				if rng.Intn(4) == 0 {
					se = slab.Read(now, off, size)
					re = ref.Read(now, off, size)
				} else {
					se = slab.Write(now, off, size)
					re = ref.Write(now, off, size)
				}
				if se != re {
					t.Fatalf("op %d: slab end %d, ref end %d", i, se, re)
				}
				now = se
				if slab.DirtyBytes() != ref.dirtyBytes {
					t.Fatalf("op %d: dirty %d vs %d", i, slab.DirtyBytes(), ref.dirtyBytes)
				}
				if i%1000 == 999 { // periodic mid-stream drain
					if de, re := slab.Drain(now), ref.Drain(now); de != re {
						t.Fatalf("op %d: drain end %d vs %d", i, de, re)
					}
				}
			}
			if de, re := slab.Drain(now), ref.Drain(now); de != re {
				t.Fatalf("final drain end %d vs %d", de, re)
			}
			if slab.Stats() != ref.stats {
				t.Fatalf("stats diverged:\nslab %+v\nref  %+v", slab.Stats(), ref.stats)
			}
			if len(slabBE.writes) != len(refBE.writes) || len(slabBE.reads) != len(refBE.reads) {
				t.Fatalf("traffic count diverged: %d/%d writes, %d/%d reads",
					len(slabBE.writes), len(refBE.writes), len(slabBE.reads), len(refBE.reads))
			}
			for i := range slabBE.writes {
				if slabBE.writes[i] != refBE.writes[i] {
					t.Fatalf("backend write %d diverged: %+v vs %+v", i, slabBE.writes[i], refBE.writes[i])
				}
			}
			for i := range slabBE.reads {
				if slabBE.reads[i] != refBE.reads[i] {
					t.Fatalf("backend read %d diverged: %+v vs %+v", i, slabBE.reads[i], refBE.reads[i])
				}
			}
			if slab.Lines() != 0 || slab.DirtyBytes() != 0 {
				t.Fatalf("slab not empty after drain: %d lines, %d dirty", slab.Lines(), slab.DirtyBytes())
			}
		})
	}
}

// --- steady-state allocation bound --------------------------------------

// flatBackend is the cheapest possible backend: fixed latencies, no
// recording, so allocation measurements see only the buffer itself.
type flatBackend struct{}

func (flatBackend) Write(now int64, offset int64, size int) int64 { return now + devWriteNS }
func (flatBackend) Read(now int64, offset int64, size int) int64  { return now + devReadNS }

// steadyOps drives one deterministic LCG mix of writes and reads that
// forces hits, misses, evictions, and read flushes.
func steadyOps(w *WriteBuffer, ops int, seed uint64) {
	now := int64(0)
	x := seed
	for i := 0; i < ops; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		off := int64(x>>33) % (512 * 1024)
		size := 256 + int(x%15)*512
		if x%6 == 0 {
			now = w.Read(now, off, size)
		} else {
			now = w.Write(now, off, size)
		}
	}
}

// TestWriteCacheSteadyStateZeroAllocs pins the tentpole property: once
// the slab and index are warm, the Write/Read/Drain request paths
// allocate nothing.
func TestWriteCacheSteadyStateZeroAllocs(t *testing.T) {
	w, err := New(Config{CapacityBytes: 64 * 1024, LineBytes: 4096}, flatBackend{})
	if err != nil {
		t.Fatal(err)
	}
	steadyOps(w, 20000, 99) // warm the slab and index past their final size
	w.Drain(0)
	if avg := testing.AllocsPerRun(200, func() {
		steadyOps(w, 50, 7)
		w.Drain(0)
	}); avg != 0 {
		t.Fatalf("steady-state write cache allocates %.2f/run, want 0", avg)
	}
}

// BenchmarkWriteCacheSteadyState measures the warm request path; the
// allocation report is the regression guard for the slab design.
func BenchmarkWriteCacheSteadyState(b *testing.B) {
	w, err := New(Config{CapacityBytes: 64 * 1024, LineBytes: 4096}, flatBackend{})
	if err != nil {
		b.Fatal(err)
	}
	steadyOps(w, 20000, 99)
	w.Drain(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steadyOps(w, 100, uint64(i)|1)
	}
	b.StopTimer()
	w.Drain(0)
}
