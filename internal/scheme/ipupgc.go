package scheme

import (
	"fmt"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/sim"
)

// PGCConfig parameterises the preemptive incremental garbage collector.
type PGCConfig struct {
	// Watermark arms incremental cleaning while the SLC free-page
	// fraction sits below it. It should exceed the emergency trigger
	// (Config.GCThresholdFraction) so cleaning starts before the cache is
	// actually full. Zero disables preemption entirely, making IPU-PGC
	// metric-identical to plain IPU.
	Watermark float64
	// StepPages bounds the victim pages processed per host write request
	// — the per-request stall bound of the time-efficient GC. Zero means
	// defaultPGCStepPages.
	StepPages int
}

const defaultPGCStepPages = 2

// DefaultPGCConfig is the registry's IPU-PGC parameterisation: arm at
// three times the emergency threshold (15% free with the Table 2 default
// of 5%) and clean two victim pages per host write.
func DefaultPGCConfig() PGCConfig {
	return PGCConfig{Watermark: 0.15, StepPages: defaultPGCStepPages}
}

// Validate reports inconsistent preemption parameters.
func (c *PGCConfig) Validate() error {
	if c.Watermark < 0 || c.Watermark >= 1 {
		return fmt.Errorf("scheme: PGC watermark %v out of [0, 1)", c.Watermark)
	}
	if c.StepPages < 0 {
		return fmt.Errorf("scheme: negative PGC step")
	}
	return nil
}

// IPUPGC is IPU with a time-efficient preemptive garbage collector
// (after arXiv:1807.09313): instead of waiting for the emergency
// threshold and then cleaning whole victims inside one request, a
// free-page watermark arms an incremental collector that moves a bounded
// number of victim pages per host write, interleaving reclamation with
// foreground traffic. The emergency collector remains as a backstop; with
// preemption keeping free pages above its trigger, it rarely fires, which
// is exactly the stall-time reduction the policy buys.
//
// Placement, victim policy and movement are IPU's own (placeChunks,
// ISRVictim, MoveIPU per page), so with Watermark zero the scheme
// replays bit-identically to IPU.
type IPUPGC struct {
	ipu *IPU
	pgc PGCConfig

	// victim is the block being incrementally cleaned (-1 when none);
	// victimErase snapshots its erase count at selection so a victim
	// recycled by the emergency collector between steps is dropped, not
	// double-erased. cursor is the next page to process.
	victim      int
	victimErase int
	cursor      int
	// pendingUsed/pendingTotal hold the victim's Fig. 9 utilisation
	// sample from selection time, committed only if this collector (not
	// the emergency one) completes the victim.
	pendingUsed  int64
	pendingTotal int64
}

// NewIPUPGC builds IPU with the preemptive collector.
func NewIPUPGC(cfg *flash.Config, em *errmodel.Model, pgc PGCConfig) (*IPUPGC, error) {
	if err := pgc.Validate(); err != nil {
		return nil, err
	}
	if pgc.StepPages == 0 {
		pgc.StepPages = defaultPGCStepPages
	}
	u, err := NewIPU(cfg, em)
	if err != nil {
		return nil, err
	}
	return &IPUPGC{ipu: u, pgc: pgc, victim: -1}, nil
}

// Name implements Scheme.
func (g *IPUPGC) Name() string { return "IPU-PGC" }

// Device implements Scheme.
func (g *IPUPGC) Device() *Device { return g.ipu.dev }

// Metrics implements Scheme.
func (g *IPUPGC) Metrics() *Metrics { return g.ipu.dev.Met }

// Config returns the active preemption parameters.
func (g *IPUPGC) Config() PGCConfig { return g.pgc }

// Clone implements Scheme.
func (g *IPUPGC) Clone() Scheme {
	return &IPUPGC{
		ipu:          g.ipu.Clone().(*IPU),
		pgc:          g.pgc,
		victim:       g.victim,
		victimErase:  g.victimErase,
		cursor:       g.cursor,
		pendingUsed:  g.pendingUsed,
		pendingTotal: g.pendingTotal,
	}
}

// Restore implements Scheme.
func (g *IPUPGC) Restore(from Scheme) bool {
	t, ok := from.(*IPUPGC)
	if !ok || g.pgc != t.pgc || !g.ipu.Restore(t.ipu) {
		return false
	}
	g.victim, g.victimErase, g.cursor = t.victim, t.victimErase, t.cursor
	g.pendingUsed, g.pendingTotal = t.pendingUsed, t.pendingTotal
	return true
}

// Write implements Scheme: IPU placement, then the bounded preemptive
// step, then the emergency collector as backstop.
func (g *IPUPGC) Write(now int64, offset int64, size int) int64 {
	d := g.ipu.dev
	end := g.ipu.placeChunks(now, offset, size)
	g.preemptiveStep(now)
	d.MaybeGCSLC(now, g.ipu.victimFn, MoveIPU)
	d.NoteHostWrite(now, offset, size)
	d.RecordWrite(now, end)
	return end
}

// Read implements Scheme.
func (g *IPUPGC) Read(now int64, offset int64, size int) int64 {
	return g.ipu.dev.ReadReq(now, offset, size)
}

// preemptiveStep advances the incremental collector by at most StepPages
// data-holding victim pages, at background (host-subordinate) priority.
// When the victim runs out of valid data it is verified reclaimable,
// erased, and returned to the free pool.
func (g *IPUPGC) preemptiveStep(now int64) {
	d := g.ipu.dev
	if g.pgc.Watermark <= 0 || d.slcGCActive {
		return
	}
	// A victim the emergency collector recycled between steps is stale:
	// its erase count moved on. Drop it rather than touch reused pages.
	if g.victim >= 0 && d.Arr.Block(g.victim).EraseCount != g.victimErase {
		g.victim = -1
	}
	if g.victim < 0 {
		if d.slcFreePages >= int(g.pgc.Watermark*float64(d.slcTotalPages)) {
			return
		}
		t0 := d.Eng.ScanNS()
		v := g.ipu.victimFn(d, now, d.openExcludes())
		d.Met.GCScanNS += d.Eng.ScanNS() - t0
		if v < 0 {
			return
		}
		b := d.Arr.Block(v)
		g.victim = v
		g.victimErase = b.EraseCount
		g.cursor = 0
		g.pendingUsed = int64(b.UsedSlots())
		g.pendingTotal = int64(b.TotalSlots())
	}

	d.slcGCActive = true
	wasBackground := d.gcBackground
	d.gcBackground = true
	defer func() {
		d.slcGCActive = false
		d.gcBackground = wasBackground
	}()

	b := d.Arr.Block(g.victim)
	level := b.Level
	for steps := 0; steps < g.pgc.StepPages; {
		if g.cursor >= len(b.Pages) {
			if b.ValidSub == 0 {
				break
			}
			// Intra-page updates landed behind the cursor while the
			// victim sat mid-clean between host writes: sweep again.
			g.cursor = 0
		}
		if moveIPUPage(d, now, g.victim, level, g.cursor) > 0 {
			steps++
		}
		g.cursor++
	}

	if b.ValidSub == 0 && b.ProgramOps > 0 {
		// Preemptive GC must never reclaim a block containing live
		// subpages: verify against ground truth before the erase.
		if d.Check != nil {
			must(d.Check.CheckReclaim(now, g.victim))
		}
		d.Met.SLCGCs++
		d.Met.PreemptiveGCs++
		d.Met.GCVictimUsedSub += g.pendingUsed
		d.Met.GCVictimTotalSub += g.pendingTotal
		freeBefore := b.FreePages()
		must(d.Arr.Erase(g.victim))
		d.perform(now, g.victim, sim.OpErase, 0, 0)
		d.blockReadyAt[g.victim] = d.Eng.ChipAvailableAt(d.Arr.ChipOf(g.victim))
		d.slcFreePages += len(b.Pages) - freeBefore
		d.slcFree = append(d.slcFree, g.victim)
		g.victim = -1
		d.afterGC(now, "preemptive-gc")
	}
}

var _ Scheme = (*IPUPGC)(nil)
