package scheme

import (
	"testing"

	"ipusim/internal/check"
	"ipusim/internal/errmodel"
)

func newPGC(t *testing.T, pgc PGCConfig) *IPUPGC {
	t.Helper()
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPUPGC(&cfg, &em, pgc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPGCConfigValidate(t *testing.T) {
	bad := []PGCConfig{
		{Watermark: -0.1, StepPages: 2},
		{Watermark: 1.0, StepPages: 2},
		{Watermark: 0.15, StepPages: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	def := DefaultPGCConfig()
	if err := def.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Zero StepPages defaults at construction.
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPUPGC(&cfg, &em, PGCConfig{Watermark: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().StepPages != defaultPGCStepPages {
		t.Errorf("StepPages = %d, want default %d", s.Config().StepPages, defaultPGCStepPages)
	}
}

// TestPGCWatermarkZeroIsIdenticalToIPU is the cross-scheme differential:
// with preemption disabled, IPU-PGC must replay bit-identically to plain
// IPU — same latency sums, same erase counts, same BER samples, same GC
// activity. Any divergence means the preemptive path leaks into the
// disabled configuration.
func TestPGCWatermarkZeroIsIdenticalToIPU(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	u, err := NewIPU(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := tinyConfig()
	g, err := NewIPUPGC(&cfg2, &em, PGCConfig{Watermark: 0, StepPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, u, 5000, 29)
	driveWorkload(t, g, 5000, 29)
	mu, mg := u.Metrics(), g.Metrics()
	if mu.SLCGCs == 0 {
		t.Fatal("workload did not trigger GC; identity check ineffective")
	}
	type pair struct {
		name string
		a, b int64
	}
	for _, p := range []pair{
		{"AllLatency.Sum", mu.AllLatency.Sum, mg.AllLatency.Sum},
		{"WriteLatency.Sum", mu.WriteLatency.Sum, mg.WriteLatency.Sum},
		{"ReadLatency.Sum", mu.ReadLatency.Sum, mg.ReadLatency.Sum},
		{"SLCGCs", mu.SLCGCs, mg.SLCGCs},
		{"GCMovedSubpages", mu.GCMovedSubpages, mg.GCMovedSubpages},
		{"GCScanNS", mu.GCScanNS, mg.GCScanNS},
		{"SLCErases", u.Device().Arr.SLCErases, g.Device().Arr.SLCErases},
		{"MLCPrograms", u.Device().Arr.MLCPrograms, g.Device().Arr.MLCPrograms},
		{"PartialPrograms", u.Device().Arr.PartialPrograms, g.Device().Arr.PartialPrograms},
	} {
		if p.a != p.b {
			t.Errorf("%s diverged: IPU %d, IPU-PGC(0) %d", p.name, p.a, p.b)
		}
	}
	if mu.ReadBER.Mean() != mg.ReadBER.Mean() {
		t.Errorf("ReadBER diverged: %g vs %g", mu.ReadBER.Mean(), mg.ReadBER.Mean())
	}
	if mg.PreemptiveGCs != 0 {
		t.Errorf("disabled collector ran %d preemptive GCs", mg.PreemptiveGCs)
	}
}

// TestPGCPreemptsEmergencyGC checks the policy does its job: with the
// watermark armed above the emergency trigger, incremental cleaning
// reclaims blocks before the emergency collector has to, so preemptive
// completions appear and emergency stalls shrink relative to plain IPU.
func TestPGCPreemptsEmergencyGC(t *testing.T) {
	g := newPGC(t, DefaultPGCConfig())
	g.Device().AttachChecker(check.Full)
	driveWorkload(t, g, 6000, 31)
	m := g.Metrics()
	if m.PreemptiveGCs == 0 {
		t.Fatal("armed collector completed no preemptive reclaims")
	}
	if m.SLCGCs < m.PreemptiveGCs {
		t.Errorf("SLCGCs %d < PreemptiveGCs %d: completions double-counted?", m.SLCGCs, m.PreemptiveGCs)
	}
	if err := g.Device().Check.CheckFinal(); err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, g.Device())
}

func TestPGCCloneAndRestore(t *testing.T) {
	g := newPGC(t, DefaultPGCConfig())
	driveWorkload(t, g, 3000, 37)
	c := g.Clone().(*IPUPGC)
	if c.victim != g.victim || c.cursor != g.cursor {
		t.Fatal("clone did not copy collector state")
	}
	// Diverge and restore: collector state must snap back.
	victim, cursor := c.victim, c.cursor
	driveWorkload(t, g, 1000, 41)
	if !g.Restore(c) {
		t.Fatal("restore refused")
	}
	if g.victim != victim || g.cursor != cursor {
		t.Error("restore did not reset collector state")
	}
	// A different watermark must refuse to restore.
	other := newPGC(t, PGCConfig{Watermark: 0.25, StepPages: 2})
	if g.Restore(other) {
		t.Error("restore accepted mismatched preemption parameters")
	}
}
