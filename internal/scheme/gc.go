package scheme

import (
	"math"
	"time"

	"ipusim/internal/flash"
	"ipusim/internal/sim"
)

// VictimSelector picks the next SLC GC victim block, or -1 when no block
// is worth collecting. exclude filters blocks that must not be chosen
// (open allocation points).
type VictimSelector func(d *Device, now int64, exclude func(int) bool) int

// MoveValid relocates a victim block's valid data ahead of its erase.
type MoveValid func(d *Device, now int64, victim int)

// maxGCVictimsPerTrigger bounds the work of one GC invocation so a
// pathological all-hot cache cannot spin; the trigger re-fires on the next
// write if space is still low.
const maxGCVictimsPerTrigger = 2

// gcHysteresis is the collect-until multiple of the trigger threshold.
// Collecting past the trigger point keeps a few spare erased blocks in the
// free pool, so a freshly opened block is rarely still mid-erase when the
// next host write lands on its chip.
const gcHysteresis = 1

// MaybeGCSLC runs the SLC-cache garbage collector when the free-page
// fraction has fallen below the configured threshold (Table 2: 5%),
// using the scheme's victim selector and movement rule. Victim-selection
// time is measured for the Fig. 12 overhead comparison.
func (d *Device) MaybeGCSLC(now int64, selectVictim VictimSelector, move MoveValid) {
	if d.slcGCActive {
		return
	}
	threshold := int(float64(d.slcTotalPages) * d.Cfg.GCThresholdFraction)
	if d.slcFreePages >= threshold {
		return
	}
	target := threshold * gcHysteresis
	d.slcGCActive = true
	wasBackground := d.gcBackground
	d.gcBackground = true
	defer func() {
		d.slcGCActive = false
		d.gcBackground = wasBackground
	}()
	for iter := 0; iter < maxGCVictimsPerTrigger && d.slcFreePages < target; iter++ {
		t0 := time.Now()
		v := selectVictim(d, now, d.isOpenSLC)
		d.Met.GCScanNS += time.Since(t0).Nanoseconds()
		if v < 0 {
			return
		}
		b := d.Arr.Block(v)
		d.Met.SLCGCs++
		d.Met.GCVictimUsedSub += int64(b.UsedSlots())
		d.Met.GCVictimTotalSub += int64(b.TotalSlots())
		move(d, now, v)
		if b.ValidSub != 0 {
			panic("scheme: GC movement left valid data in victim")
		}
		freeBefore := b.FreePages()
		must(d.Arr.Erase(v))
		d.perform(now, v, sim.OpErase, 0, 0)
		d.blockReadyAt[v] = d.Eng.ChipAvailableAt(d.Arr.ChipOf(v))
		d.slcFreePages += len(b.Pages) - freeBefore
		d.slcFree = append(d.slcFree, v)
		d.afterGC(now, "slc-gc")
	}
}

// GreedyVictim is the conventional policy (Baseline and MGA): the block
// with the most reclaimable subpages — invalid plus dead — wins. Because
// Baseline and MGA flush every valid subpage to MLC, any used block frees
// a whole block; reclaimable count breaks the tie toward cheap victims.
func GreedyVictim(d *Device, now int64, exclude func(int) bool) int {
	best, bestScore := -1, -1
	for _, id := range d.Arr.SLCBlockIDs() {
		if exclude(id) {
			continue
		}
		b := d.Arr.Block(id)
		d.Met.GCBlocksScanned++
		if b.UsedSlots() == 0 {
			continue
		}
		// Only full blocks are closed; prefer maximal garbage.
		score := b.InvalidSub + b.DeadSub
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// ISRVictim implements the paper's Eq. 1–2: the invalid subpage ratio
// ISR_i = (IS_i + IS'_i) / TS_i, where IS counts reclaimable subpages and
// IS' adds the coldness weight 1 - exp(-t_ij / T) of every valid,
// never-updated subpage. T is the mean age of all never-updated valid
// subpages in the cache (the "average access interval time"), so data that
// has sat unwritten for longer than average weighs toward eviction. Blocks
// rich in garbage or in cold valid data are preferred, which both frees
// space and steers cold data toward the MLC region.
func ISRVictim(d *Device, now int64, exclude func(int) bool) int {
	// Pass 1: the cache-wide mean age T of never-updated valid subpages,
	// from the per-block aggregates flash maintains (Block.JCount/JSumWT).
	var sumAge, count int64
	for _, id := range d.Arr.SLCBlockIDs() {
		if exclude(id) {
			continue
		}
		b := d.Arr.Block(id)
		d.Met.GCBlocksScanned++
		if b.UsedSlots() == 0 || b.JCount == 0 {
			continue
		}
		sumAge += now*int64(b.JCount) - b.JSumWT
		count += int64(b.JCount)
	}
	t := 1.0
	if count > 0 {
		t = float64(sumAge) / float64(count)
		if t <= 0 {
			t = 1
		}
	}

	// Pass 2: score candidates by Eq. 1, evaluating the coldness weight at
	// each block's mean data age: IS' = |J_i| * (1 - exp(-meanAge_i / T)).
	best := -1
	bestScore := 0.0
	for _, id := range d.Arr.SLCBlockIDs() {
		if exclude(id) {
			continue
		}
		b := d.Arr.Block(id)
		if b.UsedSlots() == 0 {
			continue
		}
		isPrime := 0.0
		if b.JCount > 0 {
			meanAge := float64(now) - float64(b.JSumWT)/float64(b.JCount)
			if meanAge < 0 {
				meanAge = 0
			}
			isPrime = float64(b.JCount) * (1 - math.Exp(-meanAge/t))
		}
		score := (float64(b.InvalidSub+b.DeadSub) + isPrime) / float64(b.TotalSlots())
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// MoveFlushAll is the Baseline/MGA movement rule: every valid subpage is
// flushed to the MLC region, frame groups consolidated page-by-page.
func MoveFlushAll(d *Device, now int64, victim int) {
	b := d.Arr.Block(victim)
	slots := d.Cfg.SlotsPerPage()
	var frameOrder []int32
	frames := make(map[int32][]flash.LSN)
	for p := range b.Pages {
		pg := &b.Pages[p]
		valid := 0
		for s := range pg.Slots {
			if pg.Slots[s].State == flash.SubValid {
				valid++
				f := pg.Slots[s].LSN.Frame(slots)
				if _, seen := frames[f]; !seen {
					frameOrder = append(frameOrder, f)
				}
				frames[f] = append(frames[f], pg.Slots[s].LSN)
			}
		}
		if valid > 0 {
			d.perform(now, victim, sim.OpRead, valid, 0)
		}
	}
	for _, f := range frameOrder {
		d.Met.GCMovedSubpages += int64(len(frames[f]))
		d.WriteFrameMLC(now, frames[f])
	}
}

// MoveIPU is the paper's degraded/sideways movement (Fig. 4, Algorithm 1
// lines 14–19): pages that were updated in place keep their level; pages
// never updated move one level down — and out of the SLC cache entirely
// when they fall below Work level. Valid data is moved frame by frame, so
// pages that hold several requests' data (the adaptive-combine extension)
// relocate correctly too.
func MoveIPU(d *Device, now int64, victim int) {
	b := d.Arr.Block(victim)
	level := b.Level
	slots := d.Cfg.SlotsPerPage()
	for p := range b.Pages {
		pg := &b.Pages[p]
		var frameOrder []int32
		frames := make(map[int32][]flash.LSN)
		valid := 0
		for s := range pg.Slots {
			if pg.Slots[s].State != flash.SubValid {
				continue
			}
			valid++
			f := pg.Slots[s].LSN.Frame(slots)
			if _, seen := frames[f]; !seen {
				frameOrder = append(frameOrder, f)
			}
			frames[f] = append(frames[f], pg.Slots[s].LSN)
		}
		if valid == 0 {
			continue
		}
		d.perform(now, victim, sim.OpRead, valid, 0)
		d.Met.GCMovedSubpages += int64(valid)
		dest := level
		if pg.ProgramCount <= 1 {
			dest-- // never updated here: degrade
		}
		for _, f := range frameOrder {
			lsns := frames[f]
			if dest <= flash.LevelHighDensity {
				d.WriteFrameMLC(now, lsns)
				continue
			}
			if _, ok := d.WriteChunkSLC(now, dest, lsns, false); !ok {
				// Cache exhausted mid-GC: evict to MLC rather than stall.
				d.WriteFrameMLC(now, lsns)
			}
		}
	}
}
