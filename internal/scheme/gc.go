package scheme

import (
	"math"
	"math/bits"

	"ipusim/internal/flash"
	"ipusim/internal/sim"
)

// VictimSelector picks the next SLC GC victim block, or -1 when no block
// is worth collecting. excl holds the blocks that must not be chosen (open
// allocation points, scheme-pinned pages); nil excludes nothing.
type VictimSelector func(d *Device, now int64, excl *ExcludeSet) int

// MoveValid relocates a victim block's valid data ahead of its erase.
type MoveValid func(d *Device, now int64, victim int)

// maxGCVictimsPerTrigger bounds the work of one GC invocation so a
// pathological all-hot cache cannot spin; the trigger re-fires on the next
// write if space is still low.
const maxGCVictimsPerTrigger = 2

// gcHysteresis is the collect-until multiple of the trigger threshold.
// Collecting past the trigger point keeps a few spare erased blocks in the
// free pool, so a freshly opened block is rarely still mid-erase when the
// next host write lands on its chip.
const gcHysteresis = 1

// MaybeGCSLC runs the SLC-cache garbage collector when the free-page
// fraction has fallen below the configured threshold (Table 2: 5%),
// using the scheme's victim selector and movement rule. Victim-selection
// cost is charged to the engine's deterministic scan clock and accumulated
// in Metrics.GCScanNS for the Fig. 12 overhead comparison.
func (d *Device) MaybeGCSLC(now int64, selectVictim VictimSelector, move MoveValid) {
	if d.slcGCActive {
		return
	}
	threshold := int(float64(d.slcTotalPages) * d.Cfg.GCThresholdFraction)
	if d.slcFreePages >= threshold {
		return
	}
	target := threshold * gcHysteresis
	d.slcGCActive = true
	wasBackground := d.gcBackground
	d.gcBackground = true
	defer func() {
		d.slcGCActive = false
		d.gcBackground = wasBackground
	}()
	for iter := 0; iter < maxGCVictimsPerTrigger && d.slcFreePages < target; iter++ {
		t0 := d.Eng.ScanNS()
		v := selectVictim(d, now, d.openExcludes())
		d.Met.GCScanNS += d.Eng.ScanNS() - t0
		if v < 0 {
			return
		}
		b := d.Arr.Block(v)
		d.Met.SLCGCs++
		d.Met.GCVictimUsedSub += int64(b.UsedSlots())
		d.Met.GCVictimTotalSub += int64(b.TotalSlots())
		move(d, now, v)
		if b.ValidSub != 0 {
			panic("scheme: GC movement left valid data in victim")
		}
		freeBefore := b.FreePages()
		must(d.Arr.Erase(v))
		d.perform(now, v, sim.OpErase, 0, 0)
		d.blockReadyAt[v] = d.Eng.ChipAvailableAt(d.Arr.ChipOf(v))
		d.slcFreePages += len(b.Pages) - freeBefore
		d.slcFree = append(d.slcFree, v)
		d.afterGC(now, "slc-gc")
	}
}

// GreedyVictim is the conventional policy (Baseline and MGA): the block
// with the most reclaimable subpages — invalid plus dead — wins. Because
// Baseline and MGA flush every valid subpage to MLC, any used block frees
// a whole block; reclaimable count breaks the tie toward cheap victims.
// Candidates come from the array's used-block bitset, so the scan touches
// only blocks actually holding data.
func GreedyVictim(d *Device, now int64, excl *ExcludeSet) int {
	best, bestScore := -1, -1
	visited := 0
	for w, word := range d.Arr.UsedSLCWords() {
		for word != 0 {
			i := bits.TrailingZeros64(word)
			word &^= 1 << i
			id := w<<6 | i
			visited++
			if excl.Has(id) {
				continue
			}
			b := d.Arr.Block(id)
			// Only full blocks are closed; prefer maximal garbage.
			score := b.InvalidSub + b.DeadSub
			if score > bestScore {
				best, bestScore = id, score
			}
		}
	}
	d.Eng.NoteScan(visited)
	d.Met.GCBlocksScanned += int64(len(d.Arr.SLCBlockIDs()) - excl.Len())
	return best
}

// ISRVictim implements the paper's Eq. 1–2: the invalid subpage ratio
// ISR_i = (IS_i + IS'_i) / TS_i, where IS counts reclaimable subpages and
// IS' adds the coldness weight 1 - exp(-t_ij / T) of every valid,
// never-updated subpage. T is the mean age of all never-updated valid
// subpages in the cache (the "average access interval time"), so data that
// has sat unwritten for longer than average weighs toward eviction. Blocks
// rich in garbage or in cold valid data are preferred, which both frees
// space and steers cold data toward the MLC region.
//
// T comes from the array-wide J aggregates flash maintains incrementally
// (Array.SLCJCount/SLCJSumWT) minus the excluded blocks' contributions,
// so the old per-trigger rescan of every SLC block is gone; only the
// candidate set (used blocks) is walked to evaluate Eq. 1.
func ISRVictim(d *Device, now int64, excl *ExcludeSet) int {
	sumJ := d.Arr.SLCJCount
	sumWT := d.Arr.SLCJSumWT
	for _, id := range excl.IDs() {
		b := d.Arr.Block(id)
		sumJ -= int64(b.JCount)
		sumWT -= b.JSumWT
	}
	t := 1.0
	if sumJ > 0 {
		t = float64(now*sumJ-sumWT) / float64(sumJ)
		if t <= 0 {
			t = 1
		}
	}
	d.Met.GCBlocksScanned += int64(len(d.Arr.SLCBlockIDs()) - excl.Len())

	// Score candidates by Eq. 1, evaluating the coldness weight at each
	// block's mean data age: IS' = |J_i| * (1 - exp(-meanAge_i / T)).
	best := -1
	bestScore := 0.0
	visited := excl.Len()
	for w, word := range d.Arr.UsedSLCWords() {
		for word != 0 {
			i := bits.TrailingZeros64(word)
			word &^= 1 << i
			id := w<<6 | i
			visited++
			if excl.Has(id) {
				continue
			}
			b := d.Arr.Block(id)
			isPrime := 0.0
			if b.JCount > 0 {
				meanAge := float64(now) - float64(b.JSumWT)/float64(b.JCount)
				if meanAge < 0 {
					meanAge = 0
				}
				isPrime = float64(b.JCount) * (1 - math.Exp(-meanAge/t))
			}
			score := (float64(b.InvalidSub+b.DeadSub) + isPrime) / float64(b.TotalSlots())
			if score > bestScore {
				best, bestScore = id, score
			}
		}
	}
	d.Eng.NoteScan(visited)
	return best
}

// frameGroup is one logical frame's valid subpages gathered from a victim
// block. A frame has at most SlotsPerPage (≤ 8) distinct subpages.
type frameGroup struct {
	frame int32
	n     int
	lsns  [8]flash.LSN
}

// frameCollector groups a victim block's valid subpages by logical frame
// in first-seen order, replacing the per-victim map allocations of the old
// movement code. The mark/idx arrays are indexed by frame ID and epoch-
// stamped, so reset is O(1) and steady-state collection allocates nothing.
type frameCollector struct {
	epoch  uint32
	mark   []uint32
	idx    []int32
	groups []frameGroup
}

// reset empties the collector, growing the frame index to cover at least
// frames entries.
func (c *frameCollector) reset(frames int) {
	if len(c.mark) < frames {
		c.mark = make([]uint32, frames)
		c.idx = make([]int32, frames)
		c.epoch = 0
	}
	c.epoch++
	if c.epoch == 0 {
		for i := range c.mark {
			c.mark[i] = 0
		}
		c.epoch = 1
	}
	c.groups = c.groups[:0]
}

// add appends one valid subpage to its frame's group, creating the group
// on first sight. Frames beyond the indexed range (possible only with
// out-of-space LSNs in synthetic tests) grow the index.
func (c *frameCollector) add(f int32, l flash.LSN) {
	if int(f) >= len(c.mark) {
		mark := make([]uint32, f+1)
		idx := make([]int32, f+1)
		copy(mark, c.mark)
		copy(idx, c.idx)
		c.mark, c.idx = mark, idx
	}
	var g *frameGroup
	if c.mark[f] == c.epoch {
		g = &c.groups[c.idx[f]]
	} else {
		c.mark[f] = c.epoch
		c.idx[f] = int32(len(c.groups))
		c.groups = append(c.groups, frameGroup{frame: f})
		g = &c.groups[len(c.groups)-1]
	}
	g.lsns[g.n] = l
	g.n++
}

// MoveFlushAll is the Baseline/MGA movement rule: every valid subpage is
// flushed to the MLC region, frame groups consolidated page-by-page.
func MoveFlushAll(d *Device, now int64, victim int) {
	b := d.Arr.Block(victim)
	slots := d.Cfg.SlotsPerPage()
	c := &d.slcMoveFrames
	c.reset(d.frames)
	for p := range b.Pages {
		pg := &b.Pages[p]
		valid := 0
		for s := range pg.Slots {
			if pg.Slots[s].State == flash.SubValid {
				valid++
				c.add(pg.Slots[s].LSN.Frame(slots), pg.Slots[s].LSN)
			}
		}
		if valid > 0 {
			d.perform(now, victim, sim.OpRead, valid, 0)
		}
	}
	for i := range c.groups {
		g := &c.groups[i]
		d.Met.GCMovedSubpages += int64(g.n)
		d.WriteFrameMLC(now, g.lsns[:g.n])
	}
}

// MoveIPU is the paper's degraded/sideways movement (Fig. 4, Algorithm 1
// lines 14–19): pages that were updated in place keep their level; pages
// never updated move one level down — and out of the SLC cache entirely
// when they fall below Work level. Valid data is moved frame by frame, so
// pages that hold several requests' data (the adaptive-combine extension)
// relocate correctly too. A page's slots span at most SlotsPerPage frames,
// so grouping uses the device's fixed page-frame scratch.
func MoveIPU(d *Device, now int64, victim int) {
	b := d.Arr.Block(victim)
	level := b.Level
	for p := range b.Pages {
		moveIPUPage(d, now, victim, level, p)
	}
}

// moveIPUPage relocates one victim page's valid data under the Fig. 4
// degraded-movement rule and returns the number of subpages moved. It is
// the per-page unit of MoveIPU, shared with the preemptive incremental
// collector, which processes a bounded number of pages per host request.
func moveIPUPage(d *Device, now int64, victim int, level flash.BlockLevel, p int) int {
	b := d.Arr.Block(victim)
	slots := d.Cfg.SlotsPerPage()
	pg := &b.Pages[p]
	fr := &d.pageFrames
	nf := 0
	valid := 0
	for s := range pg.Slots {
		if pg.Slots[s].State != flash.SubValid {
			continue
		}
		valid++
		l := pg.Slots[s].LSN
		f := l.Frame(slots)
		gi := -1
		for i := 0; i < nf; i++ {
			if fr[i].frame == f {
				gi = i
				break
			}
		}
		if gi < 0 {
			fr[nf] = frameGroup{frame: f}
			gi = nf
			nf++
		}
		fr[gi].lsns[fr[gi].n] = l
		fr[gi].n++
	}
	if valid == 0 {
		return 0
	}
	d.perform(now, victim, sim.OpRead, valid, 0)
	d.Met.GCMovedSubpages += int64(valid)
	dest := level
	if pg.ProgramCount <= 1 {
		dest-- // never updated here: degrade
	}
	for i := 0; i < nf; i++ {
		lsns := fr[i].lsns[:fr[i].n]
		if dest <= flash.LevelHighDensity {
			d.WriteFrameMLC(now, lsns)
			continue
		}
		if _, ok := d.WriteChunkSLC(now, dest, lsns, false); !ok {
			// Cache exhausted mid-GC: evict to MLC rather than stall.
			d.WriteFrameMLC(now, lsns)
		}
	}
	return valid
}
