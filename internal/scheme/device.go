package scheme

import (
	"fmt"
	"time"

	"ipusim/internal/check"
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/ftl"
	"ipusim/internal/sim"
)

// Device bundles the flash array, timing engine, error model and logical
// mapping with the allocators the schemes share: the SLC-cache block pools
// (with per-level open blocks) and the MLC region (with its own greedy GC).
type Device struct {
	Cfg *flash.Config
	Arr *flash.Array
	Eng *sim.Engine
	Err *errmodel.Model
	Map *ftl.Map
	Met *Metrics

	// SLC cache state. Open blocks are striped: one allocation point per
	// channel and level, so consecutive writes exploit channel parallelism
	// the way SSDsim's dynamic allocation does.
	slcFree       []int                     // erased SLC blocks
	open          [flash.LevelHot + 1][]int // open block per level and stripe, -1 = none
	rr            [flash.LevelHot + 1]int   // round-robin cursor per level
	slcFreePages  int                       // never-programmed pages across the SLC region
	slcTotalPages int
	slcGCActive   bool

	// MLC region state, striped like the SLC open blocks.
	mlcOpen     []int
	mlcRR       int
	mlcFree     []int
	mlcGCActive bool

	// gcBackground routes flash operations to the engine's background
	// (host-subordinate) track while a garbage collection is running.
	gcBackground bool

	// blockReadyAt gates reuse of erased blocks: a block erased in the
	// background cannot be programmed before its erase (and the chip's
	// earlier backlog) completes. While no erased SLC block is ready, host
	// writes overflow to the MLC region — the fragmentation penalty the
	// paper describes as the cache failing to absorb requests.
	blockReadyAt []int64

	// Occupancy gauges for the Fig. 11 memory model.
	slcValidSub       int64 // valid subpages resident in SLC
	slcPagesWithValid int64 // SLC pages holding at least one valid subpage

	// Reusable hot-path scratch, so steady-state Write/Read requests and
	// GC victims allocate nothing. The fixed-size buffers are bounded by
	// flash.Config.Validate's SlotsPerPage() <= 8 cap.
	lsnBuf   []flash.LSN   // LSNRange result, reused per request
	chunkBuf [][]flash.LSN // Chunks result: views into lsnBuf
	writes   [8]flash.SlotWrite
	gather   [8]flash.LSN
	deadBuf  [8]int

	// GC scratch: the reusable exclusion set, the frame collectors of the
	// two movement paths (separate instances because SLC movement nests
	// MLC GC), and MoveIPU's per-page frame groups.
	excl          ExcludeSet
	frames        int // logical frame count, sizes the collectors
	slcMoveFrames frameCollector
	mlcMoveFrames frameCollector
	pageFrames    [8]frameGroup

	// Read-path scratch: page groups and unmapped-frame tallies.
	readGroups  []readGroup
	unmappedFr  []int32
	unmappedCnt []int

	// Read-path memos. berMemo caches the Fig. 2 base rate per erase
	// count ([0] conventional, [1] partial); unmappedCost caches the
	// constant ECC cost of reading never-written data. Both are pure
	// caches of deterministic functions of the immutable (Cfg, Err) pair,
	// so sharing them between the serial and pipelined read paths cannot
	// change any result bit.
	berMemo        [2][]float64
	unmappedCost   errmodel.ReadCost
	unmappedCostOK bool

	// pipe, when non-nil, routes host reads through the intra-run
	// parallel pipeline (see readpipe.go). Managed by StartReadPipeline/
	// StopReadPipeline; always nil on clones, templates and pooled
	// devices.
	pipe *readPipe

	// onReadCommit, when non-nil, receives each pipelined host read's true
	// completion time (including the deferred ECC extra) as its result
	// commits — always in dispatch order. Closed-loop drivers use it to
	// resolve queue-depth gates without flushing the whole pipeline.
	// dispatchedReads counts host read requests handed to the pipeline, so
	// a front-end can tell a DRAM-served read (no device dispatch) from one
	// whose completion will arrive through the hook. Both are per-run
	// transient state: nil/zero on clones, templates and pooled devices.
	onReadCommit    func(end int64)
	dispatchedReads int64

	// Check, when non-nil, is the attached invariant checker: host writes,
	// trims and reads are mirrored into its shadow store, and every GC
	// event triggers a structural sweep (at check.Full). Violations panic
	// through must — a checker failure is a simulator bug, never a
	// workload condition.
	Check *check.Checker

	// TestHooks are test-only fault-injection points; production code
	// must leave them nil.
	TestHooks struct {
		// AfterHostWrite runs after a host write completed and was noted
		// in the checker. Tests use it to corrupt state mid-run and
		// assert the harness catches the damage.
		AfterHostWrite func(d *Device, now int64)
	}
}

// perform schedules one flash operation, routing it to the background
// track during garbage collection so GC work drains in idle gaps instead
// of stalling host requests (until the per-chip backlog cap). The cell
// mode comes from the block's current state, not the ID partition, so
// operations on in-place switched blocks get MLC timing.
func (d *Device) perform(now int64, blockID int, kind sim.OpKind, subpages int, extra time.Duration) int64 {
	mode := d.Arr.Block(blockID).Mode
	if d.gcBackground {
		return d.Eng.PerformBackgroundMode(now, blockID, kind, mode, subpages)
	}
	return d.Eng.PerformMode(now, blockID, kind, mode, subpages, extra)
}

// NewDevice builds a fresh device. The error model must validate.
func NewDevice(cfg *flash.Config, em *errmodel.Model) (*Device, error) {
	if err := em.Validate(); err != nil {
		return nil, err
	}
	arr, err := flash.NewArray(cfg)
	if err != nil {
		return nil, err
	}
	d := &Device{
		Cfg: cfg,
		Arr: arr,
		Eng: sim.NewEngine(cfg),
		Err: em,
		Map: ftl.NewMap(cfg.LogicalSubpages),
		Met: &Metrics{},
	}
	d.slcFree = append(d.slcFree, arr.SLCBlockIDs()...)
	d.mlcFree = append(d.mlcFree, arr.MLCBlockIDs()...)
	// SLC stripes are capped so the three levels' open blocks cannot pin
	// more than a quarter of the small SLC region; the MLC region is large
	// enough to stripe across every channel.
	slcStripes := cfg.Channels
	if maxStripes := cfg.SLCBlocks() / 12; slcStripes > maxStripes {
		slcStripes = maxStripes
	}
	if slcStripes < 1 {
		slcStripes = 1
	}
	for i := range d.open {
		d.open[i] = make([]int, slcStripes)
		for j := range d.open[i] {
			d.open[i][j] = -1
		}
	}
	d.mlcOpen = make([]int, cfg.Channels)
	for j := range d.mlcOpen {
		d.mlcOpen[j] = -1
	}
	d.slcTotalPages = cfg.SLCBlocks() * cfg.SLCPagesPerBlock
	d.slcFreePages = d.slcTotalPages
	d.blockReadyAt = make([]int64, cfg.Blocks)
	d.excl = *NewExcludeSet(cfg.Blocks)
	d.frames = (cfg.LogicalSubpages + cfg.SlotsPerPage() - 1) / cfg.SlotsPerPage()
	if cfg.PreFillMLC {
		d.preFill()
	}
	return d, nil
}

// Clone returns a deep copy of the device: flash array, engine, mapping
// and metrics are duplicated so the clone and the original evolve fully
// independently, while the immutable config and error model are shared.
// Per-call scratch buffers are left empty (they are rebuilt lazily) and no
// checker is attached — call AttachChecker on the clone. Clone a device
// only between requests, never while a GC is mid-flight.
func (d *Device) Clone() *Device {
	c := &Device{}
	*c = *d
	c.Arr = d.Arr.Clone()
	c.Eng = d.Eng.Clone()
	c.Map = d.Map.Clone()
	met := *d.Met
	c.Met = &met
	c.slcFree = append([]int(nil), d.slcFree...)
	c.mlcFree = append([]int(nil), d.mlcFree...)
	for i := range c.open {
		c.open[i] = append([]int(nil), d.open[i]...)
	}
	c.mlcOpen = append([]int(nil), d.mlcOpen...)
	c.blockReadyAt = append([]int64(nil), d.blockReadyAt...)
	// Scratch is per-call state: sharing backing arrays with the source
	// would race when clones run on different goroutines.
	c.lsnBuf = nil
	c.chunkBuf = nil
	c.excl = *NewExcludeSet(d.Cfg.Blocks)
	c.slcMoveFrames = frameCollector{}
	c.mlcMoveFrames = frameCollector{}
	c.readGroups = nil
	c.unmappedFr = nil
	c.unmappedCnt = nil
	// The memo values stay valid (the clone shares Cfg and Err) but the
	// backing arrays must not be shared: clones run on other goroutines
	// and grow their memos independently.
	c.berMemo[0] = append([]float64(nil), d.berMemo[0]...)
	c.berMemo[1] = append([]float64(nil), d.berMemo[1]...)
	c.pipe = nil
	c.onReadCommit = nil
	c.dispatchedReads = 0
	c.Check = nil
	c.TestHooks.AfterHostWrite = nil
	return c
}

// Restore overwrites d with a deep copy of t, reusing d's component
// objects, backing stores and hot-path scratch instead of allocating fresh
// ones. It is the recycled-clone start-up path: restoring a released clone
// from its template is one bulk copy pass with no garbage. Both devices
// must come from the same geometry; like Clone, the result starts with no
// checker and no test hooks.
func (d *Device) Restore(t *Device) {
	arr, eng, m, met := d.Arr, d.Eng, d.Map, d.Met
	arr.Restore(t.Arr)
	eng.Restore(t.Eng)
	m.Restore(t.Map)
	*met = *t.Met
	slcFree := append(d.slcFree[:0], t.slcFree...)
	mlcFree := append(d.mlcFree[:0], t.mlcFree...)
	var open [flash.LevelHot + 1][]int
	for i := range open {
		open[i] = append(d.open[i][:0], t.open[i]...)
	}
	mlcOpen := append(d.mlcOpen[:0], t.mlcOpen...)
	blockReadyAt := append(d.blockReadyAt[:0], t.blockReadyAt...)
	// Scratch stays with d: it is per-call state the hot paths reset before
	// use, and the released clone's grown buffers are worth keeping.
	lsnBuf, chunkBuf := d.lsnBuf, d.chunkBuf
	excl := d.excl
	slcMove, mlcMove := d.slcMoveFrames, d.mlcMoveFrames
	readGroups, unmappedFr, unmappedCnt := d.readGroups, d.unmappedFr, d.unmappedCnt
	berMemo := d.berMemo

	*d = *t
	d.Arr, d.Eng, d.Map, d.Met = arr, eng, m, met
	d.slcFree, d.mlcFree, d.open, d.mlcOpen, d.blockReadyAt = slcFree, mlcFree, open, mlcOpen, blockReadyAt
	d.lsnBuf, d.chunkBuf = lsnBuf, chunkBuf
	d.excl = excl
	d.slcMoveFrames, d.mlcMoveFrames = slcMove, mlcMove
	d.readGroups, d.unmappedFr, d.unmappedCnt = readGroups, unmappedFr, unmappedCnt
	// Keep d's own memo arrays (never t's — they may be shared with other
	// restores of the same template) but drop their contents: Restore's
	// contract is only "same geometry", and the memo is keyed by the
	// error model and P/E baseline.
	d.berMemo[0] = berMemo[0][:0]
	d.berMemo[1] = berMemo[1][:0]
	d.unmappedCostOK = false
	d.pipe = nil
	d.onReadCommit = nil
	d.dispatchedReads = 0
	d.Check = nil
	d.TestHooks.AfterHostWrite = nil
}

// preFill preconditions the device: the whole logical space is written
// sequentially into the MLC region at time zero, frame by frame, without
// charging simulated time or appearing in the program counters the figures
// report. This models a device already in service, matching the non-zero
// P/E baseline of Table 2.
func (d *Device) preFill() {
	slots := d.Cfg.SlotsPerPage()
	frames := (d.Cfg.LogicalSubpages + slots - 1) / slots
	for f := 0; f < frames; f++ {
		blk, page := d.allocMLCPage()
		writes := d.writes[:0]
		for i := 0; i < slots; i++ {
			lsn := flash.LSN(f*slots + i)
			if int(lsn) >= d.Cfg.LogicalSubpages {
				break
			}
			writes = append(writes, flash.SlotWrite{Slot: len(writes), LSN: lsn})
		}
		_, err := d.Arr.ProgramPage(blk, page, writes, 0)
		must(err)
		for _, w := range writes {
			d.Map.Set(w.LSN, flash.NewPPA(blk, page, w.Slot))
		}
	}
	// Preconditioning is history, not measurement: reset the counters the
	// evaluation figures report.
	d.Arr.MLCPrograms = 0
	d.Arr.SLCPrograms = 0
	d.Arr.PartialPrograms = 0
}

// must panics on errors that indicate an internal bookkeeping bug: the
// flash layer rejected an operation the policy layer believed legal.
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("scheme: internal invariant violated: %v", err))
	}
}

// AttachChecker wires an invariant checker of the given level to the
// device. check.Off detaches. Attach before replaying any request: the
// shadow store must observe every host write.
func (d *Device) AttachChecker(level check.Level) {
	if level == check.Off {
		d.Check = nil
		return
	}
	d.Check = check.New(level, d.Cfg, d.Arr, d.Map, d.Cfg.PreFillMLC)
}

// NoteHostWrite mirrors one completed host write into the attached
// checker's shadow store and runs the test fault-injection hook. Schemes
// call it once per Write request.
func (d *Device) NoteHostWrite(now int64, offset int64, size int) {
	sub := int64(d.Cfg.SubpageSizeBytes)
	d.Met.HostSubpagesWritten += (offset+int64(size)-1)/sub - offset/sub + 1
	if d.Check != nil {
		d.Check.NoteWrite(now, d.LSNRange(offset, size))
	}
	if h := d.TestHooks.AfterHostWrite; h != nil {
		h(d, now)
	}
}

// Trim services a host discard: every covered logical subpage's current
// version is invalidated and unmapped. Trim is a metadata-only command —
// it costs no flash operation and completes immediately.
func (d *Device) Trim(now int64, offset int64, size int) int64 {
	lsns := d.LSNRange(offset, size)
	for _, l := range lsns {
		d.invalidate(l)
	}
	d.Met.HostTrims++
	if d.Check != nil {
		d.Check.NoteTrim(lsns)
	}
	return now
}

// afterGC runs the attached checker's structural sweep and gauge
// comparison after a garbage-collection event.
func (d *Device) afterGC(now int64, event string) {
	if d.Check == nil {
		return
	}
	must(d.Check.CheckEvent(now, event))
	must(d.Check.CheckSLCGauges(d.slcFreePages, d.slcValidSub, d.slcPagesWithValid))
}

// SLCFreePages returns the free-page count the GC trigger watches.
func (d *Device) SLCFreePages() int { return d.slcFreePages }

// SLCValidSubpages returns the valid subpages currently resident in SLC.
func (d *Device) SLCValidSubpages() int64 { return d.slcValidSub }

// SLCTotalPages returns the page capacity of the SLC cache — SLC-mode
// blocks only, so in-place switched blocks do not count.
func (d *Device) SLCTotalPages() int { return d.slcTotalPages }

// ---------------------------------------------------------------------------
// Logical address helpers

// LSNRange converts a byte range into the logical subpages it touches,
// wrapping modulo the logical space. The returned slice is device-owned
// scratch, overwritten by the next LSNRange or Chunks call.
func (d *Device) LSNRange(offset int64, size int) []flash.LSN {
	sub := int64(d.Cfg.SubpageSizeBytes)
	first := offset / sub
	last := (offset + int64(size) - 1) / sub
	out := d.lsnBuf[:0]
	if n := int(last - first + 1); cap(out) < n {
		out = make([]flash.LSN, 0, n)
	}
	logical := int64(d.Cfg.LogicalSubpages)
	for s := first; s <= last; s++ {
		out = append(out, flash.LSN(s%logical))
	}
	d.lsnBuf = out
	return out
}

// Chunks splits a byte range into frame-aligned LSN runs: each chunk's
// subpages belong to one 16 KiB logical page frame, the write unit of every
// scheme's placement policy. The returned chunks are views into the
// device's LSNRange scratch, overwritten by the next LSNRange or Chunks
// call.
func (d *Device) Chunks(offset int64, size int) [][]flash.LSN {
	lsns := d.LSNRange(offset, size)
	slots := d.Cfg.SlotsPerPage()
	out := d.chunkBuf[:0]
	start := 0
	curFrame := int32(-1)
	for i, l := range lsns {
		f := l.Frame(slots)
		if f != curFrame && i > start {
			out = append(out, lsns[start:i])
			start = i
		}
		curFrame = f
	}
	if len(lsns) > start {
		out = append(out, lsns[start:])
	}
	d.chunkBuf = out
	return out
}

// ---------------------------------------------------------------------------
// Mapping maintenance

// pageValidCount counts valid slots in a physical page.
func pageValidCount(pg *flash.Page) int {
	n := 0
	for i := range pg.Slots {
		if pg.Slots[i].State == flash.SubValid {
			n++
		}
	}
	return n
}

// invalidate drops the current version of a logical subpage, maintaining
// the SLC occupancy gauges.
func (d *Device) invalidate(lsn flash.LSN) {
	ppa := d.Map.Get(lsn)
	if !ppa.Mapped() {
		return
	}
	b := d.Arr.Block(ppa.Block())
	must(d.Arr.Invalidate(ppa))
	if b.Mode == flash.ModeSLC {
		d.slcValidSub--
		if pageValidCount(&b.Pages[ppa.Page()]) == 0 {
			d.slcPagesWithValid--
		}
	}
	d.Map.Unmap(lsn)
}

// updatePeaks refreshes the Fig. 11 peak-occupancy gauges.
func (d *Device) updatePeaks() {
	if d.slcValidSub > d.Met.PeakSLCValidSubpages {
		d.Met.PeakSLCValidSubpages = d.slcValidSub
	}
	if d.slcPagesWithValid > d.Met.PeakSLCFramePages {
		d.Met.PeakSLCFramePages = d.slcPagesWithValid
	}
}

// ---------------------------------------------------------------------------
// SLC allocation

// isOpenSLC reports whether a block is an open allocation point (and thus
// not a GC victim candidate).
func (d *Device) isOpenSLC(id int) bool {
	for _, level := range d.open {
		for _, o := range level {
			if o == id {
				return true
			}
		}
	}
	return false
}

// openExcludes resets the device's reusable exclusion set and fills it
// with the open SLC allocation points — the base set every victim
// selection must skip. Scheme victim wrappers add their pinned blocks on
// top before delegating to the selector.
func (d *Device) openExcludes() *ExcludeSet {
	s := &d.excl
	s.Reset()
	for li := range d.open {
		for _, id := range d.open[li] {
			if id >= 0 {
				s.Add(id)
			}
		}
	}
	return s
}

// popMinErase removes and returns the block with the lowest erase count —
// the static wear-levelling rule of Table 2.
func popMinErase(list *[]int, arr *flash.Array) int {
	l := *list
	best := 0
	for i := 1; i < len(l); i++ {
		if arr.Block(l[i]).EraseCount < arr.Block(l[best]).EraseCount {
			best = i
		}
	}
	id := l[best]
	l[best] = l[len(l)-1]
	*list = l[:len(l)-1]
	return id
}

// popMinEraseReady is popMinErase restricted to blocks whose background
// erase has completed by now. It returns -1 when no block is ready.
func (d *Device) popMinEraseReady(list *[]int, now int64) int {
	l := *list
	best := -1
	for i := range l {
		if d.blockReadyAt[l[i]] > now {
			continue
		}
		if best < 0 || d.Arr.Block(l[i]).EraseCount < d.Arr.Block(l[best]).EraseCount {
			best = i
		}
	}
	if best < 0 {
		return -1
	}
	id := l[best]
	l[best] = l[len(l)-1]
	*list = l[:len(l)-1]
	return id
}

// allocSLCPage reserves the next free page of an open block at the given
// level, rotating round-robin across the per-channel stripes and opening a
// fresh block (labelled with that level) when a stripe runs dry. When the
// free pool is exhausted it falls back to any other open block with room,
// preferring lower levels, per Algorithm 1's note that "lower level blocks
// can be instead selected only if no available block can be found".
// ok is false when the SLC cache has no programmable page at all.
func (d *Device) allocSLCPage(now int64, level flash.BlockLevel) (blk, page int, ok bool) {
	stripes := len(d.open[level])
	for try := 0; try < stripes; try++ {
		slot := d.rr[level] % stripes
		d.rr[level]++
		if id := d.open[level][slot]; id >= 0 && !d.Arr.Block(id).Full() {
			d.slcFreePages--
			return id, d.Arr.Block(id).NextFreePage, true
		}
		if id := d.popMinEraseReady(&d.slcFree, now); id >= 0 {
			b := d.Arr.Block(id)
			b.Level = level
			d.Arr.MarkBlockDirty(id)
			d.open[level][slot] = id
			d.slcFreePages--
			return id, b.NextFreePage, true
		}
		// No erased block is ready: this stripe's block is full; try the
		// next stripe.
	}
	// Fallback: any open block with room, lower levels first.
	order := []flash.BlockLevel{flash.LevelWork, flash.LevelMonitor, flash.LevelHot}
	for _, l := range order {
		for _, id := range d.open[l] {
			if id >= 0 && !d.Arr.Block(id).Full() {
				d.slcFreePages--
				return id, d.Arr.Block(id).NextFreePage, true
			}
		}
	}
	return 0, 0, false
}

// programSLC programs the given slots of one SLC page, updating the map,
// the occupancy gauges and the per-level program counters, and returns the
// operation completion time. deadRest kills the page's remaining free slots
// (Baseline's whole-page programming).
func (d *Device) programSLC(now int64, blk, page int, writes []flash.SlotWrite, deadRest bool) int64 {
	b := d.Arr.Block(blk)
	pg := &b.Pages[page]
	hadValid := pageValidCount(pg) > 0
	_, err := d.Arr.ProgramPage(blk, page, writes, now)
	must(err)
	if deadRest {
		nDead := 0
		for i := range pg.Slots {
			if pg.Slots[i].State == flash.SubFree {
				d.deadBuf[nDead] = i
				nDead++
			}
		}
		if nDead > 0 {
			must(d.Arr.MarkDead(blk, page, d.deadBuf[:nDead]...))
		}
	}
	for _, w := range writes {
		d.Map.Set(w.LSN, flash.NewPPA(blk, page, w.Slot))
	}
	d.slcValidSub += int64(len(writes))
	if !hadValid {
		d.slcPagesWithValid++
	}
	d.Met.LevelPrograms[b.Level]++
	d.updatePeaks()
	return d.perform(now, blk, sim.OpProgram, len(writes), 0)
}

// WriteChunkSLC places one frame-aligned chunk into a fresh SLC page at
// the requested level: old versions are invalidated, the first len(lsns)
// slots are programmed, and the remainder is killed (deadRest) or reserved
// for future in-page updates. ok is false when the cache is out of space;
// the caller should fall back to the MLC region.
func (d *Device) WriteChunkSLC(now int64, level flash.BlockLevel, lsns []flash.LSN, deadRest bool) (end int64, ok bool) {
	blk, page, ok := d.allocSLCPage(now, level)
	if !ok {
		return now, false
	}
	for _, l := range lsns {
		d.invalidate(l)
	}
	writes := d.writes[:len(lsns)]
	for i, l := range lsns {
		writes[i] = flash.SlotWrite{Slot: i, LSN: l}
	}
	return d.programSLC(now, blk, page, writes, deadRest), true
}

// ---------------------------------------------------------------------------
// MLC region

// mlcReserve is the free-block floor that keeps GC movement deadlock-free:
// one victim's valid data can open at most one fresh block per stripe.
func (d *Device) mlcReserve() int {
	r := int(float64(len(d.Arr.MLCBlockIDs())) * d.Cfg.MLCGCThresholdFraction)
	if min := len(d.mlcOpen) + 2; r < min {
		r = min
	}
	return r
}

// allocMLCPage returns the next free MLC page, rotating across the striped
// open blocks and opening a new block when a stripe fills. Callers must
// have called ensureMLCSpace.
func (d *Device) allocMLCPage() (blk, page int) {
	stripes := len(d.mlcOpen)
	for try := 0; try < stripes; try++ {
		slot := d.mlcRR % stripes
		d.mlcRR++
		if id := d.mlcOpen[slot]; id >= 0 && !d.Arr.Block(id).Full() {
			return id, d.Arr.Block(id).NextFreePage
		}
		if len(d.mlcFree) > 0 {
			id := popMinErase(&d.mlcFree, d.Arr)
			d.mlcOpen[slot] = id
			return id, d.Arr.Block(id).NextFreePage
		}
	}
	panic("scheme: MLC region exhausted; logical space exceeds over-provisioned capacity")
}

// isOpenMLC reports whether a block is an open MLC allocation point.
func (d *Device) isOpenMLC(id int) bool {
	for _, o := range d.mlcOpen {
		if o == id {
			return true
		}
	}
	return false
}

// ensureMLCSpace runs greedy MLC garbage collection until the free-block
// reserve is restored. It is a no-op while an MLC GC is already running.
func (d *Device) ensureMLCSpace(now int64) {
	if d.mlcGCActive || len(d.mlcFree) >= d.mlcReserve() {
		return
	}
	d.mlcGCActive = true
	wasBackground := d.gcBackground
	d.gcBackground = true
	defer func() {
		d.mlcGCActive = false
		d.gcBackground = wasBackground
	}()
	for attempts := 0; len(d.mlcFree) < d.mlcReserve() && attempts < 8; attempts++ {
		v := d.selectMLCVictim()
		if v < 0 {
			break
		}
		d.Met.MLCGCs++
		d.moveMLCVictim(now, v)
		b := d.Arr.Block(v)
		freeBefore := b.FreePages()
		must(d.Arr.Erase(v))
		d.perform(now, v, sim.OpErase, 0, 0)
		d.blockReadyAt[v] = d.Eng.ChipAvailableAt(d.Arr.ChipOf(v))
		_ = freeBefore
		d.mlcFree = append(d.mlcFree, v)
		d.afterGC(now, "mlc-gc")
	}
}

// selectMLCVictim picks the MLC block with the most reclaimable (invalid or
// dead) subpages. Returns -1 when no block frees any space.
func (d *Device) selectMLCVictim() int {
	best, bestScore := -1, 0
	for _, id := range d.Arr.MLCBlockIDs() {
		if d.isOpenMLC(id) {
			continue
		}
		b := d.Arr.Block(id)
		score := b.InvalidSub + b.DeadSub
		if score > bestScore {
			best, bestScore = id, score
		}
	}
	return best
}

// moveMLCVictim relocates a victim's valid data, consolidating each frame
// into a fresh page via WriteFrameMLC. It uses its own frame collector:
// SLC movement can nest an MLC GC while iterating the SLC collector.
func (d *Device) moveMLCVictim(now int64, victim int) {
	b := d.Arr.Block(victim)
	c := &d.mlcMoveFrames
	c.reset(d.frames)
	slots := d.Cfg.SlotsPerPage()
	for p := range b.Pages {
		pg := &b.Pages[p]
		valid := 0
		for s := range pg.Slots {
			if pg.Slots[s].State == flash.SubValid {
				valid++
				c.add(pg.Slots[s].LSN.Frame(slots), pg.Slots[s].LSN)
			}
		}
		if valid > 0 {
			d.perform(now, victim, sim.OpRead, valid, 0)
		}
	}
	for i := range c.groups {
		g := &c.groups[i]
		d.Met.GCMovedSubpages += int64(g.n)
		d.WriteFrameMLC(now, g.lsns[:g.n])
	}
}

// WriteFrameMLC writes one frame-aligned chunk into a fresh MLC page.
// Because the MLC region is page-mapped, any other valid subpages of the
// same frame already resident in MLC are merged in (read-modify-write);
// subpages of the frame whose newest version lives in SLC stay there.
// Returns the program completion time.
func (d *Device) WriteFrameMLC(now int64, lsns []flash.LSN) int64 {
	slots := d.Cfg.SlotsPerPage()
	frame := lsns[0].Frame(slots)
	// Any nested MLC GC completes here, before the scratch buffers below
	// are touched, so one device-owned set of buffers suffices.
	d.ensureMLCSpace(now)
	blk, page := d.allocMLCPage()

	// All per-frame sets are bounded by slots <= 8: fixed-size scratch.
	var inSet [8]bool
	for _, l := range lsns {
		inSet[int(l)-int(frame)*slots] = true
	}
	gather := append(d.gather[:0], lsns...)
	var sibPages [8]flash.PPA
	var sibCount [8]int
	nSib := 0
	for i := 0; i < slots; i++ {
		if inSet[i] {
			continue
		}
		l := flash.LSN(int(frame)*slots + i)
		if int(l) >= d.Map.Len() {
			continue
		}
		ppa := d.Map.Get(l)
		if !ppa.Mapped() || d.Arr.Block(ppa.Block()).Mode != flash.ModeMLC {
			continue
		}
		gather = append(gather, l)
		pa := ppa.PageAddr()
		si := -1
		for j := 0; j < nSib; j++ {
			if sibPages[j] == pa {
				si = j
				break
			}
		}
		if si < 0 {
			sibPages[nSib] = pa
			si = nSib
			nSib++
		}
		sibCount[si]++
	}
	for j := 0; j < nSib; j++ {
		d.perform(now, sibPages[j].Block(), sim.OpRead, sibCount[j], 0)
	}
	for _, l := range gather {
		d.invalidate(l)
	}
	writes := d.writes[:len(gather)]
	for i, l := range gather {
		writes[i] = flash.SlotWrite{Slot: i, LSN: l}
	}
	_, err := d.Arr.ProgramPage(blk, page, writes, now)
	must(err)
	if len(gather) < slots {
		nDead := 0
		for i := len(gather); i < slots; i++ {
			d.deadBuf[nDead] = i
			nDead++
		}
		must(d.Arr.MarkDead(blk, page, d.deadBuf[:nDead]...))
	}
	for i, l := range gather {
		d.Map.Set(l, flash.NewPPA(blk, page, i))
	}
	d.Met.LevelPrograms[flash.LevelHighDensity]++
	return d.perform(now, blk, sim.OpProgram, len(gather), 0)
}

// ---------------------------------------------------------------------------
// Shared read path

// cellReadTime returns the sensing latency of a block's mode, used to
// charge read retries.
func (d *Device) cellReadTime(mode flash.Mode) time.Duration {
	if mode == flash.ModeSLC {
		return d.Cfg.Timing.SLCRead
	}
	return d.Cfg.Timing.MLCRead
}

// readGroup collects the slots of one physical page touched by a read
// request. A page has at most 8 slots (flash.Config.Validate).
type readGroup struct {
	pa   flash.PPA
	n    int
	slot [8]uint8
}

// groupRead groups the mapped subpages of a request by physical page and
// tallies unmapped frames, into the device-owned scratch (readGroups,
// unmappedFr/unmappedCnt). Both populations are small (bounded by the
// request's subpage count), so first-seen linear probing beats the map
// allocations it replaces.
func (d *Device) groupRead(lsns []flash.LSN) {
	slots := d.Cfg.SlotsPerPage()
	groups := d.readGroups[:0]
	uf := d.unmappedFr[:0]
	uc := d.unmappedCnt[:0]
	for _, l := range lsns {
		ppa := d.Map.Get(l)
		if !ppa.Mapped() {
			f := l.Frame(slots)
			fi := -1
			for i := range uf {
				if uf[i] == f {
					fi = i
					break
				}
			}
			if fi < 0 {
				uf = append(uf, f)
				uc = append(uc, 1)
			} else {
				uc[fi]++
			}
			continue
		}
		pa := ppa.PageAddr()
		gi := -1
		for i := range groups {
			if groups[i].pa == pa {
				gi = i
				break
			}
		}
		if gi < 0 {
			groups = append(groups, readGroup{pa: pa})
			gi = len(groups) - 1
		}
		g := &groups[gi]
		g.slot[g.n] = uint8(ppa.Slot())
		g.n++
	}
	d.readGroups = groups
	d.unmappedFr = uf
	d.unmappedCnt = uc
}

// ReadReq services a host read: mapped subpages are read from their
// physical pages (one flash read per distinct page, with per-subpage ECC
// cost from the error model); unmapped subpages model data written before
// the trace began and are charged as clean MLC reads. Returns the request
// completion time and records latency and BER metrics. With the read
// pipeline enabled the ECC evaluation and metric fold are deferred
// (bit-identically) and the returned time excludes the ECC extra.
func (d *Device) ReadReq(now int64, offset int64, size int) int64 {
	lsns := d.LSNRange(offset, size)
	if d.Check != nil {
		must(d.Check.CheckRead(now, lsns))
	}
	if d.pipe != nil {
		return d.readReqAsync(now, lsns)
	}
	d.groupRead(lsns)

	end := now
	for gi := range d.readGroups {
		g := &d.readGroups[gi]
		b := d.Arr.Block(g.pa.Block())
		var extra time.Duration
		retries := 0
		for _, s := range g.slot[:g.n] {
			sp := d.Arr.Subpage(flash.NewPPA(g.pa.Block(), g.pa.Page(), int(s)))
			ber := d.Err.StressedBER(d.rawBER(b.EraseCount, sp.Partial),
				sp.InPageDisturb, sp.NeighborDisturb, sp.ReprogramStress)
			cost := d.Err.CostFromBER(ber)
			extra += cost.DecodeTime
			retries += cost.Retries
			d.Met.ReadBER.Add(cost.BER)
			if cost.Uncorrectable {
				d.Met.UncorrectableReads++
			}
		}
		if b.Mode == flash.ModeSLC {
			d.Met.SubpageReadsSLC += int64(g.n)
		} else {
			d.Met.SubpageReadsMLC += int64(g.n)
		}
		d.Met.ReadRetries += int64(retries)
		extra += time.Duration(retries) * d.cellReadTime(b.Mode)
		if e := d.Eng.PerformMode(now, g.pa.Block(), sim.OpRead, b.Mode, g.n, extra); e > end {
			end = e
		}
	}

	if len(d.unmappedFr) > 0 {
		cost := d.unmappedReadCost()
		mlcIDs := d.Arr.MLCBlockIDs()
		for fi, f := range d.unmappedFr {
			n := d.unmappedCnt[fi]
			// Deterministic pseudo-placement spreads pre-existing data
			// across MLC chips.
			blk := mlcIDs[int(f)%len(mlcIDs)]
			for i := 0; i < n; i++ {
				d.Met.ReadBER.Add(cost.BER)
			}
			d.Met.SubpageReadsMLC += int64(n)
			extra := time.Duration(n) * cost.DecodeTime
			if e := d.Eng.Perform(now, blk, sim.OpRead, n, extra); e > end {
				end = e
			}
		}
	}

	d.Met.ReadLatency.Record(end - now)
	d.Met.AllLatency.Record(end - now)
	return end
}

// RecordWrite logs a completed host write request's latency.
func (d *Device) RecordWrite(now, end int64) {
	d.Met.WriteLatency.Record(end - now)
	d.Met.AllLatency.Record(end - now)
}
