package scheme

import (
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// MGA is the Mapping-Granularity-Adaptive FTL (Feng et al., DATE'17), the
// paper's closest related work: subpage-granularity mapping with partial
// programming. Small writes from any request are appended into the free
// slots of an open page, so pages fill to ~100% (Fig. 9) at the cost of
// partial-programming disturb on co-resident valid data and a large
// two-level mapping table (Fig. 11). GC is greedy and flushes valid data
// to MLC.
//
// Open pages are striped per channel like the block allocators, so append
// traffic exploits channel parallelism; each stripe's page still fills
// completely before being replaced, preserving MGA's space efficiency.
type MGA struct {
	dev *Device

	openPages []flash.PPA // per-stripe page accepting appends
	hasOpen   []bool
	rr        int

	// victimFn is the bound victim method, created once so the per-write
	// GC call does not allocate a method-value closure.
	victimFn VictimSelector
}

// NewMGA builds the MGA scheme on a fresh device.
func NewMGA(cfg *flash.Config, em *errmodel.Model) (*MGA, error) {
	d, err := NewDevice(cfg, em)
	if err != nil {
		return nil, err
	}
	stripes := len(d.open[flash.LevelWork])
	m := &MGA{
		dev:       d,
		openPages: make([]flash.PPA, stripes),
		hasOpen:   make([]bool, stripes),
	}
	m.victimFn = m.victim
	return m, nil
}

// Clone implements Scheme.
func (m *MGA) Clone() Scheme {
	c := &MGA{
		dev:       m.dev.Clone(),
		openPages: append([]flash.PPA(nil), m.openPages...),
		hasOpen:   append([]bool(nil), m.hasOpen...),
		rr:        m.rr,
	}
	// Rebind the victim selector: the method value must capture the clone,
	// or its GC would protect the template's open pages instead.
	c.victimFn = c.victim
	return c
}

// Restore implements Scheme.
func (m *MGA) Restore(from Scheme) bool {
	t, ok := from.(*MGA)
	if !ok || len(m.openPages) != len(t.openPages) ||
		m.dev.Map.Len() != t.dev.Map.Len() || m.dev.Arr.NumBlocks() != t.dev.Arr.NumBlocks() {
		return false
	}
	m.dev.Restore(t.dev)
	copy(m.openPages, t.openPages)
	copy(m.hasOpen, t.hasOpen)
	m.rr = t.rr
	// victimFn is already bound to m.
	return true
}

// Name implements Scheme.
func (m *MGA) Name() string { return "MGA" }

// Device implements Scheme.
func (m *MGA) Device() *Device { return m.dev }

// Metrics implements Scheme.
func (m *MGA) Metrics() *Metrics { return m.dev.Met }

// roomAt returns the free slots of a stripe's open page (nFree == 0 when
// the page is absent, full, or out of program budget). The slot indices
// come back in a fixed-size array: a page has at most 8 slots.
func (m *MGA) roomAt(slot int) (free [8]int, nFree int) {
	if !m.hasOpen[slot] {
		return free, 0
	}
	pp := m.openPages[slot]
	pg := &m.dev.Arr.Block(pp.Block()).Pages[pp.Page()]
	if int(pg.ProgramCount) >= m.dev.Cfg.MaxProgramsPerSLCPage {
		return free, 0
	}
	for s := range pg.Slots {
		if pg.Slots[s].State == flash.SubFree {
			free[nFree] = s
			nFree++
		}
	}
	return free, nFree
}

// Write implements Scheme: subpages are appended into open pages' free
// slots across the stripes; whatever does not fit flows into freshly
// allocated pages, which then become their stripe's open page.
func (m *MGA) Write(now int64, offset int64, size int) int64 {
	d := m.dev
	end := now
	for _, chunk := range d.Chunks(offset, size) {
		pending := chunk
		for len(pending) > 0 {
			slot := m.rr % len(m.openPages)
			m.rr++
			if free, nFree := m.roomAt(slot); nFree > 0 {
				n := len(pending)
				if n > nFree {
					n = nFree
				}
				head := pending[:n]
				pending = pending[n:]
				for _, l := range head {
					d.invalidate(l)
				}
				writes := d.writes[:n]
				for i, l := range head {
					writes[i] = flash.SlotWrite{Slot: free[i], LSN: l}
				}
				pp := m.openPages[slot]
				if e := d.programSLC(now, pp.Block(), pp.Page(), writes, false); e > end {
					end = e
				}
				continue
			}
			// Open a fresh page on this stripe.
			blk, page, ok := d.allocSLCPage(now, flash.LevelWork)
			if !ok {
				e := d.WriteFrameMLC(now, pending)
				d.Met.HostWritesToMLC++
				if e > end {
					end = e
				}
				pending = nil
				break
			}
			n := len(pending)
			if n > d.Cfg.SlotsPerPage() {
				n = d.Cfg.SlotsPerPage()
			}
			head := pending[:n]
			pending = pending[n:]
			for _, l := range head {
				d.invalidate(l)
			}
			writes := d.writes[:n]
			for i, l := range head {
				writes[i] = flash.SlotWrite{Slot: i, LSN: l}
			}
			if e := d.programSLC(now, blk, page, writes, false); e > end {
				end = e
			}
			m.openPages[slot] = flash.NewPPA(blk, page, 0)
			m.hasOpen[slot] = true
		}
	}
	d.MaybeGCSLC(now, m.victimFn, MoveFlushAll)
	d.NoteHostWrite(now, offset, size)
	d.RecordWrite(now, end)
	return end
}

// victim wraps GreedyVictim, additionally protecting the open pages'
// blocks from collection.
func (m *MGA) victim(d *Device, now int64, excl *ExcludeSet) int {
	for i, pp := range m.openPages {
		if m.hasOpen[i] {
			excl.Add(pp.Block())
		}
	}
	return GreedyVictim(d, now, excl)
}

// Read implements Scheme.
func (m *MGA) Read(now int64, offset int64, size int) int64 {
	return m.dev.ReadReq(now, offset, size)
}

var _ Scheme = (*MGA)(nil)
