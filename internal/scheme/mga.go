package scheme

import (
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// MGA is the Mapping-Granularity-Adaptive FTL (Feng et al., DATE'17), the
// paper's closest related work: subpage-granularity mapping with partial
// programming. Small writes from any request are appended into the free
// slots of an open page, so pages fill to ~100% (Fig. 9) at the cost of
// partial-programming disturb on co-resident valid data and a large
// two-level mapping table (Fig. 11). GC is greedy and flushes valid data
// to MLC.
//
// Open pages are striped per channel like the block allocators, so append
// traffic exploits channel parallelism; each stripe's page still fills
// completely before being replaced, preserving MGA's space efficiency.
type MGA struct {
	dev *Device

	openPages []flash.PPA // per-stripe page accepting appends
	hasOpen   []bool
	rr        int
}

// NewMGA builds the MGA scheme on a fresh device.
func NewMGA(cfg *flash.Config, em *errmodel.Model) (*MGA, error) {
	d, err := NewDevice(cfg, em)
	if err != nil {
		return nil, err
	}
	stripes := len(d.open[flash.LevelWork])
	return &MGA{
		dev:       d,
		openPages: make([]flash.PPA, stripes),
		hasOpen:   make([]bool, stripes),
	}, nil
}

// Name implements Scheme.
func (m *MGA) Name() string { return "MGA" }

// Device implements Scheme.
func (m *MGA) Device() *Device { return m.dev }

// Metrics implements Scheme.
func (m *MGA) Metrics() *Metrics { return m.dev.Met }

// roomAt returns the free slots of a stripe's open page, or nil when the
// page is absent, full, or out of program budget.
func (m *MGA) roomAt(slot int) []int {
	if !m.hasOpen[slot] {
		return nil
	}
	pp := m.openPages[slot]
	pg := &m.dev.Arr.Block(pp.Block()).Pages[pp.Page()]
	if int(pg.ProgramCount) >= m.dev.Cfg.MaxProgramsPerSLCPage {
		return nil
	}
	var free []int
	for s := range pg.Slots {
		if pg.Slots[s].State == flash.SubFree {
			free = append(free, s)
		}
	}
	return free
}

// Write implements Scheme: subpages are appended into open pages' free
// slots across the stripes; whatever does not fit flows into freshly
// allocated pages, which then become their stripe's open page.
func (m *MGA) Write(now int64, offset int64, size int) int64 {
	d := m.dev
	end := now
	for _, chunk := range d.Chunks(offset, size) {
		pending := chunk
		for len(pending) > 0 {
			slot := m.rr % len(m.openPages)
			m.rr++
			if free := m.roomAt(slot); len(free) > 0 {
				n := len(pending)
				if n > len(free) {
					n = len(free)
				}
				head := pending[:n]
				pending = pending[n:]
				for _, l := range head {
					d.invalidate(l)
				}
				writes := make([]flash.SlotWrite, n)
				for i, l := range head {
					writes[i] = flash.SlotWrite{Slot: free[i], LSN: l}
				}
				pp := m.openPages[slot]
				if e := d.programSLC(now, pp.Block(), pp.Page(), writes, false); e > end {
					end = e
				}
				continue
			}
			// Open a fresh page on this stripe.
			blk, page, ok := d.allocSLCPage(now, flash.LevelWork)
			if !ok {
				e := d.WriteFrameMLC(now, pending)
				d.Met.HostWritesToMLC++
				if e > end {
					end = e
				}
				pending = nil
				break
			}
			n := len(pending)
			if n > d.Cfg.SlotsPerPage() {
				n = d.Cfg.SlotsPerPage()
			}
			head := pending[:n]
			pending = pending[n:]
			for _, l := range head {
				d.invalidate(l)
			}
			writes := make([]flash.SlotWrite, n)
			for i, l := range head {
				writes[i] = flash.SlotWrite{Slot: i, LSN: l}
			}
			if e := d.programSLC(now, blk, page, writes, false); e > end {
				end = e
			}
			m.openPages[slot] = flash.NewPPA(blk, page, 0)
			m.hasOpen[slot] = true
		}
	}
	d.MaybeGCSLC(now, m.victim, MoveFlushAll)
	d.NoteHostWrite(now, offset, size)
	d.RecordWrite(now, end)
	return end
}

// victim wraps GreedyVictim, additionally protecting the open pages'
// blocks from collection.
func (m *MGA) victim(d *Device, now int64, exclude func(int) bool) int {
	return GreedyVictim(d, now, func(id int) bool {
		for i, pp := range m.openPages {
			if m.hasOpen[i] && pp.Block() == id {
				return true
			}
		}
		return exclude(id)
	})
}

// Read implements Scheme.
func (m *MGA) Read(now int64, offset int64, size int) int64 {
	return m.dev.ReadReq(now, offset, size)
}

var _ Scheme = (*MGA)(nil)
