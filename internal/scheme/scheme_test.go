package scheme

import (
	"math/rand"
	"testing"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// tinyConfig is small enough that a few hundred writes exercise SLC GC.
func tinyConfig() flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.Blocks = 64
	c.SLCRatio = 0.125 // 8 SLC blocks of 8 pages = 64 pages, 256 slots
	c.SLCPagesPerBlock = 8
	c.MLCPagesPerBlock = 16
	c.LogicalSubpages = c.MLCSubpages() / 2
	return c
}

func newScheme(t *testing.T, name string, cfg flash.Config) Scheme {
	t.Helper()
	em := errmodel.Default()
	var s Scheme
	var err error
	switch name {
	case "Baseline":
		s, err = NewBaseline(&cfg, &em)
	case "MGA":
		s, err = NewMGA(&cfg, &em)
	case "IPU":
		s, err = NewIPU(&cfg, &em)
	case "IPS":
		s, err = NewIPS(&cfg, &em)
	case "IPU-PGC":
		s, err = NewIPUPGC(&cfg, &em, DefaultPGCConfig())
	default:
		t.Fatalf("unknown scheme %s", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var schemeNames = []string{"Baseline", "MGA", "IPU", "IPS", "IPU-PGC"}

// checkConsistency verifies the fundamental FTL invariants: the flash
// array's cached counters are right, every mapped LSN points at a valid
// subpage holding that LSN, and every valid subpage is the current mapping
// of its LSN.
func checkConsistency(t *testing.T, d *Device) {
	t.Helper()
	if err := d.Arr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	valid := 0
	for id := 0; id < d.Arr.NumBlocks(); id++ {
		b := d.Arr.Block(id)
		for p := range b.Pages {
			for s := range b.Pages[p].Slots {
				sp := &b.Pages[p].Slots[s]
				if sp.State != flash.SubValid {
					continue
				}
				valid++
				got := d.Map.Get(sp.LSN)
				want := flash.NewPPA(id, p, s)
				if got != want {
					t.Fatalf("LSN %d: map says %v, valid copy at %v", sp.LSN, got, want)
				}
			}
		}
	}
	if valid != d.Map.Mapped() {
		t.Fatalf("valid subpages %d != mapped LSNs %d", valid, d.Map.Mapped())
	}
}

func TestSchemeNames(t *testing.T) {
	cfg := tinyConfig()
	for _, n := range schemeNames {
		if got := newScheme(t, n, cfg).Name(); got != n {
			t.Errorf("Name = %q, want %q", got, n)
		}
	}
}

func TestChunksSplitByFrame(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	// 8 KiB at offset 8 KiB: subpages 2,3 — one chunk in frame 0.
	chunks := d.Chunks(8192, 8192)
	if len(chunks) != 1 || len(chunks[0]) != 2 {
		t.Fatalf("chunks = %v", chunks)
	}
	// 16 KiB at offset 8 KiB: subpages 2..5 — frames 0 and 1.
	chunks = d.Chunks(8192, 16384)
	if len(chunks) != 2 || len(chunks[0]) != 2 || len(chunks[1]) != 2 {
		t.Fatalf("chunks = %v", chunks)
	}
	// Unaligned request: bytes [1000, 5096) touch subpages 0 and 1.
	chunks = d.Chunks(1000, 4096)
	if len(chunks) != 1 || len(chunks[0]) != 2 {
		t.Fatalf("unaligned chunks = %v", chunks)
	}
}

func TestLSNRangeWrapsLogicalSpace(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	bytes := int64(cfg.LogicalSubpages) * int64(cfg.SubpageSizeBytes)
	lsns := d.LSNRange(bytes-4096, 8192)
	if len(lsns) != 2 || lsns[0] != flash.LSN(cfg.LogicalSubpages-1) || lsns[1] != 0 {
		t.Fatalf("wrap: %v", lsns)
	}
}

func TestWriteThenReadMapsCorrectly(t *testing.T) {
	for _, name := range schemeNames {
		cfg := tinyConfig()
		s := newScheme(t, name, cfg)
		d := s.Device()
		end := s.Write(0, 0, 8192)
		if end <= 0 {
			t.Fatalf("%s: write end = %d", name, end)
		}
		for lsn := flash.LSN(0); lsn < 2; lsn++ {
			ppa := d.Map.Get(lsn)
			if !ppa.Mapped() {
				t.Fatalf("%s: LSN %d unmapped after write", name, lsn)
			}
			if got := d.Arr.Subpage(ppa).LSN; got != lsn {
				t.Fatalf("%s: subpage holds LSN %d, want %d", name, got, lsn)
			}
		}
		if d.Map.Get(2).Mapped() {
			t.Fatalf("%s: LSN 2 mapped without write", name)
		}
		rEnd := s.Read(end, 0, 8192)
		if rEnd <= end {
			t.Fatalf("%s: read completed instantly", name)
		}
		checkConsistency(t, d)
		m := s.Metrics()
		if m.WriteLatency.Count != 1 || m.ReadLatency.Count != 1 {
			t.Fatalf("%s: latency counts %d/%d", name, m.WriteLatency.Count, m.ReadLatency.Count)
		}
		if m.ReadBER.Count == 0 {
			t.Fatalf("%s: no BER samples recorded", name)
		}
	}
}

func TestBaselineKillsRemainder(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	s.Write(0, 0, 4096) // one subpage
	ppa := d.Map.Get(0)
	b := d.Arr.Block(ppa.Block())
	if b.DeadSub != 3 {
		t.Errorf("dead slots = %d, want 3 (whole-page program)", b.DeadSub)
	}
	// A second small write must take a fresh page.
	s.Write(1, 100*4096, 4096)
	ppa2 := d.Map.Get(100)
	if ppa2.PageAddr() == ppa.PageAddr() {
		t.Error("Baseline aggregated two requests into one page")
	}
}

func TestBaselineUpdateInvalidatesOld(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	s.Write(0, 0, 4096)
	old := d.Map.Get(0)
	s.Write(1, 0, 4096)
	if d.Arr.Subpage(old).State != flash.SubInvalid {
		t.Error("old version not invalidated")
	}
	if d.Map.Get(0) == old {
		t.Error("map still points at old version")
	}
	checkConsistency(t, d)
}

func TestMGAAggregatesRequests(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "MGA", cfg)
	d := s.Device()
	s.Write(0, 0, 4096)        // LSN 0
	s.Write(1, 100*4096, 4096) // LSN 100
	a, b := d.Map.Get(0), d.Map.Get(100)
	if a.PageAddr() != b.PageAddr() {
		t.Fatal("MGA must aggregate small writes into one page")
	}
	// The second program was partial: LSN 0's slot took in-page disturb.
	if got := d.Arr.Subpage(a).InPageDisturb; got != 1 {
		t.Errorf("first write's disturb = %d, want 1", got)
	}
	if !d.Arr.Subpage(b).Partial {
		t.Error("second write must be partially programmed")
	}
	if d.Arr.Subpage(a).Partial {
		t.Error("first write must be conventionally programmed")
	}
	checkConsistency(t, d)
}

func TestMGARespectsProgramBudget(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "MGA", cfg)
	d := s.Device()
	// Four 1-subpage writes fill the open page with 4 programs.
	for i := 0; i < 4; i++ {
		s.Write(int64(i), int64(i)*100*4096, 4096)
	}
	first := d.Map.Get(0)
	pg := d.Arr.PageOf(first)
	if int(pg.ProgramCount) != 4 {
		t.Fatalf("open page programs = %d, want 4", pg.ProgramCount)
	}
	// The fifth write must move to a new page.
	s.Write(5, 500*4096, 4096)
	if d.Map.Get(500).PageAddr() == first.PageAddr() {
		t.Error("write accepted beyond program budget")
	}
	checkConsistency(t, d)
}

func TestMGASplitsAcrossPages(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "MGA", cfg)
	d := s.Device()
	s.Write(0, 0, 8192)         // slots 0,1 of open page
	s.Write(1, 100*4096, 12288) // 3 subpages: 2 fit, 1 spills
	if d.Map.Get(100).PageAddr() != d.Map.Get(0).PageAddr() {
		t.Error("first spill subpage should fill the open page")
	}
	if d.Map.Get(102).PageAddr() == d.Map.Get(0).PageAddr() {
		t.Error("third spill subpage cannot fit the old page")
	}
	checkConsistency(t, d)
}

func TestIPUReservesRemainder(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	s.Write(0, 0, 4096)
	ppa := d.Map.Get(0)
	b := d.Arr.Block(ppa.Block())
	if b.DeadSub != 0 {
		t.Errorf("IPU killed %d slots; must reserve them", b.DeadSub)
	}
	if b.Level != flash.LevelWork {
		t.Errorf("new data landed in %v, want Work", b.Level)
	}
}

func TestIPUIntraPageUpdate(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	s.Write(0, 0, 4096)
	first := d.Map.Get(0)
	s.Write(1, 0, 4096) // update fits in the same page
	second := d.Map.Get(0)
	if second.PageAddr() != first.PageAddr() {
		t.Fatal("update did not stay in the old page")
	}
	if second.Slot() == first.Slot() {
		t.Fatal("update reused the same slot")
	}
	sp := d.Arr.Subpage(second)
	if !sp.Partial {
		t.Error("intra-page update must be a partial program")
	}
	// The paper's key claim: the new valid data has no in-page disturb,
	// because the disturb landed on the invalidated old version.
	if sp.InPageDisturb != 0 {
		t.Errorf("valid data took in-page disturb: %d", sp.InPageDisturb)
	}
	if old := d.Arr.Subpage(first); old.State != flash.SubInvalid {
		t.Error("old version not invalidated")
	}
	checkConsistency(t, d)
}

func TestIPUUpgradeOnFullPage(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	// 4 writes of 1 subpage: initial + 3 intra-page updates fill the page.
	for i := 0; i < 4; i++ {
		s.Write(int64(i), 0, 4096)
	}
	pageA := d.Map.Get(0).PageAddr()
	// Fifth write cannot fit: upgraded movement to a Monitor block.
	s.Write(4, 0, 4096)
	ppa := d.Map.Get(0)
	if ppa.PageAddr() == pageA {
		t.Fatal("fifth version cannot stay in the exhausted page")
	}
	if lvl := d.Arr.Block(ppa.Block()).Level; lvl != flash.LevelMonitor {
		t.Fatalf("upgraded data landed at %v, want Monitor", lvl)
	}
	// Keep updating: the data must climb to Hot and stay there.
	for i := 5; i < 40; i++ {
		s.Write(int64(i), 0, 4096)
	}
	if lvl := d.Arr.Block(d.Map.Get(0).Block()).Level; lvl != flash.LevelHot {
		t.Fatalf("hot data at %v, want Hot", lvl)
	}
	checkConsistency(t, d)
}

func TestIPUTwoSubpageUpdateFitsOnce(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	s.Write(0, 0, 8192) // slots 0,1
	first := d.Map.Get(0).PageAddr()
	s.Write(1, 0, 8192) // fits in slots 2,3
	if d.Map.Get(0).PageAddr() != first {
		t.Fatal("two-subpage update should fit the reserved half")
	}
	s.Write(2, 0, 8192) // page now exhausted: upgrade
	if d.Map.Get(0).PageAddr() == first {
		t.Fatal("third version cannot fit")
	}
	if lvl := d.Arr.Block(d.Map.Get(0).Block()).Level; lvl != flash.LevelMonitor {
		t.Errorf("level = %v, want Monitor", lvl)
	}
}

// driveWorkload runs a mixed hot/cold workload sized to force SLC GC.
func driveWorkload(t *testing.T, s Scheme, writes int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := int64(0)
	for i := 0; i < writes; i++ {
		now += 50_000 // 50us between requests
		var off int64
		if rng.Intn(100) < 40 { // hot: 32 extents of 8 KiB
			off = int64(rng.Intn(32)) * 8192
		} else {
			off = int64(rng.Intn(4096))*4096 + 1<<20
		}
		size := []int{4096, 8192, 16384}[rng.Intn(3)]
		if rng.Intn(100) < 70 {
			s.Write(now, off, size)
		} else {
			s.Read(now, off, size)
		}
	}
}

func TestWorkloadConsistencyAllSchemes(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig()
			s := newScheme(t, name, cfg)
			driveWorkload(t, s, 4000, 7)
			d := s.Device()
			checkConsistency(t, d)
			m := s.Metrics()
			if m.SLCGCs == 0 {
				t.Error("workload did not trigger SLC GC")
			}
			if d.Arr.SLCErases == 0 {
				t.Error("no SLC erases recorded")
			}
			if m.PageUtilization() <= 0 || m.PageUtilization() > 1 {
				t.Errorf("page utilization %.3f out of range", m.PageUtilization())
			}
			if d.SLCFreePages() < 0 {
				t.Errorf("negative free pages: %d", d.SLCFreePages())
			}
		})
	}
}

func TestIPUGCKeepsUpdatedDataInSLC(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	// Continuously update a small hot set while streaming cold data until
	// several GCs have run. The pace is sustainable (erases complete
	// before blocks are needed again), so the hot set must remain
	// SLC-resident rather than spill through the overflow path.
	now := int64(0)
	cold := int64(1 << 22)
	for i := 0; i < 3000; i++ {
		now += 2_000_000                    // 2ms: within the tiny device's GC bandwidth
		s.Write(now, int64(i%8)*8192, 8192) // hot set: 8 extents
		s.Write(now, cold, 8192)
		cold += 8192
	}
	if s.Metrics().SLCGCs == 0 {
		t.Fatal("no GC ran; test ineffective")
	}
	for e := 0; e < 8; e++ {
		ppa := d.Map.Get(flash.LSN(e * 2))
		if !ppa.Mapped() {
			t.Fatalf("hot extent %d unmapped", e)
		}
		if d.Arr.Block(ppa.Block()).Mode != flash.ModeSLC {
			t.Errorf("hot extent %d evicted to MLC", e)
		}
	}
	checkConsistency(t, d)
}

func TestGCFlushesColdDataToMLC(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig()
			s := newScheme(t, name, cfg)
			d := s.Device()
			// Write cold data only; once the cache cycles, early extents
			// must have been evicted to MLC (they are never updated).
			now := int64(0)
			for i := 0; i < 600; i++ {
				now += 50_000
				s.Write(now, int64(i)*16384, 16384)
			}
			if s.Metrics().SLCGCs == 0 {
				t.Fatal("no GC ran")
			}
			if d.Arr.MLCPrograms == 0 {
				t.Error("no data reached the MLC region")
			}
			ppa := d.Map.Get(0)
			if ppa.Mapped() && d.Arr.Block(ppa.Block()).Mode == flash.ModeSLC {
				t.Error("oldest cold data still in SLC after full cache turnover")
			}
			checkConsistency(t, d)
		})
	}
}

func TestPageUtilizationOrdering(t *testing.T) {
	// Fig. 9's ordering: MGA > IPU > Baseline.
	util := map[string]float64{}
	for _, name := range schemeNames {
		cfg := tinyConfig()
		s := newScheme(t, name, cfg)
		driveWorkload(t, s, 5000, 11)
		if s.Metrics().SLCGCs == 0 {
			t.Fatalf("%s: no GC", name)
		}
		util[name] = s.Metrics().PageUtilization()
	}
	if !(util["MGA"] > util["IPU"] && util["IPU"] > util["Baseline"]) {
		t.Errorf("utilization ordering violated: %+v", util)
	}
	if util["MGA"] < 0.9 {
		t.Errorf("MGA utilization %.3f; expected near 1", util["MGA"])
	}
}

func TestReadErrorRateOrdering(t *testing.T) {
	// Fig. 8's ordering: Baseline < IPU < MGA.
	ber := map[string]float64{}
	for _, name := range schemeNames {
		cfg := tinyConfig()
		s := newScheme(t, name, cfg)
		driveWorkload(t, s, 5000, 13)
		ber[name] = s.Metrics().ReadBER.Mean()
	}
	if !(ber["Baseline"] < ber["IPU"] && ber["IPU"] < ber["MGA"]) {
		t.Errorf("BER ordering violated: %+v", ber)
	}
}

func TestIPULevelProgramsPopulated(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	driveWorkload(t, s, 5000, 17)
	m := s.Metrics()
	if m.LevelPrograms[flash.LevelWork] == 0 {
		t.Error("no Work-level programs")
	}
	if m.LevelPrograms[flash.LevelMonitor] == 0 && m.LevelPrograms[flash.LevelHot] == 0 {
		t.Error("hot workload produced no Monitor/Hot programs")
	}
}

func TestMLCGCReclaims(t *testing.T) {
	cfg := tinyConfig()
	// Shrink the MLC region so eviction pressure forces MLC GC.
	cfg.Blocks = 32
	cfg.SLCRatio = 0.25 // 8 SLC blocks, 24 MLC blocks
	cfg.MLCPagesPerBlock = 8
	cfg.LogicalSubpages = cfg.MLCSubpages() / 2
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	now := int64(0)
	span := int64(cfg.LogicalSubpages) * 4096
	for i := 0; i < 3000; i++ {
		now += 50_000
		off := (int64(i) * 16384) % span
		s.Write(now, off, 16384)
	}
	if s.Metrics().MLCGCs == 0 {
		t.Fatal("MLC GC never ran")
	}
	if d.Arr.MLCErases == 0 {
		t.Error("no MLC erases")
	}
	checkConsistency(t, d)
}

func TestDeviceRejectsBadModel(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	em.RefBER = 0
	if _, err := NewDevice(&cfg, &em); err == nil {
		t.Error("invalid error model accepted")
	}
	bad := cfg
	bad.Blocks = 0
	good := errmodel.Default()
	if _, err := NewDevice(&bad, &good); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64, float64) {
		cfg := tinyConfig()
		s := newScheme(t, "IPU", cfg)
		driveWorkload(t, s, 2000, 23)
		m := s.Metrics()
		return m.AllLatency.Sum, s.Device().Arr.SLCErases, m.ReadBER.Mean()
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Errorf("simulation not deterministic: (%d,%d,%g) vs (%d,%d,%g)", a1, b1, c1, a2, b2, c2)
	}
}
