// Package scheme implements the three flash translation layers the paper
// evaluates on top of the shared flash/timing substrate:
//
//   - Baseline: dynamic page-level mapping, partial programming disabled.
//     A sub-page-sized write wastes the remainder of its physical page.
//   - MGA: subpage-granularity mapping with partial programming (after
//     Feng et al., DATE'17). Small writes from different requests are
//     aggregated into the open page's free subpages, maximising space
//     utilisation at the cost of in-page program disturb and a large
//     two-level mapping table.
//   - IPU: the paper's contribution. Updates are partially programmed into
//     the page holding the previous version (intra-page update), a
//     three-level block hierarchy (Work/Monitor/Hot) separates hot and
//     cold data, and GC selects victims by invalid-subpage ratio with
//     degraded movement of cold data toward the MLC region.
//
// All three share the Device: flash array, timing engine, error model,
// logical-to-physical bookkeeping, SLC-cache and MLC-region allocators,
// and garbage-collection plumbing.
package scheme

import (
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
)

// Scheme is one flash translation layer driving the shared Device.
type Scheme interface {
	// Name returns the paper's label for the scheme.
	Name() string
	// Write services a host write request arriving at time now (ns) and
	// returns its completion time. The request covers [offset, offset+size).
	Write(now int64, offset int64, size int) int64
	// Read services a host read request and returns its completion time.
	Read(now int64, offset int64, size int) int64
	// Device exposes the underlying device state for reporting.
	Device() *Device
	// Metrics exposes the run statistics.
	Metrics() *Metrics
	// Clone returns a deep copy of the scheme and its device, so a
	// preconditioned instance can serve as a template for many independent
	// runs. Clone only between requests (never mid-GC); the copy starts
	// with no checker attached.
	Clone() Scheme
	// Restore overwrites this instance with a deep copy of from, reusing
	// its own allocations — a Clone into recycled storage. It reports false
	// (leaving the receiver untouched) when from is a different concrete
	// scheme or geometry. Like Clone, the restored instance starts with no
	// checker attached.
	Restore(from Scheme) bool
}

// Metrics aggregates everything the paper's figures report for one run.
type Metrics struct {
	// Host request latencies (Fig. 5 and Fig. 13).
	ReadLatency  metrics.LatencySummary
	WriteLatency metrics.LatencySummary
	AllLatency   metrics.LatencySummary

	// ReadBER averages the effective bit error rate over every subpage the
	// host reads (Fig. 8 and Fig. 14).
	ReadBER metrics.MeanAccumulator
	// UncorrectableReads counts subpage reads whose raw errors exceeded
	// the ECC capability even after retries.
	UncorrectableReads int64
	// ReadRetries counts extra sensing operations forced by high BER.
	ReadRetries int64

	// SubpageReadsSLC/MLC split host subpage reads by region.
	SubpageReadsSLC, SubpageReadsMLC int64

	// LevelPrograms counts page program operations per block level
	// (Fig. 7; index by flash.BlockLevel, LevelHighDensity = MLC).
	LevelPrograms [flash.LevelHot + 1]int64

	// SLC-cache garbage collection (Figs. 9, 10, 12).
	SLCGCs, MLCGCs int64
	// GCVictimUsedSub / GCVictimTotalSub accumulate the page-utilisation
	// numerator and denominator over SLC GC victims (Fig. 9).
	GCVictimUsedSub, GCVictimTotalSub int64
	// GCMovedSubpages counts valid subpages relocated by GC.
	GCMovedSubpages int64
	// GCScanNS is the accumulated victim-selection cost (Fig. 12) on the
	// engine's deterministic scan clock (sim.ScanCostPerBlockNS per block
	// of metadata visited); GCBlocksScanned counts the candidate blocks
	// each selection considered. Both reproduce bit-for-bit across runs.
	GCScanNS        int64
	GCBlocksScanned int64

	// Fig. 11 peak occupancies.
	PeakSLCValidSubpages int64 // MGA second-level table entries
	PeakSLCFramePages    int64 // IPU frames resident in SLC (pages with valid data)

	// HostWritesToMLC counts host write chunks that bypassed the SLC cache
	// because it could not make room.
	HostWritesToMLC int64

	// HostTrims counts host discard commands serviced by Device.Trim.
	HostTrims int64

	// HostSubpagesWritten counts logical subpages the host wrote — the
	// write-amplification denominator (GC-moved subpages are the extra
	// physical traffic on top of it).
	HostSubpagesWritten int64

	// In-place Switch (IPS) counters.

	// InPlaceSwitches counts SLC cache blocks reprogrammed into MLC mode
	// in place instead of having their valid data migrated.
	InPlaceSwitches int64
	// SwitchedSubpages counts valid subpages carried through an in-place
	// switch — data that would have been GC movement traffic under a
	// migration-based scheme.
	SwitchedSubpages int64
	// SwitchBackReclaims counts switched blocks whose residual valid data
	// was migrated out so the block could be erased and returned to the
	// SLC cache.
	SwitchBackReclaims int64

	// PreemptiveGCs counts SLC victims fully reclaimed by the preemptive
	// incremental collector (IPU-PGC) — cleaned in bounded steps
	// interleaved with host writes rather than in one stop-the-world
	// trigger.
	PreemptiveGCs int64
}

// WriteAmplification returns physical subpage writes (host + GC movement)
// over host subpage writes. Subpages carried through an in-place switch
// are not rewritten, so they do not amplify.
func (m *Metrics) WriteAmplification() float64 {
	if m.HostSubpagesWritten == 0 {
		return 0
	}
	return 1 + float64(m.GCMovedSubpages)/float64(m.HostSubpagesWritten)
}

// ReadHitRatio returns the fraction of host subpage reads served from the
// SLC cache.
func (m *Metrics) ReadHitRatio() float64 {
	total := m.SubpageReadsSLC + m.SubpageReadsMLC
	if total == 0 {
		return 0
	}
	return float64(m.SubpageReadsSLC) / float64(total)
}

// GCs returns the total garbage collections so far (SLC + MLC): the
// progress-snapshot counter the core replay loop reports between requests.
func (m *Metrics) GCs() int64 { return m.SLCGCs + m.MLCGCs }

// PageUtilization returns the Fig. 9 metric: used subpages over total
// subpages across all SLC GC victims.
func (m *Metrics) PageUtilization() float64 {
	if m.GCVictimTotalSub == 0 {
		return 0
	}
	return float64(m.GCVictimUsedSub) / float64(m.GCVictimTotalSub)
}
