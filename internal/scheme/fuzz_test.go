package scheme

import (
	"testing"

	"ipusim/internal/check"
)

// FuzzReplay decodes the fuzz input as a tiny request program — scheme
// choice, preconditioning bit, then 4-byte (op, offset-hi, offset-lo, size)
// records — and replays it with the full invariant harness attached. Any
// checker violation panics, so the fuzzer searches for write/read/trim
// interleavings that corrupt mapping or flash state.
func FuzzReplay(f *testing.F) {
	// Seeds: each scheme, trims mixed in, overwrites of one hot frame, and
	// a preconditioned device.
	f.Add([]byte{0, 0, 0x00, 0x00, 0x00, 0x03, 0x04, 0x00, 0x01, 0x02})
	f.Add([]byte{1, 0, 0x00, 0x00, 0x10, 0x07, 0x07, 0x00, 0x10, 0x00})
	f.Add([]byte{2, 0, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x03, 0x07, 0x00, 0x00, 0x01})
	f.Add([]byte{2, 1, 0x01, 0x00, 0x20, 0x03, 0x04, 0x00, 0x20, 0x00, 0x01, 0x00, 0x20, 0x03})
	f.Add([]byte{3, 1, 0x00, 0x00, 0x00, 0x03, 0x04, 0x00, 0x01, 0x02, 0x07, 0x00, 0x00, 0x01})
	f.Add([]byte{4, 0, 0x00, 0x00, 0x10, 0x07, 0x01, 0x00, 0x10, 0x03, 0x04, 0x00, 0x10, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		cfg := tinyConfig()
		cfg.PreFillMLC = data[1]&1 == 1
		s := newScheme(t, schemeNames[int(data[0])%len(schemeNames)], cfg)
		d := s.Device()
		d.AttachChecker(check.Full)
		span := int64(cfg.LogicalSubpages) * 4096
		now := int64(0)
		const maxOps = 256
		for i, ops := 2, 0; i+4 <= len(data) && ops < maxOps; i, ops = i+4, ops+1 {
			op := data[i] % 8
			off := (int64(data[i+1])<<8 | int64(data[i+2])) * 4096 % span
			size := (int(data[i+3])%8 + 1) * 4096
			now += 250_000
			switch {
			case op < 5:
				s.Write(now, off, size)
			case op < 7:
				s.Read(now, off, size)
			default:
				d.Trim(now, off, size)
			}
		}
		if err := d.Check.CheckFinal(); err != nil {
			t.Fatal(err)
		}
	})
}
