package scheme

import (
	"testing"
	"time"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

func newTestDevice(t *testing.T, cfg flash.Config) *Device {
	t.Helper()
	em := errmodel.Default()
	d, err := NewDevice(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteFrameMLCMergesSiblings(t *testing.T) {
	d := newTestDevice(t, tinyConfig())
	// Put LSNs 0,1 (frame 0) into MLC.
	d.WriteFrameMLC(0, []flash.LSN{0, 1})
	first := d.Map.Get(0).PageAddr()
	// Now write LSNs 2,3 of the same frame: the page-mapped MLC region
	// must consolidate the whole frame into one fresh page.
	d.WriteFrameMLC(1, []flash.LSN{2, 3})
	for lsn := flash.LSN(0); lsn < 4; lsn++ {
		ppa := d.Map.Get(lsn)
		if !ppa.Mapped() {
			t.Fatalf("LSN %d unmapped", lsn)
		}
		if ppa.PageAddr() != d.Map.Get(0).PageAddr() {
			t.Fatalf("frame not consolidated: LSN %d at %v", lsn, ppa)
		}
	}
	if d.Map.Get(0).PageAddr() == first {
		t.Fatal("consolidation must move the frame to a fresh page")
	}
	// The old partial page's data must be invalid.
	b := d.Arr.Block(first.Block())
	if b.InvalidSub < 2 {
		t.Errorf("old copies not invalidated: invalid=%d", b.InvalidSub)
	}
}

func TestWriteFrameMLCLeavesSLCVersionsAlone(t *testing.T) {
	cfg := tinyConfig()
	d := newTestDevice(t, cfg)
	// LSN 0 lives in SLC; LSN 1 (same frame) is evicted to MLC. The merge
	// must not steal LSN 0 from the cache.
	_, ok := d.WriteChunkSLC(0, flash.LevelWork, []flash.LSN{0}, false)
	if !ok {
		t.Fatal("SLC write failed")
	}
	d.WriteFrameMLC(1, []flash.LSN{1})
	if d.Arr.Block(d.Map.Get(0).Block()).Mode != flash.ModeSLC {
		t.Error("SLC-resident subpage was pulled into the MLC merge")
	}
	if d.Arr.Block(d.Map.Get(1).Block()).Mode != flash.ModeMLC {
		t.Error("evicted subpage not in MLC")
	}
}

func TestPreFillMapsWholeLogicalSpace(t *testing.T) {
	cfg := tinyConfig()
	cfg.PreFillMLC = true
	d := newTestDevice(t, cfg)
	if d.Map.Mapped() != cfg.LogicalSubpages {
		t.Fatalf("prefill mapped %d of %d subpages", d.Map.Mapped(), cfg.LogicalSubpages)
	}
	// Everything must live in MLC, and the figure counters must be clean.
	for lsn := 0; lsn < cfg.LogicalSubpages; lsn += 97 {
		ppa := d.Map.Get(flash.LSN(lsn))
		if d.Arr.Block(ppa.Block()).Mode != flash.ModeMLC {
			t.Fatalf("LSN %d prefilled into %v", lsn, d.Arr.Block(ppa.Block()).Mode)
		}
	}
	if d.Arr.MLCPrograms != 0 || d.Arr.SLCPrograms != 0 {
		t.Errorf("prefill leaked into program counters: %d/%d", d.Arr.SLCPrograms, d.Arr.MLCPrograms)
	}
	if err := d.Arr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPreFillOverwriteInvalidatesMLCCopy(t *testing.T) {
	cfg := tinyConfig()
	cfg.PreFillMLC = true
	em := errmodel.Default()
	s, err := NewIPU(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	old := d.Map.Get(0)
	s.Write(0, 0, 4096)
	if d.Arr.Subpage(old).State != flash.SubInvalid {
		t.Error("prefilled copy not invalidated by host overwrite")
	}
	if d.Arr.Block(d.Map.Get(0).Block()).Mode != flash.ModeSLC {
		t.Error("overwrite did not land in the SLC cache")
	}
	checkConsistency(t, d)
}

func TestBlockReadyGating(t *testing.T) {
	cfg := tinyConfig()
	d := newTestDevice(t, cfg)
	// Fill the whole cache with dead writes (no GC runs here: we call
	// WriteChunkSLC directly, which never triggers collection).
	lsn := flash.LSN(0)
	for {
		if _, ok := d.WriteChunkSLC(0, flash.LevelWork, []flash.LSN{lsn}, true); !ok {
			break
		}
		d.invalidate(lsn)
		lsn++
	}
	if d.SLCFreePages() != 0 {
		t.Fatalf("free pages = %d after exhausting", d.SLCFreePages())
	}
	// Free one non-open block the hard way, with its erase in the
	// background: it must not be allocatable before the erase completes.
	victim := -1
	for _, id := range d.Arr.SLCBlockIDs() {
		if !d.isOpenSLC(id) {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Fatal("no closed block found")
	}
	must(d.Arr.Erase(victim))
	d.gcBackground = true
	d.perform(0, victim, 2 /* erase */, 0, 0)
	d.gcBackground = false
	d.blockReadyAt[victim] = d.Eng.ChipAvailableAt(d.Arr.ChipOf(victim))
	d.slcFree = append(d.slcFree, victim)
	d.slcFreePages += cfg.SLCPagesPerBlock

	ready := d.blockReadyAt[victim]
	if ready < int64(cfg.Timing.Erase) {
		t.Fatalf("readiness %d earlier than the erase itself", ready)
	}
	// Before the background erase completes, allocation must fail.
	if _, _, ok := d.allocSLCPage(ready-1, flash.LevelWork); ok {
		t.Fatal("allocated a block whose erase is still in flight")
	}
	// Once the erase completes, the block is usable.
	if _, _, ok := d.allocSLCPage(ready+1, flash.LevelWork); !ok {
		t.Fatal("ready block not allocatable")
	}
}

func TestHostOverflowToMLCUnderPressure(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewBaseline(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	// Slam writes with zero inter-arrival: erases cannot complete between
	// allocations, so some host writes must divert to the MLC region.
	for i := 0; i < 2000; i++ {
		s.Write(0, int64(i)*16384, 16384)
	}
	if d.Met.HostWritesToMLC == 0 {
		t.Error("no overflow under maximal pressure")
	}
	checkConsistency(t, d)
}

func TestStripingSpreadsChunks(t *testing.T) {
	cfg := tinyConfig()
	cfg.Channels = 2
	cfg.ChipsPerChannel = 2
	cfg.Blocks = 128
	cfg.SLCRatio = 0.5 // 64 SLC blocks: stripes = min(2, 64/12) = 2
	cfg.LogicalSubpages = cfg.MLCSubpages() / 2
	em := errmodel.Default()
	s, err := NewBaseline(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	s.Write(0, 0, 4096)
	s.Write(1, 100*4096, 4096)
	a := d.Map.Get(0)
	b := d.Map.Get(100)
	if d.Arr.ChipOf(a.Block()) == d.Arr.ChipOf(b.Block()) {
		t.Error("consecutive chunks landed on the same chip despite striping")
	}
}

func TestGCBackgroundFlagRestored(t *testing.T) {
	cfg := tinyConfig()
	d := newTestDevice(t, cfg)
	if d.gcBackground {
		t.Fatal("fresh device in background mode")
	}
	// Trigger an SLC GC artificially.
	_, ok := d.WriteChunkSLC(0, flash.LevelWork, []flash.LSN{0}, true)
	if !ok {
		t.Fatal("write failed")
	}
	d.slcFreePages = 0 // force the trigger condition
	d.MaybeGCSLC(0, GreedyVictim, MoveFlushAll)
	if d.gcBackground {
		t.Error("background flag leaked after GC")
	}
}

func TestMLCReserveScalesWithStripes(t *testing.T) {
	cfg := tinyConfig()
	d := newTestDevice(t, cfg)
	if got, min := d.mlcReserve(), len(d.mlcOpen)+2; got < min {
		t.Errorf("mlcReserve = %d, want >= %d", got, min)
	}
}

func TestPerformRoutesBackground(t *testing.T) {
	cfg := tinyConfig()
	d := newTestDevice(t, cfg)
	blk := d.Arr.SLCBlockIDs()[0]
	chip := d.Arr.ChipOf(blk)
	d.gcBackground = true
	end := d.perform(0, blk, 1 /* program */, 1, time.Microsecond)
	if end != 0 {
		t.Errorf("background op returned completion time %d", end)
	}
	if d.Eng.Backlog(chip) == 0 {
		t.Error("background op did not join the backlog")
	}
	d.gcBackground = false
	end = d.perform(0, blk, 1, 1, 0)
	if end <= 0 {
		t.Error("foreground op must advance time")
	}
}
