package scheme

import (
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// Baseline is the paper's comparison point: a dynamic page-level mapping
// FTL without partial programming. Every write chunk consumes a whole SLC
// page — a chunk smaller than a page kills the remaining slots, which is
// exactly the internal fragmentation the paper measures as ~52.8% page
// utilisation (Fig. 9). GC is greedy and flushes all valid data to MLC.
type Baseline struct {
	dev *Device
}

// NewBaseline builds the Baseline scheme on a fresh device.
func NewBaseline(cfg *flash.Config, em *errmodel.Model) (*Baseline, error) {
	d, err := NewDevice(cfg, em)
	if err != nil {
		return nil, err
	}
	return &Baseline{dev: d}, nil
}

// Clone implements Scheme.
func (b *Baseline) Clone() Scheme {
	return &Baseline{dev: b.dev.Clone()}
}

// Restore implements Scheme.
func (b *Baseline) Restore(from Scheme) bool {
	t, ok := from.(*Baseline)
	if !ok || b.dev.Map.Len() != t.dev.Map.Len() || b.dev.Arr.NumBlocks() != t.dev.Arr.NumBlocks() {
		return false
	}
	b.dev.Restore(t.dev)
	return true
}

// Name implements Scheme.
func (b *Baseline) Name() string { return "Baseline" }

// Device implements Scheme.
func (b *Baseline) Device() *Device { return b.dev }

// Metrics implements Scheme.
func (b *Baseline) Metrics() *Metrics { return b.dev.Met }

// Write implements Scheme: each frame chunk takes a fresh whole SLC page.
func (b *Baseline) Write(now int64, offset int64, size int) int64 {
	d := b.dev
	end := now
	for _, chunk := range d.Chunks(offset, size) {
		e, ok := d.WriteChunkSLC(now, flash.LevelWork, chunk, true)
		if !ok {
			e = d.WriteFrameMLC(now, chunk)
			d.Met.HostWritesToMLC++
		}
		if e > end {
			end = e
		}
	}
	d.MaybeGCSLC(now, GreedyVictim, MoveFlushAll)
	d.NoteHostWrite(now, offset, size)
	d.RecordWrite(now, end)
	return end
}

// Read implements Scheme.
func (b *Baseline) Read(now int64, offset int64, size int) int64 {
	return b.dev.ReadReq(now, offset, size)
}

var _ Scheme = (*Baseline)(nil)
