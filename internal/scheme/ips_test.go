package scheme

import (
	"testing"

	"ipusim/internal/check"
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// driveIPSColdFill streams never-updated cold data until the cache cycles:
// every GC victim is fully valid (reclaimable fraction 0), so each trigger
// must take the in-place switch path while budget remains.
func driveIPSColdFill(s *IPS, writes int) {
	now := int64(0)
	for i := 0; i < writes; i++ {
		now += 2_000_000
		s.Write(now, int64(i)*16384, 16384)
	}
}

func TestIPSSwitchesMostlyValidVictims(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPS(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	d.AttachChecker(check.Full)
	driveIPSColdFill(s, 400)
	m := s.Metrics()
	if m.InPlaceSwitches == 0 {
		t.Fatal("cold fill produced no in-place switches")
	}
	if m.SwitchedSubpages == 0 {
		t.Error("switches recorded but no subpages switched")
	}
	if len(s.switched) > s.maxSwitched {
		t.Errorf("switched blocks %d exceed budget %d", len(s.switched), s.maxSwitched)
	}
	// A switched block is an SLC-home block in MLC mode holding valid,
	// stress-marked data whose mapping survived the switch untouched.
	found := false
	for _, v := range s.switched {
		b := d.Arr.Block(v)
		if b.Mode != flash.ModeMLC || !b.Switched {
			t.Fatalf("switched block %d: mode %v Switched=%v", v, b.Mode, b.Switched)
		}
		for p := range b.Pages {
			for sl := range b.Pages[p].Slots {
				sp := &b.Pages[p].Slots[sl]
				if sp.State != flash.SubValid {
					continue
				}
				found = true
				if sp.ReprogramStress == 0 {
					t.Fatalf("valid subpage in switched block %d has no reprogram stress", v)
				}
				if got := d.Map.Get(sp.LSN); got != flash.NewPPA(v, p, sl) {
					t.Fatalf("LSN %d remapped across switch: %v", sp.LSN, got)
				}
			}
		}
	}
	if len(s.switched) > 0 && !found {
		t.Error("no valid data in any switched block")
	}
	if err := d.Check.CheckFinal(); err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, d)
}

func TestIPSBudgetForcesSwitchBackReclaims(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPS(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	d.AttachChecker(check.Full)
	// Enough cold churn to exhaust the budget several times over.
	driveIPSColdFill(s, 1500)
	m := s.Metrics()
	if m.SwitchBackReclaims == 0 {
		t.Fatal("budget pressure produced no switch-back reclaims")
	}
	if len(s.switched) > s.maxSwitched {
		t.Errorf("switched blocks %d exceed budget %d", len(s.switched), s.maxSwitched)
	}
	// Every reclaimed block must be back in SLC mode; total SLC cache pages
	// must account exactly for the currently switched population.
	wantPages := 0
	for _, id := range d.Arr.SLCBlockIDs() {
		if d.Arr.Block(id).Mode == flash.ModeSLC {
			wantPages += len(d.Arr.Block(id).Pages)
		}
	}
	if got := d.SLCTotalPages(); got != wantPages {
		t.Errorf("slcTotalPages = %d, want %d (SLC-mode pages only)", got, wantPages)
	}
	if err := d.Check.CheckFinal(); err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, d)
}

func TestIPSReadsFromSwitchedBlocksPayMLC(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPS(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	driveIPSColdFill(s, 400)
	if s.Metrics().InPlaceSwitches == 0 {
		t.Fatal("no switches; test ineffective")
	}
	// Find an LSN living in a switched block and read it: the read must be
	// accounted as an MLC subpage read.
	var target flash.LSN
	foundTarget := false
	for _, v := range s.switched {
		b := d.Arr.Block(v)
		for p := range b.Pages {
			for sl := range b.Pages[p].Slots {
				if b.Pages[p].Slots[sl].State == flash.SubValid {
					target = b.Pages[p].Slots[sl].LSN
					foundTarget = true
				}
			}
		}
	}
	if !foundTarget {
		t.Skip("no valid data resident in switched blocks at run end")
	}
	before := s.Metrics().SubpageReadsMLC
	s.Read(1<<40, int64(target)*4096, 4096)
	if s.Metrics().SubpageReadsMLC != before+1 {
		t.Errorf("read of switched-block data counted as SLC hit")
	}
}

func TestIPSIntraPageUpdate(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPS(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	s.Write(0, 0, 4096)
	first := d.Map.Get(0)
	s.Write(1, 0, 4096)
	second := d.Map.Get(0)
	if second.PageAddr() != first.PageAddr() {
		t.Fatal("update did not stay in the old page")
	}
	if !d.Arr.Subpage(second).Partial {
		t.Error("intra-page update must be a partial program")
	}
	if d.Arr.Subpage(first).State != flash.SubInvalid {
		t.Error("old version not invalidated")
	}
	checkConsistency(t, d)
}

func TestIPSCloneAndRestore(t *testing.T) {
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPS(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	driveIPSColdFill(s, 500)
	c := s.Clone().(*IPS)
	if len(c.switched) != len(s.switched) {
		t.Fatalf("clone switched %v, want %v", c.switched, s.switched)
	}
	// Diverge the original; the clone's switched set must not follow.
	snap := append([]int(nil), c.switched...)
	driveIPSColdFill(s, 500)
	for i, v := range snap {
		if c.switched[i] != v {
			t.Fatal("clone's switched set aliased the original")
		}
	}
	if !s.Restore(c) {
		t.Fatal("restore onto same geometry refused")
	}
	if len(s.switched) != len(snap) {
		t.Errorf("restored switched %v, want %v", s.switched, snap)
	}
	// Type and parameter mismatches must refuse.
	other, err := NewIPU(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	if s.Restore(other) {
		t.Error("restore accepted a different scheme type")
	}
}
