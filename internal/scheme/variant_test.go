package scheme

import (
	"testing"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

func newVariant(t *testing.T, cfg flash.Config, name string) *IPU {
	t.Helper()
	v, ok := IPUVariants()[name]
	if !ok {
		t.Fatalf("unknown variant %s", name)
	}
	em := errmodel.Default()
	s, err := NewIPUVariant(&cfg, &em, v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIPUVariantsComplete(t *testing.T) {
	want := []string{"IPU", "IPU-greedyGC", "IPU-flat", "IPU-noupdate", "IPU-AC"}
	vs := IPUVariants()
	for _, n := range want {
		v, ok := vs[n]
		if !ok {
			t.Fatalf("missing variant %s", n)
		}
		if v.Name != n {
			t.Errorf("variant %s mislabelled as %s", n, v.Name)
		}
		if err := v.Validate(); err != nil {
			t.Errorf("variant %s invalid: %v", n, err)
		}
	}
	if len(vs) != len(want) {
		t.Errorf("have %d variants, want %d", len(vs), len(want))
	}
}

func TestIPUVariantValidate(t *testing.T) {
	bad := []IPUVariant{
		{},                        // no name
		{Name: "x", MaxLevel: -1}, // below Work... LevelHighDensity
		{Name: "x", MaxLevel: flash.LevelHot + 1},
		{Name: "x", MaxLevel: flash.LevelHot, CombineBudget: -1},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, v)
		}
	}
}

func TestVariantNameFlowsThrough(t *testing.T) {
	s := newVariant(t, tinyConfig(), "IPU-flat")
	if s.Name() != "IPU-flat" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Variant().MaxLevel != flash.LevelWork {
		t.Error("flat variant must cap at Work level")
	}
}

func TestFlatVariantNeverLeavesWork(t *testing.T) {
	cfg := tinyConfig()
	s := newVariant(t, cfg, "IPU-flat")
	d := s.Device()
	for i := 0; i < 40; i++ {
		s.Write(int64(i), 0, 4096)
	}
	ppa := d.Map.Get(0)
	if lvl := d.Arr.Block(ppa.Block()).Level; lvl != flash.LevelWork {
		t.Errorf("flat variant placed data at %v", lvl)
	}
	checkConsistency(t, d)
}

func TestNoUpdateVariantAlwaysRewrites(t *testing.T) {
	cfg := tinyConfig()
	s := newVariant(t, cfg, "IPU-noupdate")
	d := s.Device()
	s.Write(0, 0, 4096)
	first := d.Map.Get(0).PageAddr()
	s.Write(1, 0, 4096)
	if d.Map.Get(0).PageAddr() == first {
		t.Fatal("noupdate variant performed an intra-page update")
	}
	if d.Arr.PartialPrograms != 0 {
		t.Errorf("noupdate variant issued %d partial programs", d.Arr.PartialPrograms)
	}
	checkConsistency(t, d)
}

func TestCombineColdAggregatesEnteringData(t *testing.T) {
	cfg := tinyConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	s := newVariant(t, cfg, "IPU-AC")
	d := s.Device()
	// Two brand-new small chunks from different frames must share a page.
	s.Write(0, 0, 4096)
	s.Write(1, 100*4096, 4096)
	a, b := d.Map.Get(0), d.Map.Get(100)
	if a.PageAddr() != b.PageAddr() {
		t.Fatalf("cold chunks not combined: %v vs %v", a, b)
	}
	// The combine budget (2 programs) must bound further appends.
	s.Write(2, 200*4096, 4096)
	c := d.Map.Get(200)
	if c.PageAddr() == a.PageAddr() {
		t.Error("combine budget exceeded")
	}
	checkConsistency(t, d)
}

func TestCombineColdKeepsUpdatesIntraPage(t *testing.T) {
	cfg := tinyConfig()
	cfg.Channels = 1
	cfg.ChipsPerChannel = 1
	s := newVariant(t, cfg, "IPU-AC")
	d := s.Device()
	s.Write(0, 0, 4096)        // cold entry, shared page
	s.Write(1, 100*4096, 4096) // second cold entry, same page
	pageA := d.Map.Get(0).PageAddr()
	// An update of resident data must use the intra-page path (same page,
	// new slot), not the combine path.
	s.Write(2, 0, 4096)
	if d.Map.Get(0).PageAddr() != pageA {
		t.Fatal("update left the shared page despite free slots")
	}
	if d.Arr.Subpage(d.Map.Get(0)).Partial != true {
		t.Error("update must be a partial program")
	}
	checkConsistency(t, d)
}

func TestCombineImprovesUtilization(t *testing.T) {
	utils := map[string]float64{}
	for _, name := range []string{"IPU", "IPU-AC"} {
		cfg := tinyConfig()
		s := newVariant(t, cfg, name)
		driveWorkload(t, s, 5000, 31)
		if s.Metrics().SLCGCs == 0 {
			t.Fatalf("%s: no GC", name)
		}
		utils[name] = s.Metrics().PageUtilization()
	}
	if utils["IPU-AC"] <= utils["IPU"] {
		t.Errorf("adaptive combine did not improve utilisation: %+v", utils)
	}
}

func TestGreedyVariantStillConsistent(t *testing.T) {
	cfg := tinyConfig()
	s := newVariant(t, cfg, "IPU-greedyGC")
	driveWorkload(t, s, 4000, 37)
	if s.Metrics().SLCGCs == 0 {
		t.Fatal("no GC ran")
	}
	checkConsistency(t, s.Device())
}
