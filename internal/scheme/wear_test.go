package scheme

import (
	"testing"

	"ipusim/internal/flash"
)

// TestStaticWearLevelingSpread verifies the Table 2 wear-levelling rule:
// allocating the lowest-erase-count free block keeps SLC block wear tight
// even under a heavily skewed workload.
func TestStaticWearLevelingSpread(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	now := int64(0)
	for i := 0; i < 8000; i++ {
		now += 2_000_000
		// Hammer a tiny hot set plus a cold stream.
		s.Write(now, int64(i%4)*8192, 8192)
		s.Write(now, int64(1<<22)+int64(i)*8192, 8192)
	}
	if d.Arr.SLCErases == 0 {
		t.Fatal("no erases; test ineffective")
	}
	min, max := int(^uint(0)>>1), 0
	for _, id := range d.Arr.SLCBlockIDs() {
		ec := d.Arr.Block(id).EraseCount
		if ec < min {
			min = ec
		}
		if ec > max {
			max = ec
		}
	}
	// Static wear levelling cannot equalise perfectly (open blocks lag),
	// but the spread must stay within a small band of the mean.
	mean := int(d.Arr.SLCErases) / len(d.Arr.SLCBlockIDs())
	if max-min > mean+8 {
		t.Errorf("erase spread too wide: min=%d max=%d mean=%d", min, max, mean)
	}
}

// TestEffectivePEGrowsWithUse ties block wear to the error model: blocks
// erased during the run read worse than the device baseline.
func TestEffectivePEGrowsWithUse(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	now := int64(0)
	for i := 0; i < 600 && d.Arr.SLCErases == 0; i++ {
		now += 2_000_000
		s.Write(now, int64(i)*16384, 16384)
	}
	if d.Arr.SLCErases == 0 {
		t.Fatal("no erases")
	}
	worn := -1
	for _, id := range d.Arr.SLCBlockIDs() {
		if d.Arr.Block(id).EraseCount > 0 {
			worn = id
			break
		}
	}
	b := d.Arr.Block(worn)
	if b.PE(cfg.PEBaseline) <= cfg.PEBaseline {
		t.Errorf("worn block PE %d not above baseline %d", b.PE(cfg.PEBaseline), cfg.PEBaseline)
	}
	if got := d.Err.RawBER(b.PE(cfg.PEBaseline), false); got <= d.Err.RawBER(cfg.PEBaseline, false) {
		t.Error("worn block BER not above baseline BER")
	}
}

// TestLevelLabelsOnlyOnSLC confirms MLC blocks never acquire cache levels.
func TestLevelLabelsOnlyOnSLC(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	driveWorkload(t, s, 3000, 41)
	for _, id := range d.Arr.MLCBlockIDs() {
		if lvl := d.Arr.Block(id).Level; lvl != flash.LevelHighDensity {
			t.Fatalf("MLC block %d labelled %v", id, lvl)
		}
	}
}
