package scheme

import (
	"testing"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// benchConfig is tinyConfig scaled up to a 64-block SLC cache, so victim
// scans have a realistic candidate population.
func benchConfig() flash.Config {
	c := tinyConfig()
	c.Blocks = 512
	return c
}

// benchIPUDevice builds a bare IPU device on the given config without the
// *testing.T plumbing of newScheme.
func benchIPUDevice(b *testing.B, cfg flash.Config) *Device {
	b.Helper()
	em := errmodel.Default()
	s, err := NewIPU(&cfg, &em)
	if err != nil {
		b.Fatal(err)
	}
	return s.Device()
}

// populatedIPU returns an IPU device with a realistic mix of hot and cold
// blocks for victim-selection microbenchmarks.
func populatedIPU(b *testing.B) *IPU {
	b.Helper()
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPU(&cfg, &em)
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 2000; i++ {
		now += 500_000
		s.Write(now, int64(i%16)*8192, 8192)
		s.Write(now, int64(1<<22)+int64(i)*8192, 8192)
	}
	return s
}

// BenchmarkGreedyVictim measures the conventional victim scan.
func BenchmarkGreedyVictim(b *testing.B) {
	s := populatedIPU(b)
	d := s.Device()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if GreedyVictim(d, int64(i), d.openExcludes()) < 0 {
			b.Fatal("no victim")
		}
	}
}

// BenchmarkISRVictim measures the Eq. 1-2 scan — the Fig. 12 comparison
// at microbenchmark granularity.
func BenchmarkISRVictim(b *testing.B) {
	s := populatedIPU(b)
	d := s.Device()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ISRVictim(d, int64(i)+1_000_000_000, d.openExcludes()) < 0 {
			b.Fatal("no victim")
		}
	}
}

// shapeCache programs every page of every SLC block into one of three
// cache shapes, so the victim-selection benchmarks see fixed, hand-sized
// candidate populations instead of whatever a workload happened to leave.
func shapeCache(b *testing.B, d *Device, shape string, now int64) {
	b.Helper()
	slots := d.Cfg.SlotsPerPage()
	for _, id := range d.Arr.SLCBlockIDs() {
		blk := d.Arr.Block(id)
		for p := range blk.Pages {
			switch shape {
			case "cold-heavy":
				// Old never-updated data, barely any garbage: Eq. 2's
				// coldness term dominates the score.
				fillPage(b, d, id, p, now-1_000_000_000, 1)
			case "hot-heavy":
				// Every page updated in place (out of the J set) and half
				// invalidated: only the garbage term is live.
				updatePage(b, d, id, p, now-1_000_000, slots/2)
			case "all-invalid":
				fillPage(b, d, id, p, now-1_000_000, slots)
			default:
				b.Fatalf("unknown shape %q", shape)
			}
		}
	}
}

// BenchmarkISRVictimShapes measures the Eq. 1-2 victim scan against the
// three canonical cache shapes on a 64-block SLC cache.
func BenchmarkISRVictimShapes(b *testing.B) {
	const now = 2_000_000_000
	for _, shape := range []string{"cold-heavy", "hot-heavy", "all-invalid"} {
		b.Run(shape, func(b *testing.B) {
			d := benchIPUDevice(b, benchConfig())
			shapeCache(b, d, shape, now)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ISRVictim(d, now, nil) < 0 {
					b.Fatal("no victim")
				}
			}
		})
	}
}

// refillVictim fills every page of the victim block with frame-aligned
// valid mapped data, keeping the map and the SLC occupancy gauges
// consistent. halfInvalid then invalidates every other slot, modelling a
// partially reclaimable victim.
func refillVictim(d *Device, victim int, now int64, halfInvalid bool) {
	slots := d.Cfg.SlotsPerPage()
	blk := d.Arr.Block(victim)
	for p := range blk.Pages {
		base := p * slots
		for s := 0; s < slots; s++ {
			d.invalidate(flash.LSN(base + s))
		}
		writes := make([]flash.SlotWrite, slots)
		for s := 0; s < slots; s++ {
			writes[s] = flash.SlotWrite{Slot: s, LSN: flash.LSN(base + s)}
		}
		if _, err := d.Arr.ProgramPage(victim, p, writes, now); err != nil {
			panic(err)
		}
		for s := 0; s < slots; s++ {
			d.Map.Set(flash.LSN(base+s), flash.NewPPA(victim, p, s))
		}
		d.slcValidSub += int64(slots)
		d.slcPagesWithValid++
		d.slcFreePages--
	}
	if halfInvalid {
		for p := range blk.Pages {
			for s := 1; s < slots; s += 2 {
				d.invalidate(flash.LSN(p*slots + s))
			}
		}
	}
}

// BenchmarkGCMoveFlushAll measures GC valid-data movement: one victim
// block's valid subpages flushed to the MLC region, frame consolidation
// and downstream MLC allocation included. Refill and erase happen off the
// clock.
func BenchmarkGCMoveFlushAll(b *testing.B) {
	for _, mode := range []struct {
		name string
		half bool
	}{{"AllValid", false}, {"HalfInvalid", true}} {
		b.Run(mode.name, func(b *testing.B) {
			d := benchIPUDevice(b, tinyConfig())
			victim := d.Arr.SLCBlockIDs()[0]
			now := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				now += 1_000_000
				refillVictim(d, victim, now, mode.half)
				b.StartTimer()
				MoveFlushAll(d, now, victim)
				b.StopTimer()
				blk := d.Arr.Block(victim)
				if blk.ValidSub != 0 {
					b.Fatal("movement left valid data")
				}
				freeBefore := blk.FreePages()
				if err := d.Arr.Erase(victim); err != nil {
					b.Fatal(err)
				}
				d.slcFreePages += len(blk.Pages) - freeBefore
				b.StartTimer()
			}
		})
	}
}

// BenchmarkHostWrite measures the full write path of each scheme.
func BenchmarkHostWrite(b *testing.B) {
	for _, name := range schemeNames {
		b.Run(name, func(b *testing.B) {
			cfg := tinyConfig()
			em := errmodel.Default()
			var s Scheme
			var err error
			switch name {
			case "Baseline":
				s, err = NewBaseline(&cfg, &em)
			case "MGA":
				s, err = NewMGA(&cfg, &em)
			default:
				s, err = NewIPU(&cfg, &em)
			}
			if err != nil {
				b.Fatal(err)
			}
			now := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 500_000
				s.Write(now, int64(i%4096)*8192, 8192)
			}
		})
	}
}

// BenchmarkHostRead measures the read path including ECC cost evaluation.
func BenchmarkHostRead(b *testing.B) {
	cfg := tinyConfig()
	cfg.PreFillMLC = true
	em := errmodel.Default()
	s, err := NewIPU(&cfg, &em)
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 500_000
		s.Read(now, int64(i%4096)*8192, 8192)
	}
}
