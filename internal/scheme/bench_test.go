package scheme

import (
	"testing"

	"ipusim/internal/errmodel"
)

// populatedIPU returns an IPU device with a realistic mix of hot and cold
// blocks for victim-selection microbenchmarks.
func populatedIPU(b *testing.B) *IPU {
	b.Helper()
	cfg := tinyConfig()
	em := errmodel.Default()
	s, err := NewIPU(&cfg, &em)
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 2000; i++ {
		now += 500_000
		s.Write(now, int64(i%16)*8192, 8192)
		s.Write(now, int64(1<<22)+int64(i)*8192, 8192)
	}
	return s
}

// BenchmarkGreedyVictim measures the conventional victim scan.
func BenchmarkGreedyVictim(b *testing.B) {
	s := populatedIPU(b)
	d := s.Device()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if GreedyVictim(d, int64(i), d.isOpenSLC) < 0 {
			b.Fatal("no victim")
		}
	}
}

// BenchmarkISRVictim measures the Eq. 1-2 scan — the Fig. 12 comparison
// at microbenchmark granularity.
func BenchmarkISRVictim(b *testing.B) {
	s := populatedIPU(b)
	d := s.Device()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ISRVictim(d, int64(i)+1_000_000_000, d.isOpenSLC) < 0 {
			b.Fatal("no victim")
		}
	}
}

// BenchmarkHostWrite measures the full write path of each scheme.
func BenchmarkHostWrite(b *testing.B) {
	for _, name := range schemeNames {
		b.Run(name, func(b *testing.B) {
			cfg := tinyConfig()
			em := errmodel.Default()
			var s Scheme
			var err error
			switch name {
			case "Baseline":
				s, err = NewBaseline(&cfg, &em)
			case "MGA":
				s, err = NewMGA(&cfg, &em)
			default:
				s, err = NewIPU(&cfg, &em)
			}
			if err != nil {
				b.Fatal(err)
			}
			now := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 500_000
				s.Write(now, int64(i%4096)*8192, 8192)
			}
		})
	}
}

// BenchmarkHostRead measures the read path including ECC cost evaluation.
func BenchmarkHostRead(b *testing.B) {
	cfg := tinyConfig()
	cfg.PreFillMLC = true
	em := errmodel.Default()
	s, err := NewIPU(&cfg, &em)
	if err != nil {
		b.Fatal(err)
	}
	now := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 500_000
		s.Read(now, int64(i%4096)*8192, 8192)
	}
}
