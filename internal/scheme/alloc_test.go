package scheme

import (
	"testing"

	"ipusim/internal/errmodel"
)

// preconditioned builds a scheme and drives enough host writes through it
// to reach steady state: every device-owned scratch buffer (LSN ranges,
// chunk views, frame collectors, exclusion set, read groups) has grown to
// its working size and the SLC cache has cycled through several GC
// triggers. After this, the request path must not allocate at all.
func preconditioned(tb testing.TB, name string) Scheme {
	tb.Helper()
	cfg := tinyConfig()
	cfg.PreFillMLC = true // reads below hit mapped data
	em := errmodel.Default()
	var s Scheme
	var err error
	switch name {
	case "Baseline":
		s, err = NewBaseline(&cfg, &em)
	case "MGA":
		s, err = NewMGA(&cfg, &em)
	case "IPU":
		s, err = NewIPU(&cfg, &em)
	case "IPS":
		s, err = NewIPS(&cfg, &em)
	case "IPU-PGC":
		s, err = NewIPUPGC(&cfg, &em, DefaultPGCConfig())
	default:
		tb.Fatalf("unknown scheme %q", name)
	}
	if err != nil {
		tb.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 4000; i++ {
		now += 500_000
		// Hot updates plus a cold stream: exercises intra-page updates,
		// level upgrades and repeated GC across all three schemes.
		s.Write(now, int64(i%16)*8192, 8192)
		s.Write(now, int64(i%4096)*16384, 16384)
	}
	return s
}

// TestWriteZeroAllocs asserts the host write path — including the GC
// triggers it absorbs — performs zero heap allocations per request once the
// device is warm. This pins the hot-path overhaul: any reintroduced
// per-request make/map/closure fails here deterministically.
func TestWriteZeroAllocs(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			s := preconditioned(t, name)
			now := int64(4001 * 500_000)
			i := 0
			avg := testing.AllocsPerRun(400, func() {
				now += 500_000
				s.Write(now, int64(i%16)*8192, 8192)
				s.Write(now, int64(i%4096)*16384, 16384)
				i++
			})
			if avg != 0 {
				t.Errorf("%s: %.2f allocs per steady-state write, want 0", name, avg)
			}
			checkConsistency(t, s.Device())
		})
	}
}

// TestReadZeroAllocs asserts the host read path (mapping lookups, per-page
// grouping, ECC cost evaluation) allocates nothing per request on a warm
// device.
func TestReadZeroAllocs(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			s := preconditioned(t, name)
			now := int64(4001 * 500_000)
			i := 0
			avg := testing.AllocsPerRun(400, func() {
				now += 500_000
				s.Read(now, int64(i%16)*8192, 8192)
				s.Read(now, int64(i%4096)*16384, 16384)
				i++
			})
			if avg != 0 {
				t.Errorf("%s: %.2f allocs per steady-state read, want 0", name, avg)
			}
		})
	}
}
