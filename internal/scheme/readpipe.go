package scheme

import (
	"time"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/sim"
)

// The intra-run read pipeline. A replay is a single logical timeline —
// writes, GC and the engine's chip/channel bookkeeping are deeply
// sequential — but the expensive part of the read path is not: evaluating
// per-subpage ECC cost (EffectiveBER + CostFromBER, two math.Pow calls per
// subpage) is pure arithmetic over inputs that are fixed the moment the
// request is dispatched. The pipeline therefore splits every host read in
// two:
//
//   - dispatch (issue thread): map lookup, page grouping, invariant
//     checking, and the engine PerformMode calls — everything that touches
//     or orders mutable device state. The reliability inputs of every
//     subpage (memoised Fig. 2 base rate + disturb counters) are
//     snapshotted into a slot of the operation ring, because a later write
//     or GC may remap or re-stress them before the worker runs.
//   - evaluate (worker, sharded by the first page's parallel unit):
//     per-subpage effective BER, decode time, retries, and the request's
//     completion time. ECC time occupies neither chip nor channel
//     (sim.Engine charges it after the flash op), so evaluating it off the
//     timeline cannot change any scheduling decision.
//   - commit (issue thread, dispatch order): fold the results into the
//     metrics. Every aggregate a read touches is either an integer sum,
//     a latency histogram (order-free), or the ReadBER mean — a float sum
//     that is order-sensitive, which is exactly why commits replay in
//     dispatch order. The result is bit-identical to the serial path.
//
// Consecutive reads batch into one ring operation (readOpBatch) to
// amortise the handoff; a batch may span interleaved writes because write
// metrics and read metrics never share an order-sensitive accumulator.

// readOpBatch is the number of host read requests carried by one pipeline
// operation.
const readOpBatch = 8

// readSubSnap is the dispatch-time snapshot of one subpage's reliability
// inputs: the memoised base (Fig. 2) rate for its wear and programming
// mode, plus the three stress counters.
type readSubSnap struct {
	base      float64
	inPage    uint16
	neighbor  uint16
	reprogram uint16
}

// readGroupJob is one physical-page read of a request: n subpage
// snapshots in, per-subpage BER plus decode/retry totals out. base is the
// engine completion time before ECC extra, fixed at dispatch.
type readGroupJob struct {
	n    int
	slc  bool
	mode flash.Mode
	base int64
	sub  [8]readSubSnap

	// Results, filled by the worker.
	ber     [8]float64
	retries int
	unc     int
}

// unmappedJob is one pseudo-placed read of never-written data. Its cost is
// a device-wide constant, so it is fully evaluated at dispatch; commit
// only replays the metric updates.
type unmappedJob struct {
	n   int
	end int64
}

// readReqJob is one host read request in flight through the pipeline.
type readReqJob struct {
	now      int64
	baseEnd  int64 // max(now, unmapped completion times), fixed at dispatch
	groups   []readGroupJob
	unmapped []unmappedJob

	end int64 // result: request completion including ECC extra
}

// readOp is one pipeline ring slot: a batch of consecutive read requests.
type readOp struct {
	n    int
	reqs [readOpBatch]readReqJob
}

// readPipe owns the pipeline and its payload ring.
type readPipe struct {
	p   *sim.Pipeline
	ops []readOp
	// cur is the ring slot of the batch currently being filled, -1 when
	// none is open. unit is that batch's parallel-unit tag.
	cur  int
	unit int
}

// ParallelReads reports whether the device currently routes host reads
// through the pipeline.
func (d *Device) ParallelReads() bool { return d.pipe != nil }

// StartReadPipeline routes subsequent host reads through a worker pool of
// the given size. Metrics results are identical to the serial path; only
// wall-clock time changes. The caller owns the device for the duration and
// must call StopReadPipeline (or FlushReads before reading metrics).
// Workers below 2 leave the device serial.
func (d *Device) StartReadPipeline(workers int) {
	if workers < 2 || d.pipe != nil {
		return
	}
	rp := &readPipe{cur: -1}
	ring := 4 * workers
	rp.ops = make([]readOp, 0, ring)
	rp.p = sim.NewPipeline(workers, ring, d.evalReadOp, d.commitReadOp)
	// NewPipeline may have raised the ring to its minimum.
	rp.ops = make([]readOp, rp.p.Ring())
	d.pipe = rp
}

// StopReadPipeline commits every in-flight read, stops the workers and
// returns the device to serial reads. Safe to call on a serial device.
// The read-commit hook is cleared with the pipeline it serves.
func (d *Device) StopReadPipeline() {
	if d.pipe == nil {
		return
	}
	d.FlushReads()
	d.pipe.p.Close()
	d.pipe = nil
	d.onReadCommit = nil
	d.dispatchedReads = 0
}

// OnReadCommit registers fn to receive each pipelined read request's true
// completion time as it commits. Commits replay in dispatch order, so a
// caller keeping its own FIFO of dispatched reads can match completions
// to requests positionally. Pass nil to unregister; StopReadPipeline,
// Clone and Restore clear it. Serial reads (no pipeline) never invoke it.
func (d *Device) OnReadCommit(fn func(end int64)) { d.onReadCommit = fn }

// DispatchedReads counts host read requests dispatched to the read
// pipeline so far this run. A caller that samples it around a read entry
// point can tell whether that call reached the device (counter advanced;
// the true completion arrives through the OnReadCommit hook) or was
// absorbed by a front-end cache (counter unchanged; the returned time is
// already final).
func (d *Device) DispatchedReads() int64 { return d.dispatchedReads }

// CommitNextRead resolves exactly one pending pipelined read — the oldest
// dispatched, blocking until its evaluation finishes — and returns true.
// When only a partially filled batch is open it is submitted first, so a
// queue-depth gate waiting on a specific completion always makes
// progress. Returns false when no read is in flight.
func (d *Device) CommitNextRead() bool {
	rp := d.pipe
	if rp == nil {
		return false
	}
	if rp.p.InFlight() == 0 {
		rp.submitOpen()
	}
	return rp.p.CommitNext()
}

// FlushReads submits any open batch and blocks until every dispatched
// read has committed, making all metrics current.
func (d *Device) FlushReads() {
	rp := d.pipe
	if rp == nil {
		return
	}
	rp.submitOpen()
	rp.p.Flush()
}

// PendingReadCapacity bounds the host reads that can be dispatched but
// not yet committed: every ring op in flight plus the open batch, each
// carrying up to readOpBatch requests. Callers size completion FIFOs with
// it once, up front. A serial device returns 0.
func (d *Device) PendingReadCapacity() int {
	if d.pipe == nil {
		return 0
	}
	return (d.pipe.p.Ring() + 1) * readOpBatch
}

// submitOpen publishes the partially filled batch, if any.
func (rp *readPipe) submitOpen() {
	if rp.cur < 0 {
		return
	}
	unit := rp.unit
	rp.cur = -1
	rp.p.Submit(unit)
}

// nextReq returns the next request slot to fill, opening a new batch when
// none is open (which may block on ring backpressure, committing finished
// batches meanwhile).
func (rp *readPipe) nextReq() *readReqJob {
	if rp.cur < 0 {
		rp.cur = rp.p.Slot()
		rp.ops[rp.cur].n = 0
		rp.unit = 0
	}
	op := &rp.ops[rp.cur]
	req := &op.reqs[op.n]
	op.n++
	req.now = 0
	req.baseEnd = 0
	req.groups = req.groups[:0]
	req.unmapped = req.unmapped[:0]
	return req
}

// rawBER returns the Fig. 2 base rate for a block's erase count and a
// subpage's programming mode, memoised per device. The memo is exact —
// RawBER is a deterministic function of (PEBaseline+eraseCount, partial) —
// so serial and parallel paths share it without any bit drift.
func (d *Device) rawBER(eraseCount int, partial bool) float64 {
	idx := 0
	if partial {
		idx = 1
	}
	memo := d.berMemo[idx]
	for len(memo) <= eraseCount {
		memo = append(memo, -1)
	}
	if memo[eraseCount] < 0 {
		memo[eraseCount] = d.Err.RawBER(d.Cfg.PEBaseline+eraseCount, partial)
	}
	d.berMemo[idx] = memo
	return memo[eraseCount]
}

// unmappedReadCost returns the constant ECC cost of reading never-written
// (pre-trace) data: clean conventional MLC at the P/E baseline.
func (d *Device) unmappedReadCost() *errmodel.ReadCost {
	if !d.unmappedCostOK {
		d.unmappedCost = d.Err.CostFromBER(d.Err.RawBER(d.Cfg.PEBaseline, false))
		d.unmappedCostOK = true
	}
	return &d.unmappedCost
}

// readReqAsync is ReadReq's pipeline twin: it performs every state-
// touching step of the read synchronously, snapshots the reliability
// inputs into a ring slot, and defers the ECC arithmetic plus the metric
// fold to the pipeline. Returns the completion time excluding ECC extra
// (the full latency is recorded at commit).
func (d *Device) readReqAsync(now int64, lsns []flash.LSN) int64 {
	d.groupRead(lsns)
	rp := d.pipe
	d.dispatchedReads++
	req := rp.nextReq()
	req.now = now
	end := now
	unit := -1

	for gi := range d.readGroups {
		g := &d.readGroups[gi]
		blk := g.pa.Block()
		b := d.Arr.Block(blk)
		j := readGroupJob{n: g.n, mode: b.Mode, slc: b.Mode == flash.ModeSLC}
		for i, s := range g.slot[:g.n] {
			sp := d.Arr.Subpage(flash.NewPPA(blk, g.pa.Page(), int(s)))
			j.sub[i] = readSubSnap{
				base:      d.rawBER(b.EraseCount, sp.Partial),
				inPage:    sp.InPageDisturb,
				neighbor:  sp.NeighborDisturb,
				reprogram: sp.ReprogramStress,
			}
		}
		j.base = d.Eng.PerformMode(now, blk, sim.OpRead, b.Mode, g.n, 0)
		req.groups = append(req.groups, j)
		if unit < 0 {
			unit = d.Cfg.UnitOf(blk)
		}
	}

	if len(d.unmappedFr) > 0 {
		cost := d.unmappedReadCost()
		mlcIDs := d.Arr.MLCBlockIDs()
		for fi, f := range d.unmappedFr {
			n := d.unmappedCnt[fi]
			blk := mlcIDs[int(f)%len(mlcIDs)]
			extra := time.Duration(n) * cost.DecodeTime
			e := d.Eng.Perform(now, blk, sim.OpRead, n, extra)
			req.unmapped = append(req.unmapped, unmappedJob{n: n, end: e})
			if e > end {
				end = e
			}
			if unit < 0 {
				unit = d.Cfg.UnitOf(blk)
			}
		}
	}
	req.baseEnd = end

	op := &rp.ops[rp.cur]
	if op.n == 1 && unit >= 0 {
		rp.unit = unit
	}
	if op.n == readOpBatch {
		rp.submitOpen()
	}
	return end
}

// evalReadOp is the worker half: pure arithmetic over the dispatch
// snapshots. It may read only the op payload and the device's immutable
// config and error model.
func (d *Device) evalReadOp(slot int) {
	op := &d.pipe.ops[slot]
	for ri := 0; ri < op.n; ri++ {
		req := &op.reqs[ri]
		end := req.baseEnd
		for gi := range req.groups {
			g := &req.groups[gi]
			var extra time.Duration
			retries, unc := 0, 0
			for i := 0; i < g.n; i++ {
				s := &g.sub[i]
				ber := d.Err.StressedBER(s.base, s.inPage, s.neighbor, s.reprogram)
				cost := d.Err.CostFromBER(ber)
				g.ber[i] = ber
				extra += cost.DecodeTime
				retries += cost.Retries
				if cost.Uncorrectable {
					unc++
				}
			}
			g.retries, g.unc = retries, unc
			extra += time.Duration(retries) * d.cellReadTime(g.mode)
			if e := g.base + int64(extra); e > end {
				end = e
			}
		}
		req.end = end
	}
}

// commitReadOp is the in-order fold: it replays exactly the metric updates
// the serial path would have made, in the same order.
func (d *Device) commitReadOp(slot int) {
	op := &d.pipe.ops[slot]
	for ri := 0; ri < op.n; ri++ {
		req := &op.reqs[ri]
		for gi := range req.groups {
			g := &req.groups[gi]
			for i := 0; i < g.n; i++ {
				d.Met.ReadBER.Add(g.ber[i])
			}
			d.Met.UncorrectableReads += int64(g.unc)
			if g.slc {
				d.Met.SubpageReadsSLC += int64(g.n)
			} else {
				d.Met.SubpageReadsMLC += int64(g.n)
			}
			d.Met.ReadRetries += int64(g.retries)
		}
		if len(req.unmapped) > 0 {
			cost := d.unmappedReadCost()
			for _, u := range req.unmapped {
				for i := 0; i < u.n; i++ {
					d.Met.ReadBER.Add(cost.BER)
				}
				d.Met.SubpageReadsMLC += int64(u.n)
			}
		}
		d.Met.ReadLatency.Record(req.end - req.now)
		d.Met.AllLatency.Record(req.end - req.now)
		if d.onReadCommit != nil {
			d.onReadCommit(req.end)
		}
	}
}
