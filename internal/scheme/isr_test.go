package scheme

import (
	"math"
	"testing"

	"ipusim/internal/flash"
)

// isrDevice returns a fresh IPU device whose SLC blocks the test programs
// directly, so each case controls block contents exactly.
func isrDevice(t *testing.T) *Device {
	t.Helper()
	return newScheme(t, "IPU", tinyConfig()).Device()
}

// fillPage programs every slot of the page at time wt and invalidates the
// first nInvalid of them.
func fillPage(t testing.TB, d *Device, blk, page int, wt int64, nInvalid int) {
	t.Helper()
	pg := d.Arr.PageOf(flash.NewPPA(blk, page, 0))
	writes := make([]flash.SlotWrite, len(pg.Slots))
	for s := range writes {
		writes[s] = flash.SlotWrite{Slot: s, LSN: flash.LSN(blk*1000 + page*10 + s)}
	}
	if _, err := d.Arr.ProgramPage(blk, page, writes, wt); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < nInvalid; s++ {
		if err := d.Arr.Invalidate(flash.NewPPA(blk, page, s)); err != nil {
			t.Fatal(err)
		}
	}
}

// updatePage programs half a page, partial-programs the rest (marking the
// page updated, so its data leaves the J set), then invalidates nInvalid
// slots. The block ends with JCount == 0 for this page.
func updatePage(t testing.TB, d *Device, blk, page int, wt int64, nInvalid int) {
	t.Helper()
	pg := d.Arr.PageOf(flash.NewPPA(blk, page, 0))
	half := len(pg.Slots) / 2
	var first, second []flash.SlotWrite
	for s := range pg.Slots {
		w := flash.SlotWrite{Slot: s, LSN: flash.LSN(blk*1000 + page*10 + s)}
		if s < half {
			first = append(first, w)
		} else {
			second = append(second, w)
		}
	}
	if _, err := d.Arr.ProgramPage(blk, page, first, wt); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Arr.ProgramPage(blk, page, second, wt); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < nInvalid; s++ {
		if err := d.Arr.Invalidate(flash.NewPPA(blk, page, s)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestISRVictimEmptyCache(t *testing.T) {
	d := isrDevice(t)
	if v := ISRVictim(d, 1000, nil); v != -1 {
		t.Errorf("empty cache returned victim %d, want -1", v)
	}
	// A never-programmed block must not be selected even next to used ones.
	fillPage(t, d, 3, 0, 0, 2)
	if v := ISRVictim(d, 1000, nil); v != 3 {
		t.Errorf("victim = %d, want 3 (the only used block)", v)
	}
}

func TestISRVictimPrefersAllInvalid(t *testing.T) {
	d := isrDevice(t)
	// Block 1: one page fully invalid. Block 2: one page half valid.
	fillPage(t, d, 1, 0, 0, 4)
	fillPage(t, d, 2, 0, 0, 2)
	if v := ISRVictim(d, 1000, nil); v != 1 {
		t.Errorf("victim = %d, want 1 (all-invalid page)", v)
	}
}

func TestISRVictimTZeroGuard(t *testing.T) {
	d := isrDevice(t)
	// All J-set data written exactly at now: mean age is zero, so the
	// naive T would be 0 and Eq. 2's exp(-t/T) would divide by zero.
	const now = 500
	fillPage(t, d, 1, 0, now, 1)
	v := ISRVictim(d, now, nil)
	if v != 1 {
		t.Errorf("victim = %d, want 1", v)
	}
	// And the same guard at now == 0 (age of data written at t=0).
	d2 := isrDevice(t)
	fillPage(t, d2, 4, 0, 0, 1)
	if v := ISRVictim(d2, 0, nil); v != 4 {
		t.Errorf("victim at t=0 = %d, want 4", v)
	}
}

func TestISRVictimColdBeatsUpdated(t *testing.T) {
	d := isrDevice(t)
	// Equal invalid counts and equal total slots, but block 1 holds cold
	// never-updated data (in J, written long ago) while block 2 was updated
	// in place (out of J). Eq. 1's IS' term must break the tie toward the
	// cold block, steering it to MLC.
	fillPage(t, d, 1, 0, 0, 2)
	updatePage(t, d, 2, 0, 0, 2)
	if d.Arr.Block(1).JCount == 0 || d.Arr.Block(2).JCount != 0 {
		t.Fatalf("fixture broken: J = %d, %d", d.Arr.Block(1).JCount, d.Arr.Block(2).JCount)
	}
	if v := ISRVictim(d, 1_000_000, nil); v != 1 {
		t.Errorf("victim = %d, want 1 (cold never-updated data)", v)
	}
}

func TestISRVictimRespectsExclusion(t *testing.T) {
	d := isrDevice(t)
	fillPage(t, d, 1, 0, 0, 4)
	fillPage(t, d, 2, 0, 0, 2)
	excl := NewExcludeSet(d.Arr.NumBlocks())
	excl.Add(1)
	v := ISRVictim(d, 1000, excl)
	if v != 2 {
		t.Errorf("victim = %d, want 2 (block 1 excluded)", v)
	}
	// Excluding every used block leaves nothing to collect.
	excl.Reset()
	excl.Add(1)
	excl.Add(2)
	v = ISRVictim(d, 1000, excl)
	if v != -1 {
		t.Errorf("victim = %d, want -1 (all used blocks excluded)", v)
	}
}

// TestISRScoreMatchesEq12 recomputes Eq. 1–2 by hand for a two-block cache
// and checks the selector agrees with the arithmetic.
func TestISRScoreMatchesEq12(t *testing.T) {
	d := isrDevice(t)
	const now = 10_000
	// Block 1: 4 valid never-updated subpages written at t=2000, 1 invalid.
	fillPage(t, d, 1, 0, 2000, 1)
	// Block 2: 4 valid never-updated subpages written at t=9000, 2 invalid.
	fillPage(t, d, 2, 0, 9000, 2)

	score := func(blk int, tMean float64) float64 {
		b := d.Arr.Block(blk)
		meanAge := float64(now) - float64(b.JSumWT)/float64(b.JCount)
		isPrime := float64(b.JCount) * (1 - math.Exp(-meanAge/tMean))
		return (float64(b.InvalidSub+b.DeadSub) + isPrime) / float64(b.TotalSlots())
	}
	// T: mean age over both blocks' J sets (3 + 2 members).
	b1, b2 := d.Arr.Block(1), d.Arr.Block(2)
	tMean := float64((now*int64(b1.JCount)-b1.JSumWT)+(now*int64(b2.JCount)-b2.JSumWT)) /
		float64(b1.JCount+b2.JCount)
	want := 1
	if score(2, tMean) > score(1, tMean) {
		want = 2
	}
	if v := ISRVictim(d, now, nil); v != want {
		t.Errorf("victim = %d, want %d (scores: b1=%.4f b2=%.4f)", v, want, score(1, tMean), score(2, tMean))
	}
}
