package scheme

import (
	"testing"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/sim"
)

func TestReadGroupsByPhysicalPage(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	// One 16 KiB write: four subpages in one physical page.
	s.Write(0, 0, 16384)
	before := d.Eng.Stats.Count[sim.OpRead]
	s.Read(1, 0, 16384)
	if got := d.Eng.Stats.Count[sim.OpRead] - before; got != 1 {
		t.Errorf("reading one physical page issued %d flash reads", got)
	}
	// Two 4 KiB writes land in two pages; reading both subpages needs two
	// flash reads.
	s.Write(2, 100*4096, 4096)
	s.Write(3, 104*4096, 4096)
	before = d.Eng.Stats.Count[sim.OpRead]
	s.Read(4, 100*4096, 4096)
	s.Read(5, 104*4096, 4096)
	if got := d.Eng.Stats.Count[sim.OpRead] - before; got != 2 {
		t.Errorf("two scattered subpages issued %d flash reads", got)
	}
}

func TestReadOfUnmappedDataChargedAsMLC(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	end := s.Read(0, 1<<20, 16384)
	if end <= 0 {
		t.Fatal("unmapped read completed instantly")
	}
	if d.Met.SubpageReadsMLC != 4 || d.Met.SubpageReadsSLC != 0 {
		t.Errorf("unmapped read accounting: SLC=%d MLC=%d", d.Met.SubpageReadsSLC, d.Met.SubpageReadsMLC)
	}
	if d.Met.ReadBER.Count != 4 {
		t.Errorf("BER samples = %d, want 4", d.Met.ReadBER.Count)
	}
}

func TestReadSLCvsMLCAccounting(t *testing.T) {
	cfg := tinyConfig()
	s := newScheme(t, "Baseline", cfg)
	d := s.Device()
	s.Write(0, 0, 4096) // SLC resident
	d.WriteFrameMLC(1, []flash.LSN{100})
	s.Read(2, 0, 4096)
	s.Read(3, 100*4096, 4096)
	if d.Met.SubpageReadsSLC != 1 || d.Met.SubpageReadsMLC != 1 {
		t.Errorf("region accounting: SLC=%d MLC=%d", d.Met.SubpageReadsSLC, d.Met.SubpageReadsMLC)
	}
}

func TestReadRetriesAtExtremeWear(t *testing.T) {
	cfg := tinyConfig()
	cfg.PEBaseline = 60000 // far beyond rated life: BER exceeds ECC capability
	em := errmodel.Default()
	s, err := NewBaseline(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Device()
	s.Write(0, 0, 4096)
	endHealthy := func() int64 {
		cfg2 := tinyConfig()
		s2 := newScheme(t, "Baseline", cfg2)
		s2.Write(0, 0, 4096)
		return s2.Read(1_000_000, 0, 4096) - 1_000_000
	}()
	end := s.Read(1_000_000, 0, 4096) - 1_000_000
	if d.Met.ReadRetries == 0 {
		t.Error("no read retries at extreme wear")
	}
	if end <= endHealthy {
		t.Errorf("worn read (%d ns) not slower than healthy read (%d ns)", end, endHealthy)
	}
}

func TestUncorrectableCountedAtAbsurdWear(t *testing.T) {
	cfg := tinyConfig()
	cfg.PEBaseline = 2_000_000
	em := errmodel.Default()
	s, err := NewBaseline(&cfg, &em)
	if err != nil {
		t.Fatal(err)
	}
	s.Write(0, 0, 4096)
	s.Read(1, 0, 4096)
	if s.Metrics().UncorrectableReads == 0 {
		t.Error("absurd wear must overwhelm the ECC")
	}
}

func TestHigherDisturbSlowsReads(t *testing.T) {
	// An MGA page with in-page disturb must read slower than a clean
	// Baseline page: the ECC-latency coupling behind Fig. 5's read gap.
	mkRead := func(name string) int64 {
		cfg := tinyConfig()
		cfg.Channels = 1
		cfg.ChipsPerChannel = 1
		s := newScheme(t, name, cfg)
		s.Write(0, 0, 4096)
		s.Write(1, 100*4096, 4096)
		s.Write(2, 104*4096, 4096)
		s.Write(3, 108*4096, 4096)
		const at = 1 << 40 // long after any queueing
		return s.Read(at, 0, 4096) - at
	}
	base := mkRead("Baseline")
	mga := mkRead("MGA")
	if mga <= base {
		t.Errorf("disturbed MGA read (%d) not slower than Baseline (%d)", mga, base)
	}
}
