package scheme

import (
	"math/rand"
	"testing"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// stressConfig adds MLC pressure: small MLC region, preconditioned, so
// both garbage collectors churn during the run.
func stressConfig() flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.Blocks = 64
	c.SLCRatio = 0.125
	c.SLCPagesPerBlock = 8
	c.MLCPagesPerBlock = 16
	c.LogicalSubpages = c.MLCSubpages() * 3 / 4
	c.PreFillMLC = true
	return c
}

func allSchemes(t *testing.T, cfg flash.Config) []Scheme {
	t.Helper()
	em := errmodel.Default()
	var out []Scheme
	for _, n := range schemeNames {
		out = append(out, newScheme(t, n, cfg))
	}
	for name, v := range map[string]IPUVariant{
		"IPU-greedyGC": IPUVariants()["IPU-greedyGC"],
		"IPU-flat":     IPUVariants()["IPU-flat"],
		"IPU-noupdate": IPUVariants()["IPU-noupdate"],
		"IPU-AC":       IPUVariants()["IPU-AC"],
	} {
		c := cfg
		s, err := NewIPUVariant(&c, &em, v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, s)
	}
	return out
}

// TestStressAllSchemesWithMLCPressure drives every scheme and variant
// through a mixed workload on a preconditioned device with a tight MLC
// region, checking every FTL invariant at the end.
func TestStressAllSchemesWithMLCPressure(t *testing.T) {
	for _, s := range allSchemes(t, stressConfig()) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			d := s.Device()
			span := int64(d.Cfg.LogicalSubpages) * 4096
			rng := rand.New(rand.NewSource(101))
			now := int64(0)
			for i := 0; i < 6000; i++ {
				now += 300_000
				off := rng.Int63n(span / 4096 * 4096)
				off -= off % 4096
				size := []int{4096, 8192, 16384, 32768}[rng.Intn(4)]
				if rng.Intn(100) < 65 {
					s.Write(now, off, size)
				} else {
					s.Read(now, off, size)
				}
			}
			checkConsistency(t, d)
			m := s.Metrics()
			if m.SLCGCs == 0 {
				t.Error("no SLC GC under pressure")
			}
			if m.MLCGCs == 0 {
				t.Error("no MLC GC despite tight preconditioned region")
			}
			if d.Arr.MLCErases == 0 {
				t.Error("no MLC erases")
			}
			if d.SLCFreePages() < 0 {
				t.Error("negative free pages")
			}
			if m.AllLatency.Count == 0 || m.AllLatency.Mean() <= 0 {
				t.Error("latency not recorded")
			}
		})
	}
}

// TestStressSequentialOverwrites cycles the whole logical space twice:
// every frame is overwritten, so the MLC region must absorb two full
// turnovers without exhausting.
func TestStressSequentialOverwrites(t *testing.T) {
	cfg := stressConfig()
	s := newScheme(t, "IPU", cfg)
	d := s.Device()
	span := int64(d.Cfg.LogicalSubpages) * 4096
	now := int64(0)
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off+16384 <= span; off += 16384 {
			now += 400_000
			s.Write(now, off, 16384)
		}
	}
	checkConsistency(t, d)
	if d.Map.Mapped() < d.Cfg.LogicalSubpages-4 {
		t.Errorf("mapped %d of %d after full overwrite", d.Map.Mapped(), d.Cfg.LogicalSubpages)
	}
}

// TestStressZeroInterarrival is the saturation corner: every request
// arrives at t=0. The device must stay consistent and divert overflow to
// the MLC region rather than deadlock.
func TestStressZeroInterarrival(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			cfg := stressConfig()
			s := newScheme(t, name, cfg)
			d := s.Device()
			for i := 0; i < 3000; i++ {
				s.Write(0, int64(i%500)*16384, 16384)
			}
			checkConsistency(t, d)
			if s.Metrics().HostWritesToMLC == 0 {
				t.Error("saturation must overflow to MLC")
			}
		})
	}
}
