package scheme

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ipusim/internal/check"
)

// driveChecked replays a mixed write/read/trim workload against one scheme
// with the invariant harness attached, returning the device for follow-up
// assertions. The checker panics through must on any violation, so merely
// surviving the loop exercises every per-request and per-GC check.
func driveChecked(t *testing.T, s Scheme, ops int, seed int64) *Device {
	t.Helper()
	d := s.Device()
	d.AttachChecker(check.Full)
	span := int64(d.Cfg.LogicalSubpages) * 4096
	rng := rand.New(rand.NewSource(seed))
	now := int64(0)
	for i := 0; i < ops; i++ {
		now += 300_000
		off := rng.Int63n(span / 4096 * 4096)
		off -= off % 4096
		size := []int{4096, 8192, 16384, 32768}[rng.Intn(4)]
		switch p := rng.Intn(100); {
		case p < 60:
			s.Write(now, off, size)
		case p < 90:
			s.Read(now, off, size)
		default:
			d.Trim(now, off, size)
		}
	}
	return d
}

// TestCheckedReplayAllSchemes runs every scheme and IPU variant under the
// full harness on a preconditioned device with MLC pressure: shadow-store
// read checks, structural sweeps after each GC, and the end-of-run sweep.
func TestCheckedReplayAllSchemes(t *testing.T) {
	for _, s := range allSchemes(t, stressConfig()) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			d := driveChecked(t, s, 2500, 7)
			if err := d.Check.CheckFinal(); err != nil {
				t.Fatal(err)
			}
			if d.Check.Sweeps == 0 {
				t.Error("no structural sweeps ran; GC never fired under pressure?")
			}
			if d.Check.ReadsChecked == 0 {
				t.Error("no reads were checked")
			}
			if s.Metrics().HostTrims == 0 {
				t.Error("workload issued no trims")
			}
		})
	}
}

// TestCheckerCatchesInjectedMappingBug corrupts the translation map mid-run
// through the test hook — the kind of cross-wiring a placement bug would
// cause — and asserts the harness refuses the very next read of the LSN.
func TestCheckerCatchesInjectedMappingBug(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			s := newScheme(t, name, stressConfig())
			d := s.Device()
			d.AttachChecker(check.Shadow)
			// Warm up legitimately so LSNs 0 and 1 have live versions.
			now := int64(0)
			for i := 0; i < 50; i++ {
				now += 300_000
				s.Write(now, int64(i%8)*4096, 8192)
			}
			armed := false
			d.TestHooks.AfterHostWrite = func(d *Device, now int64) {
				if armed {
					return
				}
				armed = true
				// LSN 0 now silently points at LSN 1's copy.
				d.Map.Set(0, d.Map.Get(1))
			}
			now += 300_000
			s.Write(now, 64*4096, 4096) // fires the hook
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("read of the corrupted LSN passed the checker")
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "check") {
					t.Fatalf("panic is not a checker violation: %v", msg)
				}
			}()
			s.Read(now+300_000, 0, 4096)
		})
	}
}

// TestCheckFinalCatchesInjectedCorruption verifies the end-of-run sweep
// alone (no read needed) reports an injected lost mapping as an error.
func TestCheckFinalCatchesInjectedCorruption(t *testing.T) {
	s := newScheme(t, "IPU", stressConfig())
	d := s.Device()
	d.AttachChecker(check.Shadow)
	now := int64(0)
	for i := 0; i < 50; i++ {
		now += 300_000
		s.Write(now, int64(i%8)*4096, 8192)
	}
	// Drop LSN 3's mapping without invalidating its flash copy: the sweep
	// must flag the lost write (and the orphaned valid subpage).
	d.Map.Unmap(3)
	err := d.Check.CheckFinal()
	if err == nil {
		t.Fatal("CheckFinal accepted a lost mapping")
	}
	if !strings.Contains(err.Error(), "lost") && !strings.Contains(err.Error(), "valid") {
		t.Errorf("unhelpful violation message: %v", err)
	}
}
