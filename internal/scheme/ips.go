package scheme

import (
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/sim"
)

// ipsReclaimCutoff is the reclaimable fraction (invalid + dead over total
// slots) above which a GC victim is collected conventionally: when most of
// a block is garbage, migrating the little valid data and erasing frees
// nearly a whole block, so reprogramming it in place would waste MLC
// capacity on garbage. Below the cutoff the block is mostly valid — the
// expensive case for migration — and switching wins.
const ipsReclaimCutoff = 0.5

// ipsSwitchedBudgetDiv bounds the switched-block population to
// SLCBlocks/ipsSwitchedBudgetDiv: every switched block shrinks the cache,
// so unbounded switching would consume it entirely.
const ipsSwitchedBudgetDiv = 4

// IPS is the In-place Switch scheme (after arXiv:2409.14360): an SLC
// write cache whose garbage collector *reprograms* mostly-valid victim
// blocks into MLC mode in place instead of migrating their data. The
// page state transition keeps the mapping untouched and moves zero
// subpages — eliminating the migration write amplification IPU and the
// baselines pay for cold data — at the price of a reprogram-stress error
// penalty on the switched data (errmodel.ReprogramGamma) and MLC read
// latency for it. Mostly-invalid victims still take the conventional
// migrate-and-erase path, and a bounded switched-block budget forces
// switch-back reclaims (migrate residue, erase, re-calibrate to SLC) so
// the cache cannot shrink away.
//
// Placement is intra-page update in a flat Work-level cache: updates
// partially program the page holding the old version when it has room,
// like IPU, but without IPU's hot/cold level hierarchy — hot/cold
// separation is the switch decision itself.
type IPS struct {
	dev *Device
	// switched lists the SLC-home blocks currently operating in MLC mode,
	// in switch order.
	switched []int
	// maxSwitched is the switched-block budget.
	maxSwitched int
}

// NewIPS builds the In-place Switch scheme on a fresh device.
func NewIPS(cfg *flash.Config, em *errmodel.Model) (*IPS, error) {
	d, err := NewDevice(cfg, em)
	if err != nil {
		return nil, err
	}
	maxSwitched := cfg.SLCBlocks() / ipsSwitchedBudgetDiv
	if maxSwitched < 1 {
		maxSwitched = 1
	}
	return &IPS{dev: d, maxSwitched: maxSwitched}, nil
}

// Name implements Scheme.
func (s *IPS) Name() string { return "IPS" }

// Device implements Scheme.
func (s *IPS) Device() *Device { return s.dev }

// Metrics implements Scheme.
func (s *IPS) Metrics() *Metrics { return s.dev.Met }

// Clone implements Scheme.
func (s *IPS) Clone() Scheme {
	return &IPS{
		dev:         s.dev.Clone(),
		switched:    append([]int(nil), s.switched...),
		maxSwitched: s.maxSwitched,
	}
}

// Restore implements Scheme.
func (s *IPS) Restore(from Scheme) bool {
	t, ok := from.(*IPS)
	if !ok || s.maxSwitched != t.maxSwitched ||
		s.dev.Map.Len() != t.dev.Map.Len() || s.dev.Arr.NumBlocks() != t.dev.Arr.NumBlocks() {
		return false
	}
	s.dev.Restore(t.dev)
	s.switched = append(s.switched[:0], t.switched...)
	return true
}

// Write implements Scheme.
func (s *IPS) Write(now int64, offset int64, size int) int64 {
	d := s.dev
	end := now
	for _, chunk := range d.Chunks(offset, size) {
		if e := s.writeChunk(now, chunk); e > end {
			end = e
		}
	}
	s.maybeGC(now)
	d.NoteHostWrite(now, offset, size)
	d.RecordWrite(now, end)
	return end
}

// Read implements Scheme. Reads from switched blocks naturally pick up
// MLC sensing latency and the reprogram-stress BER penalty through the
// shared read path.
func (s *IPS) Read(now int64, offset int64, size int) int64 {
	return s.dev.ReadReq(now, offset, size)
}

// writeChunk places one frame-aligned chunk: intra-page update when the
// old version's page has room, otherwise a fresh Work-level page. Data
// whose old version sits in a switched (MLC-mode) block cannot be updated
// in place and re-enters the cache fresh.
func (s *IPS) writeChunk(now int64, chunk []flash.LSN) int64 {
	d := s.dev
	oldPage, samePage := classifyChunk(d, chunk)
	if samePage && d.Arr.Block(oldPage.Block()).Mode == flash.ModeSLC {
		if free, ok := intraPageRoom(d, oldPage, len(chunk)); ok {
			for _, l := range chunk {
				d.invalidate(l)
			}
			writes := d.writes[:len(chunk)]
			for i, l := range chunk {
				writes[i] = flash.SlotWrite{Slot: free[i], LSN: l}
			}
			return d.programSLC(now, oldPage.Block(), oldPage.Page(), writes, false)
		}
	}
	if e, ok := d.WriteChunkSLC(now, flash.LevelWork, chunk, false); ok {
		return e
	}
	d.Met.HostWritesToMLC++
	return d.WriteFrameMLC(now, chunk)
}

// maybeGC is the IPS garbage collector. Victims are selected greedily;
// each is either collected conventionally (migrate + erase) when mostly
// garbage, or switched to MLC in place when mostly valid. Switched blocks
// that go fully stale, or that must make room under the budget, are
// reclaimed: residue migrated, block erased and re-calibrated to SLC.
func (s *IPS) maybeGC(now int64) {
	d := s.dev
	if d.slcGCActive {
		return
	}
	threshold := int(float64(d.slcTotalPages) * d.Cfg.GCThresholdFraction)
	if d.slcFreePages >= threshold {
		return
	}
	d.slcGCActive = true
	wasBackground := d.gcBackground
	d.gcBackground = true
	defer func() {
		d.slcGCActive = false
		d.gcBackground = wasBackground
	}()

	// Free wins first: any switched block whose data has all been
	// invalidated by host updates is reclaimed without moving a subpage.
	for i := 0; i < len(s.switched); {
		if d.Arr.Block(s.switched[i]).ValidSub == 0 {
			s.reclaimAt(now, i)
		} else {
			i++
		}
	}

	// The collect-until target is recomputed per iteration: switching a
	// block shrinks the cache, lowering the threshold itself.
	for iter := 0; iter < maxGCVictimsPerTrigger && d.slcFreePages < int(float64(d.slcTotalPages)*d.Cfg.GCThresholdFraction)*gcHysteresis; iter++ {
		t0 := d.Eng.ScanNS()
		v := GreedyVictim(d, now, d.openExcludes())
		d.Met.GCScanNS += d.Eng.ScanNS() - t0
		if v < 0 {
			// No victim in the cache: regrow it by reclaiming a switched
			// block instead.
			if !s.reclaimBest(now) {
				return
			}
			continue
		}
		b := d.Arr.Block(v)
		d.Met.SLCGCs++
		d.Met.GCVictimUsedSub += int64(b.UsedSlots())
		d.Met.GCVictimTotalSub += int64(b.TotalSlots())
		reclaimable := float64(b.InvalidSub+b.DeadSub) / float64(b.TotalSlots())
		if reclaimable < ipsReclaimCutoff && len(s.switched) < s.maxSwitched {
			s.switchInPlace(now, v)
			continue
		}
		MoveFlushAll(d, now, v)
		if b.ValidSub != 0 {
			panic("scheme: GC movement left valid data in victim")
		}
		freeBefore := b.FreePages()
		must(d.Arr.Erase(v))
		d.perform(now, v, sim.OpErase, 0, 0)
		d.blockReadyAt[v] = d.Eng.ChipAvailableAt(d.Arr.ChipOf(v))
		d.slcFreePages += len(b.Pages) - freeBefore
		d.slcFree = append(d.slcFree, v)
		d.afterGC(now, "ips-gc")
	}

	// Budget pressure: keep one switch slot free for the next trigger by
	// retiring the most-reclaimed switched block.
	if len(s.switched) >= s.maxSwitched {
		s.reclaimBest(now)
	}
}

// switchInPlace reprograms a victim block into MLC mode in place. The
// mapping is untouched and no data moves; each data-holding page is
// charged one background SLC sense plus one background MLC program — the
// read-shift-reprogram pass of the switch.
func (s *IPS) switchInPlace(now int64, v int) {
	d := s.dev
	b := d.Arr.Block(v)
	freePages := b.FreePages()
	var pagesWithValid int64
	for p := range b.Pages {
		n := pageValidCount(&b.Pages[p])
		if n == 0 {
			continue
		}
		pagesWithValid++
		d.Eng.PerformBackgroundMode(now, v, sim.OpRead, flash.ModeSLC, n)
		d.Eng.PerformBackgroundMode(now, v, sim.OpProgram, flash.ModeMLC, n)
	}
	// The block leaves the SLC cache: every occupancy gauge sheds it.
	d.slcTotalPages -= len(b.Pages)
	d.slcFreePages -= freePages
	d.slcValidSub -= int64(b.ValidSub)
	d.slcPagesWithValid -= pagesWithValid
	d.Met.InPlaceSwitches++
	d.Met.SwitchedSubpages += int64(b.ValidSub)
	must(d.Arr.SwitchToMLC(v))
	s.switched = append(s.switched, v)
	d.afterGC(now, "ips-switch")
}

// reclaimBest reclaims the switched block with the least valid data (the
// cheapest migration), reporting whether there was one.
func (s *IPS) reclaimBest(now int64) bool {
	if len(s.switched) == 0 {
		return false
	}
	best := 0
	for i := 1; i < len(s.switched); i++ {
		if s.dev.Arr.Block(s.switched[i]).ValidSub < s.dev.Arr.Block(s.switched[best]).ValidSub {
			best = i
		}
	}
	s.reclaimAt(now, best)
	return true
}

// reclaimAt migrates a switched block's residual valid data to the MLC
// region, erases it, re-calibrates it to SLC mode and returns it to the
// cache free pool.
func (s *IPS) reclaimAt(now int64, i int) {
	d := s.dev
	v := s.switched[i]
	b := d.Arr.Block(v)
	if b.ValidSub > 0 {
		MoveFlushAll(d, now, v)
	}
	if d.Check != nil {
		must(d.Check.CheckReclaim(now, v))
	}
	must(d.Arr.Erase(v))
	d.perform(now, v, sim.OpErase, 0, 0)
	must(d.Arr.SwitchToSLC(v))
	d.blockReadyAt[v] = d.Eng.ChipAvailableAt(d.Arr.ChipOf(v))
	d.slcTotalPages += len(b.Pages)
	d.slcFreePages += len(b.Pages)
	d.slcFree = append(d.slcFree, v)
	s.switched = append(s.switched[:i], s.switched[i+1:]...)
	d.Met.SwitchBackReclaims++
	d.afterGC(now, "ips-reclaim")
}

var _ Scheme = (*IPS)(nil)
