package scheme

import (
	"fmt"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
)

// IPUVariant selects between the paper's full IPU design, its ablations
// (used to quantify each mechanism's contribution), and the adaptive-
// combine extension the paper sketches as future work.
type IPUVariant struct {
	// Name labels the variant in reports.
	Name string
	// GreedyGC ablates the ISR victim policy (Eq. 1-2), selecting victims
	// greedily by reclaimable subpages like Baseline.
	GreedyGC bool
	// MaxLevel caps the block hierarchy. LevelHot is the paper's three
	// levels; LevelWork flattens the hierarchy entirely (every rewrite
	// stays at Work level), ablating hot/cold separation.
	MaxLevel flash.BlockLevel
	// DisableIntraPage ablates the headline mechanism: updates always
	// rewrite into a fresh page instead of partially programming the page
	// holding the old version.
	DisableIntraPage bool
	// CombineCold enables the future-work extension (paper §5): brand-new
	// sub-page chunks are aggregated into shared Work pages (improving
	// page utilisation) while updates still use intra-page programming.
	CombineCold bool
	// CombineBudget bounds the program operations a shared cold page may
	// receive, limiting the in-page disturb the combining re-introduces.
	// Zero means 2.
	CombineBudget int
}

// DefaultIPUVariant is the paper's IPU as evaluated.
func DefaultIPUVariant() IPUVariant {
	return IPUVariant{Name: "IPU", MaxLevel: flash.LevelHot}
}

// IPUVariants returns the named variants usable with core.New: the paper
// design, three ablations, and the adaptive-combine extension.
func IPUVariants() map[string]IPUVariant {
	return map[string]IPUVariant{
		"IPU":          DefaultIPUVariant(),
		"IPU-greedyGC": {Name: "IPU-greedyGC", GreedyGC: true, MaxLevel: flash.LevelHot},
		"IPU-flat":     {Name: "IPU-flat", MaxLevel: flash.LevelWork},
		"IPU-noupdate": {Name: "IPU-noupdate", DisableIntraPage: true, MaxLevel: flash.LevelHot},
		"IPU-AC":       {Name: "IPU-AC", MaxLevel: flash.LevelHot, CombineCold: true, CombineBudget: 2},
	}
}

// Validate reports inconsistent variant parameters.
func (v *IPUVariant) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("scheme: IPU variant without name")
	}
	if v.MaxLevel < flash.LevelWork || v.MaxLevel > flash.LevelHot {
		return fmt.Errorf("scheme: variant %s MaxLevel %v out of [Work, Hot]", v.Name, v.MaxLevel)
	}
	if v.CombineBudget < 0 {
		return fmt.Errorf("scheme: variant %s negative CombineBudget", v.Name)
	}
	return nil
}

// IPU is the paper's proposal: intra-page cache update with partial
// programming plus hot/cold separation over three SLC block levels.
//
// Placement (Algorithm 1, lines 2–13):
//
//   - New data is written into a Work block page, occupying only the slots
//     it needs; the remaining slots stay free, reserved for future versions
//     of the same data.
//   - An update that fits in the free remainder of the page holding the old
//     version is partially programmed there (intra-page update). The
//     in-page disturb of that operation lands only on the now-invalid old
//     version, eliminating the error penalty MGA pays.
//   - An update that does not fit is rewritten into a page of the
//     next-higher-level block (Work → Monitor → Hot), classifying the data
//     as hot.
//
// GC (Algorithm 1, lines 14–19) selects victims by the invalid-subpage
// ratio of Eq. 1–2 and applies the degraded movement of Fig. 4.
type IPU struct {
	dev *Device
	v   IPUVariant

	// Adaptive-combine state (IPU-AC): per-stripe shared cold pages.
	combine    []flash.PPA
	hasCombine []bool
	combineRR  int

	// victimFn is the variant's victim selector (with combine-page
	// protection baked in), created once so the per-write GC call does not
	// allocate a closure.
	victimFn VictimSelector
}

// NewIPU builds the paper's IPU scheme on a fresh device.
func NewIPU(cfg *flash.Config, em *errmodel.Model) (*IPU, error) {
	return NewIPUVariant(cfg, em, DefaultIPUVariant())
}

// NewIPUVariant builds an IPU variant (ablation or extension).
func NewIPUVariant(cfg *flash.Config, em *errmodel.Model, v IPUVariant) (*IPU, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if v.CombineBudget == 0 {
		v.CombineBudget = 2
	}
	d, err := NewDevice(cfg, em)
	if err != nil {
		return nil, err
	}
	stripes := len(d.open[flash.LevelWork])
	u := &IPU{
		dev:        d,
		v:          v,
		combine:    make([]flash.PPA, stripes),
		hasCombine: make([]bool, stripes),
	}
	u.bindVictim()
	return u, nil
}

// bindVictim installs the variant's victim selector. The CombineCold
// wrapper closes over the receiver, so clones must call this again to
// protect their own combine pages rather than the template's.
func (u *IPU) bindVictim() {
	sel := ISRVictim
	if u.v.GreedyGC {
		sel = GreedyVictim
	}
	if u.v.CombineCold {
		u.victimFn = func(d *Device, now int64, excl *ExcludeSet) int {
			for i, pp := range u.combine {
				if u.hasCombine[i] {
					excl.Add(pp.Block())
				}
			}
			return sel(d, now, excl)
		}
	} else {
		u.victimFn = sel
	}
}

// Clone implements Scheme.
func (u *IPU) Clone() Scheme {
	c := &IPU{
		dev:        u.dev.Clone(),
		v:          u.v,
		combine:    append([]flash.PPA(nil), u.combine...),
		hasCombine: append([]bool(nil), u.hasCombine...),
		combineRR:  u.combineRR,
	}
	c.bindVictim()
	return c
}

// Restore implements Scheme.
func (u *IPU) Restore(from Scheme) bool {
	t, ok := from.(*IPU)
	if !ok || u.v != t.v || len(u.combine) != len(t.combine) ||
		u.dev.Map.Len() != t.dev.Map.Len() || u.dev.Arr.NumBlocks() != t.dev.Arr.NumBlocks() {
		return false
	}
	u.dev.Restore(t.dev)
	copy(u.combine, t.combine)
	copy(u.hasCombine, t.hasCombine)
	u.combineRR = t.combineRR
	// victimFn is already bound to u.
	return true
}

// Name implements Scheme.
func (u *IPU) Name() string { return u.v.Name }

// Variant returns the active variant.
func (u *IPU) Variant() IPUVariant { return u.v }

// Device implements Scheme.
func (u *IPU) Device() *Device { return u.dev }

// Metrics implements Scheme.
func (u *IPU) Metrics() *Metrics { return u.dev.Met }

// classifyChunk inspects the current mapping of a chunk. It returns the
// page holding the previous version when every subpage of the chunk maps
// to the same physical page (a clean update), and whether any mapping
// exists. Shared by every intra-page-updating scheme (IPU, IPS).
func classifyChunk(d *Device, lsns []flash.LSN) (oldPage flash.PPA, samePage bool) {
	first := d.Map.Get(lsns[0])
	if !first.Mapped() {
		return flash.UnmappedPPA, false
	}
	pa := first.PageAddr()
	for _, l := range lsns[1:] {
		ppa := d.Map.Get(l)
		if !ppa.Mapped() || ppa.PageAddr() != pa {
			return flash.UnmappedPPA, false
		}
	}
	return pa, true
}

// intraPageRoom returns the first n free slots of the old page if it can
// absorb an in-place update of n subpages: enough free slots, program
// budget left, and the page must be SLC-mode (MLC pages — including
// in-place switched blocks — cannot be reprogrammed). A page has at most
// 8 slots, so the indices come back in a fixed-size array.
func intraPageRoom(d *Device, oldPage flash.PPA, n int) (free [8]int, ok bool) {
	b := d.Arr.Block(oldPage.Block())
	if b.Mode != flash.ModeSLC {
		return free, false
	}
	pg := &b.Pages[oldPage.Page()]
	if int(pg.ProgramCount) >= d.Cfg.MaxProgramsPerSLCPage {
		return free, false
	}
	nFree := 0
	for s := range pg.Slots {
		if pg.Slots[s].State == flash.SubFree {
			free[nFree] = s
			nFree++
			if nFree == n {
				return free, true
			}
		}
	}
	return free, false
}

// Write implements Scheme, following Algorithm 1.
func (u *IPU) Write(now int64, offset int64, size int) int64 {
	end := u.placeChunks(now, offset, size)
	u.dev.MaybeGCSLC(now, u.victimFn, MoveIPU)
	u.dev.NoteHostWrite(now, offset, size)
	u.dev.RecordWrite(now, end)
	return end
}

// placeChunks places every frame-aligned chunk of one host write and
// returns the latest completion time. Split out of Write so IPU-PGC can
// insert its preemptive GC step between placement and the emergency
// collector without duplicating the placement policy.
func (u *IPU) placeChunks(now int64, offset int64, size int) int64 {
	d := u.dev
	end := now
	for _, chunk := range d.Chunks(offset, size) {
		e := u.writeChunk(now, chunk)
		if e > end {
			end = e
		}
	}
	return end
}

// writeChunk places one frame-aligned chunk.
func (u *IPU) writeChunk(now int64, chunk []flash.LSN) int64 {
	d := u.dev
	oldPage, samePage := classifyChunk(d, chunk)
	if samePage && d.Arr.Block(oldPage.Block()).Mode == flash.ModeSLC {
		// Update of cache-resident data: the paper's hot path.
		if !u.v.DisableIntraPage {
			if free, ok := intraPageRoom(d, oldPage, len(chunk)); ok {
				// Intra-page update: invalidate the old versions first so the
				// partial program's in-page disturb hits only obsolete data.
				for _, l := range chunk {
					d.invalidate(l)
				}
				writes := d.writes[:len(chunk)]
				for i, l := range chunk {
					writes[i] = flash.SlotWrite{Slot: free[i], LSN: l}
				}
				return d.programSLC(now, oldPage.Block(), oldPage.Page(), writes, false)
			}
		}
		// Upgraded movement: rewrite into the next-higher-level block.
		level := d.Arr.Block(oldPage.Block()).Level + 1
		if level > u.v.MaxLevel {
			level = u.v.MaxLevel
		}
		if level < flash.LevelWork {
			level = flash.LevelWork
		}
		if e, ok := d.WriteChunkSLC(now, level, chunk, false); ok {
			return e
		}
		d.Met.HostWritesToMLC++
		return d.WriteFrameMLC(now, chunk)
	}

	// Data entering the cache: brand-new, scattered, or the first update
	// of MLC-resident data — infrequent by definition, the target of the
	// adaptive-combine extension.
	if u.v.CombineCold && len(chunk) < d.Cfg.SlotsPerPage() {
		if e, ok := u.appendCold(now, chunk); ok {
			return e
		}
	}
	if e, ok := d.WriteChunkSLC(now, flash.LevelWork, chunk, false); ok {
		if u.v.CombineCold && len(chunk) < d.Cfg.SlotsPerPage() {
			// The fresh page becomes its stripe's shared cold page.
			slot := u.combineRR % len(u.combine)
			u.combineRR++
			u.combine[slot] = d.Map.Get(chunk[0]).PageAddr()
			u.hasCombine[slot] = true
		}
		return e
	}
	d.Met.HostWritesToMLC++
	return d.WriteFrameMLC(now, chunk)
}

// appendCold tries to place a brand-new chunk into the free remainder of a
// shared cold page (the adaptive-combine extension). The chunk must fit
// whole, and the page's combine budget bounds the in-page disturb the
// aggregation re-introduces on co-resident cold data.
func (u *IPU) appendCold(now int64, chunk []flash.LSN) (int64, bool) {
	d := u.dev
	for try := 0; try < len(u.combine); try++ {
		slot := u.combineRR % len(u.combine)
		u.combineRR++
		if !u.hasCombine[slot] {
			continue
		}
		pp := u.combine[slot]
		pg := &d.Arr.Block(pp.Block()).Pages[pp.Page()]
		if int(pg.ProgramCount) >= u.v.CombineBudget {
			u.hasCombine[slot] = false
			continue
		}
		var free [8]int
		nFree := 0
		for s := range pg.Slots {
			if pg.Slots[s].State == flash.SubFree {
				free[nFree] = s
				nFree++
			}
		}
		if nFree < len(chunk) {
			continue
		}
		for _, l := range chunk {
			d.invalidate(l)
		}
		writes := d.writes[:len(chunk)]
		for i, l := range chunk {
			writes[i] = flash.SlotWrite{Slot: free[i], LSN: l}
		}
		return d.programSLC(now, pp.Block(), pp.Page(), writes, false), true
	}
	return 0, false
}

// Read implements Scheme.
func (u *IPU) Read(now int64, offset int64, size int) int64 {
	return u.dev.ReadReq(now, offset, size)
}

var _ Scheme = (*IPU)(nil)
