package scheme

// ExcludeSet is the set of block IDs victim selection must skip: open
// allocation points and scheme-pinned pages (MGA open pages, IPU combine
// pages). It is epoch-marked so the device can reuse one instance across
// every GC trigger — Reset, Add and Has are O(1) and allocation-free once
// the backing arrays have grown to their steady size.
type ExcludeSet struct {
	epoch uint32
	mark  []uint32 // by block ID; mark[id] == epoch means excluded
	ids   []int    // IDs excluded this epoch, deduplicated, insertion order
}

// NewExcludeSet returns an empty set for a device with the given number of
// blocks.
func NewExcludeSet(blocks int) *ExcludeSet {
	return &ExcludeSet{epoch: 1, mark: make([]uint32, blocks)}
}

// Reset empties the set in O(1) by advancing the epoch.
func (s *ExcludeSet) Reset() {
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: stale marks could alias, clear them
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
	s.ids = s.ids[:0]
}

// Add marks a block excluded. Duplicate adds are absorbed.
func (s *ExcludeSet) Add(id int) {
	if s.mark[id] == s.epoch {
		return
	}
	s.mark[id] = s.epoch
	s.ids = append(s.ids, id)
}

// Has reports whether a block is excluded. A nil set excludes nothing.
func (s *ExcludeSet) Has(id int) bool {
	return s != nil && s.mark[id] == s.epoch
}

// Len returns the number of distinct excluded blocks. Nil-safe.
func (s *ExcludeSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ids)
}

// IDs returns the excluded block IDs in insertion order. The slice is
// invalidated by the next Reset; callers must not retain it.
func (s *ExcludeSet) IDs() []int {
	if s == nil {
		return nil
	}
	return s.ids
}
