package core

import (
	"sync"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/scheme"
)

// The precondition-snapshot cache. Building a simulator is dominated by
// MLC preconditioning: PreFillMLC programs the entire logical space before
// the first request replays. Every sweep job used to pay that cost. The
// cache instead builds one preconditioned template per (flash config,
// error model, scheme) and hands each job a deep clone — two bulk memory
// copies instead of O(device) program operations. Templates are read-only
// once built and cloning never mutates them, so any number of jobs can
// clone the same template concurrently.

// snapshotKey identifies one device template. Both config types are flat
// comparable structs, so the key is usable directly as a map key.
type snapshotKey struct {
	flash  flash.Config
	err    errmodel.Model
	scheme string
}

// snapshotEntry is one cached template. ready closes when the build
// finishes; s and buildErr are immutable afterwards.
type snapshotEntry struct {
	ready    chan struct{}
	s        scheme.Scheme
	buildErr error
	built    bool   // guarded by snapshotMu; true once ready is closed
	lastUse  uint64 // guarded by snapshotMu; LRU clock value of last access

	// free holds released clones of this template (guarded by snapshotMu).
	// A pooled clone is handed to the next job after restoring it from the
	// template in place — one bulk copy pass reusing the clone's backing
	// stores, with no allocation and no garbage. Sweeps that release their
	// simulators therefore run the steady state entirely on recycled
	// devices.
	free []scheme.Scheme
}

// snapshotFreeCap bounds the released clones pooled per template, limiting
// retained memory to a few devices per key while covering the worker
// parallelism of a typical sweep.
const snapshotFreeCap = 4

// snapshotCacheCap bounds the number of resident templates. A template at
// the default geometry holds the whole flash array (~18 MB), and
// sensitivity sweeps create one key per config variation, so the cache
// evicts least-recently-used templates beyond the cap. The default keeps a
// full P/E sweep (4 baselines x 3 schemes) resident with headroom.
var snapshotCacheCap = 16

var (
	snapshotMu    sync.Mutex
	snapshotCache = map[snapshotKey]*snapshotEntry{}
	snapshotClock uint64
	snapshotHits  uint64
	snapshotMiss  uint64
)

// ResetSnapshotCache drops every cached device template, releasing their
// memory. Safe to call concurrently with New; in-flight builds complete
// and are handed to their waiters but are no longer retained.
func ResetSnapshotCache() {
	snapshotMu.Lock()
	snapshotCache = map[snapshotKey]*snapshotEntry{}
	snapshotMu.Unlock()
}

// snapshotStats returns the hit/miss counters (for tests).
func snapshotStats() (hits, misses uint64) {
	snapshotMu.Lock()
	defer snapshotMu.Unlock()
	return snapshotHits, snapshotMiss
}

// snapshotScheme returns a fresh scheme instance for cfg, cloned from the
// cached preconditioned template (building and caching it on first use).
// Pooled released clones are recycled by restoring them from the template
// instead of allocating a new copy.
func snapshotScheme(cfg Config) (scheme.Scheme, snapshotKey, error) {
	key := snapshotKey{flash: cfg.Flash, err: cfg.Error, scheme: cfg.Scheme}

	snapshotMu.Lock()
	snapshotClock++
	if e, ok := snapshotCache[key]; ok {
		e.lastUse = snapshotClock
		snapshotHits++
		var reuse scheme.Scheme
		if n := len(e.free); n > 0 && e.built && e.buildErr == nil {
			reuse = e.free[n-1]
			e.free[n-1] = nil
			e.free = e.free[:n-1]
		}
		snapshotMu.Unlock()
		<-e.ready
		if e.buildErr != nil {
			return nil, key, e.buildErr
		}
		if reuse != nil && reuse.Restore(e.s) {
			return reuse, key, nil
		}
		return e.s.Clone(), key, nil
	}
	e := &snapshotEntry{ready: make(chan struct{}), lastUse: snapshotClock}
	snapshotCache[key] = e
	snapshotMiss++
	evictSnapshotsLocked()
	snapshotMu.Unlock()

	s, err := buildScheme(cfg)
	snapshotMu.Lock()
	e.s, e.buildErr = s, err
	e.built = true
	if err != nil {
		// Build errors are not cached: a later call with the same bad
		// config re-derives the error instead of serving a stale one.
		if snapshotCache[key] == e {
			delete(snapshotCache, key)
		}
	}
	snapshotMu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, key, err
	}
	return s.Clone(), key, nil
}

// releaseScheme returns a clone to its template's free pool for recycling.
// The caller must be done with it entirely: the next job overwrites its
// state in place. Clones whose template has been evicted (or whose pool is
// full) are simply dropped to the garbage collector.
func releaseScheme(key snapshotKey, s scheme.Scheme) {
	snapshotMu.Lock()
	if e, ok := snapshotCache[key]; ok && e.built && e.buildErr == nil && len(e.free) < snapshotFreeCap {
		e.free = append(e.free, s)
	}
	snapshotMu.Unlock()
}

// evictSnapshotsLocked drops least-recently-used built templates until the
// cache is within its cap. Entries still building are never evicted (their
// builder owns them); the cache may transiently exceed the cap while many
// distinct configs build at once. Callers hold snapshotMu.
func evictSnapshotsLocked() {
	for len(snapshotCache) > snapshotCacheCap {
		var victim snapshotKey
		var oldest uint64
		found := false
		for k, e := range snapshotCache {
			if !e.built {
				continue
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(snapshotCache, victim)
	}
}
