package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/scheme"
)

// The scheme registry. Schemes are looked up by name when a Simulator is
// built, so variants and future comparison counterparts plug in by
// registering a builder instead of editing core. The three paper schemes
// and every IPU ablation/extension variant register themselves at init;
// external packages add their own with RegisterScheme.

// SchemeBuilder constructs one scheme instance over the given geometry and
// error model. Builders must not retain the pointers beyond construction
// hand-off: core passes per-simulator copies.
type SchemeBuilder func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error)

var (
	schemeRegMu sync.RWMutex
	schemeReg   = map[string]SchemeBuilder{}
	schemeOrder []string
)

// SchemeNames lists the comparison schemes of the matrix: the source
// paper's three counterparts in the paper's presentation order, then the
// cross-paper additions alphabetically. It is derived from the registry —
// every entry registered as a paper scheme lands here — and re-sorted
// canonically on each registration, so the ordering (and with it matrix,
// differential and golden output) is independent of package init order.
var SchemeNames []string

// paperSchemeRank pins the source paper's schemes to the front of
// SchemeNames in the paper's own order; everything else sorts
// alphabetically after them.
var paperSchemeRank = map[string]int{"Baseline": 0, "MGA": 1, "IPU": 2}

// sortSchemeNames sorts names into the canonical SchemeNames order.
func sortSchemeNames(names []string) {
	sort.SliceStable(names, func(i, j int) bool {
		ri, iPaper := paperSchemeRank[names[i]]
		rj, jPaper := paperSchemeRank[names[j]]
		switch {
		case iPaper && jPaper:
			return ri < rj
		case iPaper != jPaper:
			return iPaper
		default:
			return names[i] < names[j]
		}
	})
}

// RegisterScheme adds a named scheme builder to the registry. Name lookups
// in Config.Scheme, the experiment drivers and the daemon all resolve
// through it. Registering an empty name, a nil builder, or a duplicate
// name panics: registration is a program-initialisation act, and a
// conflict is a bug worth failing loudly on.
func RegisterScheme(name string, build SchemeBuilder) {
	if name == "" {
		panic("core: RegisterScheme with empty name")
	}
	if build == nil {
		panic(fmt.Sprintf("core: RegisterScheme(%q) with nil builder", name))
	}
	schemeRegMu.Lock()
	defer schemeRegMu.Unlock()
	if _, dup := schemeReg[name]; dup {
		panic(fmt.Sprintf("core: scheme %q registered twice", name))
	}
	schemeReg[name] = build
	schemeOrder = append(schemeOrder, name)
}

// Schemes returns every registered scheme name in registration order: the
// paper schemes first, then the IPU variants, then anything registered by
// external packages.
func Schemes() []string {
	schemeRegMu.RLock()
	defer schemeRegMu.RUnlock()
	return append([]string(nil), schemeOrder...)
}

// lookupScheme resolves a registered builder.
func lookupScheme(name string) (SchemeBuilder, bool) {
	schemeRegMu.RLock()
	defer schemeRegMu.RUnlock()
	b, ok := schemeReg[name]
	return b, ok
}

// buildScheme constructs (and, per cfg.Flash.PreFillMLC, preconditions) a
// scheme instance from scratch via the registry.
func buildScheme(cfg Config) (scheme.Scheme, error) {
	build, ok := lookupScheme(cfg.Scheme)
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme %q (registered: %s)",
			cfg.Scheme, strings.Join(Schemes(), ", "))
	}
	fc := cfg.Flash // copy: the scheme retains a pointer
	em := cfg.Error
	return build(&fc, &em)
}

func init() {
	// The paper's three counterparts, in the paper's order; these also
	// populate SchemeNames.
	registerPaperScheme("Baseline", func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error) {
		return scheme.NewBaseline(fc, em)
	})
	registerPaperScheme("MGA", func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error) {
		return scheme.NewMGA(fc, em)
	})
	registerPaperScheme("IPU", ipuBuilder(scheme.DefaultIPUVariant()))

	// The cross-paper counterparts: In-place Switch (arXiv:2409.14360)
	// and IPU with a time-efficient preemptive GC (arXiv:1807.09313).
	registerPaperScheme("IPS", func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error) {
		return scheme.NewIPS(fc, em)
	})
	registerPaperScheme("IPU-PGC", func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error) {
		return scheme.NewIPUPGC(fc, em, scheme.DefaultPGCConfig())
	})

	// The remaining IPU ablation/extension variants, sorted for a
	// deterministic registration order.
	variants := scheme.IPUVariants()
	names := make([]string, 0, len(variants))
	for name := range variants {
		if name != "IPU" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		RegisterScheme(name, ipuBuilder(variants[name]))
	}
}

// registerPaperScheme registers a builder and inserts the name into
// SchemeNames at its canonical position, keeping the comparison set
// derived from the registry but ordered independently of registration
// order.
func registerPaperScheme(name string, build SchemeBuilder) {
	RegisterScheme(name, build)
	SchemeNames = append(SchemeNames, name)
	sortSchemeNames(SchemeNames)
}

// ipuBuilder adapts one IPU variant to the SchemeBuilder shape.
func ipuBuilder(v scheme.IPUVariant) SchemeBuilder {
	return func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error) {
		return scheme.NewIPUVariant(fc, em, v)
	}
}
