package core

import (
	"reflect"
	"testing"
)

// TestCellsEnumerateInResultOrder pins the cell decomposition to the
// order RunMatrixContext returns results: (trace, P/E, scheme).
func TestCellsEnumerateInResultOrder(t *testing.T) {
	spec := MatrixSpec{
		Traces:      []string{"ts0", "wdev0"},
		Schemes:     []string{"Baseline", "IPU"},
		PEBaselines: []int{0, 3000},
		Scale:       0.01,
		Seed:        7,
	}
	cells := Cells(spec)
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	want := []MatrixCell{
		{"ts0", "Baseline", 0}, {"ts0", "IPU", 0},
		{"ts0", "Baseline", 3000}, {"ts0", "IPU", 3000},
		{"wdev0", "Baseline", 0}, {"wdev0", "IPU", 0},
		{"wdev0", "Baseline", 3000}, {"wdev0", "IPU", 3000},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("cell order:\n got %v\nwant %v", cells, want)
	}
}

// TestRunCellMatchesMatrixElement asserts the cell-level unit of
// distribution: running each cell independently produces results
// bit-identical to the full matrix at the same index. This is the
// guarantee the coordinator's sharded sweeps rest on.
func TestRunCellMatchesMatrixElement(t *testing.T) {
	spec := MatrixSpec{
		Traces:      []string{"ts0"},
		Schemes:     []string{"Baseline", "IPU"},
		PEBaselines: []int{0, 3000},
		Scale:       0.01,
		Seed:        11,
	}
	want, err := RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(spec)
	if len(cells) != len(want) {
		t.Fatalf("cells = %d, matrix rows = %d", len(cells), len(want))
	}
	for i, c := range cells {
		got, err := RunCell(spec, c)
		if err != nil {
			t.Fatalf("cell %v: %v", c, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("cell %v diverged from matrix element %d:\n got %+v\nwant %+v", c, i, got, want[i])
		}
	}
}

// TestSensitivityPointCellsMatchSweep asserts a sensitivity sweep
// decomposes into per-point cells whose independent runs re-render the
// exact table of the monolithic sweep, with the worker-side
// SensitivityCellConfig reconstructing each point's flash configuration.
func TestSensitivityPointCellsMatchSweep(t *testing.T) {
	const param = "slcratio"
	spec := MatrixSpec{Traces: []string{"ts0"}, Scale: 0.01, Seed: 5}
	want, err := RunSensitivity(param, spec)
	if err != nil {
		t.Fatal(err)
	}

	values := SensitivityParams[param]
	perPoint := make([][]*Result, len(values))
	for i, v := range values {
		pointSpec, err := SensitivityPointSpec(spec, param, v)
		if err != nil {
			t.Fatal(err)
		}
		// A worker reconstructs the point's flash config from (param, value)
		// alone; it must match the coordinator's point spec.
		fc, err := SensitivityCellConfig(param, v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fc, *pointSpec.Flash) {
			t.Fatalf("%s=%v: cell config diverged from point spec", param, v)
		}
		for _, c := range Cells(pointSpec) {
			r, err := RunCell(pointSpec, c)
			if err != nil {
				t.Fatal(err)
			}
			perPoint[i] = append(perPoint[i], r)
		}
	}
	got := SensitivityTable(param, values, perPoint)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded sensitivity table diverged:\n got %+v\nwant %+v", got, want)
	}
}
