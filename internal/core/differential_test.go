package core

import (
	"testing"

	"ipusim/internal/flash"
	"ipusim/internal/trace"
)

// differentialFlash is a tight geometry: a small preconditioned MLC region
// and an 8-block SLC cache, so a short trace churns both garbage
// collectors in every scheme while the full harness sweeps after each.
func differentialFlash() flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.Blocks = 64
	c.SLCRatio = 0.125
	c.SLCPagesPerBlock = 8
	c.MLCPagesPerBlock = 16
	c.LogicalSubpages = c.MLCSubpages() * 3 / 4
	c.PreFillMLC = true
	return c
}

func TestDifferentialSchemes(t *testing.T) {
	got := DifferentialSchemes()
	if len(got) != 9 {
		t.Fatalf("schemes = %v, want 5 comparison schemes + 4 IPU variants", got)
	}
	for i, want := range SchemeNames {
		if got[i] != want {
			t.Errorf("scheme %d = %s, want %s", i, got[i], want)
		}
	}
}

// TestRunDifferential replays one trace through every scheme and variant
// under the full invariant harness and asserts they conserved identical
// logical state: a placement or GC bug that loses or cross-wires even one
// LSN in any scheme fails this test.
func TestRunDifferential(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 11, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	fc := differentialFlash()
	res, err := RunDifferential(tr, nil, &fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(DifferentialSchemes()) {
		t.Fatalf("results = %d, want %d", len(res), len(DifferentialSchemes()))
	}
	for _, r := range res {
		if r.Requests != tr.Len() {
			t.Errorf("%s replayed %d of %d requests", r.Scheme, r.Requests, tr.Len())
		}
	}
}

// TestRunDifferentialSubset runs an explicit two-scheme comparison, the
// shape a bisecting debug session would use.
func TestRunDifferentialSubset(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["wdev0"], 3, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	fc := differentialFlash()
	res, err := RunDifferential(tr, []string{"Baseline", "IPU"}, &fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Scheme != "Baseline" || res[1].Scheme != "IPU" {
		t.Fatalf("unexpected results: %+v", res)
	}
}

func TestRunDifferentialUnknownScheme(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	fc := differentialFlash()
	if _, err := RunDifferential(tr, []string{"NoSuchFTL"}, &fc); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
