package core

import (
	"reflect"
	"testing"

	"ipusim/internal/flash"
	"ipusim/internal/trace"
)

// snapshotFlash is a small preconditioned geometry for clone-fidelity
// tests: big enough to exercise SLC GC and MLC overflow, small enough to
// replay in milliseconds.
func snapshotFlash() flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.Blocks = 64
	c.SLCRatio = 0.125
	c.SLCPagesPerBlock = 8
	c.MLCPagesPerBlock = 16
	c.LogicalSubpages = c.MLCSubpages() * 3 / 4
	c.PreFillMLC = true
	return c
}

// TestCloneMatchesFreshReplay is the clone-fidelity differential of the
// snapshot layer: for every paper scheme, a simulator built by cloning the
// cached preconditioned template must produce bit-for-bit the same Result
// as one constructed from scratch.
func TestCloneMatchesFreshReplay(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 11, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames {
		ResetSnapshotCache()
		cfg := DefaultConfig()
		cfg.Flash = snapshotFlash()
		cfg.Scheme = name

		fresh, err := NewFresh(cfg)
		if err != nil {
			t.Fatalf("%s: fresh build: %v", name, err)
		}
		want, err := fresh.Run(tr)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", name, err)
		}

		// First New builds the template and returns a clone of it; the
		// second clones the now-cached template. Both must match fresh.
		for i := 0; i < 2; i++ {
			sim, err := New(cfg)
			if err != nil {
				t.Fatalf("%s: cached build %d: %v", name, i, err)
			}
			got, err := sim.Run(tr)
			if err != nil {
				t.Fatalf("%s: cached run %d: %v", name, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: cloned replay %d diverged from fresh:\n got %+v\nwant %+v", name, i, got, want)
			}
		}
	}
}

// TestCloneIndependence verifies that running one clone does not disturb
// the template: two clones taken before and after an interleaved run must
// replay identically.
func TestCloneIndependence(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["wdev0"], 5, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	ResetSnapshotCache()
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	cfg.Scheme = "IPU"

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := first.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	second, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := second.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("clone taken after a replay diverged:\n got %+v\nwant %+v", res2, res1)
	}
}

// TestRecycledCloneMatchesFreshReplay covers the pooled start-up path: a
// released device restored in place from the template must replay exactly
// like a fresh clone (and a fresh build).
func TestRecycledCloneMatchesFreshReplay(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 11, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames {
		ResetSnapshotCache()
		cfg := DefaultConfig()
		cfg.Flash = snapshotFlash()
		cfg.Scheme = name

		first, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := first.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		first.Release()

		// The next New must pop the released device from the pool and
		// restore it; its replay must be bit-for-bit identical.
		recycled, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recycled.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recycled replay diverged from first:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestSnapshotSkipsPreconditioning asserts the cache does what it is for:
// preconditioning runs once per template (inside the single cache miss),
// and warm start-up is a bounded-allocation clone, not an O(device
// programs) rebuild.
func TestSnapshotSkipsPreconditioning(t *testing.T) {
	ResetSnapshotCache()
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	cfg.Scheme = "MGA"

	h0, m0 := snapshotStats()
	for i := 0; i < 4; i++ {
		if _, err := New(cfg); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := snapshotStats()
	if m1-m0 != 1 {
		t.Errorf("4 News caused %d template builds, want exactly 1", m1-m0)
	}
	if h1-h0 != 3 {
		t.Errorf("4 News caused %d cache hits, want 3", h1-h0)
	}

	// Warm start-up allocates the clone's backing stores — a fixed number
	// of allocations independent of preconditioning volume. A rebuild that
	// re-ran preFill would blow far past this bound on map/slice growth
	// inside the scheme constructors alone.
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := New(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 128 {
		t.Errorf("warm New allocates %.0f objects, want a bounded clone (<= 128)", allocs)
	}
}

// TestSnapshotCacheEvicts exercises the LRU bound.
func TestSnapshotCacheEvicts(t *testing.T) {
	oldCap := snapshotCacheCap
	snapshotCacheCap = 2
	defer func() { snapshotCacheCap = oldCap }()
	ResetSnapshotCache()

	mk := func(pe int) Config {
		cfg := DefaultConfig()
		cfg.Flash = snapshotFlash()
		cfg.Flash.PEBaseline = pe
		cfg.Scheme = "Baseline"
		return cfg
	}
	for _, pe := range []int{1000, 2000, 3000} {
		if _, err := New(mk(pe)); err != nil {
			t.Fatal(err)
		}
	}
	snapshotMu.Lock()
	n := len(snapshotCache)
	snapshotMu.Unlock()
	if n > 2 {
		t.Errorf("cache holds %d templates, cap is 2", n)
	}

	// The oldest key (pe=1000) was evicted: using it again is a miss.
	_, m0 := snapshotStats()
	if _, err := New(mk(1000)); err != nil {
		t.Fatal(err)
	}
	if _, m1 := snapshotStats(); m1-m0 != 1 {
		t.Errorf("evicted key was served from cache (misses %d)", m1-m0)
	}
}

// TestResetSnapshotCache verifies Reset forgets templates.
func TestResetSnapshotCache(t *testing.T) {
	ResetSnapshotCache()
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	cfg.Scheme = "IPU"
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	ResetSnapshotCache()
	_, m0 := snapshotStats()
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
	if _, m1 := snapshotStats(); m1-m0 != 1 {
		t.Error("New after Reset did not rebuild the template")
	}
}

// TestTraceCacheBoundedAndResettable exercises the trace-cache LRU bound
// and ResetTraceCache.
func TestTraceCacheBoundedAndResettable(t *testing.T) {
	oldCap := traceCacheCap
	traceCacheCap = 3
	defer func() { traceCacheCap = oldCap }()
	ResetTraceCache()

	for seed := int64(1); seed <= 5; seed++ {
		if _, err := cachedTrace("ts0", seed, 0.001); err != nil {
			t.Fatal(err)
		}
	}
	traceCacheMu.Lock()
	n := len(traceCacheMap)
	traceCacheMu.Unlock()
	if n > 3 {
		t.Errorf("trace cache holds %d entries, cap is 3", n)
	}

	// A cached key returns the identical instance (shared read-only).
	a, err := cachedTrace("ts0", 5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cachedTrace("ts0", 5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same key produced distinct trace instances")
	}

	ResetTraceCache()
	traceCacheMu.Lock()
	n = len(traceCacheMap)
	traceCacheMu.Unlock()
	if n != 0 {
		t.Errorf("trace cache holds %d entries after Reset", n)
	}
}
