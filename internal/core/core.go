// Package core is the public façade of the simulator: it assembles the
// flash substrate, timing engine, error model and a chosen FTL scheme into
// a Simulator that replays block I/O traces, and provides the parallel
// experiment harness plus per-figure reporting that regenerates every
// table and figure of the paper's evaluation.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/check"
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/ftl"
	"ipusim/internal/scheme"
	"ipusim/internal/trace"
)

// ErrReleased reports use of a Simulator after Release handed its device
// back to the snapshot pool. A released device may be overwritten in place
// by a later job at any moment, so every entry point refuses to touch it.
var ErrReleased = errors.New("core: simulator used after Release")

// Config assembles one simulation run.
type Config struct {
	// Flash is the device geometry and timing (Table 2 defaults).
	Flash flash.Config
	// Error is the reliability model (Fig. 2 defaults).
	Error errmodel.Model
	// Scheme selects the FTL: "Baseline", "MGA" or "IPU".
	Scheme string
	// Check attaches the internal/check invariant harness to the run.
	// check.Off (the default) costs nothing; check.Shadow mirrors and
	// verifies every host request; check.Full adds an O(device)
	// structural sweep after every GC event. Keep it off for benchmarks.
	Check check.Level
	// Parallelism sets the intra-run read-pipeline worker count: per-
	// subpage ECC evaluation is dispatched to this many workers and
	// committed back in simulated-time order, so results stay
	// bit-identical to a serial run. 0 or 1 (the default) replays
	// serially. Open-loop and closed-loop replays both honour it; a
	// closed-loop queue-depth gate that needs an in-flight read's true
	// completion time forces exactly the pending commits it depends on.
	// Parallelism never changes any metric — only wall time — so it is
	// not part of the snapshot-cache or job-cache key.
	Parallelism int
}

// DefaultConfig returns the scaled-down Table 2 geometry with the paper's
// error model, running the IPU scheme on a preconditioned (pre-filled)
// device, as the evaluation does.
func DefaultConfig() Config {
	fc := flash.DefaultConfig()
	fc.PreFillMLC = true
	return Config{
		Flash:  fc,
		Error:  errmodel.Default(),
		Scheme: "IPU",
	}
}

// Progress is a point-in-time view of a running replay, delivered to the
// callback registered with OnProgress (or MatrixSpec.OnProgress).
type Progress struct {
	// Replayed counts host requests completed so far; Total is the
	// request count of the trace (or, for matrix sweeps, of every run in
	// the sweep combined).
	Replayed, Total int
	// SimTime is the device clock (ns) of the most recent completion.
	SimTime int64
	// GCs counts garbage collections triggered so far (SLC + MLC).
	GCs int64
}

// Frac returns completion as a fraction in [0, 1].
func (p Progress) Frac() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Replayed) / float64(p.Total)
}

// ProgressFunc receives periodic Progress snapshots during a replay. It is
// called synchronously from the replay loop (concurrently from many
// goroutines during matrix sweeps), so it must be fast and, for sweeps,
// safe for concurrent use.
type ProgressFunc func(Progress)

// DefaultProgressEvery is the callback granularity, in requests, used when
// OnProgress is given a non-positive interval.
const DefaultProgressEvery = 4096

// Simulator replays block I/O requests against one scheme instance.
type Simulator struct {
	cfg    Config
	scheme scheme.Scheme

	// key and pooled record the snapshot-cache identity of the scheme
	// instance, so Release can hand it back for recycling.
	key    snapshotKey
	pooled bool

	// progress, if non-nil, is invoked every progressEvery requests (and
	// at completion) by Run/RunClosedLoop.
	progress      ProgressFunc
	progressEvery int
}

// New builds a simulator. The flash configuration is copied, so one Config
// value can seed many simulators. Device construction goes through the
// precondition-snapshot cache: the first simulator for a (flash, error,
// scheme) combination builds and pre-fills a template device, and every
// later one starts from a deep clone of it — identical state at a fraction
// of the start-up cost. The invariant checker is attached per instance,
// after cloning.
func New(cfg Config) (*Simulator, error) {
	s, key, err := snapshotScheme(cfg)
	if err != nil {
		return nil, err
	}
	s.Device().AttachChecker(cfg.Check)
	return &Simulator{cfg: cfg, scheme: s, key: key, pooled: true}, nil
}

// NewFresh builds a simulator from scratch, bypassing the snapshot cache.
// It exists for clone-fidelity differentials — comparing a cloned or
// recycled device's replay against a freshly constructed one — and for
// callers that must not share template state with anyone.
func NewFresh(cfg Config) (*Simulator, error) {
	s, err := buildScheme(cfg)
	if err != nil {
		return nil, err
	}
	s.Device().AttachChecker(cfg.Check)
	return &Simulator{cfg: cfg, scheme: s}, nil
}

// Scheme returns the underlying FTL (nil after Release).
func (s *Simulator) Scheme() scheme.Scheme { return s.scheme }

// OnProgress registers fn to receive a Progress snapshot every `every`
// completed requests (and once at completion) during Run and
// RunClosedLoop. A non-positive interval means DefaultProgressEvery; a nil
// fn unregisters. The steady-state replay loop pays only a nil check when
// no callback is registered.
func (s *Simulator) OnProgress(every int, fn ProgressFunc) {
	if every <= 0 {
		every = DefaultProgressEvery
	}
	s.progressEvery = every
	s.progress = fn
}

// Release hands the scheme instance back to the snapshot cache's free pool
// for recycling and invalidates the simulator: every later Write, Read or
// Run on it fails with ErrReleased. Only callers that fully own the
// simulator (RunMatrix workers, daemon jobs) may call it — a released
// device is overwritten in place by a later job. Release is idempotent.
func (s *Simulator) Release() {
	if s.scheme == nil {
		return
	}
	if s.pooled {
		d := s.scheme.Device()
		d.Check = nil
		d.TestHooks.AfterHostWrite = nil
		releaseScheme(s.key, s.scheme)
	}
	s.scheme = nil
}

// Write services one host write request, returning its completion time.
func (s *Simulator) Write(now int64, offset int64, size int) (int64, error) {
	if s.scheme == nil {
		return 0, ErrReleased
	}
	return s.scheme.Write(now, offset, size), nil
}

// Read services one host read request, returning its completion time.
func (s *Simulator) Read(now int64, offset int64, size int) (int64, error) {
	if s.scheme == nil {
		return 0, ErrReleased
	}
	return s.scheme.Read(now, offset, size), nil
}

// emitProgress delivers one Progress snapshot to the registered callback.
func (s *Simulator) emitProgress(replayed, total int, simTime int64) {
	m := s.scheme.Metrics()
	s.progress(Progress{
		Replayed: replayed,
		Total:    total,
		SimTime:  simTime,
		GCs:      m.GCs(),
	})
}

// Run replays a trace and returns the aggregated result. Offsets wrap
// modulo the logical space, so traces larger than the device still replay.
// It is RunContext under context.Background().
func (s *Simulator) Run(tr *trace.Trace) (*Result, error) {
	return s.RunContext(context.Background(), tr)
}

// RunContext replays a trace, checking ctx between requests: the replay
// stops within one request boundary of cancellation and returns ctx's
// error. Contexts that cannot be cancelled (context.Background) cost the
// loop nothing. A periodic callback registered with OnProgress reports
// replay progress.
func (s *Simulator) RunContext(ctx context.Context, tr *trace.Trace) (*Result, error) {
	if s.scheme == nil {
		return nil, ErrReleased
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	done := ctx.Done()
	n := tr.Len()
	if s.cfg.Parallelism > 1 {
		d := s.scheme.Device()
		d.StartReadPipeline(s.cfg.Parallelism)
		// The deferred stop makes cancellation leak-free: every worker is
		// flushed and joined before RunContext returns, on every path.
		defer d.StopReadPipeline()
	}
	var last int64
	for i := 0; i < n; i++ {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		r := tr.At(i)
		if r.Op == trace.OpWrite {
			last = s.scheme.Write(r.Time, r.Offset, r.Size)
		} else {
			last = s.scheme.Read(r.Time, r.Offset, r.Size)
		}
		if s.progress != nil && ((i+1)%s.progressEvery == 0 || i+1 == n) {
			// Progress snapshots read the metrics, so in-flight reads must
			// commit first; the flush keeps reported GC counts consistent
			// with a serial replay's.
			s.scheme.Device().FlushReads()
			s.emitProgress(i+1, n, last)
		}
	}
	// Commit every in-flight read before the final sweep and the result
	// snapshot. (StopReadPipeline would also flush, but only after this
	// function returns.)
	s.scheme.Device().FlushReads()
	if err := s.checkFinal(); err != nil {
		return nil, err
	}
	return s.Result(tr.Name, n), nil
}

// checkFinal runs the attached invariant checker's end-of-run sweep.
func (s *Simulator) checkFinal() error {
	if ck := s.scheme.Device().Check; ck != nil {
		if err := ck.CheckFinal(); err != nil {
			return fmt.Errorf("core: %s: %w", s.cfg.Scheme, err)
		}
	}
	return nil
}

// RunClosedLoop replays a trace with a bounded number of outstanding
// requests. It is RunClosedLoopSpec under context.Background().
//
// Deprecated: use RunClosedLoopSpec, which names every option and adds
// multi-tenant and write-cache dimensions. This positional form is kept
// as a thin wrapper for existing callers.
func (s *Simulator) RunClosedLoop(tr *trace.Trace, depth int) (*Result, error) {
	return s.RunClosedLoopSpec(context.Background(), ClosedLoopSpec{Trace: tr, Depth: depth})
}

// RunClosedLoopContext replays a trace with a bounded number of
// outstanding requests: request i is not issued before request i-depth has
// completed, the way a benchmark driver with a fixed queue depth behaves
// (in contrast to Run's open-loop replay, which issues at trace timestamps
// regardless of completions). Under saturation the closed loop self-paces
// instead of building unbounded queues, exposing the device's sustainable
// throughput. Cancellation and progress reporting behave as in RunContext.
//
// Deprecated: use RunClosedLoopSpec; this positional form is a thin
// wrapper over it and replays bit-identically.
func (s *Simulator) RunClosedLoopContext(ctx context.Context, tr *trace.Trace, depth int) (*Result, error) {
	return s.RunClosedLoopSpec(ctx, ClosedLoopSpec{Trace: tr, Depth: depth})
}

// Result snapshots the run's statistics. It returns nil after Release.
func (s *Simulator) Result(traceName string, requests int) *Result {
	if s.scheme == nil {
		return nil
	}
	d := s.scheme.Device()
	m := s.scheme.Metrics()
	mm := ftl.NewMemoryModel(d.Cfg)

	var mapBytes int64
	switch s.cfg.Scheme {
	case "Baseline":
		mapBytes = mm.BaselineBytes()
	case "MGA":
		mapBytes = mm.MGABytes(m.PeakSLCValidSubpages)
	default:
		mapBytes = mm.IPUBytes(m.PeakSLCFramePages)
	}

	wearMin, wearMax := -1, 0
	for _, id := range d.Arr.SLCBlockIDs() {
		ec := d.Arr.Block(id).EraseCount
		if wearMin < 0 || ec < wearMin {
			wearMin = ec
		}
		if ec > wearMax {
			wearMax = ec
		}
	}
	if wearMin < 0 {
		wearMin = 0
	}

	return &Result{
		Trace:              traceName,
		Scheme:             s.cfg.Scheme,
		PEBaseline:         d.Cfg.PEBaseline,
		Requests:           requests,
		AvgReadLatency:     m.ReadLatency.Mean(),
		P99ReadLatency:     m.ReadLatency.Percentile(0.99),
		AvgWriteLatency:    m.WriteLatency.Mean(),
		AvgLatency:         m.AllLatency.Mean(),
		P99Latency:         m.AllLatency.Percentile(0.99),
		ReadErrorRate:      m.ReadBER.Mean(),
		UncorrectableReads: m.UncorrectableReads,
		ReadRetries:        m.ReadRetries,
		SLCPrograms:        d.Arr.SLCPrograms,
		MLCPrograms:        d.Arr.MLCPrograms,
		PartialPrograms:    d.Arr.PartialPrograms,
		SLCErases:          d.Arr.SLCErases,
		MLCErases:          d.Arr.MLCErases,
		LevelPrograms:      m.LevelPrograms,
		SLCGCs:             m.SLCGCs,
		MLCGCs:             m.MLCGCs,
		PageUtilization:    m.PageUtilization(),
		GCScanNS:           m.GCScanNS,
		GCBlocksScanned:    m.GCBlocksScanned,
		GCMovedSubpages:    m.GCMovedSubpages,
		MappingBytes:       mapBytes,
		MappingNormalized:  mm.Normalized(mapBytes),
		HostWritesToMLC:    m.HostWritesToMLC,
		SubpageReadsSLC:    m.SubpageReadsSLC,
		SubpageReadsMLC:    m.SubpageReadsMLC,
		SLCWearMin:         wearMin,
		SLCWearMax:         wearMax,

		HostSubpagesWritten: m.HostSubpagesWritten,
		GCStallNS:           d.Eng.Stats.CapStallNS,
		InPlaceSwitches:     m.InPlaceSwitches,
		SwitchedSubpages:    m.SwitchedSubpages,
		SwitchBackReclaims:  m.SwitchBackReclaims,
		PreemptiveGCs:       m.PreemptiveGCs,
	}
}

// Result is the aggregated outcome of one (trace, scheme) run; it carries
// every quantity the paper's figures report.
type Result struct {
	Trace      string
	Scheme     string
	PEBaseline int
	Requests   int

	// Fig. 5 / Fig. 13.
	AvgReadLatency  time.Duration
	AvgWriteLatency time.Duration
	AvgLatency      time.Duration
	P99Latency      time.Duration
	P99ReadLatency  time.Duration

	// Fig. 8 / Fig. 14.
	ReadErrorRate      float64
	UncorrectableReads int64
	ReadRetries        int64

	// Fig. 6.
	SLCPrograms, MLCPrograms int64
	PartialPrograms          int64

	// Fig. 10.
	SLCErases, MLCErases int64

	// Fig. 7.
	LevelPrograms [flash.LevelHot + 1]int64

	// Fig. 9 and GC bookkeeping.
	SLCGCs, MLCGCs  int64
	PageUtilization float64
	GCMovedSubpages int64

	// Fig. 12.
	GCScanNS        int64
	GCBlocksScanned int64

	// Fig. 11.
	MappingBytes      int64
	MappingNormalized float64

	HostWritesToMLC                  int64
	SubpageReadsSLC, SubpageReadsMLC int64

	// SLCWearMin/Max bound the per-block erase counts of the SLC region at
	// run end: a tight band confirms the static wear levelling of Table 2.
	SLCWearMin, SLCWearMax int

	// Cross-paper scheme-matrix quantities. HostSubpagesWritten is the
	// write-amplification denominator; GCStallNS is host time stalled on
	// background GC backlog (the matrix's GC stall column); the remaining
	// counters are nonzero only for the IPS and IPU-PGC schemes.
	HostSubpagesWritten int64
	GCStallNS           int64
	InPlaceSwitches     int64
	SwitchedSubpages    int64
	SwitchBackReclaims  int64
	PreemptiveGCs       int64

	// Multi-tenant extensions, populated only by RunClosedLoopSpec runs
	// with Tenants set. All carry omitempty so legacy single-stream
	// results marshal byte-identically to before the extension (golden
	// snapshots and content-addressed job keys depend on that).
	//
	// Tenants holds one entry per tenant, in spec order; FairnessIndex is
	// Jain's index over weight-normalised tenant throughputs (1 = every
	// tenant got exactly its QoS share).
	Tenants       []TenantResult `json:",omitempty"`
	FairnessIndex float64        `json:",omitempty"`
	// WriteCache reports the DRAM write-buffer counters when the run had
	// one; nil means the run went straight to the device.
	WriteCache *cache.Stats `json:",omitempty"`
}

// WriteAmplification returns total subpage programs per host subpage
// written: 1 plus GC movement overhead. Zero when nothing was written.
func (r *Result) WriteAmplification() float64 {
	if r.HostSubpagesWritten == 0 {
		return 0
	}
	return 1 + float64(r.GCMovedSubpages)/float64(r.HostSubpagesWritten)
}

// ReadHitRatio returns the fraction of subpage reads served by SLC-mode
// blocks — the cache hit ratio of the scheme matrix.
func (r *Result) ReadHitRatio() float64 {
	total := r.SubpageReadsSLC + r.SubpageReadsMLC
	if total == 0 {
		return 0
	}
	return float64(r.SubpageReadsSLC) / float64(total)
}

// SLCWriteShare returns the fraction of page programs completed in
// SLC-mode blocks (Fig. 6's headline ratio).
func (r *Result) SLCWriteShare() float64 {
	total := r.SLCPrograms + r.MLCPrograms
	if total == 0 {
		return 0
	}
	return float64(r.SLCPrograms) / float64(total)
}

// LevelShare returns the fraction of SLC programs that landed in the given
// level's blocks (Fig. 7).
func (r *Result) LevelShare(l flash.BlockLevel) float64 {
	var slc int64
	for lv := flash.LevelWork; lv <= flash.LevelHot; lv++ {
		slc += r.LevelPrograms[lv]
	}
	if slc == 0 {
		return 0
	}
	return float64(r.LevelPrograms[l]) / float64(slc)
}
