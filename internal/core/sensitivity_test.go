package core

import (
	"strings"
	"testing"
)

func TestRunSensitivityUnknownParam(t *testing.T) {
	if _, err := RunSensitivity("voltage", MatrixSpec{}); err != nil {
		if !strings.Contains(err.Error(), "unknown sensitivity parameter") {
			t.Errorf("unexpected error: %v", err)
		}
	} else {
		t.Fatal("unknown parameter accepted")
	}
}

func TestRunSensitivitySLCRatio(t *testing.T) {
	fc := smallFlash()
	tab, err := RunSensitivity("slcratio", MatrixSpec{
		Traces: []string{"ads"},
		Scale:  0.002,
		Flash:  &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 sweep values x 2 schemes x 1 trace.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.025", "0.05", "0.1", "Baseline", "IPU"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSensitivityAllParamsValidate(t *testing.T) {
	fc := smallFlash()
	for param := range SensitivityParams {
		for _, v := range SensitivityParams[param] {
			if _, err := applySensitivity(fc, param, v); err != nil {
				t.Errorf("%s=%v: %v", param, v, err)
			}
		}
	}
}

// TestSensitivityCachePressureShape asserts the regime behaviour the sweep
// exposes: shrinking the cache increases overflow writes for both schemes.
func TestSensitivityCachePressureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape check")
	}
	base := smallFlash()
	base.PreFillMLC = true
	overflow := map[float64]int64{}
	for _, ratio := range []float64{0.025, 0.10} {
		fc, err := applySensitivity(base, "slcratio", ratio)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunMatrix(MatrixSpec{
			Traces: []string{"ts0"}, Schemes: []string{"Baseline"},
			Scale: 0.01, Flash: &fc,
		})
		if err != nil {
			t.Fatal(err)
		}
		overflow[ratio] = res[0].HostWritesToMLC
	}
	if overflow[0.025] <= overflow[0.10] {
		t.Errorf("smaller cache must overflow more: %v", overflow)
	}
}
