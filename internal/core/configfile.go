package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ipusim/internal/check"
)

// ConfigSchemaVersion is the config file schema this build reads. Files
// state it in a top-level "version" field; an absent field is read as
// version 1 (the pre-versioning schema is identical). Version 2 adds the
// top-level "parallelism" knob; version-1 files remain readable. Any
// other value is rejected so a future-schema file fails loudly instead of
// being half applied.
const ConfigSchemaVersion = 2

// configMinSchemaVersion is the oldest schema this build still reads.
const configMinSchemaVersion = 1

// JSONDuration unmarshals either a Go duration string ("300us", "10ms") or
// a plain number of nanoseconds, so config files stay human-readable.
type JSONDuration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *JSONDuration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("core: bad duration %q: %w", s, err)
		}
		*d = JSONDuration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("core: duration must be a string or nanoseconds: %s", b)
	}
	*d = JSONDuration(ns)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d JSONDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// fileConfig is the on-disk configuration schema. Every field is optional:
// absent fields keep the evaluation defaults, so a config file only states
// what it changes.
type fileConfig struct {
	// Version is the schema version (ConfigSchemaVersion). Absent means 1.
	Version *int   `json:"version,omitempty"`
	Scheme  string `json:"scheme,omitempty"`
	// Check selects the invariant-checking level: "off", "shadow" or
	// "full" (see internal/check). Absent means off.
	Check string `json:"check,omitempty"`
	// Parallelism is the intra-run read-pipeline worker count (schema
	// version 2; see Config.Parallelism). Absent, 0 and 1 all mean a
	// serial replay.
	Parallelism *int `json:"parallelism,omitempty"`

	Flash struct {
		Channels               *int          `json:"channels,omitempty"`
		ChipsPerChannel        *int          `json:"chipsPerChannel,omitempty"`
		DiesPerChip            *int          `json:"diesPerChip,omitempty"`
		PlanesPerDie           *int          `json:"planesPerDie,omitempty"`
		Blocks                 *int          `json:"blocks,omitempty"`
		SLCRatio               *float64      `json:"slcRatio,omitempty"`
		SLCPagesPerBlock       *int          `json:"slcPagesPerBlock,omitempty"`
		MLCPagesPerBlock       *int          `json:"mlcPagesPerBlock,omitempty"`
		PageSizeBytes          *int          `json:"pageSizeBytes,omitempty"`
		SubpageSizeBytes       *int          `json:"subpageSizeBytes,omitempty"`
		MaxProgramsPerSLCPage  *int          `json:"maxProgramsPerSLCPage,omitempty"`
		GCThresholdFraction    *float64      `json:"gcThresholdFraction,omitempty"`
		MLCGCThresholdFraction *float64      `json:"mlcGcThresholdFraction,omitempty"`
		GCBacklogCap           *JSONDuration `json:"gcBacklogCap,omitempty"`
		PEBaseline             *int          `json:"peBaseline,omitempty"`
		LogicalSubpages        *int          `json:"logicalSubpages,omitempty"`
		PreFillMLC             *bool         `json:"preFillMLC,omitempty"`

		Timing struct {
			SLCRead            *JSONDuration `json:"slcRead,omitempty"`
			MLCRead            *JSONDuration `json:"mlcRead,omitempty"`
			SLCProgram         *JSONDuration `json:"slcProgram,omitempty"`
			MLCProgram         *JSONDuration `json:"mlcProgram,omitempty"`
			Erase              *JSONDuration `json:"erase,omitempty"`
			ECCMin             *JSONDuration `json:"eccMin,omitempty"`
			ECCMax             *JSONDuration `json:"eccMax,omitempty"`
			TransferPerSubpage *JSONDuration `json:"transferPerSubpage,omitempty"`
		} `json:"timing"`
	} `json:"flash"`

	Error struct {
		RefPE          *float64 `json:"refPE,omitempty"`
		RefBER         *float64 `json:"refBER,omitempty"`
		Exponent       *float64 `json:"exponent,omitempty"`
		PartialFactor  *float64 `json:"partialFactor,omitempty"`
		InPageAlpha    *float64 `json:"inPageAlpha,omitempty"`
		NeighborBeta   *float64 `json:"neighborBeta,omitempty"`
		ReprogramGamma *float64 `json:"reprogramGamma,omitempty"`
	} `json:"error"`
}

// unknownFieldKey extracts the offending key from encoding/json's
// DisallowUnknownFields error, so the wrapped error can name it directly.
func unknownFieldKey(err error) (string, bool) {
	const prefix = `json: unknown field `
	msg := err.Error()
	if rest, ok := strings.CutPrefix(msg, prefix); ok {
		return strings.Trim(rest, `"`), true
	}
	return "", false
}

// LoadConfig reads a JSON configuration, overlaying it on the evaluation
// defaults (DefaultConfig). The schema is versioned ("version" field,
// ConfigSchemaVersion); unknown fields are rejected with an error naming
// the offending key, so typos fail loudly. The resulting configuration is
// validated.
func LoadConfig(r io.Reader) (Config, error) {
	cfg := DefaultConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fc fileConfig
	if err := dec.Decode(&fc); err != nil {
		if key, ok := unknownFieldKey(err); ok {
			return cfg, fmt.Errorf("core: config: unknown key %q (schema version %d): %w",
				key, ConfigSchemaVersion, err)
		}
		return cfg, fmt.Errorf("core: config: %w", err)
	}
	if fc.Version != nil && (*fc.Version < configMinSchemaVersion || *fc.Version > ConfigSchemaVersion) {
		return cfg, fmt.Errorf("core: config: unsupported schema version %d (this build reads versions %d-%d)",
			*fc.Version, configMinSchemaVersion, ConfigSchemaVersion)
	}
	if fc.Scheme != "" {
		cfg.Scheme = fc.Scheme
	}
	if fc.Parallelism != nil {
		if *fc.Parallelism < 0 {
			return cfg, fmt.Errorf("core: config: parallelism %d must be non-negative", *fc.Parallelism)
		}
		cfg.Parallelism = *fc.Parallelism
	}
	lvl, err := check.ParseLevel(fc.Check)
	if err != nil {
		return cfg, fmt.Errorf("core: config: %w", err)
	}
	cfg.Check = lvl

	setInt := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setF := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setD := func(dst *time.Duration, src *JSONDuration) {
		if src != nil {
			*dst = time.Duration(*src)
		}
	}

	f := &fc.Flash
	logicalSet := f.LogicalSubpages != nil
	setInt(&cfg.Flash.Channels, f.Channels)
	setInt(&cfg.Flash.ChipsPerChannel, f.ChipsPerChannel)
	setInt(&cfg.Flash.DiesPerChip, f.DiesPerChip)
	setInt(&cfg.Flash.PlanesPerDie, f.PlanesPerDie)
	setInt(&cfg.Flash.Blocks, f.Blocks)
	setF(&cfg.Flash.SLCRatio, f.SLCRatio)
	setInt(&cfg.Flash.SLCPagesPerBlock, f.SLCPagesPerBlock)
	setInt(&cfg.Flash.MLCPagesPerBlock, f.MLCPagesPerBlock)
	setInt(&cfg.Flash.PageSizeBytes, f.PageSizeBytes)
	setInt(&cfg.Flash.SubpageSizeBytes, f.SubpageSizeBytes)
	setInt(&cfg.Flash.MaxProgramsPerSLCPage, f.MaxProgramsPerSLCPage)
	setF(&cfg.Flash.GCThresholdFraction, f.GCThresholdFraction)
	setF(&cfg.Flash.MLCGCThresholdFraction, f.MLCGCThresholdFraction)
	setD(&cfg.Flash.GCBacklogCap, f.GCBacklogCap)
	setInt(&cfg.Flash.PEBaseline, f.PEBaseline)
	setInt(&cfg.Flash.LogicalSubpages, f.LogicalSubpages)
	if f.PreFillMLC != nil {
		cfg.Flash.PreFillMLC = *f.PreFillMLC
	}
	t := &f.Timing
	setD(&cfg.Flash.Timing.SLCRead, t.SLCRead)
	setD(&cfg.Flash.Timing.MLCRead, t.MLCRead)
	setD(&cfg.Flash.Timing.SLCProgram, t.SLCProgram)
	setD(&cfg.Flash.Timing.MLCProgram, t.MLCProgram)
	setD(&cfg.Flash.Timing.Erase, t.Erase)
	setD(&cfg.Flash.Timing.ECCMin, t.ECCMin)
	setD(&cfg.Flash.Timing.ECCMax, t.ECCMax)
	setD(&cfg.Flash.Timing.TransferPerSubpage, t.TransferPerSubpage)

	// If geometry changed but the logical space was not set explicitly,
	// re-derive it from the (new) MLC capacity like the defaults do.
	if !logicalSet {
		cfg.Flash.LogicalSubpages = cfg.Flash.MLCSubpages() * 3 / 4
	}

	e := &fc.Error
	setF(&cfg.Error.RefPE, e.RefPE)
	setF(&cfg.Error.RefBER, e.RefBER)
	setF(&cfg.Error.Exponent, e.Exponent)
	setF(&cfg.Error.PartialFactor, e.PartialFactor)
	setF(&cfg.Error.InPageAlpha, e.InPageAlpha)
	setF(&cfg.Error.NeighborBeta, e.NeighborBeta)
	setF(&cfg.Error.ReprogramGamma, e.ReprogramGamma)

	if err := cfg.Flash.Validate(); err != nil {
		return cfg, fmt.Errorf("core: config: %w", err)
	}
	if err := cfg.Error.Validate(); err != nil {
		return cfg, fmt.Errorf("core: config: %w", err)
	}
	return cfg, nil
}

// LoadConfigFile is LoadConfig over a file path.
func LoadConfigFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return LoadConfig(f)
}
