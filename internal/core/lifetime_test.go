package core

import (
	"strings"
	"testing"
)

func TestLifetimeScoreBindingConstraint(t *testing.T) {
	ratio := EnduranceRatio{Name: "x", SLCCycles: 100, HDCycles: 10}
	// 10 SLC blocks, 10 HD blocks.
	r := &Result{SLCErases: 100, MLCErases: 0}
	// SLC wear: 100/10/100 = 0.1; HD wear 0.
	if got := LifetimeScore(r, 10, 10, ratio); got != 0.1 {
		t.Errorf("SLC-bound score = %g", got)
	}
	r = &Result{SLCErases: 0, MLCErases: 100}
	// HD wear: 100/10/10 = 1.0 dominates.
	if got := LifetimeScore(r, 10, 10, ratio); got != 1.0 {
		t.Errorf("HD-bound score = %g", got)
	}
	// Mixed: the max wins.
	r = &Result{SLCErases: 100, MLCErases: 5}
	// SLC 0.1 vs HD 0.05.
	if got := LifetimeScore(r, 10, 10, ratio); got != 0.1 {
		t.Errorf("mixed score = %g", got)
	}
}

func TestEnduranceRatiosMatchPaper(t *testing.T) {
	// §4.3.2: 10:1 for MLC, 100:1 for TLC, 1000:1 for QLC.
	wantRatios := []float64{10, 100, 1000}
	if len(EnduranceRatios) != 3 {
		t.Fatalf("ratios = %d", len(EnduranceRatios))
	}
	for i, r := range EnduranceRatios {
		if got := r.SLCCycles / r.HDCycles; got != wantRatios[i] {
			t.Errorf("%s ratio = %g, want %g", r.Name, got, wantRatios[i])
		}
	}
}

func TestLifetimeTable(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces: []string{"ts0"}, Scale: 0.003, Flash: &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := Lifetime(NewResultSet(res), fc.SLCBlocks(), fc.MLCBlocks())
	// 3 cell technologies x 5 schemes.
	if len(tab.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(tab.Rows))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MLC (10:1)", "TLC (100:1)", "QLC (1000:1)", "vsBaseline"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
