package core

import (
	"testing"

	"ipusim/internal/flash"
)

// TestPaperShapes is the reproduction's integration check: it replays two
// write-heavy traces against all three schemes at the evaluation operating
// point and asserts the orderings the paper's figures report. Absolute
// numbers are not compared — the substrate is a simulator, not the
// authors' testbed — but who wins, and in which direction, must match.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape check")
	}
	fc := flash.DefaultConfig()
	fc.PreFillMLC = true
	results, err := RunMatrix(MatrixSpec{
		Traces: []string{"ts0", "wdev0"},
		Scale:  0.05,
		Flash:  &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewResultSet(results)
	pe := rs.PEs()[0]

	for _, tr := range rs.Traces() {
		base := rs.Get(tr, "Baseline", pe)
		mga := rs.Get(tr, "MGA", pe)
		ipu := rs.Get(tr, "IPU", pe)
		if base == nil || mga == nil || ipu == nil {
			t.Fatalf("%s: missing results", tr)
		}

		// Fig. 5: IPU has the best I/O response time; it beats MGA on both
		// reads and writes (paper: -17.9% write, -6.3% read vs MGA).
		if !(ipu.AvgLatency < base.AvgLatency) {
			t.Errorf("%s Fig5: IPU overall %v !< Baseline %v", tr, ipu.AvgLatency, base.AvgLatency)
		}
		if !(ipu.AvgLatency < mga.AvgLatency) {
			t.Errorf("%s Fig5: IPU overall %v !< MGA %v", tr, ipu.AvgLatency, mga.AvgLatency)
		}
		if !(ipu.AvgWriteLatency < mga.AvgWriteLatency) {
			t.Errorf("%s Fig5: IPU write %v !< MGA %v", tr, ipu.AvgWriteLatency, mga.AvgWriteLatency)
		}
		if !(ipu.AvgReadLatency < mga.AvgReadLatency) {
			t.Errorf("%s Fig5: IPU read %v !< MGA %v", tr, ipu.AvgReadLatency, mga.AvgReadLatency)
		}

		// Fig. 8: read error rate Baseline < IPU < MGA, with IPU's penalty
		// small (paper: +3.5% avg) and MGA's large (paper: +14% avg).
		if !(base.ReadErrorRate < ipu.ReadErrorRate && ipu.ReadErrorRate < mga.ReadErrorRate) {
			t.Errorf("%s Fig8 ordering: base=%g ipu=%g mga=%g", tr,
				base.ReadErrorRate, ipu.ReadErrorRate, mga.ReadErrorRate)
		}
		if rel := ipu.ReadErrorRate/base.ReadErrorRate - 1; rel > 0.10 {
			t.Errorf("%s Fig8: IPU penalty %.1f%% too large", tr, rel*100)
		}
		if rel := mga.ReadErrorRate/base.ReadErrorRate - 1; rel < 0.05 {
			t.Errorf("%s Fig8: MGA penalty %.1f%% too small", tr, rel*100)
		}

		// Fig. 9: page utilisation MGA (~100%) > IPU > Baseline.
		if !(mga.PageUtilization > ipu.PageUtilization && ipu.PageUtilization > base.PageUtilization) {
			t.Errorf("%s Fig9 ordering: base=%.3f ipu=%.3f mga=%.3f", tr,
				base.PageUtilization, ipu.PageUtilization, mga.PageUtilization)
		}
		if mga.PageUtilization < 0.95 {
			t.Errorf("%s Fig9: MGA utilisation %.3f, want ~1", tr, mga.PageUtilization)
		}

		// Fig. 10a: SLC erases Baseline > IPU > MGA.
		if !(base.SLCErases > ipu.SLCErases && ipu.SLCErases > mga.SLCErases) {
			t.Errorf("%s Fig10a ordering: base=%d ipu=%d mga=%d", tr,
				base.SLCErases, ipu.SLCErases, mga.SLCErases)
		}

		// Fig. 11: mapping table Baseline (1.0) < IPU (small) < MGA (large).
		if base.MappingNormalized != 1.0 {
			t.Errorf("%s Fig11: baseline normalised %.4f", tr, base.MappingNormalized)
		}
		if !(ipu.MappingNormalized > 1.0 && ipu.MappingNormalized < 1.05) {
			t.Errorf("%s Fig11: IPU normalised %.4f out of (1, 1.05)", tr, ipu.MappingNormalized)
		}
		if mga.MappingNormalized < 1.10 {
			t.Errorf("%s Fig11: MGA normalised %.4f, want > 1.10", tr, mga.MappingNormalized)
		}

		// Fig. 6: partial programming lets MGA and IPU complete a larger
		// share of writes in the SLC cache than Baseline.
		if !(ipu.SLCWriteShare() > base.SLCWriteShare()) {
			t.Errorf("%s Fig6: IPU SLC share %.3f !> Baseline %.3f", tr,
				ipu.SLCWriteShare(), base.SLCWriteShare())
		}

		// Fig. 7: Work blocks carry the largest share of IPU's writes.
		work := ipu.LevelShare(flash.LevelWork)
		if work < ipu.LevelShare(flash.LevelMonitor) || work < ipu.LevelShare(flash.LevelHot) {
			t.Errorf("%s Fig7: Work share %.3f not dominant", tr, work)
		}

		// Fig. 12: the ISR victim scan costs the same order of magnitude
		// as greedy (paper: +1.2%); bound it at 10x per GC.
		if base.SLCGCs > 0 && ipu.SLCGCs > 0 {
			basePer := base.GCScanNS / base.SLCGCs
			ipuPer := ipu.GCScanNS / ipu.SLCGCs
			if ipuPer > 10*basePer+10_000 {
				t.Errorf("%s Fig12: ISR scan %dns/GC vs greedy %dns/GC", tr, ipuPer, basePer)
			}
		}
	}
}

// TestPaperShapesPESweep checks Figs. 13-14: latency and error rate grow
// with device wear, and the IPU-vs-MGA improvement persists at every use
// stage ("fine scalability" in the paper's words).
func TestPaperShapesPESweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape check")
	}
	fc := flash.DefaultConfig()
	fc.PreFillMLC = true
	results, err := RunMatrix(MatrixSpec{
		Traces:      []string{"wdev0"},
		Schemes:     []string{"MGA", "IPU"},
		PEBaselines: []int{1000, 2000, 4000, 8000},
		Scale:       0.03,
		Flash:       &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewResultSet(results)
	var prevBER float64
	var prevLat int64
	for _, pe := range rs.PEs() {
		ipu := rs.Get("wdev0", "IPU", pe)
		mga := rs.Get("wdev0", "MGA", pe)
		if ipu.ReadErrorRate <= prevBER {
			t.Errorf("Fig14: BER not increasing at PE %d", pe)
		}
		if int64(ipu.AvgReadLatency) < prevLat {
			t.Errorf("Fig13: read latency decreased at PE %d", pe)
		}
		prevBER = ipu.ReadErrorRate
		prevLat = int64(ipu.AvgReadLatency)
		if ipu.ReadErrorRate >= mga.ReadErrorRate {
			t.Errorf("PE %d: IPU BER %g !< MGA %g", pe, ipu.ReadErrorRate, mga.ReadErrorRate)
		}
	}
}
