package core

import (
	"strings"
	"testing"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

// smallFlash returns a geometry small enough for quick trace replays while
// still triggering plenty of GC.
func smallFlash() flash.Config {
	c := flash.DefaultConfig()
	c.Blocks = 512
	c.LogicalSubpages = c.MLCSubpages() * 6 / 10
	return c
}

func TestNewRejectsUnknownScheme(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = "FancyFTL"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestNewRejectsBadFlashConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash.Blocks = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad flash config accepted")
	}
}

func TestNewAllSchemes(t *testing.T) {
	for _, s := range SchemeNames {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		cfg.Scheme = s
		sim, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if sim.Scheme().Name() != s {
			t.Errorf("scheme name %q, want %q", sim.Scheme().Name(), s)
		}
	}
}

func TestRunSmallTrace(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 1, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != "ts0" || res.Scheme != "IPU" {
		t.Errorf("result labels: %+v", res)
	}
	if res.Requests != tr.Len() {
		t.Errorf("requests = %d, want %d", res.Requests, tr.Len())
	}
	if res.AvgLatency <= 0 || res.AvgWriteLatency <= 0 || res.AvgReadLatency <= 0 {
		t.Errorf("latencies not recorded: %+v", res)
	}
	if res.ReadErrorRate <= 0 {
		t.Error("no read error rate")
	}
	if res.SLCPrograms == 0 {
		t.Error("no SLC programs")
	}
	if res.MappingNormalized < 1 {
		t.Errorf("mapping normalised %.3f < 1", res.MappingNormalized)
	}
}

func TestRunRejectsInvalidTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := trace.New("bad", trace.Record{Time: 5, Size: 0})
	if _, err := sim.Run(bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestWritePassthrough(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wEnd, err := sim.Write(0, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if wEnd <= 0 {
		t.Fatal("write did not advance time")
	}
	rEnd, err := sim.Read(wEnd, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if rEnd <= wEnd {
		t.Fatal("read did not advance time")
	}
}

func TestRunMatrixSmall(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces:  []string{"ts0", "ads"},
		Schemes: []string{"Baseline", "IPU"},
		Scale:   0.003,
		Flash:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d, want 4", len(res))
	}
	// Deterministic order: trace-major, then scheme.
	wantOrder := []struct{ tr, sc string }{
		{"ts0", "Baseline"}, {"ts0", "IPU"}, {"ads", "Baseline"}, {"ads", "IPU"},
	}
	for i, w := range wantOrder {
		if res[i].Trace != w.tr || res[i].Scheme != w.sc {
			t.Errorf("result %d = (%s,%s), want (%s,%s)", i, res[i].Trace, res[i].Scheme, w.tr, w.sc)
		}
	}
}

func TestRunMatrixUnknownTrace(t *testing.T) {
	if _, err := RunMatrix(MatrixSpec{Traces: []string{"nope"}}); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestRunMatrixDeterministic(t *testing.T) {
	fc := smallFlash()
	run := func() []*Result {
		res, err := RunMatrix(MatrixSpec{
			Traces: []string{"wdev0"}, Schemes: []string{"IPU"},
			Scale: 0.003, Flash: &fc, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a[0].AvgLatency != b[0].AvgLatency || a[0].SLCErases != b[0].SLCErases ||
		a[0].ReadErrorRate != b[0].ReadErrorRate {
		t.Error("matrix runs not deterministic")
	}
}

func TestRunMatrixPESweep(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces: []string{"ts0"}, Schemes: []string{"IPU"},
		PEBaselines: []int{1000, 8000},
		Scale:       0.003, Flash: &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	lo, hi := res[0], res[1]
	if lo.PEBaseline != 1000 || hi.PEBaseline != 8000 {
		t.Fatalf("PE labels: %d, %d", lo.PEBaseline, hi.PEBaseline)
	}
	if hi.ReadErrorRate <= lo.ReadErrorRate {
		t.Errorf("BER must grow with P/E: %g vs %g", lo.ReadErrorRate, hi.ReadErrorRate)
	}
	if hi.AvgReadLatency <= lo.AvgReadLatency {
		t.Errorf("read latency must grow with P/E: %v vs %v", lo.AvgReadLatency, hi.AvgReadLatency)
	}
}

func TestResultSetAndFigures(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces: []string{"ts0", "lun2"},
		Scale:  0.003, Flash: &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewResultSet(res)
	if len(rs.Traces()) != 2 || len(rs.Schemes()) != 5 || len(rs.PEs()) != 1 {
		t.Fatalf("result set shape: %v %v %v", rs.Traces(), rs.Schemes(), rs.PEs())
	}
	if rs.Get("ts0", "IPU", rs.PEs()[0]) == nil {
		t.Fatal("lookup failed")
	}
	if rs.Get("ts0", "IPU", 99) != nil {
		t.Fatal("phantom result")
	}

	tables := []*metrics.Table{
		Fig5(rs), Fig6(rs), Fig7(rs), Fig8(rs), Fig9(rs), Fig10(rs),
		Fig11(rs), Fig12(rs), Fig13(rs), Fig14(rs),
	}
	for i, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("figure table %d empty (%s)", i, tab.Title)
		}
		var sb strings.Builder
		if err := tab.Render(&sb); err != nil {
			t.Errorf("render %s: %v", tab.Title, err)
		}
	}
	// Fig 7 is IPU-only, one row per trace.
	if got := len(Fig7(rs).Rows); got != 2 {
		t.Errorf("Fig7 rows = %d, want 2", got)
	}
	// Fig 12 omits MGA.
	for _, row := range Fig12(rs).Rows {
		if row[1] == "MGA" {
			t.Error("Fig12 must compare Baseline and IPU only")
		}
	}
}

func TestStaticTables(t *testing.T) {
	t1, err := Table1(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 6 {
		t.Errorf("Table1 rows = %d", len(t1.Rows))
	}
	cfg := flash.DefaultConfig()
	t2 := Table2(&cfg)
	if len(t2.Rows) < 10 {
		t.Errorf("Table2 rows = %d", len(t2.Rows))
	}
	t3, err := Table3(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 6 {
		t.Errorf("Table3 rows = %d", len(t3.Rows))
	}
	em := errmodel.Default()
	f2 := Fig2(&em, []int{1000, 2000, 4000, 8000})
	if len(f2.Rows) != 4 {
		t.Errorf("Fig2 rows = %d", len(f2.Rows))
	}
}

func TestResultWearSpread(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()
	cfg.Scheme = "Baseline"
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SLCErases == 0 {
		t.Fatal("no erases; wear test ineffective")
	}
	if res.SLCWearMax < res.SLCWearMin {
		t.Errorf("wear bounds inverted: [%d, %d]", res.SLCWearMin, res.SLCWearMax)
	}
	// Static wear levelling keeps every block participating. Under bursty
	// arrivals the readiness gating reuses whichever blocks finished
	// erasing, so the band is wider than under a sustained pace; bound it
	// at a small multiple of the mean rather than a tight band.
	mean := int(res.SLCErases) / cfg.Flash.SLCBlocks()
	if res.SLCWearMax > 4*(mean+1) {
		t.Errorf("max wear %d far above mean %d", res.SLCWearMax, mean)
	}
	if res.SLCWearMin == 0 {
		t.Errorf("some block never erased despite %d erases over %d blocks", res.SLCErases, cfg.Flash.SLCBlocks())
	}
}
