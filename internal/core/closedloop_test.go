package core

import (
	"testing"

	"ipusim/internal/trace"
)

// burstTrace builds a trace whose requests all arrive at t=0 — the
// worst case for open-loop replay.
func burstTrace(n int) *trace.Trace {
	tr := trace.New("burst")
	for i := 0; i < n; i++ {
		tr.Append(trace.Record{
			Time: 0, Op: trace.OpWrite, Offset: int64(i) * 16384, Size: 16384,
		})
	}
	return tr
}

func TestRunClosedLoopRejectsBadDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunClosedLoop(burstTrace(10), 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
	bad := trace.New("bad", trace.Record{Size: 0})
	if _, err := sim.RunClosedLoop(bad, 1); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestClosedLoopBoundsLatencyUnderSaturation(t *testing.T) {
	tr := burstTrace(800)
	mk := func() *Simulator {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	open, err := mk().Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := mk().RunClosedLoop(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Open-loop floods the device: queueing latency grows with n.
	// Closed-loop at depth 4 keeps per-request latency near service time.
	if closed.AvgWriteLatency*4 > open.AvgWriteLatency {
		t.Errorf("closed-loop %v not far below open-loop %v under saturation",
			closed.AvgWriteLatency, open.AvgWriteLatency)
	}
}

func TestClosedLoopDepthOneSerialises(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunClosedLoop(burstTrace(50), 1)
	if err != nil {
		t.Fatal(err)
	}
	// At depth 1 every request waits only for its own service: the mean
	// must sit near the SLC program time (300us + transfer), far from
	// queueing territory.
	if res.AvgWriteLatency > 2*cfg.Flash.Timing.SLCProgram {
		t.Errorf("depth-1 latency %v implausibly high", res.AvgWriteLatency)
	}
	if res.Requests != 50 {
		t.Errorf("requests = %d", res.Requests)
	}
}

func TestClosedLoopMatchesOpenLoopWhenIdle(t *testing.T) {
	// With generous inter-arrival gaps the gate never binds: both modes
	// must produce identical results.
	tr := trace.New("idle")
	for i := 0; i < 100; i++ {
		tr.Append(trace.Record{
			Time: int64(i) * 10_000_000, Op: trace.OpWrite, Offset: int64(i) * 16384, Size: 16384,
		})
	}
	mk := func() *Simulator {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	open, err := mk().Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := mk().RunClosedLoop(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if open.AvgWriteLatency != closed.AvgWriteLatency || open.SLCPrograms != closed.SLCPrograms {
		t.Errorf("idle-trace divergence: open %v/%d, closed %v/%d",
			open.AvgWriteLatency, open.SLCPrograms, closed.AvgWriteLatency, closed.SLCPrograms)
	}
}
