package core

import (
	"encoding/json"
	"testing"

	"ipusim/internal/trace"
)

// canonical marshals a result for byte-comparison. Every field — including
// GCScanNS, which is driven by the engine's deterministic scan clock rather
// than the wall clock — must reproduce exactly between identical runs.
func canonical(t *testing.T, r *Result) string {
	t.Helper()
	c := *r
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunDeterministic replays the same generated trace through a fresh
// simulator twice per scheme and demands byte-identical reports: no map
// iteration order, wall clock or hidden global may leak into the results.
func TestRunDeterministic(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 7, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames {
		t.Run(name, func(t *testing.T) {
			once := func() string {
				cfg := DefaultConfig()
				cfg.Flash = smallFlash()
				cfg.Scheme = name
				sim, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(tr)
				if err != nil {
					t.Fatal(err)
				}
				return canonical(t, res)
			}
			if a, b := once(), once(); a != b {
				t.Errorf("two runs of %s diverged:\n%s\n%s", name, a, b)
			}
		})
	}
}

// TestRunMatrixWorkerCountInvariant re-runs one matrix with one worker and
// with four: parallel scheduling must not change any result.
func TestRunMatrixWorkerCountInvariant(t *testing.T) {
	fc := smallFlash()
	run := func(workers int) []*Result {
		res, err := RunMatrix(MatrixSpec{
			Traces:  []string{"ts0", "wdev0"},
			Schemes: []string{"Baseline", "IPU"},
			Scale:   0.003,
			Flash:   &fc,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if a, b := canonical(t, serial[i]), canonical(t, parallel[i]); a != b {
			t.Errorf("(%s, %s) differs between 1 and 4 workers:\n%s\n%s",
				serial[i].Trace, serial[i].Scheme, a, b)
		}
	}
}
