package core_test

import (
	"fmt"

	"ipusim/internal/core"
	"ipusim/internal/flash"
	"ipusim/internal/trace"
)

// ExampleNew builds an IPU simulator on a small geometry and replays a
// synthetic slice of the paper's wdev0 trace.
func ExampleNew() {
	cfg := core.DefaultConfig()
	cfg.Flash = flash.DefaultConfig()
	cfg.Flash.Blocks = 512
	cfg.Flash.LogicalSubpages = cfg.Flash.MLCSubpages() * 3 / 4
	cfg.Scheme = "IPU"

	sim, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	tr, err := trace.Generate(trace.Profiles["wdev0"], 1, 0.002)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on %s: %d requests, latency recorded: %v\n",
		res.Scheme, res.Trace, res.Requests, res.AvgLatency > 0)
	// Output: IPU on wdev0: 2286 requests, latency recorded: true
}

// ExampleRunMatrix fans a two-scheme comparison across the worker pool.
func ExampleRunMatrix() {
	fc := flash.DefaultConfig()
	fc.Blocks = 512
	fc.LogicalSubpages = fc.MLCSubpages() * 3 / 4
	results, err := core.RunMatrix(core.MatrixSpec{
		Traces:  []string{"ads"},
		Schemes: []string{"Baseline", "IPU"},
		Scale:   0.002,
		Flash:   &fc,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s/%s ran %d requests\n", r.Trace, r.Scheme, r.Requests)
	}
	// Output:
	// ads/Baseline ran 3064 requests
	// ads/IPU ran 3064 requests
}
