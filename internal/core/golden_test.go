package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"ipusim/internal/check/golden"
)

// TestGoldenMetrics pins the full report of two traces across all three
// schemes to snapshot files. Any behavioural drift — a changed GC decision,
// a latency model tweak, an accounting fix — fails here with a line diff.
// Accept intentional changes with:
//
//	go test ./internal/core -run Golden -update
func TestGoldenMetrics(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces:  []string{"ts0", "wdev0"},
		Schemes: SchemeNames,
		Scale:   0.003,
		Flash:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("results = %d, want 6", len(res))
	}
	for _, r := range res {
		r := r
		t.Run(fmt.Sprintf("%s-%s", r.Trace, r.Scheme), func(t *testing.T) {
			snap := *r
			path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-%s.json", r.Trace, r.Scheme))
			golden.Check(t, path, &snap)
		})
	}
}
