package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"ipusim/internal/cache"
	"ipusim/internal/check/golden"
	"ipusim/internal/trace"
)

// TestGoldenMetrics pins the full report of two traces across all five
// comparison schemes to snapshot files. Any behavioural drift — a changed
// GC decision, a latency model tweak, an accounting fix — fails here with a
// line diff. Accept intentional changes with:
//
//	go test ./internal/core -run Golden -update
func TestGoldenMetrics(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces:  []string{"ts0", "wdev0"},
		Schemes: SchemeNames,
		Scale:   0.003,
		Flash:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("results = %d, want 10", len(res))
	}
	for _, r := range res {
		r := r
		t.Run(fmt.Sprintf("%s-%s", r.Trace, r.Scheme), func(t *testing.T) {
			snap := *r
			path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-%s.json", r.Trace, r.Scheme))
			golden.Check(t, path, &snap)
		})
	}
}

// TestGoldenMultiTenant pins the multi-tenant spec engine: two tenants
// (ts0 weighted 3, wdev0 bursty) with the write-cache front-end on,
// replayed through IPU and IPS. The snapshot covers the per-tenant
// percentile summaries, the fairness index and the write-buffer counters,
// so any drift in the tenant scheduler, the QoS depth split, the buffer's
// flush decisions or the percentile math fails here with a line diff.
func TestGoldenMultiTenant(t *testing.T) {
	for _, schemeName := range []string{"IPU", "IPS"} {
		schemeName := schemeName
		t.Run("mt2-"+schemeName, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Flash = smallFlash()
			cfg.Scheme = schemeName
			sim, err := NewFresh(cfg)
			if err != nil {
				t.Fatal(err)
			}
			spec := twoTenantSpec()
			spec.WriteCache = &cacheConfig4MiB
			res, err := sim.RunClosedLoopSpec(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			snap := *res
			path := filepath.Join("testdata", "golden", fmt.Sprintf("mt2-%s.json", schemeName))
			golden.Check(t, path, &snap)
		})
	}
}

// cacheConfig4MiB is the golden runs' buffer configuration, shared so the
// snapshots stay tied to one explicit shape.
var cacheConfig4MiB = cache.Config{CapacityBytes: 4 << 20}

// TestGoldenNewSchemesAllTraces pins the two cross-paper schemes — IPS and
// IPU-PGC — across all six synthetic traces, so a drift in the in-place
// switch or preemptive-GC decision logic on any workload shape fails CI
// even where the two-trace matrix above would not exercise it.
func TestGoldenNewSchemesAllTraces(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces:  trace.ProfileNames(),
		Schemes: []string{"IPS", "IPU-PGC"},
		Scale:   0.003,
		Flash:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(trace.ProfileNames()); len(res) != want {
		t.Fatalf("results = %d, want %d", len(res), want)
	}
	for _, r := range res {
		r := r
		if r.Trace == "ts0" || r.Trace == "wdev0" {
			continue // already pinned by TestGoldenMetrics
		}
		t.Run(fmt.Sprintf("%s-%s", r.Trace, r.Scheme), func(t *testing.T) {
			snap := *r
			path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-%s.json", r.Trace, r.Scheme))
			golden.Check(t, path, &snap)
		})
	}
}
