package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
	"ipusim/internal/workload"
)

// TenantMix names one multi-tenant workload composition for the
// contention study.
type TenantMix struct {
	Name    string                `json:"name"`
	Tenants []workload.TenantSpec `json:"tenants"`
}

// DefaultTenantMixes returns the two contention mixes of the evaluation:
// a weighted latency-sensitive/batch pair, and an equal-share pair where
// one tenant arrives in tight bursts half a (simulated) day out of phase.
func DefaultTenantMixes() []TenantMix {
	return []TenantMix{
		{
			Name: "web+batch",
			Tenants: []workload.TenantSpec{
				{Name: "web", Trace: "ts0", Weight: 3},
				{Name: "batch", Trace: "wdev0", Weight: 1},
			},
		},
		{
			Name: "usr+ads-bursty",
			Tenants: []workload.TenantSpec{
				{Name: "usr", Trace: "usr0", Weight: 1},
				{Name: "ads", Trace: "ads", Weight: 1, BurstLen: 16, BurstSpacingNS: 2_000},
			},
		},
	}
}

// TenantContentionSpec parameterises the contention study. Zero values
// take the evaluation defaults.
type TenantContentionSpec struct {
	// Mixes are the tenant compositions to contend (default:
	// DefaultTenantMixes). Schemes are the FTLs to rank (default: the
	// five-scheme comparison set).
	Mixes   []TenantMix
	Schemes []string
	// Depth is the shared closed-loop queue depth split by QoS weight
	// (default 16).
	Depth int
	// CacheBytes sizes the DRAM write buffer of the buffered arm
	// (default 4 MiB). Every mix runs twice: buffer off, then on.
	CacheBytes int64
	Seed  int64
	Scale float64
	Flash *flash.Config
	// Workers bounds concurrently running cells; 0 means GOMAXPROCS.
	// Rows are deterministic regardless: cells are enumerated and indexed
	// up front, so scheduling never reorders them.
	Workers int
	// Parallelism sets each cell's intra-run read-pipeline worker count
	// (Config.Parallelism); results are bit-identical either way.
	Parallelism int
	// OnProgress, if set, receives aggregated Progress snapshots:
	// Replayed/Total count requests across every cell of the study
	// combined, GCs accumulates across cells, SimTime is the reporting
	// cell's device clock. It is invoked concurrently from worker
	// goroutines and must be safe for concurrent use (ProgressPrinter is).
	OnProgress ProgressFunc
}

// normalize fills the contention spec's defaults in place.
func (spec *TenantContentionSpec) normalize() {
	if len(spec.Mixes) == 0 {
		spec.Mixes = DefaultTenantMixes()
	}
	if len(spec.Schemes) == 0 {
		spec.Schemes = append([]string(nil), SchemeNames...)
	}
	if spec.Depth <= 0 {
		spec.Depth = 16
	}
	if spec.CacheBytes <= 0 {
		spec.CacheBytes = 4 << 20
	}
	if spec.Workers <= 0 {
		spec.Workers = runtime.GOMAXPROCS(0)
	}
}

// ContentionRow is one (mix, scheme, buffer arm) outcome.
type ContentionRow struct {
	Mix      string
	Scheme   string
	Buffered bool
	Result   *Result
}

// worstTenantP99Read returns the slowest tenant's p99 read latency — the
// ranking criterion: under contention the scheme that protects its worst
// tenant wins.
func worstTenantP99Read(r *Result) time.Duration {
	var worst time.Duration
	for _, tn := range r.Tenants {
		if tn.P99ReadLatency > worst {
			worst = tn.P99ReadLatency
		}
	}
	return worst
}

// ContentionCell is one independently runnable unit of the contention
// study: a (mix, buffer arm, scheme) triple.
type ContentionCell struct {
	Mix      TenantMix
	Buffered bool
	Scheme   string
}

// ContentionCells returns spec's cell decomposition in the study's
// deterministic row order — mix, then buffer arm, then scheme. It is the
// same enumeration a coordinator uses to shard the study across workers,
// so per-cell results land at the same indices either way.
func ContentionCells(spec TenantContentionSpec) ([]ContentionCell, error) {
	spec.normalize()
	cells := make([]ContentionCell, 0, len(spec.Mixes)*2*len(spec.Schemes))
	for _, mix := range spec.Mixes {
		if len(mix.Tenants) == 0 {
			return nil, fmt.Errorf("core: tenant mix %q is empty", mix.Name)
		}
		for _, buffered := range []bool{false, true} {
			for _, schemeName := range spec.Schemes {
				cells = append(cells, ContentionCell{Mix: mix, Buffered: buffered, Scheme: schemeName})
			}
		}
	}
	return cells, nil
}

// contentionRunSpec builds the closed-loop spec one cell replays.
func contentionRunSpec(spec *TenantContentionSpec, cell ContentionCell) ClosedLoopSpec {
	run := ClosedLoopSpec{
		Depth:      spec.Depth,
		Tenants:    cell.Mix.Tenants,
		Seed:       spec.Seed,
		Scale:      spec.Scale,
		OnProgress: spec.OnProgress,
	}
	if cell.Buffered {
		run.WriteCache = &cache.Config{CapacityBytes: spec.CacheBytes}
	}
	return run
}

// RunContentionCellContext replays one contention cell on a snapshot-
// cached device and returns its row. It is the unit a cluster
// coordinator dispatches — and the local fallback when a remote worker
// dies. The spec's Workers field is irrelevant here; Parallelism is
// honoured.
func RunContentionCellContext(ctx context.Context, spec TenantContentionSpec, cell ContentionCell) (ContentionRow, error) {
	spec.normalize()
	cfg := DefaultConfig()
	if spec.Flash != nil {
		cfg.Flash = *spec.Flash
	}
	cfg.Scheme = cell.Scheme
	cfg.Parallelism = spec.Parallelism
	sim, err := New(cfg)
	if err != nil {
		return ContentionRow{}, err
	}
	res, err := sim.RunClosedLoopSpec(ctx, contentionRunSpec(&spec, cell))
	if err != nil {
		// A cancelled run stopped between requests, so its device is
		// structurally consistent and can rejoin the free pool; any other
		// failure drops the device on the floor.
		if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
			sim.Release()
		}
		return ContentionRow{}, err
	}
	sim.Release()
	return ContentionRow{Mix: cell.Mix.Name, Scheme: cell.Scheme, Buffered: cell.Buffered, Result: res}, nil
}

// contentionMixRequests synthesises (and caches) a mix's tenant traces
// and returns the request count of its merged schedule — the per-cell
// progress total.
func contentionMixRequests(spec *TenantContentionSpec, mix TenantMix) (int, error) {
	seed, scale := spec.Seed, spec.Scale
	if seed == 0 {
		seed = 42
	}
	if scale == 0 {
		scale = 0.05
	}
	specs := workload.NormalizeTenants(mix.Tenants, DefaultTenantTrace, seed, scale)
	if err := workload.ValidateTenants(specs); err != nil {
		return 0, err
	}
	total := 0
	for _, t := range specs {
		tr, err := cachedTrace(t.Trace, t.Seed, t.Scale)
		if err != nil {
			return 0, err
		}
		total += tr.Len()
	}
	return total, nil
}

// RunTenantContentionContext replays every (mix, buffer arm, scheme) cell
// of the contention study on a fixed pool of spec.Workers goroutines.
// Each mix's tenant traces are synthesised once up front and shared
// read-only by its cells; devices come from the snapshot cache and are
// released back to it. Rows come back in the deterministic
// mix/buffer/scheme enumeration order with results bit-identical to a
// serial (Workers=1) study, independent of scheduling.
//
// Cancelling ctx stops every in-flight cell within a request-stride
// boundary and returns ctx's error; partially replayed devices still
// rejoin the snapshot cache's free pool.
func RunTenantContentionContext(ctx context.Context, spec TenantContentionSpec) ([]ContentionRow, error) {
	spec.normalize()
	cells, err := ContentionCells(spec)
	if err != nil {
		return nil, err
	}

	// Warm the trace cache before the fan-out and total the study's
	// requests for aggregated progress (each mix runs 2*len(Schemes)
	// cells: one per scheme and buffer arm).
	var totalRequests int64
	for _, mix := range spec.Mixes {
		n, err := contentionMixRequests(&spec, mix)
		if err != nil {
			return nil, err
		}
		totalRequests += int64(n) * int64(2*len(spec.Schemes))
	}

	// Aggregated study progress, as in RunMatrixContext: every cell's
	// per-interval deltas land in shared atomics and each callback
	// reports the study-wide totals.
	var replayed, gcs atomic.Int64

	rows := make([]ContentionRow, len(cells))
	errs := make([]error, len(cells))
	run := func(i int) {
		cellSpec := spec
		if spec.OnProgress != nil {
			var prevReplayed int
			var prevGCs int64
			cellSpec.OnProgress = func(p Progress) {
				r := replayed.Add(int64(p.Replayed - prevReplayed))
				g := gcs.Add(p.GCs - prevGCs)
				prevReplayed, prevGCs = p.Replayed, p.GCs
				spec.OnProgress(Progress{
					Replayed: int(r),
					Total:    int(totalRequests),
					SimTime:  p.SimTime,
					GCs:      g,
				})
			}
		}
		rows[i], errs[i] = RunContentionCellContext(ctx, cellSpec, cells[i])
	}

	workers := spec.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
dispatch:
	for i := range cells {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// TenantContention renders the contention study: within each (mix, buffer
// arm) group the schemes are ranked by their worst tenant's p99 read
// latency, so the table reads as a leaderboard of QoS protection.
func TenantContention(rows []ContentionRow) *metrics.Table {
	t := metrics.NewTable("Tenant contention: scheme ranking under multi-tenant closed loop",
		"Mix", "Cache", "Rank", "Scheme", "fairness",
		"worstP99read", "worstP999read", "overall", "coalescedKB", "flushes")
	type groupKey struct {
		mix      string
		buffered bool
	}
	groups := make(map[groupKey][]ContentionRow)
	var order []groupKey
	for _, row := range rows {
		k := groupKey{row.Mix, row.Buffered}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	for _, k := range order {
		g := groups[k]
		sort.SliceStable(g, func(i, j int) bool {
			return worstTenantP99Read(g[i].Result) < worstTenantP99Read(g[j].Result)
		})
		arm := "off"
		if k.buffered {
			arm = "on"
		}
		for rank, row := range g {
			r := row.Result
			var worst999 time.Duration
			for _, tn := range r.Tenants {
				if tn.P999ReadLatency > worst999 {
					worst999 = tn.P999ReadLatency
				}
			}
			coalescedKB, flushes := int64(0), int64(0)
			if r.WriteCache != nil {
				coalescedKB = r.WriteCache.CoalescedBytes / 1024
				flushes = r.WriteCache.Flushes()
			}
			t.AddRow(row.Mix, arm, fmt.Sprint(rank+1), row.Scheme,
				fmt.Sprintf("%.4f", r.FairnessIndex),
				metrics.FormatDuration(worstTenantP99Read(r)),
				metrics.FormatDuration(worst999),
				metrics.FormatDuration(r.AvgLatency),
				fmt.Sprint(coalescedKB),
				fmt.Sprint(flushes))
		}
	}
	return t
}
