package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
	"ipusim/internal/workload"
)

// TenantMix names one multi-tenant workload composition for the
// contention study.
type TenantMix struct {
	Name    string
	Tenants []workload.TenantSpec
}

// DefaultTenantMixes returns the two contention mixes of the evaluation:
// a weighted latency-sensitive/batch pair, and an equal-share pair where
// one tenant arrives in tight bursts half a (simulated) day out of phase.
func DefaultTenantMixes() []TenantMix {
	return []TenantMix{
		{
			Name: "web+batch",
			Tenants: []workload.TenantSpec{
				{Name: "web", Trace: "ts0", Weight: 3},
				{Name: "batch", Trace: "wdev0", Weight: 1},
			},
		},
		{
			Name: "usr+ads-bursty",
			Tenants: []workload.TenantSpec{
				{Name: "usr", Trace: "usr0", Weight: 1},
				{Name: "ads", Trace: "ads", Weight: 1, BurstLen: 16, BurstSpacingNS: 2_000},
			},
		},
	}
}

// TenantContentionSpec parameterises the contention study. Zero values
// take the evaluation defaults.
type TenantContentionSpec struct {
	// Mixes are the tenant compositions to contend (default:
	// DefaultTenantMixes). Schemes are the FTLs to rank (default: the
	// five-scheme comparison set).
	Mixes   []TenantMix
	Schemes []string
	// Depth is the shared closed-loop queue depth split by QoS weight
	// (default 16).
	Depth int
	// CacheBytes sizes the DRAM write buffer of the buffered arm
	// (default 4 MiB). Every mix runs twice: buffer off, then on.
	CacheBytes int64
	Seed       int64
	Scale      float64
	Flash      *flash.Config
	OnProgress ProgressFunc
}

// ContentionRow is one (mix, scheme, buffer arm) outcome.
type ContentionRow struct {
	Mix      string
	Scheme   string
	Buffered bool
	Result   *Result
}

// worstTenantP99Read returns the slowest tenant's p99 read latency — the
// ranking criterion: under contention the scheme that protects its worst
// tenant wins.
func worstTenantP99Read(r *Result) time.Duration {
	var worst time.Duration
	for _, tn := range r.Tenants {
		if tn.P99ReadLatency > worst {
			worst = tn.P99ReadLatency
		}
	}
	return worst
}

// RunTenantContentionContext replays every (mix, scheme) pair closed-loop
// under tenant contention, once without and once with the write-cache
// front-end, serially in deterministic order. Devices come from the
// snapshot cache and are released back to it.
func RunTenantContentionContext(ctx context.Context, spec TenantContentionSpec) ([]ContentionRow, error) {
	if len(spec.Mixes) == 0 {
		spec.Mixes = DefaultTenantMixes()
	}
	if len(spec.Schemes) == 0 {
		spec.Schemes = append([]string(nil), SchemeNames...)
	}
	if spec.Depth <= 0 {
		spec.Depth = 16
	}
	if spec.CacheBytes <= 0 {
		spec.CacheBytes = 4 << 20
	}
	var rows []ContentionRow
	for _, mix := range spec.Mixes {
		if len(mix.Tenants) == 0 {
			return nil, fmt.Errorf("core: tenant mix %q is empty", mix.Name)
		}
		for _, buffered := range []bool{false, true} {
			for _, schemeName := range spec.Schemes {
				cfg := DefaultConfig()
				if spec.Flash != nil {
					cfg.Flash = *spec.Flash
				}
				cfg.Scheme = schemeName
				sim, err := New(cfg)
				if err != nil {
					return nil, err
				}
				run := ClosedLoopSpec{
					Depth:      spec.Depth,
					Tenants:    mix.Tenants,
					Seed:       spec.Seed,
					Scale:      spec.Scale,
					OnProgress: spec.OnProgress,
				}
				if buffered {
					run.WriteCache = &cache.Config{CapacityBytes: spec.CacheBytes}
				}
				res, err := sim.RunClosedLoopSpec(ctx, run)
				if err != nil {
					if ctx.Err() != nil {
						sim.Release()
					}
					return nil, err
				}
				sim.Release()
				rows = append(rows, ContentionRow{
					Mix: mix.Name, Scheme: schemeName, Buffered: buffered, Result: res,
				})
			}
		}
	}
	return rows, nil
}

// TenantContention renders the contention study: within each (mix, buffer
// arm) group the schemes are ranked by their worst tenant's p99 read
// latency, so the table reads as a leaderboard of QoS protection.
func TenantContention(rows []ContentionRow) *metrics.Table {
	t := metrics.NewTable("Tenant contention: scheme ranking under multi-tenant closed loop",
		"Mix", "Cache", "Rank", "Scheme", "fairness",
		"worstP99read", "worstP999read", "overall", "coalescedKB", "flushes")
	type groupKey struct {
		mix      string
		buffered bool
	}
	groups := make(map[groupKey][]ContentionRow)
	var order []groupKey
	for _, row := range rows {
		k := groupKey{row.Mix, row.Buffered}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	for _, k := range order {
		g := groups[k]
		sort.SliceStable(g, func(i, j int) bool {
			return worstTenantP99Read(g[i].Result) < worstTenantP99Read(g[j].Result)
		})
		arm := "off"
		if k.buffered {
			arm = "on"
		}
		for rank, row := range g {
			r := row.Result
			var worst999 time.Duration
			for _, tn := range r.Tenants {
				if tn.P999ReadLatency > worst999 {
					worst999 = tn.P999ReadLatency
				}
			}
			coalescedKB, flushes := int64(0), int64(0)
			if r.WriteCache != nil {
				coalescedKB = r.WriteCache.CoalescedBytes / 1024
				flushes = r.WriteCache.Flushes()
			}
			t.AddRow(row.Mix, arm, fmt.Sprint(rank+1), row.Scheme,
				fmt.Sprintf("%.4f", r.FairnessIndex),
				metrics.FormatDuration(worstTenantP99Read(r)),
				metrics.FormatDuration(worst999),
				metrics.FormatDuration(r.AvgLatency),
				fmt.Sprint(coalescedKB),
				fmt.Sprint(flushes))
		}
	}
	return t
}
