package core

import (
	"fmt"
	"time"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

// resultKey indexes a result set by its coordinates.
type resultKey struct {
	trace  string
	scheme string
	pe     int
}

// ResultSet organises matrix results for figure rendering.
type ResultSet struct {
	byKey   map[resultKey]*Result
	traces  []string
	schemes []string
	pes     []int
}

// NewResultSet indexes results, remembering first-seen order of traces,
// schemes and P/E levels.
func NewResultSet(results []*Result) *ResultSet {
	rs := &ResultSet{byKey: make(map[resultKey]*Result)}
	seenT := map[string]bool{}
	seenS := map[string]bool{}
	seenP := map[int]bool{}
	for _, r := range results {
		rs.byKey[resultKey{r.Trace, r.Scheme, r.PEBaseline}] = r
		if !seenT[r.Trace] {
			seenT[r.Trace] = true
			rs.traces = append(rs.traces, r.Trace)
		}
		if !seenS[r.Scheme] {
			seenS[r.Scheme] = true
			rs.schemes = append(rs.schemes, r.Scheme)
		}
		if !seenP[r.PEBaseline] {
			seenP[r.PEBaseline] = true
			rs.pes = append(rs.pes, r.PEBaseline)
		}
	}
	return rs
}

// Get returns the result at the given coordinates, or nil.
func (rs *ResultSet) Get(traceName, schemeName string, pe int) *Result {
	return rs.byKey[resultKey{traceName, schemeName, pe}]
}

// Traces returns trace names in first-seen order.
func (rs *ResultSet) Traces() []string { return rs.traces }

// Schemes returns scheme names in first-seen order.
func (rs *ResultSet) Schemes() []string { return rs.schemes }

// PEs returns P/E baselines in first-seen order.
func (rs *ResultSet) PEs() []int { return rs.pes }

// defaultPE returns the single P/E level of a non-sweep result set.
func (rs *ResultSet) defaultPE() int {
	if len(rs.pes) > 0 {
		return rs.pes[0]
	}
	return 0
}

// ---------------------------------------------------------------------------
// Tables 1-3

// Table1 regenerates the update-size distribution of the synthetic
// traces. Traces come from the shared trace cache, so rendering the
// table after (or alongside) a run reuses the replay's synthesis.
func Table1(seed int64, scale float64) (*metrics.Table, error) {
	t := metrics.NewTable("Table 1: size distribution of updated requests",
		"Trace", "Size<=4K", "4K<Size<=8K", "Size>8K", "paper<=4K", "paper4-8K", "paper>8K")
	for _, name := range trace.ProfileNames() {
		p := trace.Profiles[name]
		tr, err := cachedTrace(name, seed, scale)
		if err != nil {
			return nil, err
		}
		s := trace.Analyze(tr)
		t.AddRow(name,
			metrics.FormatPct(s.UpdateSizeDist.Small),
			metrics.FormatPct(s.UpdateSizeDist.Medium),
			metrics.FormatPct(s.UpdateSizeDist.Large),
			metrics.FormatPct(p.UpdateSizeDist.Small),
			metrics.FormatPct(p.UpdateSizeDist.Medium),
			metrics.FormatPct(p.UpdateSizeDist.Large))
	}
	return t, nil
}

// Table2 renders the simulator settings.
func Table2(cfg *flash.Config) *metrics.Table {
	t := metrics.NewTable("Table 2: experimental settings", "Parameter", "Value")
	t.AddRow("Block number", fmt.Sprint(cfg.Blocks))
	t.AddRow("SLC mode ratio", metrics.FormatPct(cfg.SLCRatio))
	t.AddRow("SLC/MLC pages per block", fmt.Sprintf("%d/%d", cfg.SLCPagesPerBlock, cfg.MLCPagesPerBlock))
	t.AddRow("Page size", fmt.Sprintf("%dKB", cfg.PageSizeBytes/1024))
	t.AddRow("Subpage size", fmt.Sprintf("%dKB", cfg.SubpageSizeBytes/1024))
	t.AddRow("GC threshold", metrics.FormatPct(cfg.GCThresholdFraction))
	t.AddRow("Wear-leveling", "static")
	t.AddRow("FTL scheme", "page")
	t.AddRow("P/E cycles", fmt.Sprint(cfg.PEBaseline))
	t.AddRow("SLC read time", metrics.FormatDuration(cfg.Timing.SLCRead))
	t.AddRow("MLC read time", metrics.FormatDuration(cfg.Timing.MLCRead))
	t.AddRow("SLC write time", metrics.FormatDuration(cfg.Timing.SLCProgram))
	t.AddRow("MLC write time", metrics.FormatDuration(cfg.Timing.MLCProgram))
	t.AddRow("Erase time", metrics.FormatDuration(cfg.Timing.Erase))
	t.AddRow("ECC min time", metrics.FormatDuration(cfg.Timing.ECCMin))
	t.AddRow("ECC max time", metrics.FormatDuration(cfg.Timing.ECCMax))
	return t
}

// Table3 regenerates the trace specifications, reusing the shared trace
// cache like Table1.
func Table3(seed int64, scale float64) (*metrics.Table, error) {
	t := metrics.NewTable("Table 3: specifications of selected traces",
		"Trace", "#Req", "WriteR", "WriteSZ", "HotWrite", "paperWriteR", "paperSZ", "paperHot")
	for _, name := range trace.ProfileNames() {
		p := trace.Profiles[name]
		tr, err := cachedTrace(name, seed, scale)
		if err != nil {
			return nil, err
		}
		s := trace.Analyze(tr)
		t.AddRow(name,
			fmt.Sprint(s.Requests),
			metrics.FormatPct(s.WriteRatio),
			fmt.Sprintf("%.1fKB", s.AvgWriteKB),
			metrics.FormatPct(s.HotWriteRatio),
			metrics.FormatPct(p.WriteRatio),
			fmt.Sprintf("%.1fKB", p.AvgWriteKB),
			metrics.FormatPct(p.HotWriteRatio))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Figures

// Fig2 samples the raw-BER curves for conventional vs partial programming.
func Fig2(em *errmodel.Model, pes []int) *metrics.Table {
	t := metrics.NewTable("Fig 2: raw bit error rate vs P/E cycles",
		"P/E", "conventional", "partial", "convDecode", "partDecode")
	for _, p := range em.Curve(pes) {
		t.AddRow(fmt.Sprint(p.PE),
			metrics.FormatSci(p.Conventional),
			metrics.FormatSci(p.Partial),
			metrics.FormatDuration(p.ConvDecode),
			metrics.FormatDuration(p.PartDec))
	}
	return t
}

// Fig5 renders I/O response times per trace and scheme.
func Fig5(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 5: I/O response time", "Trace", "Scheme", "read", "write", "overall", "p99")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				t.AddRow(tr, sc,
					metrics.FormatDuration(r.AvgReadLatency),
					metrics.FormatDuration(r.AvgWriteLatency),
					metrics.FormatDuration(r.AvgLatency),
					metrics.FormatDuration(r.P99Latency))
			}
		}
	}
	return t
}

// Fig6 renders where page programs completed (SLC vs MLC blocks).
func Fig6(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 6: completed writes distribution in SLC/MLC blocks",
		"Trace", "Scheme", "SLC", "MLC", "SLCshare")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				t.AddRow(tr, sc,
					fmt.Sprint(r.SLCPrograms),
					fmt.Sprint(r.MLCPrograms),
					metrics.FormatPct(r.SLCWriteShare()))
			}
		}
	}
	return t
}

// Fig7 renders the IPU write distribution across the three SLC levels.
func Fig7(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 7: occurred writes distribution in three-level blocks (IPU)",
		"Trace", "Work", "Monitor", "Hot")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		if r := rs.Get(tr, "IPU", pe); r != nil {
			t.AddRow(tr,
				metrics.FormatPct(r.LevelShare(flash.LevelWork)),
				metrics.FormatPct(r.LevelShare(flash.LevelMonitor)),
				metrics.FormatPct(r.LevelShare(flash.LevelHot)))
		}
	}
	return t
}

// Fig8 renders average read error rates.
func Fig8(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 8: average read error rate", "Trace", "Scheme", "BER", "vsBaseline")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		base := rs.Get(tr, "Baseline", pe)
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				rel := "-"
				if base != nil && base.ReadErrorRate > 0 {
					rel = fmt.Sprintf("%+.1f%%", (r.ReadErrorRate/base.ReadErrorRate-1)*100)
				}
				t.AddRow(tr, sc, metrics.FormatSci(r.ReadErrorRate), rel)
			}
		}
	}
	return t
}

// Fig9 renders SLC GC-victim page utilisation.
func Fig9(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 9: page utilization of GC blocks in the SLC cache",
		"Trace", "Scheme", "utilization")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				t.AddRow(tr, sc, metrics.FormatPct(r.PageUtilization))
			}
		}
	}
	return t
}

// Fig10 renders erase counts per region.
func Fig10(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 10: erase numbers in SLC and MLC blocks",
		"Trace", "Scheme", "SLCerases", "MLCerases")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				t.AddRow(tr, sc, fmt.Sprint(r.SLCErases), fmt.Sprint(r.MLCErases))
			}
		}
	}
	return t
}

// Fig11 renders normalised mapping-table sizes.
func Fig11(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 11: normalized mapping table size",
		"Trace", "Scheme", "bytes", "normalized")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				t.AddRow(tr, sc, fmt.Sprint(r.MappingBytes), fmt.Sprintf("%.4f", r.MappingNormalized))
			}
		}
	}
	return t
}

// Fig12 renders GC victim-search overhead (wall time of the scans plus a
// deterministic blocks-scanned proxy).
func Fig12(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 12: computation overhead in GC processing",
		"Trace", "Scheme", "scanTime", "blocksScanned", "perGC")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			r := rs.Get(tr, sc, pe)
			if r == nil || sc == "MGA" {
				continue // the paper compares Baseline's greedy vs IPU's ISR
			}
			perGC := time.Duration(0)
			if r.SLCGCs > 0 {
				perGC = time.Duration(r.GCScanNS / r.SLCGCs)
			}
			t.AddRow(tr, sc,
				time.Duration(r.GCScanNS).String(),
				fmt.Sprint(r.GCBlocksScanned),
				perGC.String())
		}
	}
	return t
}

// SchemeMatrix renders the cross-paper comparison: every registered paper
// scheme (the source paper's three plus In-place Switch and preemptive-GC
// IPU) against the metrics the schemes trade between — cache hit ratio,
// write amplification, tail read latency, and GC stall time — plus the
// switch/preemption activity counters that explain the trade.
func SchemeMatrix(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Scheme matrix: cross-paper comparison",
		"Trace", "Scheme", "readHit", "WA", "p99read", "GCstall", "switches", "preGCs")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				t.AddRow(tr, sc,
					metrics.FormatPct(r.ReadHitRatio()),
					fmt.Sprintf("%.3f", r.WriteAmplification()),
					metrics.FormatDuration(r.P99ReadLatency),
					time.Duration(r.GCStallNS).String(),
					fmt.Sprint(r.InPlaceSwitches),
					fmt.Sprint(r.PreemptiveGCs))
			}
		}
	}
	return t
}

// AblationSchemes lists the IPU variants the ablation study compares:
// the full design, each mechanism removed, and the future-work extension.
var AblationSchemes = []string{"IPU", "IPU-greedyGC", "IPU-flat", "IPU-noupdate", "IPU-AC"}

// Ablation renders the design-choice study: each IPU mechanism removed in
// turn (and the adaptive-combine extension added), against the metrics it
// is supposed to move.
func Ablation(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Ablation: contribution of each IPU mechanism",
		"Trace", "Variant", "overall", "read", "readBER", "SLCerases", "GCutil", "partialProgs")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, sc := range rs.schemes {
			if r := rs.Get(tr, sc, pe); r != nil {
				t.AddRow(tr, sc,
					metrics.FormatDuration(r.AvgLatency),
					metrics.FormatDuration(r.AvgReadLatency),
					metrics.FormatSci(r.ReadErrorRate),
					fmt.Sprint(r.SLCErases),
					metrics.FormatPct(r.PageUtilization),
					fmt.Sprint(r.PartialPrograms))
			}
		}
	}
	return t
}

// Fig13 renders I/O latency across P/E levels.
func Fig13(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 13: I/O latency under varied P/E cycles",
		"Trace", "Scheme", "P/E", "overall", "read")
	for _, tr := range rs.traces {
		for _, pe := range rs.pes {
			for _, sc := range rs.schemes {
				if r := rs.Get(tr, sc, pe); r != nil {
					t.AddRow(tr, sc, fmt.Sprint(pe),
						metrics.FormatDuration(r.AvgLatency),
						metrics.FormatDuration(r.AvgReadLatency))
				}
			}
		}
	}
	return t
}

// Fig14 renders read error rate across P/E levels.
func Fig14(rs *ResultSet) *metrics.Table {
	t := metrics.NewTable("Fig 14: bit error rate under varied P/E cycles",
		"Trace", "Scheme", "P/E", "BER")
	for _, tr := range rs.traces {
		for _, pe := range rs.pes {
			for _, sc := range rs.schemes {
				if r := rs.Get(tr, sc, pe); r != nil {
					t.AddRow(tr, sc, fmt.Sprint(pe), metrics.FormatSci(r.ReadErrorRate))
				}
			}
		}
	}
	return t
}
