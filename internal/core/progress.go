package core

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressPrinter returns a ProgressFunc that renders snapshots to w as
// single lines, throttled to at most one line per interval (non-positive
// means 200ms) with the final snapshot always printed. The returned
// function is safe for concurrent use, so it can serve both a single
// replay's OnProgress and a MatrixSpec.OnProgress invoked from many
// workers.
func ProgressPrinter(w io.Writer, interval time.Duration) ProgressFunc {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	var mu sync.Mutex
	var last time.Time
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if p.Replayed < p.Total && now.Sub(last) < interval {
			return
		}
		last = now
		fmt.Fprintf(w, "progress: %d/%d requests (%.1f%%)  sim %v  GCs %d\n",
			p.Replayed, p.Total, 100*p.Frac(),
			time.Duration(p.SimTime).Round(time.Millisecond), p.GCs)
	}
}
