package core

import (
	"strings"
	"testing"

	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/scheme"
	"ipusim/internal/trace"
)

// TestRegistryBuiltins asserts the registry carries the comparison schemes
// (the paper's three in the paper's order, then the cross-paper additions
// alphabetically, from which SchemeNames derives) plus every IPU variant.
func TestRegistryBuiltins(t *testing.T) {
	names := Schemes()
	if len(names) < 5 {
		t.Fatalf("registry has %d schemes, want at least the five comparison schemes", len(names))
	}
	for i, want := range []string{"Baseline", "MGA", "IPU"} {
		if names[i] != want {
			t.Fatalf("Schemes()[%d] = %q, want %q", i, names[i], want)
		}
	}
	wantNames := []string{"Baseline", "MGA", "IPU", "IPS", "IPU-PGC"}
	if len(SchemeNames) != len(wantNames) {
		t.Fatalf("SchemeNames = %v, want the five comparison schemes", SchemeNames)
	}
	for i, want := range wantNames {
		if SchemeNames[i] != want {
			t.Fatalf("SchemeNames[%d] = %q, want %q", i, SchemeNames[i], want)
		}
	}
	reg := map[string]bool{}
	for _, n := range names {
		reg[n] = true
	}
	for v := range scheme.IPUVariants() {
		if !reg[v] {
			t.Fatalf("IPU variant %q not registered", v)
		}
	}
}

// TestSchemeNamesOrderDeterministic asserts the canonical sort is a pure
// function of the name set — any registration order yields the same
// SchemeNames — so matrix, differential and golden output cannot silently
// reorder when init order changes.
func TestSchemeNamesOrderDeterministic(t *testing.T) {
	want := []string{"Baseline", "MGA", "IPU", "IPS", "IPU-PGC", "Other-A", "Other-B"}
	perms := [][]string{
		{"IPU-PGC", "IPS", "IPU", "MGA", "Baseline", "Other-B", "Other-A"},
		{"Other-A", "Baseline", "IPS", "Other-B", "MGA", "IPU-PGC", "IPU"},
		{"IPS", "IPU-PGC", "Other-B", "Other-A", "IPU", "Baseline", "MGA"},
	}
	for _, p := range perms {
		got := append([]string(nil), p...)
		sortSchemeNames(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("from %v: sorted = %v, want %v", p, got, want)
			}
		}
	}
}

// TestRegisterSchemePlugsIntoNew registers an external scheme and builds a
// simulator with it through the ordinary front door — the point of the
// registry: no core edits to add a counterpart.
func TestRegisterSchemePlugsIntoNew(t *testing.T) {
	const name = "IPU-registry-test"
	RegisterScheme(name, func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error) {
		v := scheme.DefaultIPUVariant()
		v.Name = name
		return scheme.NewIPUVariant(fc, em, v)
	})
	found := false
	for _, n := range Schemes() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered scheme %q missing from Schemes()", name)
	}

	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	cfg.Scheme = name
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Profiles["ts0"], 2, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(tr); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterSchemeConflicts asserts registration misuse panics.
func TestRegisterSchemeConflicts(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	dummy := func(fc *flash.Config, em *errmodel.Model) (scheme.Scheme, error) {
		return scheme.NewBaseline(fc, em)
	}
	mustPanic("duplicate", func() { RegisterScheme("IPU", dummy) })
	mustPanic("empty name", func() { RegisterScheme("", dummy) })
	mustPanic("nil builder", func() { RegisterScheme("x-nil", nil) })
}

// TestUnknownSchemeError asserts the lookup error names the registry.
func TestUnknownSchemeError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	cfg.Scheme = "no-such-scheme"
	_, err := New(cfg)
	if err == nil {
		t.Fatal("no error for unknown scheme")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") || !strings.Contains(err.Error(), "Baseline") {
		t.Fatalf("error %q does not name the scheme and the registered set", err)
	}
}
