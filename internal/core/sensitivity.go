package core

import (
	"context"
	"fmt"
	"time"

	"ipusim/internal/flash"
	"ipusim/internal/metrics"
)

// SensitivityParams lists the device parameters RunSensitivity can sweep,
// with the default sweep values for each.
var SensitivityParams = map[string][]float64{
	// slcratio sweeps the SLC-mode cache fraction around Table 2's 5%.
	"slcratio": {0.025, 0.05, 0.10},
	// gcthreshold sweeps the free-page fraction that triggers SLC GC.
	"gcthreshold": {0.025, 0.05, 0.10},
	// backlogcap sweeps the per-chip background-GC budget in milliseconds.
	"backlogcap": {5, 20, 80},
	// planes sweeps the planes-per-die parallelism below each chip.
	"planes": {1, 2, 4},
}

// applySensitivity returns a copy of base with the parameter applied.
func applySensitivity(base flash.Config, param string, value float64) (flash.Config, error) {
	fc := base
	switch param {
	case "slcratio":
		fc.SLCRatio = value
	case "gcthreshold":
		fc.GCThresholdFraction = value
	case "backlogcap":
		fc.GCBacklogCap = time.Duration(value * float64(time.Millisecond))
	case "planes":
		fc.PlanesPerDie = int(value)
	default:
		return fc, fmt.Errorf("core: unknown sensitivity parameter %q (have slcratio, gcthreshold, backlogcap)", param)
	}
	// Keep the logical space consistent with the (possibly changed) MLC size.
	fc.LogicalSubpages = fc.MLCSubpages() * 3 / 4
	if err := fc.Validate(); err != nil {
		return fc, fmt.Errorf("core: sensitivity %s=%v: %w", param, value, err)
	}
	return fc, nil
}

// RunSensitivity sweeps one device parameter across its values. It is
// RunSensitivityContext under context.Background().
func RunSensitivity(param string, spec MatrixSpec) (*metrics.Table, error) {
	return RunSensitivityContext(context.Background(), param, spec)
}

// RunSensitivityContext sweeps one device parameter across its values,
// running the given traces with the Baseline and IPU schemes at each
// point, and renders a comparison table. The spec's Flash field supplies
// the base configuration (nil means the scaled default with
// preconditioning). Cancelling ctx stops the sweep between (and within)
// matrix points.
func RunSensitivityContext(ctx context.Context, param string, spec MatrixSpec) (*metrics.Table, error) {
	values, ok := SensitivityParams[param]
	if !ok {
		return nil, fmt.Errorf("core: unknown sensitivity parameter %q", param)
	}
	base := flash.DefaultConfig()
	base.PreFillMLC = true
	if spec.Flash != nil {
		base = *spec.Flash
	}
	if len(spec.Schemes) == 0 {
		spec.Schemes = []string{"Baseline", "IPU"}
	}

	t := metrics.NewTable(fmt.Sprintf("Sensitivity: %s", param),
		"Trace", "Scheme", param, "overall", "readBER", "SLCerases", "hostToMLC")
	for _, v := range values {
		fc, err := applySensitivity(base, param, v)
		if err != nil {
			return nil, err
		}
		pointSpec := spec
		pointSpec.Flash = &fc
		results, err := RunMatrixContext(ctx, pointSpec)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			t.AddRow(r.Trace, r.Scheme, fmt.Sprintf("%v", v),
				metrics.FormatDuration(r.AvgLatency),
				metrics.FormatSci(r.ReadErrorRate),
				fmt.Sprint(r.SLCErases),
				fmt.Sprint(r.HostWritesToMLC))
		}
	}
	return t, nil
}
