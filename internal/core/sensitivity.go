package core

import (
	"context"
	"fmt"
	"time"

	"ipusim/internal/flash"
	"ipusim/internal/metrics"
)

// SensitivityParams lists the device parameters RunSensitivity can sweep,
// with the default sweep values for each.
var SensitivityParams = map[string][]float64{
	// slcratio sweeps the SLC-mode cache fraction around Table 2's 5%.
	"slcratio": {0.025, 0.05, 0.10},
	// gcthreshold sweeps the free-page fraction that triggers SLC GC.
	"gcthreshold": {0.025, 0.05, 0.10},
	// backlogcap sweeps the per-chip background-GC budget in milliseconds.
	"backlogcap": {5, 20, 80},
	// planes sweeps the planes-per-die parallelism below each chip.
	"planes": {1, 2, 4},
}

// applySensitivity returns a copy of base with the parameter applied.
func applySensitivity(base flash.Config, param string, value float64) (flash.Config, error) {
	fc := base
	switch param {
	case "slcratio":
		fc.SLCRatio = value
	case "gcthreshold":
		fc.GCThresholdFraction = value
	case "backlogcap":
		fc.GCBacklogCap = time.Duration(value * float64(time.Millisecond))
	case "planes":
		fc.PlanesPerDie = int(value)
	default:
		return fc, fmt.Errorf("core: unknown sensitivity parameter %q (have slcratio, gcthreshold, backlogcap)", param)
	}
	// Keep the logical space consistent with the (possibly changed) MLC size.
	fc.LogicalSubpages = fc.MLCSubpages() * 3 / 4
	if err := fc.Validate(); err != nil {
		return fc, fmt.Errorf("core: sensitivity %s=%v: %w", param, value, err)
	}
	return fc, nil
}

// sensitivityBase fills the sweep defaults into the spec: the
// preconditioned Table 2 geometry when no flash override is given, and
// the paper's Baseline-vs-IPU comparison when no schemes are named.
func sensitivityBase(spec MatrixSpec) MatrixSpec {
	if spec.Flash == nil {
		base := flash.DefaultConfig()
		base.PreFillMLC = true
		spec.Flash = &base
	}
	if len(spec.Schemes) == 0 {
		spec.Schemes = []string{"Baseline", "IPU"}
	}
	return spec
}

// SensitivityPointSpec returns the matrix spec for one swept value of
// param: the base spec (sweep defaults applied) with the parameter
// folded into its flash configuration. Running the point spec's cells —
// locally or sharded across workers — yields exactly the results
// RunSensitivityContext aggregates for that value.
func SensitivityPointSpec(spec MatrixSpec, param string, value float64) (MatrixSpec, error) {
	spec = sensitivityBase(spec)
	fc, err := applySensitivity(*spec.Flash, param, value)
	if err != nil {
		return spec, err
	}
	spec.Flash = &fc
	return spec, nil
}

// SensitivityCellConfig reconstructs the flash configuration of one
// sensitivity cell from (param, value) alone, over the default sweep
// base. A worker daemon handed a cell sub-job rebuilds the exact
// configuration the coordinator's sweep point uses.
func SensitivityCellConfig(param string, value float64) (flash.Config, error) {
	base := flash.DefaultConfig()
	base.PreFillMLC = true
	return applySensitivity(base, param, value)
}

// SensitivityTable renders per-point matrix results into the comparison
// table RunSensitivityContext returns: perPoint[i] holds the results of
// values[i]'s matrix, in matrix order. Both the local sweep and the
// coordinator's sharded sweep render through this one function, so their
// tables are identical when the underlying results are.
func SensitivityTable(param string, values []float64, perPoint [][]*Result) *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("Sensitivity: %s", param),
		"Trace", "Scheme", param, "overall", "readBER", "SLCerases", "hostToMLC")
	for i, v := range values {
		if i >= len(perPoint) {
			break
		}
		for _, r := range perPoint[i] {
			t.AddRow(r.Trace, r.Scheme, fmt.Sprintf("%v", v),
				metrics.FormatDuration(r.AvgLatency),
				metrics.FormatSci(r.ReadErrorRate),
				fmt.Sprint(r.SLCErases),
				fmt.Sprint(r.HostWritesToMLC))
		}
	}
	return t
}

// RunSensitivity sweeps one device parameter across its values. It is
// RunSensitivityContext under context.Background().
func RunSensitivity(param string, spec MatrixSpec) (*metrics.Table, error) {
	return RunSensitivityContext(context.Background(), param, spec)
}

// RunSensitivityContext sweeps one device parameter across its values,
// running the given traces with the Baseline and IPU schemes at each
// point, and renders a comparison table. The spec's Flash field supplies
// the base configuration (nil means the scaled default with
// preconditioning). Cancelling ctx stops the sweep between (and within)
// matrix points.
func RunSensitivityContext(ctx context.Context, param string, spec MatrixSpec) (*metrics.Table, error) {
	values, ok := SensitivityParams[param]
	if !ok {
		return nil, fmt.Errorf("core: unknown sensitivity parameter %q", param)
	}
	perPoint := make([][]*Result, len(values))
	for i, v := range values {
		pointSpec, err := SensitivityPointSpec(spec, param, v)
		if err != nil {
			return nil, err
		}
		results, err := RunMatrixContext(ctx, pointSpec)
		if err != nil {
			return nil, err
		}
		perPoint[i] = results
	}
	return SensitivityTable(param, values, perPoint), nil
}
