package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ipusim/internal/flash"
	"ipusim/internal/trace"
)

// MatrixSpec describes a sweep over traces, schemes and P/E baselines —
// the full evaluation of the paper is one MatrixSpec.
type MatrixSpec struct {
	// Traces names the workload profiles to synthesise (trace.Profiles
	// keys). Empty means all six, in Table 3 order.
	Traces []string
	// Schemes lists the FTLs to compare. Empty means all three.
	Schemes []string
	// PEBaselines lists the device use stages (Figs. 13–14). Empty means
	// the Table 2 default only.
	PEBaselines []int
	// Scale shrinks trace request counts; (0,1], default 0.05.
	Scale float64
	// Seed drives trace synthesis; runs are deterministic per seed.
	Seed int64
	// Flash is the geometry; zero value means flash.DefaultConfig.
	Flash *flash.Config
	// Workers bounds concurrent runs; 0 means GOMAXPROCS.
	Workers int
	// Parallelism sets each run's intra-run read-pipeline worker count
	// (Config.Parallelism); 0 or 1 replays each cell serially. Results
	// are bit-identical either way. Cross-cell Workers parallelism is
	// usually the better lever for sweeps; intra-run parallelism pays off
	// when a sweep has fewer cells than cores or one dominant run.
	Parallelism int
	// OnProgress, if set, receives aggregated Progress snapshots while the
	// sweep runs: Replayed/Total count requests across every run in the
	// sweep combined, GCs accumulates garbage collections across runs, and
	// SimTime is the device clock of the reporting run. The callback is
	// invoked concurrently from worker goroutines and must be safe for
	// concurrent use.
	OnProgress ProgressFunc
	// ProgressEvery is the per-run callback granularity in requests;
	// non-positive means DefaultProgressEvery.
	ProgressEvery int
}

// normalize fills defaults.
func (m *MatrixSpec) normalize() {
	if len(m.Traces) == 0 {
		m.Traces = trace.ProfileNames()
	}
	if len(m.Schemes) == 0 {
		m.Schemes = append([]string(nil), SchemeNames...)
	}
	if len(m.PEBaselines) == 0 {
		m.PEBaselines = []int{0} // sentinel: use config default
	}
	if m.Scale == 0 {
		m.Scale = 0.05
	}
	if m.Seed == 0 {
		m.Seed = 42
	}
	if m.Workers <= 0 {
		m.Workers = runtime.GOMAXPROCS(0)
	}
}

// traceKey identifies one synthesised trace. Generation is deterministic
// per key, so the result can be cached and shared read-only.
type traceKey struct {
	name  string
	seed  int64
	scale float64
}

// traceCache memoises trace synthesis across RunMatrix calls. Sweeps
// (sensitivity, replicate, benchmark loops) call RunMatrix many times with
// the same (name, seed, scale) tuples; traces are immutable once built, so
// regenerating them per call is pure waste. The cache is LRU-bounded: a
// full-scale trace holds millions of records, and a long multi-scale or
// multi-seed sweep would otherwise accumulate every variant it ever
// replayed.
var (
	traceCacheMu    sync.Mutex
	traceCacheMap   = map[traceKey]*traceCacheEntry{}
	traceCacheClock uint64
	traceCacheCap   = 24
)

type traceCacheEntry struct {
	tr      *trace.Trace
	lastUse uint64
}

// ResetTraceCache drops every cached synthesised trace, releasing their
// memory. Long-running drivers call it between sweep phases that use
// disjoint (seed, scale) settings.
func ResetTraceCache() {
	traceCacheMu.Lock()
	traceCacheMap = map[traceKey]*traceCacheEntry{}
	traceCacheMu.Unlock()
}

// SyntheticTrace returns the synthesised trace for a profile through the
// bounded trace cache: repeated requests for the same (name, seed, scale)
// share one immutable instance. Long-running services use it so concurrent
// jobs over the same workload do not regenerate millions of records each.
func SyntheticTrace(name string, seed int64, scale float64) (*trace.Trace, error) {
	return cachedTrace(name, seed, scale)
}

// cachedTrace returns the synthesised trace for a profile, generating and
// caching it on first use and evicting the least recently used trace
// beyond the cache cap.
func cachedTrace(name string, seed int64, scale float64) (*trace.Trace, error) {
	key := traceKey{name, seed, scale}
	traceCacheMu.Lock()
	traceCacheClock++
	if e, ok := traceCacheMap[key]; ok {
		e.lastUse = traceCacheClock
		traceCacheMu.Unlock()
		return e.tr, nil
	}
	traceCacheMu.Unlock()

	p, ok := trace.Profiles[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown trace profile %q", name)
	}
	tr, err := trace.Generate(p, seed, scale)
	if err != nil {
		return nil, err
	}

	traceCacheMu.Lock()
	defer traceCacheMu.Unlock()
	traceCacheClock++
	if e, ok := traceCacheMap[key]; ok {
		// Another goroutine generated the same trace concurrently; keep
		// the cached one so all jobs share a single instance.
		e.lastUse = traceCacheClock
		return e.tr, nil
	}
	traceCacheMap[key] = &traceCacheEntry{tr: tr, lastUse: traceCacheClock}
	for len(traceCacheMap) > traceCacheCap {
		var victim traceKey
		var oldest uint64
		first := true
		for k, e := range traceCacheMap {
			if first || e.lastUse < oldest {
				victim, oldest, first = k, e.lastUse, false
			}
		}
		delete(traceCacheMap, victim)
	}
	return tr, nil
}

// RunMatrix executes every (trace, scheme, P/E) combination of the spec.
// It is RunMatrixContext under context.Background().
func RunMatrix(spec MatrixSpec) ([]*Result, error) {
	return RunMatrixContext(context.Background(), spec)
}

// RunMatrixContext executes every (trace, scheme, P/E) combination of the
// spec on a fixed pool of spec.Workers goroutines. Each trace is
// synthesised at most once per (name, seed, scale) — cached across calls —
// and shared read-only by the scheme runs. Results come back sorted by
// (trace order, P/E, scheme order), independent of scheduling.
//
// Cancelling ctx stops every in-flight run within one request boundary and
// returns ctx's error; the partially replayed devices are still returned
// to the snapshot cache's free pool (a recycled device is restored in
// place before reuse, so a partial replay cannot leak state into a later
// job).
func RunMatrixContext(ctx context.Context, spec MatrixSpec) ([]*Result, error) {
	spec.normalize()

	traces := make(map[string]*trace.Trace, len(spec.Traces))
	for _, name := range spec.Traces {
		tr, err := cachedTrace(name, spec.Seed, spec.Scale)
		if err != nil {
			return nil, err
		}
		traces[name] = tr
	}

	// The job list is the spec's cell decomposition: the same enumeration a
	// coordinator uses to shard the sweep, so per-cell results land at the
	// same indices either way.
	jobs := cellsOf(spec)
	var totalRequests int64
	for _, c := range jobs {
		totalRequests += int64(traces[c.Trace].Len())
	}

	// Aggregated sweep progress: every run's per-interval deltas land in
	// shared atomics, and each callback reports the sweep-wide totals.
	var replayed, gcs atomic.Int64

	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	run := func(i int) {
		j := jobs[i]
		cfg := DefaultConfig()
		if spec.Flash != nil {
			cfg.Flash = *spec.Flash
		}
		if j.PE > 0 {
			cfg.Flash.PEBaseline = j.PE
		}
		cfg.Scheme = j.Scheme
		cfg.Parallelism = spec.Parallelism
		sim, err := New(cfg)
		if err != nil {
			errs[i] = err
			return
		}
		if spec.OnProgress != nil {
			var prevReplayed int
			var prevGCs int64
			sim.OnProgress(spec.ProgressEvery, func(p Progress) {
				r := replayed.Add(int64(p.Replayed - prevReplayed))
				g := gcs.Add(p.GCs - prevGCs)
				prevReplayed, prevGCs = p.Replayed, p.GCs
				spec.OnProgress(Progress{
					Replayed: int(r),
					Total:    int(totalRequests),
					SimTime:  p.SimTime,
					GCs:      g,
				})
			})
		}
		res, err := sim.RunContext(ctx, traces[j.Trace])
		if err != nil {
			// A cancelled run stopped between requests, so its device is
			// structurally consistent and can rejoin the free pool; any
			// other failure drops the device on the floor.
			if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
				sim.Release()
			}
			errs[i] = err
			return
		}
		// The Result holds only values, so the device can be recycled: the
		// snapshot cache restores it in place for a later same-key job
		// instead of cutting a fresh clone.
		sim.Release()
		res.PEBaseline = cfg.Flash.PEBaseline
		results[i] = res
	}

	workers := spec.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// jobs were generated in deterministic (trace, P/E, scheme) order and
	// results are indexed by job, so the slice is already deterministic.
	return results, nil
}
