package core

import (
	"fmt"
	"runtime"
	"sync"

	"ipusim/internal/flash"
	"ipusim/internal/trace"
)

// MatrixSpec describes a sweep over traces, schemes and P/E baselines —
// the full evaluation of the paper is one MatrixSpec.
type MatrixSpec struct {
	// Traces names the workload profiles to synthesise (trace.Profiles
	// keys). Empty means all six, in Table 3 order.
	Traces []string
	// Schemes lists the FTLs to compare. Empty means all three.
	Schemes []string
	// PEBaselines lists the device use stages (Figs. 13–14). Empty means
	// the Table 2 default only.
	PEBaselines []int
	// Scale shrinks trace request counts; (0,1], default 0.05.
	Scale float64
	// Seed drives trace synthesis; runs are deterministic per seed.
	Seed int64
	// Flash is the geometry; zero value means flash.DefaultConfig.
	Flash *flash.Config
	// Workers bounds concurrent runs; 0 means GOMAXPROCS.
	Workers int
}

// normalize fills defaults.
func (m *MatrixSpec) normalize() {
	if len(m.Traces) == 0 {
		m.Traces = trace.ProfileNames()
	}
	if len(m.Schemes) == 0 {
		m.Schemes = append([]string(nil), SchemeNames...)
	}
	if len(m.PEBaselines) == 0 {
		m.PEBaselines = []int{0} // sentinel: use config default
	}
	if m.Scale == 0 {
		m.Scale = 0.05
	}
	if m.Seed == 0 {
		m.Seed = 42
	}
	if m.Workers <= 0 {
		m.Workers = runtime.GOMAXPROCS(0)
	}
}

// RunMatrix executes every (trace, scheme, P/E) combination of the spec,
// fanning the independent simulations across a bounded worker pool. Each
// trace is synthesised once per P/E level and shared read-only by the
// scheme runs. Results come back sorted by (trace order, P/E, scheme
// order), independent of scheduling.
func RunMatrix(spec MatrixSpec) ([]*Result, error) {
	spec.normalize()

	type job struct {
		traceIdx, peIdx, schemeIdx int
		tr                         *trace.Trace
		pe                         int
	}

	// Synthesise traces up front (one per name; P/E does not change the
	// workload, only the device age).
	traces := make([]*trace.Trace, len(spec.Traces))
	for i, name := range spec.Traces {
		p, ok := trace.Profiles[name]
		if !ok {
			return nil, fmt.Errorf("core: unknown trace profile %q", name)
		}
		tr, err := trace.Generate(p, spec.Seed, spec.Scale)
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}

	var jobs []job
	for ti := range spec.Traces {
		for pi, pe := range spec.PEBaselines {
			for si := range spec.Schemes {
				jobs = append(jobs, job{traceIdx: ti, peIdx: pi, schemeIdx: si, tr: traces[ti], pe: pe})
			}
		}
	}

	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, spec.Workers)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := DefaultConfig()
			if spec.Flash != nil {
				cfg.Flash = *spec.Flash
			}
			if j.pe > 0 {
				cfg.Flash.PEBaseline = j.pe
			}
			cfg.Scheme = spec.Schemes[j.schemeIdx]
			sim, err := New(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := sim.Run(j.tr)
			if err != nil {
				errs[i] = err
				return
			}
			res.PEBaseline = cfg.Flash.PEBaseline
			results[i] = res
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// jobs were generated in deterministic (trace, P/E, scheme) order and
	// results are indexed by job, so the slice is already deterministic.
	return results, nil
}
