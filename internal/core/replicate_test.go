package core

import (
	"strings"
	"testing"
)

func TestNewReplicaStats(t *testing.T) {
	s := newReplicaStats(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty stats: %+v", s)
	}
	s = newReplicaStats([]float64{2, 4, 6})
	if s.Mean != 4 || s.N != 3 {
		t.Errorf("stats: %+v", s)
	}
	if s.Std < 1.99 || s.Std > 2.01 { // sample std of {2,4,6} = 2
		t.Errorf("std = %g", s.Std)
	}
	if rel := s.RelStd(); rel < 49 || rel > 51 {
		t.Errorf("RelStd = %g", rel)
	}
	if (ReplicaStats{}).RelStd() != 0 {
		t.Error("zero-mean RelStd must be 0")
	}
}

func TestRunReplicatedRejectsTooFew(t *testing.T) {
	if _, err := RunReplicated(MatrixSpec{}, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestRunReplicated(t *testing.T) {
	fc := smallFlash()
	reps, err := RunReplicated(MatrixSpec{
		Traces:  []string{"ads"},
		Schemes: []string{"IPU"},
		Scale:   0.002,
		Flash:   &fc,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := reps[[2]string{"ads", "IPU"}]
	if !ok {
		t.Fatal("missing replication entry")
	}
	if rep.Latency.N != 3 || rep.BER.N != 3 {
		t.Errorf("replica counts: %+v", rep)
	}
	if rep.Latency.Mean <= 0 || rep.BER.Mean <= 0 {
		t.Errorf("means not positive: %+v", rep)
	}
	// Different seeds give different traces: some variance is expected,
	// but the BER metric should be very stable.
	if rep.BER.RelStd() > 10 {
		t.Errorf("BER varies %.1f%% across seeds; suspicious", rep.BER.RelStd())
	}
}

func TestReplicationTable(t *testing.T) {
	fc := smallFlash()
	tab, err := ReplicationTable(MatrixSpec{
		Traces:  []string{"ads"},
		Schemes: []string{"Baseline", "IPU"},
		Scale:   0.002,
		Flash:   &fc,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Replication over 2 seeds") {
		t.Error("title missing")
	}
}
