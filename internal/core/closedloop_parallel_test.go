package core

import (
	"context"
	"reflect"
	"testing"

	"ipusim/internal/cache"
	"ipusim/internal/trace"
)

// parallelSerialSpecs enumerates the closed-loop workloads the
// parallel-vs-serial differential covers: the single stream and both
// default tenant mixes, each with the write-cache front-end off and on.
func parallelSerialSpecs(t *testing.T) map[string]ClosedLoopSpec {
	t.Helper()
	tr, err := trace.Generate(trace.Profiles["ts0"], 11, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]ClosedLoopSpec{
		"stream": {Trace: tr, Depth: 8},
	}
	for _, mix := range DefaultTenantMixes() {
		specs[mix.Name] = ClosedLoopSpec{
			Depth:   16,
			Seed:    13,
			Scale:   0.003,
			Tenants: mix.Tenants,
		}
	}
	out := make(map[string]ClosedLoopSpec, 2*len(specs))
	for name, spec := range specs {
		out[name+"/raw"] = spec
		buffered := spec
		buffered.WriteCache = &cache.Config{CapacityBytes: 256 << 10}
		out[name+"/buffered"] = buffered
	}
	return out
}

// TestClosedLoopParallelMatchesSerial is the tentpole differential: for
// every scheme, every workload shape (single stream, both tenant mixes),
// and both write-cache arms, a closed-loop replay with the read pipeline
// enabled must produce a Result DeepEqual to the serial replay — full
// metrics, per-tenant percentiles, fairness, and write-cache counters
// included. Run under -race by make check-closedloop.
func TestClosedLoopParallelMatchesSerial(t *testing.T) {
	specs := parallelSerialSpecs(t)
	for _, name := range SchemeNames {
		for label, spec := range specs {
			t.Run(name+"/"+label, func(t *testing.T) {
				run := func(parallelism int) *Result {
					cfg := DefaultConfig()
					cfg.Flash = smallFlash()
					cfg.Scheme = name
					cfg.Parallelism = parallelism
					sim, err := NewFresh(cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := sim.RunClosedLoopSpec(context.Background(), spec)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				want := run(1)
				got := run(4)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("parallel closed loop diverged from serial:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestClosedLoopParallelProgressAndCancel checks the parallel loop's
// progress/cancellation contract against the serial one: identical
// SimTime/GCs snapshots at every tick, and a callback-driven cancel
// stopping at exactly the same request.
func TestClosedLoopParallelProgressAndCancel(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 11, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	type tick struct {
		Replayed int
		SimTime  int64
		GCs      int64
	}
	run := func(parallelism, stopAt int) (ticks []tick, replayed int) {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		cfg.Parallelism = parallelism
		sim, err := NewFresh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, runErr := sim.RunClosedLoopSpec(ctx, ClosedLoopSpec{
			Trace:         tr,
			Depth:         8,
			ProgressEvery: 7,
			OnProgress: func(p Progress) {
				ticks = append(ticks, tick{p.Replayed, p.SimTime, p.GCs})
				replayed = p.Replayed
				if stopAt > 0 && p.Replayed >= stopAt {
					cancel()
				}
			},
		})
		if stopAt > 0 && runErr == nil {
			t.Fatal("cancelled run returned nil error")
		}
		if stopAt == 0 && runErr != nil {
			t.Fatal(runErr)
		}
		return ticks, replayed
	}
	for _, stopAt := range []int{0, 42} {
		serialTicks, serialN := run(1, stopAt)
		parTicks, parN := run(4, stopAt)
		if serialN != parN {
			t.Fatalf("stopAt=%d: replayed %d parallel vs %d serial", stopAt, parN, serialN)
		}
		if !reflect.DeepEqual(parTicks, serialTicks) {
			t.Fatalf("stopAt=%d: progress ticks diverged:\n got %+v\nwant %+v", stopAt, parTicks, serialTicks)
		}
	}
}

// TestClosedLoopSteadyStateZeroAllocs pins the zero-allocation property
// of the steady-state closed-loop request loop with the write-cache
// front-end on: after warm-up, replaying requests through the production
// step path allocates nothing — for the single stream and for the
// multi-tenant loop alike.
func TestClosedLoopSteadyStateZeroAllocs(t *testing.T) {
	t.Run("stream", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		sim, err := NewFresh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Generate(trace.Profiles["ts0"], 11, 0.003)
		if err != nil {
			t.Fatal(err)
		}
		spec := ClosedLoopSpec{Trace: tr, Depth: 8, WriteCache: &cache.Config{CapacityBytes: 256 << 10}}
		spec.normalize()
		l, err := sim.newStreamLoop(&spec)
		if err != nil {
			t.Fatal(err)
		}
		replay := func() {
			for i := range l.ring {
				l.ring[i] = 0
			}
			l.last = 0
			for i := 0; i < tr.Len(); i++ {
				l.step(i)
			}
			l.wb.Drain(l.last)
		}
		// Warm until the device's memo tables, the write-cache slab, and
		// the GC paths have reached their steady footprint.
		for i := 0; i < 4; i++ {
			replay()
		}
		if avg := testing.AllocsPerRun(3, replay); avg != 0 {
			t.Fatalf("steady-state stream loop allocates %.2f/replay, want 0", avg)
		}
	})

	t.Run("tenants", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		sim, err := NewFresh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := ClosedLoopSpec{
			Depth:      16,
			Seed:       13,
			Scale:      0.003,
			Tenants:    DefaultTenantMixes()[0].Tenants,
			WriteCache: &cache.Config{CapacityBytes: 256 << 10},
		}
		spec.normalize()
		l, _, err := sim.newTenantLoop(&spec)
		if err != nil {
			t.Fatal(err)
		}
		n := l.sched.Len()
		replay := func() {
			for ti := range l.rings {
				for i := range l.rings[ti] {
					l.rings[ti][i] = 0
				}
				l.counts[ti] = 0
				l.accums[ti] = tenantAccum{}
			}
			l.lastEnd = 0
			for i := 0; i < n; i++ {
				l.step(i)
			}
			l.wb.Drain(l.lastEnd)
		}
		for i := 0; i < 4; i++ {
			replay()
		}
		if avg := testing.AllocsPerRun(3, replay); avg != 0 {
			t.Fatalf("steady-state tenant loop allocates %.2f/replay, want 0", avg)
		}
	})
}
