package core

import (
	"strings"
	"testing"
)

func TestNewAcceptsIPUVariants(t *testing.T) {
	for _, name := range AblationSchemes {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		cfg.Scheme = name
		sim, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sim.Scheme().Name() != name {
			t.Errorf("scheme name %q, want %q", sim.Scheme().Name(), name)
		}
	}
}

func TestAblationTable(t *testing.T) {
	fc := smallFlash()
	res, err := RunMatrix(MatrixSpec{
		Traces:  []string{"ts0"},
		Schemes: AblationSchemes,
		Scale:   0.003,
		Flash:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := Ablation(NewResultSet(res))
	if len(tab.Rows) != len(AblationSchemes) {
		t.Fatalf("ablation rows = %d, want %d", len(tab.Rows), len(AblationSchemes))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range AblationSchemes {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("ablation output missing %s", name)
		}
	}
}

// TestAblationShapes asserts the direction each mechanism moves its target
// metric, at the evaluation operating point.
func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape check")
	}
	fc := smallFlash()
	fc.PreFillMLC = true
	res, err := RunMatrix(MatrixSpec{
		Traces:  []string{"ts0"},
		Schemes: AblationSchemes,
		Scale:   0.02,
		Flash:   &fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewResultSet(res)
	pe := rs.PEs()[0]
	full := rs.Get("ts0", "IPU", pe)
	noUpd := rs.Get("ts0", "IPU-noupdate", pe)
	ac := rs.Get("ts0", "IPU-AC", pe)

	// Removing intra-page update destroys the BER benefit (back to
	// conventional-only) and the space benefit (Baseline-like utilisation).
	if noUpd.PartialPrograms != 0 {
		t.Errorf("noupdate issued %d partial programs", noUpd.PartialPrograms)
	}
	if noUpd.ReadErrorRate >= full.ReadErrorRate {
		t.Errorf("noupdate BER %g should be below full IPU's %g (no partial programming at all)",
			noUpd.ReadErrorRate, full.ReadErrorRate)
	}
	if noUpd.PageUtilization >= full.PageUtilization {
		t.Errorf("noupdate utilisation %.3f should drop below full IPU's %.3f",
			noUpd.PageUtilization, full.PageUtilization)
	}

	// The future-work extension: utilisation up, error increase small.
	if ac.PageUtilization <= full.PageUtilization {
		t.Errorf("adaptive combine utilisation %.3f !> %.3f", ac.PageUtilization, full.PageUtilization)
	}
	if rel := ac.ReadErrorRate/full.ReadErrorRate - 1; rel > 0.05 {
		t.Errorf("adaptive combine error increase %.1f%% is noticeable", rel*100)
	}
}
