package core

import (
	"fmt"

	"ipusim/internal/metrics"
)

// EnduranceRatio describes how many more erase cycles an SLC-mode block
// endures than a native high-density block. The paper (§4.3.2) cites
// 10:1 for MLC, and 100:1 to 1000:1 for TLC and QLC.
type EnduranceRatio struct {
	// Name labels the high-density cell type.
	Name string
	// SLCCycles is the rated erase endurance of an SLC-mode block.
	SLCCycles float64
	// HDCycles is the rated endurance of the high-density block.
	HDCycles float64
}

// EnduranceRatios are the paper's cited cell technologies.
var EnduranceRatios = []EnduranceRatio{
	{Name: "MLC (10:1)", SLCCycles: 30000, HDCycles: 3000},
	{Name: "TLC (100:1)", SLCCycles: 100000, HDCycles: 1000},
	{Name: "QLC (1000:1)", SLCCycles: 100000, HDCycles: 100},
}

// LifetimeScore is the fraction of the device's total endurance one run
// consumed: the binding constraint is whichever region wears out first,
// so the score is max(slcWear, hdWear), where each wear term is erases
// per block over the region's rated cycles. Lower is better; the
// reciprocal is proportional to how many times the workload could be
// replayed before the device dies.
func LifetimeScore(r *Result, slcBlocks, hdBlocks int, ratio EnduranceRatio) float64 {
	slcWear := float64(r.SLCErases) / float64(slcBlocks) / ratio.SLCCycles
	hdWear := float64(r.MLCErases) / float64(hdBlocks) / ratio.HDCycles
	if hdWear > slcWear {
		return hdWear
	}
	return slcWear
}

// Lifetime renders the §4.3.2 endurance analysis: for each cell
// technology, the per-scheme lifetime consumption of the run and its
// improvement over Baseline. The paper's argument — shifting erases from
// the fragile high-density region into the durable SLC region extends
// overall lifetime, and the effect grows from MLC to QLC — becomes a
// measurable series.
func Lifetime(rs *ResultSet, slcBlocks, hdBlocks int) *metrics.Table {
	t := metrics.NewTable("Lifetime: endurance consumed per run (lower is better)",
		"Trace", "Scheme", "cell", "wear", "vsBaseline")
	pe := rs.defaultPE()
	for _, tr := range rs.traces {
		for _, ratio := range EnduranceRatios {
			base := rs.Get(tr, "Baseline", pe)
			var baseScore float64
			if base != nil {
				baseScore = LifetimeScore(base, slcBlocks, hdBlocks, ratio)
			}
			for _, sc := range rs.schemes {
				r := rs.Get(tr, sc, pe)
				if r == nil {
					continue
				}
				score := LifetimeScore(r, slcBlocks, hdBlocks, ratio)
				rel := "-"
				if baseScore > 0 {
					rel = fmt.Sprintf("%+.1f%%", (score/baseScore-1)*100)
				}
				t.AddRow(tr, sc, ratio.Name, metrics.FormatSci(score), rel)
			}
		}
	}
	return t
}
