package core

import (
	"context"
	"errors"
	"testing"

	"ipusim/internal/trace"
)

// TestRunContextCancelStopsWithinOneRequest cancels a replay from inside
// the per-request progress callback and asserts not a single further
// request is issued: cancellation is checked on every request boundary.
func TestRunContextCancelStopsWithinOneRequest(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 3, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAt = 50
	replayed := 0
	sim.OnProgress(1, func(p Progress) {
		replayed = p.Replayed
		if p.Replayed == stopAt {
			cancel()
		}
	})
	res, err := sim.RunContext(ctx, tr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
	if replayed != stopAt {
		t.Fatalf("replayed %d requests after cancellation at %d: cancellation crossed a request boundary", replayed, stopAt)
	}
}

// TestRunClosedLoopContextCancel covers the closed-loop replay's
// cancellation path the same way.
func TestRunClosedLoopContextCancel(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["wdev0"], 3, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAt = 32
	replayed := 0
	sim.OnProgress(1, func(p Progress) {
		replayed = p.Replayed
		if p.Replayed == stopAt {
			cancel()
		}
	})
	if _, err := sim.RunClosedLoopContext(ctx, tr, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if replayed != stopAt {
		t.Fatalf("replayed %d, want exactly %d", replayed, stopAt)
	}
}

// TestRunProgressSnapshots verifies the periodic hook: snapshots arrive
// every `every` requests plus one at completion, monotonically, with the
// device clock advancing and the GC counter matching the final metrics.
func TestRunProgressSnapshots(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 9, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const every = 128
	var snaps []Progress
	sim.OnProgress(every, func(p Progress) { snaps = append(snaps, p) })
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	want := tr.Len()/every + 1
	if tr.Len()%every == 0 {
		want = tr.Len() / every
	}
	if len(snaps) != want {
		t.Fatalf("got %d snapshots, want %d for %d requests every %d", len(snaps), want, tr.Len(), every)
	}
	prev := Progress{}
	for _, p := range snaps {
		if p.Replayed <= prev.Replayed && prev.Replayed != 0 {
			t.Fatalf("replayed not monotonic: %d after %d", p.Replayed, prev.Replayed)
		}
		if p.Total != tr.Len() {
			t.Fatalf("total = %d, want %d", p.Total, tr.Len())
		}
		// Completion times are per-request, not monotone across parallel
		// channels, so SimTime is only required to be set.
		if p.SimTime <= 0 {
			t.Fatalf("sim time not reported: %d", p.SimTime)
		}
		if p.GCs < prev.GCs {
			t.Fatalf("GC count went backwards: %d after %d", p.GCs, prev.GCs)
		}
		prev = p
	}
	last := snaps[len(snaps)-1]
	if last.Replayed != tr.Len() {
		t.Fatalf("final snapshot replayed %d, want %d", last.Replayed, tr.Len())
	}
	if got := res.SLCGCs + res.MLCGCs; last.GCs != got {
		t.Fatalf("final snapshot GCs %d, result says %d", last.GCs, got)
	}
}

// poolFreeTotal counts the released devices currently pooled across every
// snapshot-cache template.
func poolFreeTotal() int {
	snapshotMu.Lock()
	defer snapshotMu.Unlock()
	total := 0
	for _, e := range snapshotCache {
		total += len(e.free)
	}
	return total
}

// TestRunMatrixContextCancelReturnsDevicesToPool cancels a sweep mid-run
// and asserts (a) the sweep returns the context's error, and (b) the
// partially replayed devices were handed back to the snapshot cache's
// free pool rather than leaked.
func TestRunMatrixContextCancelReturnsDevicesToPool(t *testing.T) {
	ResetSnapshotCache()
	fc := snapshotFlash()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := MatrixSpec{
		Traces:        []string{"ts0", "wdev0"},
		Scale:         0.01,
		Seed:          5,
		Flash:         &fc,
		Workers:       2,
		ProgressEvery: 64,
		OnProgress: func(p Progress) {
			if p.Replayed >= 256 {
				cancel()
			}
		},
	}
	res, err := RunMatrixContext(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled sweep returned results")
	}
	if free := poolFreeTotal(); free == 0 {
		t.Fatal("no cancelled device returned to the snapshot free pool")
	}

	// The recycled devices must be restored before reuse: a follow-up run
	// must match a fresh build bit-for-bit despite the partial replays.
	tr, err := trace.Generate(trace.Profiles["ts0"], 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flash = fc
	cfg.Scheme = "IPU"
	fresh, err := NewFresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	recycled, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recycled.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.AvgLatency != want.AvgLatency || got.SLCPrograms != want.SLCPrograms ||
		got.ReadErrorRate != want.ReadErrorRate || got.SLCErases != want.SLCErases {
		t.Fatalf("recycled replay diverged from fresh after cancelled sweep:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunMatrixAggregatedProgress asserts matrix progress aggregates
// request counts across every run of the sweep.
func TestRunMatrixAggregatedProgress(t *testing.T) {
	ResetSnapshotCache()
	fc := snapshotFlash()
	var last Progress
	spec := MatrixSpec{
		Traces:        []string{"ts0"},
		Schemes:       []string{"Baseline", "IPU"},
		Scale:         0.005,
		Seed:          7,
		Flash:         &fc,
		Workers:       1, // serialise so `last` needs no lock
		ProgressEvery: 64,
		OnProgress:    func(p Progress) { last = p },
	}
	if _, err := RunMatrix(spec); err != nil {
		t.Fatal(err)
	}
	tr, err := cachedTrace("ts0", 7, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 2 * tr.Len()
	if last.Total != wantTotal {
		t.Fatalf("aggregated total = %d, want %d", last.Total, wantTotal)
	}
	if last.Replayed != wantTotal {
		t.Fatalf("final aggregated replayed = %d, want %d", last.Replayed, wantTotal)
	}
}

// TestReleasedSimulatorRefusesUse is the release-safety fix: every entry
// point on a released simulator fails with ErrReleased instead of
// touching pooled state.
func TestReleasedSimulatorRefusesUse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Release()
	sim.Release() // idempotent

	if _, err := sim.Write(0, 0, 4096); !errors.Is(err, ErrReleased) {
		t.Fatalf("Write after Release: err = %v, want ErrReleased", err)
	}
	if _, err := sim.Read(0, 0, 4096); !errors.Is(err, ErrReleased) {
		t.Fatalf("Read after Release: err = %v, want ErrReleased", err)
	}
	tr := trace.New("t", trace.Record{Time: 0, Op: trace.OpWrite, Offset: 0, Size: 4096})
	if _, err := sim.Run(tr); !errors.Is(err, ErrReleased) {
		t.Fatalf("Run after Release: err = %v, want ErrReleased", err)
	}
	if _, err := sim.RunClosedLoop(tr, 4); !errors.Is(err, ErrReleased) {
		t.Fatalf("RunClosedLoop after Release: err = %v, want ErrReleased", err)
	}
	if res := sim.Result("t", 1); res != nil {
		t.Fatalf("Result after Release = %+v, want nil", res)
	}
	if sc := sim.Scheme(); sc != nil {
		t.Fatalf("Scheme after Release = %v, want nil", sc)
	}
}
