package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipusim/internal/check"
)

func TestLoadConfigDefaultsWhenEmpty(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.Scheme != def.Scheme || cfg.Flash.Blocks != def.Flash.Blocks {
		t.Errorf("empty config diverged from defaults")
	}
	if !cfg.Flash.PreFillMLC {
		t.Error("default preconditioning lost")
	}
}

func TestLoadConfigOverlays(t *testing.T) {
	in := `{
		"scheme": "MGA",
		"flash": {
			"blocks": 512,
			"slcRatio": 0.1,
			"peBaseline": 8000,
			"preFillMLC": false,
			"timing": {"slcProgram": "350us", "erase": 5000000}
		},
		"error": {"inPageAlpha": 0.09}
	}`
	cfg, err := LoadConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != "MGA" {
		t.Errorf("scheme = %q", cfg.Scheme)
	}
	if cfg.Flash.Blocks != 512 || cfg.Flash.SLCRatio != 0.1 || cfg.Flash.PEBaseline != 8000 {
		t.Errorf("flash overlay: %+v", cfg.Flash)
	}
	if cfg.Flash.PreFillMLC {
		t.Error("preFillMLC=false ignored")
	}
	if cfg.Flash.Timing.SLCProgram != 350*time.Microsecond {
		t.Errorf("slcProgram = %v", cfg.Flash.Timing.SLCProgram)
	}
	if cfg.Flash.Timing.Erase != 5*time.Millisecond {
		t.Errorf("numeric-ns duration: %v", cfg.Flash.Timing.Erase)
	}
	if cfg.Error.InPageAlpha != 0.09 {
		t.Errorf("error overlay: %+v", cfg.Error)
	}
	// Logical space must be re-derived for the smaller geometry.
	if cfg.Flash.LogicalSubpages != cfg.Flash.MLCSubpages()*3/4 {
		t.Errorf("logical space not re-derived: %d", cfg.Flash.LogicalSubpages)
	}
	// And the loaded config must actually build.
	if _, err := New(cfg); err != nil {
		t.Fatalf("loaded config does not build: %v", err)
	}
}

func TestLoadConfigExplicitLogicalSpace(t *testing.T) {
	in := `{"flash": {"blocks": 512, "logicalSubpages": 100000}}`
	cfg, err := LoadConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Flash.LogicalSubpages != 100000 {
		t.Errorf("explicit logical space overridden: %d", cfg.Flash.LogicalSubpages)
	}
}

func TestLoadConfigCheckLevel(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"check": "full"}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Check != check.Full {
		t.Errorf("check level = %v, want full", cfg.Check)
	}
	cfg, err = LoadConfig(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Check != check.Off {
		t.Errorf("default check level = %v, want off", cfg.Check)
	}
	if _, err := LoadConfig(strings.NewReader(`{"check": "paranoid"}`)); err == nil {
		t.Error("unknown check level accepted")
	}
}

func TestLoadConfigRejections(t *testing.T) {
	cases := []string{
		`{"flash": {"blocs": 512}}`,                // typo: unknown field
		`{"flash": {"blocks": 0}}`,                 // invalid geometry
		`{"flash": {"timing": {"slcRead": "xx"}}}`, // bad duration
		`{"flash": {"timing": {"slcRead": true}}}`, // wrong type
		`{"error": {"partialFactor": 0.5}}`,        // invalid error model
		`not json`,
	}
	for _, in := range cases {
		if _, err := LoadConfig(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestLoadConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(`{"scheme":"Baseline"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != "Baseline" {
		t.Errorf("scheme = %q", cfg.Scheme)
	}
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestJSONDurationMarshal(t *testing.T) {
	b, err := json.Marshal(JSONDuration(25 * time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"25µs"` {
		t.Errorf("marshal = %s", b)
	}
}

func TestLoadConfigSchemaVersion(t *testing.T) {
	// The current version is accepted.
	cfg, err := LoadConfig(strings.NewReader(`{"version": 1, "scheme": "MGA"}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != "MGA" {
		t.Errorf("scheme = %q", cfg.Scheme)
	}
	// An absent version reads as version 1 (the pre-versioning schema).
	if _, err := LoadConfig(strings.NewReader(`{"scheme": "MGA"}`)); err != nil {
		t.Errorf("unversioned config rejected: %v", err)
	}
	// Version 2 (the current schema) is accepted and reads parallelism.
	cfg, err = LoadConfig(strings.NewReader(`{"version": 2, "parallelism": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Parallelism != 4 {
		t.Errorf("parallelism = %d, want 4", cfg.Parallelism)
	}
	// A future version is rejected, naming the supported range.
	_, err = LoadConfig(strings.NewReader(`{"version": 3}`))
	if err == nil {
		t.Fatal("future schema version accepted")
	}
	if !strings.Contains(err.Error(), "version 3") || !strings.Contains(err.Error(), "versions 1-2") {
		t.Errorf("version error %q does not name the versions", err)
	}
	// Negative parallelism is rejected.
	if _, err := LoadConfig(strings.NewReader(`{"version": 2, "parallelism": -1}`)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}

func TestLoadConfigUnknownKeyNamed(t *testing.T) {
	_, err := LoadConfig(strings.NewReader(`{"version": 1, "shceme": "IPU"}`))
	if err == nil {
		t.Fatal("unknown key accepted")
	}
	if !strings.Contains(err.Error(), `"shceme"`) {
		t.Errorf("error %q does not name the offending key", err)
	}
	_, err = LoadConfig(strings.NewReader(`{"flash": {"blocksss": 10}}`))
	if err == nil {
		t.Fatal("unknown nested key accepted")
	}
	if !strings.Contains(err.Error(), `"blocksss"`) {
		t.Errorf("error %q does not name the offending nested key", err)
	}
}

func TestLoadConfigExampleFile(t *testing.T) {
	cfg, err := LoadConfigFile(filepath.Join("..", "..", "configs", "example.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != "IPU" {
		t.Errorf("scheme = %q", cfg.Scheme)
	}
}
