package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ipusim/internal/cache"
	"ipusim/internal/trace"
	"ipusim/internal/workload"
)

// referenceClosedLoop replays tr the way the legacy positional
// RunClosedLoop did, hand-rolled from the public Write/Read entry points:
// a ring of completion gates, request i waiting on request i-depth. The
// spec-based engine must be bit-identical to this.
func referenceClosedLoop(t *testing.T, sim *Simulator, tr *trace.Trace, depth int) *Result {
	t.Helper()
	ring := make([]int64, depth)
	for i := 0; i < tr.Len(); i++ {
		r := tr.At(i)
		issue := r.Time
		if gate := ring[i%depth]; gate > issue {
			issue = gate
		}
		var end int64
		var err error
		if r.Op == trace.OpWrite {
			end, err = sim.Write(issue, r.Offset, r.Size)
		} else {
			end, err = sim.Read(issue, r.Offset, r.Size)
		}
		if err != nil {
			t.Fatal(err)
		}
		ring[i%depth] = end
	}
	return sim.Result(tr.Name, tr.Len())
}

// TestSpecPathMatchesLegacyAllSchemes is the API-redesign compatibility
// differential: with Tenants nil and no write cache, RunClosedLoopSpec
// must produce a Result DeepEqual to the legacy gate loop for every
// scheme. Run under -race by make check-tenants.
func TestSpecPathMatchesLegacyAllSchemes(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 11, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	const depth = 8
	for _, name := range SchemeNames {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		cfg.Scheme = name

		ref, err := NewFresh(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := referenceClosedLoop(t, ref, tr, depth)

		sim, err := NewFresh(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := sim.RunClosedLoopSpec(context.Background(), ClosedLoopSpec{Trace: tr, Depth: depth})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: spec path diverged from legacy loop:\n got %+v\nwant %+v", name, got, want)
		}

		// And the deprecated wrapper must go through the same engine.
		wrap, err := NewFresh(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		viaWrapper, err := wrap.RunClosedLoop(tr, depth)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(viaWrapper, want) {
			t.Errorf("%s: RunClosedLoop wrapper diverged from legacy loop", name)
		}
	}
}

// twoTenantSpec is the canonical two-tenant contention spec the
// determinism and cancellation tests share: a weighted ts0 tenant against
// a bursty wdev0 tenant.
func twoTenantSpec() ClosedLoopSpec {
	return ClosedLoopSpec{
		Depth: 16,
		Seed:  13,
		Scale: 0.003,
		Tenants: []workload.TenantSpec{
			{Name: "web", Trace: "ts0", Weight: 3},
			{Name: "batch", Trace: "wdev0", Weight: 1, BurstLen: 8, BurstSpacingNS: 2000},
		},
	}
}

// TestMultiTenantDeterministicReplay runs the same two-tenant spec twice
// on fresh devices and requires the full Results — per-tenant
// percentiles, fairness, everything — to be DeepEqual.
func TestMultiTenantDeterministicReplay(t *testing.T) {
	run := func() *Result {
		cfg := DefaultConfig()
		cfg.Flash = smallFlash()
		sim, err := NewFresh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunClosedLoopSpec(context.Background(), twoTenantSpec())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("multi-tenant replay not deterministic:\n got %+v\nthen %+v", a, b)
	}
	if len(a.Tenants) != 2 {
		t.Fatalf("tenant results = %d, want 2", len(a.Tenants))
	}
	if a.Tenants[0].Name != "web" || a.Tenants[1].Name != "batch" {
		t.Errorf("tenant order/names: %+v", a.Tenants)
	}
	if a.Tenants[0].DepthSlots != 12 || a.Tenants[1].DepthSlots != 4 {
		t.Errorf("depth shares %d/%d, want 12/4 for weights 3:1 at depth 16",
			a.Tenants[0].DepthSlots, a.Tenants[1].DepthSlots)
	}
	if a.FairnessIndex <= 0 || a.FairnessIndex > 1 {
		t.Errorf("fairness index %v out of (0, 1]", a.FairnessIndex)
	}
	total := 0
	for _, tn := range a.Tenants {
		if tn.Requests != tn.Reads+tn.Writes {
			t.Errorf("tenant %s: %d requests != %d reads + %d writes", tn.Name, tn.Requests, tn.Reads, tn.Writes)
		}
		if tn.Writes > 0 && tn.P999WriteLatency < tn.P50WriteLatency {
			t.Errorf("tenant %s: p999 write %v below p50 %v", tn.Name, tn.P999WriteLatency, tn.P50WriteLatency)
		}
		if tn.ThroughputRPS <= 0 {
			t.Errorf("tenant %s: throughput %v", tn.Name, tn.ThroughputRPS)
		}
		total += tn.Requests
	}
	if total != a.Requests {
		t.Errorf("tenant requests sum to %d, result says %d", total, a.Requests)
	}
}

// TestWriteCacheFrontEnd runs the same single-stream closed loop with and
// without the DRAM write buffer: the buffered run must report cache
// counters, absorb coalesced bytes, and still leave the device in a
// checker-clean state (the buffer drains before the result snapshot).
func TestWriteCacheFrontEnd(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["ts0"], 17, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()

	raw, err := NewFresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := raw.RunClosedLoopSpec(context.Background(), ClosedLoopSpec{Trace: tr, Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if base.WriteCache != nil {
		t.Fatalf("unbuffered run reported cache stats: %+v", base.WriteCache)
	}

	buffered, err := NewFresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := buffered.RunClosedLoopSpec(context.Background(), ClosedLoopSpec{
		Trace: tr, Depth: 8,
		WriteCache: &cache.Config{CapacityBytes: 4 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.WriteCache
	if st == nil {
		t.Fatal("buffered run reported no cache stats")
	}
	if st.WriteHits+st.WriteMisses == 0 {
		t.Error("cache saw no writes")
	}
	if st.CoalescedBytes == 0 {
		t.Error("no sub-page coalescing on a trace full of repeated updates")
	}
	if st.Flushes() == 0 || st.FlushedBytes == 0 {
		t.Errorf("nothing flushed to NAND: %+v", st)
	}
	// The buffer absorbs rewrites, so the device must have programmed
	// fewer subpages than the raw run.
	if res.HostSubpagesWritten >= base.HostSubpagesWritten {
		t.Errorf("buffered run wrote %d host subpages, raw wrote %d — buffer absorbed nothing",
			res.HostSubpagesWritten, base.HostSubpagesWritten)
	}
}

// TestClosedLoopSpecValidation covers the spec's error paths.
func TestClosedLoopSpecValidation(t *testing.T) {
	tr := trace.New("t", trace.Record{Time: 0, Op: trace.OpWrite, Offset: 0, Size: 4096})
	cfg := DefaultConfig()
	cfg.Flash = snapshotFlash()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Release()
	ctx := context.Background()
	bad := []ClosedLoopSpec{
		{Trace: tr, Depth: 0},
		{Depth: 4},
		{Trace: tr, Depth: 4, Tenants: []workload.TenantSpec{{}}},
		{Trace: tr, Depth: 4, WriteCache: &cache.Config{CapacityBytes: 1024, LineBytes: 4096}},
		{Depth: 4, Tenants: []workload.TenantSpec{{Weight: -1}}},
		{Depth: 4, Tenants: []workload.TenantSpec{{Trace: "no-such-profile"}}},
	}
	for i, spec := range bad {
		if _, err := sim.RunClosedLoopSpec(ctx, spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}

	released, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	released.Release()
	if _, err := released.RunClosedLoopSpec(ctx, ClosedLoopSpec{Trace: tr, Depth: 4}); !errors.Is(err, ErrReleased) {
		t.Errorf("released simulator: err = %v, want ErrReleased", err)
	}
}

// TestMultiTenantCancelReturnsPartials cancels a two-tenant run mid-replay
// and asserts the per-tenant partial contract: the Result comes back
// alongside the context error with one TenantResult per tenant — never a
// nil or short slice — and the partial counts add up to the replayed
// total.
func TestMultiTenantCancelReturnsPartials(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flash = smallFlash()
	sim, err := NewFresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAt = 64
	replayed := 0
	spec := twoTenantSpec()
	spec.ProgressEvery = 1
	spec.OnProgress = func(p Progress) {
		replayed = p.Replayed
		if p.Replayed == stopAt {
			cancel()
		}
	}
	res, err := sim.RunClosedLoopSpec(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if replayed != stopAt {
		t.Fatalf("replayed %d, want exactly %d", replayed, stopAt)
	}
	if res == nil {
		t.Fatal("cancelled multi-tenant run returned no partial result")
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("partial result has %d tenant entries, want 2 (no tenant may be dropped)", len(res.Tenants))
	}
	total := 0
	for i, tn := range res.Tenants {
		if tn.Name == "" || tn.Trace == "" {
			t.Errorf("tenant %d partial lost its identity: %+v", i, tn)
		}
		total += tn.Requests
	}
	if total != stopAt {
		t.Errorf("partial tenant requests sum to %d, want %d", total, stopAt)
	}
	if res.Requests != stopAt {
		t.Errorf("partial result counts %d requests, want %d", res.Requests, stopAt)
	}
}
