package core

import (
	"context"
	"errors"
)

// MatrixCell names one (trace, scheme, P/E) coordinate of a MatrixSpec.
// A cell is the unit of distribution: its replay depends only on the
// spec's (seed, scale, flash config) and the cell coordinates, so the
// same cell run anywhere — in-process, on another daemon — produces a
// bit-identical Result.
type MatrixCell struct {
	Trace  string
	Scheme string
	// PE is the P/E-baseline override; 0 means the config default.
	PE int
}

// Cells decomposes the spec into its cells, in the exact order
// RunMatrixContext returns their results: (trace order, P/E, scheme
// order). A coordinator that runs the cells independently and places
// each result at its cell's index reassembles RunMatrixContext's output.
func Cells(spec MatrixSpec) []MatrixCell {
	spec.normalize()
	return cellsOf(spec)
}

// cellsOf enumerates the cells of an already-normalized spec.
func cellsOf(spec MatrixSpec) []MatrixCell {
	cells := make([]MatrixCell, 0, len(spec.Traces)*len(spec.PEBaselines)*len(spec.Schemes))
	for _, tr := range spec.Traces {
		for _, pe := range spec.PEBaselines {
			for _, sc := range spec.Schemes {
				cells = append(cells, MatrixCell{Trace: tr, Scheme: sc, PE: pe})
			}
		}
	}
	return cells
}

// RunCell executes one cell of the spec. It is RunCellContext under
// context.Background().
func RunCell(spec MatrixSpec, cell MatrixCell) (*Result, error) {
	return RunCellContext(context.Background(), spec, cell)
}

// RunCellContext executes one cell of the spec — the same configuration,
// trace synthesis and replay a RunMatrixContext worker would perform for
// that cell — and returns its Result. The spec supplies seed, scale and
// the optional flash override; the cell supplies the coordinates. The
// result is bit-identical to the corresponding element of the full
// matrix, which is what makes cells safe to farm out and memoise.
func RunCellContext(ctx context.Context, spec MatrixSpec, cell MatrixCell) (*Result, error) {
	spec.normalize()
	tr, err := cachedTrace(cell.Trace, spec.Seed, spec.Scale)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	if spec.Flash != nil {
		cfg.Flash = *spec.Flash
	}
	if cell.PE > 0 {
		cfg.Flash.PEBaseline = cell.PE
	}
	cfg.Scheme = cell.Scheme
	cfg.Parallelism = spec.Parallelism
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if spec.OnProgress != nil {
		sim.OnProgress(spec.ProgressEvery, spec.OnProgress)
	}
	res, err := sim.RunContext(ctx, tr)
	if err != nil {
		// A cancelled replay stopped between requests, so the device is
		// consistent and can rejoin the snapshot cache's free pool.
		if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
			sim.Release()
		}
		return nil, err
	}
	sim.Release()
	res.PEBaseline = cfg.Flash.PEBaseline
	return res, nil
}
