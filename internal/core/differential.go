package core

import (
	"fmt"
	"sort"

	"ipusim/internal/check"
	"ipusim/internal/flash"
	"ipusim/internal/scheme"
	"ipusim/internal/trace"
)

// DifferentialSchemes returns the default comparison set of the
// differential runner: the three paper schemes in order, then every IPU
// ablation/extension variant, sorted for deterministic output.
func DifferentialSchemes() []string {
	names := append([]string(nil), SchemeNames...)
	var variants []string
	for name := range scheme.IPUVariants() {
		if name != "IPU" {
			variants = append(variants, name)
		}
	}
	sort.Strings(variants)
	return append(names, variants...)
}

// RunDifferential replays one trace through every named scheme with the
// full invariant harness attached and asserts the runs conserved
// identical logical state: each run's shadow store pins every live LSN to
// its latest version, and the final translation maps must agree on the
// mapped logical space across schemes. Empty schemes means
// DifferentialSchemes(). fc overrides the device geometry (nil keeps the
// evaluation default). The per-scheme results are returned even when the
// comparison fails, so callers can report what diverged.
func RunDifferential(tr *trace.Trace, schemes []string, fc *flash.Config) ([]*Result, error) {
	if len(schemes) == 0 {
		schemes = DifferentialSchemes()
	}
	results := make([]*Result, 0, len(schemes))
	sims := make([]*Simulator, 0, len(schemes))
	for _, name := range schemes {
		cfg := DefaultConfig()
		if fc != nil {
			cfg.Flash = *fc
		}
		cfg.Scheme = name
		cfg.Check = check.Full
		sim, err := New(cfg)
		if err != nil {
			return results, fmt.Errorf("core: differential: %w", err)
		}
		res, err := sim.Run(tr)
		if err != nil {
			return results, fmt.Errorf("core: differential: %s: %w", name, err)
		}
		results = append(results, res)
		sims = append(sims, sim)
	}
	ref := sims[0].Scheme().Device()
	for i := 1; i < len(sims); i++ {
		d := sims[i].Scheme().Device()
		if err := check.CompareStates(schemes[0], ref.Map, schemes[i], d.Map); err != nil {
			return results, fmt.Errorf("core: differential on %s: %w", tr.Name, err)
		}
	}
	return results, nil
}
