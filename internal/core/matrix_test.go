package core

import (
	"reflect"
	"testing"

	"ipusim/internal/trace"
)

// TestMatrixSpecNormalize pins the defaulting rules: empty fields widen to
// the full evaluation (all traces, all schemes, the config-default P/E
// sentinel) with the documented scale, seed and worker fallbacks.
func TestMatrixSpecNormalize(t *testing.T) {
	var m MatrixSpec
	m.normalize()
	if got, want := m.Traces, trace.ProfileNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("Traces = %v, want %v", got, want)
	}
	if got := m.Schemes; !reflect.DeepEqual(got, SchemeNames) {
		t.Errorf("Schemes = %v, want %v", got, SchemeNames)
	}
	if got := m.PEBaselines; !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("PEBaselines = %v, want [0] (config-default sentinel)", got)
	}
	if m.Scale != 0.05 {
		t.Errorf("Scale = %v, want 0.05", m.Scale)
	}
	if m.Seed != 42 {
		t.Errorf("Seed = %v, want 42", m.Seed)
	}
	if m.Workers <= 0 {
		t.Errorf("Workers = %d, want > 0 (GOMAXPROCS fallback)", m.Workers)
	}
}

// TestMatrixSpecNormalizeKeepsExplicit checks explicit values survive
// normalization and the defaulted Schemes slice is a copy, not an alias of
// the package-level SchemeNames.
func TestMatrixSpecNormalizeKeepsExplicit(t *testing.T) {
	m := MatrixSpec{
		Traces:      []string{"ts0"},
		Schemes:     []string{"IPU"},
		PEBaselines: []int{100, 2000},
		Scale:       0.01,
		Seed:        7,
		Workers:     3,
	}
	m.normalize()
	want := MatrixSpec{
		Traces:      []string{"ts0"},
		Schemes:     []string{"IPU"},
		PEBaselines: []int{100, 2000},
		Scale:       0.01,
		Seed:        7,
		Workers:     3,
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("normalize changed explicit fields: got %+v", m)
	}

	var def MatrixSpec
	def.normalize()
	def.Schemes[0] = "mutated"
	if SchemeNames[0] == "mutated" {
		t.Error("normalize aliased SchemeNames; defaults must be a copy")
	}
}

// TestRunMatrixWorkerEdges runs the same two-job matrix with more workers
// than jobs, exactly one worker, and the GOMAXPROCS default, demanding
// identical results: worker count is a throughput knob, never a semantic
// one, and a pool larger than the job list must not deadlock.
func TestRunMatrixWorkerEdges(t *testing.T) {
	fc := smallFlash()
	spec := func(workers int) MatrixSpec {
		return MatrixSpec{
			Traces:  []string{"ts0"},
			Schemes: []string{"Baseline", "IPU"},
			Scale:   0.002,
			Flash:   &fc,
			Workers: workers,
		}
	}
	var ref []*Result
	for _, workers := range []int{16, 1, 0} {
		res, err := RunMatrix(spec(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != 2 {
			t.Fatalf("workers=%d: results = %d, want 2", workers, len(res))
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range res {
			if got, want := canonical(t, res[i]), canonical(t, ref[i]); got != want {
				t.Errorf("workers=%d: result %d differs from reference", workers, i)
			}
		}
	}
}

// TestTraceCacheReuse checks RunMatrix returns the identical trace object
// across calls with the same (name, seed, scale) — the memoisation sweeps
// and benchmark loops rely on.
func TestTraceCacheReuse(t *testing.T) {
	a, err := cachedTrace("ts0", 99, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cachedTrace("ts0", 99, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (name, seed, scale) synthesised twice")
	}
	c, err := cachedTrace("ts0", 100, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seed returned the cached trace")
	}
}
