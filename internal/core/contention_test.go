package core

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
)

// smallContentionSpec keeps the study cheap: one default mix, two
// schemes, tiny traces on the test geometry.
func smallContentionSpec() TenantContentionSpec {
	fc := smallFlash()
	return TenantContentionSpec{
		Mixes:      DefaultTenantMixes()[:1],
		Schemes:    []string{"Baseline", "IPU"},
		Depth:      8,
		CacheBytes: 256 << 10,
		Seed:       13,
		Scale:      0.003,
		Flash:      &fc,
	}
}

// TestContentionCellsEnumeration pins the cell decomposition to the
// study's row order — mix, then buffer arm, then scheme — which both the
// worker pool and the cluster coordinator index results by.
func TestContentionCellsEnumeration(t *testing.T) {
	spec := TenantContentionSpec{
		Mixes:   DefaultTenantMixes(),
		Schemes: []string{"Baseline", "IPU"},
	}
	cells, err := ContentionCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	i := 0
	for _, mix := range spec.Mixes {
		for _, buffered := range []bool{false, true} {
			for _, scheme := range spec.Schemes {
				c := cells[i]
				if c.Mix.Name != mix.Name || c.Buffered != buffered || c.Scheme != scheme {
					t.Fatalf("cell %d = {%s %v %s}, want {%s %v %s}",
						i, c.Mix.Name, c.Buffered, c.Scheme, mix.Name, buffered, scheme)
				}
				i++
			}
		}
	}
	if _, err := ContentionCells(TenantContentionSpec{Mixes: []TenantMix{{Name: "empty"}}}); err == nil {
		t.Error("empty mix accepted")
	}
}

// TestContentionConcurrentMatchesSerial is the determinism check for the
// pooled study: rows from a concurrent run must be DeepEqual — results,
// order, everything — to a serial one, and each row must land at its
// cell's enumeration index.
func TestContentionConcurrentMatchesSerial(t *testing.T) {
	spec := smallContentionSpec()

	serial := spec
	serial.Workers = 1
	want, err := RunTenantContentionContext(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}

	concurrent := spec
	concurrent.Workers = 4
	got, err := RunTenantContentionContext(context.Background(), concurrent)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent contention rows diverged from serial:\n got %+v\nwant %+v", got, want)
	}
	cells, err := ContentionCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("%d rows for %d cells", len(got), len(cells))
	}
	for i, c := range cells {
		if got[i].Mix != c.Mix.Name || got[i].Buffered != c.Buffered || got[i].Scheme != c.Scheme {
			t.Fatalf("row %d = {%s %v %s}, want cell {%s %v %s}",
				i, got[i].Mix, got[i].Buffered, got[i].Scheme, c.Mix.Name, c.Buffered, c.Scheme)
		}
	}
}

// TestContentionCellMatchesStudyRow checks the coordinator's unit of
// dispatch: replaying one cell standalone must reproduce exactly the row
// the pooled study computes for it.
func TestContentionCellMatchesStudyRow(t *testing.T) {
	spec := smallContentionSpec()
	rows, err := RunTenantContentionContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := ContentionCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a buffered and an unbuffered cell.
	for _, i := range []int{1, len(cells) - 1} {
		row, err := RunContentionCellContext(context.Background(), spec, cells[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(row, rows[i]) {
			t.Errorf("standalone cell %d diverged from study row:\n got %+v\nwant %+v", i, row, rows[i])
		}
	}
}

// TestContentionProgressAndCancel checks the pooled study's aggregated
// progress (monotone non-decreasing totals over the whole study) and
// that cancelling mid-study returns ctx's error.
func TestContentionProgressAndCancel(t *testing.T) {
	spec := smallContentionSpec()
	spec.Workers = 2
	var calls, bad atomic.Int64
	var maxReplayed, total atomic.Int64
	spec.OnProgress = func(p Progress) {
		calls.Add(1)
		// Callbacks from different cells may be delivered out of order,
		// but every snapshot must stay within the study-wide total.
		if p.Total <= 0 || p.Replayed > p.Total {
			bad.Add(1)
		}
		for {
			m := maxReplayed.Load()
			if int64(p.Replayed) <= m || maxReplayed.CompareAndSwap(m, int64(p.Replayed)) {
				break
			}
		}
		total.Store(int64(p.Total))
	}
	if _, err := RunTenantContentionContext(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never fired")
	}
	if bad.Load() != 0 {
		t.Fatalf("%d malformed progress snapshots", bad.Load())
	}
	// The last-finishing cell's final callback carries the whole study.
	if maxReplayed.Load() != total.Load() {
		t.Fatalf("final aggregated progress %d, want the study total %d", maxReplayed.Load(), total.Load())
	}

	cancelSpec := smallContentionSpec()
	cancelSpec.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancelSpec.OnProgress = func(Progress) { cancel() }
	if _, err := RunTenantContentionContext(ctx, cancelSpec); err != context.Canceled {
		t.Fatalf("cancelled study returned %v, want context.Canceled", err)
	}
}
