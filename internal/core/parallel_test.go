package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"ipusim/internal/trace"
)

// parallelDiffScale keeps the 5-scheme x 6-trace differential fast while
// still replaying thousands of requests per cell (enough to exercise GC,
// retries and every metric the Result reports).
const parallelDiffScale = 0.01

// TestParallelMatchesSerial is the parallel-replay differential tier: for
// every registered scheme over every synthetic trace profile, a replay
// with the read pipeline enabled must produce a Result deeply equal — bit
// for bit, including the order-sensitive ReadBER float accumulation — to
// the serial replay of the same trace.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("differential tier is not a -short test")
	}
	for _, sc := range SchemeNames {
		for _, trName := range trace.ProfileNames() {
			sc, trName := sc, trName
			t.Run(sc+"/"+trName, func(t *testing.T) {
				t.Parallel()
				tr, err := cachedTrace(trName, 42, parallelDiffScale)
				if err != nil {
					t.Fatal(err)
				}
				run := func(parallelism int) *Result {
					cfg := DefaultConfig()
					cfg.Scheme = sc
					cfg.Parallelism = parallelism
					sim, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := sim.Run(tr)
					if err != nil {
						t.Fatal(err)
					}
					sim.Release()
					return res
				}
				serial := run(1)
				parallel := run(4)
				if !reflect.DeepEqual(serial, parallel) {
					t.Errorf("parallel replay diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
				}
			})
		}
	}
}

// TestParallelRepeatable replays one read-heavy trace several times at the
// same parallelism and asserts every repetition is identical — worker
// scheduling must never leak into the results.
func TestParallelRepeatable(t *testing.T) {
	tr, err := cachedTrace("ads", 42, parallelDiffScale)
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for i := 0; i < 3; i++ {
		cfg := DefaultConfig()
		cfg.Parallelism = 8
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		sim.Release()
		if first == nil {
			first = res
		} else if !reflect.DeepEqual(first, res) {
			t.Fatalf("repetition %d diverged:\nfirst: %+v\ngot:   %+v", i, first, res)
		}
	}
}

// TestParallelMatrixMatchesSerial runs a small sweep with and without
// intra-run parallelism and compares every cell.
func TestParallelMatrixMatchesSerial(t *testing.T) {
	spec := MatrixSpec{
		Traces:  []string{"ts0", "ads"},
		Schemes: []string{"Baseline", "IPU"},
		Scale:   parallelDiffScale,
	}
	serial, err := RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallelism = 4
	parallel, err := RunMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("matrix results with Parallelism=4 diverged from serial")
	}
}

// TestParallelCancelNoLeak cancels a parallel replay mid-run and asserts
// the pipeline's workers are flushed and joined — no goroutine leak, and
// the device is consistent enough to rejoin the snapshot free pool.
func TestParallelCancelNoLeak(t *testing.T) {
	tr, err := cachedTrace("ts0", 42, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		cfg := DefaultConfig()
		cfg.Parallelism = 4
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		sim.OnProgress(256, func(p Progress) {
			if p.Replayed >= 1024 {
				cancel()
			}
		})
		_, err = sim.RunContext(ctx, tr)
		cancel()
		if err != context.Canceled {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
		sim.Release()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancelled parallel runs: %d before, %d after",
		before, runtime.NumGoroutine())
}

// TestParallelSoak is the race-detector soak of the plane pipeline: several
// parallel replays run concurrently on separate devices, sharing only the
// snapshot templates and memo-free immutable state. Run via
// `make check-parallel` (go test -race).
func TestParallelSoak(t *testing.T) {
	traces := []string{"ts0", "ads", "lun2"}
	errc := make(chan error, len(traces))
	for _, name := range traces {
		go func(name string) {
			tr, err := cachedTrace(name, 42, parallelDiffScale)
			if err != nil {
				errc <- err
				return
			}
			cfg := DefaultConfig()
			cfg.Parallelism = 4
			sim, err := New(cfg)
			if err != nil {
				errc <- err
				return
			}
			_, err = sim.Run(tr)
			sim.Release()
			errc <- err
		}(name)
	}
	for range traces {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
