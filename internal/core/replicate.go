package core

import (
	"context"
	"fmt"
	"math"

	"ipusim/internal/metrics"
)

// ReplicaStats summarises one metric across replicated runs with
// different trace-synthesis seeds.
type ReplicaStats struct {
	Mean, Std float64
	N         int
}

// RelStd returns the coefficient of variation in percent.
func (r ReplicaStats) RelStd() float64 {
	if r.Mean == 0 {
		return 0
	}
	return r.Std / r.Mean * 100
}

func newReplicaStats(values []float64) ReplicaStats {
	s := ReplicaStats{N: len(values)}
	if s.N == 0 {
		return s
	}
	for _, v := range values {
		s.Mean += v
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		var acc float64
		for _, v := range values {
			d := v - s.Mean
			acc += d * d
		}
		s.Std = math.Sqrt(acc / float64(s.N-1))
	}
	return s
}

// Replication holds per-(trace, scheme) statistics over seeds.
type Replication struct {
	Latency ReplicaStats
	BER     ReplicaStats
	Erases  ReplicaStats
}

// RunReplicated runs the spec's matrix with n different seeds. It is
// RunReplicatedContext under context.Background().
func RunReplicated(spec MatrixSpec, n int) (map[[2]string]Replication, error) {
	return RunReplicatedContext(context.Background(), spec, n)
}

// RunReplicatedContext runs the spec's matrix with n different seeds
// (spec.Seed, spec.Seed+1, ...) and aggregates mean and standard deviation
// of the headline metrics per (trace, scheme). Use it to confirm the
// evaluation's conclusions are not artefacts of one synthetic trace
// instance. Cancelling ctx stops the replication mid-sweep.
func RunReplicatedContext(ctx context.Context, spec MatrixSpec, n int) (map[[2]string]Replication, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: replication needs at least 2 seeds, got %d", n)
	}
	spec.normalize()
	lat := map[[2]string][]float64{}
	ber := map[[2]string][]float64{}
	erases := map[[2]string][]float64{}
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)
		results, err := RunMatrixContext(ctx, s)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			k := [2]string{r.Trace, r.Scheme}
			lat[k] = append(lat[k], float64(r.AvgLatency))
			ber[k] = append(ber[k], r.ReadErrorRate)
			erases[k] = append(erases[k], float64(r.SLCErases))
		}
	}
	out := make(map[[2]string]Replication, len(lat))
	for k := range lat {
		out[k] = Replication{
			Latency: newReplicaStats(lat[k]),
			BER:     newReplicaStats(ber[k]),
			Erases:  newReplicaStats(erases[k]),
		}
	}
	return out, nil
}

// ReplicationTable renders the replication study. It is
// ReplicationTableContext under context.Background().
func ReplicationTable(spec MatrixSpec, n int) (*metrics.Table, error) {
	return ReplicationTableContext(context.Background(), spec, n)
}

// ReplicationTableContext renders the replication study, honouring ctx.
func ReplicationTableContext(ctx context.Context, spec MatrixSpec, n int) (*metrics.Table, error) {
	reps, err := RunReplicatedContext(ctx, spec, n)
	if err != nil {
		return nil, err
	}
	spec.normalize()
	t := metrics.NewTable(fmt.Sprintf("Replication over %d seeds (mean +- rel. std)", n),
		"Trace", "Scheme", "latency", "latRelStd", "BER", "berRelStd")
	for _, tr := range spec.Traces {
		for _, sc := range spec.Schemes {
			rep, ok := reps[[2]string{tr, sc}]
			if !ok {
				continue
			}
			t.AddRow(tr, sc,
				fmt.Sprintf("%.2fus", rep.Latency.Mean/1000),
				fmt.Sprintf("%.1f%%", rep.Latency.RelStd()),
				metrics.FormatSci(rep.BER.Mean),
				fmt.Sprintf("%.2f%%", rep.BER.RelStd()))
		}
	}
	return t, nil
}
