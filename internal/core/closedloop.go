package core

import (
	"context"
	"fmt"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
	"ipusim/internal/workload"
)

// ClosedLoopSpec is the options struct of the closed-loop run API. It
// replaces the positional RunClosedLoop(tr, depth) signatures: a spec
// names every knob, so new dimensions (tenants, the write-cache
// front-end) extend the struct instead of every call site. The zero value
// of every optional field means "off" / "default".
type ClosedLoopSpec struct {
	// Trace is the single-stream workload to replay. Exactly one of
	// Trace and Tenants must be set.
	Trace *trace.Trace
	// Depth bounds outstanding requests (>= 1): request i is not issued
	// before request i-depth has completed. With Tenants, Depth is split
	// among them by QoS weight (workload.DepthShares).
	Depth int
	// Tenants, when non-empty, replays K tenant streams interleaved onto
	// the one device: each tenant's synthetic trace is shaped by its spec
	// (burst re-timing, diurnal phase, partitioned addresses) and gated
	// by its own share of Depth. Results gain per-tenant percentiles and
	// a fairness index.
	Tenants []workload.TenantSpec
	// WriteCache, when non-nil with positive capacity, puts a host-DRAM
	// write buffer (internal/cache) between the driver and the device:
	// sub-page updates coalesce in DRAM and reach NAND only on pressure,
	// overlap or the final drain. The Result reports its counters.
	WriteCache *cache.Config
	// Seed and Scale default tenant trace synthesis (tenant specs may
	// override per tenant). Zero means the evaluation defaults (42, 0.05).
	Seed  int64
	Scale float64
	// OnProgress overrides the simulator's registered progress callback
	// for this run; ProgressEvery is its granularity in requests
	// (non-positive means DefaultProgressEvery).
	OnProgress    ProgressFunc
	ProgressEvery int
}

// DefaultTenantTrace is the profile a tenant without an explicit trace
// replays.
const DefaultTenantTrace = "ts0"

// normalize fills the spec's run-level defaults.
func (spec *ClosedLoopSpec) normalize() {
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	if spec.Scale == 0 {
		spec.Scale = 0.05
	}
}

// TenantResult is one tenant's share of a multi-tenant closed-loop run:
// its request counts, latency percentiles and closed-loop throughput.
type TenantResult struct {
	// Name and Trace identify the tenant and its workload profile.
	Name  string
	Trace string
	// Weight is the tenant's QoS share; DepthSlots is the number of
	// closed-loop queue slots that share bought it.
	Weight     float64
	DepthSlots int
	// Requests counts completed requests (Reads + Writes). For a
	// cancelled run these are the partials completed before the cancel.
	Requests, Reads, Writes int
	// Latency percentiles per direction, measured from issue to
	// completion (the device-facing convention the single-stream metrics
	// use). P999 is exact when the tenant completed fewer than 1000
	// requests of that direction (it is then the worst observation).
	AvgReadLatency, P50ReadLatency, P99ReadLatency, P999ReadLatency     time.Duration
	AvgWriteLatency, P50WriteLatency, P99WriteLatency, P999WriteLatency time.Duration
	// MakespanNS spans the tenant's first issue to its last completion;
	// ThroughputRPS is completed requests per second of that span.
	MakespanNS    int64
	ThroughputRPS float64
}

// tenantAccum accumulates one tenant's statistics during the replay.
type tenantAccum struct {
	readLat, writeLat metrics.LatencySummary
	firstIssue        int64
	lastEnd           int64
	issued            bool
}

// result converts the accumulator into the reported TenantResult.
func (a *tenantAccum) result(info workload.TenantInfo, slots int) TenantResult {
	r := TenantResult{
		Name:       info.Name,
		Trace:      info.Trace,
		Weight:     info.Weight,
		DepthSlots: slots,
		Reads:      int(a.readLat.Count),
		Writes:     int(a.writeLat.Count),

		AvgReadLatency:  a.readLat.Mean(),
		P50ReadLatency:  a.readLat.Percentile(0.50),
		P99ReadLatency:  a.readLat.Percentile(0.99),
		P999ReadLatency: a.readLat.Percentile(0.999),

		AvgWriteLatency:  a.writeLat.Mean(),
		P50WriteLatency:  a.writeLat.Percentile(0.50),
		P99WriteLatency:  a.writeLat.Percentile(0.99),
		P999WriteLatency: a.writeLat.Percentile(0.999),
	}
	r.Requests = r.Reads + r.Writes
	if a.issued {
		r.MakespanNS = a.lastEnd - a.firstIssue
		if r.MakespanNS <= 0 {
			r.MakespanNS = 1
		}
		r.ThroughputRPS = float64(r.Requests) / (float64(r.MakespanNS) / 1e9)
	}
	return r
}

// RunClosedLoopSpec replays a closed-loop workload described by spec,
// checking ctx between requests. With neither Tenants nor WriteCache set
// it is bit-identical to the legacy RunClosedLoop(tr, depth) replay.
//
// Multi-tenant runs return per-tenant partial results even when
// cancelled: the returned Result (alongside ctx's error) carries a
// TenantResult for every tenant — never a nil or short slice — so a
// caller tearing down a long run still sees who got how far.
func (s *Simulator) RunClosedLoopSpec(ctx context.Context, spec ClosedLoopSpec) (*Result, error) {
	if s.scheme == nil {
		return nil, ErrReleased
	}
	if spec.Depth < 1 {
		return nil, fmt.Errorf("core: queue depth %d must be at least 1", spec.Depth)
	}
	if spec.Trace != nil && len(spec.Tenants) > 0 {
		return nil, fmt.Errorf("core: spec sets both Trace and Tenants; pick one")
	}
	if spec.Trace == nil && len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("core: spec needs a Trace or at least one tenant")
	}
	if spec.WriteCache != nil && spec.WriteCache.CapacityBytes > 0 {
		if err := spec.WriteCache.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	spec.normalize()

	// Resolve the progress callback: the spec's own takes precedence,
	// else the simulator-registered one (the legacy wrappers' path).
	fn, every := spec.OnProgress, spec.ProgressEvery
	if fn == nil {
		fn, every = s.progress, s.progressEvery
	}
	if every <= 0 {
		every = DefaultProgressEvery
	}

	if len(spec.Tenants) > 0 {
		return s.runClosedLoopTenants(ctx, spec, fn, every)
	}
	return s.runClosedLoopStream(ctx, spec, fn, every)
}

// frontend returns the write/read entry points of the run: the scheme
// directly, or a fresh write buffer over it when the spec enables one.
func (s *Simulator) frontend(spec *ClosedLoopSpec) (
	write, read func(now int64, offset int64, size int) int64,
	wb *cache.WriteBuffer, err error,
) {
	write, read = s.scheme.Write, s.scheme.Read
	if spec.WriteCache != nil && spec.WriteCache.CapacityBytes > 0 {
		wb, err = cache.New(*spec.WriteCache, s.scheme)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: %w", err)
		}
		write, read = wb.Write, wb.Read
	}
	return write, read, wb, nil
}

// finishWriteCache drains the buffer at the replay's last completion time
// and snapshots its counters into the result, so buffered updates are
// accounted on NAND and buffered-vs-raw runs compare like for like.
func finishWriteCache(res *Result, wb *cache.WriteBuffer, now int64) {
	if wb == nil || res == nil {
		return
	}
	wb.Drain(now)
	st := wb.Stats()
	res.WriteCache = &st
}

// runClosedLoopStream replays the single-stream closed loop. Without a
// write buffer this is the legacy RunClosedLoop loop, unchanged — the
// spec path must be bit-identical to it.
func (s *Simulator) runClosedLoopStream(ctx context.Context, spec ClosedLoopSpec, fn ProgressFunc, every int) (*Result, error) {
	tr, depth := spec.Trace, spec.Depth
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	write, read, wb, err := s.frontend(&spec)
	if err != nil {
		return nil, err
	}
	done := ctx.Done()
	n := tr.Len()
	ring := make([]int64, depth)
	var last int64
	for i := 0; i < n; i++ {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		r := tr.At(i)
		issue := r.Time
		if gate := ring[i%depth]; gate > issue {
			issue = gate
		}
		var end int64
		if r.Op == trace.OpWrite {
			end = write(issue, r.Offset, r.Size)
		} else {
			end = read(issue, r.Offset, r.Size)
		}
		ring[i%depth] = end
		if end > last {
			last = end
		}
		if fn != nil && ((i+1)%every == 0 || i+1 == n) {
			m := s.scheme.Metrics()
			fn(Progress{Replayed: i + 1, Total: n, SimTime: end, GCs: m.GCs()})
		}
	}
	if err := s.checkFinal(); err != nil {
		return nil, err
	}
	res := s.Result(tr.Name, n)
	finishWriteCache(res, wb, last)
	return res, nil
}

// traceSource adapts *trace.Trace to workload.RecordSource.
type traceSource struct{ tr *trace.Trace }

func (s traceSource) Len() int { return s.tr.Len() }
func (s traceSource) Record(i int) (int64, bool, int64, int) {
	r := s.tr.At(i)
	return r.Time, r.Op == trace.OpWrite, r.Offset, r.Size
}

// buildTenantSchedule synthesises every tenant's trace and merges the
// shaped streams into one deterministic schedule.
func (s *Simulator) buildTenantSchedule(spec *ClosedLoopSpec) (*workload.Schedule, []workload.TenantSpec, error) {
	specs := workload.NormalizeTenants(spec.Tenants, DefaultTenantTrace, spec.Seed, spec.Scale)
	if err := workload.ValidateTenants(specs); err != nil {
		return nil, nil, err
	}
	sources := make([]workload.RecordSource, len(specs))
	for i, t := range specs {
		tr, err := cachedTrace(t.Trace, t.Seed, t.Scale)
		if err != nil {
			return nil, nil, err
		}
		sources[i] = traceSource{tr}
	}
	sched, err := workload.BuildSchedule(specs, sources, s.cfg.Flash.LogicalBytes())
	if err != nil {
		return nil, nil, err
	}
	return sched, specs, nil
}

// runClosedLoopTenants replays K tenant streams interleaved onto the
// device, each gated by its own share of the queue depth.
func (s *Simulator) runClosedLoopTenants(ctx context.Context, spec ClosedLoopSpec, fn ProgressFunc, every int) (*Result, error) {
	sched, specs, err := s.buildTenantSchedule(&spec)
	if err != nil {
		return nil, err
	}
	write, read, wb, err := s.frontend(&spec)
	if err != nil {
		return nil, err
	}

	k := len(specs)
	weights := make([]float64, k)
	for i, t := range specs {
		weights[i] = t.Weight
	}
	shares := workload.DepthShares(spec.Depth, weights)
	rings := make([][]int64, k)
	counts := make([]int, k)
	for i, sh := range shares {
		rings[i] = make([]int64, sh)
	}
	accums := make([]tenantAccum, k)

	// finish assembles the Result — for the completed run and for the
	// cancelled partial alike, so no tenant slice is ever left nil.
	var lastEnd int64
	finish := func(completed int) *Result {
		res := s.Result(sched.Name(), completed)
		if res == nil {
			return nil
		}
		finishWriteCache(res, wb, lastEnd)
		res.Tenants = make([]TenantResult, k)
		completedCounts := make([]int, k)
		for i := range accums {
			res.Tenants[i] = accums[i].result(sched.Tenants[i], shares[i])
			completedCounts[i] = res.Tenants[i].Requests
		}
		makespan := lastEnd
		res.FairnessIndex = metrics.FairnessIndex(
			workload.WeightedThroughputs(completedCounts, weights, makespan))
		return res
	}

	done := ctx.Done()
	n := sched.Len()
	for i := 0; i < n; i++ {
		if done != nil {
			select {
			case <-done:
				// Per-tenant partials: every tenant reports what it
				// completed before the cancel.
				return finish(i), ctx.Err()
			default:
			}
		}
		r := sched.At(i)
		ti := int(r.Tenant)
		slot := counts[ti] % shares[ti]
		issue := r.Time
		if gate := rings[ti][slot]; gate > issue {
			issue = gate
		}
		var end int64
		if r.Write {
			end = write(issue, r.Offset, int(r.Size))
		} else {
			end = read(issue, r.Offset, int(r.Size))
		}
		rings[ti][slot] = end
		counts[ti]++
		a := &accums[ti]
		if !a.issued {
			a.firstIssue = issue
			a.issued = true
		}
		if end > a.lastEnd {
			a.lastEnd = end
		}
		if end > lastEnd {
			lastEnd = end
		}
		if r.Write {
			a.writeLat.Record(end - issue)
		} else {
			a.readLat.Record(end - issue)
		}
		if fn != nil && ((i+1)%every == 0 || i+1 == n) {
			m := s.scheme.Metrics()
			fn(Progress{Replayed: i + 1, Total: n, SimTime: end, GCs: m.GCs()})
		}
	}
	if err := s.checkFinal(); err != nil {
		return nil, err
	}
	return finish(n), nil
}
