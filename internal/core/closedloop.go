package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/metrics"
	"ipusim/internal/scheme"
	"ipusim/internal/trace"
	"ipusim/internal/workload"
)

// ClosedLoopSpec is the options struct of the closed-loop run API. It
// replaces the positional RunClosedLoop(tr, depth) signatures: a spec
// names every knob, so new dimensions (tenants, the write-cache
// front-end) extend the struct instead of every call site. The zero value
// of every optional field means "off" / "default".
type ClosedLoopSpec struct {
	// Trace is the single-stream workload to replay. Exactly one of
	// Trace and Tenants must be set.
	Trace *trace.Trace
	// Depth bounds outstanding requests (>= 1): request i is not issued
	// before request i-depth has completed. With Tenants, Depth is split
	// among them by QoS weight (workload.DepthShares).
	Depth int
	// Tenants, when non-empty, replays K tenant streams interleaved onto
	// the one device: each tenant's synthetic trace is shaped by its spec
	// (burst re-timing, diurnal phase, partitioned addresses) and gated
	// by its own share of Depth. Results gain per-tenant percentiles and
	// a fairness index.
	Tenants []workload.TenantSpec
	// WriteCache, when non-nil with positive capacity, puts a host-DRAM
	// write buffer (internal/cache) between the driver and the device:
	// sub-page updates coalesce in DRAM and reach NAND only on pressure,
	// overlap or the final drain. The Result reports its counters.
	WriteCache *cache.Config
	// Seed and Scale default tenant trace synthesis (tenant specs may
	// override per tenant). Zero means the evaluation defaults (42, 0.05).
	Seed  int64
	Scale float64
	// OnProgress overrides the simulator's registered progress callback
	// for this run; ProgressEvery is its granularity in requests
	// (non-positive means DefaultProgressEvery).
	OnProgress    ProgressFunc
	ProgressEvery int
}

// DefaultTenantTrace is the profile a tenant without an explicit trace
// replays.
const DefaultTenantTrace = "ts0"

// normalize fills the spec's run-level defaults.
func (spec *ClosedLoopSpec) normalize() {
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	if spec.Scale == 0 {
		spec.Scale = 0.05
	}
}

// TenantResult is one tenant's share of a multi-tenant closed-loop run:
// its request counts, latency percentiles and closed-loop throughput.
type TenantResult struct {
	// Name and Trace identify the tenant and its workload profile.
	Name  string
	Trace string
	// Weight is the tenant's QoS share; DepthSlots is the number of
	// closed-loop queue slots that share bought it.
	Weight     float64
	DepthSlots int
	// Requests counts completed requests (Reads + Writes). For a
	// cancelled run these are the partials completed before the cancel.
	Requests, Reads, Writes int
	// Latency percentiles per direction, measured from issue to
	// completion (the device-facing convention the single-stream metrics
	// use). P999 is exact when the tenant completed fewer than 1000
	// requests of that direction (it is then the worst observation).
	AvgReadLatency, P50ReadLatency, P99ReadLatency, P999ReadLatency     time.Duration
	AvgWriteLatency, P50WriteLatency, P99WriteLatency, P999WriteLatency time.Duration
	// MakespanNS spans the tenant's first issue to its last completion;
	// ThroughputRPS is completed requests per second of that span.
	MakespanNS    int64
	ThroughputRPS float64
}

// tenantAccum accumulates one tenant's statistics during the replay.
type tenantAccum struct {
	readLat, writeLat metrics.LatencySummary
	firstIssue        int64
	lastEnd           int64
	issued            bool
}

// result converts the accumulator into the reported TenantResult.
func (a *tenantAccum) result(info workload.TenantInfo, slots int) TenantResult {
	r := TenantResult{
		Name:       info.Name,
		Trace:      info.Trace,
		Weight:     info.Weight,
		DepthSlots: slots,
		Reads:      int(a.readLat.Count),
		Writes:     int(a.writeLat.Count),

		AvgReadLatency:  a.readLat.Mean(),
		P50ReadLatency:  a.readLat.Percentile(0.50),
		P99ReadLatency:  a.readLat.Percentile(0.99),
		P999ReadLatency: a.readLat.Percentile(0.999),

		AvgWriteLatency:  a.writeLat.Mean(),
		P50WriteLatency:  a.writeLat.Percentile(0.50),
		P99WriteLatency:  a.writeLat.Percentile(0.99),
		P999WriteLatency: a.writeLat.Percentile(0.999),
	}
	r.Requests = r.Reads + r.Writes
	if a.issued {
		r.MakespanNS = a.lastEnd - a.firstIssue
		if r.MakespanNS <= 0 {
			r.MakespanNS = 1
		}
		r.ThroughputRPS = float64(r.Requests) / (float64(r.MakespanNS) / 1e9)
	}
	return r
}

// RunClosedLoopSpec replays a closed-loop workload described by spec,
// checking ctx periodically (every few dozen requests, and immediately
// after every progress callback — so a callback that cancels stops the
// replay at exactly that request). With neither Tenants nor WriteCache
// set, and Parallelism off, it is bit-identical to the legacy
// RunClosedLoop(tr, depth) replay.
//
// When the simulator's Config.Parallelism exceeds 1, per-request BER/ECC
// read evaluation runs on the intra-run pipeline's workers: reads
// dispatch in issue order on the replay thread (all device state
// mutation stays there) and their completion times land at commit, in
// dispatch order. A queue-depth gate waiting on an unresolved read forces
// exactly the pending commits it needs. The replay is bit-identical to
// the serial one — parallelism only changes wall-clock time.
//
// Multi-tenant runs return per-tenant partial results even when
// cancelled: the returned Result (alongside ctx's error) carries a
// TenantResult for every tenant — never a nil or short slice — so a
// caller tearing down a long run still sees who got how far.
func (s *Simulator) RunClosedLoopSpec(ctx context.Context, spec ClosedLoopSpec) (*Result, error) {
	if s.scheme == nil {
		return nil, ErrReleased
	}
	if spec.Depth < 1 {
		return nil, fmt.Errorf("core: queue depth %d must be at least 1", spec.Depth)
	}
	if spec.Trace != nil && len(spec.Tenants) > 0 {
		return nil, fmt.Errorf("core: spec sets both Trace and Tenants; pick one")
	}
	if spec.Trace == nil && len(spec.Tenants) == 0 {
		return nil, fmt.Errorf("core: spec needs a Trace or at least one tenant")
	}
	if spec.WriteCache != nil && spec.WriteCache.CapacityBytes > 0 {
		if err := spec.WriteCache.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	spec.normalize()

	// Resolve the progress callback: the spec's own takes precedence,
	// else the simulator-registered one (the legacy wrappers' path).
	fn, every := spec.OnProgress, spec.ProgressEvery
	if fn == nil {
		fn, every = s.progress, s.progressEvery
	}
	if every <= 0 {
		every = DefaultProgressEvery
	}

	if len(spec.Tenants) > 0 {
		return s.runClosedLoopTenants(ctx, spec, fn, every)
	}
	return s.runClosedLoopStream(ctx, spec, fn, every)
}

// frontend returns the write/read entry points of the run: the scheme
// directly, or a fresh write buffer over it when the spec enables one.
func (s *Simulator) frontend(spec *ClosedLoopSpec) (
	write, read func(now int64, offset int64, size int) int64,
	wb *cache.WriteBuffer, err error,
) {
	write, read = s.scheme.Write, s.scheme.Read
	if spec.WriteCache != nil && spec.WriteCache.CapacityBytes > 0 {
		wb, err = cache.New(*spec.WriteCache, s.scheme)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: %w", err)
		}
		write, read = wb.Write, wb.Read
	}
	return write, read, wb, nil
}

// finishWriteCache drains the buffer at the replay's last completion time
// and snapshots its counters into the result, so buffered updates are
// accounted on NAND and buffered-vs-raw runs compare like for like.
func finishWriteCache(res *Result, wb *cache.WriteBuffer, now int64) {
	if wb == nil || res == nil {
		return
	}
	wb.Drain(now)
	st := wb.Stats()
	res.WriteCache = &st
}

// pendingEnd marks a queue-depth gate slot whose read is still in flight
// on the pipeline; the true completion time arrives at commit. No real
// completion time can collide with it.
const pendingEnd = math.MinInt64

// pendingRead identifies one in-flight read: which gate slot its
// completion must fill and the issue time its latency is measured from.
type pendingRead struct {
	ti, slot int32
	issue    int64
}

// pendingQueue is a fixed-capacity FIFO of in-flight reads, pre-sized to
// the pipeline's bound so the steady-state loop never grows it.
type pendingQueue struct {
	buf        []pendingRead
	head, tail int
}

func (q *pendingQueue) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	if cap(q.buf) < capacity {
		q.buf = make([]pendingRead, capacity)
	}
	q.buf = q.buf[:cap(q.buf)]
	q.head, q.tail = 0, 0
}

func (q *pendingQueue) push(p pendingRead) {
	if q.tail-q.head == len(q.buf) {
		// The pipeline bounds in-flight reads below our pre-size; growing
		// here would mean that invariant broke.
		panic("core: pending-read queue overflow")
	}
	q.buf[q.tail%len(q.buf)] = p
	q.tail++
}

func (q *pendingQueue) pop() pendingRead {
	if q.head == q.tail {
		panic("core: read commit with no pending read")
	}
	p := q.buf[q.head%len(q.buf)]
	q.head++
	return p
}

// stride is how many requests the replay loops go between context-
// cancellation polls: one atomic-free modulo check per request, one
// channel poll per stride. Progress callbacks get an additional immediate
// poll so a cancelling callback stops the replay at that exact request.
const stride = 64

// streamLoop is the single-stream closed-loop replay, factored into a
// struct so the steady-state allocation tests can drive the exact
// production step path over a warm simulator.
type streamLoop struct {
	tr          *trace.Trace
	write, read func(now int64, offset int64, size int) int64
	wb          *cache.WriteBuffer
	depth       int
	ring        []int64
	last        int64

	// dev is non-nil when the read pipeline is running; pend tracks its
	// in-flight reads in dispatch order.
	dev  *scheme.Device
	pend pendingQueue
}

// onReadCommit is the device's read-commit hook: called once per read
// request, at commit, in dispatch order. It resolves the oldest pending
// read's gate slot with the true completion time.
func (l *streamLoop) onReadCommit(end int64) {
	p := l.pend.pop()
	l.ring[p.slot] = end
	if end > l.last {
		l.last = end
	}
}

// resolve blocks until the gate slot's pending read commits and returns
// the slot's completion time.
func (l *streamLoop) resolve(slot int) int64 {
	for l.ring[slot] == pendingEnd {
		if !l.dev.CommitNextRead() {
			panic("core: pending read with an idle pipeline")
		}
	}
	return l.ring[slot]
}

// step replays request i and returns its completion time — or pendingEnd
// for a read still in flight, whose gate slot is i%depth.
func (l *streamLoop) step(i int) int64 {
	r := l.tr.At(i)
	slot := i % l.depth
	issue := r.Time
	gate := l.ring[slot]
	if gate == pendingEnd {
		gate = l.resolve(slot)
	}
	if gate > issue {
		issue = gate
	}
	if r.Op == trace.OpWrite {
		end := l.write(issue, r.Offset, r.Size)
		l.ring[slot] = end
		if end > l.last {
			l.last = end
		}
		return end
	}
	if l.dev != nil {
		before := l.dev.DispatchedReads()
		end := l.read(issue, r.Offset, r.Size)
		if l.dev.DispatchedReads() != before {
			// The device dispatched this read onto the pipeline: its
			// returned time excludes ECC-dependent extras; the true end
			// arrives at commit through the hook.
			l.ring[slot] = pendingEnd
			l.pend.push(pendingRead{slot: int32(slot), issue: issue})
			return pendingEnd
		}
		// Served by the DRAM write cache — no device read, final time.
		l.ring[slot] = end
		if end > l.last {
			l.last = end
		}
		return end
	}
	end := l.read(issue, r.Offset, r.Size)
	l.ring[slot] = end
	if end > l.last {
		l.last = end
	}
	return end
}

// newStreamLoop builds the replay state for a single-stream run,
// pre-sizing everything the hot loop touches.
func (s *Simulator) newStreamLoop(spec *ClosedLoopSpec) (*streamLoop, error) {
	if err := spec.Trace.Validate(); err != nil {
		return nil, err
	}
	write, read, wb, err := s.frontend(spec)
	if err != nil {
		return nil, err
	}
	return &streamLoop{
		tr:    spec.Trace,
		write: write,
		read:  read,
		wb:    wb,
		depth: spec.Depth,
		ring:  make([]int64, spec.Depth),
	}, nil
}

// runClosedLoopStream replays the single-stream closed loop. Without a
// write buffer or parallelism this computes exactly what the legacy
// RunClosedLoop loop did — the spec path must be bit-identical to it.
func (s *Simulator) runClosedLoopStream(ctx context.Context, spec ClosedLoopSpec, fn ProgressFunc, every int) (*Result, error) {
	l, err := s.newStreamLoop(&spec)
	if err != nil {
		return nil, err
	}
	if s.cfg.Parallelism > 1 {
		d := s.scheme.Device()
		d.StartReadPipeline(s.cfg.Parallelism)
		defer d.StopReadPipeline()
		d.OnReadCommit(l.onReadCommit)
		l.pend.init(d.PendingReadCapacity())
		l.dev = d
	}
	met := s.scheme.Metrics()
	done := ctx.Done()
	n := l.tr.Len()
	for i := 0; i < n; i++ {
		if done != nil && i%stride == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		end := l.step(i)
		if fn != nil && ((i+1)%every == 0 || i+1 == n) {
			if l.dev != nil {
				// Progress snapshots read the metrics, so in-flight reads
				// commit first; that also resolves this request's end and
				// keeps reported GC counts identical to a serial replay's.
				l.dev.FlushReads()
			}
			if end == pendingEnd {
				end = l.ring[i%l.depth]
			}
			fn(Progress{Replayed: i + 1, Total: n, SimTime: end, GCs: met.GCs()})
			if done != nil {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
		}
	}
	if l.dev != nil {
		l.dev.FlushReads()
	}
	if err := s.checkFinal(); err != nil {
		return nil, err
	}
	res := s.Result(l.tr.Name, n)
	finishWriteCache(res, l.wb, l.last)
	return res, nil
}

// traceSource adapts *trace.Trace to workload.RecordSource.
type traceSource struct{ tr *trace.Trace }

func (s traceSource) Len() int { return s.tr.Len() }
func (s traceSource) Record(i int) (int64, bool, int64, int) {
	r := s.tr.At(i)
	return r.Time, r.Op == trace.OpWrite, r.Offset, r.Size
}

// buildTenantSchedule synthesises every tenant's trace and merges the
// shaped streams into one deterministic schedule.
func (s *Simulator) buildTenantSchedule(spec *ClosedLoopSpec) (*workload.Schedule, []workload.TenantSpec, error) {
	specs := workload.NormalizeTenants(spec.Tenants, DefaultTenantTrace, spec.Seed, spec.Scale)
	if err := workload.ValidateTenants(specs); err != nil {
		return nil, nil, err
	}
	sources := make([]workload.RecordSource, len(specs))
	for i, t := range specs {
		tr, err := cachedTrace(t.Trace, t.Seed, t.Scale)
		if err != nil {
			return nil, nil, err
		}
		sources[i] = traceSource{tr}
	}
	sched, err := workload.BuildSchedule(specs, sources, s.cfg.Flash.LogicalBytes())
	if err != nil {
		return nil, nil, err
	}
	return sched, specs, nil
}

// tenantLoop is the multi-tenant closed-loop replay state: every slice
// the hot loop touches is allocated once up front (the gate rings share
// one backing array), so steady-state request processing allocates
// nothing.
type tenantLoop struct {
	sched       *workload.Schedule
	write, read func(now int64, offset int64, size int) int64
	wb          *cache.WriteBuffer
	shares      []int
	rings       [][]int64
	counts      []int
	accums      []tenantAccum
	lastEnd     int64

	dev  *scheme.Device
	pend pendingQueue
}

// onReadCommit resolves the oldest pending read: fills its gate slot and
// folds its latency into its tenant's accumulator. Commits arrive in
// dispatch order, so reads fold in the same order the serial loop
// records them.
func (l *tenantLoop) onReadCommit(end int64) {
	p := l.pend.pop()
	l.rings[p.ti][p.slot] = end
	a := &l.accums[p.ti]
	if end > a.lastEnd {
		a.lastEnd = end
	}
	if end > l.lastEnd {
		l.lastEnd = end
	}
	a.readLat.Record(end - p.issue)
}

// resolve blocks until tenant ti's gate slot holds a real completion
// time and returns it.
func (l *tenantLoop) resolve(ti, slot int) int64 {
	for l.rings[ti][slot] == pendingEnd {
		if !l.dev.CommitNextRead() {
			panic("core: pending read with an idle pipeline")
		}
	}
	return l.rings[ti][slot]
}

// step replays schedule entry i. It returns the request's completion
// time — or pendingEnd for an in-flight read — plus the tenant and gate
// slot it occupies, so the caller can resolve the time after a flush.
func (l *tenantLoop) step(i int) (end int64, ti, slot int) {
	r := l.sched.At(i)
	ti = int(r.Tenant)
	slot = l.counts[ti] % l.shares[ti]
	issue := r.Time
	gate := l.rings[ti][slot]
	if gate == pendingEnd {
		gate = l.resolve(ti, slot)
	}
	if gate > issue {
		issue = gate
	}
	a := &l.accums[ti]
	if !a.issued {
		a.firstIssue = issue
		a.issued = true
	}
	l.counts[ti]++
	if r.Write {
		end = l.write(issue, r.Offset, int(r.Size))
		l.rings[ti][slot] = end
		if end > a.lastEnd {
			a.lastEnd = end
		}
		if end > l.lastEnd {
			l.lastEnd = end
		}
		a.writeLat.Record(end - issue)
		return end, ti, slot
	}
	if l.dev != nil {
		before := l.dev.DispatchedReads()
		end = l.read(issue, r.Offset, int(r.Size))
		if l.dev.DispatchedReads() != before {
			l.rings[ti][slot] = pendingEnd
			l.pend.push(pendingRead{ti: int32(ti), slot: int32(slot), issue: issue})
			return pendingEnd, ti, slot
		}
		// DRAM write-cache hit: no device read was dispatched, the
		// returned time is final.
	} else {
		end = l.read(issue, r.Offset, int(r.Size))
	}
	l.rings[ti][slot] = end
	if end > a.lastEnd {
		a.lastEnd = end
	}
	if end > l.lastEnd {
		l.lastEnd = end
	}
	a.readLat.Record(end - issue)
	return end, ti, slot
}

// newTenantLoop builds the replay state for a multi-tenant run: the
// merged schedule, the per-tenant gate rings carved from one backing
// array, and the per-tenant accumulators.
func (s *Simulator) newTenantLoop(spec *ClosedLoopSpec) (*tenantLoop, []workload.TenantSpec, error) {
	sched, specs, err := s.buildTenantSchedule(spec)
	if err != nil {
		return nil, nil, err
	}
	write, read, wb, err := s.frontend(spec)
	if err != nil {
		return nil, nil, err
	}
	k := len(specs)
	weights := make([]float64, k)
	for i, t := range specs {
		weights[i] = t.Weight
	}
	shares := workload.DepthShares(spec.Depth, weights)
	total := 0
	for _, sh := range shares {
		total += sh
	}
	slots := make([]int64, total)
	rings := make([][]int64, k)
	for i, sh := range shares {
		rings[i], slots = slots[:sh:sh], slots[sh:]
	}
	return &tenantLoop{
		sched:  sched,
		write:  write,
		read:   read,
		wb:     wb,
		shares: shares,
		rings:  rings,
		counts: make([]int, k),
		accums: make([]tenantAccum, k),
	}, specs, nil
}

// runClosedLoopTenants replays K tenant streams interleaved onto the
// device, each gated by its own share of the queue depth.
func (s *Simulator) runClosedLoopTenants(ctx context.Context, spec ClosedLoopSpec, fn ProgressFunc, every int) (*Result, error) {
	l, specs, err := s.newTenantLoop(&spec)
	if err != nil {
		return nil, err
	}
	if s.cfg.Parallelism > 1 {
		d := s.scheme.Device()
		d.StartReadPipeline(s.cfg.Parallelism)
		defer d.StopReadPipeline()
		d.OnReadCommit(l.onReadCommit)
		l.pend.init(d.PendingReadCapacity())
		l.dev = d
	}

	k := len(specs)
	weights := make([]float64, k)
	for i, t := range specs {
		weights[i] = t.Weight
	}

	// finish assembles the Result — for the completed run and for the
	// cancelled partial alike, so no tenant slice is ever left nil.
	finish := func(completed int) *Result {
		if l.dev != nil {
			// Fold every in-flight read before snapshotting: a cancelled
			// partial must account everything it issued.
			l.dev.FlushReads()
		}
		res := s.Result(l.sched.Name(), completed)
		if res == nil {
			return nil
		}
		finishWriteCache(res, l.wb, l.lastEnd)
		res.Tenants = make([]TenantResult, k)
		completedCounts := make([]int, k)
		for i := range l.accums {
			res.Tenants[i] = l.accums[i].result(l.sched.Tenants[i], l.shares[i])
			completedCounts[i] = res.Tenants[i].Requests
		}
		res.FairnessIndex = metrics.FairnessIndex(
			workload.WeightedThroughputs(completedCounts, weights, l.lastEnd))
		return res
	}

	met := s.scheme.Metrics()
	done := ctx.Done()
	n := l.sched.Len()
	for i := 0; i < n; i++ {
		if done != nil && i%stride == 0 {
			select {
			case <-done:
				// Per-tenant partials: every tenant reports what it
				// completed before the cancel.
				return finish(i), ctx.Err()
			default:
			}
		}
		end, ti, slot := l.step(i)
		if fn != nil && ((i+1)%every == 0 || i+1 == n) {
			if l.dev != nil {
				l.dev.FlushReads()
			}
			if end == pendingEnd {
				end = l.rings[ti][slot]
			}
			fn(Progress{Replayed: i + 1, Total: n, SimTime: end, GCs: met.GCs()})
			if done != nil {
				select {
				case <-done:
					return finish(i + 1), ctx.Err()
				default:
				}
			}
		}
	}
	if l.dev != nil {
		l.dev.FlushReads()
	}
	if err := s.checkFinal(); err != nil {
		return nil, err
	}
	return finish(n), nil
}
