package check

import (
	"strings"
	"testing"

	"ipusim/internal/flash"
	"ipusim/internal/ftl"
)

// tinyCfg is just large enough to pass flash.Config validation.
func tinyCfg() *flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.Blocks = 16
	c.SLCRatio = 0.25 // 4 SLC blocks
	c.SLCPagesPerBlock = 4
	c.MLCPagesPerBlock = 8
	c.LogicalSubpages = c.MLCSubpages() / 2
	return &c
}

// fixture builds an array, a map and a checker over them.
func fixture(t *testing.T, level Level, prefilled bool) (*flash.Config, *flash.Array, *ftl.Map, *Checker) {
	t.Helper()
	cfg := tinyCfg()
	arr, err := flash.NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := ftl.NewMap(cfg.LogicalSubpages)
	return cfg, arr, m, New(level, cfg, arr, m, prefilled)
}

// program writes n LSNs starting at base into consecutive free slots of a
// page and records the mappings.
func program(t *testing.T, arr *flash.Array, m *ftl.Map, blk, page int, now int64, base flash.LSN, n int) {
	t.Helper()
	pg := arr.PageOf(flash.NewPPA(blk, page, 0))
	writes := make([]flash.SlotWrite, 0, n)
	for s := range pg.Slots {
		if len(writes) == n {
			break
		}
		if pg.Slots[s].State == flash.SubFree {
			writes = append(writes, flash.SlotWrite{Slot: s, LSN: base + flash.LSN(len(writes))})
		}
	}
	if len(writes) < n {
		t.Fatalf("block %d page %d has fewer than %d free slots", blk, page, n)
	}
	if _, err := arr.ProgramPage(blk, page, writes, now); err != nil {
		t.Fatal(err)
	}
	for _, w := range writes {
		m.Set(w.LSN, flash.NewPPA(blk, page, w.Slot))
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"": Off, "off": Off, "shadow": Shadow, "full": Full} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("paranoid"); err == nil {
		t.Error("unknown level accepted")
	}
	if Full.String() != "full" || Off.String() != "off" {
		t.Error("level names drifted")
	}
}

func TestCheckerHappyPath(t *testing.T) {
	_, arr, m, c := fixture(t, Full, false)
	program(t, arr, m, 0, 0, 100, 100, 3)
	c.NoteWrite(100, []flash.LSN{100, 101, 102})
	if err := c.CheckRead(200, []flash.LSN{100, 102}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckEvent(200, "test"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckFinal(); err != nil {
		t.Fatal(err)
	}
	if c.Sweeps == 0 || c.ReadsChecked != 2 {
		t.Errorf("sweeps=%d readsChecked=%d", c.Sweeps, c.ReadsChecked)
	}
}

func TestCheckerOffIsFree(t *testing.T) {
	_, _, _, c := fixture(t, Off, false)
	c.NoteWrite(1, []flash.LSN{0})
	// Nothing was actually written, but Off must never complain.
	if err := c.CheckFinal(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckerDetectsLostWrite(t *testing.T) {
	_, _, _, c := fixture(t, Shadow, false)
	c.NoteWrite(10, []flash.LSN{5})
	err := c.CheckFinal()
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("lost write not caught: %v", err)
	}
}

func TestCheckerDetectsCrossWiredMapping(t *testing.T) {
	_, arr, m, c := fixture(t, Full, false)
	program(t, arr, m, 0, 0, 50, 120, 2)
	c.NoteWrite(50, []flash.LSN{120, 121})
	// Cross-wire: LSN 120 now points at the slot holding LSN 121.
	m.Set(120, m.Get(121))
	if err := c.CheckRead(60, []flash.LSN{120}); err == nil {
		t.Fatal("read of cross-wired mapping not caught")
	}
	if err := c.CheckEvent(60, "test"); err == nil {
		t.Fatal("structural sweep missed the orphaned valid copy")
	}
}

func TestCheckerDetectsStaleVersion(t *testing.T) {
	_, arr, m, c := fixture(t, Shadow, false)
	program(t, arr, m, 0, 0, 5, 150, 1)
	c.NoteWrite(5, []flash.LSN{150})
	// The host wrote again at t=80, but the device still holds t=5 data.
	c.NoteWrite(80, []flash.LSN{150})
	err := c.CheckRead(90, []flash.LSN{150})
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale version not caught: %v", err)
	}
}

func TestCheckerDetectsMappedTrim(t *testing.T) {
	_, arr, m, c := fixture(t, Shadow, false)
	program(t, arr, m, 0, 0, 5, 17, 1)
	c.NoteWrite(5, []flash.LSN{17})
	c.NoteTrim([]flash.LSN{17})
	// The scheme "forgot" to unmap.
	err := c.CheckFinal()
	if err == nil || !strings.Contains(err.Error(), "trimmed") {
		t.Fatalf("mapped trim not caught: %v", err)
	}
}

func TestCheckerDetectsBudgetViolation(t *testing.T) {
	cfg, arr, m, c := fixture(t, Full, false)
	program(t, arr, m, 0, 0, 5, 0, 1)
	c.NoteWrite(5, []flash.LSN{0})
	arr.PageOf(flash.NewPPA(0, 0, 0)).ProgramCount = uint8(cfg.MaxProgramsPerSLCPage + 1)
	if err := c.CheckEvent(6, "test"); err == nil {
		t.Fatal("program-budget violation not caught")
	}
}

func TestCheckerDetectsEraseRegression(t *testing.T) {
	_, arr, _, c := fixture(t, Full, false)
	arr.Block(2).EraseCount = 3
	if err := c.CheckEvent(1, "snapshot"); err != nil {
		t.Fatal(err)
	}
	arr.Block(2).EraseCount = 1
	err := c.CheckEvent(2, "test")
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("erase regression not caught: %v", err)
	}
}

func TestCheckerGaugeDrift(t *testing.T) {
	cfg, arr, m, c := fixture(t, Full, false)
	program(t, arr, m, 0, 0, 5, 0, 2)
	free := 0
	for id := 0; id < cfg.SLCBlocks(); id++ {
		free += arr.Block(id).FreePages()
	}
	if err := c.CheckSLCGauges(free, 2, 1); err != nil {
		t.Fatalf("correct gauges rejected: %v", err)
	}
	if err := c.CheckSLCGauges(free-1, 2, 1); err == nil {
		t.Error("free-page gauge drift not caught")
	}
	if err := c.CheckSLCGauges(free, 3, 1); err == nil {
		t.Error("valid-subpage gauge drift not caught")
	}
	if err := c.CheckSLCGauges(free, 2, 2); err == nil {
		t.Error("pages-with-valid gauge drift not caught")
	}
}

func TestCheckerPrefilledConservation(t *testing.T) {
	cfg, arr, m, c := fixture(t, Shadow, true)
	// Pre-fill the whole logical space into MLC block pages, 4 per page.
	slots := cfg.SlotsPerPage()
	blk := cfg.SLCBlocks() // first MLC block
	page := 0
	for l := 0; l < cfg.LogicalSubpages; l += slots {
		n := slots
		if l+n > cfg.LogicalSubpages {
			n = cfg.LogicalSubpages - l
		}
		program(t, arr, m, blk, page, 0, flash.LSN(l), n)
		page++
		if page == cfg.MLCPagesPerBlock {
			blk++
			page = 0
		}
	}
	if err := c.CheckFinal(); err != nil {
		t.Fatal(err)
	}
	// Losing any one prefilled LSN must break conservation.
	if err := arr.Invalidate(m.Get(0)); err != nil {
		t.Fatal(err)
	}
	m.Unmap(0)
	if err := c.CheckFinal(); err == nil {
		t.Fatal("lost prefilled LSN not caught")
	}
}

func TestCompareStates(t *testing.T) {
	a := ftl.NewMap(8)
	b := ftl.NewMap(8)
	a.Set(3, flash.NewPPA(0, 0, 0))
	b.Set(3, flash.NewPPA(5, 1, 2)) // different location is fine
	if err := CompareStates("A", a, "B", b); err != nil {
		t.Fatalf("equivalent states rejected: %v", err)
	}
	b.Unmap(3)
	if err := CompareStates("A", a, "B", b); err == nil {
		t.Fatal("diverged states accepted")
	}
	if err := CompareStates("A", a, "C", ftl.NewMap(9)); err == nil {
		t.Fatal("different logical spaces accepted")
	}
}
