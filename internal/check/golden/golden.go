// Package golden pins headline metrics to snapshot files so behavioural
// drift fails tier-1 tests with a readable diff. Snapshots live under the
// calling package's testdata/golden/ directory; regenerate them with
//
//	go test ./... -run Golden -update
//
// The package is imported by test files only, so the -update flag never
// leaks into production binaries.
package golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden snapshot files instead of comparing")

// Check marshals v to indented JSON and compares it against the snapshot
// at path. With -update the snapshot is rewritten instead. A mismatch
// fails the test with a line diff of the drifted counters.
func Check(t testing.TB, path string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("golden: marshal %s: %v", path, err)
	}
	got = append(got, '\n')
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("golden: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("golden: %v", err)
		}
		t.Logf("golden: wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: missing snapshot %s (run go test -update to create it): %v", path, err)
	}
	if d := Diff(string(want), string(got)); d != "" {
		t.Errorf("golden: %s drifted (run go test -update to accept):\n%s", path, d)
	}
}

// Diff returns a unified-style line diff of want vs got, or "" when they
// are identical. Output is capped so a wholly rewritten snapshot stays
// readable.
func Diff(want, got string) string {
	if want == got {
		return ""
	}
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	n := len(wantLines)
	if len(gotLines) > n {
		n = len(gotLines)
	}
	var sb strings.Builder
	const maxLines = 40
	shown := 0
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w == g {
			continue
		}
		if shown >= maxLines {
			fmt.Fprintf(&sb, "... (more differences elided)\n")
			break
		}
		if i < len(wantLines) {
			fmt.Fprintf(&sb, "line %d: -%s\n", i+1, w)
		}
		if i < len(gotLines) {
			fmt.Fprintf(&sb, "line %d: +%s\n", i+1, g)
		}
		shown++
	}
	return sb.String()
}
