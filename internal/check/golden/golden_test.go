package golden

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDiff(t *testing.T) {
	if d := Diff("a\nb\n", "a\nb\n"); d != "" {
		t.Errorf("identical inputs produced a diff: %q", d)
	}
	d := Diff("a\nb\nc\n", "a\nX\nc\n")
	if !strings.Contains(d, "line 2") || !strings.Contains(d, "-b") || !strings.Contains(d, "+X") {
		t.Errorf("diff not readable: %q", d)
	}
	// Extra trailing lines on either side must show up too.
	if d := Diff("a\n", "a\nb\n"); !strings.Contains(d, "+b") {
		t.Errorf("added line missing from diff: %q", d)
	}
	if d := Diff("a\nb\n", "a\n"); !strings.Contains(d, "-b") {
		t.Errorf("removed line missing from diff: %q", d)
	}
}

func TestDiffCapsOutput(t *testing.T) {
	var a, b strings.Builder
	for i := 0; i < 100; i++ {
		a.WriteString("same\n")
		b.WriteString("diff\n")
	}
	d := Diff(a.String(), b.String())
	if !strings.Contains(d, "elided") {
		t.Errorf("long diff not elided: %d bytes", len(d))
	}
}

func TestCheckRoundTrip(t *testing.T) {
	type snap struct {
		Name  string
		Count int
	}
	path := filepath.Join(t.TempDir(), "snap.json")

	// First run in update mode writes the file.
	*update = true
	defer func() { *update = false }()
	Check(t, path, snap{Name: "x", Count: 3})

	// Same value verifies clean against the snapshot.
	*update = false
	Check(t, path, snap{Name: "x", Count: 3})
}
