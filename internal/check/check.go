// Package check is the invariant-checking and differential-testing
// harness of the simulator. A Checker attaches to one scheme run and
// verifies, independently of the FTL's own bookkeeping, that no logical
// data is ever lost or corrupted:
//
//   - A shadow store mirrors every host write and trim. On every read —
//     and at end-of-run for all live LSNs — it asserts the scheme still
//     maps the latest version of each logical subpage.
//   - Structural sweeps after every garbage-collection or data-movement
//     event recompute ground truth from the flash array: per-block
//     validity and J-set aggregates, subpage state-machine legality,
//     partial-programming budgets, mapping/array bijection, and erase
//     count monotonicity.
//   - CompareStates asserts two runs of the same trace through different
//     schemes conserved the same logical state, the core of the
//     differential runner in internal/core.
//
// The package deliberately knows nothing about the scheme layer: it sees
// only the flash array and the translation map, so a bug in a scheme's
// cached gauges cannot also blind the checker.
package check

import (
	"fmt"

	"ipusim/internal/flash"
	"ipusim/internal/ftl"
)

// Level selects how much checking a run pays for.
type Level int

const (
	// Off disables the harness entirely (production / benchmark default).
	Off Level = iota
	// Shadow mirrors host writes and verifies reads and the end-of-run
	// state against the shadow store: O(request) per operation.
	Shadow
	// Full adds the structural O(device) sweep after every GC and data-
	// movement event. Expensive; for tests and debugging.
	Full
)

func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Shadow:
		return "shadow"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel converts a user-facing level name ("off", "shadow", "full";
// "" means off) into a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "shadow":
		return Shadow, nil
	case "full":
		return Full, nil
	default:
		return Off, fmt.Errorf("check: unknown level %q (want off, shadow or full)", s)
	}
}

// lsnState is the shadow store's knowledge about one logical subpage.
type lsnState uint8

const (
	// lsnUnknown: the host never touched the LSN during the run. It must
	// be mapped iff the device was preconditioned (pre-filled).
	lsnUnknown lsnState = iota
	// lsnWritten: the host wrote it; the latest version must be mapped.
	lsnWritten
	// lsnTrimmed: the host discarded it; it must be unmapped.
	lsnTrimmed
)

// Checker verifies one device's logical state against a shadow store and
// recomputed ground truth. Construct with New; attach via the scheme
// device's hooks. A Checker is not safe for concurrent use — each
// simulated device is single-goroutine, and so is its checker.
type Checker struct {
	level     Level
	cfg       *flash.Config
	arr       *flash.Array
	m         *ftl.Map
	prefilled bool

	state     []lsnState
	lastWrite []int64 // latest host write time per LSN (program order)
	written   int     // LSNs in state lsnWritten
	trimmed   int     // LSNs in state lsnTrimmed

	// maxNow / monotone track whether host request times are
	// nondecreasing. Closed-loop replay can legally issue out of order,
	// which invalidates write-time comparisons (but nothing else).
	maxNow   int64
	monotone bool

	// lastErase snapshots per-block erase counts for monotonicity.
	lastErase []int

	// Sweeps counts structural sweeps performed, so tests can assert the
	// harness actually ran.
	Sweeps int64
	// ReadsChecked counts subpage reads verified against the shadow.
	ReadsChecked int64
}

// New builds a checker over a device's flash array and translation map.
// prefilled declares the whole logical space mapped at time zero (the
// PreFillMLC preconditioning).
func New(level Level, cfg *flash.Config, arr *flash.Array, m *ftl.Map, prefilled bool) *Checker {
	c := &Checker{
		level:     level,
		cfg:       cfg,
		arr:       arr,
		m:         m,
		prefilled: prefilled,
		state:     make([]lsnState, m.Len()),
		lastWrite: make([]int64, m.Len()),
		monotone:  true,
		lastErase: make([]int, arr.NumBlocks()),
	}
	for id := 0; id < arr.NumBlocks(); id++ {
		c.lastErase[id] = arr.Block(id).EraseCount
	}
	return c
}

// Level returns the configured checking level.
func (c *Checker) Level() Level { return c.level }

// NoteWrite mirrors one host write into the shadow store. now is the
// request's issue time; lsns the logical subpages it covers.
func (c *Checker) NoteWrite(now int64, lsns []flash.LSN) {
	if now < c.maxNow {
		c.monotone = false
	} else {
		c.maxNow = now
	}
	for _, l := range lsns {
		if c.state[l] != lsnWritten {
			if c.state[l] == lsnTrimmed {
				c.trimmed--
			}
			c.state[l] = lsnWritten
			c.written++
		}
		c.lastWrite[l] = now
	}
}

// NoteTrim mirrors one host trim (discard) into the shadow store.
func (c *Checker) NoteTrim(lsns []flash.LSN) {
	for _, l := range lsns {
		if c.state[l] != lsnTrimmed {
			if c.state[l] == lsnWritten {
				c.written--
			}
			c.state[l] = lsnTrimmed
			c.trimmed++
		}
	}
}

// checkLSN verifies one logical subpage against the shadow store.
func (c *Checker) checkLSN(l flash.LSN) error {
	ppa := c.m.Get(l)
	switch c.state[l] {
	case lsnTrimmed:
		if ppa.Mapped() {
			return fmt.Errorf("check: trimmed LSN %d still mapped at %v", l, ppa)
		}
		return nil
	case lsnUnknown:
		if !c.prefilled {
			if ppa.Mapped() {
				return fmt.Errorf("check: never-written LSN %d mapped at %v", l, ppa)
			}
			return nil
		}
		// Pre-filled and untouched: must still be readable, like written
		// data, but without a write-time bound.
	case lsnWritten:
	}
	if !ppa.Mapped() {
		return fmt.Errorf("check: live LSN %d lost (unmapped)", l)
	}
	sp := c.arr.Subpage(ppa)
	if sp.State != flash.SubValid {
		return fmt.Errorf("check: LSN %d maps to %s slot %v", l, sp.State, ppa)
	}
	if sp.LSN != l {
		return fmt.Errorf("check: LSN %d maps to %v which stores LSN %d", l, ppa, sp.LSN)
	}
	if c.state[l] == lsnWritten && c.monotone && sp.WriteTime < c.lastWrite[l] {
		return fmt.Errorf("check: LSN %d at %v stores version from t=%d, latest host write t=%d (stale data)",
			l, ppa, sp.WriteTime, c.lastWrite[l])
	}
	return nil
}

// CheckRead verifies that every subpage a host read is about to fetch is
// the latest version the shadow store expects.
func (c *Checker) CheckRead(now int64, lsns []flash.LSN) error {
	if c.level < Shadow {
		return nil
	}
	for _, l := range lsns {
		if err := c.checkLSN(l); err != nil {
			return fmt.Errorf("read at t=%d: %w", now, err)
		}
	}
	c.ReadsChecked += int64(len(lsns))
	return nil
}

// CheckEvent runs the structural sweep after a GC or data-movement event.
// It is a no-op below Full.
func (c *Checker) CheckEvent(now int64, event string) error {
	if c.level < Full {
		return nil
	}
	if err := c.structural(); err != nil {
		return fmt.Errorf("after %s at t=%d: %w", event, now, err)
	}
	return nil
}

// CheckFinal verifies the end-of-run state: every live LSN still resolves
// to its latest version, the logical space is conserved, and the device
// passes a structural sweep.
func (c *Checker) CheckFinal() error {
	if c.level < Shadow {
		return nil
	}
	for l := 0; l < c.m.Len(); l++ {
		if err := c.checkLSN(flash.LSN(l)); err != nil {
			return fmt.Errorf("end of run: %w", err)
		}
	}
	// Conservation: the mapped count must equal exactly the LSNs the
	// shadow store believes are live.
	want := c.written
	if c.prefilled {
		want += c.m.Len() - c.written - c.trimmed
	}
	if got := c.m.Mapped(); got != want {
		return fmt.Errorf("check: end of run: %d LSNs mapped, shadow store expects %d", got, want)
	}
	if err := c.structural(); err != nil {
		return fmt.Errorf("end of run: %w", err)
	}
	return nil
}

// structural recomputes ground truth from the flash array and compares it
// against every cached aggregate and the translation map.
func (c *Checker) structural() error {
	c.Sweeps++
	// Per-block validity and J-set aggregates, free-slot hygiene and
	// append-pointer consistency.
	if err := c.arr.CheckInvariants(); err != nil {
		return fmt.Errorf("check: %w", err)
	}
	nSLC := c.cfg.SLCBlocks()
	valid := 0
	for id := 0; id < c.arr.NumBlocks(); id++ {
		b := c.arr.Block(id)
		// Erase counts only ever grow.
		if b.EraseCount < c.lastErase[id] {
			return fmt.Errorf("check: block %d erase count regressed %d -> %d", id, c.lastErase[id], b.EraseCount)
		}
		c.lastErase[id] = b.EraseCount
		// Mode partition: an SLC-home block may leave ModeSLC only
		// through an in-place switch; native MLC blocks never change.
		if id < nSLC {
			if b.Mode != flash.ModeSLC && !b.Switched {
				return fmt.Errorf("check: block %d mode %v violates the SLC/MLC partition", id, b.Mode)
			}
			if b.Mode == flash.ModeSLC && b.Switched {
				return fmt.Errorf("check: block %d in SLC mode but flagged switched", id)
			}
		} else if b.Mode != flash.ModeMLC || b.Switched {
			return fmt.Errorf("check: block %d mode %v/switched=%v violates the SLC/MLC partition", id, b.Mode, b.Switched)
		}
		for p := range b.Pages {
			pg := &b.Pages[p]
			// Program budgets: at most MaxProgramsPerSLCPage partial-
			// programming operations on an SLC-home page (switched blocks
			// keep the programs they received while in SLC mode), exactly
			// one program on a native MLC page.
			if id < nSLC {
				if int(pg.ProgramCount) > c.cfg.MaxProgramsPerSLCPage {
					return fmt.Errorf("check: SLC block %d page %d has %d programs, budget %d",
						id, p, pg.ProgramCount, c.cfg.MaxProgramsPerSLCPage)
				}
			} else if pg.ProgramCount > 1 {
				return fmt.Errorf("check: MLC block %d page %d reprogrammed (%d programs)", id, p, pg.ProgramCount)
			}
			// Map/array bijection, array side: every valid slot must be
			// the current mapping of the LSN it stores.
			for s := range pg.Slots {
				sp := &pg.Slots[s]
				if sp.ReprogramStress > 0 && !b.Switched {
					return fmt.Errorf("check: block %d page %d slot %d records reprogram stress outside a switched block", id, p, s)
				}
				if b.Switched && b.NextFreePage > 0 {
					// A reprogrammed page may never hold stale subpage
					// versions: the switch physically overwrites obsolete
					// data, so any slot that survived it holds either the
					// current version of its LSN or nothing. Free slots are
					// sealed at switch time (an MLC page cannot be
					// partially programmed afterwards), and a surviving
					// stale version would show up as an invalid slot with
					// no reprogram pass recorded.
					switch sp.State {
					case flash.SubFree:
						return fmt.Errorf("check: switched block %d page %d slot %d still free (not sealed by the reprogram pass)", id, p, s)
					case flash.SubValid, flash.SubInvalid:
						if sp.ReprogramStress == 0 {
							return fmt.Errorf("check: switched block %d page %d slot %d holds LSN %d with no reprogram pass (stale pre-switch version)",
								id, p, s, sp.LSN)
						}
					}
				}
				if sp.State != flash.SubValid {
					continue
				}
				valid++
				if sp.LSN < 0 || int(sp.LSN) >= c.m.Len() {
					return fmt.Errorf("check: block %d page %d slot %d: valid slot with LSN %d out of range", id, p, s, sp.LSN)
				}
				if got, want := c.m.Get(sp.LSN), flash.NewPPA(id, p, s); got != want {
					return fmt.Errorf("check: valid copy of LSN %d at %v but map points at %v (orphaned version)",
						sp.LSN, want, got)
				}
			}
		}
		if b.Mode == flash.ModeMLC && !b.Switched && b.PartialOps != 0 {
			return fmt.Errorf("check: MLC block %d records %d partial programs", id, b.PartialOps)
		}
	}
	// Map side: every mapping must point at a valid slot holding that
	// LSN. Together with the array-side back-pointer check and the count
	// equality this makes map <-> valid slots a bijection.
	for l := 0; l < c.m.Len(); l++ {
		ppa := c.m.Get(flash.LSN(l))
		if !ppa.Mapped() {
			continue
		}
		if ppa.Block() >= c.arr.NumBlocks() {
			return fmt.Errorf("check: LSN %d maps to out-of-range block %d", l, ppa.Block())
		}
		sp := c.arr.Subpage(ppa)
		if sp.State != flash.SubValid || sp.LSN != flash.LSN(l) {
			return fmt.Errorf("check: LSN %d maps to %v holding %s LSN %d", l, ppa, sp.State, sp.LSN)
		}
	}
	if valid != c.m.Mapped() {
		return fmt.Errorf("check: %d valid subpages but %d mapped LSNs", valid, c.m.Mapped())
	}
	return nil
}

// CheckReclaim verifies a block is safe to erase: it holds no live
// subpages (recomputed from slot states, not the cached counter) and no
// current mapping points into it. Preemptive GC calls this before every
// incremental victim erase — reclaiming a block that still holds live
// data would silently lose it. No-op below Full.
func (c *Checker) CheckReclaim(now int64, blockID int) error {
	if c.level < Full {
		return nil
	}
	b := c.arr.Block(blockID)
	if b.ValidSub != 0 {
		return fmt.Errorf("check: reclaim of block %d at t=%d with %d valid subpages", blockID, now, b.ValidSub)
	}
	for p := range b.Pages {
		for s := range b.Pages[p].Slots {
			if b.Pages[p].Slots[s].State == flash.SubValid {
				return fmt.Errorf("check: reclaim of block %d at t=%d would destroy live LSN %d (page %d slot %d)",
					blockID, now, b.Pages[p].Slots[s].LSN, p, s)
			}
		}
	}
	for l := 0; l < c.m.Len(); l++ {
		if ppa := c.m.Get(flash.LSN(l)); ppa.Mapped() && ppa.Block() == blockID {
			return fmt.Errorf("check: reclaim of block %d at t=%d but LSN %d still maps into it at %v",
				blockID, now, l, ppa)
		}
	}
	return nil
}

// CheckSLCGauges compares the scheme's cached SLC occupancy gauges (free
// pages, valid subpages, pages holding valid data) against values
// recomputed from the array. Gauge drift silently breaks GC triggering
// and the Fig. 11 memory model, so the device calls this after every GC.
func (c *Checker) CheckSLCGauges(freePages int, validSub, pagesWithValid int64) error {
	if c.level < Full {
		return nil
	}
	var wantFree int
	var wantValid, wantPages int64
	for id := 0; id < c.cfg.SLCBlocks(); id++ {
		b := c.arr.Block(id)
		if b.Mode != flash.ModeSLC {
			// Switched blocks have left the cache; their pages count
			// toward neither the free-page nor the occupancy gauges.
			continue
		}
		wantFree += b.FreePages()
		wantValid += int64(b.ValidSub)
		for p := range b.Pages {
			for s := range b.Pages[p].Slots {
				if b.Pages[p].Slots[s].State == flash.SubValid {
					wantPages++
					break
				}
			}
		}
	}
	switch {
	case freePages != wantFree:
		return fmt.Errorf("check: SLC free-page gauge %d, array says %d", freePages, wantFree)
	case validSub != wantValid:
		return fmt.Errorf("check: SLC valid-subpage gauge %d, array says %d", validSub, wantValid)
	case pagesWithValid != wantPages:
		return fmt.Errorf("check: SLC pages-with-valid gauge %d, array says %d", pagesWithValid, wantPages)
	}
	return nil
}

// CompareStates asserts two schemes that replayed the same trace conserved
// identical logical state: the same logical space and the same set of
// mapped LSNs. Combined with each run's own shadow verification (which
// pins every mapped LSN to its latest version), equal mapped sets imply
// equal read-back data.
func CompareStates(nameA string, a *ftl.Map, nameB string, b *ftl.Map) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("check: %s exports %d logical subpages, %s exports %d", nameA, a.Len(), nameB, b.Len())
	}
	for l := 0; l < a.Len(); l++ {
		ma, mb := a.Get(flash.LSN(l)).Mapped(), b.Get(flash.LSN(l)).Mapped()
		if ma != mb {
			return fmt.Errorf("check: LSN %d mapped=%v under %s but mapped=%v under %s (diverged)",
				l, ma, nameA, mb, nameB)
		}
	}
	if a.Mapped() != b.Mapped() {
		return fmt.Errorf("check: %s maps %d LSNs, %s maps %d", nameA, a.Mapped(), nameB, b.Mapped())
	}
	return nil
}
