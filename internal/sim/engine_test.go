package sim

import (
	"testing"
	"time"

	"ipusim/internal/flash"
)

func testConfig() *flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 2
	c.Blocks = 64
	c.SLCRatio = 0.125
	c.SLCPagesPerBlock = 8
	c.MLCPagesPerBlock = 16
	c.LogicalSubpages = c.MLCSubpages() / 2
	return &c
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpProgram.String() != "program" || OpErase.String() != "erase" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestPerformLatencyComposition(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	// SLC block 0 (IDs below SLCBlocks are SLC-mode).
	slcBlk := 0
	end := e.Perform(0, slcBlk, OpRead, 2, 0)
	want := int64(cfg.Timing.SLCRead) + 2*int64(cfg.Timing.TransferPerSubpage)
	if end != want {
		t.Errorf("SLC read end = %d, want %d", end, want)
	}
	// Extra (ECC) time extends completion but not chip busy time.
	mlcBlk := cfg.SLCBlocks() + 1
	end2 := e.Perform(0, mlcBlk, OpRead, 1, 10*time.Microsecond)
	want2 := int64(cfg.Timing.MLCRead) + int64(cfg.Timing.TransferPerSubpage) + int64(10*time.Microsecond)
	if end2 != want2 {
		t.Errorf("MLC read end = %d, want %d", end2, want2)
	}
}

func TestPerformChipSerialisation(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	blk := 0
	first := e.Perform(0, blk, OpProgram, 4, 0)
	second := e.Perform(0, blk, OpProgram, 4, 0)
	if second != 2*first {
		t.Errorf("same-chip ops must serialise: first=%d second=%d", first, second)
	}
	// A different chip is independent.
	other := e.Perform(0, blk+1, OpProgram, 4, 0)
	if other != first {
		t.Errorf("different chips must run in parallel: %d vs %d", other, first)
	}
}

func TestPerformChannelContention(t *testing.T) {
	cfg := testConfig() // 2 channels, 4 chips; chips 0,2 share channel 0
	e := NewEngine(cfg)
	xfer := int64(cfg.Timing.TransferPerSubpage) * 4
	endA := e.Perform(0, 0, OpProgram, 4, 0) // chip 0, channel 0
	endB := e.Perform(0, 2, OpProgram, 4, 0) // chip 2, channel 0
	// B must wait for A's bus transfer but not its full cell time.
	if endB <= endA-int64(cfg.Timing.SLCProgram)+xfer {
		t.Errorf("channel contention missing: endB=%d", endB)
	}
	if endB >= endA+int64(cfg.Timing.SLCProgram) {
		t.Errorf("channel contention too strong (serialised on chip?): endB=%d endA=%d", endB, endA)
	}
}

func TestPerformEraseUsesNoChannel(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	end := e.Perform(0, 0, OpErase, 0, 0)
	if end != int64(cfg.Timing.Erase) {
		t.Errorf("erase end = %d, want %d", end, int64(cfg.Timing.Erase))
	}
	// An erase must not block another chip's transfer via the channel.
	end2 := e.Perform(0, 2, OpProgram, 1, 0) // same channel, other chip
	want := int64(cfg.Timing.SLCProgram) + int64(cfg.Timing.TransferPerSubpage)
	if end2 != want {
		t.Errorf("erase blocked the channel: end2=%d want %d", end2, want)
	}
}

func TestPerformArrivalGating(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	arrival := int64(5 * time.Millisecond)
	end := e.Perform(arrival, 0, OpRead, 1, 0)
	want := arrival + int64(cfg.Timing.SLCRead) + int64(cfg.Timing.TransferPerSubpage)
	if end != want {
		t.Errorf("idle chip must start at arrival: end=%d want %d", end, want)
	}
}

func TestStatsAccumulation(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	e.Perform(0, 0, OpRead, 1, 0)
	e.Perform(0, 0, OpProgram, 2, 0)
	e.Perform(0, 0, OpErase, 0, 0)
	if e.Stats.Count[OpRead] != 1 || e.Stats.Count[OpProgram] != 1 || e.Stats.Count[OpErase] != 1 {
		t.Errorf("counts: %+v", e.Stats.Count)
	}
	for k := OpRead; k <= OpErase; k++ {
		if e.Stats.BusyTime[k] <= 0 {
			t.Errorf("%v busy time not recorded", k)
		}
	}
	if e.Now() <= 0 {
		t.Error("Now must advance")
	}
}

func TestMLCSlowerThanSLC(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	slcEnd := e.Perform(0, 0, OpProgram, 4, 0)
	e2 := NewEngine(cfg)
	mlcEnd := e2.Perform(0, cfg.SLCBlocks(), OpProgram, 4, 0)
	if mlcEnd <= slcEnd {
		t.Errorf("MLC program (%d) must be slower than SLC (%d)", mlcEnd, slcEnd)
	}
}
