// Package sim provides the timing engine of the trace-driven simulation:
// flash operations are scheduled onto per-chip and per-channel resources
// with the latencies of Table 2, yielding request response times that
// include queueing, bus transfer, cell operation and ECC decode time.
package sim

import (
	"fmt"
	"time"

	"ipusim/internal/flash"
)

// OpKind is the class of a flash operation.
type OpKind uint8

const (
	// OpRead senses a page and transfers subpages to the controller.
	OpRead OpKind = iota
	// OpProgram transfers subpages to the chip and programs a page.
	OpProgram
	// OpErase erases a block.
	OpErase
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// OpStats aggregates operation counts and busy time per kind.
type OpStats struct {
	Count    [3]int64
	BusyTime [3]int64 // nanoseconds of chip time
	// BusyPerChip accumulates chip busy nanoseconds per chip, exposing
	// load imbalance across the array.
	BusyPerChip []int64
	// CapStallNS accumulates host time stalled because a chip's background
	// backlog exceeded the cap — the signature of GC failing to keep up.
	CapStallNS int64
}

// Engine schedules flash operations. Chips serialise their operations;
// channels serialise bus transfers. Both constraints follow SSDsim's
// multilevel-parallelism model: a block's chip is fixed by block ID, so
// consecutive blocks exploit channel and chip parallelism.
type Engine struct {
	cfg      *flash.Config
	chipFree []int64 // next instant each parallel unit (plane) is idle
	chanFree []int64 // next instant each channel bus is idle
	// gcBacklog is deferred background (GC) work per chip, in nanoseconds.
	// Background work drains into the idle gaps between host operations —
	// the host-priority scheduling real FTLs use, with erase-suspend — and
	// only stalls host operations once it exceeds the configured cap.
	gcBacklog []int64
	// scanNS is the monotonic victim-scan clock: a deterministic proxy for
	// the controller time GC victim selection spends walking block metadata
	// (the Fig. 12 overhead), advanced by NoteScan instead of the wall
	// clock so results reproduce bit-for-bit.
	scanNS int64
	Stats  OpStats
}

// ScanCostPerBlockNS is the nominal controller cost of examining one
// block's GC metadata during victim selection. The absolute value is a
// modelling constant; Fig. 12 only compares policies, so the ratio between
// blocks-visited counts is what matters.
const ScanCostPerBlockNS = 50

// NewEngine builds an engine for the given geometry.
func NewEngine(cfg *flash.Config) *Engine {
	e := &Engine{
		cfg:       cfg,
		chipFree:  make([]int64, cfg.ParallelUnits()),
		chanFree:  make([]int64, cfg.Channels),
		gcBacklog: make([]int64, cfg.ParallelUnits()),
	}
	e.Stats.BusyPerChip = make([]int64, cfg.ParallelUnits())
	return e
}

// Clone returns a deep copy of the engine sharing only the immutable
// config.
func (e *Engine) Clone() *Engine {
	c := &Engine{
		chipFree:  make([]int64, len(e.chipFree)),
		chanFree:  make([]int64, len(e.chanFree)),
		gcBacklog: make([]int64, len(e.gcBacklog)),
	}
	c.Stats.BusyPerChip = make([]int64, len(e.Stats.BusyPerChip))
	c.Restore(e)
	return c
}

// Restore overwrites e with a deep copy of t, reusing e's slices. Both
// engines must come from the same geometry.
func (e *Engine) Restore(t *Engine) {
	chipFree, chanFree, backlog, busy := e.chipFree, e.chanFree, e.gcBacklog, e.Stats.BusyPerChip
	copy(chipFree, t.chipFree)
	copy(chanFree, t.chanFree)
	copy(backlog, t.gcBacklog)
	copy(busy, t.Stats.BusyPerChip)
	*e = *t
	e.chipFree, e.chanFree, e.gcBacklog, e.Stats.BusyPerChip = chipFree, chanFree, backlog, busy
}

// cellTime returns the raw flash cell latency of an operation.
func (e *Engine) cellTime(kind OpKind, mode flash.Mode) time.Duration {
	t := &e.cfg.Timing
	switch kind {
	case OpRead:
		if mode == flash.ModeSLC {
			return t.SLCRead
		}
		return t.MLCRead
	case OpProgram:
		if mode == flash.ModeSLC {
			return t.SLCProgram
		}
		return t.MLCProgram
	default:
		return t.Erase
	}
}

// Perform schedules one flash operation touching the given block.
//
// arrival is the earliest instant the operation may start. subpages sets
// the bus transfer volume (zero for erase). extra is controller-side time
// appended after the flash operation (ECC decode, read retries); it
// occupies neither chip nor channel.
//
// Perform returns the operation completion time. The chip is busy for the
// cell time plus the transfer, the channel for the transfer only.
func (e *Engine) Perform(arrival int64, blockID int, kind OpKind, subpages int, extra time.Duration) int64 {
	return e.PerformMode(arrival, blockID, kind, e.modeOf(blockID), subpages, extra)
}

// PerformMode is Perform with the cell mode supplied by the caller instead
// of derived from the block-ID partition. In-place switched blocks operate
// in MLC mode while occupying SLC-home IDs, so schemes that switch blocks
// must pass the block's actual mode.
func (e *Engine) PerformMode(arrival int64, blockID int, kind OpKind, mode flash.Mode, subpages int, extra time.Duration) int64 {
	chip := e.cfg.UnitOf(blockID)
	ch := e.cfg.ChannelOfUnit(chip)
	xfer := int64(e.cfg.Timing.TransferPerSubpage) * int64(subpages)
	cell := int64(e.cellTime(kind, mode))

	// Drain background GC work into the idle gap ahead of this host
	// operation; beyond the cap the remainder stalls the host.
	if bl := e.gcBacklog[chip]; bl > 0 {
		if gap := arrival - e.chipFree[chip]; gap > 0 {
			drain := gap
			if drain > bl {
				drain = bl
			}
			bl -= drain
			e.chipFree[chip] += drain
		}
		if capNS := int64(e.cfg.GCBacklogCap); bl > capNS {
			e.chipFree[chip] += bl - capNS
			e.Stats.CapStallNS += bl - capNS
			bl = capNS
		}
		e.gcBacklog[chip] = bl
	}

	start := arrival
	if e.chipFree[chip] > start {
		start = e.chipFree[chip]
	}
	if subpages > 0 && e.chanFree[ch] > start {
		start = e.chanFree[ch]
	}
	busy := cell + xfer
	e.chipFree[chip] = start + busy
	if subpages > 0 {
		e.chanFree[ch] = start + xfer
	}
	e.Stats.Count[kind]++
	e.Stats.BusyTime[kind] += busy
	e.Stats.BusyPerChip[chip] += busy
	return start + busy + int64(extra)
}

// PerformBackground schedules one garbage-collection operation at host-
// subordinate priority: its cost joins the chip's backlog and is worked
// off during idle gaps, the way real FTLs interleave GC with host traffic
// (using program/erase suspension). The result is the enqueue time — GC
// data movement is bookkept immediately; only the time is deferred.
func (e *Engine) PerformBackground(arrival int64, blockID int, kind OpKind, subpages int) int64 {
	return e.PerformBackgroundMode(arrival, blockID, kind, e.modeOf(blockID), subpages)
}

// PerformBackgroundMode is PerformBackground with an explicit cell mode,
// for operations on in-place switched blocks.
func (e *Engine) PerformBackgroundMode(arrival int64, blockID int, kind OpKind, mode flash.Mode, subpages int) int64 {
	chip := e.cfg.UnitOf(blockID)
	xfer := int64(e.cfg.Timing.TransferPerSubpage) * int64(subpages)
	busy := int64(e.cellTime(kind, mode)) + xfer
	e.gcBacklog[chip] += busy
	e.Stats.Count[kind]++
	e.Stats.BusyTime[kind] += busy
	e.Stats.BusyPerChip[chip] += busy
	return arrival
}

// NoteScan advances the victim-scan clock by the cost of examining the
// given number of blocks' metadata. Victim selectors call it once per
// selection pass.
func (e *Engine) NoteScan(blocks int) {
	e.scanNS += int64(blocks) * ScanCostPerBlockNS
}

// ScanNS returns the monotonic victim-scan clock. Deltas around a victim
// selection give the deterministic Fig. 12 scan-overhead proxy.
func (e *Engine) ScanNS() int64 { return e.scanNS }

// Backlog returns a chip's pending background work in nanoseconds.
func (e *Engine) Backlog(chip int) int64 { return e.gcBacklog[chip] }

// ChipAvailableAt estimates when a chip will have worked off its current
// queue including background backlog — the earliest a block erased in the
// background becomes programmable again.
func (e *Engine) ChipAvailableAt(chip int) int64 {
	return e.chipFree[chip] + e.gcBacklog[chip]
}

// modeOf derives a block's mode from the SLC/MLC partition (SLC blocks
// occupy the low IDs, mirroring flash.NewArray).
func (e *Engine) modeOf(blockID int) flash.Mode {
	if blockID < e.cfg.SLCBlocks() {
		return flash.ModeSLC
	}
	return flash.ModeMLC
}

// Now returns the latest instant any chip becomes idle — an upper bound on
// simulated device activity, useful for utilisation reporting.
func (e *Engine) Now() int64 {
	var m int64
	for _, t := range e.chipFree {
		if t > m {
			m = t
		}
	}
	return m
}
