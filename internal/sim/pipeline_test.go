package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipelineCommitOrder submits operations with deliberately skewed
// evaluation latencies and asserts commits still land in dispatch order.
func TestPipelineCommitOrder(t *testing.T) {
	const n = 500
	payload := make([]int, 16)
	var committed []int
	p := NewPipeline(4, len(payload),
		func(slot int) {
			// Earlier ops sleep longer, maximising out-of-order completion.
			if payload[slot]%7 == 0 {
				time.Sleep(time.Duration(payload[slot]%5) * 100 * time.Microsecond)
			}
		},
		func(slot int) { committed = append(committed, payload[slot]) },
	)
	defer p.Close()
	for i := 0; i < n; i++ {
		slot := p.Slot()
		payload[slot] = i
		p.Submit(i % 13) // scatter across units and workers
	}
	p.Flush()
	if len(committed) != n {
		t.Fatalf("committed %d ops, want %d", len(committed), n)
	}
	for i, v := range committed {
		if v != i {
			t.Fatalf("commit order broken at %d: got %d", i, v)
		}
	}
}

// TestPipelineCommitNext drives the single-commit path a closed-loop gate
// uses: each CommitNext resolves exactly the oldest submitted op, in
// dispatch order, and reports false once the pipeline is empty.
func TestPipelineCommitNext(t *testing.T) {
	const n = 300
	payload := make([]int, 8)
	var committed []int
	p := NewPipeline(3, len(payload),
		func(slot int) {
			if payload[slot]%5 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
		},
		func(slot int) { committed = append(committed, payload[slot]) },
	)
	defer p.Close()
	if p.CommitNext() {
		t.Fatal("CommitNext on an empty pipeline returned true")
	}
	submitted := 0
	for i := 0; i < n; i++ {
		slot := p.Slot()
		payload[slot] = i
		p.Submit(i % 7)
		submitted++
		// Interleave forced single commits with submissions; Slot may also
		// have drained opportunistically, so only require monotone progress.
		if i%3 == 0 {
			before := len(committed)
			if p.InFlight() > 0 {
				if !p.CommitNext() {
					t.Fatalf("CommitNext with %d in flight returned false", p.InFlight())
				}
				if len(committed) != before+1 {
					t.Fatalf("CommitNext committed %d ops, want exactly 1", len(committed)-before)
				}
			}
		}
	}
	for p.CommitNext() {
	}
	if len(committed) != n {
		t.Fatalf("committed %d ops, want %d", len(committed), n)
	}
	for i, v := range committed {
		if v != i {
			t.Fatalf("commit order broken at %d: got %d", i, v)
		}
	}
	if p.InFlight() != 0 {
		t.Fatalf("InFlight = %d after full drain", p.InFlight())
	}
}

// TestPipelineBackpressure checks that a ring smaller than the submission
// count bounds the in-flight ops instead of losing or reordering any.
func TestPipelineBackpressure(t *testing.T) {
	const n = 2000
	ring := 8 // raised to 2*workers internally if smaller
	payload := make([]int64, 16)
	var sum int64
	var inFlight, maxInFlight int64
	p := NewPipeline(8, ring,
		func(slot int) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				old := atomic.LoadInt64(&maxInFlight)
				if cur <= old || atomic.CompareAndSwapInt64(&maxInFlight, old, cur) {
					break
				}
			}
			atomic.AddInt64(&inFlight, -1)
		},
		func(slot int) { sum += payload[slot] },
	)
	for i := int64(1); i <= n; i++ {
		slot := p.Slot()
		payload[slot] = i
		p.Submit(int(i))
	}
	p.Close()
	if want := int64(n) * (n + 1) / 2; sum != want {
		t.Fatalf("committed sum %d, want %d", sum, want)
	}
	if maxInFlight > int64(p.Ring()) {
		t.Fatalf("in-flight ops %d exceeded ring %d", maxInFlight, p.Ring())
	}
}

// TestPipelinePerUnitFIFO asserts ops for one parallel unit are evaluated
// in submission order (they share a worker queue).
func TestPipelinePerUnitFIFO(t *testing.T) {
	const n = 1000
	payload := make([]int, 32)
	unitOf := func(v int) int { return v % 3 }
	var lastSeen [3]int64
	fail := make(chan string, 1)
	p := NewPipeline(3, len(payload),
		func(slot int) {
			v := payload[slot]
			u := unitOf(v)
			if prev := atomic.LoadInt64(&lastSeen[u]); int64(v) < prev {
				select {
				case fail <- "unit FIFO violated":
				default:
				}
			}
			atomic.StoreInt64(&lastSeen[u], int64(v))
		},
		func(slot int) {},
	)
	for i := 0; i < n; i++ {
		slot := p.Slot()
		payload[slot] = i
		p.Submit(unitOf(i))
	}
	p.Close()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestPipelineCloseStopsWorkers verifies Close joins every worker
// goroutine — the leak-freedom half of cancellation handling.
func TestPipelineCloseStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		p := NewPipeline(6, 24, func(int) {}, func(int) {})
		for j := 0; j < 50; j++ {
			p.Slot()
			p.Submit(j)
		}
		p.Close()
		p.Close() // idempotent
	}
	// Goroutine counts are noisy; poll for the pools to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestPipelineFlushEmpty ensures Flush and Close on an idle pipeline are
// no-ops.
func TestPipelineFlushEmpty(t *testing.T) {
	p := NewPipeline(2, 4, func(int) {}, func(int) {})
	p.Flush()
	p.Close()
}
