package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPerformNeverTravelsBackInTime is the engine's core property: every
// operation completes at or after its arrival plus its minimum service
// time, and a chip's free time never decreases.
func TestPerformNeverTravelsBackInTime(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	prevFree := make([]int64, cfg.Chips())
	f := func(arrivalMS uint16, block uint8, kind uint8, subpages uint8, bg bool) bool {
		arrival := int64(arrivalMS) * int64(time.Millisecond)
		blk := int(block) % cfg.Blocks
		k := OpKind(kind % 3)
		n := int(subpages % 5)
		if k != OpErase && n == 0 {
			n = 1
		}
		if k == OpErase {
			n = 0
		}
		chip := blk % cfg.Chips()
		if bg {
			end := e.PerformBackground(arrival, blk, k, n)
			return end == arrival && e.Backlog(chip) >= 0
		}
		end := e.Perform(arrival, blk, k, n, 0)
		minService := int64(e.cellTime(k, e.modeOf(blk)))
		if end < arrival+minService {
			return false
		}
		if e.chipFree[chip] < prevFree[chip] {
			return false
		}
		prevFree[chip] = e.chipFree[chip]
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestBusyConservation: total busy time equals the sum over chips.
func TestBusyConservation(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	for i := 0; i < 500; i++ {
		e.Perform(int64(i)*1000, i%cfg.Blocks, OpKind(i%3), 1+i%3, 0)
		if i%7 == 0 {
			e.PerformBackground(int64(i)*1000, i%cfg.Blocks, OpProgram, 2)
		}
	}
	var total, perChip int64
	for k := range e.Stats.BusyTime {
		total += e.Stats.BusyTime[k]
	}
	for _, b := range e.Stats.BusyPerChip {
		perChip += b
	}
	if total != perChip {
		t.Errorf("busy accounting mismatch: %d vs %d", total, perChip)
	}
}
