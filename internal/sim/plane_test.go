package sim

import (
	"testing"

	"ipusim/internal/flash"
)

// planeConfig has two planes per die: blocks 0 and 4 share a chip but sit
// on different planes.
func planeConfig() *flash.Config {
	c := flash.DefaultConfig()
	c.Channels = 2
	c.ChipsPerChannel = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 2
	c.Blocks = 64
	c.SLCRatio = 0.125
	c.SLCPagesPerBlock = 8
	c.MLCPagesPerBlock = 16
	c.LogicalSubpages = c.MLCSubpages() / 2
	return &c
}

func TestParallelUnitsGeometry(t *testing.T) {
	c := planeConfig()
	if got := c.ParallelUnits(); got != 4 {
		t.Fatalf("ParallelUnits = %d, want 4 (2 chips x 2 planes)", got)
	}
	// Blocks stripe across units; units map back onto chips and channels.
	if c.UnitOf(0) == c.UnitOf(1) {
		t.Error("consecutive blocks must sit on different units")
	}
	if c.UnitOf(0) != c.UnitOf(4) {
		t.Error("striping must wrap at the unit count")
	}
	for u := 0; u < 4; u++ {
		if ch := c.ChannelOfUnit(u); ch < 0 || ch >= c.Channels {
			t.Errorf("unit %d channel %d out of range", u, ch)
		}
	}
}

func TestPlanesOperateInParallel(t *testing.T) {
	c := planeConfig()
	e := NewEngine(c)
	// Blocks 0 and 2 share channel 0 but live on different planes:
	// their cell operations overlap (only the bus serialises).
	endA := e.Perform(0, 0, OpProgram, 4, 0)
	endB := e.Perform(0, 2, OpProgram, 4, 0)
	xfer := 4 * int64(c.Timing.TransferPerSubpage)
	if endB >= endA+int64(c.Timing.SLCProgram) {
		t.Errorf("planes serialised like one chip: endA=%d endB=%d", endA, endB)
	}
	if endB < endA {
		t.Errorf("bus contention missing: endB=%d < endA=%d", endB, endA)
	}
	_ = xfer
}

func TestSinglePlaneDefaultUnchanged(t *testing.T) {
	// Dies/planes zero values behave exactly like the chip-only model.
	c := flash.DefaultConfig()
	if c.ParallelUnits() != c.Chips() {
		t.Fatalf("default units %d != chips %d", c.ParallelUnits(), c.Chips())
	}
}

func TestPlaneConfigValidation(t *testing.T) {
	c := planeConfig()
	c.Blocks = 66 // not a multiple of 4 units
	if err := c.Validate(); err == nil {
		t.Error("non-multiple block count accepted")
	}
	c = planeConfig()
	c.DiesPerChip = -1
	if err := c.Validate(); err == nil {
		t.Error("negative dies accepted")
	}
}
