package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pipeline is the intra-run parallel execution stage of the engine: a
// bounded pool of workers evaluates operations off the replay thread while
// their results are committed back on the replay thread in dispatch
// (simulated-time) order. It exists for work that is expensive but pure —
// per-subpage ECC/reliability evaluation — whose inputs can be snapshotted
// at dispatch and whose outputs fold into order-insensitive aggregates.
//
// The pipeline itself is payload-agnostic: the caller owns a ring of
// operation slots (parallel to the pipeline's own ring) and passes two
// callbacks. eval(slot) runs on a worker goroutine and must touch only the
// slot's payload plus immutable shared state; commit(slot) runs on the
// issue thread, in dispatch order, and may touch anything the issue thread
// owns. One slot is in exactly one hand at a time: the issue thread fills
// it, a worker evaluates it, the issue thread commits it — so payloads
// need no locks of their own.
//
// Use:
//
//	slot := p.Slot()     // reserve (may block until a commit frees one)
//	fill payload[slot]
//	p.Submit(unit)       // hand to the unit's worker
//	...
//	p.Flush()            // barrier: everything submitted is committed
//	p.Close()            // Flush + stop the workers
type Pipeline struct {
	eval   func(slot int)
	commit func(slot int)

	// queues carries sequence numbers to workers; ops for the same
	// parallel unit always land on the same worker, preserving per-unit
	// FIFO (and spreading planes across the pool).
	queues []chan int64

	// done[seq%ring] flips to 1 when a worker finishes evaluating that
	// sequence number. Commit clears it before the slot is reused.
	done []atomic.Uint32

	ring int64
	head int64 // next sequence number to reserve
	tail int64 // next sequence number to commit

	wg     sync.WaitGroup
	closed bool
}

// NewPipeline builds a pipeline of the given worker count. ring bounds the
// number of operations in flight (reserved but not yet committed); values
// below 2*workers are raised to that, so every worker can be busy while
// the issue thread fills the next slots.
func NewPipeline(workers, ring int, eval, commit func(slot int)) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if min := 2 * workers; ring < min {
		ring = min
	}
	p := &Pipeline{
		eval:   eval,
		commit: commit,
		queues: make([]chan int64, workers),
		done:   make([]atomic.Uint32, ring),
		ring:   int64(ring),
	}
	for i := range p.queues {
		// Each queue holds a full ring of sequence numbers so Submit
		// never blocks: ring slots bound the in-flight count first.
		q := make(chan int64, ring)
		p.queues[i] = q
		p.wg.Add(1)
		go p.worker(q)
	}
	return p
}

// Workers returns the pool size.
func (p *Pipeline) Workers() int { return len(p.queues) }

// Ring returns the in-flight operation bound.
func (p *Pipeline) Ring() int { return int(p.ring) }

func (p *Pipeline) worker(q <-chan int64) {
	defer p.wg.Done()
	for seq := range q {
		p.eval(int(seq % p.ring))
		p.done[seq%p.ring].Store(1)
	}
}

// Slot reserves the next operation slot and returns its index into the
// caller's payload ring. When every slot is in flight it first waits for
// the oldest operation to commit; it also opportunistically commits
// whatever has already finished, so commit latency stays bounded without a
// dedicated committer thread.
func (p *Pipeline) Slot() int {
	p.drain()
	for p.head-p.tail >= p.ring {
		p.commitOne()
	}
	return int(p.head % p.ring)
}

// Submit publishes the slot reserved by the last Slot call to the worker
// owning the given parallel unit. The caller must not touch the payload
// again until the pipeline commits it.
func (p *Pipeline) Submit(unit int) {
	if unit < 0 {
		unit = 0
	}
	seq := p.head
	p.done[seq%p.ring].Store(0)
	p.head = seq + 1
	p.queues[unit%len(p.queues)] <- seq
}

// drain commits every operation that has finished evaluating, in order,
// without blocking.
func (p *Pipeline) drain() {
	for p.tail < p.head && p.done[p.tail%p.ring].Load() == 1 {
		p.commit(int(p.tail % p.ring))
		p.tail++
	}
}

// commitOne blocks until the oldest in-flight operation finishes
// evaluating, then commits it.
func (p *Pipeline) commitOne() {
	slot := p.tail % p.ring
	for spins := 0; p.done[slot].Load() == 0; spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
	p.commit(int(slot))
	p.tail++
}

// CommitNext blocks until the oldest in-flight operation finishes
// evaluating, commits it, and returns true. It returns false when nothing
// is in flight. Closed-loop drivers use it to resolve exactly one pending
// result — the completion a queue-depth gate is waiting on — without
// draining the whole pipeline the way Flush does.
func (p *Pipeline) CommitNext() bool {
	if p.tail >= p.head {
		return false
	}
	p.commitOne()
	return true
}

// InFlight returns the number of submitted operations not yet committed.
func (p *Pipeline) InFlight() int { return int(p.head - p.tail) }

// Flush commits every submitted operation; on return the pipeline is
// empty and every result is visible on the issue thread.
func (p *Pipeline) Flush() {
	for p.tail < p.head {
		p.commitOne()
	}
}

// Close flushes outstanding work and stops the workers. The pipeline must
// not be used afterwards. Close is idempotent.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.Flush()
	for _, q := range p.queues {
		close(q)
	}
	p.wg.Wait()
}
