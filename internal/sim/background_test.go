package sim

import (
	"testing"
	"time"
)

func TestBackgroundWorkDrainsInIdleGaps(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	// Enqueue 1ms of background work on chip 0 (block 0).
	e.PerformBackground(0, 0, OpProgram, 0) // SLC program: 300us
	e.PerformBackground(0, 0, OpProgram, 0)
	e.PerformBackground(0, 0, OpProgram, 0)
	if e.Backlog(0) != 3*int64(cfg.Timing.SLCProgram) {
		t.Fatalf("backlog = %d", e.Backlog(0))
	}
	// A host op arriving after a long idle gap must not wait: the backlog
	// drained during the gap.
	arrival := int64(10 * time.Millisecond)
	end := e.Perform(arrival, 0, OpRead, 1, 0)
	want := arrival + int64(cfg.Timing.SLCRead) + int64(cfg.Timing.TransferPerSubpage)
	if end != want {
		t.Errorf("host op delayed by drained backlog: end=%d want %d", end, want)
	}
	if e.Backlog(0) != 0 {
		t.Errorf("backlog not drained: %d", e.Backlog(0))
	}
}

func TestBackgroundWorkDelaysImmediateHostOp(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	e.PerformBackground(0, 0, OpErase, 0) // 10ms
	// A host op arriving immediately: the 10ms backlog is under the 20ms
	// cap, so the host op is NOT stalled; the backlog waits for idle time.
	end := e.Perform(0, 0, OpRead, 1, 0)
	want := int64(cfg.Timing.SLCRead) + int64(cfg.Timing.TransferPerSubpage)
	if end != want {
		t.Errorf("sub-cap backlog stalled host op: end=%d want %d", end, want)
	}
}

func TestBackgroundCapStallsHost(t *testing.T) {
	cfg := testConfig()
	cfg.GCBacklogCap = 5 * time.Millisecond
	e := NewEngine(cfg)
	e.PerformBackground(0, 0, OpErase, 0) // 10ms > 5ms cap
	end := e.Perform(0, 0, OpRead, 1, 0)
	// 5ms of excess must stall the host op.
	excess := int64(5 * time.Millisecond)
	want := excess + int64(cfg.Timing.SLCRead) + int64(cfg.Timing.TransferPerSubpage)
	if end != want {
		t.Errorf("cap stall wrong: end=%d want %d", end, want)
	}
	if e.Stats.CapStallNS != excess {
		t.Errorf("CapStallNS = %d, want %d", e.Stats.CapStallNS, excess)
	}
	if e.Backlog(0) != int64(5*time.Millisecond) {
		t.Errorf("residual backlog = %d", e.Backlog(0))
	}
}

func TestBackgroundCountsInStats(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	e.PerformBackground(0, 0, OpProgram, 2)
	if e.Stats.Count[OpProgram] != 1 {
		t.Error("background op not counted")
	}
	if e.Stats.BusyTime[OpProgram] == 0 || e.Stats.BusyPerChip[0] == 0 {
		t.Error("background busy time not accounted")
	}
}

func TestChipAvailableAt(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	hostEnd := e.Perform(0, 0, OpProgram, 4, 0)
	e.PerformBackground(0, 0, OpErase, 0)
	want := hostEnd + int64(cfg.Timing.Erase)
	if got := e.ChipAvailableAt(0); got != want {
		t.Errorf("ChipAvailableAt = %d, want %d", got, want)
	}
	if got := e.ChipAvailableAt(1); got != 0 {
		t.Errorf("idle chip availability = %d", got)
	}
}

func TestBackgroundDoesNotTouchOtherChips(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg)
	e.PerformBackground(0, 0, OpErase, 0)
	end := e.Perform(0, 1, OpRead, 1, 0) // different chip
	want := int64(cfg.Timing.SLCRead) + int64(cfg.Timing.TransferPerSubpage)
	if end != want {
		t.Errorf("backlog leaked across chips: end=%d want %d", end, want)
	}
}
