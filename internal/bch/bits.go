package bch

// Bits is a fixed-length bit vector used for messages, codewords and GF(2)
// polynomials (bit i = coefficient of x^i).
type Bits struct {
	n     int
	words []uint64
}

// NewBits returns an all-zero bit vector of length n.
func NewBits(n int) *Bits {
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the vector length in bits.
func (b *Bits) Len() int { return b.n }

// Get returns bit i.
func (b *Bits) Get(i int) int {
	return int(b.words[i>>6]>>(uint(i)&63)) & 1
}

// Set assigns bit i.
func (b *Bits) Set(i, v int) {
	if v&1 == 1 {
		b.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip toggles bit i.
func (b *Bits) Flip(i int) { b.words[i>>6] ^= 1 << (uint(i) & 63) }

// Clone returns a deep copy.
func (b *Bits) Clone() *Bits {
	c := NewBits(b.n)
	copy(c.words, b.words)
	return c
}

// Equal reports whether two vectors have identical length and contents.
func (b *Bits) Equal(o *Bits) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (b *Bits) OnesCount() int {
	n := 0
	for i := 0; i < b.n; i++ {
		n += b.Get(i)
	}
	return n
}
