// Package bch implements binary BCH error-correcting codes over GF(2^m):
// field arithmetic, generator-polynomial construction, systematic encoding,
// and syndrome decoding with Berlekamp–Massey and Chien search.
//
// The SSD simulator uses an analytic ECC-latency model in its hot path
// (internal/errmodel); this package is the concrete substrate behind that
// model — the paper's Table 2 cites a hardware BCH engine (Micheloni et
// al., ISSCC'06) — and is exercised by tests, benchmarks and the endurance
// example to validate that decode effort grows with the raw error count.
package bch

import "fmt"

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// encoded with bit i representing x^i.
var primitivePolys = map[int]uint32{
	4:  0x13,   // x^4 + x + 1
	5:  0x25,   // x^5 + x^2 + 1
	6:  0x43,   // x^6 + x + 1
	7:  0x89,   // x^7 + x^3 + 1
	8:  0x11d,  // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,  // x^9 + x^4 + 1
	10: 0x409,  // x^10 + x^3 + 1
	11: 0x805,  // x^11 + x^2 + 1
	12: 0x1053, // x^12 + x^6 + x^4 + x + 1
	13: 0x201b, // x^13 + x^4 + x^3 + x + 1
	14: 0x4443, // x^14 + x^10 + x^6 + x + 1
}

// Field is GF(2^m) with log/antilog tables for O(1) multiply and inverse.
type Field struct {
	M int // extension degree
	N int // multiplicative group order, 2^m - 1

	exp []uint32 // exp[i] = alpha^i, length 2N to avoid modular reduction
	log []int    // log[x] = i such that alpha^i == x, log[0] undefined
}

// NewField constructs GF(2^m) for 4 <= m <= 14.
func NewField(m int) (*Field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("bch: no primitive polynomial for m=%d (supported 4..14)", m)
	}
	n := 1<<m - 1
	f := &Field{
		M:   m,
		N:   n,
		exp: make([]uint32, 2*n),
		log: make([]int, n+1),
	}
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = x
		f.exp[i+n] = x
		f.log[x] = i
		x <<= 1
		if x&(1<<m) != 0 {
			x ^= poly
		}
	}
	return f, nil
}

// Mul multiplies two field elements.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a non-zero element.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("bch: inverse of zero")
	}
	return f.exp[f.N-f.log[a]]
}

// Div divides a by a non-zero b.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("bch: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.N-f.log[b]]
}

// Pow returns alpha^(log(a) * k) — i.e. a raised to the k-th power.
func (f *Field) Pow(a uint32, k int) uint32 {
	if a == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	e := (f.log[a] * k) % f.N
	if e < 0 {
		e += f.N
	}
	return f.exp[e]
}

// Alpha returns alpha^i for any integer i.
func (f *Field) Alpha(i int) uint32 {
	i %= f.N
	if i < 0 {
		i += f.N
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a non-zero element.
func (f *Field) Log(a uint32) int {
	if a == 0 {
		panic("bch: log of zero")
	}
	return f.log[a]
}
