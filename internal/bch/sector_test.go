package bch

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func sectorCodec(t *testing.T) *SectorCodec {
	t.Helper()
	code, err := New(10, 8) // n=1023, k=943, t=8
	if err != nil {
		t.Fatal(err)
	}
	// 512-byte sectors: 4096 bits over 5 codewords = 820 bits each < 943.
	c, err := NewSectorCodec(code, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randSector(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestSectorCodecRejections(t *testing.T) {
	code, _ := New(10, 8)
	if _, err := NewSectorCodec(code, 0, 4); err == nil {
		t.Error("zero sector size accepted")
	}
	if _, err := NewSectorCodec(code, 512, 0); err == nil {
		t.Error("zero interleave accepted")
	}
	// 512 bytes in 1 codeword: 4096 bits > k=943.
	if _, err := NewSectorCodec(code, 512, 1); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestSectorRoundTripClean(t *testing.T) {
	c := sectorCodec(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		sector := randSector(rng, 512)
		cws, err := c.Encode(sector)
		if err != nil {
			t.Fatal(err)
		}
		if len(cws) != 5 {
			t.Fatalf("codewords = %d", len(cws))
		}
		got, res, err := c.Decode(cws)
		if err != nil {
			t.Fatal(err)
		}
		if res.Corrected != 0 {
			t.Errorf("clean decode corrected %d", res.Corrected)
		}
		if !bytes.Equal(got, sector) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestSectorCorrectsScatteredErrors(t *testing.T) {
	c := sectorCodec(t)
	rng := rand.New(rand.NewSource(2))
	sector := randSector(rng, 512)
	cws, err := c.Encode(sector)
	if err != nil {
		t.Fatal(err)
	}
	// Flip up to T errors in every codeword: the full sector budget.
	flipped := 0
	for _, cw := range cws {
		for e := 0; e < 8; e++ {
			cw.Flip(e * 117 % cw.Len())
			flipped++
		}
	}
	got, res, err := c.Decode(cws)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrected != flipped {
		t.Errorf("corrected %d of %d", res.Corrected, flipped)
	}
	if !bytes.Equal(got, sector) {
		t.Fatal("sector not restored")
	}
	if flipped != c.CorrectableBitsPerSector() {
		t.Errorf("budget %d, injected %d", c.CorrectableBitsPerSector(), flipped)
	}
}

func TestSectorBurstSpreadsAcrossCodewords(t *testing.T) {
	// A contiguous burst of stored-bit errors lands in different codewords
	// thanks to interleaving: a 20-bit burst (far beyond one codeword's
	// t=8) contributes only ceil(20/5)=4 errors per codeword and decodes.
	c := sectorCodec(t)
	rng := rand.New(rand.NewSource(3))
	sector := randSector(rng, 512)
	cws, err := c.Encode(sector)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 20; bit++ {
		w := bit % c.Interleave()
		pos := bit / c.Interleave()
		// Message bit pos lives at codeword offset (N-K)+pos.
		cws[w].Flip(cws[w].Len() - c.code.K + pos)
	}
	got, res, err := c.Decode(cws)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sector) {
		t.Fatal("burst not corrected")
	}
	if res.Corrected != 20 {
		t.Errorf("corrected %d, want 20", res.Corrected)
	}
}

func TestSectorUncorrectable(t *testing.T) {
	c := sectorCodec(t)
	rng := rand.New(rand.NewSource(4))
	sector := randSector(rng, 512)
	cws, _ := c.Encode(sector)
	// Overwhelm one codeword far beyond T.
	for e := 0; e < 40; e++ {
		cws[0].Flip(e * 13 % cws[0].Len())
	}
	_, _, err := c.Decode(cws)
	if !errors.Is(err, ErrSectorUncorrectable) {
		t.Fatalf("err = %v, want ErrSectorUncorrectable", err)
	}
}

func TestSectorDecodeWrongShape(t *testing.T) {
	c := sectorCodec(t)
	if _, _, err := c.Decode(make([]*Bits, 2)); err == nil {
		t.Error("wrong codeword count accepted")
	}
	if _, err := c.Encode(make([]byte, 100)); err == nil {
		t.Error("wrong sector size accepted")
	}
}
