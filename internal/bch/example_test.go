package bch_test

import (
	"fmt"

	"ipusim/internal/bch"
)

// Example encodes a message with the classic (15,7) double-error-
// correcting BCH code, corrupts two bits, and decodes.
func Example() {
	code, err := bch.New(4, 2) // GF(2^4): n=15, k=7, t=2
	if err != nil {
		panic(err)
	}
	msg := bch.NewBits(7)
	msg.Set(0, 1)
	msg.Set(3, 1)
	cw, err := code.Encode(msg)
	if err != nil {
		panic(err)
	}
	cw.Flip(2)
	cw.Flip(11)
	res, err := code.Decode(cw)
	if err != nil {
		panic(err)
	}
	got, err := code.Extract(cw)
	if err != nil {
		panic(err)
	}
	fmt.Printf("corrected %d errors, message intact: %v\n", res.Corrected, got.Equal(msg))
	// Output: corrected 2 errors, message intact: true
}
