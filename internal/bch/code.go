package bch

import (
	"errors"
	"fmt"
)

// Code is a binary BCH code of length N = 2^m - 1 correcting up to T bit
// errors, with K data bits per codeword.
type Code struct {
	field *Field
	N     int // codeword length in bits
	K     int // data length in bits
	T     int // designed correction capability

	gen *Bits // generator polynomial over GF(2), degree N-K
}

// ErrUncorrectable is returned when a received word contains more errors
// than the code can correct (and the decoder detected it).
var ErrUncorrectable = errors.New("bch: uncorrectable error pattern")

// New constructs a BCH code over GF(2^m) correcting t errors.
func New(m, t int) (*Code, error) {
	if t < 1 {
		return nil, fmt.Errorf("bch: t must be >= 1, got %d", t)
	}
	f, err := NewField(m)
	if err != nil {
		return nil, err
	}
	if 2*t >= f.N {
		return nil, fmt.Errorf("bch: t=%d too large for n=%d", t, f.N)
	}
	gen, err := generatorPoly(f, t)
	if err != nil {
		return nil, err
	}
	k := f.N - (gen.Len() - 1)
	if k <= 0 {
		return nil, fmt.Errorf("bch: no data bits left (m=%d, t=%d)", m, t)
	}
	return &Code{field: f, N: f.N, K: k, T: t, gen: gen}, nil
}

// Field returns the underlying Galois field.
func (c *Code) Field() *Field { return c.field }

// Generator returns a copy of the generator polynomial (bit i = coefficient
// of x^i).
func (c *Code) Generator() *Bits { return c.gen.Clone() }

// generatorPoly computes g(x) = lcm of the minimal polynomials of
// alpha^1 .. alpha^2t, as a polynomial over GF(2). The trailing bit of the
// returned vector (index Len()-1) is the leading coefficient.
func generatorPoly(f *Field, t int) (*Bits, error) {
	covered := make([]bool, f.N)
	g := []uint32{1} // polynomial over GF(2^m), index = degree
	for i := 1; i <= 2*t; i++ {
		if covered[i] {
			continue
		}
		// Cyclotomic coset of i: {i, 2i, 4i, ...} mod N.
		var coset []int
		for j := i; !covered[j]; j = (2 * j) % f.N {
			covered[j] = true
			coset = append(coset, j)
		}
		// Minimal polynomial of alpha^i: prod over coset of (x + alpha^j).
		min := []uint32{1}
		for _, j := range coset {
			root := f.Alpha(j)
			next := make([]uint32, len(min)+1)
			for d, coef := range min {
				next[d+1] ^= coef            // x * coef
				next[d] ^= f.Mul(coef, root) // root * coef
			}
			min = next
		}
		// The minimal polynomial must have GF(2) coefficients.
		for d, coef := range min {
			if coef > 1 {
				return nil, fmt.Errorf("bch: minimal polynomial coefficient %d at degree %d not in GF(2)", coef, d)
			}
		}
		// Multiply into g over GF(2).
		next := make([]uint32, len(g)+len(min)-1)
		for a, ca := range g {
			if ca == 0 {
				continue
			}
			for b, cb := range min {
				next[a+b] ^= cb
			}
		}
		g = next
	}
	out := NewBits(len(g))
	for d, coef := range g {
		out.Set(d, int(coef))
	}
	return out, nil
}

// Encode systematically encodes a K-bit message into an N-bit codeword:
// bits [0, N-K) hold the parity, bits [N-K, N) hold the message.
func (c *Code) Encode(msg *Bits) (*Bits, error) {
	if msg.Len() != c.K {
		return nil, fmt.Errorf("bch: message length %d, want %d", msg.Len(), c.K)
	}
	nk := c.N - c.K
	cw := NewBits(c.N)
	for i := 0; i < c.K; i++ {
		cw.Set(nk+i, msg.Get(i))
	}
	// Compute x^(n-k)*m(x) mod g(x) with an LFSR over GF(2).
	reg := make([]int, nk)
	for i := c.K - 1; i >= 0; i-- {
		fb := msg.Get(i) ^ reg[nk-1]
		for j := nk - 1; j > 0; j-- {
			reg[j] = reg[j-1]
			if fb == 1 && c.gen.Get(j) == 1 {
				reg[j] ^= 1
			}
		}
		reg[0] = fb & c.gen.Get(0)
	}
	for i := 0; i < nk; i++ {
		cw.Set(i, reg[i])
	}
	return cw, nil
}

// Extract returns the K message bits of a codeword.
func (c *Code) Extract(cw *Bits) (*Bits, error) {
	if cw.Len() != c.N {
		return nil, fmt.Errorf("bch: codeword length %d, want %d", cw.Len(), c.N)
	}
	msg := NewBits(c.K)
	nk := c.N - c.K
	for i := 0; i < c.K; i++ {
		msg.Set(i, cw.Get(nk+i))
	}
	return msg, nil
}

// syndromes evaluates the received polynomial at alpha^1..alpha^2t.
func (c *Code) syndromes(recv *Bits) ([]uint32, bool) {
	f := c.field
	s := make([]uint32, 2*c.T+1) // s[1..2t]
	anyNonZero := false
	for i := 0; i < c.N; i++ {
		if recv.Get(i) == 0 {
			continue
		}
		for j := 1; j <= 2*c.T; j++ {
			s[j] ^= f.Alpha(i * j)
		}
	}
	for j := 1; j <= 2*c.T; j++ {
		if s[j] != 0 {
			anyNonZero = true
			break
		}
	}
	return s, anyNonZero
}

// DecodeResult reports how a decode went.
type DecodeResult struct {
	// Corrected is the number of bit positions the decoder flipped.
	Corrected int
	// Iterations counts the Galois-field multiplications spent in
	// Berlekamp–Massey and the Chien search — the decoder effort, which
	// grows with the number of errors and underlies the simulator's
	// ECC-latency model.
	Iterations int
}

// Decode corrects recv in place and reports the number of corrected bits.
// It returns ErrUncorrectable when the error pattern exceeds the code's
// capability and the failure is detectable.
func (c *Code) Decode(recv *Bits) (DecodeResult, error) {
	var res DecodeResult
	if recv.Len() != c.N {
		return res, fmt.Errorf("bch: received length %d, want %d", recv.Len(), c.N)
	}
	s, dirty := c.syndromes(recv)
	if !dirty {
		return res, nil
	}
	f := c.field

	// Berlekamp–Massey: find the error locator sigma(x).
	sigma := []uint32{1}
	prev := []uint32{1}
	var l, shift = 0, 1
	b := uint32(1)
	for i := 1; i <= 2*c.T; i++ {
		// Discrepancy d = S_i + sum_{j=1..l} sigma_j * S_{i-j}.
		d := s[i]
		for j := 1; j <= l && j < len(sigma); j++ {
			if i-j >= 1 {
				d ^= f.Mul(sigma[j], s[i-j])
				res.Iterations++
			}
		}
		if d == 0 {
			shift++
			continue
		}
		// sigma' = sigma - (d/b) * x^shift * prev
		scale := f.Div(d, b)
		next := make([]uint32, max(len(sigma), len(prev)+shift))
		copy(next, sigma)
		for j, coef := range prev {
			next[j+shift] ^= f.Mul(scale, coef)
		}
		if 2*l <= i-1 {
			prev = sigma
			b = d
			l = i - l
			shift = 1
		} else {
			shift++
		}
		sigma = next
	}
	// Trim leading zeros.
	deg := len(sigma) - 1
	for deg > 0 && sigma[deg] == 0 {
		deg--
	}
	sigma = sigma[:deg+1]
	if deg > c.T {
		return res, ErrUncorrectable
	}

	// Chien search: error at position i iff sigma(alpha^{-i}) == 0.
	var locs []int
	for i := 0; i < c.N && len(locs) <= deg; i++ {
		v := uint32(0)
		for d, coef := range sigma {
			if coef != 0 {
				v ^= f.Mul(coef, f.Alpha(-i*d))
				res.Iterations++
			}
		}
		if v == 0 {
			locs = append(locs, i)
		}
	}
	if len(locs) != deg {
		// sigma does not split over the field: more than T errors.
		return res, ErrUncorrectable
	}
	for _, i := range locs {
		recv.Flip(i)
	}
	res.Corrected = len(locs)

	// Verify: recomputing syndromes guards against miscorrection.
	if _, stillDirty := c.syndromes(recv); stillDirty {
		return res, ErrUncorrectable
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
