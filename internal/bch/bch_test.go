package bch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldConstruction(t *testing.T) {
	for m := 4; m <= 14; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if f.N != 1<<m-1 {
			t.Errorf("m=%d: N=%d", m, f.N)
		}
	}
	if _, err := NewField(3); err == nil {
		t.Error("m=3 accepted")
	}
	if _, err := NewField(15); err == nil {
		t.Error("m=15 accepted")
	}
}

func TestFieldAxioms(t *testing.T) {
	f, _ := NewField(8)
	rng := rand.New(rand.NewSource(1))
	randElem := func() uint32 { return uint32(rng.Intn(f.N + 1)) }
	for i := 0; i < 5000; i++ {
		a, b, c := randElem(), randElem(), randElem()
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatalf("mul not commutative: %d %d", a, b)
		}
		if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
			t.Fatalf("mul not associative")
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("1 not identity for %d", a)
		}
		if f.Mul(a, 0) != 0 {
			t.Fatalf("0 not absorbing for %d", a)
		}
		// Distributivity over XOR (field addition).
		if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
			t.Fatalf("not distributive: a=%d b=%d c=%d", a, b, c)
		}
		if a != 0 {
			if f.Mul(a, f.Inv(a)) != 1 {
				t.Fatalf("inverse broken for %d", a)
			}
			if f.Div(b, a) != f.Mul(b, f.Inv(a)) {
				t.Fatalf("div inconsistent")
			}
		}
	}
}

func TestFieldPowAndAlpha(t *testing.T) {
	f, _ := NewField(6)
	a := f.Alpha(1)
	x := uint32(1)
	for k := 0; k < 2*f.N; k++ {
		if got := f.Pow(a, k); got != x {
			t.Fatalf("alpha^%d = %d, want %d", k, got, x)
		}
		if got := f.Alpha(k); got != x {
			t.Fatalf("Alpha(%d) = %d, want %d", k, got, x)
		}
		x = f.Mul(x, a)
	}
	if f.Alpha(-1) != f.Inv(a) {
		t.Error("Alpha(-1) != alpha^-1")
	}
	if f.Pow(0, 0) != 1 || f.Pow(0, 3) != 0 {
		t.Error("Pow with zero base broken")
	}
}

func TestFieldPanics(t *testing.T) {
	f, _ := NewField(5)
	for _, fn := range []func(){
		func() { f.Inv(0) },
		func() { f.Div(1, 0) },
		func() { f.Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBitsBasics(t *testing.T) {
	b := NewBits(130)
	if b.Len() != 130 || b.OnesCount() != 0 {
		t.Fatal("fresh Bits not empty")
	}
	b.Set(0, 1)
	b.Set(64, 1)
	b.Set(129, 1)
	if b.Get(0) != 1 || b.Get(64) != 1 || b.Get(129) != 1 || b.Get(1) != 0 {
		t.Fatal("Set/Get broken")
	}
	if b.OnesCount() != 3 {
		t.Fatalf("OnesCount = %d", b.OnesCount())
	}
	b.Flip(64)
	if b.Get(64) != 0 || b.OnesCount() != 2 {
		t.Fatal("Flip broken")
	}
	b.Set(0, 0)
	if b.Get(0) != 0 {
		t.Fatal("Set to zero broken")
	}
	c := b.Clone()
	if !c.Equal(b) {
		t.Fatal("Clone not equal")
	}
	c.Flip(5)
	if c.Equal(b) {
		t.Fatal("Equal ignores differences")
	}
	if b.Equal(NewBits(7)) {
		t.Fatal("Equal ignores length")
	}
}

func TestNewCodeParameters(t *testing.T) {
	// Classic (15,7,2) BCH code.
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 15 || c.K != 7 || c.T != 2 {
		t.Fatalf("(n,k,t) = (%d,%d,%d), want (15,7,2)", c.N, c.K, c.T)
	}
	// Its generator is x^8+x^7+x^6+x^4+1 = 0x1D1.
	g := c.Generator()
	want := []int{1, 0, 0, 0, 1, 0, 1, 1, 1}
	if g.Len() != len(want) {
		t.Fatalf("generator degree %d, want 8", g.Len()-1)
	}
	for i, w := range want {
		if g.Get(i) != w {
			t.Fatalf("generator bit %d = %d, want %d", i, g.Get(i), w)
		}
	}
}

func TestNewCodeRejections(t *testing.T) {
	if _, err := New(4, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(4, 8); err == nil {
		t.Error("2t >= n accepted")
	}
	if _, err := New(3, 1); err == nil {
		t.Error("unsupported field accepted")
	}
}

func randomMessage(rng *rand.Rand, k int) *Bits {
	m := NewBits(k)
	for i := 0; i < k; i++ {
		m.Set(i, rng.Intn(2))
	}
	return m
}

func TestEncodeDecodeClean(t *testing.T) {
	c, err := New(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		msg := randomMessage(rng, c.K)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Decode(cw)
		if err != nil || res.Corrected != 0 {
			t.Fatalf("clean codeword: corrected=%d err=%v", res.Corrected, err)
		}
		got, err := c.Extract(cw)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(msg) {
			t.Fatal("systematic extraction mismatch")
		}
	}
}

func TestCodewordDivisibleByGenerator(t *testing.T) {
	// Every valid codeword must evaluate to zero at alpha^1..alpha^2t.
	c, _ := New(6, 3)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		cw, _ := c.Encode(randomMessage(rng, c.K))
		s, dirty := c.syndromes(cw)
		if dirty {
			t.Fatalf("codeword has non-zero syndromes: %v", s)
		}
	}
}

func TestCorrectsUpToT(t *testing.T) {
	for _, p := range []struct{ m, t int }{{4, 2}, {6, 3}, {8, 5}, {10, 8}} {
		c, err := New(p.m, p.t)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(p.m*100 + p.t)))
		for e := 0; e <= p.t; e++ {
			msg := randomMessage(rng, c.K)
			cw, _ := c.Encode(msg)
			corrupted := cw.Clone()
			flipped := map[int]bool{}
			for len(flipped) < e {
				pos := rng.Intn(c.N)
				if !flipped[pos] {
					flipped[pos] = true
					corrupted.Flip(pos)
				}
			}
			res, err := c.Decode(corrupted)
			if err != nil {
				t.Fatalf("(m=%d t=%d) %d errors: %v", p.m, p.t, e, err)
			}
			if res.Corrected != e {
				t.Fatalf("(m=%d t=%d) corrected %d, want %d", p.m, p.t, res.Corrected, e)
			}
			if !corrupted.Equal(cw) {
				t.Fatalf("(m=%d t=%d) %d errors: codeword not restored", p.m, p.t, e)
			}
		}
	}
}

func TestDetectsBeyondT(t *testing.T) {
	c, _ := New(8, 4)
	rng := rand.New(rand.NewSource(11))
	detected, miscorrected := 0, 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		msg := randomMessage(rng, c.K)
		cw, _ := c.Encode(msg)
		corrupted := cw.Clone()
		flipped := map[int]bool{}
		for len(flipped) < c.T+3 {
			pos := rng.Intn(c.N)
			if !flipped[pos] {
				flipped[pos] = true
				corrupted.Flip(pos)
			}
		}
		_, err := c.Decode(corrupted)
		if err != nil {
			detected++
		} else if !corrupted.Equal(cw) {
			miscorrected++
		}
	}
	// A t+3-error pattern may occasionally land inside another codeword's
	// sphere (miscorrection) but detection must dominate.
	if detected < trials/2 {
		t.Errorf("detected only %d/%d overweight patterns (miscorrected %d)", detected, trials, miscorrected)
	}
}

func TestDecodeEffortGrowsWithErrors(t *testing.T) {
	// This is the property the simulator's analytic ECC model relies on:
	// more raw errors => more decoder iterations => more latency.
	c, _ := New(10, 8)
	rng := rand.New(rand.NewSource(5))
	msg := randomMessage(rng, c.K)
	cw, _ := c.Encode(msg)
	prev := -1
	for e := 1; e <= c.T; e += 2 {
		corrupted := cw.Clone()
		for i := 0; i < e; i++ {
			corrupted.Flip(i * 17)
		}
		res, err := c.Decode(corrupted)
		if err != nil {
			t.Fatalf("%d errors: %v", e, err)
		}
		if res.Iterations < prev {
			t.Errorf("iterations fell from %d to %d at %d errors", prev, res.Iterations, e)
		}
		prev = res.Iterations
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	c, _ := New(4, 2)
	if _, err := c.Decode(NewBits(10)); err == nil {
		t.Error("wrong-length decode accepted")
	}
	if _, err := c.Encode(NewBits(3)); err == nil {
		t.Error("wrong-length encode accepted")
	}
	if _, err := c.Extract(NewBits(3)); err == nil {
		t.Error("wrong-length extract accepted")
	}
}

// TestEncodeDecodeQuick is a property test: any message with any error
// pattern of weight <= t round-trips.
func TestEncodeDecodeQuick(t *testing.T) {
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, weight uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := int(weight) % (c.T + 1)
		msg := randomMessage(rng, c.K)
		cw, err := c.Encode(msg)
		if err != nil {
			return false
		}
		corrupted := cw.Clone()
		flipped := map[int]bool{}
		for len(flipped) < e {
			pos := rng.Intn(c.N)
			if !flipped[pos] {
				flipped[pos] = true
				corrupted.Flip(pos)
			}
		}
		res, err := c.Decode(corrupted)
		return err == nil && res.Corrected == e && corrupted.Equal(cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	c, _ := New(10, 8)
	rng := rand.New(rand.NewSource(1))
	msg := randomMessage(rng, c.K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	c, _ := New(10, 8)
	rng := rand.New(rand.NewSource(1))
	msg := randomMessage(rng, c.K)
	cw, _ := c.Encode(msg)
	for _, errs := range []int{0, 4, 8} {
		b.Run(benchName(errs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				corrupted := cw.Clone()
				for e := 0; e < errs; e++ {
					corrupted.Flip(e * 29)
				}
				b.StartTimer()
				if _, err := c.Decode(corrupted); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(errs int) string {
	switch errs {
	case 0:
		return "clean"
	case 4:
		return "4errors"
	default:
		return "8errors"
	}
}
