package bch

import (
	"errors"
	"fmt"
)

// SectorCodec protects byte sectors (e.g. the simulator's 4 KiB subpages)
// the way flash controllers do: the sector is split across several
// shortened interleaved BCH codewords, so a burst of raw bit errors is
// spread over independent codewords and each stays within its correction
// capability.
type SectorCodec struct {
	code       *Code
	sectorSize int // bytes per sector
	interleave int // number of codewords per sector
	dataBits   int // message bits carried per codeword (shortened)
}

// NewSectorCodec builds a codec for sectorSize-byte sectors over the given
// BCH code, splitting each sector across interleave codewords.
func NewSectorCodec(code *Code, sectorSize, interleave int) (*SectorCodec, error) {
	if sectorSize <= 0 {
		return nil, fmt.Errorf("bch: sector size %d must be positive", sectorSize)
	}
	if interleave <= 0 {
		return nil, fmt.Errorf("bch: interleave %d must be positive", interleave)
	}
	totalBits := sectorSize * 8
	dataBits := (totalBits + interleave - 1) / interleave
	if dataBits > code.K {
		return nil, fmt.Errorf("bch: %d data bits per codeword exceed the code's k=%d; raise interleave",
			dataBits, code.K)
	}
	return &SectorCodec{code: code, sectorSize: sectorSize, interleave: interleave, dataBits: dataBits}, nil
}

// SectorSize returns the protected sector size in bytes.
func (c *SectorCodec) SectorSize() int { return c.sectorSize }

// Interleave returns the number of codewords per sector.
func (c *SectorCodec) Interleave() int { return c.interleave }

// CorrectableBitsPerSector returns the total raw-bit-error budget of one
// sector — T errors per codeword, provided the interleaving spreads them.
func (c *SectorCodec) CorrectableBitsPerSector() int { return c.code.T * c.interleave }

// Encode produces the interleaved codewords protecting a sector.
// Data bit i of the sector goes to codeword i%interleave — adjacent bits
// land in different codewords, the standard burst-spreading layout.
func (c *SectorCodec) Encode(sector []byte) ([]*Bits, error) {
	if len(sector) != c.sectorSize {
		return nil, fmt.Errorf("bch: sector length %d, want %d", len(sector), c.sectorSize)
	}
	msgs := make([]*Bits, c.interleave)
	for i := range msgs {
		msgs[i] = NewBits(c.code.K) // shortened: leading bits stay zero
	}
	fill := make([]int, c.interleave)
	for i := 0; i < c.sectorSize*8; i++ {
		bit := int(sector[i>>3]>>(uint(i)&7)) & 1
		w := i % c.interleave
		msgs[w].Set(fill[w], bit)
		fill[w]++
	}
	out := make([]*Bits, c.interleave)
	for i, m := range msgs {
		cw, err := c.code.Encode(m)
		if err != nil {
			return nil, err
		}
		out[i] = cw
	}
	return out, nil
}

// ErrSectorUncorrectable reports a sector whose raw errors exceeded the
// codec's capability.
var ErrSectorUncorrectable = errors.New("bch: sector uncorrectable")

// SectorDecodeResult aggregates per-codeword decode outcomes.
type SectorDecodeResult struct {
	// Corrected is the total bit errors fixed across the codewords.
	Corrected int
	// Iterations is the total decoder effort (see DecodeResult).
	Iterations int
}

// Decode corrects the received codewords in place and reassembles the
// sector. It returns ErrSectorUncorrectable (wrapped) when any codeword
// fails.
func (c *SectorCodec) Decode(received []*Bits) ([]byte, SectorDecodeResult, error) {
	var res SectorDecodeResult
	if len(received) != c.interleave {
		return nil, res, fmt.Errorf("bch: %d codewords, want %d", len(received), c.interleave)
	}
	msgs := make([]*Bits, c.interleave)
	for i, cw := range received {
		r, err := c.code.Decode(cw)
		res.Corrected += r.Corrected
		res.Iterations += r.Iterations
		if err != nil {
			return nil, res, fmt.Errorf("%w: codeword %d: %v", ErrSectorUncorrectable, i, err)
		}
		m, err := c.code.Extract(cw)
		if err != nil {
			return nil, res, err
		}
		msgs[i] = m
	}
	sector := make([]byte, c.sectorSize)
	take := make([]int, c.interleave)
	for i := 0; i < c.sectorSize*8; i++ {
		w := i % c.interleave
		if msgs[w].Get(take[w]) == 1 {
			sector[i>>3] |= 1 << (uint(i) & 7)
		}
		take[w]++
	}
	return sector, res, nil
}
