// Package ftl holds the address-translation substrate shared by the three
// schemes: a dense logical-subpage → physical-subpage map used for
// simulation bookkeeping, and the per-scheme mapping-table memory models
// behind the paper's Fig. 11.
//
// The simulator tracks every scheme at subpage granularity internally so
// reads and invalidations are exact; the *memory accounting* instead
// follows each scheme's declared table design (page-level map, two-level
// subpage map, or page map plus in-page offset bits).
package ftl

import (
	"fmt"

	"ipusim/internal/flash"
)

// Map is a dense logical-subpage to physical-subpage translation table.
type Map struct {
	entries []flash.PPA
	mapped  int
}

// NewMap creates a map covering n logical subpages, all unmapped.
func NewMap(n int) *Map {
	m := &Map{entries: make([]flash.PPA, n)}
	for i := range m.entries {
		m.entries[i] = flash.UnmappedPPA
	}
	return m
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	c := &Map{entries: make([]flash.PPA, len(m.entries)), mapped: m.mapped}
	copy(c.entries, m.entries)
	return c
}

// Restore overwrites m with a copy of t, reusing m's entry table. Both maps
// must cover the same logical space.
func (m *Map) Restore(t *Map) {
	copy(m.entries, t.entries)
	m.mapped = t.mapped
}

// Len returns the logical space size in subpages.
func (m *Map) Len() int { return len(m.entries) }

// Mapped returns the number of currently mapped logical subpages.
func (m *Map) Mapped() int { return m.mapped }

// Get returns the physical location of a logical subpage.
func (m *Map) Get(lsn flash.LSN) flash.PPA {
	return m.entries[lsn]
}

// Set maps a logical subpage to a physical location.
func (m *Map) Set(lsn flash.LSN, ppa flash.PPA) {
	if !ppa.Mapped() {
		panic(fmt.Sprintf("ftl: Set(%d) with unmapped PPA; use Unmap", lsn))
	}
	if !m.entries[lsn].Mapped() {
		m.mapped++
	}
	m.entries[lsn] = ppa
}

// Unmap removes a logical subpage's translation.
func (m *Map) Unmap(lsn flash.LSN) {
	if m.entries[lsn].Mapped() {
		m.mapped--
	}
	m.entries[lsn] = flash.UnmappedPPA
}

// Table-entry sizes for the Fig. 11 memory model, in bytes. A page-level
// entry is a 4-byte physical page number. A subpage-level entry in MGA's
// second-level table needs both a physical pointer and a logical
// back-reference (Feng et al.'s two-level design), so 8 bytes. IPU's
// second-level state is 2 bits per SLC-resident frame — just the in-page
// offset of the latest version (§4.4.1).
const (
	PageEntryBytes      = 4
	SubpageEntryBytes   = 8
	ipuOffsetBitsPerFrm = 2
	isPrimeEntryBytes   = 4 // IS' value per SLC page (§4.4.1: 4 B each)
	levelLabelBits      = 2 // block-level label per SLC block (§4.4.1)
)

// MemoryModel accounts the mapping-table footprint of each scheme for one
// run, following §4.4.1 of the paper.
type MemoryModel struct {
	cfg *flash.Config
}

// NewMemoryModel builds the accountant for a geometry.
func NewMemoryModel(cfg *flash.Config) *MemoryModel { return &MemoryModel{cfg: cfg} }

// logicalFrames is the number of 16 KiB logical page frames.
func (m *MemoryModel) logicalFrames() int64 {
	return int64(m.cfg.LogicalSubpages / m.cfg.SlotsPerPage())
}

// BaselineBytes is the page-level dynamic mapping table: one entry per
// logical frame.
func (m *MemoryModel) BaselineBytes() int64 {
	return m.logicalFrames() * PageEntryBytes
}

// MGABytes adds the second-level subpage table: one entry per SLC-cache-
// resident subpage at the observed peak occupancy.
func (m *MemoryModel) MGABytes(peakSubpageEntries int64) int64 {
	return m.BaselineBytes() + peakSubpageEntries*SubpageEntryBytes
}

// IPUBytes adds the in-page offset bits for SLC-resident frames — the only
// second-level *mapping* state IPU needs (§4.4.1), since a page holds the
// versions of a single request's data and the table only records which
// slot is newest. The block labels and IS' values are GC metadata, not
// mapping table, and are accounted by IPUGCMetadataBytes (the paper lists
// them separately from the 0.84% mapping overhead).
func (m *MemoryModel) IPUBytes(peakSLCFrames int64) int64 {
	offsets := (peakSLCFrames*ipuOffsetBitsPerFrm + 7) / 8
	return m.BaselineBytes() + offsets
}

// IPUGCMetadataBytes accounts the three-level block labels (2 bits per SLC
// block) and the IS' values (4 bytes per SLC page) of §4.4.1.
func (m *MemoryModel) IPUGCMetadataBytes() int64 {
	labels := (int64(m.cfg.SLCBlocks())*levelLabelBits + 7) / 8
	isPrime := int64(m.cfg.SLCBlocks()) * int64(m.cfg.SLCPagesPerBlock) * isPrimeEntryBytes
	return labels + isPrime
}

// Normalized returns scheme bytes relative to the Baseline table.
func (m *MemoryModel) Normalized(bytes int64) float64 {
	return float64(bytes) / float64(m.BaselineBytes())
}
