package ftl

import (
	"testing"
	"testing/quick"

	"ipusim/internal/flash"
)

func TestMapBasics(t *testing.T) {
	m := NewMap(100)
	if m.Len() != 100 || m.Mapped() != 0 {
		t.Fatalf("fresh map: len=%d mapped=%d", m.Len(), m.Mapped())
	}
	for i := 0; i < 100; i++ {
		if m.Get(flash.LSN(i)).Mapped() {
			t.Fatalf("LSN %d mapped in fresh map", i)
		}
	}
	p := flash.NewPPA(3, 7, 1)
	m.Set(5, p)
	if got := m.Get(5); got != p {
		t.Errorf("Get = %v, want %v", got, p)
	}
	if m.Mapped() != 1 {
		t.Errorf("Mapped = %d", m.Mapped())
	}
	// Remap does not double-count.
	m.Set(5, flash.NewPPA(4, 0, 0))
	if m.Mapped() != 1 {
		t.Errorf("remap changed count: %d", m.Mapped())
	}
	m.Unmap(5)
	if m.Mapped() != 0 || m.Get(5).Mapped() {
		t.Error("Unmap failed")
	}
	// Unmapping twice is harmless.
	m.Unmap(5)
	if m.Mapped() != 0 {
		t.Error("double unmap corrupted count")
	}
}

func TestMapSetRejectsUnmappedPPA(t *testing.T) {
	m := NewMap(10)
	defer func() {
		if recover() == nil {
			t.Error("Set with UnmappedPPA must panic")
		}
	}()
	m.Set(0, flash.UnmappedPPA)
}

func TestMapMappedCountInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMap(64)
		for _, op := range ops {
			lsn := flash.LSN(op % 64)
			if op%3 == 0 {
				m.Unmap(lsn)
			} else {
				m.Set(lsn, flash.NewPPA(int(op%100), int(op%8), int(op%4)))
			}
		}
		count := 0
		for i := 0; i < 64; i++ {
			if m.Get(flash.LSN(i)).Mapped() {
				count++
			}
		}
		return count == m.Mapped()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryModelBaseline(t *testing.T) {
	cfg := flash.DefaultConfig()
	mm := NewMemoryModel(&cfg)
	frames := int64(cfg.LogicalSubpages / 4)
	if got := mm.BaselineBytes(); got != frames*PageEntryBytes {
		t.Errorf("BaselineBytes = %d, want %d", got, frames*PageEntryBytes)
	}
	if mm.Normalized(mm.BaselineBytes()) != 1.0 {
		t.Error("Baseline must normalise to 1.0")
	}
}

// TestMemoryModelFig11Shape checks the orderings of Fig. 11: Baseline <
// IPU (by around a percent) << MGA (by tens of percent) when both caches
// run at full occupancy.
func TestMemoryModelFig11Shape(t *testing.T) {
	cfg := flash.DefaultConfig()
	mm := NewMemoryModel(&cfg)
	peakSubpages := int64(cfg.SLCSubpages())        // MGA: every SLC slot mapped
	peakFrames := int64(cfg.SLCSubpages() / 4)      // IPU: every SLC page one frame
	mga := mm.Normalized(mm.MGABytes(peakSubpages)) // expected well above 1.1
	ipu := mm.Normalized(mm.IPUBytes(peakFrames))   // expected just above 1.0
	if mga < 1.10 {
		t.Errorf("MGA normalised size %.4f; expected a large overhead", mga)
	}
	if ipu < 1.0 || ipu > 1.10 {
		t.Errorf("IPU normalised size %.4f; expected a small overhead", ipu)
	}
	if ipu >= mga {
		t.Errorf("IPU (%.4f) must be cheaper than MGA (%.4f)", ipu, mga)
	}
}

func TestMemoryModelMonotonicInOccupancy(t *testing.T) {
	cfg := flash.DefaultConfig()
	mm := NewMemoryModel(&cfg)
	if mm.MGABytes(100) >= mm.MGABytes(1000) {
		t.Error("MGA bytes must grow with occupancy")
	}
	if mm.IPUBytes(100) >= mm.IPUBytes(100000) {
		t.Error("IPU bytes must grow with occupancy")
	}
}
