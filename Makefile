# ipusim — build/test/reproduce targets.

GO ?= go

.PHONY: all build test vet race bench experiments ablation sensitivity fuzz fuzz-parse fuzz-replay golden clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The matrix harness is the only concurrent code path; -race over the
# internal packages covers it plus every shared-state regression.
race:
	$(GO) test -race ./internal/...

# Re-accept the golden metric snapshots after an intentional behaviour
# change (inspect the diff in the test failure first).
golden:
	$(GO) test ./internal/core -run Golden -update

# Regenerate every table and figure of the paper (plus the P/E sweep).
experiments:
	$(GO) run ./cmd/experiments -scale 0.05 -pesweep

# The IPU design-choice ablation (ISR policy, hierarchy, intra-page
# update, adaptive combining).
ablation:
	$(GO) run ./cmd/experiments -scale 0.05 -traces ts0,wdev0 -schemes IPU -ablate

sensitivity:
	$(GO) run ./cmd/experiments -scale 0.05 -traces ts0 -sensitivity slcratio

bench:
	$(GO) test -bench=. -benchmem

fuzz: fuzz-parse fuzz-replay

fuzz-parse:
	$(GO) test ./internal/trace -fuzz FuzzParseMSR -fuzztime 30s

# Replays fuzzer-generated write/read/trim programs through each scheme
# with the internal/check invariant harness attached.
fuzz-replay:
	$(GO) test ./internal/scheme -fuzz FuzzReplay -fuzztime 30s

clean:
	$(GO) clean ./...
