# ipusim — build/test/reproduce targets.

GO ?= go

.PHONY: all build test vet race serve serve-test serve-cluster-test bench bench-json bench-baseline bench-check check-schemes check-parallel check-tenants check-closedloop experiments ablation sensitivity fuzz fuzz-parse fuzz-replay golden clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# The matrix harness is the only concurrent code path; -race over the
# internal packages covers it plus every shared-state regression.
race:
	$(GO) test -race ./internal/...

# Start the experiment daemon locally with the default settings.
serve:
	$(GO) run ./cmd/ipusimd

# The experiment-service acceptance gate: every server lifecycle test plus
# the 32-job soak (half cancelled mid-run, graceful drain, goroutine-leak
# and snapshot-cache-integrity checks), all under the race detector, and
# the daemon's own end-to-end boot/shutdown test.
serve-test:
	$(GO) test -race -count 1 ./internal/server ./cmd/ipusimd

# The cluster acceptance gate: the result-cache hit path (byte-identical,
# sim never re-runs), durable-store restart recovery, the consistent-hash
# ring units, and the coordinator soak — sweeps sharded over two
# in-process workers with one killed mid-sweep, aggregated rows compared
# bit-for-bit to a single daemon — all under the race detector.
serve-cluster-test:
	$(GO) test -race -count 1 \
	  -run 'TestCacheHit|TestCanonicalKey|TestJobKey|TestRestartRecovery|TestCoordinator|TestRing|TestStore' \
	  ./internal/server
	$(GO) test -race -count 1 -run TestDaemonCluster ./cmd/ipusimd

# Re-accept the golden metric snapshots after an intentional behaviour
# change (inspect the diff in the test failure first).
golden:
	$(GO) test ./internal/core -run Golden -update

# The scheme-matrix acceptance gate: every registered scheme through the
# invariant harness (checked replays, stress, structural sweeps), the
# cross-scheme differential runner, and the golden metric snapshots.
check-schemes:
	$(GO) test -count 1 ./internal/scheme
	$(GO) test -count 1 -run 'TestDifferential|TestRunDifferential|TestGolden|TestRegistry|TestSchemeNames' ./internal/core

# The parallel-replay acceptance gate: the commit-pipeline units and the
# parallel-vs-serial bit-identity differential — every scheme and trace at
# Parallelism 1 vs N compared with reflect.DeepEqual on full results —
# plus the cancellation goroutine-leak check, all under the race detector.
check-parallel:
	$(GO) test -race -count 1 -run 'TestPipeline|TestParallel' ./internal/sim ./internal/core

# The multi-tenant/spec-API acceptance gate: the spec-vs-legacy
# bit-identity differential across every scheme, multi-tenant replay
# determinism, cancelled-run per-tenant partials, the write-cache
# front-end (unit + integration), the tenant scheduler units, and the
# multi-tenant golden snapshots — all under the race detector.
check-tenants:
	$(GO) test -race -count 1 ./internal/cache ./internal/workload
	$(GO) test -race -count 1 \
	  -run 'TestSpecPath|TestMultiTenant|TestWriteCache|TestClosedLoopSpec|TestGoldenMultiTenant' \
	  ./internal/core
	$(GO) test -race -count 1 -run 'TestV2JobKeys|TestV3|TestMultiTenantJob' ./internal/server

# The closed-loop fast-path acceptance gate: the slab write cache
# (eviction-order scripts, the fuzz differential against a map-backed
# reference, the zero-alloc steady state), the parallel-vs-serial
# closed-loop bit-identity differential across every scheme and tenant
# mix, the zero-alloc request loop, the concurrent contention study
# (concurrent == serial rows, standalone cell == study row, aggregated
# progress/cancel), and the sharded "contention" job kind — all under
# the race detector.
check-closedloop:
	$(GO) test -race -count 1 \
	  -run 'TestEvictionOrder|TestSlab|TestWriteCacheSteadyState' ./internal/cache
	$(GO) test -race -count 1 -run 'TestClosedLoop|TestContention' ./internal/core
	$(GO) test -race -count 1 -run 'TestContention|TestV4' ./internal/server

# Regenerate every table and figure of the paper (plus the P/E sweep).
experiments:
	$(GO) run ./cmd/experiments -scale 0.05 -pesweep

# The IPU design-choice ablation (ISR policy, hierarchy, intra-page
# update, adaptive combining).
ablation:
	$(GO) run ./cmd/experiments -scale 0.05 -traces ts0,wdev0 -schemes IPU -ablate

sensitivity:
	$(GO) run ./cmd/experiments -scale 0.05 -traces ts0 -sensitivity slcratio

bench:
	$(GO) test -bench=. -benchmem

# Run the fixed-work benchmark suite across every layer and record it as
# JSON: raw output in bench/latest.txt, parsed record in BENCH_<n>.json at
# the first free index (BENCH_0.json is this repo's committed baseline).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 200ms ./... | tee bench/latest.txt
	n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	  $(GO) run ./cmd/benchjson -o BENCH_$$n.json < bench/latest.txt && \
	  echo "wrote BENCH_$$n.json"

# Re-record the committed benchmark baseline after an intentional
# performance change. Run on a quiet machine; -count 6 gives benchstat a
# distribution per benchmark.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 200ms -count 6 ./... | tee bench/baseline.txt
	$(GO) run ./cmd/benchjson -o bench/baseline.json < bench/baseline.txt

# The CI regression gate, runnable locally: rerun the suite and compare
# against the committed baseline. Allocation counts are gated tightly
# (deterministic); wall time loosely (hardware varies).
bench-check:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 100ms ./... | tee bench/current.txt
	$(GO) run ./cmd/benchjson -o bench/current.json < bench/current.txt
	$(GO) run ./cmd/benchjson -compare -time-threshold 2.0 -space-threshold 0.15 \
	  bench/baseline.json bench/current.json

fuzz: fuzz-parse fuzz-replay

fuzz-parse:
	$(GO) test ./internal/trace -fuzz FuzzParseMSR -fuzztime 30s

# Replays fuzzer-generated write/read/trim programs through each scheme
# with the internal/check invariant harness attached.
fuzz-replay:
	$(GO) test ./internal/scheme -fuzz FuzzReplay -fuzztime 30s

clean:
	$(GO) clean ./...
