# ipusim — build/test/reproduce targets.

GO ?= go

.PHONY: all build test vet bench experiments ablation sensitivity fuzz clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Regenerate every table and figure of the paper (plus the P/E sweep).
experiments:
	$(GO) run ./cmd/experiments -scale 0.05 -pesweep

# The IPU design-choice ablation (ISR policy, hierarchy, intra-page
# update, adaptive combining).
ablation:
	$(GO) run ./cmd/experiments -scale 0.05 -traces ts0,wdev0 -schemes IPU -ablate

sensitivity:
	$(GO) run ./cmd/experiments -scale 0.05 -traces ts0 -sensitivity slcratio

bench:
	$(GO) test -bench=. -benchmem

fuzz:
	$(GO) test ./internal/trace -fuzz FuzzParseMSR -fuzztime 30s

clean:
	$(GO) clean ./...
