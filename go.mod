module ipusim

go 1.22
