// Package ipusim_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md for the
// experiment index). Each benchmark runs the corresponding experiment and
// reports its headline series as benchmark metrics; `cmd/experiments`
// prints the full tables.
//
// Run with:
//
//	go test -bench=. -benchmem
package ipusim_test

import (
	"context"
	"io"
	"runtime"
	"testing"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/core"
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/trace"
)

// benchScale keeps one full matrix under a second; cmd/experiments runs
// larger scales.
const benchScale = 0.02

// benchSeed fixes trace synthesis across benchmarks.
const benchSeed = 42

func benchFlash() *flash.Config {
	fc := flash.DefaultConfig()
	fc.PreFillMLC = true
	return &fc
}

// runBenchMatrix executes the (traces x schemes) sweep used by most
// figure benchmarks.
func runBenchMatrix(b *testing.B, traces []string, pes []int) *core.ResultSet {
	b.Helper()
	results, err := core.RunMatrix(core.MatrixSpec{
		Traces:      traces,
		PEBaselines: pes,
		Scale:       benchScale,
		Seed:        benchSeed,
		Flash:       benchFlash(),
	})
	if err != nil {
		b.Fatal(err)
	}
	return core.NewResultSet(results)
}

// Table1/Table3 read their traces through the shared trace cache, so
// after the untimed warm-up each iteration analyses cached traces
// instead of re-synthesising all six — allocs/op gates the cache staying
// on this path.
func BenchmarkTable1_UpdateSizeDistribution(b *testing.B) {
	if _, err := core.Table1(benchSeed, benchScale); err != nil { // warm the trace cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := core.Table1(benchSeed, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 6 {
			b.Fatalf("rows = %d", len(tab.Rows))
		}
	}
}

func BenchmarkTable3_TraceSpecs(b *testing.B) {
	if _, err := core.Table3(benchSeed, benchScale); err != nil { // warm the trace cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := core.Table3(benchSeed, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2_RawBER(b *testing.B) {
	em := errmodel.Default()
	pes := []int{1000, 2000, 4000, 8000}
	var last float64
	for i := 0; i < b.N; i++ {
		pts := em.Curve(pes)
		last = pts[len(pts)-1].Partial
	}
	b.ReportMetric(last*1e6, "partialBER@8000-ppm")
	b.ReportMetric(em.RawBER(4000, false)*1e6, "convBER@4000-ppm")
}

func BenchmarkFig5_ResponseTime(b *testing.B) {
	runBenchMatrix(b, []string{"ts0", "wdev0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0", "wdev0"}, nil)
	}
	pe := rs.PEs()[0]
	for _, sc := range rs.Schemes() {
		r := rs.Get("ts0", sc, pe)
		b.ReportMetric(float64(r.AvgLatency)/1e3, "ts0-"+sc+"-us")
	}
}

func BenchmarkFig6_WriteDistribution(b *testing.B) {
	runBenchMatrix(b, []string{"ts0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0"}, nil)
	}
	pe := rs.PEs()[0]
	for _, sc := range rs.Schemes() {
		b.ReportMetric(rs.Get("ts0", sc, pe).SLCWriteShare()*100, sc+"-slcShare-pct")
	}
}

func BenchmarkFig7_LevelDistribution(b *testing.B) {
	runBenchMatrix(b, []string{"ts0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0"}, nil)
	}
	r := rs.Get("ts0", "IPU", rs.PEs()[0])
	b.ReportMetric(r.LevelShare(flash.LevelWork)*100, "work-pct")
	b.ReportMetric(r.LevelShare(flash.LevelMonitor)*100, "monitor-pct")
	b.ReportMetric(r.LevelShare(flash.LevelHot)*100, "hot-pct")
}

func BenchmarkFig8_ReadErrorRate(b *testing.B) {
	runBenchMatrix(b, []string{"ts0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0"}, nil)
	}
	pe := rs.PEs()[0]
	base := rs.Get("ts0", "Baseline", pe).ReadErrorRate
	for _, sc := range []string{"MGA", "IPU"} {
		rel := rs.Get("ts0", sc, pe).ReadErrorRate/base - 1
		b.ReportMetric(rel*100, sc+"-vsBaseline-pct")
	}
}

func BenchmarkFig9_PageUtilization(b *testing.B) {
	runBenchMatrix(b, []string{"ts0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0"}, nil)
	}
	pe := rs.PEs()[0]
	for _, sc := range rs.Schemes() {
		b.ReportMetric(rs.Get("ts0", sc, pe).PageUtilization*100, sc+"-pct")
	}
}

func BenchmarkFig10_EraseCounts(b *testing.B) {
	runBenchMatrix(b, []string{"ts0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0"}, nil)
	}
	pe := rs.PEs()[0]
	for _, sc := range rs.Schemes() {
		r := rs.Get("ts0", sc, pe)
		b.ReportMetric(float64(r.SLCErases), sc+"-slcErases")
		b.ReportMetric(float64(r.MLCErases), sc+"-mlcErases")
	}
}

func BenchmarkFig11_MappingTableSize(b *testing.B) {
	runBenchMatrix(b, []string{"ts0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0"}, nil)
	}
	pe := rs.PEs()[0]
	for _, sc := range rs.Schemes() {
		b.ReportMetric(rs.Get("ts0", sc, pe).MappingNormalized, sc+"-normalized")
	}
}

func BenchmarkFig12_GCOverhead(b *testing.B) {
	runBenchMatrix(b, []string{"ts0"}, nil) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"ts0"}, nil)
	}
	pe := rs.PEs()[0]
	for _, sc := range []string{"Baseline", "IPU"} {
		r := rs.Get("ts0", sc, pe)
		if r.SLCGCs > 0 {
			b.ReportMetric(float64(r.GCScanNS/r.SLCGCs), sc+"-scan-ns/GC")
		}
	}
}

func BenchmarkFig13_LatencyVsPE(b *testing.B) {
	pes := []int{1000, 2000, 4000, 8000}
	runBenchMatrix(b, []string{"wdev0"}, pes) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"wdev0"}, pes)
	}
	for _, pe := range pes {
		r := rs.Get("wdev0", "IPU", pe)
		b.ReportMetric(float64(r.AvgLatency)/1e3, timeLabel("IPU-us@PE", pe))
	}
}

func BenchmarkFig14_BERVsPE(b *testing.B) {
	pes := []int{1000, 2000, 4000, 8000}
	runBenchMatrix(b, []string{"wdev0"}, pes) // warm the snapshot/trace caches
	b.ResetTimer()
	var rs *core.ResultSet
	for i := 0; i < b.N; i++ {
		rs = runBenchMatrix(b, []string{"wdev0"}, pes)
	}
	for _, pe := range pes {
		r := rs.Get("wdev0", "IPU", pe)
		b.ReportMetric(r.ReadErrorRate*1e6, timeLabel("IPU-BER-ppm@PE", pe))
	}
}

func timeLabel(prefix string, pe int) string {
	switch pe {
	case 1000:
		return prefix + "1000"
	case 2000:
		return prefix + "2000"
	case 4000:
		return prefix + "4000"
	default:
		return prefix + "8000"
	}
}

// BenchmarkMatrix measures one full evaluation matrix — two traces across
// all three schemes, device start-up included — the unit of work
// cmd/experiments repeats at larger scales. This is the headline number of
// the bench-regression suite: requests/s across the whole matrix. One
// untimed warm-up run builds the preconditioned templates and synthesised
// traces, so the loop measures the steady state a sweep actually runs in:
// every job starts from a snapshot restore, not a from-scratch build.
func BenchmarkMatrix(b *testing.B) {
	spec := core.MatrixSpec{
		Traces:  []string{"ts0", "wdev0"},
		Schemes: []string{"Baseline", "MGA", "IPU"},
		Scale:   benchScale,
		Seed:    benchSeed,
		Flash:   benchFlash(),
	}
	if _, err := core.RunMatrix(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var reqs int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := core.RunMatrix(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 6 {
			b.Fatalf("results = %d, want 6", len(res))
		}
		for _, r := range res {
			reqs += r.Requests
		}
	}
	b.ReportMetric(float64(reqs)/time.Since(start).Seconds(), "requests/s")
}

// BenchmarkSnapshotClone measures warm sweep start-up: with the
// preconditioned template already cached, each iteration is one
// core.New — a deep clone of the device snapshot instead of a rebuild
// plus MLC preconditioning. allocs/op is gated tightly: a regression to
// per-job preconditioning multiplies it by orders of magnitude.
func BenchmarkSnapshotClone(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Flash = *benchFlash()
	if _, err := core.New(cfg); err != nil { // prime the template
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw replay speed: simulated
// requests processed per wall-clock second for the IPU scheme.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := trace.Generate(trace.Profiles["ts0"], benchSeed, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	{
		// Build the preconditioned template outside the timed loop, so the
		// loop measures steady-state start-up (snapshot clone) plus replay.
		cfg := core.DefaultConfig()
		cfg.Flash = *benchFlash()
		if _, err := core.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var reqs int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Flash = *benchFlash()
		sim, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
		reqs += tr.Len()
	}
	b.ReportMetric(float64(reqs)/time.Since(start).Seconds(), "requests/s")
}

// BenchmarkParallelReplay measures the plane-pipeline replay path: the
// same single-trace replay shape as BenchmarkSimulatorThroughput but on a
// read-heavy trace with the read-path evaluation spread over GOMAXPROCS
// workers. Results are bit-identical to serial (asserted by
// TestParallelMatchesSerial); this benchmark tracks the wall time the
// pipeline buys. One untimed warm-up iteration seeds the snapshot free
// pool, so every timed New restores a recycled device in place — without
// it, the first iteration's template clone is amortised over b.N and the
// reported B/op and allocs/op would vary with -benchtime.
func BenchmarkParallelReplay(b *testing.B) {
	tr, err := trace.Generate(trace.Profiles["lun2"], benchSeed, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Flash = *benchFlash()
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	{
		sim, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
		sim.Release()
	}
	b.ResetTimer()
	var reqs int
	start := time.Now()
	for i := 0; i < b.N; i++ {
		sim, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
		sim.Release()
		reqs += tr.Len()
	}
	b.ReportMetric(float64(reqs)/time.Since(start).Seconds(), "requests/s")
}

// BenchmarkClosedLoopTenants measures the multi-tenant closed-loop
// serving path — two QoS-weighted tenants behind a shared queue with the
// DRAM write cache on — serial vs pipelined read evaluation. The two
// arms produce bit-identical Results (asserted by
// TestClosedLoopParallelMatchesSerial); the delta is wall time only.
func BenchmarkClosedLoopTenants(b *testing.B) {
	spec := core.ClosedLoopSpec{
		Depth:      16,
		Tenants:    core.DefaultTenantMixes()[0].Tenants,
		Seed:       benchSeed,
		Scale:      benchScale,
		WriteCache: &cache.Config{CapacityBytes: 1 << 20},
	}
	for _, arm := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Flash = *benchFlash()
			cfg.Parallelism = arm.par
			run := func() int {
				sim, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.RunClosedLoopSpec(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				sim.Release()
				return res.Requests
			}
			run() // warm the snapshot/trace caches
			b.ResetTimer()
			var reqs int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				reqs += run()
			}
			b.ReportMetric(float64(reqs)/time.Since(start).Seconds(), "requests/s")
		})
	}
}

// BenchmarkTenantContention measures the contention study — every
// (mix, buffer arm, scheme) cell of one mix over two schemes — run
// serially vs on the cell worker pool. Rows are deterministic and
// identical either way (asserted by TestContentionConcurrentMatchesSerial).
func BenchmarkTenantContention(b *testing.B) {
	spec := core.TenantContentionSpec{
		Mixes:      core.DefaultTenantMixes()[:1],
		Schemes:    []string{"Baseline", "IPU"},
		Depth:      8,
		CacheBytes: 256 << 10,
		Seed:       benchSeed,
		Scale:      0.01,
		Flash:      benchFlash(),
	}
	for _, arm := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"concurrent", runtime.GOMAXPROCS(0)},
	} {
		b.Run(arm.name, func(b *testing.B) {
			s := spec
			s.Workers = arm.workers
			if _, err := core.RunTenantContentionContext(context.Background(), s); err != nil {
				b.Fatal(err) // warm the snapshot/trace caches
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := core.RunTenantContentionContext(context.Background(), s)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 4 {
					b.Fatalf("rows = %d, want 4", len(rows))
				}
			}
		})
	}
}

// BenchmarkFullGeometryReplay replays a trace against the paper's full
// 65536-block Table 2 geometry with the parallel read pipeline on — the
// configuration EXPERIMENTS.md quotes replay times for. Each iteration
// replays against a freshly built device: reusing one device has no
// steady state (erase counts only grow, so BER and retry work climb
// forever), and the snapshot cache is bypassed because pinning a
// full-geometry template in the LRU would hold gigabytes for the rest of
// the process. Construction is untimed; the metric is replay alone. The
// builds churn hundreds of MB each, so the benchmark runs last in this
// file and forces a collection on exit to keep the heap target it
// inflated from bleeding into later benchmarks.
func BenchmarkFullGeometryReplay(b *testing.B) {
	tr, err := trace.Generate(trace.Profiles["ts0"], benchSeed, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Flash = flash.PaperConfig()
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var reqs int
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, err := core.NewFresh(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		reqs += tr.Len()
	}
	b.StopTimer()
	runtime.GC()
	b.ReportMetric(float64(reqs)/elapsed.Seconds(), "requests/s")
}
