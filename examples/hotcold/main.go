// Hot/cold separation demo: one frequently updated extent and a stream of
// cold data drive the IPU scheme. The example shows the paper's three
// mechanisms directly:
//
//  1. intra-page update — the first few updates stay in the same physical
//     page (new slot, partial programming, zero in-page disturb on valid
//     data);
//
//  2. upgraded movement — once a page is exhausted, the data climbs
//     Work → Monitor → Hot;
//
//  3. GC retention — after heavy cold traffic forces garbage collection,
//     the hot extent is still in the SLC cache while early cold extents
//     have been ejected to the MLC region.
//
//     go run ./examples/hotcold
package main

import (
	"fmt"
	"log"

	"ipusim/internal/core"
	"ipusim/internal/flash"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Scheme = "IPU"
	sim, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dev := sim.Scheme().Device()

	locate := func(offset int64) string {
		ppa := dev.Map.Get(flash.LSN(offset / 4096))
		if !ppa.Mapped() {
			return "unmapped"
		}
		b := dev.Arr.Block(ppa.Block())
		if b.Mode == flash.ModeSLC {
			return fmt.Sprintf("SLC %-7s block %4d page %3d slot %d",
				b.Level, ppa.Block(), ppa.Page(), ppa.Slot())
		}
		return fmt.Sprintf("MLC         block %4d page %3d slot %d", ppa.Block(), ppa.Page(), ppa.Slot())
	}

	const hot = int64(0)   // one hot 4 KiB extent
	cold := int64(1 << 30) // cold stream start
	now := int64(0)
	tick := func() int64 { now += 500_000; return now }

	fmt.Println("-- updating one 4KiB extent; watch it climb the levels --")
	for i := 1; i <= 12; i++ {
		sim.Write(tick(), hot, 4096)
		fmt.Printf("update %2d -> %s\n", i, locate(hot))
	}

	fmt.Println("\n-- streaming cold data until the cache cycles --")
	firstCold := cold
	for dev.Met.SLCGCs < 100 {
		sim.Write(tick(), cold, 16384)
		cold += 16384
	}
	fmt.Printf("SLC GCs run:        %d\n", dev.Met.SLCGCs)
	fmt.Printf("hot extent now:     %s\n", locate(hot))
	fmt.Printf("first cold extent:  %s\n", locate(firstCold))

	m := sim.Scheme().Metrics()
	total := float64(m.LevelPrograms[flash.LevelWork] + m.LevelPrograms[flash.LevelMonitor] + m.LevelPrograms[flash.LevelHot])
	fmt.Printf("\nwrite distribution: Work %.1f%%  Monitor %.1f%%  Hot %.1f%%\n",
		100*float64(m.LevelPrograms[flash.LevelWork])/total,
		100*float64(m.LevelPrograms[flash.LevelMonitor])/total,
		100*float64(m.LevelPrograms[flash.LevelHot])/total)
}
