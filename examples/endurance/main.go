// Endurance demo: the reliability side of the paper in miniature.
//
// Part 1 sweeps the device use stage (P/E cycles) and prints how raw bit
// error rate and read latency grow (Figs. 2, 13, 14), comparing the MGA
// and IPU schemes at each stage.
//
// Part 2 drops down to the BCH substrate: it encodes a codeword, injects
// the raw error counts the error model predicts at each P/E stage, and
// shows decoder effort (Berlekamp–Massey iterations) growing with wear —
// the physical basis of the ECC-latency model the simulator uses.
//
//	go run ./examples/endurance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ipusim/internal/bch"
	"ipusim/internal/core"
	"ipusim/internal/errmodel"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

func main() {
	pes := []int{1000, 2000, 4000, 8000}

	fmt.Println("-- Part 1: scheme comparison across device use stages --")
	tr, err := trace.Generate(trace.Profiles["wdev0"], 7, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s  %10s %12s  %10s %12s\n", "P/E", "MGA BER", "MGA read", "IPU BER", "IPU read")
	for _, pe := range pes {
		row := make(map[string]*core.Result)
		for _, sc := range []string{"MGA", "IPU"} {
			cfg := core.DefaultConfig()
			cfg.Scheme = sc
			cfg.Flash.PEBaseline = pe
			sim, err := core.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(tr)
			if err != nil {
				log.Fatal(err)
			}
			row[sc] = res
		}
		fmt.Printf("%6d  %10.2e %12s  %10.2e %12s\n", pe,
			row["MGA"].ReadErrorRate, metrics.FormatDuration(row["MGA"].AvgReadLatency),
			row["IPU"].ReadErrorRate, metrics.FormatDuration(row["IPU"].AvgReadLatency))
	}

	fmt.Println("\n-- Part 2: BCH decoder effort vs raw errors --")
	em := errmodel.Default()
	code, err := bch.New(10, 8) // (1023, k, 8) binary BCH
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	msg := bch.NewBits(1023 - (code.Generator().Len() - 1))
	for i := 0; i < msg.Len(); i++ {
		msg.Set(i, rng.Intn(2))
	}
	cw, err := code.Encode(msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s  %16s %8s %12s %14s\n", "P/E", "BER (partial)", "errors", "iterations", "model decode")
	for _, pe := range pes {
		ber := em.RawBER(pe, true)
		// Scale the expected error count to this demo codeword's length.
		errs := int(ber * float64(cw.Len()) * 8) // heavier-than-life injection for visibility
		if errs > 8 {
			errs = 8
		}
		if errs < 1 {
			errs = 1
		}
		corrupted := cw.Clone()
		for i := 0; i < errs; i++ {
			corrupted.Flip(i * 101 % cw.Len())
		}
		res, err := code.Decode(corrupted)
		if err != nil {
			log.Fatal(err)
		}
		cost := em.CostFromBER(ber)
		fmt.Printf("%6d  %16.2e %8d %12d %14s\n",
			pe, ber, errs, res.Iterations, metrics.FormatDuration(cost.DecodeTime))
	}
}
