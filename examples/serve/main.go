// Serve client: submit one job to a running ipusimd and follow its
// progress stream until the result is ready.
//
// Start the daemon first (`make serve`), then:
//
//	go run ./examples/serve [-addr localhost:8077]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "localhost:8077", "ipusimd address")
	flag.Parse()
	base := "http://" + *addr

	// Submit: HTTP 202 + the job record. A full queue answers 429 with a
	// Retry-After header; production clients back off and resubmit.
	body := `{"kind":"run","scheme":"IPU","trace":"ts0","scale":0.02,"seed":7}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	fmt.Printf("submitted %s (%s)\n", job.ID, job.State)

	// Follow the SSE progress stream: one JSON job snapshot per event,
	// ending when the job reaches a terminal state.
	resp, err = http.Get(base + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var v struct {
			State    string  `json:"state"`
			Frac     float64 `json:"frac"`
			Progress struct {
				Replayed int   `json:"Replayed"`
				Total    int   `json:"Total"`
				GCs      int64 `json:"GCs"`
			} `json:"progress"`
		}
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %6.1f%%  %d/%d requests, %d GCs\n",
			v.State, 100*v.Frac, v.Progress.Replayed, v.Progress.Total, v.Progress.GCs)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// Fetch the result (200 once done; 202 pending, 409 failed/cancelled).
	resp, err = http.Get(base + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	var out struct {
		Result struct {
			Scheme        string
			Trace         string
			Requests      int64
			AvgLatency    int64
			ReadErrorRate float64
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	r := out.Result
	fmt.Printf("%s on %s: %d requests, avg latency %v, read error rate %.2e\n",
		r.Scheme, r.Trace, r.Requests, time.Duration(r.AvgLatency), r.ReadErrorRate)
}
