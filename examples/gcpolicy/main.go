// GC policy demo: the paper's Fig. 4 scenario, reconstructed live.
//
// Two kinds of SLC blocks are built: "garbage-rich" blocks full of
// invalidated hot updates, and "cold" blocks full of valid data that has
// not been touched for a long time. The example prints each block's
// greedy score and its ISR score (Eq. 1–2) and shows the two policies
// disagreeing: greedy only sees invalid counts, while the ISR policy also
// weighs cold valid data — which is the mechanism that steers cold data
// toward eviction during GC.
//
//	go run ./examples/gcpolicy
package main

import (
	"fmt"
	"log"

	"ipusim/internal/core"
	"ipusim/internal/flash"
	"ipusim/internal/scheme"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Scheme = "IPU"
	sim, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dev := sim.Scheme().Device()
	now := int64(0)
	tick := func(d int64) int64 { now += d; return now }

	// Phase 1: cold data, written early and never updated.
	fmt.Println("writing cold data (never updated)...")
	coldStart := int64(1 << 30)
	for i := int64(0); i < 512; i++ {
		sim.Write(tick(100_000), coldStart+i*16384, 16384)
	}

	// Let a long time pass: the cold data ages.
	tick(60_000_000_000) // one minute

	// Phase 2: a hot set updated a few times — partially invalidated
	// blocks, garbage-rich but not overwhelmingly so.
	fmt.Println("updating a hot set (partially invalidated blocks)...")
	for round := 0; round < 5; round++ {
		for e := int64(0); e < 24; e++ {
			sim.Write(tick(100_000), e*8192, 8192)
		}
	}

	// Classify SLC blocks and compare policies.
	type summary struct {
		id                   int
		level                flash.BlockLevel
		valid, invalid, dead int
	}
	var blocks []summary
	for _, id := range dev.Arr.SLCBlockIDs() {
		b := dev.Arr.Block(id)
		if b.UsedSlots() == 0 {
			continue
		}
		blocks = append(blocks, summary{id, b.Level, b.ValidSub, b.InvalidSub, b.DeadSub})
	}
	fmt.Printf("\n%-6s %-8s %6s %8s %6s\n", "block", "level", "valid", "invalid", "dead")
	shown := 0
	for _, s := range blocks {
		if shown >= 10 {
			fmt.Printf("... and %d more used blocks\n", len(blocks)-shown)
			break
		}
		fmt.Printf("%-6d %-8s %6d %8d %6d\n", s.id, s.level, s.valid, s.invalid, s.dead)
		shown++
	}

	greedy := scheme.GreedyVictim(dev, now, nil)
	isr := scheme.ISRVictim(dev, now, nil)
	describe := func(id int) string {
		b := dev.Arr.Block(id)
		return fmt.Sprintf("block %d (%s: %d valid, %d invalid)", id, b.Level, b.ValidSub, b.InvalidSub)
	}
	fmt.Printf("\ngreedy victim: %s\n", describe(greedy))
	fmt.Printf("ISR victim:    %s\n", describe(isr))
	if greedy != isr {
		fmt.Println("\nthe policies disagree: greedy maximises the invalid count alone,")
		fmt.Println("while ISR scores reclaimable fraction plus the coldness weight")
		fmt.Println("1-exp(-age/T) of valid data (Eq. 2) - collecting the cold block")
		fmt.Println("both frees a whole block and ejects cold data from the cache")
	} else {
		fmt.Println("\nboth policies picked the same block (garbage dominates here)")
	}
}
