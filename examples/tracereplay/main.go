// Trace replay: the end-to-end path a user with real traces follows.
//
// The example synthesises an MSR-Cambridge-format CSV (the format of the
// public traces the paper uses), writes it to a temporary file, parses it
// back, validates its statistics against the paper's Table 1/Table 3 row,
// and replays it against all three schemes.
//
// To replay an actual downloaded MSR trace instead, pass its path:
//
//	go run ./examples/tracereplay /path/to/wdev_0.csv
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ipusim/internal/core"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = synthesise()
		defer os.Remove(path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ParseMSR(filepath.Base(path), f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	s := trace.Analyze(tr)
	fmt.Printf("trace %s: %d requests, %.1f%% writes, %.1f KB avg write, %.1f%% hot writes\n",
		tr.Name, s.Requests, s.WriteRatio*100, s.AvgWriteKB, s.HotWriteRatio*100)

	tab := metrics.NewTable("replay results", "Scheme", "overall", "read", "write", "readBER")
	for _, sc := range core.SchemeNames {
		cfg := core.DefaultConfig()
		cfg.Scheme = sc
		sim, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(sc,
			metrics.FormatDuration(res.AvgLatency),
			metrics.FormatDuration(res.AvgReadLatency),
			metrics.FormatDuration(res.AvgWriteLatency),
			metrics.FormatSci(res.ReadErrorRate))
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// synthesise writes a small wdev0-shaped trace in MSR CSV format.
func synthesise() string {
	tr, err := trace.Generate(trace.Profiles["wdev0"], 3, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.CreateTemp("", "wdev0-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteMSR(f, tr); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised %s\n", f.Name())
	return f.Name()
}
