// Quickstart: build an IPU simulator, replay a small synthetic workload,
// and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ipusim/internal/core"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

func main() {
	// A simulator = geometry (Table 2, scaled) + error model (Fig. 2) +
	// one of the three FTL schemes.
	cfg := core.DefaultConfig() // IPU on a preconditioned device
	sim, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesise 1% of the paper's ts0 trace (write-heavy, 50% hot).
	tr, err := trace.Generate(trace.Profiles["ts0"], 1, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d requests of %s...\n", tr.Len(), tr.Name)

	res, err := sim.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme            %s\n", res.Scheme)
	fmt.Printf("avg latency       %s\n", metrics.FormatDuration(res.AvgLatency))
	fmt.Printf("  reads           %s\n", metrics.FormatDuration(res.AvgReadLatency))
	fmt.Printf("  writes          %s\n", metrics.FormatDuration(res.AvgWriteLatency))
	fmt.Printf("read error rate   %s\n", metrics.FormatSci(res.ReadErrorRate))
	fmt.Printf("SLC write share   %s\n", metrics.FormatPct(res.SLCWriteShare()))
	fmt.Printf("SLC / MLC erases  %d / %d\n", res.SLCErases, res.MLCErases)
	fmt.Printf("GC utilization    %s\n", metrics.FormatPct(res.PageUtilization))
}
