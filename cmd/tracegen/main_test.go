package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipusim/internal/trace"
)

func TestRunWritesParsableMSR(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ts0.csv")
	var stats strings.Builder
	if err := run(&stats, "ts0", 0.002, 1, out, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ParseMSR("ts0", f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 100 {
		t.Errorf("only %d records generated", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ts0 statistics", "write ratio", "hot write ratio"} {
		if !strings.Contains(stats.String(), want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestRunNoStats(t *testing.T) {
	dir := t.TempDir()
	var stats strings.Builder
	if err := run(&stats, "ads", 0.002, 1, filepath.Join(dir, "a.csv"), false); err != nil {
		t.Fatal(err)
	}
	if stats.Len() != 0 {
		t.Error("stats printed despite -stats=false")
	}
}

func TestRunUnknownTrace(t *testing.T) {
	var stats strings.Builder
	if err := run(&stats, "nope", 0.01, 1, "", false); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	var stats strings.Builder
	if err := run(&stats, "ts0", 0.002, 1, "/nonexistent-dir/x.csv", false); err == nil {
		t.Fatal("bad output path accepted")
	}
}
