package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipusim/internal/trace"
)

func TestRunWritesParsableMSR(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ts0.csv")
	var stats strings.Builder
	if err := run(&stats, "ts0", 0.002, 1, out, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ParseMSR("ts0", f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 100 {
		t.Errorf("only %d records generated", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ts0 statistics", "write ratio", "hot write ratio"} {
		if !strings.Contains(stats.String(), want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestRunNoStats(t *testing.T) {
	dir := t.TempDir()
	var stats strings.Builder
	if err := run(&stats, "ads", 0.002, 1, filepath.Join(dir, "a.csv"), false); err != nil {
		t.Fatal(err)
	}
	if stats.Len() != 0 {
		t.Error("stats printed despite -stats=false")
	}
}

func TestRunUnknownTrace(t *testing.T) {
	var stats strings.Builder
	if err := run(&stats, "nope", 0.01, 1, "", false); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	var stats strings.Builder
	if err := run(&stats, "ts0", 0.002, 1, "/nonexistent-dir/x.csv", false); err == nil {
		t.Fatal("bad output path accepted")
	}
}

// TestCompileRoundTrip is the -compile subcommand round-trip: a CSV trace
// compiled to .itc must decode to exactly the records ParseMSR produces
// from the same CSV, op for op.
func TestCompileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "wdev0.csv")
	var stats strings.Builder
	if err := run(&stats, "wdev0", 0.005, 3, csv, false); err != nil {
		t.Fatal(err)
	}

	itc := filepath.Join(dir, "wdev0.itc")
	stats.Reset()
	if err := runCompile(&stats, csv, itc, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "compiled") {
		t.Errorf("compile stats missing summary: %q", stats.String())
	}

	f, err := os.Open(csv)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want, err := trace.ParseMSR(csv, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.OpenITC(itc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("compiled trace has %d records, want %d", got.Len(), want.Len())
	}
	if got.MaxOffset() != want.MaxOffset() {
		t.Fatalf("MaxOffset %d, want %d", got.MaxOffset(), want.MaxOffset())
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("record %d: got %+v, want %+v", i, got.At(i), want.At(i))
		}
	}

	// Default output path: <input minus .csv>.itc, never the input itself.
	if err := runCompile(&stats, csv, "", false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wdev0.itc")); err != nil {
		t.Fatal(err)
	}
	if err := runCompile(&stats, itc, itc, false); err == nil {
		t.Fatal("compile onto its own input accepted")
	}
}

// TestCompileMissingInput checks the error path.
func TestCompileMissingInput(t *testing.T) {
	var stats strings.Builder
	if err := runCompile(&stats, "/nonexistent/x.csv", "", false); err == nil {
		t.Fatal("missing input accepted")
	}
}

// TestRunITCOutput checks that synthesising straight to an .itc path
// writes the binary format.
func TestRunITCOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ts0.itc")
	var stats strings.Builder
	if err := run(&stats, "ts0", 0.002, 1, out, false); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.OpenITC(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 100 {
		t.Errorf("only %d records in compiled output", tr.Len())
	}
}
