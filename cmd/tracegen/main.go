// Command tracegen synthesises one of the paper's six evaluation traces
// and writes it in MSR-Cambridge CSV format, either to stdout or a file.
// It also prints the Table 1/Table 3 statistics of the generated trace to
// stderr so the output can be validated against the paper.
//
// Usage:
//
//	tracegen -trace wdev0 [-scale 0.05] [-seed 42] [-o wdev0.csv] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

func main() {
	var (
		name  = flag.String("trace", "ts0", "trace profile to synthesise")
		scale = flag.Float64("scale", 0.05, "request-count scale in (0,1]")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
		stats = flag.Bool("stats", true, "print trace statistics to stderr")
	)
	flag.Parse()
	if err := run(os.Stderr, *name, *scale, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(statsOut io.Writer, name string, scale float64, seed int64, out string, stats bool) error {
	p, ok := trace.Profiles[name]
	if !ok {
		return fmt.Errorf("unknown trace %q (have %v)", name, trace.ProfileNames())
	}
	tr, err := trace.Generate(p, seed, scale)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteMSR(w, tr); err != nil {
		return err
	}
	if stats {
		s := trace.Analyze(tr)
		t := metrics.NewTable(fmt.Sprintf("%s statistics", name), "Metric", "Generated", "Paper")
		t.AddRow("requests", fmt.Sprint(s.Requests), fmt.Sprint(p.Requests))
		t.AddRow("write ratio", metrics.FormatPct(s.WriteRatio), metrics.FormatPct(p.WriteRatio))
		t.AddRow("avg write size", fmt.Sprintf("%.1fKB", s.AvgWriteKB), fmt.Sprintf("%.1fKB", p.AvgWriteKB))
		t.AddRow("hot write ratio", metrics.FormatPct(s.HotWriteRatio), metrics.FormatPct(p.HotWriteRatio))
		t.AddRow("updates <=4K", metrics.FormatPct(s.UpdateSizeDist.Small), metrics.FormatPct(p.UpdateSizeDist.Small))
		t.AddRow("updates 4-8K", metrics.FormatPct(s.UpdateSizeDist.Medium), metrics.FormatPct(p.UpdateSizeDist.Medium))
		t.AddRow("updates >8K", metrics.FormatPct(s.UpdateSizeDist.Large), metrics.FormatPct(p.UpdateSizeDist.Large))
		t.AddRow("mean inter-arrival", fmt.Sprintf("%.1fus", s.MeanInterarrivalNS/1000), fmt.Sprintf("%.1fus", float64(p.MeanInterarrival.Microseconds())))
		t.AddRow("inter-arrival CV", fmt.Sprintf("%.2f", s.InterarrivalCV), "-")
		if err := t.Render(statsOut); err != nil {
			return err
		}
	}
	return nil
}
