// Command tracegen synthesises one of the paper's six evaluation traces
// and writes it in MSR-Cambridge CSV format, either to stdout or a file.
// It also prints the Table 1/Table 3 statistics of the generated trace to
// stderr so the output can be validated against the paper.
//
// With -compile it instead converts an existing MSR-Cambridge CSV trace
// into the binary columnar .itc format that trace.Open memory-maps, so
// large real traces pay their CSV parse once instead of on every replay.
//
// Usage:
//
//	tracegen -trace wdev0 [-scale 0.05] [-seed 42] [-o wdev0.csv] [-stats]
//	tracegen -compile prxy0.csv [-o prxy0.itc]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

func main() {
	var (
		name    = flag.String("trace", "ts0", "trace profile to synthesise")
		scale   = flag.Float64("scale", 0.05, "request-count scale in (0,1]")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default stdout; default <input>.itc for -compile)")
		stats   = flag.Bool("stats", true, "print trace statistics to stderr")
		compile = flag.String("compile", "", "compile an MSR CSV trace file to binary .itc format instead of synthesising")
	)
	flag.Parse()
	var err error
	if *compile != "" {
		err = runCompile(os.Stderr, *compile, *out, *stats)
	} else {
		err = run(os.Stderr, *name, *scale, *seed, *out, *stats)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// runCompile converts one MSR CSV trace into .itc. The output defaults to
// the input path with its extension replaced by .itc.
func runCompile(statsOut io.Writer, in, out string, stats bool) error {
	if out == "" {
		out = strings.TrimSuffix(in, ".csv") + ".itc"
	}
	if out == in {
		return fmt.Errorf("refusing to overwrite input %s (pass -o)", in)
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	tr, err := trace.ParseMSR(in, f)
	f.Close()
	if err != nil {
		return err
	}
	// Write-then-rename so a crashed compile never leaves a torn .itc in
	// place (the decoder would reject it anyway, by checksum).
	tmp := out + ".tmp"
	g, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := trace.WriteITC(g, tr); err != nil {
		g.Close()
		os.Remove(tmp)
		return err
	}
	if err := g.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, out); err != nil {
		os.Remove(tmp)
		return err
	}
	if stats {
		st, err := os.Stat(out)
		if err != nil {
			return err
		}
		srcSt, err := os.Stat(in)
		if err != nil {
			return err
		}
		fmt.Fprintf(statsOut, "compiled %s: %d records, %d -> %d bytes (%.1fx)\n",
			out, tr.Len(), srcSt.Size(), st.Size(), float64(srcSt.Size())/float64(st.Size()))
	}
	return nil
}

func run(statsOut io.Writer, name string, scale float64, seed int64, out string, stats bool) error {
	p, ok := trace.Profiles[name]
	if !ok {
		return fmt.Errorf("unknown trace %q (have %v)", name, trace.ProfileNames())
	}
	tr, err := trace.Generate(p, seed, scale)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// An .itc output path writes the binary columnar format directly.
	if strings.HasSuffix(out, ".itc") {
		if err := trace.WriteITC(w, tr); err != nil {
			return err
		}
	} else if err := trace.WriteMSR(w, tr); err != nil {
		return err
	}
	if stats {
		s := trace.Analyze(tr)
		t := metrics.NewTable(fmt.Sprintf("%s statistics", name), "Metric", "Generated", "Paper")
		t.AddRow("requests", fmt.Sprint(s.Requests), fmt.Sprint(p.Requests))
		t.AddRow("write ratio", metrics.FormatPct(s.WriteRatio), metrics.FormatPct(p.WriteRatio))
		t.AddRow("avg write size", fmt.Sprintf("%.1fKB", s.AvgWriteKB), fmt.Sprintf("%.1fKB", p.AvgWriteKB))
		t.AddRow("hot write ratio", metrics.FormatPct(s.HotWriteRatio), metrics.FormatPct(p.HotWriteRatio))
		t.AddRow("updates <=4K", metrics.FormatPct(s.UpdateSizeDist.Small), metrics.FormatPct(p.UpdateSizeDist.Small))
		t.AddRow("updates 4-8K", metrics.FormatPct(s.UpdateSizeDist.Medium), metrics.FormatPct(p.UpdateSizeDist.Medium))
		t.AddRow("updates >8K", metrics.FormatPct(s.UpdateSizeDist.Large), metrics.FormatPct(p.UpdateSizeDist.Large))
		t.AddRow("mean inter-arrival", fmt.Sprintf("%.1fus", s.MeanInterarrivalNS/1000), fmt.Sprintf("%.1fus", float64(p.MeanInterarrival.Microseconds())))
		t.AddRow("inter-arrival CV", fmt.Sprintf("%.2f", s.InterarrivalCV), "-")
		if err := t.Render(statsOut); err != nil {
			return err
		}
	}
	return nil
}
