package main

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"ts0", 1},
		{"ts0,ads", 2},
		{"ts0, ads , ", 2},
		{",,", 0},
	}
	for _, c := range cases {
		if got := splitList(c.in); len(got) != c.want {
			t.Errorf("splitList(%q) = %v, want %d entries", c.in, got, c.want)
		}
	}
}

func TestRunSmallMatrix(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, runOpts{Scale: 0.002, Seed: 1, Traces: "ads,lun2", Schemes: "Baseline,IPU", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Table 2", "Table 1", "Table 3",
		"Fig 2", "Fig 5", "Fig 6", "Fig 7", "Fig 8",
		"Fig 9", "Fig 10", "Fig 11", "Fig 12",
		"ads", "lun2", "Baseline", "IPU", "done in",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "MGA") && !strings.Contains(s, "Fig 8") {
		t.Error("unexpected scheme in filtered run")
	}
	if strings.Contains(s, "Fig 13") {
		t.Error("P/E sweep ran without -pesweep")
	}
}

func TestRunWithPESweep(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, runOpts{Scale: 0.002, Seed: 1, Traces: "ads", Schemes: "IPU", PESweep: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig 13", "Fig 14", "1000", "8000"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
}

func TestRunWithTenants(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, runOpts{
		Scale: 0.002, Seed: 1, Traces: "ads", Schemes: "Baseline,IPU",
		Tenants: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Tenant contention", "web+batch", "usr+ads-bursty",
		"worstP99read", "fairness",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Both buffer arms appear, and the buffered arm reports cache work.
	if !strings.Contains(s, "off") || !strings.Contains(s, "on") {
		t.Error("buffer arms missing from contention table")
	}
}

func TestRunUnknownTrace(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), &out, runOpts{Scale: 0.01, Seed: 1, Traces: "bogus", Workers: 1}); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestRunWithReplication(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, runOpts{Scale: 0.002, Seed: 1, Traces: "ads", Schemes: "IPU", Replicate: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Replication over 2 seeds") {
		t.Error("replication table missing")
	}
}

func TestRunProgressOutput(t *testing.T) {
	var out, prog strings.Builder
	o := runOpts{Scale: 0.002, Seed: 1, Traces: "ads", Schemes: "IPU", Workers: 2, Progress: &prog}
	if err := run(context.Background(), &out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "(100.0%)") {
		t.Errorf("progress output missing final snapshot:\n%s", prog.String())
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, &out, runOpts{Scale: 0.002, Seed: 1, Traces: "ads", Schemes: "IPU", Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
