// Command experiments regenerates every table and figure of the paper's
// evaluation: it synthesises the six traces, replays each against the five
// comparison schemes — Baseline, MGA and IPU from the source paper plus
// the cross-paper IPS (In-place Switch) and IPU-PGC (preemptive GC)
// counterparts — in parallel across a worker pool, and prints the
// corresponding series, including the cross-paper scheme matrix.
//
// Usage:
//
//	experiments [-scale 0.05] [-seed 42] [-traces ts0,ads] [-schemes IPU]
//	            [-pesweep] [-ablate] [-full] [-workers N] [-parallel N]
//	            [-progress] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -pesweep additionally runs the Fig. 13/14 endurance sweep (4 P/E
// levels). -tenants runs the multi-tenant contention study: every scheme
// ranked under two tenant mixes, with the DRAM write-cache front-end off
// and on. -ablate runs the IPU design-choice ablation (ISR victim policy,
// level hierarchy, intra-page update, adaptive combining). -full uses the
// paper's full 65536-block geometry (slow, several GiB of memory).
// -progress reports aggregated sweep progress on stderr; interrupting the
// process (Ctrl-C / SIGTERM) cancels in-flight runs at the next request
// boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ipusim/internal/core"
	"ipusim/internal/errmodel"
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.05, "trace request-count scale in (0,1]")
		seed     = flag.Int64("seed", 42, "trace synthesis seed")
		traces   = flag.String("traces", "", "comma-separated trace names (default: all six)")
		schemes  = flag.String("schemes", "", "comma-separated schemes (default: Baseline,MGA,IPU,IPS,IPU-PGC)")
		pesweep  = flag.Bool("pesweep", false, "also run the Fig 13/14 P/E sweep")
		tenants  = flag.Bool("tenants", false, "also run the multi-tenant contention study (buffer off vs on)")
		ablate   = flag.Bool("ablate", false, "also run the IPU ablation study")
		sens     = flag.String("sensitivity", "", "also sweep a device parameter: slcratio, gcthreshold, backlogcap or planes")
		repl     = flag.Int("replicate", 0, "also run the matrix across N seeds and report mean +- std")
		csvdir   = flag.String("csvdir", "", "also write every table as CSV into this directory")
		full     = flag.Bool("full", false, "use the paper's full Table 2 geometry")
		workers  = flag.Int("workers", 0, "parallel simulations (default GOMAXPROCS)")
		parallel = flag.Int("parallel", 0, "read-path evaluation workers per simulation (0/1 = serial; metrics are identical either way)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		progress = flag.Bool("progress", false, "report aggregated sweep progress on stderr")
	)
	flag.Parse()
	stopCPU := func() {}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	o := runOpts{
		Scale: *scale, Seed: *seed, Traces: *traces, Schemes: *schemes,
		PESweep: *pesweep, Ablate: *ablate, Sensitivity: *sens,
		CSVDir: *csvdir, Replicate: *repl, Full: *full, Workers: *workers,
		Parallel: *parallel, Tenants: *tenants,
	}
	if *progress {
		o.Progress = os.Stderr
	}
	err := run(ctx, os.Stdout, o)
	stop()
	stopCPU()
	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", ferr)
			os.Exit(1)
		}
		runtime.GC() // report live heap, not transient garbage
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", werr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runOpts carries every run flag; the zero value of a field means "flag
// not set".
type runOpts struct {
	Scale       float64
	Seed        int64
	Traces      string
	Schemes     string
	PESweep     bool
	Tenants     bool
	Ablate      bool
	Sensitivity string
	CSVDir      string
	Replicate   int
	Full        bool
	Workers     int
	Parallel    int
	// Progress, when non-nil, receives aggregated sweep progress lines.
	Progress io.Writer
}

func run(ctx context.Context, out io.Writer, o runOpts) error {
	scale, seed, csvDir := o.Scale, o.Seed, o.CSVDir
	emit := func(tab *metrics.Table) error {
		if err := tab.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, tab.CSVName()))
		if err != nil {
			return err
		}
		defer f.Close()
		return tab.WriteCSV(f)
	}
	fc := flash.DefaultConfig()
	if o.Full {
		fc = flash.PaperConfig()
	}
	fc.PreFillMLC = true // the evaluation runs on a preconditioned device
	em := errmodel.Default()

	start := time.Now()

	// Static tables.
	if err := emit(core.Table2(&fc)); err != nil {
		return err
	}
	t1, err := core.Table1(seed, scale)
	if err != nil {
		return err
	}
	if err := emit(t1); err != nil {
		return err
	}
	t3, err := core.Table3(seed, scale)
	if err != nil {
		return err
	}
	if err := emit(t3); err != nil {
		return err
	}
	if err := emit(core.Fig2(&em, []int{1000, 2000, 4000, 8000})); err != nil {
		return err
	}

	// Main matrix.
	spec := core.MatrixSpec{
		Traces:      splitList(o.Traces),
		Schemes:     splitList(o.Schemes),
		Scale:       scale,
		Seed:        seed,
		Flash:       &fc,
		Workers:     o.Workers,
		Parallelism: o.Parallel,
	}
	if o.Progress != nil {
		spec.OnProgress = core.ProgressPrinter(o.Progress, 0)
	}
	results, err := core.RunMatrixContext(ctx, spec)
	if err != nil {
		return err
	}
	rs := core.NewResultSet(results)
	tables := []*metrics.Table{
		core.Fig5(rs), core.Fig6(rs), core.Fig7(rs), core.Fig8(rs),
		core.Fig9(rs), core.Fig10(rs), core.Fig11(rs), core.Fig12(rs),
		core.SchemeMatrix(rs),
		core.Lifetime(rs, fc.SLCBlocks(), fc.MLCBlocks()),
	}
	for _, tab := range tables {
		if err := emit(tab); err != nil {
			return err
		}
	}

	if o.PESweep {
		sweepSpec := spec
		sweepSpec.PEBaselines = []int{1000, 2000, 4000, 8000}
		sweep, err := core.RunMatrixContext(ctx, sweepSpec)
		if err != nil {
			return err
		}
		srs := core.NewResultSet(sweep)
		if err := emit(core.Fig13(srs)); err != nil {
			return err
		}
		if err := emit(core.Fig14(srs)); err != nil {
			return err
		}
	}

	if o.Tenants {
		tenSpec := core.TenantContentionSpec{
			Schemes:     splitList(o.Schemes),
			Seed:        seed,
			Scale:       scale,
			Flash:       &fc,
			Workers:     o.Workers,
			Parallelism: o.Parallel,
			OnProgress:  spec.OnProgress,
		}
		rows, err := core.RunTenantContentionContext(ctx, tenSpec)
		if err != nil {
			return err
		}
		if err := emit(core.TenantContention(rows)); err != nil {
			return err
		}
	}

	if o.Ablate {
		ablSpec := spec
		ablSpec.Schemes = append([]string(nil), core.AblationSchemes...)
		abl, err := core.RunMatrixContext(ctx, ablSpec)
		if err != nil {
			return err
		}
		if err := emit(core.Ablation(core.NewResultSet(abl))); err != nil {
			return err
		}
	}

	if o.Sensitivity != "" {
		sensSpec := spec
		sensSpec.Schemes = nil // RunSensitivity defaults to Baseline vs IPU
		tab, err := core.RunSensitivityContext(ctx, o.Sensitivity, sensSpec)
		if err != nil {
			return err
		}
		if err := emit(tab); err != nil {
			return err
		}
	}

	if o.Replicate > 0 {
		tab, err := core.ReplicationTableContext(ctx, spec, o.Replicate)
		if err != nil {
			return err
		}
		if err := emit(tab); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
