// Command ipusim replays one block I/O trace against one FTL scheme and
// prints a full metric report.
//
// Usage:
//
//	ipusim [-scheme IPU] [-trace ts0 | -file trace.csv] [-scale 0.05]
//	       [-seed 42] [-pe 4000] [-full] [-printconfig] [-check full]
//	       [-progress] [-parallel 8] [-qd 16] [-tenants ts0:3,wdev0:1]
//	       [-cache 4194304]
//
// -tenants replays several tenant streams interleaved onto one device
// (closed-loop only: requires -qd); each item is profile[:weight][@phase-ns]
// and the run reports per-tenant latency percentiles plus a fairness
// index. -cache puts a DRAM write buffer of the given byte capacity in
// front of the device so sub-page rewrites coalesce in host memory.
//
// -trace selects one of the six synthetic paper workloads; -file replays a
// real trace instead — MSR-Cambridge CSV or a compiled binary .itc file
// (see tracegen -compile), detected by content. -parallel evaluates
// per-subpage read-error arithmetic on that many workers with results
// committed in simulated-time order, so metrics are bit-identical to a
// serial run. -progress reports replay progress on stderr while the run is
// in flight. Interrupting the process (Ctrl-C / SIGTERM) cancels the
// replay cleanly at the next request boundary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ipusim/internal/cache"
	"ipusim/internal/check"
	"ipusim/internal/core"
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
	"ipusim/internal/workload"
)

// options carries every run flag; the zero value of a field means "flag
// not set".
type options struct {
	ConfigPath  string
	Scheme      string
	Trace       string
	File        string
	Check       string
	Scale       float64
	Seed        int64
	PE          int
	QD          int
	Parallel    int
	Full        bool
	PrintConfig bool
	Dist        bool
	JSON        bool
	// Tenants is the multi-tenant closed-loop spec: a comma-separated
	// profile[:weight][@phase-ns] list. Requires -qd.
	Tenants string
	// CacheBytes > 0 puts a DRAM write buffer of that capacity in front
	// of the device; CacheLine overrides its line size. Requires -qd.
	CacheBytes int64
	CacheLine  int
	// Progress, when non-nil, receives replay progress lines.
	Progress io.Writer
}

func main() {
	var o options
	flag.StringVar(&o.Scheme, "scheme", "",
		"FTL scheme: "+strings.Join(core.SchemeNames, ", ")+" (default IPU, or the -config file's scheme)")
	flag.StringVar(&o.Trace, "trace", "ts0", "synthetic trace profile name")
	flag.StringVar(&o.File, "file", "", "replay an MSR-format CSV trace file instead")
	flag.Float64Var(&o.Scale, "scale", 0.05, "synthetic trace scale in (0,1]")
	flag.Int64Var(&o.Seed, "seed", 42, "synthetic trace seed")
	flag.IntVar(&o.PE, "pe", 0, "override P/E baseline (0 = Table 2 default)")
	flag.BoolVar(&o.Full, "full", false, "use the paper's full Table 2 geometry")
	flag.BoolVar(&o.PrintConfig, "printconfig", false, "print Table 2 settings and exit")
	flag.BoolVar(&o.Dist, "dist", false, "also print the response-time distribution (Fig 5)")
	flag.BoolVar(&o.JSON, "json", false, "emit the result as JSON instead of a table")
	flag.IntVar(&o.QD, "qd", 0, "replay closed-loop at this queue depth (0 = open-loop trace replay)")
	flag.StringVar(&o.Tenants, "tenants", "",
		"multi-tenant closed loop: comma-separated profile[:weight][@phase-ns] list (requires -qd)")
	flag.Int64Var(&o.CacheBytes, "cache", 0, "DRAM write-buffer capacity in bytes (0 = off; requires -qd)")
	flag.IntVar(&o.CacheLine, "cacheline", 0, "write-buffer line size in bytes (0 = default 4096)")
	flag.IntVar(&o.Parallel, "parallel", 0, "read-path evaluation workers (0/1 = serial; metrics are identical either way)")
	flag.StringVar(&o.ConfigPath, "config", "", "load device/error configuration from a JSON file")
	flag.StringVar(&o.Check, "check", "", "invariant checking: off, shadow or full (slow; use for debugging, not benchmarks)")
	progress := flag.Bool("progress", false, "report replay progress on stderr")
	flag.Parse()
	if *progress {
		o.Progress = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "ipusim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out io.Writer, o options) error {
	cfg := core.DefaultConfig()
	if o.ConfigPath != "" {
		var err error
		cfg, err = core.LoadConfigFile(o.ConfigPath)
		if err != nil {
			return err
		}
		if o.Scheme == "" {
			o.Scheme = cfg.Scheme
		}
	}
	if o.Check != "" {
		lvl, err := check.ParseLevel(o.Check)
		if err != nil {
			return err
		}
		cfg.Check = lvl
	}
	if o.Full {
		cfg.Flash = flash.PaperConfig()
		cfg.Flash.PreFillMLC = true
	}
	if o.PE > 0 {
		cfg.Flash.PEBaseline = o.PE
	}
	if o.Scheme == "" {
		o.Scheme = "IPU"
	}
	cfg.Scheme = o.Scheme
	if o.Parallel > 0 {
		cfg.Parallelism = o.Parallel
	}

	if o.PrintConfig {
		return core.Table2(&cfg.Flash).Render(out)
	}

	multiTenant := o.Tenants != ""
	if (multiTenant || o.CacheBytes > 0) && o.QD <= 0 {
		return fmt.Errorf("-tenants and -cache need a closed-loop replay: set -qd")
	}

	var tr *trace.Trace
	var tenants []workload.TenantSpec
	if multiTenant {
		var err error
		tenants, err = parseTenants(o.Tenants)
		if err != nil {
			return err
		}
	} else if o.File != "" {
		var err error
		tr, err = trace.Open(o.File)
		if err != nil {
			return err
		}
	} else {
		p, ok := trace.Profiles[o.Trace]
		if !ok {
			return fmt.Errorf("unknown trace %q (have %v)", o.Trace, trace.ProfileNames())
		}
		var err error
		tr, err = trace.Generate(p, o.Seed, o.Scale)
		if err != nil {
			return err
		}
	}

	sim, err := core.New(cfg)
	if err != nil {
		return err
	}
	if o.Progress != nil {
		sim.OnProgress(0, core.ProgressPrinter(o.Progress, 0))
	}
	start := time.Now()
	var res *core.Result
	if o.QD > 0 {
		spec := core.ClosedLoopSpec{
			Trace:   tr,
			Depth:   o.QD,
			Tenants: tenants,
			Seed:    o.Seed,
			Scale:   o.Scale,
		}
		if o.CacheBytes > 0 {
			spec.WriteCache = &cache.Config{CapacityBytes: o.CacheBytes, LineBytes: o.CacheLine}
		}
		res, err = sim.RunClosedLoopSpec(ctx, spec)
	} else {
		res, err = sim.RunContext(ctx, tr)
	}
	if err != nil {
		return err
	}
	if o.JSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if err := printResult(out, res, time.Since(start)); err != nil {
		return err
	}
	if len(res.Tenants) > 0 {
		if err := printTenants(out, res); err != nil {
			return err
		}
	}
	if res.WriteCache != nil {
		if err := printWriteCache(out, res.WriteCache); err != nil {
			return err
		}
	}
	if o.Dist {
		return printDistribution(out, sim)
	}
	return nil
}

// parseTenants parses the -tenants list: comma-separated
// profile[:weight][@phase-ns] items, e.g. "ts0:3,wdev0:1" or
// "ts0@0,ts0@43200000000000".
func parseTenants(s string) ([]workload.TenantSpec, error) {
	var specs []workload.TenantSpec
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("empty tenant entry in %q", s)
		}
		var spec workload.TenantSpec
		if at := strings.IndexByte(item, '@'); at >= 0 {
			ph, err := strconv.ParseInt(item[at+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad phase offset: %v", item, err)
			}
			spec.PhaseNS = ph
			item = item[:at]
		}
		if c := strings.IndexByte(item, ':'); c >= 0 {
			w, err := strconv.ParseFloat(item[c+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad weight: %v", item, err)
			}
			spec.Weight = w
			item = item[:c]
		}
		spec.Trace = item
		specs = append(specs, spec)
	}
	return specs, nil
}

// printTenants renders the per-tenant latency and throughput breakdown of
// a multi-tenant run.
func printTenants(out io.Writer, r *core.Result) error {
	t := metrics.NewTable(fmt.Sprintf("per-tenant results (fairness index %.4f)", r.FairnessIndex),
		"tenant", "trace", "weight", "slots", "reqs",
		"p50 read", "p99 read", "p999 read",
		"p50 write", "p99 write", "p999 write", "req/s")
	for _, tn := range r.Tenants {
		t.AddRow(tn.Name, tn.Trace,
			fmt.Sprintf("%.1f", tn.Weight),
			fmt.Sprint(tn.DepthSlots),
			fmt.Sprint(tn.Requests),
			metrics.FormatDuration(tn.P50ReadLatency),
			metrics.FormatDuration(tn.P99ReadLatency),
			metrics.FormatDuration(tn.P999ReadLatency),
			metrics.FormatDuration(tn.P50WriteLatency),
			metrics.FormatDuration(tn.P99WriteLatency),
			metrics.FormatDuration(tn.P999WriteLatency),
			fmt.Sprintf("%.0f", tn.ThroughputRPS))
	}
	return t.Render(out)
}

// printWriteCache renders the DRAM write-buffer counters.
func printWriteCache(out io.Writer, st *cache.Stats) error {
	t := metrics.NewTable("write-cache", "Metric", "Value")
	t.AddRow("write hits", fmt.Sprint(st.WriteHits))
	t.AddRow("write misses", fmt.Sprint(st.WriteMisses))
	t.AddRow("coalesced bytes", fmt.Sprint(st.CoalescedBytes))
	t.AddRow("read hits", fmt.Sprint(st.ReadHits))
	t.AddRow("read misses", fmt.Sprint(st.ReadMisses))
	t.AddRow("evictions", fmt.Sprint(st.Evictions))
	t.AddRow("read flushes", fmt.Sprint(st.ReadFlushes))
	t.AddRow("drain flushes", fmt.Sprint(st.DrainFlushes))
	t.AddRow("flushed bytes", fmt.Sprint(st.FlushedBytes))
	return t.Render(out)
}

// printDistribution renders the response-time histogram and CDF — the
// distribution view of the paper's Fig. 5.
func printDistribution(out io.Writer, sim *core.Simulator) error {
	m := sim.Scheme().Metrics()
	t := metrics.NewTable("response-time distribution", "bucket", "reads", "writes", "all", "CDF")
	reads := indexBuckets(m.ReadLatency.Distribution())
	writes := indexBuckets(m.WriteLatency.Distribution())
	for _, b := range m.AllLatency.Distribution() {
		label := fmt.Sprintf("[%s, %s)", metrics.FormatDuration(b.Lo), metrics.FormatDuration(b.Hi))
		t.AddRow(label,
			fmt.Sprint(reads[b.Hi]),
			fmt.Sprint(writes[b.Hi]),
			fmt.Sprint(b.Count),
			fmt.Sprintf("%.4f", b.CumFrac))
	}
	return t.Render(out)
}

func indexBuckets(bs []metrics.Bucket) map[time.Duration]int64 {
	m := make(map[time.Duration]int64, len(bs))
	for _, b := range bs {
		m[b.Hi] = b.Count
	}
	return m
}

func printResult(out io.Writer, r *core.Result, wall time.Duration) error {
	t := metrics.NewTable(fmt.Sprintf("%s on %s (%d requests, P/E %d)", r.Scheme, r.Trace, r.Requests, r.PEBaseline),
		"Metric", "Value")
	t.AddRow("avg latency", metrics.FormatDuration(r.AvgLatency))
	t.AddRow("avg read latency", metrics.FormatDuration(r.AvgReadLatency))
	t.AddRow("avg write latency", metrics.FormatDuration(r.AvgWriteLatency))
	t.AddRow("p99 latency", metrics.FormatDuration(r.P99Latency))
	t.AddRow("p99 read latency", metrics.FormatDuration(r.P99ReadLatency))
	t.AddRow("read error rate", metrics.FormatSci(r.ReadErrorRate))
	t.AddRow("read retries", fmt.Sprint(r.ReadRetries))
	t.AddRow("uncorrectable reads", fmt.Sprint(r.UncorrectableReads))
	t.AddRow("SLC page programs", fmt.Sprint(r.SLCPrograms))
	t.AddRow("MLC page programs", fmt.Sprint(r.MLCPrograms))
	t.AddRow("partial programs", fmt.Sprint(r.PartialPrograms))
	t.AddRow("SLC erases", fmt.Sprint(r.SLCErases))
	t.AddRow("MLC erases", fmt.Sprint(r.MLCErases))
	t.AddRow("writes in Work blocks", fmt.Sprint(r.LevelPrograms[flash.LevelWork]))
	t.AddRow("writes in Monitor blocks", fmt.Sprint(r.LevelPrograms[flash.LevelMonitor]))
	t.AddRow("writes in Hot blocks", fmt.Sprint(r.LevelPrograms[flash.LevelHot]))
	t.AddRow("SLC GCs", fmt.Sprint(r.SLCGCs))
	t.AddRow("MLC GCs", fmt.Sprint(r.MLCGCs))
	t.AddRow("GC page utilization", metrics.FormatPct(r.PageUtilization))
	t.AddRow("GC moved subpages", fmt.Sprint(r.GCMovedSubpages))
	t.AddRow("GC stall time", time.Duration(r.GCStallNS).String())
	t.AddRow("write amplification", fmt.Sprintf("%.3f", r.WriteAmplification()))
	if r.InPlaceSwitches > 0 {
		t.AddRow("in-place switches", fmt.Sprint(r.InPlaceSwitches))
		t.AddRow("switched subpages", fmt.Sprint(r.SwitchedSubpages))
		t.AddRow("switch-back reclaims", fmt.Sprint(r.SwitchBackReclaims))
	}
	if r.PreemptiveGCs > 0 {
		t.AddRow("preemptive GCs", fmt.Sprint(r.PreemptiveGCs))
	}
	t.AddRow("mapping table bytes", fmt.Sprint(r.MappingBytes))
	t.AddRow("mapping normalized", fmt.Sprintf("%.4f", r.MappingNormalized))
	t.AddRow("host writes to MLC", fmt.Sprint(r.HostWritesToMLC))
	t.AddRow("subpage reads SLC/MLC", fmt.Sprintf("%d/%d", r.SubpageReadsSLC, r.SubpageReadsMLC))
	t.AddRow("wall time", wall.Round(time.Millisecond).String())
	return t.Render(out)
}
