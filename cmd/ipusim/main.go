// Command ipusim replays one block I/O trace against one FTL scheme and
// prints a full metric report.
//
// Usage:
//
//	ipusim [-scheme IPU] [-trace ts0 | -file trace.csv] [-scale 0.05]
//	       [-seed 42] [-pe 4000] [-full] [-printconfig] [-check full]
//
// -trace selects one of the six synthetic paper workloads; -file replays a
// real trace in MSR-Cambridge CSV format instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ipusim/internal/check"
	"ipusim/internal/core"
	"ipusim/internal/flash"
	"ipusim/internal/metrics"
	"ipusim/internal/trace"
)

func main() {
	var (
		schemeName  = flag.String("scheme", "IPU", "FTL scheme: Baseline, MGA or IPU")
		traceName   = flag.String("trace", "ts0", "synthetic trace profile name")
		file        = flag.String("file", "", "replay an MSR-format CSV trace file instead")
		scale       = flag.Float64("scale", 0.05, "synthetic trace scale in (0,1]")
		seed        = flag.Int64("seed", 42, "synthetic trace seed")
		pe          = flag.Int("pe", 0, "override P/E baseline (0 = Table 2 default)")
		full        = flag.Bool("full", false, "use the paper's full Table 2 geometry")
		printConfig = flag.Bool("printconfig", false, "print Table 2 settings and exit")
		dist        = flag.Bool("dist", false, "also print the response-time distribution (Fig 5)")
		asJSON      = flag.Bool("json", false, "emit the result as JSON instead of a table")
		qd          = flag.Int("qd", 0, "replay closed-loop at this queue depth (0 = open-loop trace replay)")
		configPath  = flag.String("config", "", "load device/error configuration from a JSON file")
		checkLevel  = flag.String("check", "", "invariant checking: off, shadow or full (slow; use for debugging, not benchmarks)")
	)
	flag.Parse()
	if err := run(os.Stdout, *configPath, *schemeName, *traceName, *file, *checkLevel, *scale, *seed, *pe, *qd, *full, *printConfig, *dist, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "ipusim:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, configPath, schemeName, traceName, file, checkLevel string, scale float64, seed int64, pe, qd int, full, printConfig, dist, asJSON bool) error {
	cfg := core.DefaultConfig()
	if configPath != "" {
		var err error
		cfg, err = core.LoadConfigFile(configPath)
		if err != nil {
			return err
		}
		if schemeName == "" {
			schemeName = cfg.Scheme
		}
	}
	if checkLevel != "" {
		lvl, err := check.ParseLevel(checkLevel)
		if err != nil {
			return err
		}
		cfg.Check = lvl
	}
	if full {
		cfg.Flash = flash.PaperConfig()
		cfg.Flash.PreFillMLC = true
	}
	if pe > 0 {
		cfg.Flash.PEBaseline = pe
	}
	cfg.Scheme = schemeName

	if printConfig {
		return core.Table2(&cfg.Flash).Render(out)
	}

	var tr *trace.Trace
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.ParseMSR(file, f)
		if err != nil {
			return err
		}
	} else {
		p, ok := trace.Profiles[traceName]
		if !ok {
			return fmt.Errorf("unknown trace %q (have %v)", traceName, trace.ProfileNames())
		}
		var err error
		tr, err = trace.Generate(p, seed, scale)
		if err != nil {
			return err
		}
	}

	sim, err := core.New(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	var res *core.Result
	if qd > 0 {
		res, err = sim.RunClosedLoop(tr, qd)
	} else {
		res, err = sim.Run(tr)
	}
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if err := printResult(out, res, time.Since(start)); err != nil {
		return err
	}
	if dist {
		return printDistribution(out, sim)
	}
	return nil
}

// printDistribution renders the response-time histogram and CDF — the
// distribution view of the paper's Fig. 5.
func printDistribution(out io.Writer, sim *core.Simulator) error {
	m := sim.Scheme().Metrics()
	t := metrics.NewTable("response-time distribution", "bucket", "reads", "writes", "all", "CDF")
	reads := indexBuckets(m.ReadLatency.Distribution())
	writes := indexBuckets(m.WriteLatency.Distribution())
	for _, b := range m.AllLatency.Distribution() {
		label := fmt.Sprintf("[%s, %s)", metrics.FormatDuration(b.Lo), metrics.FormatDuration(b.Hi))
		t.AddRow(label,
			fmt.Sprint(reads[b.Hi]),
			fmt.Sprint(writes[b.Hi]),
			fmt.Sprint(b.Count),
			fmt.Sprintf("%.4f", b.CumFrac))
	}
	return t.Render(out)
}

func indexBuckets(bs []metrics.Bucket) map[time.Duration]int64 {
	m := make(map[time.Duration]int64, len(bs))
	for _, b := range bs {
		m[b.Hi] = b.Count
	}
	return m
}

func printResult(out io.Writer, r *core.Result, wall time.Duration) error {
	t := metrics.NewTable(fmt.Sprintf("%s on %s (%d requests, P/E %d)", r.Scheme, r.Trace, r.Requests, r.PEBaseline),
		"Metric", "Value")
	t.AddRow("avg latency", metrics.FormatDuration(r.AvgLatency))
	t.AddRow("avg read latency", metrics.FormatDuration(r.AvgReadLatency))
	t.AddRow("avg write latency", metrics.FormatDuration(r.AvgWriteLatency))
	t.AddRow("p99 latency", metrics.FormatDuration(r.P99Latency))
	t.AddRow("read error rate", metrics.FormatSci(r.ReadErrorRate))
	t.AddRow("read retries", fmt.Sprint(r.ReadRetries))
	t.AddRow("uncorrectable reads", fmt.Sprint(r.UncorrectableReads))
	t.AddRow("SLC page programs", fmt.Sprint(r.SLCPrograms))
	t.AddRow("MLC page programs", fmt.Sprint(r.MLCPrograms))
	t.AddRow("partial programs", fmt.Sprint(r.PartialPrograms))
	t.AddRow("SLC erases", fmt.Sprint(r.SLCErases))
	t.AddRow("MLC erases", fmt.Sprint(r.MLCErases))
	t.AddRow("writes in Work blocks", fmt.Sprint(r.LevelPrograms[flash.LevelWork]))
	t.AddRow("writes in Monitor blocks", fmt.Sprint(r.LevelPrograms[flash.LevelMonitor]))
	t.AddRow("writes in Hot blocks", fmt.Sprint(r.LevelPrograms[flash.LevelHot]))
	t.AddRow("SLC GCs", fmt.Sprint(r.SLCGCs))
	t.AddRow("MLC GCs", fmt.Sprint(r.MLCGCs))
	t.AddRow("GC page utilization", metrics.FormatPct(r.PageUtilization))
	t.AddRow("GC moved subpages", fmt.Sprint(r.GCMovedSubpages))
	t.AddRow("mapping table bytes", fmt.Sprint(r.MappingBytes))
	t.AddRow("mapping normalized", fmt.Sprintf("%.4f", r.MappingNormalized))
	t.AddRow("host writes to MLC", fmt.Sprint(r.HostWritesToMLC))
	t.AddRow("subpage reads SLC/MLC", fmt.Sprintf("%d/%d", r.SubpageReadsSLC, r.SubpageReadsMLC))
	t.AddRow("wall time", wall.Round(time.Millisecond).String())
	return t.Render(out)
}
