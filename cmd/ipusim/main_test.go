package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipusim/internal/trace"
)

func TestRunPrintConfig(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "IPU", "ts0", "", "", 0.01, 1, 0, 0, false, true, false, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "Block number", "SLC read time"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("config output missing %q", want)
		}
	}
}

func TestRunSyntheticTrace(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "Baseline", "ads", "", "", 0.002, 1, 0, 0, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Baseline on ads", "avg latency", "read error rate", "SLC erases"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunPEOverride(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "IPU", "ads", "", "", 0.002, 1, 8000, 0, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P/E 8000") {
		t.Error("P/E override not applied")
	}
}

func TestRunTraceFile(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["lun2"], 2, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lun2.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteMSR(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out strings.Builder
	if err := run(&out, "", "MGA", "", path, "", 0, 0, 0, 0, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MGA on") {
		t.Error("file replay report missing")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "IPU", "nope", "", "", 0.01, 1, 0, 0, false, false, false, false); err == nil {
		t.Error("unknown trace accepted")
	}
	if err := run(&out, "", "Nope", "ts0", "", "", 0.01, 1, 0, 0, false, false, false, false); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run(&out, "", "IPU", "", "/does/not/exist.csv", "", 0, 0, 0, 0, false, false, false, false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "IPU", "ads", "", "", 0.002, 1, 0, 0, false, false, false, true); err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := jsonUnmarshal(out.String(), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if res["Scheme"] != "IPU" || res["Trace"] != "ads" {
		t.Errorf("JSON labels: %v %v", res["Scheme"], res["Trace"])
	}
	if _, ok := res["ReadErrorRate"].(float64); !ok {
		t.Error("ReadErrorRate missing from JSON")
	}
}

func jsonUnmarshal(s string, v any) error { return json.Unmarshal([]byte(s), v) }

func TestRunClosedLoopFlag(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "IPU", "ads", "", "", 0.002, 1, 0, 4, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IPU on ads") {
		t.Error("closed-loop run missing report")
	}
}

func TestRunCheckFlag(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "", "IPU", "ads", "", "full", 0.001, 1, 0, 0, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IPU on ads") {
		t.Error("checked run missing report")
	}
	if err := run(&out, "", "IPU", "ads", "", "paranoid", 0.001, 1, 0, 0, false, false, false, false); err == nil {
		t.Error("unknown check level accepted")
	}
}

func TestRunWithConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfgJSON := `{"scheme":"Baseline","flash":{"blocks":512,"preFillMLC":false}}`
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, path, "", "ads", "", "", 0.002, 1, 0, 0, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Baseline on ads") {
		t.Errorf("config scheme not applied:\n%s", out.String())
	}
	if err := run(&out, "/missing.json", "", "ads", "", "", 0.002, 1, 0, 0, false, false, false, false); err == nil {
		t.Error("missing config accepted")
	}
}
