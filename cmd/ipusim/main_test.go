package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ipusim/internal/trace"
)

func bg() context.Context { return context.Background() }

func TestRunPrintConfig(t *testing.T) {
	var out strings.Builder
	o := options{Scheme: "IPU", Trace: "ts0", Scale: 0.01, Seed: 1, PrintConfig: true}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "Block number", "SLC read time"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("config output missing %q", want)
		}
	}
}

func TestRunSyntheticTrace(t *testing.T) {
	var out strings.Builder
	o := options{Scheme: "Baseline", Trace: "ads", Scale: 0.002, Seed: 1}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Baseline on ads", "avg latency", "read error rate", "SLC erases"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunPEOverride(t *testing.T) {
	var out strings.Builder
	o := options{Scheme: "IPU", Trace: "ads", Scale: 0.002, Seed: 1, PE: 8000}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P/E 8000") {
		t.Error("P/E override not applied")
	}
}

func TestRunTraceFile(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["lun2"], 2, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lun2.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteMSR(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out strings.Builder
	if err := run(bg(), &out, options{Scheme: "MGA", File: path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MGA on") {
		t.Error("file replay report missing")
	}
}

// TestRunITCFile replays a compiled .itc trace through -file: trace.Open
// sniffs the binary format, and the result matches a CSV replay of the
// same records exactly.
func TestRunITCFile(t *testing.T) {
	tr, err := trace.Generate(trace.Profiles["lun2"], 2, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "lun2.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteMSR(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	itcPath := filepath.Join(dir, "lun2.itc")
	g, err := os.Create(itcPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteITC(g, tr); err != nil {
		t.Fatal(err)
	}
	g.Close()

	var fromCSV, fromITC strings.Builder
	if err := run(bg(), &fromCSV, options{Scheme: "IPU", File: csvPath, JSON: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(bg(), &fromITC, options{Scheme: "IPU", File: itcPath, JSON: true}); err != nil {
		t.Fatal(err)
	}
	// Results carry the trace name, which differs by path; compare the
	// metric fields.
	var a, b map[string]any
	if err := json.Unmarshal([]byte(fromCSV.String()), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(fromITC.String()), &b); err != nil {
		t.Fatal(err)
	}
	delete(a, "Trace")
	delete(b, "Trace")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("itc replay differs from csv replay:\n%v\nvs\n%v", b, a)
	}
}

// TestRunParallelFlag checks the -parallel path produces the same report
// as a serial run.
func TestRunParallelFlag(t *testing.T) {
	var serial, par strings.Builder
	o := options{Scheme: "IPU", Trace: "ads", Scale: 0.002, Seed: 1}
	if err := run(bg(), &serial, o); err != nil {
		t.Fatal(err)
	}
	o.Parallel = 4
	if err := run(bg(), &par, o); err != nil {
		t.Fatal(err)
	}
	// Reports include wall time, which differs; compare every other line.
	sl := strings.Split(serial.String(), "\n")
	pl := strings.Split(par.String(), "\n")
	if len(sl) != len(pl) {
		t.Fatalf("report shapes differ: %d vs %d lines", len(sl), len(pl))
	}
	for i := range sl {
		if strings.Contains(sl[i], "wall time") {
			continue
		}
		if sl[i] != pl[i] {
			t.Errorf("line %d differs:\nserial: %s\nparallel: %s", i, sl[i], pl[i])
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(bg(), &out, options{Scheme: "IPU", Trace: "nope", Scale: 0.01, Seed: 1}); err == nil {
		t.Error("unknown trace accepted")
	}
	if err := run(bg(), &out, options{Scheme: "Nope", Trace: "ts0", Scale: 0.01, Seed: 1}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run(bg(), &out, options{Scheme: "IPU", File: "/does/not/exist.csv"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	o := options{Scheme: "IPU", Trace: "ads", Scale: 0.002, Seed: 1, JSON: true}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if res["Scheme"] != "IPU" || res["Trace"] != "ads" {
		t.Errorf("JSON labels: %v %v", res["Scheme"], res["Trace"])
	}
	if _, ok := res["ReadErrorRate"].(float64); !ok {
		t.Error("ReadErrorRate missing from JSON")
	}
}

func TestRunClosedLoopFlag(t *testing.T) {
	var out strings.Builder
	o := options{Scheme: "IPU", Trace: "ads", Scale: 0.002, Seed: 1, QD: 4}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IPU on ads") {
		t.Error("closed-loop run missing report")
	}
}

func TestRunMultiTenantFlag(t *testing.T) {
	var out strings.Builder
	o := options{Scheme: "IPU", Scale: 0.002, Seed: 1, QD: 8, Tenants: "ads:3,ads:1", CacheBytes: 1 << 20}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"per-tenant results", "fairness index", "p999 read", "write-cache", "coalesced bytes"} {
		if !strings.Contains(got, want) {
			t.Errorf("multi-tenant report missing %q:\n%s", want, got)
		}
	}
}

func TestRunTenantFlagErrors(t *testing.T) {
	var out strings.Builder
	// Tenants and the cache need a closed loop.
	if err := run(bg(), &out, options{Scheme: "IPU", Scale: 0.002, Seed: 1, Tenants: "ads"}); err == nil {
		t.Error("-tenants without -qd accepted")
	}
	if err := run(bg(), &out, options{Scheme: "IPU", Trace: "ads", Scale: 0.002, Seed: 1, CacheBytes: 1 << 20}); err == nil {
		t.Error("-cache without -qd accepted")
	}
	for _, bad := range []string{"ads:heavy", "ads@soon", "ads,,ads", "nope:1"} {
		if err := run(bg(), &out, options{Scheme: "IPU", Scale: 0.002, Seed: 1, QD: 4, Tenants: bad}); err == nil {
			t.Errorf("bad -tenants %q accepted", bad)
		}
	}
}

func TestParseTenants(t *testing.T) {
	specs, err := parseTenants("ts0:3, wdev0,ads:1.5@7000")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(specs))
	}
	if specs[0].Trace != "ts0" || specs[0].Weight != 3 {
		t.Errorf("tenant 0: %+v", specs[0])
	}
	if specs[1].Trace != "wdev0" || specs[1].Weight != 0 {
		t.Errorf("tenant 1: %+v", specs[1])
	}
	if specs[2].Trace != "ads" || specs[2].Weight != 1.5 || specs[2].PhaseNS != 7000 {
		t.Errorf("tenant 2: %+v", specs[2])
	}
}

func TestRunCheckFlag(t *testing.T) {
	var out strings.Builder
	o := options{Scheme: "IPU", Trace: "ads", Scale: 0.001, Seed: 1, Check: "full"}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IPU on ads") {
		t.Error("checked run missing report")
	}
	o.Check = "paranoid"
	if err := run(bg(), &out, o); err == nil {
		t.Error("unknown check level accepted")
	}
}

func TestRunWithConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfgJSON := `{"version":1,"scheme":"Baseline","flash":{"blocks":512,"preFillMLC":false}}`
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(bg(), &out, options{ConfigPath: path, Trace: "ads", Scale: 0.002, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Baseline on ads") {
		t.Errorf("config scheme not applied:\n%s", out.String())
	}
	if err := run(bg(), &out, options{ConfigPath: "/missing.json", Trace: "ads", Scale: 0.002, Seed: 1}); err == nil {
		t.Error("missing config accepted")
	}
}

// An empty Scheme means "not set on the command line": with a config file
// the config's scheme wins, without one the default is IPU. The -scheme
// flag therefore defaults to empty so it only overrides when given.
func TestRunSchemeDefaultsToIPU(t *testing.T) {
	var out strings.Builder
	if err := run(bg(), &out, options{Trace: "ads", Scale: 0.002, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IPU on ads") {
		t.Errorf("empty scheme did not default to IPU:\n%s", out.String())
	}
}

func TestRunProgressFlag(t *testing.T) {
	var out, prog strings.Builder
	o := options{Scheme: "IPU", Trace: "ads", Scale: 0.002, Seed: 1, Progress: &prog}
	if err := run(bg(), &out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "(100.0%)") {
		t.Errorf("progress output missing final snapshot:\n%s", prog.String())
	}
	if !strings.Contains(out.String(), "IPU on ads") {
		t.Error("report missing alongside progress")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, &out, options{Scheme: "IPU", Trace: "ads", Scale: 0.002, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Errorf("cancelled run still printed a report:\n%s", out.String())
	}
}
