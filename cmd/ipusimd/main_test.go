package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"ipusim/internal/server"
)

// testOpts are small, fast daemon options shared by the lifecycle tests.
func testOpts() server.Options {
	return server.Options{
		Workers:      2,
		QueueCap:     8,
		MaxJobs:      16,
		JobTimeout:   time.Minute,
		DefaultScale: 0.01,
	}
}

// bootDaemon starts run() on an ephemeral port and returns its base URL
// plus the shutdown handle.
func bootDaemon(t *testing.T, opts server.Options) (base string, cancel context.CancelFunc, errCh chan error) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errCh = make(chan error, 1)
	go func() {
		errCh <- run(ctx, "127.0.0.1:0", opts, 30*time.Second, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancelCtx, errCh
	case err := <-errCh:
		cancelCtx()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancelCtx()
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

// stopDaemon cancels the daemon's context and waits for a clean exit.
func stopDaemon(t *testing.T, cancel context.CancelFunc, errCh chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, runs one job
// through the HTTP API end to end, then shuts it down via context
// cancellation — the same path a SIGINT takes.
func TestDaemonLifecycle(t *testing.T) {
	base, cancel, errCh := bootDaemon(t, testOpts())

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","scheme":"IPU","trace":"ads","scale":0.002,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: HTTP %d, job %+v", resp.StatusCode, job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + job.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var res struct {
				Result map[string]any `json:"result"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if res.Result["Scheme"] != "IPU" {
				t.Fatalf("result = %v, want an IPU run", res.Result["Scheme"])
			}
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("result: HTTP %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	stopDaemon(t, cancel, errCh)
}

// TestDaemonBadAddr asserts a bind failure surfaces as an error instead of
// a hang.
func TestDaemonBadAddr(t *testing.T) {
	err := run(context.Background(), "256.0.0.1:99999", testOpts(), time.Second, nil)
	if err == nil {
		t.Fatal("invalid listen address accepted")
	}
}

// TestDaemonCluster boots the 3-process topology from the docs — two
// durable workers plus a coordinator sharding over them — and runs one
// matrix sweep through the coordinator, checking the cells really ran on
// the workers and the response matches a single daemon's byte for byte.
func TestDaemonCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster boot is not short")
	}
	wopts := testOpts()
	w1, cancel1, err1 := bootDaemon(t, wopts)
	defer stopDaemon(t, cancel1, err1)
	wopts.DataDir = t.TempDir()
	w2, cancel2, err2 := bootDaemon(t, wopts)
	defer stopDaemon(t, cancel2, err2)

	copts := testOpts()
	copts.WorkerURLs = []string{w1, w2}
	coord, cancelC, errC := bootDaemon(t, copts)
	defer stopDaemon(t, cancelC, errC)

	// A single plain daemon produces the reference response.
	single, cancelS, errS := bootDaemon(t, testOpts())
	defer stopDaemon(t, cancelS, errS)

	body := `{"kind":"matrix","traces":["ads","ts0"],"schemes":["Baseline","IPU"],"scale":0.002,"seed":7}`
	want := runMatrixJob(t, single, body)
	got := runMatrixJob(t, coord, body)
	if !bytes.Equal(got, want) {
		t.Fatalf("coordinator response differs from single daemon:\n%s\nvs\n%s", got, want)
	}

	var view struct {
		Coordinator bool            `json:"coordinator"`
		Workers     []string        `json:"workers"`
		Alive       map[string]bool `json:"alive"`
		RemoteCells uint64          `json:"remoteCells"`
	}
	getJSONInto(t, coord+"/v1/cluster", &view)
	if !view.Coordinator || !reflect.DeepEqual(view.Workers, []string{w1, w2}) {
		t.Fatalf("cluster view = %+v", view)
	}
	if view.RemoteCells == 0 {
		t.Fatal("coordinator placed no cells on its workers")
	}
	var stats struct {
		Executed uint64 `json:"executed"`
	}
	gotCells := uint64(0)
	for _, w := range []string{w1, w2} {
		getJSONInto(t, w+"/v1/stats", &stats)
		gotCells += stats.Executed
	}
	if gotCells != view.RemoteCells {
		t.Fatalf("workers executed %d jobs, coordinator placed %d", gotCells, view.RemoteCells)
	}
}

// runMatrixJob submits one job and returns the terminal result body.
func runMatrixJob(t *testing.T, base, body string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + job.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var out struct {
				Result json.RawMessage `json:"result"`
			}
			err := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return out.Result
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("result: HTTP %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSONInto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
