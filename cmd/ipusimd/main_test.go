package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, runs one job
// through the HTTP API end to end, then shuts it down via context
// cancellation — the same path a SIGINT takes.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, "127.0.0.1:0", 2, 8, 16, time.Minute, 30*time.Second, 0.01, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","scheme":"IPU","trace":"ads","scale":0.002,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: HTTP %d, job %+v", resp.StatusCode, job)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + job.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var res struct {
				Result map[string]any `json:"result"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if res.Result["Scheme"] != "IPU" {
				t.Fatalf("result = %v, want an IPU run", res.Result["Scheme"])
			}
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("result: HTTP %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonBadAddr asserts a bind failure surfaces as an error instead of
// a hang.
func TestDaemonBadAddr(t *testing.T) {
	err := run(context.Background(), "256.0.0.1:99999", 1, 1, 1, time.Second, time.Second, 0.01, nil)
	if err == nil {
		t.Fatal("invalid listen address accepted")
	}
}
