// Command ipusimd runs the experiment service: a long-running HTTP/JSON
// daemon that accepts simulation jobs (single runs, sweep cells, matrices,
// sensitivity sweeps), executes them on a bounded worker pool backed by
// the precondition-snapshot cache, and exposes job lifecycle endpoints
// plus a live progress stream.
//
// Usage:
//
//	ipusimd [-addr :8077] [-workers N] [-queue 64] [-timeout 10m]
//	        [-drain 30s] [-scale 0.05] [-maxjobs 1024] [-cache 256]
//	        [-data DIR] [-coordinator URL,URL,...]
//
// With -data the daemon is durable: job records and results persist under
// DIR (atomic write-then-rename), a restarted daemon serves completed
// results from disk and re-enqueues interrupted jobs, which re-run to
// bit-identical output. With -coordinator the daemon shards matrix and
// sensitivity sweeps into per-cell sub-jobs placed on the listed worker
// daemons by consistent hashing, aggregating their rows into the same
// response a single daemon produces; a failed worker is dropped from the
// ring and its cells are re-placed or run locally.
//
// Endpoints (see internal/server):
//
//	GET  /healthz               liveness probe
//	GET  /v1/schemes            registered scheme names
//	GET  /v1/stats              service counters
//	GET  /v1/cluster            coordinator fleet view
//	GET  /v1/jobs               list jobs
//	POST /v1/jobs               submit a job
//	GET  /v1/jobs/{id}          job status
//	POST /v1/jobs/{id}/cancel   cancel a job
//	GET  /v1/jobs/{id}/result   result of a finished job
//	GET  /v1/jobs/{id}/stream   live progress (server-sent events)
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains in-flight
// work for up to -drain, then cancels whatever remains and exits (a
// durable daemon persists the cancelled jobs as queued, so the next start
// resumes them).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ipusim/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "bounded job queue capacity (full queue returns 429)")
		timeout = flag.Duration("timeout", 10*time.Minute, "default per-job wall-clock timeout")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
		scale   = flag.Float64("scale", 0.05, "default trace scale for jobs that omit it")
		maxJobs = flag.Int("maxjobs", 1024, "retained job records (older terminal jobs are evicted)")
		cache   = flag.Int("cache", 256, "in-memory result cache capacity (entries)")
		data    = flag.String("data", "", "data directory for durable jobs and results (empty = in-memory only)")
		coord   = flag.String("coordinator", "", "comma-separated worker base URLs; sweeps shard across them")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := server.Options{
		Workers:      *workers,
		QueueCap:     *queue,
		JobTimeout:   *timeout,
		DefaultScale: *scale,
		MaxJobs:      *maxJobs,
		CacheCap:     *cache,
		DataDir:      *data,
		WorkerURLs:   splitURLs(*coord),
	}
	if err := run(ctx, *addr, opts, *drain, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ipusimd:", err)
		os.Exit(1)
	}
}

// splitURLs parses the -coordinator flag: comma-separated worker base
// URLs, empty segments and surrounding whitespace ignored.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	return urls
}

// run serves until ctx is cancelled (the signal context in production) or
// the listener fails. A non-nil ready receives the bound address once the
// daemon is listening — the test hook for -addr :0.
func run(ctx context.Context, addr string, opts server.Options, drain time.Duration, ready chan<- string) error {
	svc, err := server.Open(opts)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		// The service already started its workers; stop them before failing.
		stopCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		svc.Shutdown(stopCtx)
		return err
	}
	mode := "worker pool"
	if len(opts.WorkerURLs) > 0 {
		mode = fmt.Sprintf("coordinator over %d workers", len(opts.WorkerURLs))
	}
	log.Printf("ipusimd: serving on %s (%s, workers %d, queue %d)",
		ln.Addr(), mode, svc.Stats().Workers, svc.Stats().QueueCap)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("ipusimd: shutting down (drain %v)", drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Drain jobs first so in-flight work finishes (or is cancelled at the
	// deadline), then close the HTTP listener: streams of finishing jobs
	// stay readable during the drain.
	svcErr := svc.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if svcErr != nil {
		log.Printf("ipusimd: drain cut short: %v (in-flight jobs cancelled)", svcErr)
	}
	log.Printf("ipusimd: bye")
	return nil
}
